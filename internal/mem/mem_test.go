package mem

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Read: "read", Write: "write", Prefetch: "prefetch",
		Fetch: "fetch", WriteBack: "writeback", Fill: "fill",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still stringify")
	}
}

func TestKindIsRead(t *testing.T) {
	for _, k := range []Kind{Read, Fetch, Fill, Prefetch} {
		if !k.IsRead() {
			t.Errorf("%v must be a read", k)
		}
	}
	for _, k := range []Kind{Write, WriteBack} {
		if k.IsRead() {
			t.Errorf("%v must not be a read", k)
		}
	}
}

func TestStatsRecordAndRates(t *testing.T) {
	var s Stats
	s.Record(Read, true)
	s.Record(Read, false)
	s.Record(Write, true)
	s.Record(Prefetch, false)
	s.Record(WriteBack, false)
	s.Record(Fetch, true)
	s.Record(Fill, false)

	if s.Reads != 4 { // Read x2 + Fetch + Fill all count as reads
		t.Errorf("Reads = %d, want 4", s.Reads)
	}
	if s.ReadHits != 2 {
		t.Errorf("ReadHits = %d, want 2", s.ReadHits)
	}
	if s.Writes != 1 || s.WriteHits != 1 {
		t.Errorf("writes %d/%d", s.WriteHits, s.Writes)
	}
	if s.Prefetches != 1 || s.PrefetchHits != 0 {
		t.Errorf("prefetches %d/%d", s.PrefetchHits, s.Prefetches)
	}
	if s.WriteBacks != 1 {
		t.Errorf("writebacks = %d", s.WriteBacks)
	}
	if got := s.Accesses(); got != 5 {
		t.Errorf("Accesses = %d, want 5", got)
	}
	if got := s.Misses(); got != 2 {
		t.Errorf("Misses = %d, want 2", got)
	}
	if got := s.HitRate(); got != 0.6 {
		t.Errorf("HitRate = %v, want 0.6", got)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Error("empty hit rate must be 0")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, ReadHits: 1, Writes: 2, WriteHits: 1, Prefetches: 3, PrefetchHits: 2, WriteBacks: 4, Fills: 5, BusyCycles: 6}
	b := a
	b.Add(a)
	if b.Reads != 2 || b.Writes != 4 || b.Prefetches != 6 || b.WriteBacks != 8 || b.Fills != 10 || b.BusyCycles != 12 {
		t.Errorf("Add wrong: %+v", b)
	}
}

func TestLineAddr(t *testing.T) {
	if got := LineAddr(0x12345, 64); got != 0x12340 {
		t.Errorf("LineAddr = %#x", got)
	}
	if got := LineAddr(0x1000, 64); got != 0x1000 {
		t.Errorf("aligned LineAddr = %#x", got)
	}
}

func TestCrossesLine(t *testing.T) {
	if CrossesLine(0, 64, 64) {
		t.Error("exact line must not cross")
	}
	if !CrossesLine(60, 8, 64) {
		t.Error("60+8 must cross a 64B line")
	}
	if CrossesLine(60, 4, 64) {
		t.Error("60+4 must not cross")
	}
	if !CrossesLine(63, 2, 64) {
		t.Error("63+2 must cross")
	}
}

func TestDRAMLatencyAndBandwidth(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, BurstCycles: 4})
	// First read completes at now + latency.
	if got := d.Access(10, Req{Addr: 0, Bytes: 64, Kind: Fill}); got != 110 {
		t.Errorf("first access done = %d, want 110", got)
	}
	// Second read issued at the same time queues behind the burst.
	if got := d.Access(10, Req{Addr: 64, Bytes: 64, Kind: Fill}); got != 114 {
		t.Errorf("second access done = %d, want 114", got)
	}
	// Writes retire once the channel accepts them.
	if got := d.Access(200, Req{Addr: 0, Bytes: 64, Kind: WriteBack}); got != 204 {
		t.Errorf("write done = %d, want 204", got)
	}
	st := d.Stats()
	if st.Reads != 2 || st.WriteBacks != 1 {
		t.Errorf("stats %+v", st)
	}
	d.Reset()
	if d.Stats().Reads != 0 {
		t.Error("reset must clear stats")
	}
	if got := d.Access(0, Req{Kind: Read}); got != 100 {
		t.Errorf("after reset, done = %d, want 100", got)
	}
}

func TestDRAMPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive latency")
		}
	}()
	NewDRAM(DRAMConfig{Latency: 0})
}

func TestFixedPort(t *testing.T) {
	p := &FixedPort{Latency: 7}
	if got := p.Access(3, Req{Addr: 42, Kind: Read}); got != 10 {
		t.Errorf("done = %d", got)
	}
	if p.Count != 1 || p.Last.Addr != 42 {
		t.Errorf("bookkeeping wrong: %+v", p)
	}
}
