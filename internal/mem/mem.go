// Package mem defines the timing-model plumbing shared by every level of
// the simulated memory hierarchy: the Port interface, request types, and
// the DRAM main-memory model.
//
// The hierarchy is timing-only ("tag-only"): components track which line
// addresses they hold, their recency and dirtiness, and when their banks
// and buses are busy, but not data values. Data lives in the functional
// interpreter (internal/cpu). This mirrors trace-driven cache simulation
// and keeps every component deterministic.
//
// Timing style is timestamp algebra rather than an event queue: a call
// Access(now, req) returns the absolute cycle at which the request
// completes, and the component records internal busy-until state so that
// later requests observe contention.
package mem

import "fmt"

// Addr is a 64-bit physical byte address. The functional interpreter
// (internal/cpu) keeps its architectural state 32-bit, but the hierarchy
// is addressed at full width so trace-driven runs and large mapped
// regions never alias: tags and reconstructed victim addresses must
// round-trip through the cache without truncation (see
// internal/check's shadow model, which enforces this).
type Addr = uint64

// Kind classifies a memory request.
type Kind uint8

const (
	// Read is a demand data load; the core blocks until Done.
	Read Kind = iota
	// Write is a data store (retired from the store buffer).
	Write
	// Prefetch asks a level to pull a line in without blocking the core.
	Prefetch
	// Fetch is an instruction fetch (IL1 path).
	Fetch
	// WriteBack is a dirty-line eviction travelling down the hierarchy.
	WriteBack
	// Fill is a whole-line fill request issued by an upper level on a miss.
	Fill
)

var kindNames = [...]string{"read", "write", "prefetch", "fetch", "writeback", "fill"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsRead reports whether k moves data toward the core.
func (k Kind) IsRead() bool { return k == Read || k == Fetch || k == Fill || k == Prefetch }

// Req is one memory request presented to a Port.
type Req struct {
	Addr  Addr
	Bytes int
	Kind  Kind
}

// Port is anything a request can be sent to: a cache, a front-end buffer,
// DRAM. Access performs the request at absolute cycle now and returns the
// absolute cycle at which it completes (data available for reads, value
// retired for writes). Implementations must tolerate non-decreasing now
// values and must be deterministic.
type Port interface {
	Access(now int64, req Req) (done int64)
}

// Stats counts the traffic a component observed, split by request class.
type Stats struct {
	Reads, ReadHits   uint64
	Writes, WriteHits uint64
	Prefetches        uint64
	PrefetchHits      uint64
	WriteBacks        uint64
	Fills             uint64
	// BusyCycles accumulates cycles the component's banks/ports were
	// occupied (for utilization reporting).
	BusyCycles int64
}

// Accesses is total demand traffic (reads+writes).
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses is total demand misses.
func (s Stats) Misses() uint64 { return s.Accesses() - s.ReadHits - s.WriteHits }

// HitRate returns the demand hit fraction in [0,1]; 0 if no accesses.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(a)
}

// Record tallies one access outcome into the stats.
func (s *Stats) Record(kind Kind, hit bool) {
	switch kind {
	case Read, Fetch, Fill:
		s.Reads++
		if hit {
			s.ReadHits++
		}
	case Write:
		s.Writes++
		if hit {
			s.WriteHits++
		}
	case Prefetch:
		s.Prefetches++
		if hit {
			s.PrefetchHits++
		}
	case WriteBack:
		s.WriteBacks++
	}
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.ReadHits += other.ReadHits
	s.Writes += other.Writes
	s.WriteHits += other.WriteHits
	s.Prefetches += other.Prefetches
	s.PrefetchHits += other.PrefetchHits
	s.WriteBacks += other.WriteBacks
	s.Fills += other.Fills
	s.BusyCycles += other.BusyCycles
}

// LineAddr returns the line-aligned base of addr for a power-of-two line
// size.
func LineAddr(addr Addr, lineSize int) Addr { return addr &^ Addr(lineSize-1) }

// CrossesLine reports whether [addr, addr+bytes) spans a line boundary.
func CrossesLine(addr Addr, bytes, lineSize int) bool {
	return LineAddr(addr, lineSize) != LineAddr(addr+Addr(bytes)-1, lineSize)
}
