package mem

import "fmt"

// DRAMConfig parameterizes the main-memory model.
type DRAMConfig struct {
	// Latency is the fixed access latency in core cycles (row activation,
	// column access, controller queuing folded into one constant).
	Latency int64
	// BurstCycles is how long one line transfer occupies the channel.
	// Back-to-back requests serialize on the channel at this rate.
	BurstCycles int64
}

// DefaultDRAMConfig matches the paper's platform assumption of an
// off-chip memory roughly 100 core cycles away at 1 GHz.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Latency: 100, BurstCycles: 4}
}

// DRAM is the bottom of the hierarchy: a fixed-latency, bandwidth-limited
// main memory.
type DRAM struct {
	cfg      DRAMConfig
	chanFree int64
	stats    Stats
}

// NewDRAM builds a DRAM model; it panics on non-positive latency because a
// zero-latency main memory would silently void every experiment.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Latency <= 0 {
		panic(fmt.Sprintf("mem: DRAM latency must be positive, got %d", cfg.Latency))
	}
	if cfg.BurstCycles <= 0 {
		cfg.BurstCycles = 1
	}
	return &DRAM{cfg: cfg}
}

// Access implements Port. Every request occupies the single channel for
// BurstCycles and completes Latency cycles after it wins the channel.
func (d *DRAM) Access(now int64, req Req) int64 {
	start := now
	if d.chanFree > start {
		start = d.chanFree
	}
	d.chanFree = start + d.cfg.BurstCycles
	d.stats.BusyCycles += d.cfg.BurstCycles
	d.stats.Record(req.Kind, true) // DRAM always "hits"
	done := start + d.cfg.Latency
	if req.Kind == Write || req.Kind == WriteBack {
		// Writes retire when accepted by the controller.
		done = start + d.cfg.BurstCycles
	}
	return done
}

// Stats returns a copy of the accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// BusyClocks returns the channel busy-until clock, for the invariant
// checker's monotonicity check.
func (d *DRAM) BusyClocks() []int64 { return []int64{d.chanFree} }

// Reset clears timing state and counters.
func (d *DRAM) Reset() {
	d.chanFree = 0
	d.stats = Stats{}
}

// FixedPort is a Port with a constant latency and no contention; used in
// unit tests and as an idealized next level.
type FixedPort struct {
	Latency int64
	Count   uint64
	Last    Req
}

// Access implements Port.
func (f *FixedPort) Access(now int64, req Req) int64 {
	f.Count++
	f.Last = req
	return now + f.Latency
}
