package cpu

// bpred is a classic 2-bit saturating-counter direction predictor,
// indexed by PC. Branch targets in ARMlet are static (PC-relative
// immediates), so a BTB always knows the target and only the direction
// can mispredict. Indirect jumps (JR) are treated as always mispredicted.
type bpred struct {
	table []uint8
	mask  int
}

func newBpred(entries int) *bpred {
	if entries <= 0 || entries&(entries-1) != 0 {
		entries = 512
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &bpred{table: t, mask: entries - 1}
}

// predict returns the predicted direction for the branch at pc.
func (b *bpred) predict(pc int) bool { return b.table[pc&b.mask] >= 2 }

// update trains the counter with the resolved direction.
func (b *bpred) update(pc int, taken bool) {
	c := &b.table[pc&b.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
