package cpu

import (
	"sttdl1/internal/isa"
	"sttdl1/internal/mem"
)

// Config parameterizes the A9-lite timing core.
type Config struct {
	// IssueWidth is the in-order issue width (Cortex-A9 class: 2).
	IssueWidth int
	// MispredictPenalty is the pipeline refill cost of a wrong branch
	// direction, in cycles.
	MispredictPenalty int64
	// StoreBufDepth is the number of in-flight retired stores the core
	// tolerates before stalling issue.
	StoreBufDepth int
	// LoadQueueDepth is the number of outstanding loads the LSU tracks;
	// a further load stalls issue until the oldest completes. In-order
	// embedded cores have shallow load queues (A9 class: 2), which is
	// what exposes a multi-cycle DL1 read on back-to-back loads.
	LoadQueueDepth int
	// BpredEntries sizes the 2-bit predictor table (power of two).
	BpredEntries int
	// MaxInsts bounds execution; exceeding it is a Fault.
	MaxInsts uint64
	// CodeBase is the byte address instruction fetches use (the code
	// region must not alias the data segment in the cache model).
	CodeBase uint32
}

// DefaultConfig is the paper's platform core: dual-issue @1 GHz, 8-cycle
// mispredict refill, 4-entry store buffer.
func DefaultConfig() Config {
	return Config{
		IssueWidth:        2,
		MispredictPenalty: 8,
		StoreBufDepth:     4,
		LoadQueueDepth:    2,
		BpredEntries:      512,
		MaxInsts:          2_000_000_000,
		CodeBase:          0x8000_0000,
	}
}

// Result carries the timing outcome of one run.
type Result struct {
	// Cycles is total execution time in core cycles.
	Cycles int64
	// Insts is the dynamic instruction count.
	Insts uint64

	Loads, Stores, Prefetches uint64
	VecLoads, VecStores       uint64
	Branches, Mispredicts     uint64

	// ReadStallCycles is issue time lost waiting for load results
	// (including address-generation chains fed by loads).
	ReadStallCycles int64
	// WriteStallCycles is issue time lost to a full store buffer.
	WriteStallCycles int64
	// BranchStallCycles is pipeline-refill time after mispredicts.
	BranchStallCycles int64
	// FetchStallCycles is issue time lost to instruction fetch.
	FetchStallCycles int64

	// State is the final architectural state (memory image, registers).
	State *State
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// CPU binds a timing configuration to its instruction- and data-side
// memory ports (IL1 and the DL1 front-end).
type CPU struct {
	Cfg  Config
	IMem mem.Port
	DMem mem.Port
}

// producer classes for stall attribution.
const (
	prodALU uint8 = iota
	prodLoad
)

type regFile struct {
	ready [isa.NumIntRegs + isa.NumFPRegs + isa.NumVecRegs]int64
	prod  [isa.NumIntRegs + isa.NumFPRegs + isa.NumVecRegs]uint8
}

func regIdx(class isa.RegClass, r isa.Reg) int {
	switch class {
	case isa.RCInt:
		return int(r)
	case isa.RCFP:
		return isa.NumIntRegs + int(r)
	case isa.RCVec:
		return isa.NumIntRegs + isa.NumFPRegs + int(r)
	}
	return -1
}

// Run executes prog to completion under the timing model, starting from
// a fresh zeroed state.
func (c *CPU) Run(prog *isa.Program) (*Result, error) {
	return c.RunState(prog, NewState(prog))
}

// RunState executes prog under the timing model starting from st, whose
// data segment the caller may have initialized.
func (c *CPU) RunState(prog *isa.Program, st *State) (*Result, error) {
	cfg := c.Cfg
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 2
	}
	if cfg.StoreBufDepth <= 0 {
		cfg.StoreBufDepth = 4
	}
	if cfg.LoadQueueDepth <= 0 {
		cfg.LoadQueueDepth = 2
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}

	res := &Result{State: st}
	pred := newBpred(cfg.BpredEntries)

	var regs regFile
	var (
		lastIssue  int64 // cycle of the most recent issue
		slotsUsed  int   // instructions issued in that cycle
		fetchLast  int64 // cycle of the most recent fetch
		fetchSlots int   // instructions fetched in that cycle
		redirectAt int64 // earliest fetch after a mispredict
		divFree    int64 // the unpipelined divider
		maxDone    int64 // completion horizon
		drainTail  int64 // store buffer drains in order
	)
	// The store buffer and load queue are stack-backed at realistic
	// depths; only unusually deep configurations fall back to the heap.
	var sbufArr, lqArr [16]int64
	sbuf := queueSlots(sbufArr[:], cfg.StoreBufDepth) // retire time per slot
	sbHead := 0
	lq := queueSlots(lqArr[:], cfg.LoadQueueDepth) // completion time per slot
	lqHead := 0

	for !st.Halted {
		if res.Insts >= cfg.MaxInsts {
			return res, st.fault(st.PC, isa.Inst{}, "instruction budget %d exhausted (runaway loop?)", cfg.MaxInsts)
		}
		pc := st.PC
		if pc < 0 || pc >= len(prog.Insts) {
			return res, st.fault(pc, isa.Inst{}, "pc outside program (0..%d)", len(prog.Insts)-1)
		}
		in := prog.Insts[pc]
		opInfo := in.Op.Info()

		// --- Instruction fetch through the IL1 (IssueWidth per cycle,
		// running ahead of issue like a real fetch queue).
		fetchAt := fetchLast
		if redirectAt > fetchAt {
			fetchAt = redirectAt
		}
		if fetchAt > fetchLast {
			fetchLast = fetchAt
			fetchSlots = 1
		} else {
			fetchSlots++
			if fetchSlots > cfg.IssueWidth {
				fetchLast++
				fetchAt = fetchLast
				fetchSlots = 1
			}
		}
		fetchDone := c.IMem.Access(fetchAt, mem.Req{
			Addr:  mem.Addr(cfg.CodeBase) + mem.Addr(pc)*isa.InstBytes,
			Bytes: isa.InstBytes,
			Kind:  mem.Fetch,
		})

		// --- Issue-time constraints.
		base := fetchDone
		if redirectAt > base {
			base = redirectAt
		}
		if fetchDone > lastIssue+1 {
			res.FetchStallCycles += fetchDone - (lastIssue + 1)
		}

		// Operand readiness (with load attribution).
		var opnd int64
		opndLoad := false
		consider := func(class isa.RegClass, r isa.Reg) {
			if class == isa.RCNone || (class == isa.RCInt && r == isa.ZR) {
				return
			}
			i := regIdx(class, r)
			if regs.ready[i] > opnd {
				opnd = regs.ready[i]
				opndLoad = regs.prod[i] == prodLoad
			} else if regs.ready[i] == opnd && regs.prod[i] == prodLoad {
				opndLoad = true
			}
		}
		consider(opInfo.SrcAClass, in.Ra)
		consider(opInfo.SrcBClass, in.Rb)
		if opInfo.DstIsSrc {
			consider(opInfo.DstClass, in.Rd)
		}

		issue := base
		if opnd > issue {
			if opndLoad {
				res.ReadStallCycles += opnd - issue
			}
			issue = opnd
		}

		// The unpipelined divider.
		switch in.Op {
		case isa.OpDIV, isa.OpREM, isa.OpFDIV, isa.OpVDIV:
			if divFree > issue {
				issue = divFree
			}
		}

		// Store-buffer slot for stores.
		if opInfo.Mem == 's' {
			slot := sbuf[sbHead]
			if slot > issue {
				res.WriteStallCycles += slot - issue
				issue = slot
			}
		}
		// Load-queue slot for loads: the oldest outstanding load must
		// complete before another can issue past the queue depth.
		if opInfo.Mem == 'l' {
			slot := lq[lqHead]
			if slot > issue {
				res.ReadStallCycles += slot - issue
				issue = slot
			}
		}

		// In-order multi-issue slotting.
		if issue < lastIssue {
			issue = lastIssue
		}
		if issue == lastIssue {
			if slotsUsed >= cfg.IssueWidth {
				issue++
				slotsUsed = 1
			} else {
				slotsUsed++
			}
		} else {
			slotsUsed = 1
		}
		lastIssue = issue

		// --- Functional execution.
		info, err := st.Step(prog)
		if err != nil {
			return res, err
		}
		res.Insts++

		// --- Completion / writeback timing.
		done := issue + latencyOf(in.Op)
		prod := prodALU

		switch {
		case opInfo.Mem == 'l':
			res.Loads++
			if in.Op.IsVector() {
				res.VecLoads++
			}
			done = c.DMem.Access(issue+1, mem.Req{Addr: mem.Addr(info.Addr), Bytes: opInfo.AccessBytes, Kind: mem.Read})
			prod = prodLoad
			lq[lqHead] = done
			lqHead = (lqHead + 1) % cfg.LoadQueueDepth
		case opInfo.Mem == 's':
			res.Stores++
			if in.Op.IsVector() {
				res.VecStores++
			}
			start := issue + 1
			if drainTail > start {
				start = drainTail
			}
			retire := c.DMem.Access(start, mem.Req{Addr: mem.Addr(info.Addr), Bytes: opInfo.AccessBytes, Kind: mem.Write})
			drainTail = retire
			sbuf[sbHead] = retire
			sbHead = (sbHead + 1) % cfg.StoreBufDepth
			done = issue + 1 // the core moves on once the store is buffered
		case opInfo.Mem == 'p':
			res.Prefetches++
			c.DMem.Access(issue+1, mem.Req{Addr: mem.Addr(info.Addr), Bytes: opInfo.AccessBytes, Kind: mem.Prefetch})
			done = issue + 1
		}

		switch in.Op {
		case isa.OpDIV, isa.OpREM, isa.OpFDIV, isa.OpVDIV:
			divFree = done
		}

		// Branch resolution and prediction.
		if in.Op.IsBranch() && in.Op != isa.OpHALT {
			res.Branches++
			mispredicted := false
			if in.Op.IsCondBranch() {
				predTaken := pred.predict(pc)
				pred.update(pc, info.Taken)
				mispredicted = predTaken != info.Taken
			} else if in.Op == isa.OpJR {
				mispredicted = true // no return-address stack modelled
			}
			if mispredicted {
				res.Mispredicts++
				redirectAt = issue + 1 + cfg.MispredictPenalty
				res.BranchStallCycles += cfg.MispredictPenalty
			}
		}

		// Register writeback.
		if opInfo.DstClass != isa.RCNone && opInfo.Mem != 's' {
			if i := regIdx(opInfo.DstClass, in.Rd); i >= 0 && !(opInfo.DstClass == isa.RCInt && in.Rd == isa.ZR) {
				regs.ready[i] = done
				regs.prod[i] = prod
			}
		}
		if done > maxDone {
			maxDone = done
		}
	}

	// Let the store buffer drain.
	if drainTail > maxDone {
		maxDone = drainTail
	}
	res.Cycles = maxDone
	return res, nil
}

// latencyOf gives the execute latency of each opcode class (cycles).
// Functional units are fully pipelined except the dividers, which the
// run loop serializes via divFree.
// queueSlots returns a zeroed queue of depth n, using the stack-backed
// scratch when it fits.
func queueSlots(scratch []int64, n int) []int64 {
	if n <= len(scratch) {
		return scratch[:n]
	}
	return make([]int64, n)
}

func latencyOf(op isa.Opcode) int64 {
	switch op {
	case isa.OpMUL, isa.OpMULI:
		return 3
	case isa.OpDIV, isa.OpREM:
		return 12
	case isa.OpFADD, isa.OpFSUB:
		return 3
	case isa.OpFMUL:
		return 4
	case isa.OpFDIV:
		return 14
	case isa.OpFCVT, isa.OpFTOI:
		return 3
	case isa.OpFSLT, isa.OpFSLE, isa.OpFSEQ, isa.OpFMAX, isa.OpFMIN:
		return 2
	case isa.OpVADD, isa.OpVSUB:
		return 3
	case isa.OpVMIN, isa.OpVMAX, isa.OpVCLT, isa.OpVCLE, isa.OpVCEQ:
		return 2
	case isa.OpVMUL:
		return 4
	case isa.OpVFMA:
		return 5
	case isa.OpVDIV:
		return 16
	case isa.OpVSUM:
		return 4
	case isa.OpVSPLAT:
		return 2
	default:
		return 1
	}
}
