// Package cpu executes ARMlet programs: functionally (architectural
// state, for correctness tests and compiler validation) and with an
// "A9-lite" timing model (for the paper's performance experiments).
//
// The timing model stands in for gem5's detailed ARM CPU: an in-order,
// dual-issue core with scoreboarded register dependences, multi-cycle
// functional units, a 2-bit branch predictor with a fixed mispredict
// penalty, non-blocking loads (hit-under-miss through the DL1 front-end),
// a small draining store buffer, and per-instruction instruction fetch
// through the IL1. It attributes every stall cycle to a cause — load
// latency, store-buffer pressure, branch mispredicts, fetch — which is
// what the paper's Fig. 4 read/write penalty breakdown needs.
package cpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"sttdl1/internal/isa"
)

// Fault describes a functional execution error (bad memory access,
// division by zero, illegal instruction, runaway loop).
type Fault struct {
	PC   int
	Inst isa.Inst
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cpu: fault at pc=%d (%s): %s", f.PC, f.Inst, f.Msg)
}

// State is the architectural state of one ARMlet core plus its flat
// functional data memory.
type State struct {
	R   [isa.NumIntRegs]int32
	F   [isa.NumFPRegs]float32
	V   [isa.NumVecRegs][isa.VecLanes]float32
	PC  int
	Mem []byte

	Halted bool
}

// StackBytes is the stack region appended above the data segment.
const StackBytes = 64 << 10

// NewState prepares architectural state for prog: a zeroed data segment
// of prog.DataSize bytes with a stack above it, SP at the top.
func NewState(prog *isa.Program) *State {
	s := &State{Mem: make([]byte, prog.DataSize+StackBytes)}
	s.R[isa.SP] = int32(len(s.Mem))
	return s
}

func (s *State) fault(pc int, in isa.Inst, format string, args ...any) *Fault {
	return &Fault{PC: pc, Inst: in, Msg: fmt.Sprintf(format, args...)}
}

func (s *State) getR(r isa.Reg) int32 {
	if r == isa.ZR {
		return 0
	}
	return s.R[r]
}

func (s *State) setR(r isa.Reg, v int32) {
	if r != isa.ZR {
		s.R[r] = v
	}
}

// loadWord/storeWord access the functional memory; addresses are byte
// addresses, little-endian.
func (s *State) loadWord(addr uint32) (uint32, bool) {
	if int(addr)+4 > len(s.Mem) || int(addr) < 0 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(s.Mem[addr:]), true
}

func (s *State) storeWord(addr, v uint32) bool {
	if int(addr)+4 > len(s.Mem) {
		return false
	}
	binary.LittleEndian.PutUint32(s.Mem[addr:], v)
	return true
}

// EffAddr computes the effective address of a memory instruction.
func (s *State) EffAddr(in isa.Inst) uint32 {
	switch in.Op.Info().Fmt {
	case isa.FmtMemX:
		return uint32(s.getR(in.Ra)) + uint32(s.getR(in.Rb))<<uint(in.Imm&31)
	default: // FmtMem, FmtPLD
		return uint32(s.getR(in.Ra) + in.Imm)
	}
}

// StepInfo reports what one functional step did, for the timing model.
type StepInfo struct {
	// Taken reports whether a branch redirected control flow.
	Taken bool
	// NextPC is the PC after the instruction.
	NextPC int
	// Addr is the effective address of a memory instruction.
	Addr uint32
}

// Step executes the instruction at s.PC functionally and advances PC.
// It returns what happened so a timing model can charge for it.
func (s *State) Step(prog *isa.Program) (StepInfo, error) {
	pc := s.PC
	if pc < 0 || pc >= len(prog.Insts) {
		return StepInfo{}, s.fault(pc, isa.Inst{}, "pc outside program (0..%d)", len(prog.Insts)-1)
	}
	in := prog.Insts[pc]
	info := StepInfo{NextPC: pc + 1}

	switch in.Op {
	case isa.OpADD:
		s.setR(in.Rd, s.getR(in.Ra)+s.getR(in.Rb))
	case isa.OpSUB:
		s.setR(in.Rd, s.getR(in.Ra)-s.getR(in.Rb))
	case isa.OpMUL:
		s.setR(in.Rd, s.getR(in.Ra)*s.getR(in.Rb))
	case isa.OpDIV:
		if s.getR(in.Rb) == 0 {
			return info, s.fault(pc, in, "integer division by zero")
		}
		s.setR(in.Rd, s.getR(in.Ra)/s.getR(in.Rb))
	case isa.OpREM:
		if s.getR(in.Rb) == 0 {
			return info, s.fault(pc, in, "integer remainder by zero")
		}
		s.setR(in.Rd, s.getR(in.Ra)%s.getR(in.Rb))
	case isa.OpAND:
		s.setR(in.Rd, s.getR(in.Ra)&s.getR(in.Rb))
	case isa.OpORR:
		s.setR(in.Rd, s.getR(in.Ra)|s.getR(in.Rb))
	case isa.OpEOR:
		s.setR(in.Rd, s.getR(in.Ra)^s.getR(in.Rb))
	case isa.OpLSL:
		s.setR(in.Rd, s.getR(in.Ra)<<uint(s.getR(in.Rb)&31))
	case isa.OpLSR:
		s.setR(in.Rd, int32(uint32(s.getR(in.Ra))>>uint(s.getR(in.Rb)&31)))
	case isa.OpASR:
		s.setR(in.Rd, s.getR(in.Ra)>>uint(s.getR(in.Rb)&31))

	case isa.OpADDI:
		s.setR(in.Rd, s.getR(in.Ra)+in.Imm)
	case isa.OpSUBI:
		s.setR(in.Rd, s.getR(in.Ra)-in.Imm)
	case isa.OpMULI:
		s.setR(in.Rd, s.getR(in.Ra)*in.Imm)
	case isa.OpANDI:
		s.setR(in.Rd, s.getR(in.Ra)&in.Imm)
	case isa.OpORRI:
		s.setR(in.Rd, s.getR(in.Ra)|in.Imm)
	case isa.OpEORI:
		s.setR(in.Rd, s.getR(in.Ra)^in.Imm)
	case isa.OpLSLI:
		s.setR(in.Rd, s.getR(in.Ra)<<uint(in.Imm&31))
	case isa.OpLSRI:
		s.setR(in.Rd, int32(uint32(s.getR(in.Ra))>>uint(in.Imm&31)))
	case isa.OpASRI:
		s.setR(in.Rd, s.getR(in.Ra)>>uint(in.Imm&31))
	case isa.OpMOVI:
		s.setR(in.Rd, in.Imm)

	case isa.OpSLT:
		s.setR(in.Rd, b2i(s.getR(in.Ra) < s.getR(in.Rb)))
	case isa.OpSLTU:
		s.setR(in.Rd, b2i(uint32(s.getR(in.Ra)) < uint32(s.getR(in.Rb))))
	case isa.OpSLTI:
		s.setR(in.Rd, b2i(s.getR(in.Ra) < in.Imm))
	case isa.OpSEQ:
		s.setR(in.Rd, b2i(s.getR(in.Ra) == s.getR(in.Rb)))
	case isa.OpSNE:
		s.setR(in.Rd, b2i(s.getR(in.Ra) != s.getR(in.Rb)))
	case isa.OpSEL:
		if s.getR(in.Ra) != 0 {
			s.setR(in.Rd, s.getR(in.Rb))
		}

	case isa.OpFADD:
		s.F[in.Rd] = s.F[in.Ra] + s.F[in.Rb]
	case isa.OpFSUB:
		s.F[in.Rd] = s.F[in.Ra] - s.F[in.Rb]
	case isa.OpFMUL:
		s.F[in.Rd] = s.F[in.Ra] * s.F[in.Rb]
	case isa.OpFDIV:
		s.F[in.Rd] = s.F[in.Ra] / s.F[in.Rb]
	case isa.OpFNEG:
		s.F[in.Rd] = -s.F[in.Ra]
	case isa.OpFABS:
		s.F[in.Rd] = float32(math.Abs(float64(s.F[in.Ra])))
	case isa.OpFMAX:
		s.F[in.Rd] = f32max(s.F[in.Ra], s.F[in.Rb])
	case isa.OpFMIN:
		s.F[in.Rd] = f32min(s.F[in.Ra], s.F[in.Rb])
	case isa.OpFMOV:
		s.F[in.Rd] = s.F[in.Ra]
	case isa.OpFMOVI:
		s.F[in.Rd] = isa.F32FromBits(in.Imm)
	case isa.OpFCVT:
		s.F[in.Rd] = float32(s.getR(in.Ra))
	case isa.OpFTOI:
		s.setR(in.Rd, int32(s.F[in.Ra]))
	case isa.OpFSLT:
		s.setR(in.Rd, b2i(s.F[in.Ra] < s.F[in.Rb]))
	case isa.OpFSLE:
		s.setR(in.Rd, b2i(s.F[in.Ra] <= s.F[in.Rb]))
	case isa.OpFSEQ:
		s.setR(in.Rd, b2i(s.F[in.Ra] == s.F[in.Rb]))
	case isa.OpFSEL:
		if s.getR(in.Ra) != 0 {
			s.F[in.Rd] = s.F[in.Rb]
		}

	case isa.OpVADD:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = s.V[in.Ra][l] + s.V[in.Rb][l]
		}
	case isa.OpVSUB:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = s.V[in.Ra][l] - s.V[in.Rb][l]
		}
	case isa.OpVMUL:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = s.V[in.Ra][l] * s.V[in.Rb][l]
		}
	case isa.OpVDIV:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = s.V[in.Ra][l] / s.V[in.Rb][l]
		}
	case isa.OpVFMA:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] += s.V[in.Ra][l] * s.V[in.Rb][l]
		}
	case isa.OpVMIN:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = f32min(s.V[in.Ra][l], s.V[in.Rb][l])
		}
	case isa.OpVMAX:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = f32max(s.V[in.Ra][l], s.V[in.Rb][l])
		}
	case isa.OpVMOV:
		s.V[in.Rd] = s.V[in.Ra]
	case isa.OpVSPLAT:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = s.F[in.Ra]
		}
	case isa.OpVSUM:
		s.F[in.Rd] = s.V[in.Ra][0] + s.V[in.Ra][1] + s.V[in.Ra][2] + s.V[in.Ra][3]
	case isa.OpVSEL:
		if s.getR(in.Ra) != 0 {
			s.V[in.Rd] = s.V[in.Rb]
		}
	case isa.OpVCLT:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = b2f(s.V[in.Ra][l] < s.V[in.Rb][l])
		}
	case isa.OpVCLE:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = b2f(s.V[in.Ra][l] <= s.V[in.Rb][l])
		}
	case isa.OpVCEQ:
		for l := 0; l < isa.VecLanes; l++ {
			s.V[in.Rd][l] = b2f(s.V[in.Ra][l] == s.V[in.Rb][l])
		}
	case isa.OpVSELM:
		for l := 0; l < isa.VecLanes; l++ {
			if s.V[in.Ra][l] != 0 {
				s.V[in.Rd][l] = s.V[in.Rb][l]
			}
		}

	case isa.OpLDR, isa.OpLDRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		v, ok := s.loadWord(addr)
		if !ok {
			return info, s.fault(pc, in, "load outside memory: addr=%#x size=%d", addr, len(s.Mem))
		}
		s.setR(in.Rd, int32(v))
	case isa.OpSTR, isa.OpSTRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		if !s.storeWord(addr, uint32(s.getR(in.Rd))) {
			return info, s.fault(pc, in, "store outside memory: addr=%#x size=%d", addr, len(s.Mem))
		}
	case isa.OpFLDR, isa.OpFLDRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		v, ok := s.loadWord(addr)
		if !ok {
			return info, s.fault(pc, in, "fp load outside memory: addr=%#x size=%d", addr, len(s.Mem))
		}
		s.F[in.Rd] = math.Float32frombits(v)
	case isa.OpFSTR, isa.OpFSTRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		if !s.storeWord(addr, math.Float32bits(s.F[in.Rd])) {
			return info, s.fault(pc, in, "fp store outside memory: addr=%#x size=%d", addr, len(s.Mem))
		}
	case isa.OpVLDR, isa.OpVLDRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		for l := 0; l < isa.VecLanes; l++ {
			v, ok := s.loadWord(addr + uint32(4*l))
			if !ok {
				return info, s.fault(pc, in, "vector load outside memory: addr=%#x size=%d", addr, len(s.Mem))
			}
			s.V[in.Rd][l] = math.Float32frombits(v)
		}
	case isa.OpVSTR, isa.OpVSTRX:
		addr := s.EffAddr(in)
		info.Addr = addr
		for l := 0; l < isa.VecLanes; l++ {
			if !s.storeWord(addr+uint32(4*l), math.Float32bits(s.V[in.Rd][l])) {
				return info, s.fault(pc, in, "vector store outside memory: addr=%#x size=%d", addr, len(s.Mem))
			}
		}
	case isa.OpPLD:
		info.Addr = s.EffAddr(in) // prefetches never fault

	case isa.OpB:
		info.Taken = true
		info.NextPC = in.BranchTarget(pc)
	case isa.OpBEQ:
		if s.getR(in.Ra) == s.getR(in.Rb) {
			info.Taken = true
			info.NextPC = in.BranchTarget(pc)
		}
	case isa.OpBNE:
		if s.getR(in.Ra) != s.getR(in.Rb) {
			info.Taken = true
			info.NextPC = in.BranchTarget(pc)
		}
	case isa.OpBLT:
		if s.getR(in.Ra) < s.getR(in.Rb) {
			info.Taken = true
			info.NextPC = in.BranchTarget(pc)
		}
	case isa.OpBGE:
		if s.getR(in.Ra) >= s.getR(in.Rb) {
			info.Taken = true
			info.NextPC = in.BranchTarget(pc)
		}
	case isa.OpBL:
		s.setR(isa.LR, int32(pc+1))
		info.Taken = true
		info.NextPC = in.BranchTarget(pc)
	case isa.OpJR:
		info.Taken = true
		info.NextPC = int(s.getR(in.Ra))
	case isa.OpNOP:
	case isa.OpHALT:
		s.Halted = true
	default:
		return info, s.fault(pc, in, "illegal opcode")
	}

	s.PC = info.NextPC
	return info, nil
}

func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func f32max(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func f32min(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// Interpret runs prog functionally (no timing) until HALT or maxInsts,
// returning the final state. Used by compiler semantic-preservation tests
// and by the reference checks in polybench.
func Interpret(prog *isa.Program, maxInsts uint64) (*State, error) {
	return InterpretState(prog, NewState(prog), maxInsts)
}

// InterpretState is Interpret starting from a caller-initialized state.
func InterpretState(prog *isa.Program, s *State, maxInsts uint64) (*State, error) {
	var n uint64
	for !s.Halted {
		if n >= maxInsts {
			return s, s.fault(s.PC, isa.Inst{}, "instruction budget %d exhausted (runaway loop?)", maxInsts)
		}
		if _, err := s.Step(prog); err != nil {
			return s, err
		}
		n++
	}
	return s, nil
}
