// Gang replay: one trace walk, K configurations (DESIGN.md §7.9).
//
// A design-space sweep replays the same trace once per configuration, so
// the multi-megabyte record stream — PCs, effective addresses, decode
// entries — is re-read from memory K times for K design points.
// ReplayTraceGang walks the trace once for a batch of configurations in
// chunk-major order: a chunk of records sized to stay cache-resident is
// replayed to completion by each member in turn (every member running
// its own specialized kernel from the registry, exactly as in serial
// replay), then the gang advances to the next chunk. Members after the
// first read the chunk's stream out of the host cache instead of DRAM,
// and each member's loop-carried state plus hierarchy hot set stays
// resident for the whole chunk.
//
// Each member keeps a private replayState over its own port topology, so
// member timing is fully disjoint: chunk-major execution is a pure
// reordering of independent per-member passes, and every member's
// result is cycle- and counter-identical to its own serial replay
// (enforced by the gang equivalence and metamorphic tests). Gang replay
// handles full passes only — truncation, abort probes, and budget
// faults are per-configuration concerns that break the shared walk;
// callers fall back to serial replay for those.
package cpu

import (
	"fmt"

	"sttdl1/internal/isa"
)

// gangChunk is the record granularity of the shared walk: 1<<14 records
// is 128 KB of PC+address stream — comfortably inside the host L2 next
// to a member's working set, and coarse enough that the per-chunk
// kernel-call and interrupt-probe overhead vanishes.
const gangChunk = 1 << 14

// ReplayTraceGang replays tr once for every CPU in cpus (each a fully
// private configuration + hierarchy) and returns their Results in
// member order. interrupt, when non-nil, is probed between chunks at
// least every intrEvery records (<= 0 means every 65536) exactly like
// ReplayCtl.Interrupt: a non-nil return abandons the whole gang with
// that error and no results. Unlike ReplayTraceCtl there is no
// truncation or abort control, and a trace longer than any member's
// instruction budget is rejected up front (the caller replays that
// configuration serially to get its ordinary budget fault).
func ReplayTraceGang(prog *isa.Program, tr *Trace, cpus []*CPU, interrupt func() error, intrEvery int) ([]*Result, error) {
	if len(cpus) == 0 {
		return nil, nil
	}
	dec, tc := tr.dec, tr.counts
	if dec == nil {
		dec = decodeProg(prog)
		tc = countTrace(tr.PCs, dec)
	}
	n := len(tr.PCs)
	members := make([]replayState, len(cpus))
	kerns := make([]kernelFunc, len(cpus))
	for k, c := range cpus {
		cfg := c.Cfg
		if cfg.IssueWidth <= 0 {
			cfg.IssueWidth = 2
		}
		if cfg.StoreBufDepth <= 0 {
			cfg.StoreBufDepth = 4
		}
		if cfg.LoadQueueDepth <= 0 {
			cfg.LoadQueueDepth = 2
		}
		if cfg.MaxInsts == 0 {
			cfg.MaxInsts = 2_000_000_000
		}
		if uint64(n) > cfg.MaxInsts {
			return nil, fmt.Errorf("cpu: gang replay member %d: trace length %d exceeds instruction budget %d", k, n, cfg.MaxInsts)
		}
		mp := tr.mispredicts(cfg.BpredEntries)
		members[k].init(&cfg, c.IMem, c.DMem, tr, dec, mp.idx)
		shape := ShapeOf(c.IMem, c.DMem)
		if shape == ShapeDirect {
			members[k].bindDirect(c.DMem)
		}
		kerns[k] = kernels[shape]
	}
	every := 0
	if interrupt != nil {
		every = intrEvery
		if every <= 0 {
			every = 1 << 16
		}
	}
	sinceProbe := 0
	for lo := 0; lo < n; lo += gangChunk {
		hi := lo + gangChunk
		if hi > n {
			hi = n
		}
		for k := range members {
			kerns[k](&members[k], lo, hi)
		}
		if every > 0 && hi < n {
			if sinceProbe += hi - lo; sinceProbe >= every {
				sinceProbe = 0
				if err := interrupt(); err != nil {
					return nil, err
				}
			}
		}
	}
	out := make([]*Result, len(cpus))
	for k := range members {
		st := &members[k]
		st.fs.Close()
		if st.feDirect != nil {
			st.feDirect.RecordBulk(tc.loads, tc.stores, tc.prefetches)
		}
		out[k] = st.finishFull(tc, n, tr.Final)
	}
	return out, nil
}
