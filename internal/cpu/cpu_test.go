package cpu

import (
	"strings"
	"testing"

	"sttdl1/internal/isa"
	"sttdl1/internal/mem"
)

// fastMem is a 1-cycle ideal memory for isolating core timing.
type fastMem struct{ lat int64 }

func (f fastMem) Access(now int64, req mem.Req) int64 { return now + f.lat }

// slowLoads serves reads slowly and everything else fast.
type slowLoads struct{ readLat int64 }

func (s slowLoads) Access(now int64, req mem.Req) int64 {
	if req.Kind == mem.Read {
		return now + s.readLat
	}
	return now + 1
}

func newCPU(dmem mem.Port) *CPU {
	return &CPU{Cfg: DefaultConfig(), IMem: fastMem{1}, DMem: dmem}
}

func timed(t *testing.T, c *CPU, insts ...isa.Inst) *Result {
	t.Helper()
	prog := &isa.Program{Insts: append(insts, isa.Inst{Op: isa.OpHALT}), DataSize: 4096}
	res, err := c.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestDualIssueThroughput(t *testing.T) {
	// 40 independent single-cycle instructions on a 2-wide core finish
	// in roughly 20 cycles plus pipeline overhead.
	var insts []isa.Inst
	for i := 0; i < 40; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpMOVI, Rd: isa.Reg(i % 16), Imm: int32(i)})
	}
	res := timed(t, newCPU(fastMem{1}), insts...)
	if res.Cycles < 20 || res.Cycles > 30 {
		t.Errorf("cycles = %d, want ~20-30 for 40 independent insts at width 2", res.Cycles)
	}
	if res.IPC() < 1.3 {
		t.Errorf("IPC = %.2f, want near 2", res.IPC())
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// A chain of dependent FADDs runs at one per FADD latency.
	var insts []isa.Inst
	for i := 0; i < 20; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpFADD, Rd: 1, Ra: 1, Rb: 2})
	}
	res := timed(t, newCPU(fastMem{1}), insts...)
	if res.Cycles < 20*3 {
		t.Errorf("cycles = %d, dependent FADD chain must pay 3 cycles each", res.Cycles)
	}
}

func TestLoadUseStallGrowsWithMemoryLatency(t *testing.T) {
	mk := func(lat int64) int64 {
		c := newCPU(slowLoads{lat})
		var insts []isa.Inst
		for i := 0; i < 50; i++ {
			insts = append(insts,
				isa.Inst{Op: isa.OpLDR, Rd: 1, Ra: isa.ZR, Imm: 0},
				isa.Inst{Op: isa.OpADD, Rd: 2, Ra: 1, Rb: 1}, // immediate use
			)
		}
		return timed(t, c, insts...).Cycles
	}
	fast, slow := mk(1), mk(4)
	if slow <= fast {
		t.Fatalf("slow loads (%d) must cost more than fast (%d)", slow, fast)
	}
	// Each of the 50 load-use pairs should expose roughly the extra 3 cycles.
	if delta := slow - fast; delta < 100 {
		t.Errorf("delta = %d, want >= 100 (3 extra cycles x 50 loads)", delta)
	}
}

func TestReadStallAttribution(t *testing.T) {
	c := newCPU(slowLoads{8})
	res := timed(t, c,
		isa.Inst{Op: isa.OpLDR, Rd: 1, Ra: isa.ZR, Imm: 0},
		isa.Inst{Op: isa.OpADD, Rd: 2, Ra: 1, Rb: 1},
	)
	if res.ReadStallCycles == 0 {
		t.Error("load-use stall must be attributed to reads")
	}
	if res.WriteStallCycles != 0 {
		t.Error("no write stalls expected")
	}
}

func TestLoadQueueLimitsOutstandingLoads(t *testing.T) {
	run := func(depth int) int64 {
		cfg := DefaultConfig()
		cfg.LoadQueueDepth = depth
		c := &CPU{Cfg: cfg, IMem: fastMem{1}, DMem: slowLoads{10}}
		var insts []isa.Inst
		for i := 0; i < 30; i++ {
			insts = append(insts, isa.Inst{Op: isa.OpLDR, Rd: isa.Reg(1 + i%8), Ra: isa.ZR, Imm: int32(4 * i)})
		}
		return timed(t, c, insts...).Cycles
	}
	if shallow, deep := run(1), run(8); shallow <= deep {
		t.Errorf("deeper load queue must not be slower: depth1=%d depth8=%d", shallow, deep)
	}
}

func TestStoreBufferAbsorbsAndStalls(t *testing.T) {
	type slowWrites struct{ mem.Port }
	run := func(depth int) *Result {
		cfg := DefaultConfig()
		cfg.StoreBufDepth = depth
		c := &CPU{Cfg: cfg, IMem: fastMem{1}, DMem: portFunc(func(now int64, req mem.Req) int64 {
			if req.Kind == mem.Write {
				return now + 20
			}
			return now + 1
		})}
		var insts []isa.Inst
		for i := 0; i < 20; i++ {
			insts = append(insts, isa.Inst{Op: isa.OpSTR, Rd: 1, Ra: isa.ZR, Imm: int32(4 * i)})
		}
		prog := &isa.Program{Insts: append(insts, isa.Inst{Op: isa.OpHALT}), DataSize: 4096}
		res, err := c.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	_ = slowWrites{}
	shallow, deep := run(1), run(16)
	if shallow.WriteStallCycles <= deep.WriteStallCycles {
		t.Errorf("shallow store buffer must stall more: %d vs %d",
			shallow.WriteStallCycles, deep.WriteStallCycles)
	}
	if shallow.Cycles <= deep.Cycles {
		t.Errorf("shallow store buffer must be slower: %d vs %d", shallow.Cycles, deep.Cycles)
	}
}

type portFunc func(now int64, req mem.Req) int64

func (f portFunc) Access(now int64, req mem.Req) int64 { return f(now, req) }

func TestBranchMispredictPenalty(t *testing.T) {
	// An alternating branch defeats the 2-bit predictor roughly half the
	// time; a heavily-biased one trains it.
	mkLoop := func(n int) *isa.Program {
		// for i=0..n-1 { if i&1 { } }: branch on lowest bit alternates.
		return &isa.Program{DataSize: 64, Insts: []isa.Inst{
			{Op: isa.OpMOVI, Rd: 0, Imm: 0},
			{Op: isa.OpMOVI, Rd: 1, Imm: int32(n)},
			{Op: isa.OpANDI, Rd: 2, Ra: 0, Imm: 1},     // 2: loop top
			{Op: isa.OpBEQ, Ra: 2, Rb: isa.ZR, Imm: 0}, // alternating direction
			{Op: isa.OpADDI, Rd: 0, Ra: 0, Imm: 1},
			{Op: isa.OpBLT, Ra: 0, Rb: 1, Imm: -4}, // well-predicted backward
			{Op: isa.OpHALT},
		}}
	}
	c := newCPU(fastMem{1})
	res, err := c.Run(mkLoop(400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts < 100 {
		t.Errorf("alternating branch mispredicts = %d, want ~200", res.Mispredicts)
	}
	if res.BranchStallCycles != int64(res.Mispredicts)*DefaultConfig().MispredictPenalty {
		t.Errorf("branch stall accounting inconsistent: %d vs %d mispredicts",
			res.BranchStallCycles, res.Mispredicts)
	}
}

func TestBiasedBranchTrains(t *testing.T) {
	// A backward loop branch taken 400x should mispredict only a handful
	// of times.
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpMOVI, Rd: 0, Imm: 0},
		{Op: isa.OpMOVI, Rd: 1, Imm: 400},
		{Op: isa.OpADDI, Rd: 0, Ra: 0, Imm: 1},
		{Op: isa.OpBLT, Ra: 0, Rb: 1, Imm: -2},
		{Op: isa.OpHALT},
	}}
	c := newCPU(fastMem{1})
	res, err := c.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts > 5 {
		t.Errorf("trained loop branch mispredicts = %d, want <= 5", res.Mispredicts)
	}
	if res.Branches < 400 {
		t.Errorf("branches = %d", res.Branches)
	}
}

func TestPrefetchDoesNotBlock(t *testing.T) {
	// PLDs to a slow memory must not slow the core down.
	slow := portFunc(func(now int64, req mem.Req) int64 {
		if req.Kind == mem.Prefetch {
			return now // model contract: prefetches return immediately
		}
		return now + 1
	})
	var insts []isa.Inst
	for i := 0; i < 50; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpPLD, Ra: isa.ZR, Imm: int32(64 * i)})
	}
	res := timed(t, &CPU{Cfg: DefaultConfig(), IMem: fastMem{1}, DMem: slow}, insts...)
	if res.Prefetches != 50 {
		t.Errorf("prefetches = %d", res.Prefetches)
	}
	if res.Cycles > 80 {
		t.Errorf("prefetch stream took %d cycles; must not block", res.Cycles)
	}
}

func TestCountersAndMemoryKinds(t *testing.T) {
	var kinds []mem.Kind
	rec := portFunc(func(now int64, req mem.Req) int64 {
		kinds = append(kinds, req.Kind)
		return now + 1
	})
	res := timed(t, &CPU{Cfg: DefaultConfig(), IMem: fastMem{1}, DMem: rec},
		isa.Inst{Op: isa.OpLDR, Rd: 1, Ra: isa.ZR, Imm: 0},
		isa.Inst{Op: isa.OpSTR, Rd: 1, Ra: isa.ZR, Imm: 4},
		isa.Inst{Op: isa.OpVLDR, Rd: 1, Ra: isa.ZR, Imm: 16},
		isa.Inst{Op: isa.OpVSTR, Rd: 1, Ra: isa.ZR, Imm: 32},
		isa.Inst{Op: isa.OpPLD, Ra: isa.ZR, Imm: 64},
	)
	if res.Loads != 2 || res.Stores != 2 || res.VecLoads != 1 || res.VecStores != 1 || res.Prefetches != 1 {
		t.Errorf("counters: %+v", res)
	}
	want := []mem.Kind{mem.Read, mem.Write, mem.Read, mem.Write, mem.Prefetch}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("access %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestInstructionFetchGoesThroughIMem(t *testing.T) {
	var fetches int
	imem := portFunc(func(now int64, req mem.Req) int64 {
		if req.Kind != mem.Fetch {
			t.Errorf("IMem got kind %v", req.Kind)
		}
		fetches++
		return now + 1
	})
	c := &CPU{Cfg: DefaultConfig(), IMem: imem, DMem: fastMem{1}}
	timedProg := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpHALT},
	}}
	if _, err := c.Run(timedProg); err != nil {
		t.Fatal(err)
	}
	if fetches != 3 {
		t.Errorf("fetches = %d, want 3", fetches)
	}
}

func TestTimingDeterminism(t *testing.T) {
	mk := func() int64 {
		c := newCPU(slowLoads{4})
		var insts []isa.Inst
		for i := 0; i < 200; i++ {
			insts = append(insts,
				isa.Inst{Op: isa.OpLDR, Rd: 1, Ra: isa.ZR, Imm: int32(4 * (i % 64))},
				isa.Inst{Op: isa.OpADD, Rd: 2, Ra: 1, Rb: 2},
			)
		}
		return timed(t, c, insts...).Cycles
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("nondeterministic timing: %d vs %d", a, b)
	}
}

func TestRunawayTimedBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 100
	c := &CPU{Cfg: cfg, IMem: fastMem{1}, DMem: fastMem{1}}
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpB, Imm: -1},
		{Op: isa.OpHALT},
	}}
	_, err := c.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v", err)
	}
}

func TestPCOutOfRangeFault(t *testing.T) {
	c := newCPU(fastMem{1})
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpMOVI, Rd: 1, Imm: 99},
		{Op: isa.OpJR, Ra: 1},
	}}
	_, err := c.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "pc outside") {
		t.Errorf("err = %v", err)
	}
}

func TestIPCZeroSafe(t *testing.T) {
	var r Result
	if r.IPC() != 0 {
		t.Error("IPC of empty result must be 0")
	}
}
