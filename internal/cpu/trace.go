// Execution-trace capture and timing replay (DESIGN.md §7.4).
//
// The timing core is in-order: the retired instruction stream, every
// effective address, and every branch direction are produced by the
// functional interpreter alone and never depend on cache latencies,
// buffer occupancy, or any other timing state. A Trace therefore records
// one functional execution — per retired instruction: the PC, the
// effective address of memory ops, and whether a branch redirected
// control flow — and ReplayTrace re-runs the *full* timing model (fetch
// through the IL1, operand scoreboarding, store buffer, load queue,
// branch prediction, mispredict refill, every DL1/L2/DRAM access)
// against any CPU/hierarchy configuration by consuming the trace instead
// of stepping the interpreter. Replay is contractually byte-identical to
// RunState: same Cycles, same stall counters, same hierarchy stats.
//
// Replay is also substantially cheaper per instruction than live
// execution: the functional step disappears, and everything static per
// PC — operand register-file indexes, latency class, memory class,
// branch class — is pre-decoded once per program into a flat table,
// while the branch predictor's outcome stream (which depends only on the
// PC/direction stream and the table size) is precomputed once per trace
// and shared by every configuration replaying it.
package cpu

import (
	"fmt"
	"sync"

	"sttdl1/internal/isa"
)

// Trace is the retired-instruction stream of one functional execution.
// PCs, Addrs and Taken are parallel: record i retired the instruction at
// PCs[i], accessed byte address Addrs[i] if it was a memory op, and
// redirected control flow iff bit i of Taken is set. A Trace is
// immutable after construction and safe for concurrent replay.
type Trace struct {
	// PCs is the program-counter stream (indexes into prog.Insts).
	PCs []int32
	// Addrs is the effective byte address per record (0 for non-memory
	// instructions).
	Addrs []uint32
	// Taken is a bitset over records: bit i set means record i redirected
	// control flow (taken branch, call, indirect jump).
	Taken []uint64
	// Final is the architectural state after the run. It is shared by
	// every replay Result consuming this trace and must not be mutated.
	// Traces rebuilt from a serialized stream carry no final state (nil).
	Final *State

	dec []decoded
	// counts are the trace's configuration-invariant retirement statistics
	// (instruction/class counts), computed once so replay does not
	// re-count per design point.
	counts traceCounts

	mu      sync.Mutex
	mispred map[int]mispredSet // bpred table size -> mispredict bitset
}

// traceCounts are the Result counters that depend only on the retired
// stream, never on timing configuration.
type traceCounts struct {
	loads, stores, prefetches uint64
	vecLoads, vecStores       uint64
	branches                  uint64
}

// mispredSet is the sorted list of record indexes the predictor gets
// wrong (its length is the trace's mispredict total for that predictor
// size). A sparse list beats a bitset in replay: the loop compares the
// running index against one register instead of probing a bit per record.
type mispredSet struct {
	idx []int32
}

// Len returns the number of retired instructions in the trace.
func (t *Trace) Len() int { return len(t.PCs) }

// TakenAt reports whether record i redirected control flow.
func (t *Trace) TakenAt(i int) bool { return t.Taken[i>>6]&(1<<uint(i&63)) != 0 }

// decoded is the per-PC static portion of the timing model: everything
// RunState derives from the instruction word each time it retires.
//
// Absent operands are resolved to dummy register-file slots instead of a
// -1 sentinel so the replay loop indexes unconditionally: srcDummy is a
// read-only slot pinned at ready 0 / ALU producer (never the readiness
// maximum that matters, never load-attributed), and dstDummy is a
// write-only sink no source index ever reads.
// decoded is the static decode of one instruction, packed to 8 bytes so
// the decode table stays dense in the replay loop's cache working set
// (every field provably fits: latencies are <= 16 cycles, the register
// file has 82 slots, and accesses are at most a vector line wide).
type decoded struct {
	lat         uint8
	srcA, srcB  uint8 // register-file indexes (srcDummy when absent)
	srcD, dst   uint8 // read-modify-write source / writeback destination
	accessBytes uint8
	mem         uint8 // 0 none, 'l' load, 's' store, 'p' prefetch
	flags       uint8
}

// Replay register-file geometry: the architectural slots, plus the two
// dummy slots decoded operands use for "absent".
const (
	replayRegs = isa.NumIntRegs + isa.NumFPRegs + isa.NumVecRegs
	srcDummy   = replayRegs
	dstDummy   = replayRegs + 1
)

const (
	dfDiv    uint8 = 1 << iota // serializes on the unpipelined divider
	dfVec                      // vector op (VecLoads/VecStores accounting)
	dfCondBr                   // conditional branch (2-bit predictor)
	dfJR                       // indirect jump (always mispredicts)
	dfBranch                   // counted in Result.Branches (excludes HALT)
)

// decodeProg flattens the static decode of every instruction.
func decodeProg(prog *isa.Program) []decoded {
	ridx := func(class isa.RegClass, r isa.Reg) uint8 {
		if class == isa.RCNone || (class == isa.RCInt && r == isa.ZR) {
			return srcDummy
		}
		return uint8(regIdx(class, r))
	}
	dec := make([]decoded, len(prog.Insts))
	for pc, in := range prog.Insts {
		info := in.Op.Info()
		d := decoded{
			lat:         uint8(latencyOf(in.Op)),
			srcA:        ridx(info.SrcAClass, in.Ra),
			srcB:        ridx(info.SrcBClass, in.Rb),
			srcD:        srcDummy,
			dst:         dstDummy,
			accessBytes: uint8(info.AccessBytes),
			mem:         info.Mem,
		}
		if info.DstIsSrc {
			d.srcD = ridx(info.DstClass, in.Rd)
		}
		if info.DstClass != isa.RCNone && info.Mem != 's' {
			if i := ridx(info.DstClass, in.Rd); i != srcDummy {
				d.dst = i
			}
		}
		switch in.Op {
		case isa.OpDIV, isa.OpREM, isa.OpFDIV, isa.OpVDIV:
			d.flags |= dfDiv
		}
		if in.Op.IsVector() {
			d.flags |= dfVec
		}
		if in.Op.IsBranch() && in.Op != isa.OpHALT {
			d.flags |= dfBranch
			if in.Op.IsCondBranch() {
				d.flags |= dfCondBr
			} else if in.Op == isa.OpJR {
				d.flags |= dfJR
			}
		}
		dec[pc] = d
	}
	return dec
}

// countTrace tallies the configuration-invariant retirement statistics of
// a PC stream.
func countTrace(pcs []int32, dec []decoded) traceCounts {
	var tc traceCounts
	for _, pc := range pcs {
		d := &dec[pc]
		switch d.mem {
		case 'l':
			tc.loads++
			if d.flags&dfVec != 0 {
				tc.vecLoads++
			}
		case 's':
			tc.stores++
			if d.flags&dfVec != 0 {
				tc.vecStores++
			}
		case 'p':
			tc.prefetches++
		}
		if d.flags&dfBranch != 0 {
			tc.branches++
		}
	}
	return tc
}

// Capture executes prog functionally (no timing) from st until HALT and
// records the retired-instruction stream. The trace is independent of
// any timing configuration: it can be replayed against every hierarchy
// and core variant. maxInsts 0 means the DefaultConfig budget.
func Capture(prog *isa.Program, st *State, maxInsts uint64) (*Trace, error) {
	if maxInsts == 0 {
		maxInsts = DefaultConfig().MaxInsts
	}
	// Records are collected in fixed-size chunks and assembled into
	// exact-size slices once at HALT: traces run to millions of records,
	// where append's growth factor both churns multi-megabyte copies and
	// strands up to a quarter of the final capacity in the long-lived
	// trace cache.
	const chunkRecs = 1 << 16
	type chunk struct {
		pcs   [chunkRecs]int32
		addrs [chunkRecs]uint32
		taken [chunkRecs / 64]uint64
	}
	var chunks []*chunk
	var cur *chunk
	fill := chunkRecs // records in the current chunk (full = rotate)
	var n uint64
	for !st.Halted {
		if n >= maxInsts {
			return nil, st.fault(st.PC, isa.Inst{}, "instruction budget %d exhausted (runaway loop?)", maxInsts)
		}
		pc := st.PC
		info, err := st.Step(prog)
		if err != nil {
			return nil, err
		}
		if fill == chunkRecs {
			cur = new(chunk)
			chunks = append(chunks, cur)
			fill = 0
		}
		cur.pcs[fill] = int32(pc)
		cur.addrs[fill] = info.Addr
		if info.Taken {
			cur.taken[fill>>6] |= 1 << uint(fill&63)
		}
		fill++
		n++
	}
	t := &Trace{
		PCs:   make([]int32, n),
		Addrs: make([]uint32, n),
		Taken: make([]uint64, (n+63)/64),
	}
	for ci, c := range chunks {
		base := ci * chunkRecs
		m := copy(t.PCs[base:], c.pcs[:])
		copy(t.Addrs[base:], c.addrs[:m])
		copy(t.Taken[base/64:], c.taken[:(m+63)/64])
	}
	t.Final = st
	t.dec = decodeProg(prog)
	t.counts = countTrace(t.PCs, t.dec)
	return t, nil
}

// NewTrace rebuilds a replayable trace from its raw streams (the decode
// side of a serialized trace). Every PC must fall inside prog; the
// rebuilt trace has no Final state.
func NewTrace(prog *isa.Program, pcs []int32, addrs []uint32, taken []uint64) (*Trace, error) {
	if len(pcs) != len(addrs) {
		return nil, fmt.Errorf("cpu: trace streams disagree: %d PCs, %d addrs", len(pcs), len(addrs))
	}
	if want := (len(pcs) + 63) / 64; len(taken) < want {
		return nil, fmt.Errorf("cpu: taken bitset too short: %d words < %d", len(taken), want)
	}
	for i, pc := range pcs {
		if pc < 0 || int(pc) >= len(prog.Insts) {
			return nil, fmt.Errorf("cpu: trace record %d: pc %d outside program (0..%d)", i, pc, len(prog.Insts)-1)
		}
	}
	dec := decodeProg(prog)
	return &Trace{PCs: pcs, Addrs: addrs, Taken: taken, dec: dec, counts: countTrace(pcs, dec)}, nil
}

// mispredicts returns (computing and memoizing on first use) the
// mispredict bitset for a predictor table of the given size: bit i set
// means record i is a branch the 2-bit predictor gets wrong, or an
// indirect jump. The stream depends only on the trace and the table
// size — never on cache or core timing — so every configuration
// replaying this trace shares it.
func (t *Trace) mispredicts(entries int) mispredSet {
	if entries <= 0 || entries&(entries-1) != 0 {
		entries = 512
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ms, ok := t.mispred[entries]; ok {
		return ms
	}
	pred := newBpred(entries)
	var idx []int32
	for i, pc := range t.PCs {
		d := &t.dec[pc]
		if d.flags&dfCondBr != 0 {
			taken := t.TakenAt(i)
			if pred.predict(int(pc)) != taken {
				idx = append(idx, int32(i))
			}
			pred.update(int(pc), taken)
		} else if d.flags&dfJR != 0 {
			idx = append(idx, int32(i))
		}
	}
	ms := mispredSet{idx: idx}
	if t.mispred == nil {
		t.mispred = map[int]mispredSet{}
	}
	t.mispred[entries] = ms
	return ms
}

// ReplayCtl controls a partial timing replay (DESIGN.md §7.5). The
// zero value (or a nil *ReplayCtl) replays the whole trace.
type ReplayCtl struct {
	// MaxRecords truncates the pass to the first MaxRecords trace
	// records (0 = all) — the cheap "truncated measured replay" rung of
	// the successive-halving ladder. The partial Result carries the
	// cycle count, stall counters and retirement statistics of exactly
	// that prefix.
	MaxRecords int
	// CheckEvery is the number of records between Abort probes (0 =
	// never probe). Probes interrupt the replay loop, so the interval
	// trades abort latency against per-record overhead.
	CheckEvery int
	// Abort, when non-nil, is called every CheckEvery records with the
	// pass's current cycle lower bound (the final cycle count can only
	// be larger). Returning true abandons the replay; the partial
	// Result reflects the records retired so far.
	Abort func(cyclesSoFar int64) bool
	// Interrupt, when non-nil, is probed every InterruptEvery records in
	// every pass — unlike Abort it also runs during the warm-up, whose
	// cycle counts are discarded but whose records still cost real time.
	// A non-nil return abandons the replay with that error and no
	// Result. This is how context cancellation reaches the timing loop
	// promptly: a canceled or superseded sweep-service job stops burning
	// CPU mid-replay instead of finishing a doomed simulation
	// (internal/replay wires ctx.Err in, internal/serve relies on it).
	Interrupt func() error
	// InterruptEvery is the number of records between Interrupt probes
	// (0 = every 65536 records — coarse enough to be free, fine enough
	// to cancel a multi-second replay within milliseconds).
	InterruptEvery int
}

// ReplayTrace re-runs the timing model over a captured trace. It is the
// timing half of RunState with the functional interpreter replaced by
// the trace: cycles, every stall counter, and every memory access
// presented to IMem/DMem are byte-identical to a live run of the same
// program under the same configuration (enforced by
// TestReplayMatchesLive* and the Fig. 3 equivalence matrix).
//
// The returned Result shares the trace's Final architectural state; it
// must be treated as read-only.
func (c *CPU) ReplayTrace(prog *isa.Program, tr *Trace) (*Result, error) {
	res, _, err := c.ReplayTraceCtl(prog, tr, nil)
	return res, err
}

// ReplayTraceCtl is ReplayTrace under partial-run control: ctl can
// truncate the pass after a record prefix and/or abort it when a probe
// decides the run is no longer worth finishing (the early-abort
// criterion of the guided design-space search). It reports whether the
// pass was stopped early by an Abort probe; a truncated or aborted
// Result holds the cycle count, stall counters and retirement
// statistics of exactly the retired prefix (the prefix cycle count is a
// lower bound of the full run's). With a nil ctl it is exactly
// ReplayTrace.
//
// The pass runs on the kernel registry (kernel.go): the port topology
// selects a specialized loop variant once, and this driver walks the
// trace in chunks bounded by the next Abort/Interrupt probe point, so
// the per-record probe arithmetic the loop used to carry is gone — a
// probe every K records is a kernel call of K records, and the common
// probe-free replay is a single kernel call over the whole trace.
func (c *CPU) ReplayTraceCtl(prog *isa.Program, tr *Trace, ctl *ReplayCtl) (*Result, bool, error) {
	return c.replayShaped(prog, tr, ctl, ShapeOf(c.IMem, c.DMem))
}

// ReplayTraceShaped is ReplayTraceCtl with the kernel shape pinned
// instead of auto-selected — the equivalence harness uses it to diff
// every specialized variant against ShapeGeneric on identical systems.
// shape must not claim capabilities the ports lack (at most ShapeOf's
// pick); ShapeGeneric is always valid.
func (c *CPU) ReplayTraceShaped(prog *isa.Program, tr *Trace, ctl *ReplayCtl, shape KernelShape) (*Result, bool, error) {
	if shape != ShapeGeneric {
		if max := ShapeOf(c.IMem, c.DMem); shape > max {
			return nil, false, fmt.Errorf("cpu: kernel shape %v not applicable to this port topology (max %v)", shape, max)
		}
	}
	return c.replayShaped(prog, tr, ctl, shape)
}

func (c *CPU) replayShaped(prog *isa.Program, tr *Trace, ctl *ReplayCtl, shape KernelShape) (*Result, bool, error) {
	cfg := c.Cfg
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 2
	}
	if cfg.StoreBufDepth <= 0 {
		cfg.StoreBufDepth = 4
	}
	if cfg.LoadQueueDepth <= 0 {
		cfg.LoadQueueDepth = 2
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}
	dec, tc := tr.dec, tr.counts
	if dec == nil {
		dec = decodeProg(prog)
		tc = countTrace(tr.PCs, dec)
	}
	mp := tr.mispredicts(cfg.BpredEntries)

	st := &replayState{}
	st.init(&cfg, c.IMem, c.DMem, tr, dec, mp.idx)
	if shape == ShapeDirect {
		st.bindDirect(c.DMem)
	}
	kern := kernels[shape]

	pcs := tr.PCs
	n := len(pcs)
	budgeted := uint64(n) > cfg.MaxInsts
	if budgeted {
		n = int(cfg.MaxInsts)
	}
	truncated := false
	if ctl != nil && ctl.MaxRecords > 0 && ctl.MaxRecords < n {
		n = ctl.MaxRecords
		truncated, budgeted = true, false // the prefix retires within budget
	}
	nextProbe := -1 // record count of the next Abort probe (-1 = never)
	if ctl != nil && ctl.Abort != nil && ctl.CheckEvery > 0 {
		nextProbe = ctl.CheckEvery
	}
	nextIntr, intrEvery := -1, 0 // record count of the next Interrupt probe
	if ctl != nil && ctl.Interrupt != nil {
		intrEvery = ctl.InterruptEvery
		if intrEvery <= 0 {
			intrEvery = 1 << 16
		}
		nextIntr = intrEvery
	}
	aborted := false
	for pos := 0; pos < n; {
		hi := n
		if nextProbe > 0 && nextProbe < hi {
			hi = nextProbe
		}
		if nextIntr > 0 && nextIntr < hi {
			hi = nextIntr
		}
		kern(st, pos, hi)
		pos = hi
		// Abort probe: maxDone only grows, so it is a sound lower bound
		// of the pass's final cycle count at every probe point.
		if pos == nextProbe {
			if ctl.Abort(st.maxDone) {
				aborted = true
				n = pos
				break
			}
			nextProbe += ctl.CheckEvery
		}
		// Interrupt probe: abandon the pass with the probe's error. The
		// whole System is discarded with it, so the open fetch stream's
		// unflushed bookkeeping is irrelevant.
		if pos == nextIntr {
			if err := ctl.Interrupt(); err != nil {
				return nil, false, err
			}
			nextIntr += intrEvery
		}
	}
	st.fs.Close()

	if budgeted || truncated || aborted {
		// The partial result mirrors a live run's state at the cut:
		// counters over the n records that did retire.
		tc = countTrace(pcs[:n], dec)
		if st.feDirect != nil {
			st.feDirect.RecordBulk(tc.loads, tc.stores, tc.prefetches)
		}
		res := &Result{State: tr.Final}
		res.FetchStallCycles = st.fetchStall
		res.ReadStallCycles = st.readStall
		res.WriteStallCycles = st.writeStall
		res.Insts = uint64(n)
		res.Loads, res.Stores, res.Prefetches = tc.loads, tc.stores, tc.prefetches
		res.VecLoads, res.VecStores = tc.vecLoads, tc.vecStores
		res.Branches = tc.branches
		var mc uint64
		for _, ix := range st.mpIdx {
			if int(ix) >= n {
				break
			}
			mc++
		}
		res.Mispredicts = mc
		res.BranchStallCycles = int64(mc) * cfg.MispredictPenalty
		if budgeted {
			return res, false, &Fault{PC: int(pcs[n]), Msg: fmt.Sprintf("instruction budget %d exhausted (runaway loop?)", cfg.MaxInsts)}
		}
		maxDone := st.maxDone
		if st.drainTail > maxDone {
			maxDone = st.drainTail
		}
		res.Cycles = maxDone
		return res, aborted, nil
	}

	if st.feDirect != nil {
		st.feDirect.RecordBulk(tc.loads, tc.stores, tc.prefetches)
	}
	return st.finishFull(tc, n, tr.Final), false, nil
}
