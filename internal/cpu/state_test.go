package cpu

import (
	"math"
	"strings"
	"testing"

	"sttdl1/internal/isa"
)

// run interprets a short instruction sequence (HALT appended) and
// returns the final state.
func run(t *testing.T, insts ...isa.Inst) *State {
	t.Helper()
	prog := &isa.Program{Insts: append(insts, isa.Inst{Op: isa.OpHALT}), DataSize: 4096}
	st, err := Interpret(prog, 1_000_000)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return st
}

func TestIntArithmetic(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: 20},
		isa.Inst{Op: isa.OpMOVI, Rd: 2, Imm: 6},
		isa.Inst{Op: isa.OpADD, Rd: 3, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpSUB, Rd: 4, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpMUL, Rd: 5, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpDIV, Rd: 6, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpREM, Rd: 7, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpAND, Rd: 8, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpORR, Rd: 9, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpEOR, Rd: 10, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpLSL, Rd: 11, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpASR, Rd: 12, Ra: 1, Rb: 2},
	)
	want := map[int]int32{3: 26, 4: 14, 5: 120, 6: 3, 7: 2, 8: 4, 9: 22, 10: 18, 11: 20 << 6, 12: 0}
	for r, v := range want {
		if st.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, st.R[r], v)
		}
	}
}

func TestImmediateArithmetic(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: -8},
		isa.Inst{Op: isa.OpADDI, Rd: 2, Ra: 1, Imm: 3},
		isa.Inst{Op: isa.OpSUBI, Rd: 3, Ra: 1, Imm: 3},
		isa.Inst{Op: isa.OpMULI, Rd: 4, Ra: 1, Imm: -2},
		isa.Inst{Op: isa.OpLSRI, Rd: 5, Ra: 1, Imm: 28},
		isa.Inst{Op: isa.OpASRI, Rd: 6, Ra: 1, Imm: 2},
		isa.Inst{Op: isa.OpANDI, Rd: 7, Ra: 1, Imm: 0xF},
		isa.Inst{Op: isa.OpEORI, Rd: 8, Ra: 1, Imm: -1},
	)
	want := map[int]int32{2: -5, 3: -11, 4: 16, 5: 15, 6: -2, 7: 8, 8: 7}
	for r, v := range want {
		if st.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, st.R[r], v)
		}
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: isa.ZR, Imm: 42}, // write discarded
		isa.Inst{Op: isa.OpADDI, Rd: 1, Ra: isa.ZR, Imm: 5},
	)
	if st.R[isa.ZR] != 0 {
		t.Errorf("zr = %d, must stay 0", st.R[isa.ZR])
	}
	if st.R[1] != 5 {
		t.Errorf("r1 = %d, want 5", st.R[1])
	}
}

func TestCompareAndSelect(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: -3},
		isa.Inst{Op: isa.OpMOVI, Rd: 2, Imm: 4},
		isa.Inst{Op: isa.OpSLT, Rd: 3, Ra: 1, Rb: 2},   // 1
		isa.Inst{Op: isa.OpSLTU, Rd: 4, Ra: 1, Rb: 2},  // 0 (unsigned -3 is huge)
		isa.Inst{Op: isa.OpSEQ, Rd: 5, Ra: 1, Rb: 1},   // 1
		isa.Inst{Op: isa.OpSNE, Rd: 6, Ra: 1, Rb: 2},   // 1
		isa.Inst{Op: isa.OpSLTI, Rd: 7, Ra: 1, Imm: 0}, // 1
		isa.Inst{Op: isa.OpMOVI, Rd: 8, Imm: 100},
		isa.Inst{Op: isa.OpSEL, Rd: 8, Ra: 3, Rb: 2}, // cond true -> r8 = 4
		isa.Inst{Op: isa.OpMOVI, Rd: 9, Imm: 100},
		isa.Inst{Op: isa.OpSEL, Rd: 9, Ra: isa.ZR, Rb: 2}, // cond false -> keep
	)
	want := map[int]int32{3: 1, 4: 0, 5: 1, 6: 1, 7: 1, 8: 4, 9: 100}
	for r, v := range want {
		if st.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, st.R[r], v)
		}
	}
}

func TestFloatOps(t *testing.T) {
	fm := func(rd isa.Reg, v float32) isa.Inst {
		return isa.Inst{Op: isa.OpFMOVI, Rd: rd, Imm: isa.BitsFromF32(v)}
	}
	st := run(t,
		fm(1, 6), fm(2, -1.5),
		isa.Inst{Op: isa.OpFADD, Rd: 3, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFSUB, Rd: 4, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFMUL, Rd: 5, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFDIV, Rd: 6, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFNEG, Rd: 7, Ra: 2},
		isa.Inst{Op: isa.OpFABS, Rd: 8, Ra: 2},
		isa.Inst{Op: isa.OpFMAX, Rd: 9, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFMIN, Rd: 10, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpFSLT, Rd: 1, Ra: 2, Rb: 1}, // int dest
		isa.Inst{Op: isa.OpFSLE, Rd: 2, Ra: 1, Rb: 1},
		isa.Inst{Op: isa.OpFSEQ, Rd: 3, Ra: 1, Rb: 2},
	)
	wantF := map[int]float32{3: 4.5, 4: 7.5, 5: -9, 6: -4, 7: 1.5, 8: 1.5, 9: 6, 10: -1.5}
	for r, v := range wantF {
		if st.F[r] != v {
			t.Errorf("f%d = %g, want %g", r, st.F[r], v)
		}
	}
	if st.R[1] != 1 || st.R[2] != 1 || st.R[3] != 0 {
		t.Errorf("float compares: r1=%d r2=%d r3=%d", st.R[1], st.R[2], st.R[3])
	}
}

func TestFloatIntConversion(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: -7},
		isa.Inst{Op: isa.OpFCVT, Rd: 2, Ra: 1},
		isa.Inst{Op: isa.OpFMOVI, Rd: 3, Imm: isa.BitsFromF32(9.99)},
		isa.Inst{Op: isa.OpFTOI, Rd: 4, Ra: 3},
	)
	if st.F[2] != -7 {
		t.Errorf("fcvt = %g", st.F[2])
	}
	if st.R[4] != 9 {
		t.Errorf("ftoi = %d, want truncation to 9", st.R[4])
	}
}

func TestVectorOps(t *testing.T) {
	fm := func(rd isa.Reg, v float32) isa.Inst {
		return isa.Inst{Op: isa.OpFMOVI, Rd: rd, Imm: isa.BitsFromF32(v)}
	}
	st := run(t,
		fm(0, 2), fm(1, 3),
		isa.Inst{Op: isa.OpVSPLAT, Rd: 1, Ra: 0}, // v1 = [2,2,2,2]
		isa.Inst{Op: isa.OpVSPLAT, Rd: 2, Ra: 1}, // v2 = [3,3,3,3]
		isa.Inst{Op: isa.OpVADD, Rd: 3, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpVSUB, Rd: 4, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpVMUL, Rd: 5, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpVDIV, Rd: 6, Ra: 2, Rb: 1},
		isa.Inst{Op: isa.OpVMIN, Rd: 7, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpVMAX, Rd: 8, Ra: 1, Rb: 2},
		isa.Inst{Op: isa.OpVMOV, Rd: 9, Ra: 3},
		isa.Inst{Op: isa.OpVSUM, Rd: 10, Ra: 5},       // 4*6 = 24 into f10
		isa.Inst{Op: isa.OpVFMA, Rd: 3, Ra: 1, Rb: 2}, // v3 += 2*3 -> 11
	)
	checks := map[int]float32{3: 11, 4: -1, 5: 6, 6: 1.5, 7: 2, 8: 3, 9: 5}
	for r, v := range checks {
		for l := 0; l < isa.VecLanes; l++ {
			if st.V[r][l] != v {
				t.Errorf("v%d[%d] = %g, want %g", r, l, st.V[r][l], v)
			}
		}
	}
	if st.F[10] != 24 {
		t.Errorf("vsum = %g, want 24", st.F[10])
	}
}

func TestVectorCompareSelect(t *testing.T) {
	fm := func(rd isa.Reg, v float32) isa.Inst {
		return isa.Inst{Op: isa.OpFMOVI, Rd: rd, Imm: isa.BitsFromF32(v)}
	}
	st := run(t,
		fm(0, 1), fm(1, 2),
		isa.Inst{Op: isa.OpVSPLAT, Rd: 1, Ra: 0},      // [1,1,1,1]
		isa.Inst{Op: isa.OpVSPLAT, Rd: 2, Ra: 1},      // [2,2,2,2]
		isa.Inst{Op: isa.OpVCLT, Rd: 3, Ra: 1, Rb: 2}, // all 1.0
		isa.Inst{Op: isa.OpVCLE, Rd: 4, Ra: 2, Rb: 2}, // all 1.0
		isa.Inst{Op: isa.OpVCEQ, Rd: 5, Ra: 1, Rb: 2}, // all 0.0
		isa.Inst{Op: isa.OpVMOV, Rd: 6, Ra: 1},
		isa.Inst{Op: isa.OpVSELM, Rd: 6, Ra: 3, Rb: 2}, // mask true -> 2s
		isa.Inst{Op: isa.OpVMOV, Rd: 7, Ra: 1},
		isa.Inst{Op: isa.OpVSELM, Rd: 7, Ra: 5, Rb: 2}, // mask false -> keep 1s
	)
	for l := 0; l < isa.VecLanes; l++ {
		if st.V[3][l] != 1 || st.V[4][l] != 1 || st.V[5][l] != 0 {
			t.Fatalf("masks wrong at lane %d", l)
		}
		if st.V[6][l] != 2 {
			t.Errorf("vselm taken: v6[%d] = %g", l, st.V[6][l])
		}
		if st.V[7][l] != 1 {
			t.Errorf("vselm not taken: v7[%d] = %g", l, st.V[7][l])
		}
	}
}

func TestMemoryOps(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: 64},
		isa.Inst{Op: isa.OpMOVI, Rd: 2, Imm: 0x1234},
		isa.Inst{Op: isa.OpSTR, Rd: 2, Ra: 1, Imm: 0},
		isa.Inst{Op: isa.OpLDR, Rd: 3, Ra: 1, Imm: 0},
		isa.Inst{Op: isa.OpMOVI, Rd: 4, Imm: 2},
		isa.Inst{Op: isa.OpSTRX, Rd: 2, Ra: 1, Rb: 4, Imm: 2}, // [64 + 2<<2] = [72]
		isa.Inst{Op: isa.OpLDR, Rd: 5, Ra: 1, Imm: 8},
		isa.Inst{Op: isa.OpFMOVI, Rd: 0, Imm: isa.BitsFromF32(2.5)},
		isa.Inst{Op: isa.OpFSTR, Rd: 0, Ra: 1, Imm: 16},
		isa.Inst{Op: isa.OpFLDRX, Rd: 1, Ra: 1, Rb: 4, Imm: 3}, // [64 + 16]
	)
	if st.R[3] != 0x1234 || st.R[5] != 0x1234 {
		t.Errorf("loads r3=%#x r5=%#x", st.R[3], st.R[5])
	}
	if st.F[1] != 2.5 {
		t.Errorf("fldrx = %g", st.F[1])
	}
}

func TestVectorMemoryOps(t *testing.T) {
	insts := []isa.Inst{
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: 128},
	}
	for i := 0; i < 4; i++ {
		insts = append(insts,
			isa.Inst{Op: isa.OpFMOVI, Rd: 0, Imm: isa.BitsFromF32(float32(i + 1))},
			isa.Inst{Op: isa.OpFSTR, Rd: 0, Ra: 1, Imm: int32(4 * i)},
		)
	}
	insts = append(insts,
		isa.Inst{Op: isa.OpVLDR, Rd: 2, Ra: 1, Imm: 0},
		isa.Inst{Op: isa.OpVSTR, Rd: 2, Ra: 1, Imm: 64},
		isa.Inst{Op: isa.OpFLDR, Rd: 3, Ra: 1, Imm: 64 + 12},
	)
	st := run(t, insts...)
	for l := 0; l < 4; l++ {
		if st.V[2][l] != float32(l+1) {
			t.Errorf("v2[%d] = %g", l, st.V[2][l])
		}
	}
	if st.F[3] != 4 {
		t.Errorf("stored lane 3 = %g", st.F[3])
	}
}

func TestBranchesAndCalls(t *testing.T) {
	// Counting loop: r0 = 5 via BNE; then a BL/JR round trip sets r1.
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpMOVI, Rd: 0, Imm: 0},
		{Op: isa.OpMOVI, Rd: 2, Imm: 5},
		{Op: isa.OpADDI, Rd: 0, Ra: 0, Imm: 1}, // 2: loop top
		{Op: isa.OpBNE, Ra: 0, Rb: 2, Imm: -2}, // back to 2
		{Op: isa.OpBL, Imm: 2},                 // call 7
		{Op: isa.OpB, Imm: 1},                  // skip the callee
		{Op: isa.OpNOP},                        // 6 (skipped)
		{Op: isa.OpHALT},                       // 7 -> halts? no: BL target
	}}
	// Rebuild: BL at 4 jumps to 4+1+2 = 7 (halt). LR = 5.
	st, err := Interpret(prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[0] != 5 {
		t.Errorf("loop count r0 = %d, want 5", st.R[0])
	}
	if st.R[isa.LR] != 5 {
		t.Errorf("lr = %d, want 5", st.R[isa.LR])
	}
}

func TestJRReturns(t *testing.T) {
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpBL, Imm: 2},           // 0: call 3
		{Op: isa.OpMOVI, Rd: 1, Imm: 99}, // 1: after return
		{Op: isa.OpHALT},                 // 2
		{Op: isa.OpMOVI, Rd: 2, Imm: 7},  // 3: callee
		{Op: isa.OpJR, Ra: isa.LR},       // 4: return to 1
	}}
	st, err := Interpret(prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[1] != 99 || st.R[2] != 7 {
		t.Errorf("r1=%d r2=%d", st.R[1], st.R[2])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		prog []isa.Inst
		want string
	}{
		{"div0", []isa.Inst{{Op: isa.OpDIV, Rd: 1, Ra: 2, Rb: isa.ZR}}, "division by zero"},
		{"rem0", []isa.Inst{{Op: isa.OpREM, Rd: 1, Ra: 2, Rb: isa.ZR}}, "remainder by zero"},
		{"load oob", []isa.Inst{
			{Op: isa.OpMOVI, Rd: 1, Imm: 1 << 28},
			{Op: isa.OpLDR, Rd: 2, Ra: 1, Imm: 0},
		}, "outside memory"},
		{"store oob", []isa.Inst{
			{Op: isa.OpMOVI, Rd: 1, Imm: 1 << 28},
			{Op: isa.OpSTR, Rd: 2, Ra: 1, Imm: 0},
		}, "outside memory"},
		{"pc oob", []isa.Inst{{Op: isa.OpJR, Ra: 1}}, "pc outside"}, // r1=0... jr 0 loops
	}
	for _, c := range cases[:4] {
		t.Run(c.name, func(t *testing.T) {
			prog := &isa.Program{DataSize: 4096, Insts: append(c.prog, isa.Inst{Op: isa.OpHALT})}
			_, err := Interpret(prog, 1000)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestPLDNeverFaults(t *testing.T) {
	st := run(t,
		isa.Inst{Op: isa.OpMOVI, Rd: 1, Imm: 1 << 30},
		isa.Inst{Op: isa.OpPLD, Ra: 1, Imm: 0},
	)
	if !st.Halted {
		t.Error("program with wild PLD must complete")
	}
}

func TestRunawayBudget(t *testing.T) {
	prog := &isa.Program{DataSize: 64, Insts: []isa.Inst{
		{Op: isa.OpB, Imm: -1},
		{Op: isa.OpHALT},
	}}
	_, err := Interpret(prog, 100)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget exhaustion", err)
	}
}

func TestStackPointerInitialized(t *testing.T) {
	prog := &isa.Program{DataSize: 100, Insts: []isa.Inst{{Op: isa.OpHALT}}}
	st := NewState(prog)
	if int(st.R[isa.SP]) != 100+StackBytes {
		t.Errorf("sp = %d, want %d", st.R[isa.SP], 100+StackBytes)
	}
}

func TestNaNHandling(t *testing.T) {
	nan := float32(math.NaN())
	st := run(t,
		isa.Inst{Op: isa.OpFMOVI, Rd: 1, Imm: isa.BitsFromF32(nan)},
		isa.Inst{Op: isa.OpFSEQ, Rd: 1, Ra: 1, Rb: 1}, // NaN != NaN
	)
	if st.R[1] != 0 {
		t.Error("NaN must not compare equal to itself")
	}
}
