// Config-specialized replay kernels (DESIGN.md §7.9).
//
// The replay hot loop used to be one monolithic function carrying
// per-record branches for features most configurations disable (the
// partial-replay probes, the fetch fast-path test, the Direct front-end's
// per-access stats call). It is now a small registry of monomorphized
// loop variants over a config-shape key computed once per pass:
//
//	ShapeGeneric  interface fetch and data ports — checked runs, IL1
//	              front-ends, anything the lean shapes cannot prove safe.
//	ShapeLean     bare *cache.Cache instruction side (the open
//	              FetchStream fast path is unconditional), interface
//	              data port — every VWB/L0/EMSHR/Bypass sweep point.
//	ShapeDirect   lean, plus the data port is a bare core.Direct over a
//	              bare *cache.Cache: the DL1 is called concretely and the
//	              front-end's per-access class counting (a config-
//	              invariant trace property) is folded into one bulk
//	              update at end of pass — the SRAM baselines and drop-in
//	              NVM points of every space.
//
// Every kernel runs records [lo, hi) over a replayState, so the driver
// (ReplayTraceCtl) hoists all partial-replay control — truncation,
// abort probes, interrupt probes — out of the loop into chunk
// boundaries: a probe every K records becomes a kernel call of K
// records, and the common nil-ctl replay is a single chunk with zero
// per-record control overhead. Cycle- and counter-identity of every
// shape against ShapeGeneric (and of replay against live execution) is
// enforced by TestKernelShapesMatchGeneric and the Fig. 3 equivalence
// matrix.
//
// The register scoreboard is packed: ready[r] holds done<<1 | loadBit,
// so the operand-readiness maximum and its load attribution come out of
// one comparison chain. For registers with equal readiness the packed
// maximum prefers the load-produced one, which is exactly RunState's
// OR-on-tie attribution rule ("some register whose readiness equals the
// maximum was produced by a load").
package cpu

import (
	"os"

	"sttdl1/internal/cache"
	"sttdl1/internal/core"
	"sttdl1/internal/isa"
	"sttdl1/internal/mem"
)

// KernelShape names one specialized replay loop variant.
type KernelShape uint8

// The kernel registry's shapes.
const (
	ShapeGeneric KernelShape = iota
	ShapeLean
	ShapeDirect
	numShapes
)

var shapeNames = [numShapes]string{"generic", "lean", "direct"}

func (s KernelShape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return "shape(?)"
}

// kernelEnv is the environment variable that pins every replay to the
// generic kernel (scripts/check.sh diffs specialized against generic
// sweeps through it). Probed once per pass, never per record.
const kernelEnv = "STTDL1_REPLAY_KERNEL"

// ShapeOf classifies the port topology into the kernel shape
// ReplayTrace will select for it. The classification is total and
// deterministic: every (imem, dmem) pair maps to exactly one shape
// (property-tested in kernel_test.go).
func ShapeOf(imem, dmem mem.Port) KernelShape {
	if os.Getenv(kernelEnv) == "generic" {
		return ShapeGeneric
	}
	if _, ok := imem.(*cache.Cache); !ok {
		return ShapeGeneric
	}
	if d, ok := dmem.(*core.Direct); ok {
		if _, ok := d.Port().(*cache.Cache); ok {
			return ShapeDirect
		}
	}
	return ShapeLean
}

// pos64 returns max(d, 0) branch-free. The kernels use it to turn the
// data-dependent stall comparisons — which the host branch predictor
// cannot learn, because they follow the simulated program's data flow —
// into straight-line arithmetic.
func pos64(d int64) int64 { return d &^ (d >> 63) }

// kernelFunc runs trace records [lo, hi) of one pass over st.
type kernelFunc func(st *replayState, lo, hi int)

// kernels is the shape-indexed registry of specialized loop variants.
var kernels = [numShapes]kernelFunc{
	ShapeGeneric: runGeneric,
	ShapeLean:    runLean,
	ShapeDirect:  runDirect,
}

// replayState is the complete loop-carried state of one configuration's
// timing pass, factored out of the loop so kernels can run it in record
// ranges (probe chunks, gang interleaving). The sbuf/lq slices alias the
// embedded arrays, so a replayState must not be copied after init.
type replayState struct {
	// Loop-carried scalars (see RunState for their meaning).
	lastIssue  int64
	fetchLast  int64
	redirectAt int64
	divFree    int64
	maxDone    int64
	drainTail  int64
	fetchStall int64
	readStall  int64
	writeStall int64
	slotsUsed  int
	fetchSlots int
	sbHead     int
	lqHead     int
	nextMp     int
	mpK        int

	// Pass-immutable geometry and streams.
	issueWidth int
	penalty    int64
	codeBase   mem.Addr
	pcs        []int32
	addrs      []uint32
	dec        []decoded
	mpIdx      []int32
	imem, dmem mem.Port
	// il1 is non-nil when the instruction side is a bare cache (the
	// FetchStream fast path applies); dl1/feDirect are non-nil only under
	// ShapeDirect (concrete DL1 calls, bulk stats reconciliation).
	il1      *cache.Cache
	il1Shift uint
	dl1      *cache.Cache
	feDirect *core.Direct

	fs cache.FetchStream

	sbuf, lq []int64

	// ready is the packed replay register file: architectural slots plus
	// the two dummy slots, each holding done<<1 | loadBit. srcDummy stays
	// zero (ready 0, ALU producer) forever; dstDummy is a sink. The array
	// is padded to 256 entries so that indexing by a uint8 register field
	// can never be out of bounds and the compiler drops the bounds check
	// on all four scoreboard accesses per record; slots past dstDummy are
	// never addressed by decoded operands and stay zero.
	ready [256]int64

	sbufArr, lqArr [16]int64
}

// init wires one pass's state. cfg must already have defaults resolved.
func (st *replayState) init(cfg *Config, imem, dmem mem.Port, tr *Trace, dec []decoded, mpIdx []int32) {
	st.issueWidth = cfg.IssueWidth
	st.penalty = cfg.MispredictPenalty
	st.codeBase = mem.Addr(cfg.CodeBase)
	st.pcs, st.addrs = tr.PCs, tr.Addrs
	st.dec = dec
	st.mpIdx = mpIdx
	st.nextMp = -1
	if len(mpIdx) > 0 {
		st.nextMp = int(mpIdx[0])
	}
	st.imem, st.dmem = imem, dmem
	st.sbuf = queueSlots(st.sbufArr[:], cfg.StoreBufDepth)
	st.lq = queueSlots(st.lqArr[:], cfg.LoadQueueDepth)
	if il1, ok := imem.(*cache.Cache); ok {
		st.il1 = il1
		st.il1Shift = il1.LineShift()
		st.fs.Init(il1)
	}
}

// bindDirect unwraps the ShapeDirect data port: the bare DL1 for
// concrete access calls, and the Direct front-end for the end-of-pass
// bulk stats reconciliation.
func (st *replayState) bindDirect(dmem mem.Port) {
	d := dmem.(*core.Direct)
	st.feDirect = d
	st.dl1 = d.Port().(*cache.Cache)
}

// finishFull assembles the Result of a completed (non-partial) pass.
func (st *replayState) finishFull(tc traceCounts, n int, final *State) *Result {
	res := &Result{State: final}
	res.FetchStallCycles = st.fetchStall
	res.ReadStallCycles = st.readStall
	res.WriteStallCycles = st.writeStall
	res.Insts = uint64(n)
	res.Loads, res.Stores, res.Prefetches = tc.loads, tc.stores, tc.prefetches
	res.VecLoads, res.VecStores = tc.vecLoads, tc.vecStores
	res.Branches = tc.branches
	res.Mispredicts = uint64(len(st.mpIdx))
	res.BranchStallCycles = int64(len(st.mpIdx)) * st.penalty
	maxDone := st.maxDone
	if st.drainTail > maxDone {
		maxDone = st.drainTail
	}
	res.Cycles = maxDone
	return res
}

// runGeneric is the shape-agnostic loop: interface fetch and data ports,
// with the fetch fast path tested per record. Every other kernel (and
// the gang loop) must be cycle- and counter-identical to it.
func runGeneric(st *replayState, lo, hi int) {
	var (
		ready      = &st.ready
		pcs, addrs = st.pcs, st.addrs
		dec        = st.dec
		imem, dmem = st.imem, st.dmem
		codeBase   = st.codeBase
		issueWidth = st.issueWidth
		sbuf, lq   = st.sbuf, st.lq
		sbDepth    = len(sbuf)
		lqDepth    = len(lq)
		mpIdx      = st.mpIdx
		fs         = &st.fs
		fastFetch  = st.il1 != nil
		il1Shift   = st.il1Shift

		lastIssue  = st.lastIssue
		slotsUsed  = st.slotsUsed
		fetchLast  = st.fetchLast
		fetchSlots = st.fetchSlots
		redirectAt = st.redirectAt
		divFree    = st.divFree
		maxDone    = st.maxDone
		drainTail  = st.drainTail
		fetchStall = st.fetchStall
		readStall  = st.readStall
		writeStall = st.writeStall
		sbHead     = st.sbHead
		lqHead     = st.lqHead
		nextMp     = st.nextMp
		mpK        = st.mpK
	)
	for i := lo; i < hi; i++ {
		pc := int(pcs[i])
		d := &dec[pc]

		// Instruction fetch through the IL1 (same slotting as RunState).
		fetchAt := max(fetchLast, redirectAt)
		if fetchAt > fetchLast {
			fetchLast = fetchAt
			fetchSlots = 1
		} else {
			fetchSlots++
			if fetchSlots > issueWidth {
				fetchLast++
				fetchAt = fetchLast
				fetchSlots = 1
			}
		}
		fetchAddr := codeBase + mem.Addr(pc)*isa.InstBytes
		var fetchDone int64
		if fastFetch {
			if line := fetchAddr >> il1Shift; line == fs.CurLine || fs.Switch(line) {
				start := fetchAt
				if bf := *fs.CurBankFree; bf > start {
					fs.Conflicts += bf - start
					start = bf
				}
				fetchDone = start + fs.Lat
				*fs.CurBankFree = start + fs.Ival
				fs.Seq++
				if fetchDone < fs.CurReady {
					fs.HUF += fs.CurReady - fetchDone
					fetchDone = fs.CurReady
				}
			} else {
				// Fetch miss: Switch closed the stream, so the generic
				// access (which installs the line) sees consistent state.
				fetchDone = imem.Access(fetchAt, mem.Req{Addr: fetchAddr, Bytes: isa.InstBytes, Kind: mem.Fetch})
			}
		} else {
			fetchDone = imem.Access(fetchAt, mem.Req{Addr: fetchAddr, Bytes: isa.InstBytes, Kind: mem.Fetch})
		}

		base := max(fetchDone, redirectAt)
		fetchStall += pos64(fetchDone - (lastIssue + 1))

		// Packed operand readiness: max of done<<1|loadBit is the max
		// done, load-attributed exactly when some register at that
		// readiness was produced by a load.
		pk := max(ready[d.srcA], ready[d.srcB], ready[d.srcD])
		opnd := pk >> 1

		// An operand stall is charged to loads exactly when the packed
		// maximum carries the load bit; -(pk&1) is its all-ones mask.
		issue := base
		rpos := pos64(opnd - issue)
		readStall += rpos & -(pk & 1)
		issue += rpos
		if d.flags&dfDiv != 0 && divFree > issue {
			issue = divFree
		}
		if m := d.mem; m != 0 {
			if m == 's' {
				wpos := pos64(sbuf[sbHead] - issue)
				writeStall += wpos
				issue += wpos
			} else if m == 'l' {
				lpos := pos64(lq[lqHead] - issue)
				readStall += lpos
				issue += lpos
			}
		}

		issue = max(issue, lastIssue)
		if issue == lastIssue {
			if slotsUsed >= issueWidth {
				issue++
				slotsUsed = 1
			} else {
				slotsUsed++
			}
		} else {
			slotsUsed = 1
		}
		lastIssue = issue

		done := issue + int64(d.lat)
		var loadBit int64
		if d.mem != 0 {
			switch d.mem {
			case 'l':
				done = dmem.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Read})
				loadBit = 1
				lq[lqHead] = done
				if lqHead++; lqHead == lqDepth {
					lqHead = 0
				}
			case 's':
				start := max(issue+1, drainTail)
				retire := dmem.Access(start, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Write})
				drainTail = retire
				sbuf[sbHead] = retire
				if sbHead++; sbHead == sbDepth {
					sbHead = 0
				}
				done = issue + 1
			case 'p':
				dmem.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Prefetch})
				done = issue + 1
			}
		}

		if d.flags&dfDiv != 0 {
			divFree = done
		}

		// Only mispredicted branches redirect; the sparse index list names
		// exactly those records, so no branch-class test is needed here.
		if i == nextMp {
			redirectAt = issue + 1 + st.penalty
			nextMp = -1
			if mpK++; mpK < len(mpIdx) {
				nextMp = int(mpIdx[mpK])
			}
		}

		ready[d.dst] = done<<1 | loadBit
		maxDone = max(maxDone, done)
	}
	st.lastIssue = lastIssue
	st.slotsUsed = slotsUsed
	st.fetchLast = fetchLast
	st.fetchSlots = fetchSlots
	st.redirectAt = redirectAt
	st.divFree = divFree
	st.maxDone = maxDone
	st.drainTail = drainTail
	st.fetchStall = fetchStall
	st.readStall = readStall
	st.writeStall = writeStall
	st.sbHead = sbHead
	st.lqHead = lqHead
	st.nextMp = nextMp
	st.mpK = mpK
}

// runLean is the branch-lean variant for the dominant sweep shape: the
// instruction side is a bare cache (unconditional FetchStream fast
// path), the data port stays an interface. Identical to runGeneric with
// the fastFetch test compiled out, and with three mechanical loop-body
// strength reductions the reference kernel keeps out of its readable
// form: the record streams are re-sliced to hi so the per-record index
// is provably in bounds, the 8-byte decode entry is loaded by value into
// a register instead of chased through a pointer ten times, and the
// FetchStream's hot fields live in locals (written back before any
// Switch/Close so the stream's flush arithmetic stays exact).
func runLean(st *replayState, lo, hi int) {
	var (
		ready      = &st.ready
		pcs        = st.pcs[:hi]
		addrs      = st.addrs[:hi]
		dec        = st.dec
		imem, dmem = st.imem, st.dmem
		codeBase   = st.codeBase
		issueWidth = st.issueWidth
		sbuf, lq   = st.sbuf, st.lq
		sbDepth    = len(sbuf)
		lqDepth    = len(lq)
		mpIdx      = st.mpIdx
		fs         = &st.fs
		il1Shift   = st.il1Shift

		lat, ival   = fs.Lat, fs.Ival
		curLine     = fs.CurLine
		curReady    = fs.CurReady
		curBankFree = fs.CurBankFree
		seq         = fs.Seq
		conflicts   = fs.Conflicts
		huf         = fs.HUF

		lastIssue  = st.lastIssue
		slotsUsed  = st.slotsUsed
		fetchLast  = st.fetchLast
		fetchSlots = st.fetchSlots
		redirectAt = st.redirectAt
		divFree    = st.divFree
		maxDone    = st.maxDone
		drainTail  = st.drainTail
		fetchStall = st.fetchStall
		readStall  = st.readStall
		writeStall = st.writeStall
		sbHead     = st.sbHead
		lqHead     = st.lqHead
		nextMp     = st.nextMp
		mpK        = st.mpK
	)
	for i := lo; i < hi; i++ {
		pc := int(pcs[i])
		d := dec[pc]

		fetchAt := max(fetchLast, redirectAt)
		if fetchAt > fetchLast {
			fetchLast = fetchAt
			fetchSlots = 1
		} else {
			fetchSlots++
			if fetchSlots > issueWidth {
				fetchLast++
				fetchAt = fetchLast
				fetchSlots = 1
			}
		}
		fetchAddr := codeBase + mem.Addr(pc)*isa.InstBytes
		var fetchDone int64
		if line := fetchAddr >> il1Shift; line == curLine {
			cpos := pos64(*curBankFree - fetchAt) // bank-conflict delay, 0 when free
			conflicts += cpos
			start := fetchAt + cpos
			fetchDone = start + lat
			*curBankFree = start + ival
			seq++
			hpos := pos64(curReady - fetchDone) // hit-under-fill cap, 0 when filled
			huf += hpos
			fetchDone += hpos
		} else {
			// Line switch: sync the stream's counters (Switch may flush a
			// slot or Close, both of which read them), then reload every
			// local from the stream's post-switch state.
			fs.Seq, fs.Conflicts, fs.HUF = seq, conflicts, huf
			if fs.Switch(line) {
				curLine, curReady, curBankFree = fs.CurLine, fs.CurReady, fs.CurBankFree
				start := fetchAt
				if bf := *curBankFree; bf > start {
					conflicts += bf - start
					start = bf
				}
				fetchDone = start + lat
				*curBankFree = start + ival
				seq++
				if fetchDone < curReady {
					huf += curReady - fetchDone
					fetchDone = curReady
				}
			} else {
				fetchDone = imem.Access(fetchAt, mem.Req{Addr: fetchAddr, Bytes: isa.InstBytes, Kind: mem.Fetch})
				curLine, curReady, curBankFree = fs.CurLine, fs.CurReady, fs.CurBankFree
				seq, conflicts, huf = fs.Seq, fs.Conflicts, fs.HUF
			}
		}

		base := max(fetchDone, redirectAt)
		fetchStall += pos64(fetchDone - (lastIssue + 1))

		pk := max(ready[d.srcA], ready[d.srcB], ready[d.srcD])
		opnd := pk >> 1

		// An operand stall is charged to loads exactly when the packed
		// maximum carries the load bit; -(pk&1) is its all-ones mask.
		issue := base
		rpos := pos64(opnd - issue)
		readStall += rpos & -(pk & 1)
		issue += rpos
		if d.flags&dfDiv != 0 && divFree > issue {
			issue = divFree
		}
		if m := d.mem; m != 0 {
			if m == 's' {
				wpos := pos64(sbuf[sbHead] - issue)
				writeStall += wpos
				issue += wpos
			} else if m == 'l' {
				lpos := pos64(lq[lqHead] - issue)
				readStall += lpos
				issue += lpos
			}
		}

		issue = max(issue, lastIssue)
		if issue == lastIssue {
			if slotsUsed >= issueWidth {
				issue++
				slotsUsed = 1
			} else {
				slotsUsed++
			}
		} else {
			slotsUsed = 1
		}
		lastIssue = issue

		done := issue + int64(d.lat)
		var loadBit int64
		if d.mem != 0 {
			switch d.mem {
			case 'l':
				done = dmem.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Read})
				loadBit = 1
				lq[lqHead] = done
				if lqHead++; lqHead == lqDepth {
					lqHead = 0
				}
			case 's':
				start := max(issue+1, drainTail)
				retire := dmem.Access(start, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Write})
				drainTail = retire
				sbuf[sbHead] = retire
				if sbHead++; sbHead == sbDepth {
					sbHead = 0
				}
				done = issue + 1
			case 'p':
				dmem.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Prefetch})
				done = issue + 1
			}
		}

		if d.flags&dfDiv != 0 {
			divFree = done
		}

		if i == nextMp {
			redirectAt = issue + 1 + st.penalty
			nextMp = -1
			if mpK++; mpK < len(mpIdx) {
				nextMp = int(mpIdx[mpK])
			}
		}

		ready[d.dst] = done<<1 | loadBit
		maxDone = max(maxDone, done)
	}
	fs.Seq, fs.Conflicts, fs.HUF = seq, conflicts, huf
	st.lastIssue = lastIssue
	st.slotsUsed = slotsUsed
	st.fetchLast = fetchLast
	st.fetchSlots = fetchSlots
	st.redirectAt = redirectAt
	st.divFree = divFree
	st.maxDone = maxDone
	st.drainTail = drainTail
	st.fetchStall = fetchStall
	st.readStall = readStall
	st.writeStall = writeStall
	st.sbHead = sbHead
	st.lqHead = lqHead
	st.nextMp = nextMp
	st.mpK = mpK
}

// runDirect is runLean with the Direct front-end compiled out: the DL1
// is called concretely (no interface dispatch, no wrapper frame) and the
// front-end's per-access class counting — a configuration-invariant
// trace property — is reconciled in one RecordBulk at end of pass by the
// driver. It carries the same loop-body strength reductions as runLean.
func runDirect(st *replayState, lo, hi int) {
	var (
		ready      = &st.ready
		pcs        = st.pcs[:hi]
		addrs      = st.addrs[:hi]
		dec        = st.dec
		imem       = st.imem
		dl1        = st.dl1
		codeBase   = st.codeBase
		issueWidth = st.issueWidth
		sbuf, lq   = st.sbuf, st.lq
		sbDepth    = len(sbuf)
		lqDepth    = len(lq)
		mpIdx      = st.mpIdx
		fs         = &st.fs
		il1Shift   = st.il1Shift

		lat, ival   = fs.Lat, fs.Ival
		curLine     = fs.CurLine
		curReady    = fs.CurReady
		curBankFree = fs.CurBankFree
		seq         = fs.Seq
		conflicts   = fs.Conflicts
		huf         = fs.HUF

		lastIssue  = st.lastIssue
		slotsUsed  = st.slotsUsed
		fetchLast  = st.fetchLast
		fetchSlots = st.fetchSlots
		redirectAt = st.redirectAt
		divFree    = st.divFree
		maxDone    = st.maxDone
		drainTail  = st.drainTail
		fetchStall = st.fetchStall
		readStall  = st.readStall
		writeStall = st.writeStall
		sbHead     = st.sbHead
		lqHead     = st.lqHead
		nextMp     = st.nextMp
		mpK        = st.mpK
	)
	for i := lo; i < hi; i++ {
		pc := int(pcs[i])
		d := dec[pc]

		fetchAt := max(fetchLast, redirectAt)
		if fetchAt > fetchLast {
			fetchLast = fetchAt
			fetchSlots = 1
		} else {
			fetchSlots++
			if fetchSlots > issueWidth {
				fetchLast++
				fetchAt = fetchLast
				fetchSlots = 1
			}
		}
		fetchAddr := codeBase + mem.Addr(pc)*isa.InstBytes
		var fetchDone int64
		if line := fetchAddr >> il1Shift; line == curLine {
			cpos := pos64(*curBankFree - fetchAt) // bank-conflict delay, 0 when free
			conflicts += cpos
			start := fetchAt + cpos
			fetchDone = start + lat
			*curBankFree = start + ival
			seq++
			hpos := pos64(curReady - fetchDone) // hit-under-fill cap, 0 when filled
			huf += hpos
			fetchDone += hpos
		} else {
			fs.Seq, fs.Conflicts, fs.HUF = seq, conflicts, huf
			if fs.Switch(line) {
				curLine, curReady, curBankFree = fs.CurLine, fs.CurReady, fs.CurBankFree
				start := fetchAt
				if bf := *curBankFree; bf > start {
					conflicts += bf - start
					start = bf
				}
				fetchDone = start + lat
				*curBankFree = start + ival
				seq++
				if fetchDone < curReady {
					huf += curReady - fetchDone
					fetchDone = curReady
				}
			} else {
				fetchDone = imem.Access(fetchAt, mem.Req{Addr: fetchAddr, Bytes: isa.InstBytes, Kind: mem.Fetch})
				curLine, curReady, curBankFree = fs.CurLine, fs.CurReady, fs.CurBankFree
				seq, conflicts, huf = fs.Seq, fs.Conflicts, fs.HUF
			}
		}

		base := max(fetchDone, redirectAt)
		fetchStall += pos64(fetchDone - (lastIssue + 1))

		pk := max(ready[d.srcA], ready[d.srcB], ready[d.srcD])
		opnd := pk >> 1

		// An operand stall is charged to loads exactly when the packed
		// maximum carries the load bit; -(pk&1) is its all-ones mask.
		issue := base
		rpos := pos64(opnd - issue)
		readStall += rpos & -(pk & 1)
		issue += rpos
		if d.flags&dfDiv != 0 && divFree > issue {
			issue = divFree
		}
		if m := d.mem; m != 0 {
			if m == 's' {
				wpos := pos64(sbuf[sbHead] - issue)
				writeStall += wpos
				issue += wpos
			} else if m == 'l' {
				lpos := pos64(lq[lqHead] - issue)
				readStall += lpos
				issue += lpos
			}
		}

		issue = max(issue, lastIssue)
		if issue == lastIssue {
			if slotsUsed >= issueWidth {
				issue++
				slotsUsed = 1
			} else {
				slotsUsed++
			}
		} else {
			slotsUsed = 1
		}
		lastIssue = issue

		done := issue + int64(d.lat)
		var loadBit int64
		if d.mem != 0 {
			switch d.mem {
			case 'l':
				done = dl1.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Read})
				loadBit = 1
				lq[lqHead] = done
				if lqHead++; lqHead == lqDepth {
					lqHead = 0
				}
			case 's':
				start := max(issue+1, drainTail)
				retire := dl1.Access(start, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Write})
				drainTail = retire
				sbuf[sbHead] = retire
				if sbHead++; sbHead == sbDepth {
					sbHead = 0
				}
				done = issue + 1
			case 'p':
				dl1.Access(issue+1, mem.Req{Addr: mem.Addr(addrs[i]), Bytes: int(d.accessBytes), Kind: mem.Prefetch})
				done = issue + 1
			}
		}

		if d.flags&dfDiv != 0 {
			divFree = done
		}

		if i == nextMp {
			redirectAt = issue + 1 + st.penalty
			nextMp = -1
			if mpK++; mpK < len(mpIdx) {
				nextMp = int(mpIdx[mpK])
			}
		}

		ready[d.dst] = done<<1 | loadBit
		maxDone = max(maxDone, done)
	}
	fs.Seq, fs.Conflicts, fs.HUF = seq, conflicts, huf
	st.lastIssue = lastIssue
	st.slotsUsed = slotsUsed
	st.fetchLast = fetchLast
	st.fetchSlots = fetchSlots
	st.redirectAt = redirectAt
	st.divFree = divFree
	st.maxDone = maxDone
	st.drainTail = drainTail
	st.fetchStall = fetchStall
	st.readStall = readStall
	st.writeStall = writeStall
	st.sbHead = sbHead
	st.lqHead = lqHead
	st.nextMp = nextMp
	st.mpK = mpK
}
