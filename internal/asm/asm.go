// Package asm is a small text assembler for ARMlet programs (.sasm).
//
// The syntax is exactly what isa.Inst.String() prints, plus labels and
// comments, so disassembled programs re-assemble byte-identically:
//
//	; compute r2 = r0 + r1, store at [r3]
//	start:
//	    add r2, r0, r1
//	    str r2, [r3, #0]
//	    beq r2, zr, done     ; labels may replace branch offsets
//	    b start
//	done:
//	    halt
//
// Registers: r0..r31 (aliases zr, sp, lr), f0..f31, v0..v15.
// Immediates: #123, #-4, #0x1f; FMOVI also accepts #1.5 style floats.
// Branch targets: a label, or a relative offset like +3 / -2.
//
// Directives:
//
//	.data N   ; size of the zero-initialized data segment in bytes
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"sttdl1/internal/isa"
)

// SyntaxError describes a parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type pending struct {
	line  int
	inst  isa.Inst
	label string // non-empty when imm is a label reference
}

// Assemble parses source into a program.
func Assemble(name, source string) (*isa.Program, error) {
	labels := map[string]int{}
	var insts []pending
	dataSize := 0

	for ln, raw := range strings.Split(source, "\n") {
		lineNo := ln + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		// Leading labels (possibly several on one line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			lbl := strings.TrimSpace(line[:i])
			if !validLabel(lbl) {
				return nil, &SyntaxError{lineNo, fmt.Sprintf("invalid label %q", lbl)}
			}
			if _, dup := labels[lbl]; dup {
				return nil, &SyntaxError{lineNo, fmt.Sprintf("duplicate label %q", lbl)}
			}
			labels[lbl] = len(insts)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".data") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".data")))
			if err != nil || n < 0 {
				return nil, &SyntaxError{lineNo, "bad .data size"}
			}
			dataSize = n
			continue
		}

		p, err := parseInst(lineNo, line)
		if err != nil {
			return nil, err
		}
		insts = append(insts, p)
	}

	prog := &isa.Program{Name: name, DataSize: dataSize, Insts: make([]isa.Inst, len(insts))}
	for pc, p := range insts {
		in := p.inst
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, &SyntaxError{p.line, fmt.Sprintf("undefined label %q", p.label)}
			}
			in.Imm = int32(target - (pc + 1))
		}
		prog.Insts[pc] = in
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	_, isOp := isa.OpByName(s)
	return !isOp
}

func parseInst(lineNo int, line string) (pending, error) {
	fail := func(format string, args ...any) (pending, error) {
		return pending{}, &SyntaxError{lineNo, fmt.Sprintf(format, args...)}
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := isa.OpByName(strings.ToLower(mnemonic))
	if !ok {
		return fail("unknown mnemonic %q", mnemonic)
	}
	info := op.Info()
	in := isa.Inst{Op: op}
	p := pending{line: lineNo}

	ops, err := splitOperands(rest)
	if err != nil {
		return fail("%v", err)
	}
	need := operandCount(info.Fmt)
	if len(ops) != need {
		return fail("%s needs %d operand(s), got %d", op, need, len(ops))
	}

	reg := func(s string, class isa.RegClass) (isa.Reg, error) {
		return parseReg(s, class)
	}

	switch info.Fmt {
	case isa.FmtNone:
	case isa.FmtRRR:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			if in.Ra, err = reg(ops[1], info.SrcAClass); err == nil {
				in.Rb, err = reg(ops[2], info.SrcBClass)
			}
		}
	case isa.FmtRR:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			in.Ra, err = reg(ops[1], info.SrcAClass)
		}
	case isa.FmtRRI:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			if in.Ra, err = reg(ops[1], info.SrcAClass); err == nil {
				in.Imm, err = parseImm(ops[2], false)
			}
		}
	case isa.FmtRI:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			in.Imm, err = parseImm(ops[1], op == isa.OpFMOVI)
		}
	case isa.FmtMem:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			in.Ra, in.Imm, err = parseMemOperand(ops[1])
		}
	case isa.FmtMemX:
		if in.Rd, err = reg(ops[0], info.DstClass); err == nil {
			in.Ra, in.Rb, in.Imm, err = parseMemXOperand(ops[1])
		}
	case isa.FmtPLD:
		in.Ra, in.Imm, err = parseMemOperand(ops[0])
	case isa.FmtBr:
		p.label, in.Imm, err = parseTarget(ops[0])
	case isa.FmtBrCmp:
		if in.Ra, err = reg(ops[0], isa.RCInt); err == nil {
			if in.Rb, err = reg(ops[1], isa.RCInt); err == nil {
				p.label, in.Imm, err = parseTarget(ops[2])
			}
		}
	case isa.FmtJmpReg:
		in.Ra, err = reg(ops[0], isa.RCInt)
	default:
		return fail("unhandled format for %s", op)
	}
	if err != nil {
		return fail("%s: %v", op, err)
	}
	p.inst = in
	return p, nil
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ']'")
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '['")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func operandCount(f isa.Fmt) int {
	switch f {
	case isa.FmtNone:
		return 0
	case isa.FmtPLD, isa.FmtBr, isa.FmtJmpReg:
		return 1
	case isa.FmtRR, isa.FmtRI, isa.FmtMem, isa.FmtMemX:
		return 2
	default: // FmtRRR, FmtRRI, FmtBrCmp
		return 3
	}
}

func parseReg(s string, class isa.RegClass) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch class {
	case isa.RCInt:
		switch s {
		case "zr":
			return isa.ZR, nil
		case "sp":
			return isa.SP, nil
		case "lr":
			return isa.LR, nil
		}
		return numberedReg(s, 'r', isa.NumIntRegs)
	case isa.RCFP:
		return numberedReg(s, 'f', isa.NumFPRegs)
	case isa.RCVec:
		return numberedReg(s, 'v', isa.NumVecRegs)
	case isa.RCNone:
		return 0, fmt.Errorf("unexpected operand %q", s)
	}
	return 0, fmt.Errorf("bad register class")
}

func numberedReg(s string, prefix byte, limit int) (isa.Reg, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("expected %c-register, got %q", prefix, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= limit {
		return 0, fmt.Errorf("register %q out of range (max %c%d)", s, prefix, limit-1)
	}
	return isa.Reg(n), nil
}

func parseImm(s string, float bool) (int32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate must start with '#', got %q", s)
	}
	body := s[1:]
	if float {
		f, err := strconv.ParseFloat(body, 32)
		if err != nil {
			return 0, fmt.Errorf("bad float immediate %q", s)
		}
		return isa.BitsFromF32(float32(f)), nil
	}
	n, err := strconv.ParseInt(body, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if n < -1<<31 || n > 1<<31-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(n), nil
}

// parseMemOperand parses "[rN, #off]" (offset optional).
func parseMemOperand(s string) (isa.Reg, int32, error) {
	inner, err := bracketBody(s)
	if err != nil {
		return 0, 0, err
	}
	parts := strings.Split(inner, ",")
	base, err := parseReg(parts[0], isa.RCInt)
	if err != nil {
		return 0, 0, err
	}
	if len(parts) == 1 {
		return base, 0, nil
	}
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off, err := parseImm(strings.TrimSpace(parts[1]), false)
	return base, off, err
}

// parseMemXOperand parses "[rN, rM, lsl #k]".
func parseMemXOperand(s string) (isa.Reg, isa.Reg, int32, error) {
	inner, err := bracketBody(s)
	if err != nil {
		return 0, 0, 0, err
	}
	parts := strings.Split(inner, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("indexed operand must be [rN, rM, lsl #k], got %q", s)
	}
	base, err := parseReg(parts[0], isa.RCInt)
	if err != nil {
		return 0, 0, 0, err
	}
	index, err := parseReg(parts[1], isa.RCInt)
	if err != nil {
		return 0, 0, 0, err
	}
	sh := strings.TrimSpace(parts[2])
	if !strings.HasPrefix(strings.ToLower(sh), "lsl") {
		return 0, 0, 0, fmt.Errorf("expected 'lsl #k' in %q", s)
	}
	k, err := parseImm(strings.TrimSpace(sh[3:]), false)
	if err != nil || k < 0 || k > 31 {
		return 0, 0, 0, fmt.Errorf("bad shift in %q", s)
	}
	return base, index, k, nil
}

func bracketBody(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return "", fmt.Errorf("expected [...] operand, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

// parseTarget parses a branch target: a relative offset (+3, -2, 0) or a
// label name resolved later.
func parseTarget(s string) (label string, imm int32, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, fmt.Errorf("missing branch target")
	}
	if s[0] == '+' || s[0] == '-' || (s[0] >= '0' && s[0] <= '9') {
		n, perr := strconv.ParseInt(s, 10, 32)
		if perr != nil {
			return "", 0, fmt.Errorf("bad branch offset %q", s)
		}
		return "", int32(n), nil
	}
	if !validLabel(s) {
		return "", 0, fmt.Errorf("bad branch target %q", s)
	}
	return s, 0, nil
}
