package asm

import (
	"math/rand"
	"strings"
	"testing"

	"sttdl1/internal/cpu"
	"sttdl1/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		; comment-only line
		.data 128
		movi r1, #10
		movi r2, #0x20      ; hex immediate
		add  r3, r1, r2
		halt
	`)
	if p.DataSize != 128 {
		t.Errorf("data size = %d", p.DataSize)
	}
	if len(p.Insts) != 4 {
		t.Fatalf("insts = %d", len(p.Insts))
	}
	st, err := cpu.Interpret(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[3] != 42 {
		t.Errorf("r3 = %d, want 42", st.R[3])
	}
}

func TestLabels(t *testing.T) {
	p := mustAssemble(t, `
		movi r0, #0
		movi r1, #5
	loop:
		addi r0, r0, #1
		blt  r0, r1, loop
		beq  r0, r1, done
		movi r0, #99
	done:
		halt
	`)
	st, err := cpu.Interpret(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[0] != 5 {
		t.Errorf("r0 = %d, want 5", st.R[0])
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	p := mustAssemble(t, `
		b skip
		movi r1, #1
	skip:
		b end
		movi r1, #2
	end:
		halt
	`)
	st, err := cpu.Interpret(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[1] != 0 {
		t.Errorf("r1 = %d, skipped code executed", st.R[1])
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
		.data 256
		movi r1, #64
		movi r2, #7
		str  r2, [r1, #4]
		ldr  r3, [r1, #4]
		movi r4, #1
		ldrx r5, [r1, r4, lsl #2]
		fmovi f0, #2.5
		fstr f0, [r1, #32]
		fldr f1, [r1, #32]
		vldr v0, [r1, #0]
		pld  [r1, #64]
		halt
	`)
	st, err := cpu.Interpret(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[3] != 7 || st.R[5] != 7 {
		t.Errorf("r3=%d r5=%d", st.R[3], st.R[5])
	}
	if st.F[1] != 2.5 {
		t.Errorf("f1 = %g", st.F[1])
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `
		addi r1, zr, #3
		addi r2, sp, #0
		bl   callee
		halt
	callee:
		jr lr
	`)
	if p.Insts[0].Ra != isa.ZR {
		t.Error("zr alias")
	}
	if p.Insts[1].Ra != isa.SP {
		t.Error("sp alias")
	}
	if _, err := cpu.Interpret(p, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeOffsets(t *testing.T) {
	p := mustAssemble(t, `
		b +1
		movi r1, #9
		halt
	`)
	st, err := cpu.Interpret(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.R[1] != 0 {
		t.Error("b +1 must skip the movi")
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"frobnicate r1", "unknown mnemonic"},
		{"add r1, r2", "needs 3 operand"},
		{"add r1, r2, f3", "expected r-register"},
		{"add r1, r2, r32", "out of range"},
		{"movi r1, 5", "must start with '#'"},
		{"movi r1, #zzz", "bad immediate"},
		{"ldr r1, [r2", "unbalanced"},
		{"ldr r1, r2", "expected [...]"},
		{"b nowhere", "undefined label"},
		{"x: x: halt", "duplicate label"},
		{"1bad: halt", "invalid label"},
		{".data -5", "bad .data"},
		{"ldrx r1, [r2, r3, foo #2]", "expected 'lsl"},
		{"beq r1, r2, ", "missing branch target"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("t", "halt\nhalt\nbogus r1\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err type %T", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
}

func TestLabelCannotShadowMnemonic(t *testing.T) {
	if _, err := Assemble("t", "add: halt"); err == nil {
		t.Error("label named after a mnemonic must be rejected")
	}
}

// TestDisassembleReassembleRoundTrip is the assembler's property test:
// assembling the disassembly of random valid programs reproduces the
// exact instruction stream.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		prog := &isa.Program{Name: "rt"}
		n := 20 + r.Intn(60)
		for i := 0; i < n; i++ {
			in := randomInst(r)
			// Keep branch targets inside the program.
			if in.Op.IsBranch() && in.Op != isa.OpJR && in.Op != isa.OpHALT {
				lo, hi := -(i + 1), n-i // target in [0, n]
				in.Imm = int32(lo + r.Intn(hi-lo+1))
			}
			prog.Insts = append(prog.Insts, in)
		}
		prog.Insts = append(prog.Insts, isa.Inst{Op: isa.OpHALT})
		if err := prog.Validate(); err != nil {
			t.Fatalf("generated invalid program: %v", err)
		}

		var src strings.Builder
		for _, in := range prog.Insts {
			src.WriteString(in.String())
			src.WriteByte('\n')
		}
		back, err := Assemble("rt", src.String())
		if err != nil {
			t.Fatalf("trial %d: reassemble failed: %v\n%s", trial, err, src.String())
		}
		if len(back.Insts) != len(prog.Insts) {
			t.Fatalf("trial %d: %d insts, want %d", trial, len(back.Insts), len(prog.Insts))
		}
		for i := range prog.Insts {
			a, b := prog.Insts[i], back.Insts[i]
			if a.Op == isa.OpFMOVI {
				// Float immediates round-trip through decimal text; compare
				// the decoded float value instead of raw bits.
				if isa.F32FromBits(a.Imm) != isa.F32FromBits(b.Imm) || a.Rd != b.Rd {
					t.Fatalf("trial %d inst %d: %v != %v", trial, i, a, b)
				}
				continue
			}
			if a != b {
				t.Fatalf("trial %d inst %d: %v != %v (%q)", trial, i, a, b, a.String())
			}
		}
	}
}

// randomInst builds a random valid non-FMOVI-NaN instruction.
func randomInst(r *rand.Rand) isa.Inst {
	for {
		op := isa.Opcode(1 + r.Intn(isa.NumOpcodes-1))
		info := op.Info()
		in := isa.Inst{Op: op}
		pick := func(c isa.RegClass) isa.Reg {
			switch c {
			case isa.RCInt:
				return isa.Reg(r.Intn(isa.NumIntRegs))
			case isa.RCFP:
				return isa.Reg(r.Intn(isa.NumFPRegs))
			case isa.RCVec:
				return isa.Reg(r.Intn(isa.NumVecRegs))
			}
			return 0
		}
		in.Rd, in.Ra, in.Rb = pick(info.DstClass), pick(info.SrcAClass), pick(info.SrcBClass)
		switch info.Fmt {
		case isa.FmtRI:
			if op == isa.OpFMOVI {
				in.Imm = isa.BitsFromF32(float32(r.Intn(1000)) / 8)
			} else {
				in.Imm = int32(r.Uint32())
			}
		case isa.FmtRRI, isa.FmtMem, isa.FmtPLD:
			in.Imm = int32(r.Intn(4096) - 1024)
		case isa.FmtMemX:
			in.Imm = int32(r.Intn(5))
		}
		if in.Validate() == nil {
			return in
		}
	}
}
