package asm

import (
	"strings"
	"testing"

	"sttdl1/internal/isa"
)

// printProgram renders p the way the disassembler prints instructions —
// one isa.Inst.String() per line (branch targets as relative offsets)
// plus the .data directive — which is exactly the dialect Assemble
// accepts back.
func printProgram(p *isa.Program) string {
	var b strings.Builder
	if p.DataSize > 0 {
		b.WriteString(".data ")
		b.WriteString(itoa(p.DataSize))
		b.WriteByte('\n')
	}
	for _, in := range p.Insts {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(b[i:])
}

// FuzzAssembleRoundTrip is the assembler↔disassembler round-trip
// property: whatever source Assemble accepts, printing the program and
// re-assembling must (a) succeed, (b) reach a fixed point (print ∘
// assemble is idempotent), and (c) — whenever no NaN float immediate is
// involved — produce a byte-identical instruction image.
func FuzzAssembleRoundTrip(f *testing.F) {
	f.Add("add r1, r2, r3\nhalt\n")
	f.Add(".data 64\nstart:\n  movi r1, #16\nloop:\n  subi r1, r1, #1\n  bne r1, zr, loop\n  halt\n")
	f.Add("fmov f0, f1\nfmovi f2, #1.5\nvadd v0, v1, v2\n")
	f.Add("ldr r4, [sp, #8]\nstrx r4, [r5, r6, lsl #2]\npld [r7, #64]\n")
	f.Add("b +1\nhalt\nbeq r1, r2, -2\njr lr\n")
	f.Add("; comment only\n")
	f.Add("label: halt")
	f.Add("movi r1, #0x7fffffff\nmovi r2, #-2147483648\n")

	f.Fuzz(func(t *testing.T, source string) {
		p, err := Assemble("fuzz", source)
		if err != nil {
			return // rejected sources only need to not panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Assemble produced invalid program: %v", err)
		}

		printed := printProgram(p)
		p2, err := Assemble("fuzz", printed)
		if err != nil {
			t.Fatalf("re-assembly of printed program failed: %v\nprinted:\n%s", err, printed)
		}
		if len(p2.Insts) != len(p.Insts) || p2.DataSize != p.DataSize {
			t.Fatalf("re-assembly changed shape: %d/%d insts, %d/%d data",
				len(p.Insts), len(p2.Insts), p.DataSize, p2.DataSize)
		}

		// Fixed point: printing the re-assembled program reproduces the
		// text exactly (this holds even for NaN immediates, whose bit
		// patterns are canonicalized by the first print→parse).
		if printed2 := printProgram(p2); printed2 != printed {
			t.Fatalf("print ∘ assemble not idempotent:\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}

		// Byte-identical round trip whenever no NaN payload is in play.
		if !hasNaNImm(p) {
			img, err := isa.EncodeProgram(p)
			if err != nil {
				t.Fatalf("EncodeProgram(original): %v", err)
			}
			img2, err := isa.EncodeProgram(p2)
			if err != nil {
				t.Fatalf("EncodeProgram(reassembled): %v", err)
			}
			if string(img) != string(img2) {
				t.Fatalf("round trip changed encoding\noriginal:\n%s\nreassembled:\n%s",
					p.Disassemble(), p2.Disassemble())
			}
		}
	})
}

// hasNaNImm reports whether any FMOVI immediate is a NaN — the one case
// where distinct bit patterns print identically ("NaN"), so only the
// printed fixed point, not the bit image, can round-trip.
func hasNaNImm(p *isa.Program) bool {
	for _, in := range p.Insts {
		if in.Op == isa.OpFMOVI {
			f := isa.F32FromBits(in.Imm)
			if f != f {
				return true
			}
		}
	}
	return false
}
