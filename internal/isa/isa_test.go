package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterNames(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{IntRegName(0), "r0"},
		{IntRegName(12), "r12"},
		{IntRegName(ZR), "zr"},
		{IntRegName(SP), "sp"},
		{IntRegName(LR), "lr"},
		{FPRegName(7), "f7"},
		{VecRegName(15), "v15"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestOpcodeMetadataComplete(t *testing.T) {
	for op := OpInvalid + 1; int(op) < NumOpcodes; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if got, ok := OpByName(info.Name); !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", info.Name, got, ok, op)
		}
		if info.Mem != 0 && info.AccessBytes <= 0 {
			t.Errorf("%s: memory op with no access size", op)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	if !OpLDR.IsLoad() || OpLDR.IsStore() {
		t.Error("LDR must be a load")
	}
	if !OpVSTR.IsStore() || OpVSTR.IsLoad() {
		t.Error("VSTR must be a store")
	}
	if !OpPLD.IsPrefetch() || !OpPLD.IsMem() {
		t.Error("PLD must be a prefetch memory op")
	}
	if !OpBEQ.IsBranch() || !OpBEQ.IsCondBranch() {
		t.Error("BEQ must be a conditional branch")
	}
	if OpB.IsCondBranch() {
		t.Error("B is unconditional")
	}
	if !OpHALT.IsBranch() {
		t.Error("HALT ends control flow")
	}
	if !OpVFMA.IsVector() || OpADD.IsVector() {
		t.Error("vector classification wrong")
	}
	if got := OpVLDR.Info().AccessBytes; got != VecBytes {
		t.Errorf("VLDR access bytes = %d, want %d", got, VecBytes)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpADD.String() != "add" {
		t.Errorf("OpADD.String() = %q", OpADD.String())
	}
	if s := Opcode(250).String(); !strings.Contains(s, "250") {
		t.Errorf("unknown opcode string %q", s)
	}
	if Opcode(250).Valid() {
		t.Error("opcode 250 must be invalid")
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid must be invalid")
	}
}

func TestInstValidate(t *testing.T) {
	valid := []Inst{
		{Op: OpADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpMOVI, Rd: 31, Imm: -5},
		{Op: OpFLDR, Rd: 31, Ra: 30, Imm: 64},
		{Op: OpVSPLAT, Rd: 15, Ra: 31},
		{Op: OpHALT},
		{Op: OpB, Imm: -3},
	}
	for _, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", in, err)
		}
	}
	invalid := []Inst{
		{Op: OpInvalid},
		{Op: Opcode(200), Rd: 1},
		{Op: OpVADD, Rd: 16, Ra: 0, Rb: 0}, // vector reg out of range
		{Op: OpADD, Rd: 32, Ra: 0, Rb: 0},  // int reg out of range
		{Op: OpNOP, Rd: 1},                 // unused field must be zero
		{Op: OpMOVI, Rd: 0, Ra: 3},         // unused Ra must be zero
		{Op: OpVSPLAT, Rd: 0, Ra: 32},      // fp source out of range
	}
	for _, in := range invalid {
		if err := in.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", in)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: OpADDI, Rd: 1, Ra: ZR, Imm: -7}, "addi r1, zr, #-7"},
		{Inst{Op: OpMOVI, Rd: 4, Imm: 100}, "movi r4, #100"},
		{Inst{Op: OpFMOVI, Rd: 2, Imm: BitsFromF32(1.5)}, "fmovi f2, #1.5"},
		{Inst{Op: OpFADD, Rd: 0, Ra: 1, Rb: 2}, "fadd f0, f1, f2"},
		{Inst{Op: OpFLDR, Rd: 3, Ra: 4, Imm: 16}, "fldr f3, [r4, #16]"},
		{Inst{Op: OpLDRX, Rd: 3, Ra: 4, Rb: 5, Imm: 2}, "ldrx r3, [r4, r5, lsl #2]"},
		{Inst{Op: OpPLD, Ra: 6, Imm: 64}, "pld [r6, #64]"},
		{Inst{Op: OpB, Imm: -2}, "b -2"},
		{Inst{Op: OpBEQ, Ra: 1, Rb: ZR, Imm: 3}, "beq r1, zr, +3"},
		{Inst{Op: OpJR, Ra: LR}, "jr lr"},
		{Inst{Op: OpVSUM, Rd: 1, Ra: 2}, "vsum f1, v2"},
		{Inst{Op: OpHALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpB, Imm: 5}
	if got := in.BranchTarget(10); got != 16 {
		t.Errorf("target = %d, want 16", got)
	}
	in = Inst{Op: OpBNE, Imm: -4}
	if got := in.BranchTarget(10); got != 7 {
		t.Errorf("target = %d, want 7", got)
	}
}

// randomValidInst builds an arbitrary valid instruction.
func randomValidInst(r *rand.Rand) Inst {
	for {
		op := Opcode(1 + r.Intn(NumOpcodes-1))
		info := op.Info()
		in := Inst{Op: op, Imm: int32(r.Uint32())}
		pick := func(c RegClass) Reg {
			switch c {
			case RCInt:
				return Reg(r.Intn(NumIntRegs))
			case RCFP:
				return Reg(r.Intn(NumFPRegs))
			case RCVec:
				return Reg(r.Intn(NumVecRegs))
			}
			return 0
		}
		in.Rd = pick(info.DstClass)
		in.Ra = pick(info.SrcAClass)
		in.Rb = pick(info.SrcBClass)
		if in.Validate() == nil {
			return in
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomValidInst(r)
		var buf [InstBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			t.Logf("encode %v: %v", in, err)
			return false
		}
		out, err := Decode(buf[:])
		if err != nil {
			t.Logf("decode %v: %v", in, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCodecErrors(t *testing.T) {
	var buf [InstBytes]byte
	if err := Encode(Inst{Op: OpInvalid}, buf[:]); err == nil {
		t.Error("encoding invalid opcode must fail")
	}
	if err := Encode(Inst{Op: OpADD}, buf[:4]); err == nil {
		t.Error("short buffer must fail")
	}
	if _, err := Decode(buf[:4]); err == nil {
		t.Error("short decode must fail")
	}
	buf = [InstBytes]byte{} // opcode 0 = invalid
	if _, err := Decode(buf[:]); err == nil {
		t.Error("decoding zeroes must fail (OpInvalid)")
	}
}

func TestProgramCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := &Program{Name: "t"}
	for i := 0; i < 200; i++ {
		in := randomValidInst(r)
		if in.Op.IsBranch() {
			in = Inst{Op: OpNOP} // keep Validate happy about targets
		}
		p.Insts = append(p.Insts, in)
	}
	img, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != len(p.Insts)*InstBytes {
		t.Fatalf("image size %d", len(img))
	}
	q, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("decoded %d instructions, want %d", len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Fatalf("inst %d: %v != %v", i, p.Insts[i], q.Insts[i])
		}
	}
	if _, err := DecodeProgram(img[:len(img)-3]); err == nil {
		t.Error("truncated image must fail")
	}
}

func TestProgramValidate(t *testing.T) {
	ok := &Program{Insts: []Inst{
		{Op: OpMOVI, Rd: 0, Imm: 1},
		{Op: OpB, Imm: 0}, // falls through to halt
		{Op: OpHALT},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := &Program{Insts: []Inst{
		{Op: OpB, Imm: 100},
		{Op: OpHALT},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range branch target must be rejected")
	}
	neg := &Program{Insts: []Inst{
		{Op: OpB, Imm: -5},
		{Op: OpHALT},
	}}
	if err := neg.Validate(); err == nil {
		t.Error("negative out-of-range branch target must be rejected")
	}
}

func TestDisassembleListing(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: OpMOVI, Rd: 0, Imm: 7},
		{Op: OpHALT},
	}}
	text := p.Disassemble()
	if !strings.Contains(text, "movi r0, #7") || !strings.Contains(text, "halt") {
		t.Errorf("disassembly missing instructions:\n%s", text)
	}
}

func TestF32Bits(t *testing.T) {
	for _, v := range []float32{0, 1, -1.5, 3.14159, 1e-7} {
		if got := F32FromBits(BitsFromF32(v)); got != v {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}
