package isa

import "fmt"

// Opcode identifies an ARMlet instruction.
type Opcode uint8

// Opcode space. The zero value is deliberately invalid so that
// zero-initialized memory decodes to an illegal instruction.
const (
	OpInvalid Opcode = iota

	// Integer register-register ALU.
	OpADD // rd = ra + rb
	OpSUB // rd = ra - rb
	OpMUL // rd = ra * rb
	OpDIV // rd = ra / rb (signed; rb==0 faults)
	OpREM // rd = ra % rb (signed; rb==0 faults)
	OpAND // rd = ra & rb
	OpORR // rd = ra | rb
	OpEOR // rd = ra ^ rb
	OpLSL // rd = ra << (rb & 31)
	OpLSR // rd = uint32(ra) >> (rb & 31)
	OpASR // rd = ra >> (rb & 31)

	// Integer register-immediate ALU.
	OpADDI // rd = ra + imm
	OpSUBI // rd = ra - imm
	OpMULI // rd = ra * imm
	OpANDI // rd = ra & imm
	OpORRI // rd = ra | imm
	OpEORI // rd = ra ^ imm
	OpLSLI // rd = ra << (imm & 31)
	OpLSRI // rd = uint32(ra) >> (imm & 31)
	OpASRI // rd = ra >> (imm & 31)
	OpMOVI // rd = imm

	// Integer compare-and-set (RISC style; enables branchless code).
	OpSLT  // rd = (ra < rb) ? 1 : 0 (signed)
	OpSLTU // rd = (uint32(ra) < uint32(rb)) ? 1 : 0
	OpSLTI // rd = (ra < imm) ? 1 : 0 (signed)
	OpSEQ  // rd = (ra == rb) ? 1 : 0
	OpSNE  // rd = (ra != rb) ? 1 : 0
	OpSEL  // rd = (ra != 0) ? rb : rd  (conditional select; rd is also a source)

	// Scalar float32.
	OpFADD  // fd = fa + fb
	OpFSUB  // fd = fa - fb
	OpFMUL  // fd = fa * fb
	OpFDIV  // fd = fa / fb
	OpFNEG  // fd = -fa
	OpFABS  // fd = |fa|
	OpFMAX  // fd = max(fa, fb)
	OpFMIN  // fd = min(fa, fb)
	OpFMOV  // fd = fa
	OpFMOVI // fd = float32 from imm bits
	OpFCVT  // fd = float32(ra)  (int reg -> float reg)
	OpFTOI  // rd = int32(fa)    (float reg -> int reg, truncating)
	OpFSLT  // rd = (fa < fb) ? 1 : 0   (int dest)
	OpFSLE  // rd = (fa <= fb) ? 1 : 0  (int dest)
	OpFSEQ  // rd = (fa == fb) ? 1 : 0  (int dest)
	OpFSEL  // fd = (ra != 0) ? fb : fd (int cond reg; fd also a source)

	// Vector (4 x float32 lanes).
	OpVADD   // vd = va + vb, lane-wise
	OpVSUB   // vd = va - vb
	OpVMUL   // vd = va * vb
	OpVDIV   // vd = va / vb
	OpVFMA   // vd = vd + va*vb (vd is also a source)
	OpVMIN   // vd = min(va, vb), lane-wise
	OpVMAX   // vd = max(va, vb), lane-wise
	OpVMOV   // vd = va
	OpVSPLAT // vd = broadcast(fa)
	OpVSUM   // fd = va[0]+va[1]+va[2]+va[3] (horizontal reduce, float dest)
	OpVSEL   // vd = (ra != 0) ? vb : vd (int cond reg; vd also a source)
	OpVCLT   // vd[l] = (va[l] < vb[l])  ? 1.0 : 0.0 (lane mask)
	OpVCLE   // vd[l] = (va[l] <= vb[l]) ? 1.0 : 0.0
	OpVCEQ   // vd[l] = (va[l] == vb[l]) ? 1.0 : 0.0
	OpVSELM  // vd[l] = (va[l] != 0) ? vb[l] : vd[l] (vector mask; vd also a source)

	// Memory. Addresses are byte addresses; LDR/STR move 4 bytes,
	// VLDR/VSTR move 16. Base+offset: addr = ra + imm.
	// Indexed: addr = ra + (rb << imm).
	OpLDR   // rd = mem32[ra + imm]
	OpSTR   // mem32[ra + imm] = rd
	OpLDRX  // rd = mem32[ra + rb<<imm]
	OpSTRX  // mem32[ra + rb<<imm] = rd
	OpFLDR  // fd = memf32[ra + imm]
	OpFSTR  // memf32[ra + imm] = fd
	OpFLDRX // fd = memf32[ra + rb<<imm]
	OpFSTRX // memf32[ra + rb<<imm] = fd
	OpVLDR  // vd = memv[ra + imm] (16 bytes)
	OpVSTR  // memv[ra + imm] = vd
	OpVLDRX // vd = memv[ra + rb<<imm]
	OpVSTRX // memv[ra + rb<<imm] = vd
	OpPLD   // software prefetch of line containing (ra + imm); never faults

	// Control. Branch targets are PC-relative instruction counts in imm
	// (target = pc + 1 + imm).
	OpB    // unconditional branch
	OpBEQ  // branch if ra == rb
	OpBNE  // branch if ra != rb
	OpBLT  // branch if ra < rb (signed)
	OpBGE  // branch if ra >= rb (signed)
	OpBL   // LR = pc + 1; branch
	OpJR   // pc = ra (absolute, instruction index)
	OpNOP  // no operation
	OpHALT // stop the machine

	numOpcodes // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes including OpInvalid.
const NumOpcodes = int(numOpcodes)

// Fmt describes how an instruction's operand fields are used, for the
// disassembler, the assembler, and operand validation.
type Fmt uint8

const (
	FmtNone   Fmt = iota // no operands (NOP, HALT)
	FmtRRR               // rd, ra, rb
	FmtRRI               // rd, ra, imm
	FmtRI                // rd, imm
	FmtRR                // rd, ra
	FmtMem               // rd, [ra, #imm]
	FmtMemX              // rd, [ra, rb, lsl #imm]
	FmtPLD               // [ra, #imm]
	FmtBr                // imm (pc-relative)
	FmtBrCmp             // ra, rb, imm
	FmtJmpReg            // ra
)

// RegClass identifies which register file an operand field indexes.
type RegClass uint8

const (
	RCNone RegClass = iota
	RCInt
	RCFP
	RCVec
)

// OpInfo is static metadata about an opcode.
type OpInfo struct {
	Name string
	Fmt  Fmt
	// Register classes of the rd / ra / rb fields (RCNone if unused).
	DstClass, SrcAClass, SrcBClass RegClass
	// DstIsSrc marks read-modify-write destinations (SEL, FSEL, VSEL, VFMA).
	DstIsSrc bool
	// Mem classifies memory behaviour: 0 none, 'l' load, 's' store, 'p' prefetch.
	Mem byte
	// AccessBytes is the memory access width for memory ops.
	AccessBytes int
	// Branch marks control-flow instructions (including BL/JR/HALT).
	Branch bool
}

var opInfos = [NumOpcodes]OpInfo{
	OpInvalid: {Name: "invalid", Fmt: FmtNone},

	OpADD: {Name: "add", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpSUB: {Name: "sub", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpMUL: {Name: "mul", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpDIV: {Name: "div", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpREM: {Name: "rem", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpAND: {Name: "and", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpORR: {Name: "orr", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpEOR: {Name: "eor", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpLSL: {Name: "lsl", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpLSR: {Name: "lsr", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpASR: {Name: "asr", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},

	OpADDI: {Name: "addi", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpSUBI: {Name: "subi", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpMULI: {Name: "muli", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpANDI: {Name: "andi", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpORRI: {Name: "orri", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpEORI: {Name: "eori", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpLSLI: {Name: "lsli", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpLSRI: {Name: "lsri", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpASRI: {Name: "asri", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpMOVI: {Name: "movi", Fmt: FmtRI, DstClass: RCInt},

	OpSLT:  {Name: "slt", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpSLTU: {Name: "sltu", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpSLTI: {Name: "slti", Fmt: FmtRRI, DstClass: RCInt, SrcAClass: RCInt},
	OpSEQ:  {Name: "seq", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpSNE:  {Name: "sne", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt},
	OpSEL:  {Name: "sel", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt, DstIsSrc: true},

	OpFADD:  {Name: "fadd", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFSUB:  {Name: "fsub", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFMUL:  {Name: "fmul", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFDIV:  {Name: "fdiv", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFNEG:  {Name: "fneg", Fmt: FmtRR, DstClass: RCFP, SrcAClass: RCFP},
	OpFABS:  {Name: "fabs", Fmt: FmtRR, DstClass: RCFP, SrcAClass: RCFP},
	OpFMAX:  {Name: "fmax", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFMIN:  {Name: "fmin", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFMOV:  {Name: "fmov", Fmt: FmtRR, DstClass: RCFP, SrcAClass: RCFP},
	OpFMOVI: {Name: "fmovi", Fmt: FmtRI, DstClass: RCFP},
	OpFCVT:  {Name: "fcvt", Fmt: FmtRR, DstClass: RCFP, SrcAClass: RCInt},
	OpFTOI:  {Name: "ftoi", Fmt: FmtRR, DstClass: RCInt, SrcAClass: RCFP},
	OpFSLT:  {Name: "fslt", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFSLE:  {Name: "fsle", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFSEQ:  {Name: "fseq", Fmt: FmtRRR, DstClass: RCInt, SrcAClass: RCFP, SrcBClass: RCFP},
	OpFSEL:  {Name: "fsel", Fmt: FmtRRR, DstClass: RCFP, SrcAClass: RCInt, SrcBClass: RCFP, DstIsSrc: true},

	OpVADD:   {Name: "vadd", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVSUB:   {Name: "vsub", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVMUL:   {Name: "vmul", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVDIV:   {Name: "vdiv", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVFMA:   {Name: "vfma", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec, DstIsSrc: true},
	OpVMIN:   {Name: "vmin", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVMAX:   {Name: "vmax", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVMOV:   {Name: "vmov", Fmt: FmtRR, DstClass: RCVec, SrcAClass: RCVec},
	OpVSPLAT: {Name: "vsplat", Fmt: FmtRR, DstClass: RCVec, SrcAClass: RCFP},
	OpVSUM:   {Name: "vsum", Fmt: FmtRR, DstClass: RCFP, SrcAClass: RCVec},
	OpVSEL:   {Name: "vsel", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCInt, SrcBClass: RCVec, DstIsSrc: true},
	OpVCLT:   {Name: "vclt", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVCLE:   {Name: "vcle", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVCEQ:   {Name: "vceq", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec},
	OpVSELM:  {Name: "vselm", Fmt: FmtRRR, DstClass: RCVec, SrcAClass: RCVec, SrcBClass: RCVec, DstIsSrc: true},

	OpLDR:   {Name: "ldr", Fmt: FmtMem, DstClass: RCInt, SrcAClass: RCInt, Mem: 'l', AccessBytes: 4},
	OpSTR:   {Name: "str", Fmt: FmtMem, DstClass: RCInt, SrcAClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: 4},
	OpLDRX:  {Name: "ldrx", Fmt: FmtMemX, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt, Mem: 'l', AccessBytes: 4},
	OpSTRX:  {Name: "strx", Fmt: FmtMemX, DstClass: RCInt, SrcAClass: RCInt, SrcBClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: 4},
	OpFLDR:  {Name: "fldr", Fmt: FmtMem, DstClass: RCFP, SrcAClass: RCInt, Mem: 'l', AccessBytes: 4},
	OpFSTR:  {Name: "fstr", Fmt: FmtMem, DstClass: RCFP, SrcAClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: 4},
	OpFLDRX: {Name: "fldrx", Fmt: FmtMemX, DstClass: RCFP, SrcAClass: RCInt, SrcBClass: RCInt, Mem: 'l', AccessBytes: 4},
	OpFSTRX: {Name: "fstrx", Fmt: FmtMemX, DstClass: RCFP, SrcAClass: RCInt, SrcBClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: 4},
	OpVLDR:  {Name: "vldr", Fmt: FmtMem, DstClass: RCVec, SrcAClass: RCInt, Mem: 'l', AccessBytes: VecBytes},
	OpVSTR:  {Name: "vstr", Fmt: FmtMem, DstClass: RCVec, SrcAClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: VecBytes},
	OpVLDRX: {Name: "vldrx", Fmt: FmtMemX, DstClass: RCVec, SrcAClass: RCInt, SrcBClass: RCInt, Mem: 'l', AccessBytes: VecBytes},
	OpVSTRX: {Name: "vstrx", Fmt: FmtMemX, DstClass: RCVec, SrcAClass: RCInt, SrcBClass: RCInt, DstIsSrc: true, Mem: 's', AccessBytes: VecBytes},
	OpPLD:   {Name: "pld", Fmt: FmtPLD, SrcAClass: RCInt, Mem: 'p', AccessBytes: 4},

	OpB:    {Name: "b", Fmt: FmtBr, Branch: true},
	OpBEQ:  {Name: "beq", Fmt: FmtBrCmp, SrcAClass: RCInt, SrcBClass: RCInt, Branch: true},
	OpBNE:  {Name: "bne", Fmt: FmtBrCmp, SrcAClass: RCInt, SrcBClass: RCInt, Branch: true},
	OpBLT:  {Name: "blt", Fmt: FmtBrCmp, SrcAClass: RCInt, SrcBClass: RCInt, Branch: true},
	OpBGE:  {Name: "bge", Fmt: FmtBrCmp, SrcAClass: RCInt, SrcBClass: RCInt, Branch: true},
	OpBL:   {Name: "bl", Fmt: FmtBr, Branch: true},
	OpJR:   {Name: "jr", Fmt: FmtJmpReg, SrcAClass: RCInt, Branch: true},
	OpNOP:  {Name: "nop", Fmt: FmtNone},
	OpHALT: {Name: "halt", Fmt: FmtNone, Branch: true},
}

// Info returns the static metadata for op. Unknown opcodes return the
// OpInvalid metadata.
func (op Opcode) Info() OpInfo {
	if int(op) >= NumOpcodes {
		return opInfos[OpInvalid]
	}
	return opInfos[op]
}

// Valid reports whether op is a defined, legal opcode.
func (op Opcode) Valid() bool { return op > OpInvalid && int(op) < NumOpcodes }

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if int(op) >= NumOpcodes {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfos[op].Name
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op.Info().Mem == 'l' }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op.Info().Mem == 's' }

// IsPrefetch reports whether op is a software prefetch.
func (op Opcode) IsPrefetch() bool { return op.Info().Mem == 'p' }

// IsMem reports whether op accesses data memory (including prefetch).
func (op Opcode) IsMem() bool { return op.Info().Mem != 0 }

// IsBranch reports whether op can redirect control flow.
func (op Opcode) IsBranch() bool { return op.Info().Branch }

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return true
	}
	return false
}

// IsVector reports whether op operates on vector registers or moves
// vector-width data.
func (op Opcode) IsVector() bool {
	info := op.Info()
	return info.DstClass == RCVec || info.SrcAClass == RCVec || info.SrcBClass == RCVec
}

// OpByName maps an assembler mnemonic back to its opcode; ok is false for
// unknown mnemonics.
func OpByName(name string) (op Opcode, ok bool) {
	o, ok := opsByName[name]
	return o, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := OpInvalid + 1; int(op) < NumOpcodes; op++ {
		m[opInfos[op].Name] = op
	}
	return m
}()
