// Package isa defines ARMlet, the 32-bit RISC instruction set executed by
// the timing simulator in internal/cpu.
//
// ARMlet is a stand-in for the ARM user-mode subset that gem5's SE mode
// executes in the paper. It is deliberately small but complete enough to
// express the PolyBench kernels and every code transformation the paper
// applies (vectorization, software prefetch, branch removal via select,
// alignment): scalar integer and float32 arithmetic, 4-lane float32 SIMD,
// base+offset and base+index addressing, compare-and-set plus conditional
// select, and a PLD software-prefetch instruction.
//
// Architectural state:
//
//   - 32 integer registers R0..R31. R31 (ZR) is hardwired to zero,
//     R30 (SP) is the stack pointer by convention, R29 (LR) the link
//     register written by BL.
//   - 32 scalar float32 registers F0..F31.
//   - 16 vector registers V0..V15, each four float32 lanes (VecLanes).
//   - A program counter, in units of instructions.
//
// Instructions are fixed-width: 8 bytes in the binary encoding
// (see codec.go), [op:8][rd:8][ra:8][rb:8][imm:32] little-endian.
package isa

import "fmt"

// VecLanes is the number of float32 lanes in a vector register. The paper's
// vectorization example ("four additions at once") fixes it at 4.
const VecLanes = 4

// VecBytes is the width of a vector memory access in bytes.
const VecBytes = VecLanes * 4

// InstBytes is the size of one encoded instruction in bytes. Instruction
// fetch pulls this many bytes per instruction through the IL1.
const InstBytes = 8

// Register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumVecRegs = 16
)

// Conventional integer register roles.
const (
	ZR = 31 // hardwired zero
	SP = 30 // stack pointer (convention only)
	LR = 29 // link register, written by BL
)

// Reg is an integer register number (0..31).
type Reg = uint8

// IntRegName returns the assembler name of integer register r.
func IntRegName(r Reg) string {
	switch r {
	case ZR:
		return "zr"
	case SP:
		return "sp"
	case LR:
		return "lr"
	}
	return fmt.Sprintf("r%d", r)
}

// FPRegName returns the assembler name of float register r.
func FPRegName(r Reg) string { return fmt.Sprintf("f%d", r) }

// VecRegName returns the assembler name of vector register r.
func VecRegName(r Reg) string { return fmt.Sprintf("v%d", r) }
