package isa

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding: 8 bytes per instruction, little-endian.
//
//	byte 0: opcode
//	byte 1: rd
//	byte 2: ra
//	byte 3: rb
//	bytes 4-7: imm (int32, little-endian)
//
// The encoding is bijective on valid instructions: Decode(Encode(i)) == i,
// enforced by a property test.

// Encode writes the 8-byte encoding of in into buf, which must be at
// least InstBytes long. It returns an error if the instruction does not
// validate.
func Encode(in Inst, buf []byte) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if len(buf) < InstBytes {
		return fmt.Errorf("isa: encode buffer too short: %d < %d", len(buf), InstBytes)
	}
	buf[0] = byte(in.Op)
	buf[1] = in.Rd
	buf[2] = in.Ra
	buf[3] = in.Rb
	binary.LittleEndian.PutUint32(buf[4:8], uint32(in.Imm))
	return nil
}

// Decode parses the 8-byte encoding in buf. It returns an error for
// illegal opcodes or out-of-range register fields.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < InstBytes {
		return Inst{}, fmt.Errorf("isa: decode buffer too short: %d < %d", len(buf), InstBytes)
	}
	in := Inst{
		Op:  Opcode(buf[0]),
		Rd:  buf[1],
		Ra:  buf[2],
		Rb:  buf[3],
		Imm: int32(binary.LittleEndian.Uint32(buf[4:8])),
	}
	if err := in.Validate(); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// EncodeProgram serializes all instructions of p.
func EncodeProgram(p *Program) ([]byte, error) {
	out := make([]byte, len(p.Insts)*InstBytes)
	for i, in := range p.Insts {
		if err := Encode(in, out[i*InstBytes:]); err != nil {
			return nil, fmt.Errorf("inst %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeProgram parses a byte image produced by EncodeProgram.
func DecodeProgram(img []byte) (*Program, error) {
	if len(img)%InstBytes != 0 {
		return nil, fmt.Errorf("isa: program image length %d not a multiple of %d", len(img), InstBytes)
	}
	p := &Program{Insts: make([]Inst, len(img)/InstBytes)}
	for i := range p.Insts {
		in, err := Decode(img[i*InstBytes:])
		if err != nil {
			return nil, fmt.Errorf("inst %d: %w", i, err)
		}
		p.Insts[i] = in
	}
	return p, nil
}

// F32FromBits reinterprets the immediate bit pattern as a float32
// (used by FMOVI).
func F32FromBits(imm int32) float32 { return math.Float32frombits(uint32(imm)) }

// BitsFromF32 returns the immediate encoding of a float32 constant.
func BitsFromF32(f float32) int32 { return int32(math.Float32bits(f)) }
