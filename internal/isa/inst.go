package isa

import (
	"errors"
	"fmt"
)

// Inst is one decoded ARMlet instruction.
//
// The Rd/Ra/Rb fields index the register file named by the opcode's
// metadata (integer, float, or vector). Imm is a 32-bit immediate whose
// meaning depends on the format: an ALU constant, a byte offset for
// memory operations, a shift amount for indexed addressing, float32 bits
// for FMOVI, or a PC-relative instruction offset for branches.
type Inst struct {
	Op         Opcode
	Rd, Ra, Rb Reg
	Imm        int32
}

// Errors returned by Inst.Validate and the codec.
var (
	ErrBadOpcode   = errors.New("isa: invalid opcode")
	ErrBadRegister = errors.New("isa: register index out of range")
)

func regLimit(c RegClass) uint8 {
	switch c {
	case RCInt:
		return NumIntRegs
	case RCFP:
		return NumFPRegs
	case RCVec:
		return NumVecRegs
	default:
		return 0
	}
}

func checkReg(c RegClass, r Reg, field string, op Opcode) error {
	if c == RCNone {
		if r != 0 {
			return fmt.Errorf("%w: %s: unused field %s must be 0, got %d", ErrBadRegister, op, field, r)
		}
		return nil
	}
	if r >= regLimit(c) {
		return fmt.Errorf("%w: %s: %s=%d exceeds register file", ErrBadRegister, op, field, r)
	}
	return nil
}

// Validate checks that the opcode is legal and every register field is in
// range for its register class. Unused register fields must be zero so
// that each instruction has exactly one encoding.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("%w: %d", ErrBadOpcode, uint8(in.Op))
	}
	info := in.Op.Info()
	if err := checkReg(info.DstClass, in.Rd, "rd", in.Op); err != nil {
		return err
	}
	if err := checkReg(info.SrcAClass, in.Ra, "ra", in.Op); err != nil {
		return err
	}
	if err := checkReg(info.SrcBClass, in.Rb, "rb", in.Op); err != nil {
		return err
	}
	return nil
}

func regName(c RegClass, r Reg) string {
	switch c {
	case RCInt:
		return IntRegName(r)
	case RCFP:
		return FPRegName(r)
	case RCVec:
		return VecRegName(r)
	}
	return "?"
}

// String disassembles the instruction into assembler syntax, e.g.
// "add r1, r2, r3" or "fldr f0, [r4, #16]".
func (in Inst) String() string {
	info := in.Op.Info()
	switch info.Fmt {
	case FmtNone:
		return info.Name
	case FmtRRR:
		return fmt.Sprintf("%s %s, %s, %s", info.Name,
			regName(info.DstClass, in.Rd), regName(info.SrcAClass, in.Ra), regName(info.SrcBClass, in.Rb))
	case FmtRRI:
		return fmt.Sprintf("%s %s, %s, #%d", info.Name,
			regName(info.DstClass, in.Rd), regName(info.SrcAClass, in.Ra), in.Imm)
	case FmtRI:
		if in.Op == OpFMOVI {
			return fmt.Sprintf("%s %s, #%g", info.Name, regName(info.DstClass, in.Rd), F32FromBits(in.Imm))
		}
		return fmt.Sprintf("%s %s, #%d", info.Name, regName(info.DstClass, in.Rd), in.Imm)
	case FmtRR:
		return fmt.Sprintf("%s %s, %s", info.Name,
			regName(info.DstClass, in.Rd), regName(info.SrcAClass, in.Ra))
	case FmtMem:
		return fmt.Sprintf("%s %s, [%s, #%d]", info.Name,
			regName(info.DstClass, in.Rd), IntRegName(in.Ra), in.Imm)
	case FmtMemX:
		return fmt.Sprintf("%s %s, [%s, %s, lsl #%d]", info.Name,
			regName(info.DstClass, in.Rd), IntRegName(in.Ra), IntRegName(in.Rb), in.Imm)
	case FmtPLD:
		return fmt.Sprintf("%s [%s, #%d]", info.Name, IntRegName(in.Ra), in.Imm)
	case FmtBr:
		return fmt.Sprintf("%s %+d", info.Name, in.Imm)
	case FmtBrCmp:
		return fmt.Sprintf("%s %s, %s, %+d", info.Name, IntRegName(in.Ra), IntRegName(in.Rb), in.Imm)
	case FmtJmpReg:
		return fmt.Sprintf("%s %s", info.Name, IntRegName(in.Ra))
	}
	return fmt.Sprintf("%s ???", info.Name)
}

// BranchTarget returns the absolute instruction index this branch jumps to
// when taken, given its own index pc. It is meaningful only for PC-relative
// branches (B, BEQ, BNE, BLT, BGE, BL).
func (in Inst) BranchTarget(pc int) int { return pc + 1 + int(in.Imm) }

// Program is a sequence of instructions starting at instruction index 0.
type Program struct {
	Insts []Inst
	// Name labels the program in stats output.
	Name string
	// DataSize is the number of bytes of the data segment the program
	// expects to be mapped starting at address 0.
	DataSize int
}

// Validate checks every instruction and that branch targets stay inside
// the program.
func (p *Program) Validate() error {
	for pc, in := range p.Insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("inst %d: %w", pc, err)
		}
		if in.Op.IsBranch() && in.Op != OpJR && in.Op != OpHALT {
			t := in.BranchTarget(pc)
			if t < 0 || t > len(p.Insts) {
				return fmt.Errorf("inst %d (%s): branch target %d outside program [0,%d]", pc, in, t, len(p.Insts))
			}
		}
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line with
// its index.
func (p *Program) Disassemble() string {
	out := make([]byte, 0, len(p.Insts)*24)
	for pc, in := range p.Insts {
		out = append(out, fmt.Sprintf("%5d: %s\n", pc, in)...)
	}
	return string(out)
}
