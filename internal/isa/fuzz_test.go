package isa

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip is the decode-side half of the codec's bijectivity
// contract (DESIGN.md §7): any byte image that Decode accepts must
// re-encode to exactly the bytes it was decoded from, and decode again
// to the identical instruction. Rejections must be errors, not panics.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed with one encoding per operand format plus hostile shapes.
	seeds := []Inst{
		{Op: OpADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpADDI, Rd: 4, Ra: 5, Imm: -64},
		{Op: OpMOVI, Rd: 31, Imm: 1 << 30},
		{Op: OpFMOVI, Rd: 7, Imm: BitsFromF32(1.5)},
		{Op: OpFMOV, Rd: 0, Ra: 31},
		{Op: OpLDR, Rd: 3, Ra: 29, Imm: 4096},
		{Op: OpSTRX, Rd: 2, Ra: 3, Rb: 4, Imm: 2},
		{Op: OpVLDR, Rd: 15, Ra: 1, Imm: 16},
		{Op: OpPLD, Ra: 6, Imm: 128},
		{Op: OpB, Imm: -3},
		{Op: OpBEQ, Ra: 1, Rb: 2, Imm: 7},
		{Op: OpJR, Ra: 14},
		{Op: OpHALT},
	}
	for _, in := range seeds {
		var buf [InstBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			f.Fatalf("seed %v: %v", in, err)
		}
		f.Add(buf[:])
	}
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})             // OpInvalid
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255})  // short + illegal
	f.Add([]byte{byte(OpADD), 40, 0, 0, 0, 0, 0, 0})  // register out of range
	f.Add([]byte{byte(OpHALT), 1, 0, 0, 0, 0, 0, 0})  // unused field nonzero

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("Decode accepted invalid instruction %v: %v", in, verr)
		}
		var buf [InstBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			t.Fatalf("Encode(Decode(%x)) = %v", data[:InstBytes], err)
		}
		if !bytes.Equal(buf[:], data[:InstBytes]) {
			t.Fatalf("re-encode mismatch: decoded %v from %x, encoded %x", in, data[:InstBytes], buf)
		}
		in2, err := Decode(buf[:])
		if err != nil || in2 != in {
			t.Fatalf("second decode = %v, %v; want %v", in2, err, in)
		}
	})
}

// FuzzEncodeDecodeRoundTrip is the encode-side half: every instruction
// that validates must encode, decode back to the identical instruction,
// and survive a program-level EncodeProgram/DecodeProgram round trip.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(byte(OpADD), byte(1), byte(2), byte(3), int32(0))
	f.Add(byte(OpMOVI), byte(0), byte(0), byte(0), int32(-1))
	f.Add(byte(OpVFMA), byte(15), byte(14), byte(13), int32(0))
	f.Add(byte(OpLDRX), byte(9), byte(8), byte(7), int32(2))
	f.Add(byte(OpHALT), byte(0), byte(0), byte(0), int32(0))
	f.Add(byte(255), byte(255), byte(255), byte(255), int32(-1))

	f.Fuzz(func(t *testing.T, op, rd, ra, rb byte, imm int32) {
		in := Inst{Op: Opcode(op), Rd: rd, Ra: ra, Rb: rb, Imm: imm}
		if in.Validate() != nil {
			return
		}
		var buf [InstBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			t.Fatalf("valid instruction %v failed to encode: %v", in, err)
		}
		out, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("Decode(Encode(%v)) = %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip changed instruction: %v -> %v", in, out)
		}

		p := &Program{Insts: []Inst{in, {Op: OpHALT}}}
		img, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("EncodeProgram: %v", err)
		}
		p2, err := DecodeProgram(img)
		if err != nil {
			t.Fatalf("DecodeProgram: %v", err)
		}
		if len(p2.Insts) != 2 || p2.Insts[0] != in {
			t.Fatalf("program round trip changed instructions: %v", p2.Insts)
		}
	})
}
