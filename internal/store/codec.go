package store

// Record codec: one evaluation result as a self-validating byte blob.
// The framing is deliberately simple — magic, payload length, payload
// checksum, JSON payload — because the failure mode that matters is not
// format evolution (the schema version participates in the *key*, so an
// incompatible change just misses) but torn or corrupted files from a
// process killed mid-write: Decode must reject those cheaply and
// unambiguously so the store can delete and re-evaluate.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"sttdl1/internal/sim"
)

// SchemaVersion is the store's record-semantics version. It participates
// in every content address, so bumping it orphans (never corrupts) all
// previously stored results: old entries simply stop being addressable
// and a sweep re-evaluates. Bump it whenever the meaning of a stored
// counter changes — a timing-model fix, a new RunResult field the energy
// model reads, a codec change.
const SchemaVersion = 1

// recordMagic frames a record on disk. The trailing digit tracks the
// framing only; record semantics are versioned by SchemaVersion.
const recordMagic = "STTEVAL1"

// maxPayload bounds a record's JSON payload. Real records are a few KB;
// the bound exists so a corrupted length field cannot demand a
// multi-gigabyte allocation before the checksum gets a chance to reject
// the file.
const maxPayload = 16 << 20

// Record is one stored evaluation: the full counter record of a
// (kernel-variant, configuration) simulation. Energy and area are
// derived deterministically from these counters by internal/energy, so
// storing the counters stores the whole result; the model parameters
// still participate in the key so a model change re-evaluates rather
// than serving counters whose derived objectives silently moved.
//
// The result's CPU.State (final memory image and registers) is never
// stored: it is megabytes of replayable data no experiment consumer
// reads — a store hit returns Result.CPU.State == nil.
type Record struct {
	// Schema echoes SchemaVersion at write time (defense in depth; the
	// version is already part of the content address).
	Schema int
	// Bench and Size identify the kernel variant the counters belong to.
	Bench string
	Size  int
	// Result is the full simulation outcome minus CPU.State.
	Result *sim.RunResult
}

// EncodeRecord renders rec as a self-validating blob:
//
//	"STTEVAL1" | uint64 LE payload length | sha256(payload) | payload
//
// The input record is not mutated: the CPU.State strip happens on
// shallow copies (the result is shared with the in-memory memo).
func EncodeRecord(rec *Record) ([]byte, error) {
	if rec == nil || rec.Result == nil || rec.Result.CPU == nil {
		return nil, fmt.Errorf("store: encode: incomplete record")
	}
	// Shallow-copy the chain down to the State pointer being cleared;
	// everything else is plain data.
	r := *rec
	res := *rec.Result
	cpuRes := *rec.Result.CPU
	cpuRes.State = nil
	res.CPU = &cpuRes
	r.Result = &res

	payload, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("store: encode: payload %d bytes exceeds limit", len(payload))
	}
	out := make([]byte, 0, len(recordMagic)+8+sha256.Size+len(payload))
	out = append(out, recordMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out, nil
}

// DecodeRecord parses and validates a blob EncodeRecord produced. Any
// deviation — short file, wrong magic, length mismatch, checksum
// mismatch, malformed JSON, wrong schema — returns an error; the caller
// treats every error as "corrupt entry: delete and re-evaluate". The
// function never panics and never allocates more than the (bounded)
// declared payload length on garbage input.
func DecodeRecord(data []byte) (*Record, error) {
	header := len(recordMagic) + 8 + sha256.Size
	if len(data) < header {
		return nil, fmt.Errorf("store: record truncated (%d bytes)", len(data))
	}
	if string(data[:len(recordMagic)]) != recordMagic {
		return nil, fmt.Errorf("store: bad record magic %q", data[:len(recordMagic)])
	}
	n := binary.LittleEndian.Uint64(data[len(recordMagic) : len(recordMagic)+8])
	if n > maxPayload {
		return nil, fmt.Errorf("store: implausible payload length %d", n)
	}
	payload := data[header:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("store: payload length %d, header declares %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(recordMagic)+8:header]) {
		return nil, fmt.Errorf("store: record checksum mismatch")
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("store: record payload: %w", err)
	}
	if rec.Schema != SchemaVersion {
		return nil, fmt.Errorf("store: record schema %d, want %d", rec.Schema, SchemaVersion)
	}
	if rec.Result == nil || rec.Result.CPU == nil {
		return nil, fmt.Errorf("store: record missing result")
	}
	return &rec, nil
}
