package store

import (
	"os"
	"testing"
	"time"
)

// fill publishes n records under distinct keys and returns them in
// publication order.
func fill(t *testing.T, s *Store, n int) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = testKey(string(rune('a'+i)) + "-gc")
		if err := s.Put(keys[i], NewRecord("gemm", 32, testResult())); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestScanAndVerify(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 3)

	d, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if d.Records != 3 || d.Bytes <= 0 || d.Healed != 0 {
		t.Fatalf("Scan = %+v, want 3 records, positive bytes, no heals", d)
	}

	// Corrupt one entry on disk; Verify must heal it and report one
	// fewer surviving record.
	if err := os.WriteFile(s.path(keys[1]), []byte("not a record"), 0o666); err != nil {
		t.Fatal(err)
	}
	v, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if v.Records != 2 || v.Healed != 1 {
		t.Fatalf("Verify = %+v, want 2 surviving records and 1 heal", v)
	}
	if _, found := s.Get(keys[1]); found {
		t.Error("healed entry still served")
	}
	if _, found := s.Get(keys[0]); !found {
		t.Error("Verify damaged a valid entry")
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 4)
	// Filesystem mtime granularity can make same-instant writes
	// order-ambiguous; pin an explicit, strictly increasing mtime per
	// entry so "oldest" is well-defined.
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	d, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	per := d.Bytes / int64(d.Records)

	// Budget for two records: the two oldest must go, the two newest
	// stay.
	res, err := s.GC(2 * per)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 || res.Kept.Records != 2 {
		t.Fatalf("GC = %+v, want 2 evicted / 2 kept", res)
	}
	for i, k := range keys {
		_, found := s.Get(k)
		if wantFound := i >= 2; found != wantFound {
			t.Errorf("key %d: found=%v, want %v", i, found, wantFound)
		}
	}

	// maxBytes <= 0 empties the store.
	res, err = s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept.Records != 0 {
		t.Fatalf("GC(0) kept %d record(s)", res.Kept.Records)
	}
	d, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if d.Records != 0 || d.Bytes != 0 {
		t.Fatalf("post-GC Scan = %+v, want empty", d)
	}

	// An evicted key re-publishes cleanly: eviction costs warmth only.
	if err := s.Put(keys[0], NewRecord("gemm", 32, testResult())); err != nil {
		t.Fatal(err)
	}
	if _, found := s.Get(keys[0]); !found {
		t.Error("re-publish after GC not served")
	}
}
