// Package store is the persistent, content-addressed evaluation cache
// behind cross-run and cross-process sweep memoization (DESIGN.md
// §7.7). Each entry maps the content address of one evaluation — the
// hash of the kernel variant's captured trace bytes, the canonicalized
// simulator configuration, the energy/technology model parameters and
// the store schema version — to the full counter record of that
// simulation. Because simulation is deterministic (byte-identical at
// any worker count, live or replay), a stored result is
// indistinguishable from a fresh one, which is what makes serving
// results across runs, processes and sharded sweeps sound.
//
// Concurrency model: writes go to a private temp file and are published
// with an atomic rename, so readers never observe a torn entry through
// the store's own API and concurrent writers of one key race benignly —
// both rename identical bytes (last writer wins). A reader that does
// find a corrupt file (a process killed mid-write on a filesystem that
// reorders metadata, cosmic-ray bit rot, a hostile edit) deletes it and
// reports a miss: corruption is always repaired by re-evaluation, never
// returned and never fatal.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"sttdl1/internal/sim"
)

// Key is the content address of one evaluation.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor derives the content address of one evaluation:
//
//   - benchKey names the kernel variant ("bench@size"); it pins the
//     compiled program even in the astronomically unlikely event two
//     different programs emit identical traces;
//   - traceDigest is the SHA-256 of the variant's encoded trace bytes
//     (replay.Cache.Digest) — the functional execution, byte for byte;
//   - cfgKey is sim.CanonicalKey of the configuration — every field the
//     timing model reads, defaults resolved;
//   - modelKey names the energy/technology model parameters the
//     objectives are derived under (energy.ModelKey);
//   - SchemaVersion invalidates the whole store on a semantic change.
//
// Fields are length-delimited before hashing so no two distinct field
// tuples can collide by concatenation.
func KeyFor(benchKey string, traceDigest [sha256.Size]byte, cfgKey, modelKey string) Key {
	// The preimage is assembled in one buffer and hashed with Sum256:
	// byte-for-byte the same stream the previous incremental-hash
	// version fed sha256.New, without the hash-state and per-field
	// conversion allocations (this runs once per store probe).
	buf := make([]byte, 0, 4*8+len(keyVersion)+len(benchKey)+len(traceDigest)+len(cfgKey)+len(modelKey))
	field := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	field(keyVersion)
	field(benchKey)
	buf = append(buf, traceDigest[:]...)
	field(cfgKey)
	field(modelKey)
	return Key(sha256.Sum256(buf))
}

// keyVersion is the schema field of every key preimage, rendered once.
var keyVersion = "sttstore/v" + strconv.Itoa(SchemaVersion)

// Stats is a snapshot of the store's counters since Open.
type Stats struct {
	// Hits counts evaluations served from disk.
	Hits int64
	// Misses counts lookups that found no (valid) entry.
	Misses int64
	// Writes counts records published.
	Writes int64
	// Corrupt counts invalid entries detected, deleted and re-missed.
	Corrupt int64
}

// String renders the snapshot the way warm sweeps report it.
func (s Stats) String() string {
	out := fmt.Sprintf("%d cached / %d evaluated, %d written", s.Hits, s.Misses, s.Writes)
	if s.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt entry(ies) dropped", s.Corrupt)
	}
	return out
}

// Store is a persistent content-addressed evaluation cache rooted at a
// directory. Safe for concurrent use by any number of goroutines and
// processes.
type Store struct {
	dir string

	hits, misses, writes, corrupt atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// path is the entry file for a key: two-hex-char fan-out directories
// keep any single directory's entry count filesystem-friendly for
// six-figure sweeps.
func (s *Store) path(k Key) string {
	// Built in one buffer rather than k.String() + slicing +
	// filepath.Join: this runs once per store probe on the warm sweep
	// path, and the Join route costs four intermediate strings.
	var name [2 * len(k)]byte
	hex.Encode(name[:], k[:])
	b := make([]byte, 0, len(s.dir)+len(name)+len("//.rec"))
	b = append(b, s.dir...)
	b = append(b, os.PathSeparator)
	b = append(b, name[:2]...)
	b = append(b, os.PathSeparator)
	b = append(b, name[2:]...)
	b = append(b, ".rec"...)
	return string(b)
}

// Get returns the record stored under k, or (nil, false) on a miss. A
// present-but-invalid entry — truncated write, checksum mismatch,
// foreign bytes — is deleted and reported as a miss, so corruption
// always heals by re-evaluation.
func (s *Store) Get(k Key) (*Record, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		// Any read error is a miss; only a clean "not found" skips the
		// corruption accounting.
		if !errors.Is(err, fs.ErrNotExist) {
			s.dropCorrupt(k)
		}
		s.misses.Add(1)
		return nil, false
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		s.dropCorrupt(k)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return rec, true
}

// Contains reports whether a valid entry for k is on disk, without
// touching the hit/miss counters. It fully validates the entry (the
// guided search uses it to route already-evaluated points through the
// store), so a torn file answers false.
func (s *Store) Contains(k Key) bool {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return false
	}
	if _, err := DecodeRecord(data); err != nil {
		s.dropCorrupt(k)
		return false
	}
	return true
}

// dropCorrupt removes an invalid entry so the next writer publishes a
// fresh one.
func (s *Store) dropCorrupt(k Key) {
	if err := os.Remove(s.path(k)); err == nil || errors.Is(err, fs.ErrNotExist) {
		s.corrupt.Add(1)
	}
}

// Put publishes rec under k: encode, write to a same-directory temp
// file, fsync-free atomic rename. A failed evaluation is never stored
// (callers only Put successful results); a failed Put leaves no partial
// entry behind. Concurrent writers of one key are benign — determinism
// makes their bytes identical, so last-writer-wins is a no-op.
func (s *Store) Put(k Key, rec *Record) error {
	data, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	dst := s.path(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// NewRecord assembles a Record for one completed simulation.
func NewRecord(bench string, size int, r *sim.RunResult) *Record {
	return &Record{Schema: SchemaVersion, Bench: bench, Size: size, Result: r}
}
