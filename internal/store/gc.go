package store

// Maintenance entry points (DESIGN.md §7.8): an always-on sweep service
// accretes store records without bound, so the store grows scan,
// verify and GC operations — `sttexplore store stats|gc` on the CLI,
// and the light scan behind the server's /v1/healthz.
//
// Concurrent-reader safety: every operation here works on immutable
// published entries (writers publish by atomic rename; see Put) and
// deletes whole files. A reader racing an eviction — or a GC racing
// another process's GC — observes either the valid entry or a clean
// miss, never a torn record; a miss re-evaluates and may re-publish,
// so eviction can only cost warmth, never correctness. That is the
// same contract corruption healing already relies on.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// DirStats summarizes the records on disk.
type DirStats struct {
	// Records is the number of entry files; Bytes their summed size.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Healed counts the invalid entries a deep scan (Verify) detected
	// and deleted; a light Scan never validates, so it reports 0.
	Healed int `json:"healed,omitempty"`
}

// String renders the stats the way `sttexplore store stats` and the
// server's health line print them.
func (d DirStats) String() string {
	out := fmt.Sprintf("%d record(s), %d bytes", d.Records, d.Bytes)
	if d.Healed > 0 {
		out += fmt.Sprintf(", %d corrupt entry(ies) healed", d.Healed)
	}
	return out
}

// entry is one on-disk record file, as GC ordering sees it.
type entry struct {
	path    string
	size    int64
	modTime time.Time
}

// entries walks the store directory collecting record files. Stray temp
// files and foreign names are ignored — they are either an in-flight
// writer's (about to be renamed or removed) or not ours to touch. Files
// that vanish mid-walk (a concurrent GC or corruption heal) are skipped,
// not errors.
func (s *Store) entries() ([]entry, error) {
	var out []entry
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".rec") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		out = append(out, entry{path: path, size: info.Size(), modTime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return out, nil
}

// Scan reports the record count and byte total without reading record
// contents — cheap enough for a health endpoint polled by a load
// balancer.
func (s *Store) Scan() (DirStats, error) {
	ents, err := s.entries()
	if err != nil {
		return DirStats{}, err
	}
	var d DirStats
	for _, e := range ents {
		d.Records++
		d.Bytes += e.size
	}
	return d, nil
}

// Verify is the deep scan: every entry is read and decoded, and invalid
// ones — truncated writes, checksum mismatches, foreign bytes — are
// deleted so the next evaluation re-publishes them (the same healing
// Get performs lazily, applied eagerly to the whole store). The
// returned stats describe the surviving records.
func (s *Store) Verify() (DirStats, error) {
	ents, err := s.entries()
	if err != nil {
		return DirStats{}, err
	}
	var d DirStats
	for _, e := range ents {
		data, err := os.ReadFile(e.path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // lost a race with another healer/GC: already gone
			}
			return DirStats{}, fmt.Errorf("store: %w", err)
		}
		if _, derr := DecodeRecord(data); derr != nil {
			if rerr := os.Remove(e.path); rerr == nil || errors.Is(rerr, fs.ErrNotExist) {
				d.Healed++
				s.corrupt.Add(1)
				continue
			}
			return DirStats{}, fmt.Errorf("store: healing %s: %w", e.path, err)
		}
		d.Records++
		d.Bytes += int64(len(data))
	}
	return d, nil
}

// GCResult is the accounting of one eviction pass.
type GCResult struct {
	// Evicted is the number of records deleted; FreedBytes their summed
	// size.
	Evicted    int   `json:"evicted"`
	FreedBytes int64 `json:"freed_bytes"`
	// Kept describes the records surviving the pass.
	Kept DirStats `json:"kept"`
}

// String renders the result the way `sttexplore store gc` prints it.
func (r GCResult) String() string {
	return fmt.Sprintf("evicted %d record(s) (%d bytes); kept %s",
		r.Evicted, r.FreedBytes, r.Kept)
}

// GC evicts records, oldest modification time first, until the store's
// byte total is at or under maxBytes (maxBytes <= 0 empties the store).
// Eviction order is deterministic for a quiet store: mtime ascending,
// ties by path. Concurrent readers of an evicted key see a clean miss
// and re-evaluate; concurrent writers re-publish — GC bounds disk, it
// never breaks the cache contract.
func (s *Store) GC(maxBytes int64) (GCResult, error) {
	ents, err := s.entries()
	if err != nil {
		return GCResult{}, err
	}
	var total int64
	for _, e := range ents {
		total += e.size
	}
	sort.Slice(ents, func(i, j int) bool {
		if !ents[i].modTime.Equal(ents[j].modTime) {
			return ents[i].modTime.Before(ents[j].modTime)
		}
		return ents[i].path < ents[j].path
	})
	var res GCResult
	kept := ents
	for len(kept) > 0 && total > maxBytes {
		e := kept[0]
		kept = kept[1:]
		if err := os.Remove(e.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return GCResult{}, fmt.Errorf("store: gc: %w", err)
		}
		res.Evicted++
		res.FreedBytes += e.size
		total -= e.size
	}
	for _, e := range kept {
		res.Kept.Records++
		res.Kept.Bytes += e.size
	}
	return res, nil
}
