package store

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sttdl1/internal/cpu"
	"sttdl1/internal/sim"
)

// testResult builds a small but fully populated RunResult, the way a
// real simulation hands one to the store (CPU.State attached — the
// codec must strip it without mutating the original).
func testResult() *sim.RunResult {
	cfg := sim.ApplyDefaults(sim.ProposalVWB())
	r := &sim.RunResult{
		Config: cfg,
		Bench:  "gemm",
		CPU: &cpu.Result{
			Cycles: 123456, Insts: 65432,
			Loads: 1000, Stores: 500, Prefetches: 7,
			Branches: 90, Mispredicts: 3,
			ReadStallCycles: 11, WriteStallCycles: 22,
			State: &cpu.State{},
		},
		DL1BankConflictCycles: 42,
		DL1SRAMReads:          5,
		DL1WayOffCycles:       17,
	}
	r.DL1Stats.Reads, r.DL1Stats.ReadHits = 1000, 900
	r.FEStats.Writes, r.FEStats.WriteHits = 500, 450
	return r
}

func testKey(tag string) Key {
	var digest [sha256.Size]byte
	copy(digest[:], tag)
	return KeyFor("gemm@32", digest, "cfg:"+tag, "model")
}

func TestRecordRoundTrip(t *testing.T) {
	res := testResult()
	rec := NewRecord("gemm", 32, res)
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	if res.CPU.State == nil {
		t.Fatal("EncodeRecord mutated the input: CPU.State cleared on the shared result")
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if got.Schema != SchemaVersion || got.Bench != "gemm" || got.Size != 32 {
		t.Errorf("decoded header = (%d, %q, %d)", got.Schema, got.Bench, got.Size)
	}
	if got.Result.CPU.State != nil {
		t.Error("decoded record carries CPU.State; it must never be stored")
	}
	want := *res.CPU
	want.State = nil
	if *got.Result.CPU != want {
		t.Errorf("decoded CPU counters = %+v, want %+v", *got.Result.CPU, want)
	}
	if got.Result.Config != res.Config {
		t.Errorf("decoded config = %+v, want %+v", got.Result.Config, res.Config)
	}
	if got.Result.DL1Stats != res.DL1Stats || got.Result.DL1BankConflictCycles != res.DL1BankConflictCycles {
		t.Error("decoded DL1 stats differ from the original")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	valid, err := EncodeRecord(NewRecord("gemm", 32, testResult()))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"short":          valid[:10],
		"header only":    valid[:len("STTEVAL1")+8+sha256.Size],
		"bad magic":      append([]byte("NOTAMAGIC"), valid[9:]...),
		"truncated tail": valid[:len(valid)-7],
		"extended tail":  append(append([]byte{}, valid...), 'x'),
		"all zero":       make([]byte, 256),
	}
	// Checksum mismatch: flip one payload byte.
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0x01
	cases["payload bitflip"] = flipped
	// Implausible declared length with a matching checksum position: the
	// bound must reject before any giant allocation.
	huge := append([]byte{}, valid...)
	for i := 0; i < 8; i++ {
		huge[len("STTEVAL1")+i] = 0xff
	}
	cases["huge length"] = huge

	for name, data := range cases {
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("%s: DecodeRecord accepted invalid input", name)
		}
	}
}

func TestStorePutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("a")
	if _, ok := st.Get(k); ok {
		t.Fatal("Get on an empty store reported a hit")
	}
	rec := NewRecord("gemm", 32, testResult())
	if err := st.Put(k, rec); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := st.Get(k)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Result.CPU.Cycles != rec.Result.CPU.Cycles {
		t.Errorf("stored cycles = %d, want %d", got.Result.CPU.Cycles, rec.Result.CPU.Cycles)
	}
	if !st.Contains(k) {
		t.Error("Contains is false for a stored key")
	}
	if st.Contains(testKey("other")) {
		t.Error("Contains is true for a never-stored key")
	}
	want := Stats{Hits: 1, Misses: 1, Writes: 1}
	if got := st.Stats(); got != want {
		t.Errorf("Stats = %+v, want %+v", got, want)
	}
}

// entryFiles lists the .rec files under the store root.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".rec" {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStoreHealsCorruptEntry is the regression test for the kill -9
// mid-write / bit-rot scenario: a present-but-invalid entry must be
// detected, deleted from disk and reported as a miss — never returned
// and never fatal — and the next Put must restore it.
func TestStoreHealsCorruptEntry(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip":    func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		"garbage":    func([]byte) []byte { return []byte("not a record at all") },
		"empty file": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey("x")
			rec := NewRecord("gemm", 32, testResult())
			if err := st.Put(k, rec); err != nil {
				t.Fatal(err)
			}
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected exactly one entry file, found %v", files)
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], corrupt(data), 0o666); err != nil {
				t.Fatal(err)
			}

			if _, ok := st.Get(k); ok {
				t.Fatal("Get returned a corrupt entry")
			}
			if n := len(entryFiles(t, dir)); n != 0 {
				t.Errorf("corrupt entry not deleted: %d file(s) remain", n)
			}
			s := st.Stats()
			if s.Corrupt != 1 || s.Hits != 0 {
				t.Errorf("Stats after corrupt read = %+v, want Corrupt 1 / Hits 0", s)
			}
			// Re-evaluation path: a fresh Put repairs the entry.
			if err := st.Put(k, rec); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Get(k); !ok || got.Result.CPU.Cycles != rec.Result.CPU.Cycles {
				t.Error("Get after repair did not serve the fresh record")
			}
		})
	}
}

func TestContainsDropsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("c")
	if err := st.Put(k, NewRecord("gemm", 32, testResult())); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if err := os.WriteFile(files[0], []byte("torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	if st.Contains(k) {
		t.Fatal("Contains validated a torn entry")
	}
	if n := len(entryFiles(t, dir)); n != 0 {
		t.Errorf("Contains left the torn entry on disk (%d files)", n)
	}
}

// TestKeyForFieldSeparation pins the length-delimited hashing: moving
// bytes between adjacent fields must change the key, and every field
// must participate.
func TestKeyForFieldSeparation(t *testing.T) {
	var digest [sha256.Size]byte
	base := KeyFor("ab", digest, "cd", "ef")
	distinct := []Key{
		KeyFor("a", digest, "bcd", "ef"), // bench/cfg boundary shifted
		KeyFor("ab", digest, "c", "def"), // cfg/model boundary shifted
		KeyFor("xb", digest, "cd", "ef"), // bench changed
		KeyFor("ab", digest, "xd", "ef"), // cfg changed
		KeyFor("ab", digest, "cd", "xf"), // model changed
	}
	var digest2 [sha256.Size]byte
	digest2[0] = 1
	distinct = append(distinct, KeyFor("ab", digest2, "cd", "ef"))
	seen := map[Key]bool{base: true}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("key %d collides: %s", i, k)
		}
		seen[k] = true
	}
	if got := KeyFor("ab", digest, "cd", "ef"); got != base {
		t.Error("KeyFor is not deterministic")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 90, Misses: 6, Writes: 6}
	if got, want := s.String(), "90 cached / 6 evaluated, 6 written"; got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
	s.Corrupt = 2
	if got := s.String(); got != "90 cached / 6 evaluated, 6 written, 2 corrupt entry(ies) dropped" {
		t.Errorf("Stats.String() with corruption = %q", got)
	}
}

// TestEncodeStable pins byte-level determinism of the codec: equal
// records encode to equal bytes (the property that makes concurrent
// last-writer-wins publication a no-op).
func TestEncodeStable(t *testing.T) {
	a, err := EncodeRecord(NewRecord("gemm", 32, testResult()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRecord(NewRecord("gemm", 32, testResult()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal records encode to different bytes")
	}
}
