package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// FuzzRecordDecode hardens the record codec against arbitrary disk
// contents — the store reads files any process (or bit rot) may have
// written. Two properties:
//
//  1. DecodeRecord never panics and never over-allocates on garbage
//     (the bounded declared length is checked before the payload is
//     touched);
//  2. anything that decodes re-encodes to a blob that decodes to the
//     same record — the codec round-trips through its own output.
//
// Seeds cover a valid record, systematic truncations of it, a checksum
// flip, and a max-length header; go test -fuzz grows the corpus from
// there (committed under testdata/fuzz/FuzzRecordDecode).
func FuzzRecordDecode(f *testing.F) {
	valid, err := EncodeRecord(NewRecord("gemm", 32, testResult()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{0, 1, len("STTEVAL1"), len("STTEVAL1") + 8, len("STTEVAL1") + 8 + sha256.Size, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	huge := append([]byte{}, valid[:len("STTEVAL1")]...)
	huge = binary.LittleEndian.AppendUint64(huge, maxPayload+1)
	f.Add(huge)
	f.Add([]byte("STTEVAL1"))
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // rejected garbage: the only requirement is no panic
		}
		out, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		rec2, err := DecodeRecord(out)
		if err != nil {
			t.Fatalf("re-encoded record fails to decode: %v", err)
		}
		if rec2.Schema != rec.Schema || rec2.Bench != rec.Bench || rec2.Size != rec.Size {
			t.Fatalf("round trip changed the header: %+v vs %+v", rec2, rec)
		}
		if *rec2.Result.CPU != *rec.Result.CPU {
			t.Fatal("round trip changed the CPU counters")
		}
		if rec2.Result.Config != rec.Result.Config {
			t.Fatal("round trip changed the stored config")
		}
	})
}
