package replay_test

import (
	"bytes"
	"reflect"
	"testing"

	"sttdl1/internal/compile"
	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/sim"
)

// FuzzTraceDecode feeds arbitrary bytes to the sttrace1 decoder. The
// honest-encoder round trip is pinned by TestTraceEncodeDecodeRoundTrip;
// this target covers the hostile half of the contract:
//
//   - Decode must reject malformed input with an error, never a panic,
//     and never an allocation proportional to a claimed-but-absent
//     length (a three-byte body may claim 2^32 records);
//   - any input Decode accepts must re-encode and decode again to the
//     identical streams (varints are not canonical — a non-minimal
//     encoding may legally decode — so the fixpoint is stream equality
//     after one re-encode, not byte equality of the input).
//
// Committed corpus seeds (testdata/fuzz/FuzzTraceDecode) are encodings
// of real captured traces; the in-code seeds add truncated, corrupted
// and length-lying variants of one.
func FuzzTraceDecode(f *testing.F) {
	b, ok := polybench.ByName("atax")
	if !ok {
		f.Fatal("unknown benchmark atax")
	}
	ck, err := compile.Compile(b.Build(6), sim.CompileOptions(sim.ProposalVWB()))
	if err != nil {
		f.Fatal(err)
	}
	tr, err := sim.CaptureTrace(ck)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := replay.Encode(&buf, tr); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(append([]byte{}, raw...))
	f.Add(append([]byte{}, raw[:len(raw)/2]...)) // truncated mid-stream
	mut := append([]byte{}, raw...)
	mut[len(mut)/2] ^= 0xff // corrupted delta
	f.Add(mut)
	f.Add([]byte("sttrace1"))                                   // header only
	f.Add([]byte("sttrace0"))                                   // wrong version
	f.Add([]byte("sttrace1\xff\xff\xff\xff\xff\xff\xff\x0f"))   // huge claimed length, empty body
	f.Add([]byte("sttrace1\x80\x80\x80\x80\x80\x80\x80\x80\x80\x02")) // > maxLen
	f.Add([]byte("sttrace1\x02\x00\x00\x00"))                   // plausible length, short body

	f.Fuzz(func(t *testing.T, data []byte) {
		tr1, err := replay.Decode(bytes.NewReader(data), ck.Prog)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var out bytes.Buffer
		if err := replay.Encode(&out, tr1); err != nil {
			t.Fatalf("Encode of accepted trace failed: %v", err)
		}
		tr2, err := replay.Decode(bytes.NewReader(out.Bytes()), ck.Prog)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr1.PCs, tr2.PCs) {
			t.Fatal("PC stream not a re-encode fixpoint")
		}
		if !reflect.DeepEqual(tr1.Addrs, tr2.Addrs) {
			t.Fatal("address stream not a re-encode fixpoint")
		}
		for i := range tr1.PCs {
			if tr1.TakenAt(i) != tr2.TakenAt(i) {
				t.Fatalf("taken bit %d not a re-encode fixpoint", i)
			}
		}
	})
}
