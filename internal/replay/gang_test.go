// Gang-replay equivalence suite (DESIGN.md §7.9): walking one trace for
// a batch of configurations is a pure performance mode, so every
// member's result must be byte-identical to its own serial replay — at
// any gang width, under any batch composition, in any member order.
package replay_test

import (
	"context"
	"reflect"
	"testing"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/sim"
)

// gangConfigs builds a batch of gang members sharing compile options
// (the plain arm of the Fig. 3 matrix, cycled to the requested width).
// Repeats are deliberate: a sound gang must give duplicated members
// identical results.
func gangConfigs(width int) []sim.Config {
	presets := []func() sim.Config{sim.BaselineSRAM, sim.DropInSTT, sim.ProposalVWB}
	out := make([]sim.Config, width)
	for i := range out {
		out[i] = presets[i%len(presets)]()
	}
	return out
}

// TestGangReplayMatchesSerial replays the same members serially and
// ganged at widths 1, 2 and 8 and demands bit-identical results per
// member. Because every gang width is compared against the same serial
// reference, this also pins composition independence: a member's result
// cannot depend on who else is in its batch.
func TestGangReplayMatchesSerial(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	traces := replay.NewCache()
	ctx := context.Background()
	cfgs := gangConfigs(8)
	serial := make([]*sim.RunResult, len(cfgs))
	for i, cfg := range cfgs {
		res, err := replay.Run(ctx, traces, b, cfg)
		if err != nil {
			t.Fatalf("serial replay %s: %v", cfg.Name, err)
		}
		serial[i] = res
	}
	for _, width := range []int{1, 2, 8} {
		for lo := 0; lo < len(cfgs); lo += width {
			hi := min(lo+width, len(cfgs))
			batch, err := replay.RunGang(ctx, traces, b, cfgs[lo:hi])
			if err != nil {
				t.Fatalf("gang width %d [%d:%d]: %v", width, lo, hi, err)
			}
			for i, res := range batch {
				mustEqualResults(t, b.Name+" gang width "+cfgs[lo+i].Name, serial[lo+i], res)
			}
		}
	}
}

// TestGangReplayOrderIndependent permutes the batch and checks the
// results follow the permutation exactly: member order inside a gang is
// timing-irrelevant.
func TestGangReplayOrderIndependent(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	traces := replay.NewCache()
	ctx := context.Background()
	cfgs := gangConfigs(6)
	perm := []int{4, 2, 0, 5, 1, 3}
	permuted := make([]sim.Config, len(cfgs))
	for i, p := range perm {
		permuted[i] = cfgs[p]
	}
	straight, err := replay.RunGang(ctx, traces, b, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := replay.RunGang(ctx, traces, b, permuted)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		mustEqualResults(t, "permuted member "+cfgs[p].Name, straight[p], shuffled[i])
	}
}

// TestGangWidthsEvaluationIdentity runs the smoke design space through
// the full suite engine at gang widths 1 (off), 2 and 8 and demands
// identical evaluations — the end-to-end form of the width-independence
// contract, through batching, the result store keys and the scoring
// pipeline.
func TestGangWidthsEvaluationIdentity(t *testing.T) {
	sp, ok := dse.ByName("smoke")
	if !ok {
		t.Fatal("smoke space not registered")
	}
	benches := smokeBenches(t)
	evalAt := func(width int) *dse.Evaluation {
		s := experiments.NewSuiteJobs(benches, 2)
		s.SetReplay(true)
		s.SetGang(width)
		ev, err := dse.Evaluate(s, benches, sp)
		if err != nil {
			t.Fatalf("evaluate smoke at gang width %d: %v", width, err)
		}
		return ev
	}
	ref := evalAt(1)
	for _, width := range []int{2, 8} {
		got := evalAt(width)
		if !reflect.DeepEqual(ref.Benches, got.Benches) || !reflect.DeepEqual(ref.Points, got.Points) {
			t.Errorf("smoke evaluation diverged between gang widths 1 and %d:\nwidth 1 %+v\nwidth %d %+v",
				width, ref.Points, width, got.Points)
		}
	}
}
