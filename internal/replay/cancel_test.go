// Cancellation plumbing (DESIGN.md §7.8): a canceled context must stop
// an in-flight replay promptly — the sweep service aborts superseded
// jobs through exactly this path — while a live cancellable context
// must not change a single counter.
package replay_test

import (
	"context"
	"errors"
	"testing"

	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/sim"
)

// TestReplayInterruptAbandonsWarmup pins that Interrupt probes fire in
// the warm-up pass too (unlike Abort, which is deliberately stripped
// from it): the probe's error surfaces before the measured pass ever
// starts, so cancellation latency is bounded by the probe interval,
// not by half the replay.
func TestReplayInterruptAbandonsWarmup(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("no atax benchmark")
	}
	cfg := sim.ProposalVWB()
	c := replay.NewCache()
	ck, tr, err := c.Trace(context.Background(), b, sim.CompileOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("interrupted for the test")
	calls := 0
	_, _, err = sys.ReplayCompiledCtl(ck, tr, &sim.ReplayCtl{
		InterruptEvery: 1000,
		Interrupt: func() error {
			calls++
			if calls >= 2 {
				return wantErr
			}
			return nil
		},
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("interrupted replay returned %v, want %v", err, wantErr)
	}
	// Two probes at every-1000-records granularity retire at most 2000
	// records — far inside the warm-up pass of any real kernel.
	if calls != 2 {
		t.Fatalf("interrupt probed %d time(s), want exactly 2", calls)
	}
}

// TestReplayCanceledContext pins the public path: replay.Run under an
// already-canceled context returns the cancellation, never a result.
func TestReplayCanceledContext(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("no atax benchmark")
	}
	cfg := sim.ProposalVWB()
	c := replay.NewCache()
	// Warm the capture so cancellation must be seen by the replay side.
	if _, _, err := c.Trace(context.Background(), b, sim.CompileOptions(cfg)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r, err := replay.Run(ctx, c, b, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled replay returned (%v, %v), want context.Canceled", r, err)
	}
}

// TestReplayLiveCancellableContextUnchanged pins that merely being
// cancellable (the sweep-service worker's normal state) changes
// nothing: the probe-carrying replay is byte-identical to the plain
// one.
func TestReplayLiveCancellableContextUnchanged(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("no atax benchmark")
	}
	cfg := sim.ProposalVWB()
	c := replay.NewCache()
	plain, err := replay.Run(context.Background(), c, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probed, err := replay.Run(ctx, c, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "cancellable-vs-plain", plain, probed)
}
