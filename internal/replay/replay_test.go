// Replay/live equivalence regression suite (DESIGN.md §7.4): trace
// replay is a pure performance mode, so every number a simulation
// produces — cycles, each stall counter, every per-level cache
// statistic — must be identical to live execution, not merely close.
// These tests pin that contract over the full Fig. 3 configuration
// matrix, the smoke design space, worker-count determinism, and the
// serialized trace format.
package replay_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"sttdl1/internal/compile"
	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/sim"
)

// matrixConfigs is the full Fig. 3 configuration matrix: the SRAM
// baseline, the drop-in STT-MRAM cache, and the VWB proposal — each
// with the untransformed and the fully transformed code.
func matrixConfigs() []sim.Config {
	var out []sim.Config
	for _, mk := range []func() sim.Config{sim.BaselineSRAM, sim.DropInSTT, sim.ProposalVWB} {
		plain := mk()
		out = append(out, plain)
		opt := mk()
		opt.Compile = compile.AllOptimizations()
		out = append(out, opt)
	}
	return out
}

// matrixBenches returns the benchmark set for the matrix test: the whole
// suite, trimmed under -short.
func matrixBenches(t *testing.T) []polybench.Bench {
	all := polybench.All()
	if testing.Short() {
		return all[:4]
	}
	return all
}

// mustEqualResults fails the test unless the two runs agree on every
// number: the complete CPU result (cycles, instruction-class counters,
// all four stall counters) and each memory level's statistics. The final
// architectural state is excluded — replay deliberately reuses the
// capture's state object.
func mustEqualResults(t *testing.T, label string, live, rep *sim.RunResult) {
	t.Helper()
	lc, rc := *live.CPU, *rep.CPU
	lc.State, rc.State = nil, nil
	if lc != rc {
		t.Errorf("%s: CPU result diverged:\nlive   %+v\nreplay %+v", label, lc, rc)
	}
	if live.FEStats != rep.FEStats {
		t.Errorf("%s: front-end stats diverged:\nlive   %+v\nreplay %+v", label, live.FEStats, rep.FEStats)
	}
	if live.DL1Stats != rep.DL1Stats {
		t.Errorf("%s: DL1 stats diverged:\nlive   %+v\nreplay %+v", label, live.DL1Stats, rep.DL1Stats)
	}
	if live.L2Stats != rep.L2Stats {
		t.Errorf("%s: L2 stats diverged:\nlive   %+v\nreplay %+v", label, live.L2Stats, rep.L2Stats)
	}
	if live.IL1Stats != rep.IL1Stats {
		t.Errorf("%s: IL1 stats diverged:\nlive   %+v\nreplay %+v", label, live.IL1Stats, rep.IL1Stats)
	}
	if live.DL1BankConflictCycles != rep.DL1BankConflictCycles {
		t.Errorf("%s: DL1 bank conflict cycles diverged: live %d, replay %d",
			label, live.DL1BankConflictCycles, rep.DL1BankConflictCycles)
	}
}

// TestReplayMatchesLiveFig3Matrix replays every benchmark under the full
// Fig. 3 configuration matrix and demands exact equality with live
// execution on every counter.
func TestReplayMatchesLiveFig3Matrix(t *testing.T) {
	traces := replay.NewCache()
	ctx := context.Background()
	for _, cfg := range matrixConfigs() {
		for _, b := range matrixBenches(t) {
			live, err := sim.Run(b.Kernel(), cfg)
			if err != nil {
				t.Fatalf("live %s on %s: %v", b.Name, cfg.Name, err)
			}
			rep, err := replay.Run(ctx, traces, b, cfg)
			if err != nil {
				t.Fatalf("replay %s on %s: %v", b.Name, cfg.Name, err)
			}
			mustEqualResults(t, b.Name+" on "+cfg.Name, live, rep)
		}
	}
}

// smokeBenches is the design-space slice used by the smoke-space tests
// (the same slice scripts/check.sh exercises).
func smokeBenches(t *testing.T) []polybench.Bench {
	var out []polybench.Bench
	for _, name := range []string{"atax", "gemver"} {
		b, ok := polybench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		out = append(out, b)
	}
	return out
}

// smokeEval evaluates the smoke space with the given execution mode and
// worker count.
func smokeEval(t *testing.T, replayMode bool, jobs int) *dse.Evaluation {
	t.Helper()
	sp, ok := dse.ByName("smoke")
	if !ok {
		t.Fatal("smoke space not registered")
	}
	benches := smokeBenches(t)
	s := experiments.NewSuiteJobs(benches, jobs)
	s.SetReplay(replayMode)
	ev, err := dse.Evaluate(s, benches, sp)
	if err != nil {
		t.Fatalf("evaluate smoke (replay=%t, jobs=%d): %v", replayMode, jobs, err)
	}
	return ev
}

// TestSmokeSpaceReplayMatchesLive runs the smoke design space in both
// execution modes and demands identical evaluations: every point's
// objectives, ranks and ordering.
func TestSmokeSpaceReplayMatchesLive(t *testing.T) {
	live := smokeEval(t, false, 1)
	rep := smokeEval(t, true, 1)
	// The Space itself holds axis-apply closures (func values never
	// compare equal); the evaluation's substance is Benches + Points.
	if !reflect.DeepEqual(live.Benches, rep.Benches) || !reflect.DeepEqual(live.Points, rep.Points) {
		t.Errorf("smoke evaluation diverged between live and replay:\nlive   %+v\nreplay %+v", live.Points, rep.Points)
	}
}

// TestReplayDeterministicAcrossWorkers pins the engine's determinism
// contract in replay mode: the smoke evaluation is identical at any
// worker count.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	serial := smokeEval(t, true, 1)
	parallel := smokeEval(t, true, 8)
	if !reflect.DeepEqual(serial.Benches, parallel.Benches) || !reflect.DeepEqual(serial.Points, parallel.Points) {
		t.Errorf("replay evaluation differs between -j 1 and -j 8:\nserial   %+v\nparallel %+v", serial.Points, parallel.Points)
	}
}

// TestTraceEncodeDecodeRoundTrip serializes a captured trace, decodes it
// back, and verifies both that the streams survive exactly and that the
// decoded trace replays to the same result as the original.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	cfg := sim.ProposalVWB()
	ck, err := compile.Compile(b.Kernel(), sim.CompileOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.CaptureTrace(ck)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := replay.Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := replay.Decode(&buf, ck.Prog)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tr.PCs, decoded.PCs) {
		t.Error("PC stream did not survive the round trip")
	}
	if !reflect.DeepEqual(tr.Addrs, decoded.Addrs) {
		t.Error("address stream did not survive the round trip")
	}
	for i := range tr.PCs {
		if tr.TakenAt(i) != decoded.TakenAt(i) {
			t.Fatalf("taken bit %d did not survive the round trip", i)
		}
	}

	// The decoded trace must drive the timing model to the same result.
	for _, mkCfg := range []func() sim.Config{sim.BaselineSRAM, sim.ProposalVWB} {
		cfg := mkCfg()
		sysA, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := sysA.ReplayCompiled(ck, tr)
		if err != nil {
			t.Fatal(err)
		}
		sysB, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sysB.ReplayCompiled(ck, decoded)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, "round-trip on "+cfg.Name, orig, rt)
	}
}
