// Kernel-registry equivalence suite (DESIGN.md §7.9): the specialized
// replay kernels are pure performance variants, so every shape must
// produce results bit-for-bit identical to the generic reference loop,
// and the shape classification itself must be a total deterministic
// function of the configuration. These properties extend the §7.4
// live≡replay contract down one level, to replay≡replay across kernels.
package replay_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"sttdl1/internal/compile"
	"sttdl1/internal/cpu"
	"sttdl1/internal/dse"
	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/sim"
)

// megaConfig derives a deterministic random configuration of the mega
// design space from a seed (the same construction as dse's canonical-key
// quick tests); ok is false when the space's constraints prune the
// genome.
func megaConfig(t *testing.T, sp dse.Space, seed uint64) (sim.Config, bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	genome := make([]int, len(sp.Axes))
	for i, a := range sp.Axes {
		genome[i] = rng.Intn(len(a.Values))
	}
	pt, ok := sp.At(genome)
	return pt.Config, ok
}

// TestKernelShapeTotalQuick property-tests the registry's classification
// contract: a random mega-space configuration maps to exactly one kernel
// shape — the classification never fails, is deterministic, and depends
// only on the configuration (two systems built from the same config
// classify identically).
func TestKernelShapeTotalQuick(t *testing.T) {
	sp, ok := dse.ByName("mega")
	if !ok {
		t.Fatal("mega space not registered")
	}
	prop := func(seed uint64) bool {
		cfg, ok := megaConfig(t, sp, seed)
		if !ok {
			return true // pruned genome: no design point to classify
		}
		sysA, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sim.New(%s): %v", cfg.Name, err)
		}
		sysB, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sim.New(%s): %v", cfg.Name, err)
		}
		sA := cpu.ShapeOf(sysA.CPU.IMem, sysA.CPU.DMem)
		sB := cpu.ShapeOf(sysB.CPU.IMem, sysB.CPU.DMem)
		return sA == sB && // config-determined, not instance-determined
			sA == cpu.ShapeOf(sysA.CPU.IMem, sysA.CPU.DMem) && // deterministic
			sA.String() != "shape(?)" // total: a registered shape
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// kernelCases is the configuration set the kernel equivalence tests run:
// the full Fig. 3 matrix plus deterministic random mega-space points, so
// every registry shape is exercised (the matrix alone covers direct and
// lean; the mega points add the exotic port stacks).
func kernelCases(t *testing.T) []sim.Config {
	t.Helper()
	out := matrixConfigs()
	sp, ok := dse.ByName("mega")
	if !ok {
		t.Fatal("mega space not registered")
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if cfg, ok := megaConfig(t, sp, seed); ok {
			out = append(out, cfg)
		}
	}
	return out
}

// TestKernelShapesMatchGeneric forces every applicable kernel shape over
// each case configuration and demands a bit-for-bit identical cpu.Result
// against the generic reference loop on the same trace. This is the
// cycle-exactness contract of the registry itself, independent of the
// sim-level assembly above it.
func TestKernelShapesMatchGeneric(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	for _, cfg := range kernelCases(t) {
		ck, err := compile.Compile(b.Kernel(), sim.CompileOptions(cfg))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.CaptureTrace(ck)
		if err != nil {
			t.Fatal(err)
		}
		runShape := func(shape cpu.KernelShape) cpu.Result {
			sys, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := sys.CPU.ReplayTraceShaped(ck.Prog, tr, nil, shape)
			if err != nil {
				t.Fatalf("shape %v on %s: %v", shape, cfg.Name, err)
			}
			out := *res
			out.State = nil
			return out
		}
		probe, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		max := cpu.ShapeOf(probe.CPU.IMem, probe.CPU.DMem)
		generic := runShape(cpu.ShapeGeneric)
		for shape := cpu.ShapeGeneric + 1; shape <= max; shape++ {
			if got := runShape(shape); got != generic {
				t.Errorf("%s: kernel shape %v diverged from generic:\ngeneric %+v\n%v %+v",
					cfg.Name, shape, generic, shape, got)
			}
		}
	}
}

// TestGenericKernelEnvMatchesNatural pins the escape hatch scripts/
// check.sh diffs through: a full simulation run (warm-up pass, counter
// assembly and all) under STTDL1_REPLAY_KERNEL=generic must equal the
// naturally specialized run on every counter.
func TestGenericKernelEnvMatchesNatural(t *testing.T) {
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	cases := kernelCases(t)
	traces := replay.NewCache()
	ctx := context.Background()
	natural := make([]*sim.RunResult, len(cases))
	for i, cfg := range cases {
		res, err := replay.Run(ctx, traces, b, cfg)
		if err != nil {
			t.Fatalf("natural replay %s: %v", cfg.Name, err)
		}
		natural[i] = res
	}
	t.Setenv("STTDL1_REPLAY_KERNEL", "generic")
	for i, cfg := range cases {
		res, err := replay.Run(ctx, traces, b, cfg)
		if err != nil {
			t.Fatalf("generic replay %s: %v", cfg.Name, err)
		}
		mustEqualResults(t, "generic kernel on "+cfg.Name, natural[i], res)
	}
}
