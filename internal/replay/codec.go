// Trace serialization: a compact varint stream so captured executions
// can be stored and replayed across processes. PCs and addresses are
// delta-encoded (zigzag) — the retired stream is overwhelmingly
// sequential PCs and strided addresses, so deltas keep most records to
// two or three bytes.
package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sttdl1/internal/cpu"
	"sttdl1/internal/isa"
)

// traceMagic guards the stream format; bump the trailing digit on any
// incompatible change.
const traceMagic = "sttrace1"

// Encode writes tr to w in the versioned varint format Decode reads.
func Encode(w io.Writer, tr *cpu.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(tr.Len())); err != nil {
		return err
	}
	var prevPC int32
	for _, pc := range tr.PCs {
		if err := putVarint(int64(pc - prevPC)); err != nil {
			return err
		}
		prevPC = pc
	}
	var prevAddr uint32
	for _, a := range tr.Addrs {
		if err := putVarint(int64(int32(a - prevAddr))); err != nil {
			return err
		}
		prevAddr = a
	}
	for _, word := range tr.Taken {
		if err := putUvarint(word); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a trace in Encode's format and validates it against prog
// (every PC must fall inside the program). The decoded trace carries no
// final architectural state; it is replay-only.
func Decode(r io.Reader, prog *isa.Program) (*cpu.Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("replay: reading trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("replay: bad trace magic %q (want %q)", magic, traceMagic)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("replay: reading trace length: %w", err)
	}
	const maxLen = 1 << 32
	if n64 > maxLen {
		return nil, fmt.Errorf("replay: implausible trace length %d", n64)
	}
	n := int(n64)
	// Grow the streams incrementally rather than trusting the claimed
	// length up front: a hostile header can claim 2^32 records (a
	// multi-GB up-front allocation) while the body holds three bytes.
	// Each record costs at least one byte per stream, so allocation
	// stays proportional to the bytes actually read.
	const initCap = 1 << 16
	pcs := make([]int32, 0, min(n, initCap))
	var prevPC int32
	for i := 0; i < n; i++ {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("replay: reading pc %d: %w", i, err)
		}
		prevPC += int32(d)
		pcs = append(pcs, prevPC)
	}
	addrs := make([]uint32, 0, min(n, initCap))
	var prevAddr uint32
	for i := 0; i < n; i++ {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("replay: reading addr %d: %w", i, err)
		}
		prevAddr += uint32(int32(d))
		addrs = append(addrs, prevAddr)
	}
	words := (n + 63) / 64
	taken := make([]uint64, 0, min(words, initCap))
	for i := 0; i < words; i++ {
		w, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("replay: reading taken word %d: %w", i, err)
		}
		taken = append(taken, w)
	}
	return cpu.NewTrace(prog, pcs, addrs, taken)
}
