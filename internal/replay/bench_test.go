// Micro-benchmarks for the replay timing kernels (DESIGN.md §7.9):
// one configuration, one captured trace, timing passes only — the
// tightest possible loop over the kernel registry, for comparing kernel
// variants without the sweep engine's scheduling and scoring around
// them. scripts/bench.sh records the sweep-level numbers; these are for
// profiling sessions.
package replay_test

import (
	"testing"

	"sttdl1/internal/compile"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// benchReplay measures ReplayCompiled (warm-up pass + measured pass) of
// one benchmark under one configuration.
func benchReplay(b *testing.B, bench string, mk func() sim.Config) {
	pb, ok := polybench.ByName(bench)
	if !ok {
		b.Fatalf("unknown benchmark %s", bench)
	}
	cfg := mk()
	ck, err := compile.Compile(pb.Kernel(), sim.CompileOptions(cfg))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.CaptureTrace(ck)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(tr.PCs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ReplayCompiled(ck, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayKernel exercises the two dominant kernel shapes of the
// proposal sweep: lean (VWB proposal stack) and direct (bare DL1). The
// bytes/s figure is trace records replayed per second (×2 passes for
// the warm-up).
func BenchmarkReplayKernel(b *testing.B) {
	b.Run("lean", func(b *testing.B) { benchReplay(b, "gemver", sim.ProposalVWB) })
	b.Run("direct", func(b *testing.B) { benchReplay(b, "gemver", sim.BaselineSRAM) })
}
