// Package replay runs simulations trace-first: each kernel is compiled
// and functionally executed exactly once per (benchmark, problem size,
// compile options), and every design point then re-runs only the timing
// model over the captured retired-instruction stream (cpu.Trace,
// DESIGN.md §7.4). Compile results and traces are memoized through the
// same singleflight engine as simulation results (internal/runner), so
// at any -j the workers sweeping a design space share one capture per
// kernel variant.
package replay

import (
	"context"
	"crypto/sha256"
	"fmt"

	"sttdl1/internal/compile"
	"sttdl1/internal/cpu"
	"sttdl1/internal/polybench"
	"sttdl1/internal/runner"
	"sttdl1/internal/sim"
)

// traced pairs a compiled kernel with its captured execution trace and
// the SHA-256 of the trace's encoded (sttrace1) bytes — the kernel
// variant's functional-content fingerprint the persistent evaluation
// store keys on (internal/store).
type traced struct {
	ck     *compile.Compiled
	tr     *cpu.Trace
	digest [sha256.Size]byte
}

// Cache memoizes compiled kernels and their execution traces. Keys cover
// everything the functional execution depends on — benchmark, problem
// size, compile options — and deliberately nothing the timing model
// depends on: the whole point is that one trace serves every cache and
// core configuration. Safe for concurrent use.
type Cache struct {
	pool *runner.Pool[string, traced]
}

// NewCache builds an empty trace cache. Captures fan out over up to
// GOMAXPROCS goroutines; callers nested inside another runner.Pool are
// fine because capture tasks never wait on the caller's pool.
func NewCache() *Cache {
	return &Cache{pool: runner.New[string, traced](0)}
}

// key identifies one functional execution. The problem size must be in
// the key (not just the benchmark name) because tests rebind
// Bench.Default; the compile options must be in the key because every
// transformation changes the instruction stream.
func key(b polybench.Bench, opts compile.Options) string {
	return fmt.Sprintf("%s@%d|v%t_p%t_b%t_a%t_i%t_s%d_l%d", b.Name, b.Default,
		opts.Vectorize, opts.Prefetch, opts.Branchless, opts.Align,
		opts.Interchange, opts.PrefetchStreams, opts.LineSize)
}

// Trace returns the compiled kernel and captured trace for b under opts,
// compiling and capturing on first use and memoizing forever. Concurrent
// requests for the same kernel variant share one capture.
func (c *Cache) Trace(ctx context.Context, b polybench.Bench, opts compile.Options) (*compile.Compiled, *cpu.Trace, error) {
	t, err := c.traced(ctx, b, opts)
	if err != nil {
		return nil, nil, err
	}
	return t.ck, t.tr, nil
}

// Digest returns the SHA-256 of the encoded trace bytes for b under
// opts, capturing (memoized, shared with Trace) on first use. The
// digest covers the variant's functional execution byte for byte, so
// any change to the kernel, the compiler passes or the capture
// machinery changes the digest — which is exactly what makes it a sound
// content-address component for the persistent store.
func (c *Cache) Digest(ctx context.Context, b polybench.Bench, opts compile.Options) ([sha256.Size]byte, error) {
	t, err := c.traced(ctx, b, opts)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return t.digest, nil
}

// traced is the shared memoized compile + capture + digest.
func (c *Cache) traced(ctx context.Context, b polybench.Bench, opts compile.Options) (traced, error) {
	t, err := c.pool.DoLabeled(ctx, key(b, opts), "capture "+b.Name,
		func(context.Context) (traced, error) {
			ck, err := compile.Compile(b.Kernel(), opts)
			if err != nil {
				return traced{}, err
			}
			tr, err := sim.CaptureTrace(ck)
			if err != nil {
				return traced{}, err
			}
			h := sha256.New()
			if err := Encode(h, tr); err != nil {
				return traced{}, fmt.Errorf("digest: %w", err)
			}
			t := traced{ck: ck, tr: tr}
			h.Sum(t.digest[:0])
			return t, nil
		})
	if err != nil {
		return traced{}, fmt.Errorf("replay: %s: %w", b.Name, err)
	}
	return t, nil
}

// Run executes bench b under cfg by timing replay: the (memoized)
// compile + capture, then a fresh system replaying the trace. The result
// is byte-identical to sim.Run for the same inputs. A cancellable ctx is
// probed inside the timing loop (warm-up pass included), so a canceled
// caller gets ctx's error back within ~65k replayed records instead of
// after the full simulation — the probe never fires on a live context,
// so results are unchanged.
func Run(ctx context.Context, c *Cache, b polybench.Bench, cfg sim.Config) (*sim.RunResult, error) {
	ck, tr, err := c.Trace(ctx, b, sim.CompileOptions(cfg))
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if ctl := cancelCtl(ctx, nil); ctl != nil {
		r, _, err := sys.ReplayCompiledCtl(ck, tr, ctl)
		return r, err
	}
	return sys.ReplayCompiled(ck, tr)
}

// cancelCtl merges ctx cancellation into a partial-replay control
// block: with a cancellable ctx the replay probes ctx.Err periodically
// and abandons the pass when it turns non-nil. A Background-like ctx
// (Done() == nil) adds no control at all, keeping the common path's
// zero-overhead nil-ctl replay. An Interrupt the caller installed
// itself wins over the ctx probe.
func cancelCtl(ctx context.Context, ctl *sim.ReplayCtl) *sim.ReplayCtl {
	if ctx.Done() == nil || (ctl != nil && ctl.Interrupt != nil) {
		return ctl
	}
	var out sim.ReplayCtl
	if ctl != nil {
		out = *ctl
	}
	out.Interrupt = func() error { return ctx.Err() }
	return &out
}

// RunGang executes bench b under a batch of configurations in one trace
// walk (sim.ReplayGang): the memoized compile + capture once, one fresh
// system per configuration, then gang replay. Results are in cfgs order
// and each is byte-identical to Run of the same (b, cfg). All
// configurations must share CompileOptions — they would not share a
// trace otherwise — and a mismatch is an error, not a silent split.
// Like Run, a cancellable ctx is probed inside the shared walk.
func RunGang(ctx context.Context, c *Cache, b polybench.Bench, cfgs []sim.Config) ([]*sim.RunResult, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	opts := sim.CompileOptions(cfgs[0])
	for i, cfg := range cfgs[1:] {
		if sim.CompileOptions(cfg) != opts {
			return nil, fmt.Errorf("replay: gang member %d of %s has different compile options", i+1, b.Name)
		}
	}
	ck, tr, err := c.Trace(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	systems := make([]*sim.System, len(cfgs))
	for i, cfg := range cfgs {
		sys, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		systems[i] = sys
	}
	var interrupt func() error
	if ctx.Done() != nil {
		interrupt = func() error { return ctx.Err() }
	}
	return sim.ReplayGang(systems, ck, tr, interrupt, 0)
}

// RunCtl is Run with partial-replay control (truncation and early abort,
// DESIGN.md §7.5). The returned bool reports whether the measured pass
// was aborted. Results from a non-nil ctl describe a prefix of the run
// and must never be cached as if they were complete.
func RunCtl(ctx context.Context, c *Cache, b polybench.Bench, cfg sim.Config, ctl *sim.ReplayCtl) (*sim.RunResult, bool, error) {
	ck, tr, err := c.Trace(ctx, b, sim.CompileOptions(cfg))
	if err != nil {
		return nil, false, err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, false, err
	}
	return sys.ReplayCompiledCtl(ck, tr, cancelCtl(ctx, ctl))
}
