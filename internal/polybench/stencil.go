package polybench

import "sttdl1/internal/ir"

// Stencil and medley kernels.

func init() {
	register(Bench{Name: "jacobi2d", Default: 62, Desc: "2-D Jacobi 5-point stencil, 10 timesteps", Build: buildJacobi2D})
	register(Bench{Name: "floyd", Default: 30, Desc: "Floyd-Warshall all-pairs shortest paths", Build: buildFloyd})
}

// jacobi2dSteps is the fixed timestep count (PolyBench TSTEPS, mini
// scale).
const jacobi2dSteps = 10

func buildJacobi2D(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: func(idx []int) float32 {
		i, j := idx[0], idx[1]
		return float32(i) * (float32(j) + 2) / float32(n)
	}, Out: true}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: func(idx []int) float32 {
		i, j := idx[0], idx[1]
		return float32(i) * (float32(j) + 3) / float32(n)
	}}
	ij := []ir.Aff{ir.V("i"), ir.V("j")}
	stencil := func(src *ir.Array) ir.Expr {
		sum := ir.Bin{Op: ir.Add,
			L: ir.Bin{Op: ir.Add, L: ir.Load{Arr: src, Idx: ij},
				R: ir.Load{Arr: src, Idx: []ir.Aff{ir.V("i"), ir.VC("j", 1, -1)}}},
			R: ir.Bin{Op: ir.Add,
				L: ir.Bin{Op: ir.Add,
					L: ir.Load{Arr: src, Idx: []ir.Aff{ir.V("i"), ir.VC("j", 1, 1)}},
					R: ir.Load{Arr: src, Idx: []ir.Aff{ir.VC("i", 1, 1), ir.V("j")}}},
				R: ir.Load{Arr: src, Idx: []ir.Aff{ir.VC("i", 1, -1), ir.V("j")}}}}
		return ir.Bin{Op: ir.Mul, L: ir.ConstF{V: 0.2}, R: sum}
	}
	sweep := func(dst, src *ir.Array) ir.Stmt {
		return ir.Loop{Var: "i", Lo: ir.BC(1), Hi: ir.BC(n - 1), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: ir.BC(1), Hi: ir.BC(n - 1), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: dst, Idx: ij, RHS: stencil(src)},
			}},
		}}
	}
	return &ir.Kernel{
		Name:   "jacobi2d",
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{
			ir.Loop{Var: "t", Lo: ir.BC(0), Hi: ir.BC(jacobi2dSteps), Body: []ir.Stmt{
				sweep(B, A),
				sweep(A, B),
			}},
		},
	}
}

func buildFloyd(n int) *ir.Kernel {
	path := &ir.Array{Name: "path", Dims: []int{n, n}, Init: func(idx []int) float32 {
		i, j := idx[0], idx[1]
		if i == j {
			return 0
		}
		// Sparse direct edges, large-but-finite elsewhere (classic
		// PolyBench-style deterministic graph).
		if (i*j)%7 == 0 || (i+j)%5 == 1 {
			return float32((i+j)%11 + 1)
		}
		return 999
	}, Out: true}
	pij := []ir.Aff{ir.V("i"), ir.V("j")}
	relax := ir.Bin{Op: ir.Add,
		L: ir.Load{Arr: path, Idx: []ir.Aff{ir.V("i"), ir.V("k")}},
		R: ir.Load{Arr: path, Idx: []ir.Aff{ir.V("k"), ir.V("j")}}}
	// The innermost loop carries a data-dependent conditional — the
	// paper's branch-removal target. It only vectorizes after the
	// Branchless pass turns the If into a select, and needs IVDep
	// because lane writes to row i can alias the row-k reads when i==k
	// (harmless: the relaxation through k never changes row k itself).
	return &ir.Kernel{
		Name:   "floyd",
		Arrays: []*ir.Array{path},
		Body: []ir.Stmt{
			ir.Loop{Var: "k", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
					ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, IVDep: true, Body: []ir.Stmt{
						ir.If{
							Cond: ir.Cond{Op: ir.LT, L: relax, R: ir.Load{Arr: path, Idx: pij}},
							Then: []ir.Stmt{ir.Assign{Arr: path, Idx: pij, RHS: relax}},
						},
					}},
				}},
			}},
		},
	}
}
