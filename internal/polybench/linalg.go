package polybench

import "sttdl1/internal/ir"

// Matrix-product kernels. Loop nests use the i,k,j order so the innermost
// loop is stride-1 over the output row — the form whose innermost loop
// the paper's vectorization targets.

func init() {
	register(Bench{Name: "gemm", Default: 36, Desc: "C = alpha*A*B + beta*C", Build: buildGEMM})
	register(Bench{Name: "2mm", Default: 30, Desc: "D = alpha*A*B*C + beta*D", Build: build2MM})
	register(Bench{Name: "3mm", Default: 26, Desc: "G = (A*B)*(C*D)", Build: build3MM})
	register(Bench{Name: "syrk", Default: 40, Desc: "C = alpha*A*A^T + beta*C (lower)", Build: buildSYRK})
	register(Bench{Name: "trmm", Default: 40, Desc: "B = alpha*A^T*B (A unit lower triangular)", Build: buildTRMM})
}

// matmulAccum emits: for i { for k { for j(vec): D[i][j] += S*A[i][k]*B[k][j] } }
// with an optional alpha scale factored into the splat-hoisted invariant.
func matmulAccum(d, a, b *ir.Array, scale ir.Expr, ni, nk, nj int) ir.Stmt {
	prod := ir.Bin{Op: ir.Mul, L: ir.Load{Arr: a, Idx: []ir.Aff{ir.V("i"), ir.V("k")}}, R: ir.Load{Arr: b, Idx: []ir.Aff{ir.V("k"), ir.V("j")}}}
	var rhs ir.Expr = prod
	if scale != nil {
		rhs = ir.Bin{Op: ir.Mul, L: scale, R: prod}
	}
	return ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(ni), Body: []ir.Stmt{
		ir.Loop{Var: "k", Lo: ir.BC(0), Hi: ir.BC(nk), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(nj), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: d, Idx: []ir.Aff{ir.V("i"), ir.V("j")},
					RHS: ir.Bin{Op: ir.Add, L: ir.Load{Arr: d, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: rhs}},
			}},
		}},
	}}
}

// scale2D emits: for i { for j(vec): D[i][j] = D[i][j]*f }.
func scale2D(d *ir.Array, f ir.Expr, ni, nj int) ir.Stmt {
	return ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(ni), Body: []ir.Stmt{
		ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(nj), Vectorizable: true, Body: []ir.Stmt{
			ir.Assign{Arr: d, Idx: []ir.Aff{ir.V("i"), ir.V("j")},
				RHS: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: d, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: f}},
		}},
	}}
}

// zero2D emits: for i { for j(vec): D[i][j] = 0 }.
func zero2D(d *ir.Array, ni, nj int) ir.Stmt {
	return ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(ni), Body: []ir.Stmt{
		ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(nj), Vectorizable: true, Body: []ir.Stmt{
			ir.Assign{Arr: d, Idx: []ir.Aff{ir.V("i"), ir.V("j")}, RHS: ir.ConstF{V: 0}},
		}},
	}}
}

func buildGEMM(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: init2D(n, n, 1)}
	C := &ir.Array{Name: "C", Dims: []int{n, n}, Init: init2D(n, n, 2), Out: true}
	return &ir.Kernel{
		Name:   "gemm",
		Arrays: []*ir.Array{A, B, C},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}, {Name: "beta", Value: 1.2}},
		Body: []ir.Stmt{
			scale2D(C, ir.ParamRef{Name: "beta"}, n, n),
			matmulAccum(C, A, B, ir.ParamRef{Name: "alpha"}, n, n, n),
		},
	}
}

func build2MM(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: init2D(n, n, 1)}
	C := &ir.Array{Name: "C", Dims: []int{n, n}, Init: init2D(n, n, 2)}
	D := &ir.Array{Name: "D", Dims: []int{n, n}, Init: init2D(n, n, 3), Out: true}
	T := &ir.Array{Name: "tmp", Dims: []int{n, n}}
	return &ir.Kernel{
		Name:   "2mm",
		Arrays: []*ir.Array{A, B, C, D, T},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}, {Name: "beta", Value: 1.2}},
		Body: []ir.Stmt{
			zero2D(T, n, n),
			matmulAccum(T, A, B, ir.ParamRef{Name: "alpha"}, n, n, n),
			scale2D(D, ir.ParamRef{Name: "beta"}, n, n),
			matmulAccum(D, T, C, nil, n, n, n),
		},
	}
}

func build3MM(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: init2D(n, n, 1)}
	C := &ir.Array{Name: "C", Dims: []int{n, n}, Init: init2D(n, n, 2)}
	D := &ir.Array{Name: "D", Dims: []int{n, n}, Init: init2D(n, n, 3)}
	E := &ir.Array{Name: "E", Dims: []int{n, n}}
	F := &ir.Array{Name: "F", Dims: []int{n, n}}
	G := &ir.Array{Name: "G", Dims: []int{n, n}, Out: true}
	return &ir.Kernel{
		Name:   "3mm",
		Arrays: []*ir.Array{A, B, C, D, E, F, G},
		Body: []ir.Stmt{
			zero2D(E, n, n),
			matmulAccum(E, A, B, nil, n, n, n),
			zero2D(F, n, n),
			matmulAccum(F, C, D, nil, n, n, n),
			zero2D(G, n, n),
			matmulAccum(G, E, F, nil, n, n, n),
		},
	}
}

func buildSYRK(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	C := &ir.Array{Name: "C", Dims: []int{n, n}, Init: init2D(n, n, 1), Out: true}
	jIdx := []ir.Aff{ir.V("i"), ir.V("j")}
	// Triangular update: for i { for j<=i { C[i][j] *= beta;
	// for k(vec): C[i][j] += alpha*A[i][k]*A[j][k] } }. The k loop is a
	// vectorizable reduction: both A streams are stride-1 in k.
	inner := ir.Loop{Var: "k", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
		ir.Assign{Arr: C, Idx: jIdx, RHS: ir.Bin{Op: ir.Add,
			L: ir.Load{Arr: C, Idx: jIdx},
			R: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "alpha"},
				R: ir.Bin{Op: ir.Mul,
					L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("i"), ir.V("k")}},
					R: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("j"), ir.V("k")}}}}}},
	}}
	return &ir.Kernel{
		Name:   "syrk",
		Arrays: []*ir.Array{A, C},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}, {Name: "beta", Value: 1.2}},
		Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BV("i", 1), Body: []ir.Stmt{
					ir.Assign{Arr: C, Idx: jIdx, RHS: ir.Bin{Op: ir.Mul,
						L: ir.Load{Arr: C, Idx: jIdx}, R: ir.ParamRef{Name: "beta"}}},
					inner,
				}},
			}},
		},
	}
}

func buildTRMM(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: init2D(n, n, 1), Out: true}
	bij := []ir.Aff{ir.V("i"), ir.V("j")}
	// PolyBench trmm: for i { for j { for k=i+1..n:
	// B[i][j] += A[k][i]*B[k][j]; B[i][j] *= alpha } }.
	// A[k][i] and B[k][j] stride by a whole row in k, so the innermost
	// loop is NOT vectorizable — trmm is the suite's column-walk kernel.
	return &ir.Kernel{
		Name:   "trmm",
		Arrays: []*ir.Array{A, B},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}},
		Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				// InterchangeOK: the (j,k) pair is rectangular; swapping
				// turns the row-k walks into stride-1 j walks.
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), InterchangeOK: true, Body: []ir.Stmt{
					// IVDep: the k>i reads of B never touch the B[i][j]
					// accumulator, so it may live in a register.
					ir.Loop{Var: "k", Lo: ir.BV("i", 1), Hi: ir.BC(n), Vectorizable: true, IVDep: true, Body: []ir.Stmt{
						ir.Assign{Arr: B, Idx: bij, RHS: ir.Bin{Op: ir.Add,
							L: ir.Load{Arr: B, Idx: bij},
							R: ir.Bin{Op: ir.Mul,
								L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("k"), ir.V("i")}},
								R: ir.Load{Arr: B, Idx: []ir.Aff{ir.V("k"), ir.V("j")}}}}},
					}},
					ir.Assign{Arr: B, Idx: bij, RHS: ir.Bin{Op: ir.Mul,
						L: ir.Load{Arr: B, Idx: bij}, R: ir.ParamRef{Name: "alpha"}}},
				}},
			}},
		},
	}
}
