package polybench

import "sttdl1/internal/ir"

// Additional PolyBench kernels broadening the workload mix: a rich BLAS
// composite (gemver), a 3-D tensor contraction (doitgen), an in-place
// Gauss-Seidel stencil whose loop-carried dependences legitimately defeat
// vectorization (seidel2d), and a statistics kernel mixing row-walk and
// column-walk phases (covariance).

func init() {
	register(Bench{Name: "gemver", Default: 120, Desc: "A += u1 v1^T + u2 v2^T; x = beta A^T y + z; w = alpha A x", Build: buildGEMVER})
	register(Bench{Name: "doitgen", Default: 18, Desc: "3-D tensor-matrix contraction", Build: buildDoitgen})
	register(Bench{Name: "seidel2d", Default: 48, Desc: "in-place 2-D Gauss-Seidel, 8 timesteps", Build: buildSeidel2D})
	register(Bench{Name: "covariance", Default: 28, Desc: "covariance matrix of a data set", Build: buildCovariance})
}

func buildGEMVER(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0), Out: true}
	u1 := &ir.Array{Name: "u1", Dims: []int{n}, Init: init1D(n, 1)}
	v1 := &ir.Array{Name: "v1", Dims: []int{n}, Init: init1D(n, 2)}
	u2 := &ir.Array{Name: "u2", Dims: []int{n}, Init: init1D(n, 3)}
	v2 := &ir.Array{Name: "v2", Dims: []int{n}, Init: init1D(n, 4)}
	x := &ir.Array{Name: "x", Dims: []int{n}, Out: true}
	y := &ir.Array{Name: "y", Dims: []int{n}, Init: init1D(n, 5)}
	z := &ir.Array{Name: "z", Dims: []int{n}, Init: init1D(n, 6)}
	w := &ir.Array{Name: "w", Dims: []int{n}, Out: true}
	aij := []ir.Aff{ir.V("i"), ir.V("j")}
	xi := []ir.Aff{ir.V("i")}
	return &ir.Kernel{
		Name:   "gemver",
		Arrays: []*ir.Array{A, u1, v1, u2, v2, x, y, z, w},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}, {Name: "beta", Value: 1.2}},
		Body: []ir.Stmt{
			// A += u1 v1^T + u2 v2^T: rank-two update, vector map over j.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: A, Idx: aij, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: A, Idx: aij},
						R: ir.Bin{Op: ir.Add,
							L: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: u1, Idx: xi}, R: ir.Load{Arr: v1, Idx: []ir.Aff{ir.V("j")}}},
							R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: u2, Idx: xi}, R: ir.Load{Arr: v2, Idx: []ir.Aff{ir.V("j")}}}}}},
				}},
			}},
			// x = beta A^T y + z: the transposed walk stays scalar in the
			// paper's transformation set; InterchangeOK lets the
			// extension pass fix it.
			zero1D(x, n, "j"),
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), InterchangeOK: true, Vectorizable: true, Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: x, Idx: xi, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: x, Idx: xi},
						R: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "beta"},
							R: ir.Bin{Op: ir.Mul,
								L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("j"), ir.V("i")}},
								R: ir.Load{Arr: y, Idx: []ir.Aff{ir.V("j")}}}}}},
				}},
				ir.Assign{Arr: x, Idx: xi, RHS: ir.Bin{Op: ir.Add,
					L: ir.Load{Arr: x, Idx: xi}, R: ir.Load{Arr: z, Idx: xi}}},
			}},
			// w = alpha A x: row-walk vector reduction.
			zero1D(w, n, "j"),
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: w, Idx: xi, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: w, Idx: xi},
						R: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "alpha"},
							R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: aij}, R: ir.Load{Arr: x, Idx: []ir.Aff{ir.V("j")}}}}}},
				}},
			}},
		},
	}
}

func buildDoitgen(n int) *ir.Kernel {
	// A[r][q][s], C4[s][p], sum[p]: sum = A[r][q][:] . C4, copied back.
	A := &ir.Array{Name: "A", Dims: []int{n, n, n}, Init: func(idx []int) float32 {
		return fr(idx[0]*n+idx[1], idx[2]+1, 0, n)
	}, Out: true}
	C4 := &ir.Array{Name: "C4", Dims: []int{n, n}, Init: init2D(n, n, 1)}
	sum := &ir.Array{Name: "sum", Dims: []int{n}}
	pIdx := []ir.Aff{ir.V("p")}
	return &ir.Kernel{
		Name:   "doitgen",
		Arrays: []*ir.Array{A, C4, sum},
		Body: []ir.Stmt{
			ir.Loop{Var: "r", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "q", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
					zero1D(sum, n, "p"),
					// s outer, p inner: both streams stride-1 in p
					// (A[r][q][s] is a hoisted invariant).
					ir.Loop{Var: "s", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
						ir.Loop{Var: "p", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
							ir.Assign{Arr: sum, Idx: pIdx, RHS: ir.Bin{Op: ir.Add,
								L: ir.Load{Arr: sum, Idx: pIdx},
								R: ir.Bin{Op: ir.Mul,
									L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("r"), ir.V("q"), ir.V("s")}},
									R: ir.Load{Arr: C4, Idx: []ir.Aff{ir.V("s"), ir.V("p")}}}}},
						}},
					}},
					ir.Loop{Var: "p", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
						ir.Assign{Arr: A, Idx: []ir.Aff{ir.V("r"), ir.V("q"), ir.V("p")},
							RHS: ir.Load{Arr: sum, Idx: pIdx}},
					}},
				}},
			}},
		},
	}
}

// seidel2dSteps is the timestep count.
const seidel2dSteps = 8

func buildSeidel2D(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: func(idx []int) float32 {
		return float32(idx[0]) * (float32(idx[1]) + 2) / float32(n)
	}, Out: true}
	ninth := ir.ConstF{V: 1.0 / 9.0}
	ld := func(di, dj int) ir.Expr {
		return ir.Load{Arr: A, Idx: []ir.Aff{ir.VC("i", 1, di), ir.VC("j", 1, dj)}}
	}
	sum := ir.Bin{Op: ir.Add,
		L: ir.Bin{Op: ir.Add,
			L: ir.Bin{Op: ir.Add, L: ld(-1, -1), R: ld(-1, 0)},
			R: ir.Bin{Op: ir.Add, L: ld(-1, 1), R: ld(0, -1)}},
		R: ir.Bin{Op: ir.Add,
			L: ir.Bin{Op: ir.Add, L: ld(0, 0), R: ld(0, 1)},
			R: ir.Bin{Op: ir.Add,
				L: ir.Bin{Op: ir.Add, L: ld(1, -1), R: ld(1, 0)},
				R: ld(1, 1)}}}
	// The j loop is marked Vectorizable (the author would love to) but
	// the in-place A[i][j-1] dependence makes the planner reject it —
	// Gauss-Seidel is the suite's legitimately-serial stencil.
	return &ir.Kernel{
		Name:   "seidel2d",
		Arrays: []*ir.Array{A},
		Body: []ir.Stmt{
			ir.Loop{Var: "t", Lo: ir.BC(0), Hi: ir.BC(seidel2dSteps), Body: []ir.Stmt{
				ir.Loop{Var: "i", Lo: ir.BC(1), Hi: ir.BC(n - 1), Body: []ir.Stmt{
					ir.Loop{Var: "j", Lo: ir.BC(1), Hi: ir.BC(n - 1), Vectorizable: true, Body: []ir.Stmt{
						ir.Assign{Arr: A, Idx: []ir.Aff{ir.V("i"), ir.V("j")},
							RHS: ir.Bin{Op: ir.Mul, L: ninth, R: sum}},
					}},
				}},
			}},
		},
	}
}

func buildCovariance(n int) *ir.Kernel {
	data := &ir.Array{Name: "data", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	cov := &ir.Array{Name: "cov", Dims: []int{n, n}, Out: true}
	mean := &ir.Array{Name: "mean", Dims: []int{n}}
	dij := []ir.Aff{ir.V("i"), ir.V("j")}
	invN := ir.ConstF{V: 1.0 / float32(n)}
	invN1 := ir.ConstF{V: 1.0 / float32(n-1)}
	covIJ := []ir.Aff{ir.V("i"), ir.V("j")}
	return &ir.Kernel{
		Name:   "covariance",
		Arrays: []*ir.Array{data, cov, mean},
		Body: []ir.Stmt{
			// Column means accumulated row-wise (vector map over j).
			zero1D(mean, n, "j"),
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: mean, Idx: []ir.Aff{ir.V("j")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: mean, Idx: []ir.Aff{ir.V("j")}},
						R: ir.Load{Arr: data, Idx: dij}}},
				}},
			}},
			ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: mean, Idx: []ir.Aff{ir.V("j")}, RHS: ir.Bin{Op: ir.Mul,
					L: ir.Load{Arr: mean, Idx: []ir.Aff{ir.V("j")}}, R: invN}},
			}},
			// Center the data (vector map).
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: data, Idx: dij, RHS: ir.Bin{Op: ir.Sub,
						L: ir.Load{Arr: data, Idx: dij},
						R: ir.Load{Arr: mean, Idx: []ir.Aff{ir.V("j")}}}},
				}},
			}},
			// cov[i][j] for j >= i: the k-walk reads two columns —
			// inherently scalar (stride-N), like the paper's transposed
			// kernels.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				// InterchangeOK: swapping (j,k) makes the two column
				// reads stride-1 in j.
				ir.Loop{Var: "j", Lo: ir.BV("i", 0), Hi: ir.BC(n), InterchangeOK: true, Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: cov, Idx: covIJ, RHS: ir.ConstF{V: 0}},
					ir.Loop{Var: "k", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, IVDep: true, Body: []ir.Stmt{
						ir.Assign{Arr: cov, Idx: covIJ, RHS: ir.Bin{Op: ir.Add,
							L: ir.Load{Arr: cov, Idx: covIJ},
							R: ir.Bin{Op: ir.Mul,
								L: ir.Load{Arr: data, Idx: []ir.Aff{ir.V("k"), ir.V("i")}},
								R: ir.Load{Arr: data, Idx: []ir.Aff{ir.V("k"), ir.V("j")}}}}},
					}},
					ir.Assign{Arr: cov, Idx: covIJ, RHS: ir.Bin{Op: ir.Mul,
						L: ir.Load{Arr: cov, Idx: covIJ}, R: invN1}},
					ir.Assign{Arr: cov, Idx: []ir.Aff{ir.V("j"), ir.V("i")},
						RHS: ir.Load{Arr: cov, Idx: covIJ}},
				}},
			}},
		},
	}
}
