package polybench

import (
	"math"
	"testing"

	"sttdl1/internal/ir"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"2mm", "3mm", "atax", "bicg", "covariance", "doitgen",
		"floyd", "gemm", "gemver", "gesummv", "jacobi2d", "mvt", "seidel2d",
		"syrk", "trisolv", "trmm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if b, ok := ByName("gemm"); !ok || b.Name != "gemm" || b.Desc == "" {
		t.Error("gemm lookup failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown benchmark must not resolve")
	}
}

func TestEveryKernelEvaluates(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			k := b.Build(10)
			if k.Name != b.Name {
				t.Errorf("kernel name %q != bench name %q", k.Name, b.Name)
			}
			data, laid, err := ir.Reference(k, ir.DefaultLayoutOptions())
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			// Every kernel must declare at least one output array with at
			// least one finite, nonzero element (a kernel whose outputs
			// are all zero is almost certainly miswired).
			hasOut := false
			nonzero := false
			for _, a := range laid.Arrays {
				if !a.Out {
					continue
				}
				hasOut = true
				for _, v := range ir.ReadArray(a, data) {
					if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
						t.Fatalf("%s: output %s contains %v", b.Name, a.Name, v)
					}
					if v != 0 {
						nonzero = true
					}
				}
			}
			if !hasOut {
				t.Fatal("no Out arrays declared")
			}
			if !nonzero {
				t.Fatal("all outputs are zero")
			}
		})
	}
}

func TestInitDeterministic(t *testing.T) {
	for _, b := range All() {
		k1, k2 := b.Build(8), b.Build(8)
		d1, l1, err := ir.Reference(k1, ir.DefaultLayoutOptions())
		if err != nil {
			t.Fatal(err)
		}
		d2, l2, err := ir.Reference(k2, ir.DefaultLayoutOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range l1.Arrays {
			x := ir.ReadArray(a, d1)
			y := ir.ReadArray(l2.Arrays[i], d2)
			for j := range x {
				if x[j] != y[j] {
					t.Fatalf("%s: %s[%d] differs across builds", b.Name, a.Name, j)
				}
			}
		}
	}
}

func TestDefaultSizesAreSane(t *testing.T) {
	for _, b := range All() {
		if b.Default < 8 {
			t.Errorf("%s default size %d too small", b.Name, b.Default)
		}
		k := b.Kernel()
		total := 0
		for _, a := range k.Arrays {
			total += 4 * a.Elems()
		}
		if total < 1<<10 || total > 1<<21 {
			t.Errorf("%s footprint %d bytes outside sane range", b.Name, total)
		}
	}
}

func TestVectorizableMarksExist(t *testing.T) {
	// Every kernel marks at least one loop Vectorizable — the author
	// pragma the paper's §V transformation relies on.
	for _, b := range All() {
		k := b.Build(8)
		found := false
		var walk func(ss []ir.Stmt)
		walk = func(ss []ir.Stmt) {
			for _, s := range ss {
				switch st := s.(type) {
				case ir.Loop:
					if st.Vectorizable {
						found = true
					}
					walk(st.Body)
				case ir.If:
					walk(st.Then)
					walk(st.Else)
				}
			}
		}
		walk(k.Body)
		if !found {
			t.Errorf("%s: no Vectorizable loop marked", b.Name)
		}
	}
}

func TestGemmGoldenValue(t *testing.T) {
	// Pin gemm's semantics with an independently computed reference.
	n := 6
	b, _ := ByName("gemm")
	data, laid, err := ir.Reference(b.Build(n), ir.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	A := make([][]float32, n)
	B := make([][]float32, n)
	C := make([][]float32, n)
	for i := 0; i < n; i++ {
		A[i] = make([]float32, n)
		B[i] = make([]float32, n)
		C[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			A[i][j] = fr(i, j+1, 0, n)
			B[i][j] = fr(i, j+1, 1, n)
			C[i][j] = fr(i, j+1, 2, n)
		}
	}
	var alpha, beta float32 = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			C[i][j] *= beta
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				C[i][j] += alpha * A[i][k] * B[k][j]
			}
		}
	}
	got := ir.ReadArray(laid.Array("C"), data)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if diff := math.Abs(float64(got[i*n+j] - C[i][j])); diff > 1e-5 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got[i*n+j], C[i][j])
			}
		}
	}
}

func TestFloydGoldenValue(t *testing.T) {
	// Floyd-Warshall against a plain float32 implementation.
	n := 8
	b, _ := ByName("floyd")
	data, laid, err := ir.Reference(b.Build(n), ir.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := make([][]float32, n)
	arr := laid.Array("path")
	for i := range path {
		path[i] = make([]float32, n)
		for j := range path[i] {
			path[i][j] = arr.Init([]int{i, j})
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := path[i][k] + path[k][j]; d < path[i][j] {
					path[i][j] = d
				}
			}
		}
	}
	got := ir.ReadArray(arr, data)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i*n+j] != path[i][j] {
				t.Fatalf("path[%d][%d] = %g, want %g", i, j, got[i*n+j], path[i][j])
			}
		}
	}
}

func TestTrisolvSolvesSystem(t *testing.T) {
	// The solution must actually satisfy L x = b.
	n := 12
	b, _ := ByName("trisolv")
	data, laid, err := ir.Reference(b.Build(n), ir.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	L := ir.ReadArray(laid.Array("L"), data)
	bb := ir.ReadArray(laid.Array("b"), data)
	x := ir.ReadArray(laid.Array("x"), data)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j <= i; j++ {
			sum += float64(L[i*n+j]) * float64(x[j])
		}
		if diff := math.Abs(sum - float64(bb[i])); diff > 1e-4 {
			t.Fatalf("row %d: Lx = %g, b = %g", i, sum, bb[i])
		}
	}
}
