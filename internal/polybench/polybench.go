// Package polybench re-expresses a subset of the PolyBench/C benchmark
// suite (Pouchet; the paper's workload, its ref [13]) in the loop-nest IR
// of internal/ir. The subset mirrors the paper's choice of small linear
// algebra, solver, and stencil kernels: matrix products (gemm, 2mm, 3mm,
// syrk, trmm), matrix-vector chains (atax, bicg, mvt, gesummv), a
// triangular solver (trisolv), a 2-D Jacobi stencil (jacobi-2d), and
// Floyd-Warshall (the data-dependent-branch kernel that exercises the
// branch-removal transformation).
//
// Problem sizes follow PolyBench's "mini/small" philosophy — the paper
// itself notes its benchmarks "are not particularly large or heavily
// data intensive" — scaled so each kernel runs hundreds of thousands to
// a few million simulated instructions, with working sets on both sides
// of the 64 KB DL1 capacity. Sizes are deliberately not multiples of the
// vector width so SIMD tail loops are exercised everywhere.
//
// Initialization follows PolyBench's deterministic patterns, evaluated
// in float32.
package polybench

import (
	"fmt"
	"sort"

	"sttdl1/internal/ir"
)

// Bench is one registered benchmark.
type Bench struct {
	Name string
	// Default is the standard problem-size parameter used by the
	// paper-reproduction experiments.
	Default int
	// Build constructs the kernel for an arbitrary size (tests use tiny
	// sizes; sweeps use larger ones).
	Build func(n int) *ir.Kernel
	// Desc is a one-line description for reports.
	Desc string
}

// Kernel builds the benchmark at its default size.
func (b Bench) Kernel() *ir.Kernel { return b.Build(b.Default) }

var registry = map[string]Bench{}

func register(b Bench) {
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("polybench: duplicate benchmark %q", b.Name))
	}
	registry[b.Name] = b
}

// All returns every benchmark, sorted by name.
func All() []Bench {
	out := make([]Bench, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted benchmark names.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Bench, bool) {
	b, ok := registry[name]
	return b, ok
}

// ---- shared initialization helpers (PolyBench-style patterns) ----

// fr is the PolyBench ((i*j+c) % n) / n pattern in float32.
func fr(i, j, c, n int) float32 {
	return float32(((i*j + c) % n)) / float32(n)
}

func init2D(n, m, c int) func(idx []int) float32 {
	return func(idx []int) float32 { return fr(idx[0], idx[1]+1, c, n) }
}

func init1D(n, c int) func(idx []int) float32 {
	return func(idx []int) float32 { return fr(idx[0], 1, c, n) }
}
