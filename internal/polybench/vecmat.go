package polybench

import "sttdl1/internal/ir"

// Matrix-vector chains and the triangular solver.

func init() {
	register(Bench{Name: "atax", Default: 140, Desc: "y = A^T (A x)", Build: buildATAX})
	register(Bench{Name: "bicg", Default: 140, Desc: "s = A^T r; q = A p", Build: buildBICG})
	register(Bench{Name: "mvt", Default: 140, Desc: "x1 += A y1; x2 += A^T y2", Build: buildMVT})
	register(Bench{Name: "gesummv", Default: 120, Desc: "y = alpha*A*x + beta*B*x", Build: buildGESUMMV})
	register(Bench{Name: "trisolv", Default: 180, Desc: "L x = b forward solve", Build: buildTRISOLV})
}

func zero1D(d *ir.Array, n int, v string) ir.Stmt {
	return ir.Loop{Var: v, Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
		ir.Assign{Arr: d, Idx: []ir.Aff{ir.V(v)}, RHS: ir.ConstF{V: 0}},
	}}
}

func buildATAX(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	x := &ir.Array{Name: "x", Dims: []int{n}, Init: init1D(n, 1)}
	y := &ir.Array{Name: "y", Dims: []int{n}, Out: true}
	tmp := &ir.Array{Name: "tmp", Dims: []int{n}}
	aij := []ir.Aff{ir.V("i"), ir.V("j")}
	return &ir.Kernel{
		Name:   "atax",
		Arrays: []*ir.Array{A, x, y, tmp},
		Body: []ir.Stmt{
			zero1D(y, n, "j"),
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Assign{Arr: tmp, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 0}},
				// tmp[i] += A[i][j]*x[j] — vector reduction.
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: tmp, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: tmp, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: aij}, R: ir.Load{Arr: x, Idx: []ir.Aff{ir.V("j")}}}}},
				}},
				// y[j] += tmp[i]*A[i][j] — vector map with invariant tmp[i].
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: y, Idx: []ir.Aff{ir.V("j")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: y, Idx: []ir.Aff{ir.V("j")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: tmp, Idx: []ir.Aff{ir.V("i")}}, R: ir.Load{Arr: A, Idx: aij}}}},
				}},
			}},
		},
	}
}

func buildBICG(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	p := &ir.Array{Name: "p", Dims: []int{n}, Init: init1D(n, 1)}
	r := &ir.Array{Name: "r", Dims: []int{n}, Init: init1D(n, 2)}
	s := &ir.Array{Name: "s", Dims: []int{n}, Out: true}
	q := &ir.Array{Name: "q", Dims: []int{n}, Out: true}
	aij := []ir.Aff{ir.V("i"), ir.V("j")}
	return &ir.Kernel{
		Name:   "bicg",
		Arrays: []*ir.Array{A, p, r, s, q},
		Body: []ir.Stmt{
			zero1D(s, n, "j"),
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Assign{Arr: q, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 0}},
				// One loop, two statements: a map (s) and a reduction (q)
				// — the mixed-shape vector loop.
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: s, Idx: []ir.Aff{ir.V("j")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: s, Idx: []ir.Aff{ir.V("j")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: r, Idx: []ir.Aff{ir.V("i")}}, R: ir.Load{Arr: A, Idx: aij}}}},
					ir.Assign{Arr: q, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: q, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: aij}, R: ir.Load{Arr: p, Idx: []ir.Aff{ir.V("j")}}}}},
				}},
			}},
		},
	}
}

func buildMVT(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	x1 := &ir.Array{Name: "x1", Dims: []int{n}, Init: init1D(n, 1), Out: true}
	x2 := &ir.Array{Name: "x2", Dims: []int{n}, Init: init1D(n, 2), Out: true}
	y1 := &ir.Array{Name: "y1", Dims: []int{n}, Init: init1D(n, 3)}
	y2 := &ir.Array{Name: "y2", Dims: []int{n}, Init: init1D(n, 4)}
	return &ir.Kernel{
		Name:   "mvt",
		Arrays: []*ir.Array{A, x1, x2, y1, y2},
		Body: []ir.Stmt{
			// x1[i] += A[i][j]*y1[j]: row walk, vectorizable reduction.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: x1, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: x1, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: ir.Load{Arr: y1, Idx: []ir.Aff{ir.V("j")}}}}},
				}},
			}},
			// x2[i] += A[j][i]*y2[j]: column walk — marked vectorizable
			// but illegal (stride N), so the planner falls back to
			// scalar; mvt is half row-walk, half column-walk.
			// InterchangeOK lets the extension pass turn it into a
			// stride-1 row walk.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), InterchangeOK: true, Body: []ir.Stmt{
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: x2, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: x2, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("j"), ir.V("i")}}, R: ir.Load{Arr: y2, Idx: []ir.Aff{ir.V("j")}}}}},
				}},
			}},
		},
	}
}

func buildGESUMMV(n int) *ir.Kernel {
	A := &ir.Array{Name: "A", Dims: []int{n, n}, Init: init2D(n, n, 0)}
	B := &ir.Array{Name: "B", Dims: []int{n, n}, Init: init2D(n, n, 1)}
	x := &ir.Array{Name: "x", Dims: []int{n}, Init: init1D(n, 2)}
	y := &ir.Array{Name: "y", Dims: []int{n}, Out: true}
	tmp := &ir.Array{Name: "tmp", Dims: []int{n}}
	xj := ir.Load{Arr: x, Idx: []ir.Aff{ir.V("j")}}
	return &ir.Kernel{
		Name:   "gesummv",
		Arrays: []*ir.Array{A, B, x, y, tmp},
		Params: []ir.Param{{Name: "alpha", Value: 1.5}, {Name: "beta", Value: 1.2}},
		Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Assign{Arr: tmp, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 0}},
				ir.Assign{Arr: y, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 0}},
				// Two reductions share one loop (and one traversal of x).
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
					ir.Assign{Arr: tmp, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: tmp, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: A, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: xj}}},
					ir.Assign{Arr: y, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
						L: ir.Load{Arr: y, Idx: []ir.Aff{ir.V("i")}},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: B, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: xj}}},
				}},
				ir.Assign{Arr: y, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
					L: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "alpha"}, R: ir.Load{Arr: tmp, Idx: []ir.Aff{ir.V("i")}}},
					R: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "beta"}, R: ir.Load{Arr: y, Idx: []ir.Aff{ir.V("i")}}}}},
			}},
		},
	}
}

func buildTRISOLV(n int) *ir.Kernel {
	L := &ir.Array{Name: "L", Dims: []int{n, n}, Init: func(idx []int) float32 {
		i, j := idx[0], idx[1]
		if j > i {
			return 0
		}
		if i == j {
			return 1 + float32(i%7)*0.25 // well-conditioned diagonal
		}
		return fr(i, j+1, 0, n) * 0.01
	}}
	b := &ir.Array{Name: "b", Dims: []int{n}, Init: init1D(n, 1)}
	x := &ir.Array{Name: "x", Dims: []int{n}, Out: true}
	xi := []ir.Aff{ir.V("i")}
	return &ir.Kernel{
		Name:   "trisolv",
		Arrays: []*ir.Array{L, b, x},
		Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Body: []ir.Stmt{
				ir.Assign{Arr: x, Idx: xi, RHS: ir.Load{Arr: b, Idx: xi}},
				// x[i] -= L[i][j]*x[j], j<i: a subtract-reduction whose
				// stream reads earlier elements of the solution vector;
				// IVDep asserts the j<i elements are final (true for a
				// forward solve).
				ir.Loop{Var: "j", Lo: ir.BC(0), Hi: ir.BV("i", 0), Vectorizable: true, IVDep: true, Body: []ir.Stmt{
					ir.Assign{Arr: x, Idx: xi, RHS: ir.Bin{Op: ir.Sub,
						L: ir.Load{Arr: x, Idx: xi},
						R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: L, Idx: []ir.Aff{ir.V("i"), ir.V("j")}}, R: ir.Load{Arr: x, Idx: []ir.Aff{ir.V("j")}}}}},
				}},
				ir.Assign{Arr: x, Idx: xi, RHS: ir.Bin{Op: ir.Div,
					L: ir.Load{Arr: x, Idx: xi}, R: ir.Load{Arr: L, Idx: []ir.Aff{ir.V("i"), ir.V("i")}}}},
			}},
		},
	}
}
