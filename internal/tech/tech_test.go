package tech

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTableICalibration pins the model to the paper's Table I numbers.
func TestTableICalibration(t *testing.T) {
	sram := MustCompute(DefaultArray(SRAM6T))
	stt := MustCompute(DefaultArray(STT2T2MTJ))

	within := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

	if !within(sram.ReadNs, 0.787, 0.005) {
		t.Errorf("SRAM read = %.4f ns, want 0.787", sram.ReadNs)
	}
	if !within(sram.WriteNs, 0.773, 0.005) {
		t.Errorf("SRAM write = %.4f ns, want 0.773", sram.WriteNs)
	}
	if !within(stt.ReadNs, 3.37, 0.01) {
		t.Errorf("STT read = %.4f ns, want 3.37", stt.ReadNs)
	}
	if !within(stt.WriteNs, 1.86, 0.01) {
		t.Errorf("STT write = %.4f ns, want 1.86", stt.WriteNs)
	}
	if !within(stt.LeakageMW, 28.35, 0.05) {
		t.Errorf("STT leakage = %.3f mW, want 28.35", stt.LeakageMW)
	}
	if sram.CellAreaF2 != 146 || stt.CellAreaF2 != 42 {
		t.Errorf("cell areas %v/%v, want 146/42", sram.CellAreaF2, stt.CellAreaF2)
	}
	if sram.Config.LineBits != 256 || stt.Config.LineBits != 512 {
		t.Errorf("line bits %d/%d, want 256/512", sram.Config.LineBits, stt.Config.LineBits)
	}
}

// TestCyclesAtOneGHz checks the paper's §III simulation assumption: read
// 4x and write 2x the SRAM cycle.
func TestCyclesAtOneGHz(t *testing.T) {
	sr, sw := MustCompute(DefaultArray(SRAM6T)).CyclesAt(1.0)
	tr, tw := MustCompute(DefaultArray(STT2T2MTJ)).CyclesAt(1.0)
	if sr != 1 || sw != 1 {
		t.Errorf("SRAM cycles %d/%d, want 1/1", sr, sw)
	}
	if tr != 4 || tw != 2 {
		t.Errorf("STT cycles %d/%d, want 4/2", tr, tw)
	}
}

func TestCyclesAtFloor(t *testing.T) {
	m := MustCompute(DefaultArray(SRAM6T))
	r, w := m.CyclesAt(0.1) // 100 MHz: everything fits in one cycle
	if r != 1 || w != 1 {
		t.Errorf("cycles at 0.1 GHz = %d/%d, want 1/1", r, w)
	}
}

// TestAreaAdvantage verifies the paper's claim that the NVM's density
// would allow 2-3x the capacity in the same area.
func TestAreaAdvantage(t *testing.T) {
	sram := MustCompute(DefaultArray(SRAM6T))
	stt := MustCompute(DefaultArray(STT2T2MTJ))
	ratio := sram.AreaMM2 / stt.AreaMM2
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("area ratio = %.2f, want within the paper's 2-3x (plus margin)", ratio)
	}
}

func TestNonVolatility(t *testing.T) {
	if MustCompute(DefaultArray(SRAM6T)).RetentionNonVol {
		t.Error("SRAM must be volatile")
	}
	for _, k := range []CellKind{STT2T2MTJ, STT1T1MTJ, PRAM, ReRAM} {
		if !MustCompute(DefaultArray(k)).RetentionNonVol {
			t.Errorf("%v must be non-volatile", k)
		}
	}
}

// TestLatencyOrdering encodes the paper's technology survey (§I): PRAM's
// write is hopeless at L1; ReRAM reads are fast-ish but endurance-bound.
func TestLatencyOrdering(t *testing.T) {
	stt := MustCompute(DefaultArray(STT2T2MTJ))
	pram := MustCompute(DefaultArray(PRAM))
	if pram.WriteNs < 10*stt.WriteNs {
		t.Errorf("PRAM write %.1f ns should dwarf STT's %.2f ns", pram.WriteNs, stt.WriteNs)
	}
	if Cells[PRAM].EnduranceLog10 >= Cells[STT2T2MTJ].EnduranceLog10 {
		t.Error("PRAM endurance must be far below STT-MRAM's")
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(ArrayConfig{Cell: CellKind(99), Capacity: 1024, LineBits: 256, NodeNm: 32}); err == nil {
		t.Error("unknown cell must fail")
	}
	if _, err := Compute(ArrayConfig{Cell: SRAM6T, Capacity: 0, LineBits: 256, NodeNm: 32}); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := Compute(ArrayConfig{Cell: SRAM6T, Capacity: 1024, LineBits: 0, NodeNm: 32}); err == nil {
		t.Error("zero line bits must fail")
	}
}

func TestMustComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompute(ArrayConfig{Cell: SRAM6T})
}

// Property: latency, leakage and area are monotone non-decreasing in
// capacity for every cell.
func TestMonotoneInCapacity(t *testing.T) {
	f := func(rawKB uint8, kindSel uint8) bool {
		kinds := []CellKind{SRAM6T, STT2T2MTJ, STT1T1MTJ, PRAM, ReRAM}
		kind := kinds[int(kindSel)%len(kinds)]
		kb := 8 << (int(rawKB) % 6) // 8..256 KB
		small := DefaultArray(kind)
		small.Capacity = kb << 10
		big := small
		big.Capacity = 2 * small.Capacity
		ms, err1 := Compute(small)
		mb, err2 := Compute(big)
		if err1 != nil || err2 != nil {
			return false
		}
		return mb.ReadNs >= ms.ReadNs && mb.WriteNs >= ms.WriteNs &&
			mb.AreaMM2 > ms.AreaMM2 && mb.LeakageMW >= ms.LeakageMW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the STT read penalty ratio over SRAM grows as arrays shrink
// (the fixed sense time dominates), which is why the paper targets L1.
func TestSensePenaltyDominatesAtL1(t *testing.T) {
	ratioAt := func(capacity int) float64 {
		s := DefaultArray(SRAM6T)
		s.Capacity = capacity
		n := DefaultArray(STT2T2MTJ)
		n.Capacity = capacity
		return MustCompute(n).ReadNs / MustCompute(s).ReadNs
	}
	if r64, r2M := ratioAt(64<<10), ratioAt(2<<20); r64 <= r2M {
		t.Errorf("read ratio at 64KB (%.2f) should exceed 2MB (%.2f)", r64, r2M)
	}
}

func TestEnduranceHorizon(t *testing.T) {
	stt := MustCompute(DefaultArray(STT2T2MTJ))
	// 1e15 writes/line spread over 1024 lines at 1 GHz is decades.
	if stt.EnduranceYears < 10 {
		t.Errorf("STT endurance horizon %.1f years, expected decades", stt.EnduranceYears)
	}
	pram := MustCompute(DefaultArray(PRAM))
	if pram.EnduranceYears > stt.EnduranceYears/1000 {
		t.Errorf("PRAM horizon %.4f should be orders of magnitude below STT %.1f", pram.EnduranceYears, stt.EnduranceYears)
	}
}

func TestCellKindString(t *testing.T) {
	if SRAM6T.String() != "SRAM-6T" || STT2T2MTJ.String() != "STT-2T2MTJ" {
		t.Error("cell names wrong")
	}
	if CellKind(42).String() == "" {
		t.Error("unknown kind must stringify")
	}
}
