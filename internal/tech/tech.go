// Package tech is an analytical memory-array model in the spirit of
// NVSim/CACTI, scoped to what the paper's system level consumes: per-array
// read/write latency, leakage, area, and dynamic energy for SRAM and
// STT-MRAM caches at the 32 nm high-performance node.
//
// The paper takes these numbers from measured silicon (Toshiba's advanced
// perpendicular dual-MTJ cell, VLSI'14; consistent with Samsung and
// Qualcomm data) summarized in its Table I. We cannot import silicon, so
// this package reproduces Table I from first-order circuit structure:
//
//	read  = row decode + wordline RC + bitline RC + sense + H-tree/output
//	write = row decode + wordline RC + cell write pulse + drive
//
// with per-cell parameters (area in F², sense time, write-pulse time,
// per-bit leakage) calibrated so that a 64 KB, 2-way array at 32 nm HP
// emits the Table I values. The structural terms make latency, area and
// leakage grow properly with capacity, which the exploration sweeps rely
// on.
//
// OCR note: the paper's Table I SRAM leakage cell is unreadable
// ("Leakage ?mW | 28.35mW"). The SRAM value produced here (~96 mW) is a
// CACTI-like calibration for 64 KB of 32 nm HP 6T cells and is flagged in
// EXPERIMENTS.md.
package tech

import (
	"fmt"
	"math"
)

// CellKind selects a bit-cell technology from the built-in library.
type CellKind int

const (
	// SRAM6T is the conventional 6-transistor SRAM cell (32 nm HP).
	SRAM6T CellKind = iota
	// STT2T2MTJ is the advanced perpendicular dual-MTJ STT-MRAM cell with
	// a 2T-2MTJ differential read path; the paper's NVM of choice (its
	// refs [4], [5] motivate the 1T-1MTJ -> 2T-2MTJ shift that makes
	// *read* latency the bottleneck).
	STT2T2MTJ
	// STT1T1MTJ is the older single-MTJ cell: denser but with a slower,
	// less reliable read (kept for ablation sweeps).
	STT1T1MTJ
	// PRAM is a phase-change cell; included because the paper's related
	// work (its ref [9]) compares against PCM-based caches. Its write
	// pulse makes it unusable at L1, which the model reproduces.
	PRAM
	// ReRAM is a resistive-RAM cell (paper §I: attractive but
	// endurance-limited).
	ReRAM
)

var cellNames = [...]string{"SRAM-6T", "STT-2T2MTJ", "STT-1T1MTJ", "PRAM", "ReRAM"}

func (k CellKind) String() string {
	if int(k) < len(cellNames) {
		return cellNames[k]
	}
	return fmt.Sprintf("cell(%d)", int(k))
}

// Cell holds the technology parameters of one bit cell.
type Cell struct {
	Kind CellKind
	// AreaF2 is the cell area in F² (Table I: SRAM 146, STT-MRAM 42).
	AreaF2 float64
	// SenseNs is the sense-amplifier resolve time. For STT-MRAM this is
	// the long TMR-limited differential sense that dominates read latency
	// (paper §III: realistic R-ratios force slow sensing).
	SenseNs float64
	// WritePulseNs is the cell write/switching pulse.
	WritePulseNs float64
	// LeakNWPerBit is static leakage per bit (0 for non-volatile cells).
	LeakNWPerBit float64
	// ReadFJPerBit / WriteFJPerBit are dynamic array energies.
	ReadFJPerBit, WriteFJPerBit float64
	// EnduranceLog10 is log10 of write-endurance cycles.
	EnduranceLog10 float64
	// Volatile reports whether the cell loses state on power-down.
	Volatile bool
}

// Cells is the built-in cell library at the 32 nm HP node.
//
// SenseNs and WritePulseNs are the calibration knobs: together with the
// structural terms of the array model they land a 64 KB 2-way array on
// the paper's Table I latencies (SRAM 0.787/0.773 ns, STT 3.37/1.86 ns).
var Cells = map[CellKind]Cell{
	SRAM6T: {
		Kind: SRAM6T, AreaF2: 146, SenseNs: 0.1388, WritePulseNs: 0.2483,
		LeakNWPerBit: 130, ReadFJPerBit: 28, WriteFJPerBit: 26,
		EnduranceLog10: 16, Volatile: true,
	},
	STT2T2MTJ: {
		Kind: STT2T2MTJ, AreaF2: 42, SenseNs: 2.7398, WritePulseNs: 1.3533,
		LeakNWPerBit: 0, ReadFJPerBit: 11, WriteFJPerBit: 95,
		EnduranceLog10: 15, Volatile: false,
	},
	STT1T1MTJ: {
		Kind: STT1T1MTJ, AreaF2: 22, SenseNs: 4.1, WritePulseNs: 4.5,
		LeakNWPerBit: 0, ReadFJPerBit: 9, WriteFJPerBit: 160,
		EnduranceLog10: 12, Volatile: false,
	},
	PRAM: {
		Kind: PRAM, AreaF2: 9, SenseNs: 8.0, WritePulseNs: 90,
		LeakNWPerBit: 0, ReadFJPerBit: 15, WriteFJPerBit: 800,
		EnduranceLog10: 8, Volatile: false,
	},
	ReRAM: {
		Kind: ReRAM, AreaF2: 12, SenseNs: 2.2, WritePulseNs: 9.0,
		LeakNWPerBit: 0, ReadFJPerBit: 8, WriteFJPerBit: 300,
		EnduranceLog10: 6, Volatile: false,
	},
}

// ArrayConfig describes the macro being modelled.
type ArrayConfig struct {
	Cell      CellKind
	Capacity  int     // bytes
	LineBits  int     // row/output width in bits
	Assoc     int     // ways (tag overhead)
	NodeNm    float64 // feature size F in nm (32 for the paper)
	Subarray  int     // bits per subarray side; 0 means the 256 default
	PeriphOvh float64 // periphery area overhead fraction; 0 means 0.35
}

// DefaultArray returns the paper's DL1 macro for the given cell: 64 KB,
// 2-way, 32 nm. SRAM uses the 256-bit line of Table I, NVM the 512-bit
// line ("the wider memory array of the D-cache actually is more
// beneficial energy wise to the NVM", paper §IV).
func DefaultArray(cell CellKind) ArrayConfig {
	lineBits := 512
	if cell == SRAM6T {
		lineBits = 256
	}
	return ArrayConfig{Cell: cell, Capacity: 64 << 10, LineBits: lineBits, Assoc: 2, NodeNm: 32}
}

// Model is the output of the analytical model for one array.
type Model struct {
	Config ArrayConfig

	ReadNs, WriteNs float64
	LeakageMW       float64
	AreaMM2         float64
	CellAreaF2      float64
	ReadPJ, WritePJ float64 // per line-wide access
	EnduranceYears  float64 // at one write per cycle at 1 GHz, whole array
	Subarrays       int
	RetentionNonVol bool
}

// Structural timing constants (ns), first-order RC terms at 32 nm.
const (
	decodeBaseNs    = 0.055 // predecoder
	decodePerBitNs  = 0.018 // per address bit of row decode depth
	wordlinePerCell = 0.00042
	bitlinePerCell  = 0.00058
	htreePerHopNs   = 0.028
	outputDriveNs   = 0.060
	writeDriveNs    = 0.085
)

// Periphery leakage constants (mW), calibrated so the STT 64 KB array
// (whose cells leak nothing) lands on Table I's 28.35 mW.
const (
	periphLeakBaseMW   = 3.23
	periphLeakPerSubMW = 3.14
)

// Compute evaluates the model. It returns an error for nonsensical
// configurations (these come from user sweeps, so no panics).
func Compute(cfg ArrayConfig) (Model, error) {
	cell, ok := Cells[cfg.Cell]
	if !ok {
		return Model{}, fmt.Errorf("tech: unknown cell kind %v", cfg.Cell)
	}
	if cfg.Capacity <= 0 || cfg.LineBits <= 0 || cfg.NodeNm <= 0 {
		return Model{}, fmt.Errorf("tech: capacity, line bits and node must be positive")
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	sub := cfg.Subarray
	if sub == 0 {
		sub = 256
	}
	ovh := cfg.PeriphOvh
	if ovh == 0 {
		ovh = 0.35
	}

	bits := float64(cfg.Capacity) * 8
	nSub := bits / float64(sub*sub)
	if nSub < 1 {
		nSub = 1
	}
	rowsTotal := bits / float64(cfg.LineBits)
	if rowsTotal < 1 {
		rowsTotal = 1
	}

	decode := decodeBaseNs + decodePerBitNs*math.Log2(rowsTotal)
	wordline := wordlinePerCell * float64(sub)
	bitline := bitlinePerCell * float64(sub)
	htree := htreePerHopNs * math.Sqrt(nSub)

	readNs := decode + wordline + bitline + cell.SenseNs + htree + outputDriveNs
	writeNs := decode + wordline + cell.WritePulseNs + htree + writeDriveNs

	leakMW := bits*cell.LeakNWPerBit*1e-6 + periphLeakBaseMW + periphLeakPerSubMW*math.Ceil(nSub)

	// Tag bits per line: address tag ~ (32 - log2(capacity/assoc)) plus
	// valid+dirty; tags share the cell technology.
	sets := float64(cfg.Capacity) / float64(cfg.LineBits/8) / float64(cfg.Assoc)
	tagBits := (34 - math.Log2(float64(cfg.LineBits/8)) - math.Log2(sets)) * rowsTotal
	f2 := cfg.NodeNm * cfg.NodeNm * 1e-12 // mm² per F²
	areaMM2 := (bits + tagBits) * cell.AreaF2 * f2 * (1 + ovh)

	readPJ := float64(cfg.LineBits) * cell.ReadFJPerBit * 1e-3
	writePJ := float64(cfg.LineBits) * cell.WriteFJPerBit * 1e-3

	// Whole-array wear-out horizon at a pathological 1 write/cycle @1 GHz
	// spread perfectly over all lines (best case levelling).
	writesPerLine := math.Pow(10, cell.EnduranceLog10)
	years := writesPerLine * rowsTotal / 1e9 / (3600 * 24 * 365)

	return Model{
		Config:          cfg,
		ReadNs:          readNs,
		WriteNs:         writeNs,
		LeakageMW:       leakMW,
		AreaMM2:         areaMM2,
		CellAreaF2:      cell.AreaF2,
		ReadPJ:          readPJ,
		WritePJ:         writePJ,
		EnduranceYears:  years,
		Subarrays:       int(math.Ceil(nSub)),
		RetentionNonVol: !cell.Volatile,
	}, nil
}

// MustCompute is Compute for known-good configs built by our own code.
func MustCompute(cfg ArrayConfig) Model {
	m, err := Compute(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// CyclesAt converts the model's latencies to integer core cycles at the
// given clock (ceil). At 1 GHz the Table I arrays give SRAM 1/1 and
// STT-MRAM 4/2 — exactly the paper's §III simulation assumption ("read
// access time four times that of the SRAM cache, write twice").
func (m Model) CyclesAt(freqGHz float64) (read, write int64) {
	read = int64(math.Ceil(m.ReadNs * freqGHz))
	write = int64(math.Ceil(m.WriteNs * freqGHz))
	if read < 1 {
		read = 1
	}
	if write < 1 {
		write = 1
	}
	return read, write
}
