// Package runner is the experiment suite's parallel run engine: a
// bounded worker pool over keyed, memoized tasks with singleflight-style
// deduplication. Two callers requesting the same key — concurrently or
// in sequence — share one underlying execution and receive the identical
// result value; distinct keys fan out across up to Workers() goroutines.
//
// The engine is built for deterministic simulation workloads: results
// are addressed by key (never by completion order), successful results
// are memoized forever, and batch helpers return results in submission
// order, so the rendered output of a batch is bit-identical at any
// worker count. Failures are not memoized — a later caller retries —
// and the first real error of a batch cancels its remaining queued work.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sttdl1/internal/stats"
)

// Pool is a bounded-concurrency, memoizing, deduplicating task runner.
// The zero value is not usable; construct with New.
type Pool[K comparable, V any] struct {
	workers int
	sem     chan struct{} // counting semaphore bounding executions

	mu       sync.Mutex
	calls    map[K]*call[V]
	done     int // executed tasks completed (not dedup/memo hits)
	queued   int // leaders waiting for a worker slot
	inflight int // leaders currently executing

	progress stats.ProgressFunc
}

// call is one in-flight or completed execution.
type call[V any] struct {
	ready chan struct{} // closed when val/err are final
	val   V
	err   error
	// cached marks the execution as served from an external cache tier
	// (NoteCached); the completion event carries the flag.
	cached bool
}

// New builds a pool executing at most workers tasks concurrently;
// workers <= 0 means runtime.GOMAXPROCS(0).
func New[K comparable, V any](workers int) *Pool[K, V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool[K, V]{
		workers: workers,
		sem:     make(chan struct{}, workers),
		calls:   make(map[K]*call[V]),
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool[K, V]) Workers() int { return p.workers }

// SetProgress installs an observer for completed executions. Set it
// before submitting work; it must not be changed while tasks run.
func (p *Pool[K, V]) SetProgress(fn stats.ProgressFunc) { p.progress = fn }

// Done returns how many tasks have actually executed to completion
// (deduplicated and memoized requests are not counted).
func (p *Pool[K, V]) Done() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// NoteCached marks the in-flight execution for key as served from an
// external cache tier (e.g. the persistent evaluation store), so its
// completion event reports Cached and progress output can distinguish
// real simulation work from store reads. Call it from inside the task's
// own fn — the flag is published with the task's completion, and a task
// whose fn has already returned is no longer addressable.
func (p *Pool[K, V]) NoteCached(key K) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.calls[key]; ok {
		c.cached = true
	}
}

// Peek reports key's memo state without computing anything: done is
// true (and v valid) when a successful execution is memoized, inflight
// is true while a leader is still computing it. A key whose execution
// failed reads as absent (failures are never memoized).
func (p *Pool[K, V]) Peek(key K) (v V, done, inflight bool) {
	p.mu.Lock()
	c, ok := p.calls[key]
	p.mu.Unlock()
	if !ok {
		var zero V
		return zero, false, false
	}
	select {
	case <-c.ready:
		// Completed entries only survive in the map on success.
		return c.val, true, false
	default:
		var zero V
		return zero, false, true
	}
}

// Publish memoizes a result computed outside the pool's task machinery
// (e.g. one member of a gang replay whose batch ran under a single
// task's worker slot). It counts as one executed task — done advances
// and a progress event fires, so engine accounting sees exactly one
// completion per unique simulation regardless of batching. If the key
// is already in flight or memoized the call is a no-op returning false:
// the concurrent execution's value wins (the determinism contract makes
// the two values identical, so which one lands is unobservable).
func (p *Pool[K, V]) Publish(key K, label string, v V, cached bool) bool {
	c := &call[V]{ready: make(chan struct{}), val: v, cached: cached}
	close(c.ready)
	p.mu.Lock()
	if _, ok := p.calls[key]; ok {
		p.mu.Unlock()
		return false
	}
	p.calls[key] = c
	p.done++
	if p.progress != nil {
		p.progress(stats.RunEvent{
			Key:      fmt.Sprint(key),
			Label:    label,
			Cached:   cached,
			Done:     p.done,
			InFlight: p.inflight,
			Queued:   p.queued,
		})
	}
	p.mu.Unlock()
	return true
}

// Do returns the result for key, computing it with fn at most once
// across all concurrent and future callers. If another caller is already
// computing key, Do waits for that execution and returns its exact
// result value. Successful results are memoized for the life of the
// pool; errors are returned to every waiter but then forgotten, so a
// later caller retries. A caller whose ctx is canceled while waiting
// gets ctx.Err() without disturbing the shared execution.
func (p *Pool[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, error) {
	return p.DoLabeled(ctx, key, fmt.Sprint(key), fn)
}

// DoLabeled is Do with an explicit human-readable label for progress
// events.
func (p *Pool[K, V]) DoLabeled(ctx context.Context, key K, label string, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	p.mu.Lock()
	if c, ok := p.calls[key]; ok {
		p.mu.Unlock()
		select {
		case <-c.ready:
			return c.val, c.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	c := &call[V]{ready: make(chan struct{})}
	p.calls[key] = c
	p.queued++
	p.mu.Unlock()

	// Leader path: wait for a worker slot, run, publish. The extra
	// ctx.Err() check matters because select chooses randomly when both
	// a free slot and a canceled context are ready.
	select {
	case p.sem <- struct{}{}:
		if err := ctx.Err(); err != nil {
			<-p.sem
			p.finish(key, c, zero, err, label, 0, false)
			return zero, err
		}
	case <-ctx.Done():
		p.finish(key, c, zero, ctx.Err(), label, 0, false)
		return zero, ctx.Err()
	}
	p.mu.Lock()
	p.queued--
	p.inflight++
	p.mu.Unlock()

	start := time.Now()
	v, err := fn(ctx)
	wall := time.Since(start)
	<-p.sem

	p.finish(key, c, v, err, label, wall, true)
	return v, err
}

// finish publishes the outcome of a leader's execution. ran reports
// whether fn actually executed (false when the leader was canceled while
// still queued).
func (p *Pool[K, V]) finish(key K, c *call[V], v V, err error, label string, wall time.Duration, ran bool) {
	p.mu.Lock()
	if ran {
		p.inflight--
	} else {
		p.queued--
	}
	c.val, c.err = v, err
	if err != nil {
		// Never memoize failures: forget the call so a future caller
		// with a live context can retry.
		delete(p.calls, key)
	} else {
		p.done++
		if p.progress != nil {
			p.progress(stats.RunEvent{
				Key:      fmt.Sprint(key),
				Label:    label,
				Wall:     wall,
				Cached:   c.cached,
				Done:     p.done,
				InFlight: p.inflight,
				Queued:   p.queued,
			})
		}
	}
	p.mu.Unlock()
	close(c.ready)
}

// Task pairs a deduplication key with the work that computes it.
type Task[K comparable, V any] struct {
	Key   K
	Label string
	Run   func(context.Context) (V, error)
}

// Run executes tasks concurrently over the pool and returns their
// results in task order (never completion order), which keeps batch
// output deterministic at any worker count. The first error — scanning
// in task order, preferring real failures over cancellations — is
// returned after every started task has settled; it cancels the batch's
// remaining queued work.
func (p *Pool[K, V]) Run(ctx context.Context, tasks []Task[K, V]) ([]V, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]V, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t Task[K, V]) {
			defer wg.Done()
			label := t.Label
			if label == "" {
				label = fmt.Sprint(t.Key)
			}
			v, err := p.DoLabeled(ctx, t.Key, label, t.Run)
			out[i], errs[i] = v, err
			if err != nil {
				cancel()
			}
		}(i, t)
	}
	wg.Wait()

	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// firstError picks the batch's reportable error deterministically: the
// first non-cancellation error in task order, else the first
// cancellation, else nil.
func firstError(errs []error) error {
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return err
	}
	return canceled
}
