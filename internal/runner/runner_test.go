package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"sttdl1/internal/stats"
)

func TestDoMemoizes(t *testing.T) {
	p := New[string, int](2)
	calls := 0
	fn := func(context.Context) (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := p.Do(context.Background(), "k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if p.Done() != 1 {
		t.Fatalf("Done() = %d, want 1", p.Done())
	}
}

func TestDoErrorNotMemoized(t *testing.T) {
	p := New[string, int](1)
	boom := errors.New("boom")
	calls := 0
	if _, err := p.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls++
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := p.Do(context.Background(), "k", func(context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (error must not be cached)", calls)
	}
	if p.Done() != 1 {
		t.Fatalf("Done() = %d, want 1 (failures don't count)", p.Done())
	}
}

func TestRunOrder(t *testing.T) {
	// A successful batch returns results in task order, not completion
	// order: later tasks finish first here (decreasing sleeps).
	p := New[int, int](4)
	tasks := make([]Task[int, int], 8)
	for i := range tasks {
		i := i
		tasks[i] = Task[int, int]{Key: i, Run: func(context.Context) (int, error) {
			time.Sleep(time.Duration(8-i) * time.Millisecond)
			return i * i, nil
		}}
	}
	out, err := p.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range out {
		if v != j*j {
			t.Errorf("out[%d] = %d, want %d", j, v, j*j)
		}
	}
}

func TestRunErrorWins(t *testing.T) {
	// Run reports the first real error in task order even when it is not
	// the first to occur, and never a sibling's cancellation. Task 1 only
	// fails once task 0 is already executing, so task 0 is guaranteed to
	// settle with its own error rather than the batch cancellation.
	p := New[int, int](2)
	slow := errors.New("slow failure")
	fast := errors.New("fast failure")
	started0 := make(chan struct{})
	tasks := []Task[int, int]{
		{Key: 0, Run: func(context.Context) (int, error) {
			close(started0)
			time.Sleep(5 * time.Millisecond)
			return 0, slow
		}},
		{Key: 1, Run: func(context.Context) (int, error) {
			<-started0
			return 0, fast
		}},
	}
	if _, err := p.Run(context.Background(), tasks); !errors.Is(err, slow) {
		t.Fatalf("err = %v, want the task-order-first error %v", err, slow)
	}
}

func TestQueuedLeaderCanceled(t *testing.T) {
	// One worker, occupied: a queued leader whose context is canceled
	// must be abandoned without its fn ever running.
	p := New[string, int](1)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), "blocker", func(context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	var queuedRan atomic.Bool
	go func() {
		_, err := p.Do(ctx, "queued", func(context.Context) (int, error) {
			queuedRan.Store(true)
			return 2, nil
		})
		queuedErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it reach the queue
	cancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued leader err = %v, want context.Canceled", err)
	}
	if queuedRan.Load() {
		t.Error("queued task ran despite cancellation")
	}
	close(release)
	wg.Wait()

	// The abandoned key is retryable afterwards.
	v, err := p.Do(context.Background(), "queued", func(context.Context) (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("retry after cancel = %d, %v", v, err)
	}
}

func TestProgressEvents(t *testing.T) {
	p := New[int, *int](3)
	var c stats.Counters
	var mu sync.Mutex
	var events []stats.RunEvent
	p.SetProgress(func(ev stats.RunEvent) {
		c.Observe(ev)
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	tasks := make([]Task[int, *int], 10)
	for i := range tasks {
		i := i
		tasks[i] = Task[int, *int]{Key: i, Label: fmt.Sprintf("task-%d", i), Run: func(context.Context) (*int, error) {
			time.Sleep(2 * time.Millisecond)
			return &i, nil
		}}
	}
	if _, err := p.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if c.Runs() != 10 {
		t.Fatalf("counters saw %d runs, want 10", c.Runs())
	}
	if c.MaxInFlight() > 3 {
		t.Errorf("peak in-flight %d exceeds worker bound 3", c.MaxInFlight())
	}
	if c.BusyTime() < 10*2*time.Millisecond {
		t.Errorf("busy time %v implausibly low", c.BusyTime())
	}
	// Done counters are emitted serially and strictly increase.
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Fatalf("event %d has Done=%d, want %d", i, ev.Done, i+1)
		}
		if ev.Label == "" || ev.Key == "" {
			t.Errorf("event %d missing label/key: %+v", i, ev)
		}
	}
}

func TestWaiterContextCancel(t *testing.T) {
	p := New[string, int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), "slow", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Do(ctx, "slow", func(context.Context) (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	// The leader's result is unaffected by the canceled waiter.
	v, err := p.Do(context.Background(), "slow", nil) // memoized: fn unused
	if err != nil || v != 1 {
		t.Fatalf("leader result = %d, %v", v, err)
	}
}

// TestSingleflightProperty is the ISSUE's dedup property test: N
// goroutines requesting overlapping key sets receive pointer-identical
// results, and the underlying work executes exactly once per distinct
// key. testing/quick drives the shape (worker count, goroutine count,
// and each goroutine's key set).
func TestSingleflightProperty(t *testing.T) {
	type result struct{ key uint8 }

	prop := func(workers uint8, keySets [][]uint8) bool {
		p := New[uint8, *result](int(workers%8) + 1)
		var execs [256]atomic.Int32

		got := make([][]*result, len(keySets))
		var wg sync.WaitGroup
		for g, keys := range keySets {
			g, keys := g, keys
			got[g] = make([]*result, len(keys))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, k := range keys {
					v, err := p.Do(context.Background(), k, func(context.Context) (*result, error) {
						execs[k].Add(1)
						time.Sleep(time.Duration(k%3) * 100 * time.Microsecond)
						return &result{key: k}, nil
					})
					if err != nil {
						t.Errorf("Do(%d): %v", k, err)
						return
					}
					got[g][i] = v
				}
			}()
		}
		wg.Wait()

		// Exactly one execution per distinct requested key.
		requested := map[uint8]bool{}
		for _, keys := range keySets {
			for _, k := range keys {
				requested[k] = true
			}
		}
		for k := range requested {
			if n := execs[k].Load(); n != 1 {
				t.Errorf("key %d executed %d times, want exactly 1", k, n)
				return false
			}
		}
		// Pointer-identical results for every request of the same key.
		canonical := map[uint8]*result{}
		for g, keys := range keySets {
			for i, k := range keys {
				v := got[g][i]
				if v == nil || v.key != k {
					t.Errorf("goroutine %d got %+v for key %d", g, v, k)
					return false
				}
				if c, ok := canonical[k]; ok && c != v {
					t.Errorf("key %d returned two distinct pointers %p / %p", k, c, v)
					return false
				}
				canonical[k] = v
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
