// Package ir is a small loop-nest intermediate representation for the
// PolyBench-style kernels the paper evaluates: perfectly or imperfectly
// nested counted loops over multi-dimensional float32 arrays with affine
// subscripts, plus data-dependent conditionals.
//
// The kernels are authored in this IR; internal/compile lowers it to
// ARMlet and applies the paper's code transformations (vectorization,
// prefetch insertion, branch removal, alignment) on it. The package also
// contains a reference evaluator (eval.go) that executes the IR directly
// on float32 data — the oracle against which compiled code is checked.
package ir

import "fmt"

// Array is a float32 array in the kernel's data segment.
type Array struct {
	Name string
	Dims []int
	// Init gives the element value at idx before the kernel runs
	// (PolyBench-style deterministic initialization). nil means zero.
	Init func(idx []int) float32
	// Base is the byte address assigned by Layout.
	Base uint32
	// Out marks arrays whose final contents are the kernel's result
	// (used by validation and result hashing).
	Out bool
}

// Elems is the total element count.
func (a *Array) Elems() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Strides returns the row-major element stride of each dimension.
func (a *Array) Strides() []int {
	s := make([]int, len(a.Dims))
	st := 1
	for d := len(a.Dims) - 1; d >= 0; d-- {
		s[d] = st
		st *= a.Dims[d]
	}
	return s
}

// Param is a scalar float32 kernel parameter (alpha, beta, ...).
type Param struct {
	Name  string
	Value float32
}

// Term is one coefficient*variable product of an affine expression.
type Term struct {
	Var  string
	Coef int
}

// Aff is an affine integer expression: Const + sum(Coef*Var).
type Aff struct {
	Const int
	Terms []Term
}

// C makes a constant affine expression.
func C(c int) Aff { return Aff{Const: c} }

// V makes a single-variable affine expression.
func V(v string) Aff { return Aff{Terms: []Term{{Var: v, Coef: 1}}} }

// VC makes coef*v + c.
func VC(v string, coef, c int) Aff { return Aff{Const: c, Terms: []Term{{Var: v, Coef: coef}}} }

// Plus returns a + b.
func (a Aff) Plus(b Aff) Aff {
	out := Aff{Const: a.Const + b.Const}
	out.Terms = append(out.Terms, a.Terms...)
	out.Terms = append(out.Terms, b.Terms...)
	return out.normalize()
}

// AddConst returns a + c.
func (a Aff) AddConst(c int) Aff {
	a.Const += c
	return a
}

func (a Aff) normalize() Aff {
	coef := map[string]int{}
	order := []string{}
	for _, t := range a.Terms {
		if _, seen := coef[t.Var]; !seen {
			order = append(order, t.Var)
		}
		coef[t.Var] += t.Coef
	}
	out := Aff{Const: a.Const}
	for _, v := range order {
		if coef[v] != 0 {
			out.Terms = append(out.Terms, Term{Var: v, Coef: coef[v]})
		}
	}
	return out
}

// CoefOf returns the coefficient of var v (0 if absent).
func (a Aff) CoefOf(v string) int {
	c := 0
	for _, t := range a.Terms {
		if t.Var == v {
			c += t.Coef
		}
	}
	return c
}

// UsesVar reports whether v appears with a nonzero coefficient.
func (a Aff) UsesVar(v string) bool { return a.CoefOf(v) != 0 }

func (a Aff) String() string {
	s := ""
	for _, t := range a.Terms {
		if s != "" {
			s += "+"
		}
		if t.Coef == 1 {
			s += t.Var
		} else {
			s += fmt.Sprintf("%d*%s", t.Coef, t.Var)
		}
	}
	if a.Const != 0 || s == "" {
		if s != "" {
			s += fmt.Sprintf("%+d", a.Const)
		} else {
			s = fmt.Sprintf("%d", a.Const)
		}
	}
	return s
}

// Bound is a loop bound: Const, or Const + Var (an enclosing loop
// variable), covering PolyBench's rectangular and triangular loops.
type Bound struct {
	Const int
	Var   string // "" for a constant bound
}

// BC makes a constant bound.
func BC(c int) Bound { return Bound{Const: c} }

// BV makes the bound var+c.
func BV(v string, c int) Bound { return Bound{Const: c, Var: v} }

func (b Bound) String() string {
	if b.Var == "" {
		return fmt.Sprintf("%d", b.Const)
	}
	if b.Const == 0 {
		return b.Var
	}
	return fmt.Sprintf("%s%+d", b.Var, b.Const)
}

// ---- Expressions ----

// Expr is a float32-valued expression.
type Expr interface{ exprNode() }

// ConstF is a float32 literal.
type ConstF struct{ V float32 }

// ParamRef reads a scalar kernel parameter.
type ParamRef struct{ Name string }

// Load reads Arr[Idx...].
type Load struct {
	Arr *Array
	Idx []Aff
}

// BinOp is a binary float operation.
type BinOp uint8

// Binary operations.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Min
	Max
)

var binNames = [...]string{"+", "-", "*", "/", "min", "max"}

func (o BinOp) String() string { return binNames[o] }

// Bin applies Op to L and R.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// CmpOp is a float comparison.
type CmpOp uint8

// Comparison operations.
const (
	LT CmpOp = iota
	LE
	EQ
)

var cmpNames = [...]string{"<", "<=", "=="}

func (o CmpOp) String() string { return cmpNames[o] }

// Cond is a boolean condition over float expressions.
type Cond struct {
	Op   CmpOp
	L, R Expr
}

// Ternary is Cond ? Then : Else — the branchless (predicated) form the
// Branchless pass produces from an If.
type Ternary struct {
	Cond       Cond
	Then, Else Expr
}

func (ConstF) exprNode()   {}
func (ParamRef) exprNode() {}
func (Load) exprNode()     {}
func (Bin) exprNode()      {}
func (Ternary) exprNode()  {}

// ---- Statements ----

// Stmt is a kernel statement.
type Stmt interface{ stmtNode() }

// Assign stores RHS into Arr[Idx...].
type Assign struct {
	Arr *Array
	Idx []Aff
	RHS Expr
}

// Loop is a counted loop: for Var = Lo; Var < Hi; Var += Step.
type Loop struct {
	Var    string
	Lo, Hi Bound
	// Step is 1 unless a transformation rewrote the loop.
	Step int
	Body []Stmt
	// Vectorizable is the kernel author's pragma ("we identify the
	// critical data and loops and vectorize them", paper §V); the
	// vectorizer still verifies legality before honoring it.
	Vectorizable bool
	// IVDep additionally asserts, on the author's authority (the moral
	// equivalent of #pragma ivdep), that cross-statement array aliases
	// in this loop carry no lane-order dependence, letting the
	// vectorizer skip its conservative alias rejection. Floyd-Warshall
	// and triangular solves need it.
	IVDep bool
	// InterchangeOK marks a loop whose single directly nested loop may
	// be legally interchanged with it (author pragma; the interchange
	// pass also checks the structural conditions). Used to turn
	// column-walk nests into vectorizable row walks — the "systematic
	// approach" the paper's §V leaves as future work.
	InterchangeOK bool
}

// If executes Then or Else depending on Cond (data-dependent control
// flow; the Branchless pass removes these in innermost loops).
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// Prefetch is a software-prefetch hint for the line holding Arr[Idx...];
// it has no functional semantics. Inserted by the prefetch pass.
type Prefetch struct {
	Arr *Array
	Idx []Aff
}

func (Assign) stmtNode()   {}
func (Loop) stmtNode()     {}
func (If) stmtNode()       {}
func (Prefetch) stmtNode() {}

// Kernel is one benchmark: arrays, scalar parameters, and a loop nest.
type Kernel struct {
	Name   string
	Arrays []*Array
	Params []Param
	Body   []Stmt
}

// Array returns the kernel array named name, or nil.
func (k *Kernel) Array(name string) *Array {
	for _, a := range k.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Param returns the value of the named scalar parameter.
func (k *Kernel) Param(name string) (float32, bool) {
	for _, p := range k.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// StepOf returns the loop step (1 for the zero value).
func (l *Loop) StepOf() int {
	if l.Step == 0 {
		return 1
	}
	return l.Step
}
