package ir

import "fmt"

// LayoutOptions control data-segment placement.
type LayoutOptions struct {
	// Align aligns every array base to AlignBytes (the cache line) — the
	// "alignment of loops, jumps, pointers" part of the paper's §V
	// optimizations. When false, arrays are packed with a small skew
	// that leaves most bases misaligned with respect to cache lines,
	// like ordinary malloc'd data.
	Align      bool
	AlignBytes int
	// SkewBytes is the deliberate misalignment applied between arrays
	// when Align is false (default 4: word- but not line-aligned).
	SkewBytes int
}

// DefaultLayoutOptions matches an unoptimized build.
func DefaultLayoutOptions() LayoutOptions {
	return LayoutOptions{Align: false, AlignBytes: 64, SkewBytes: 4}
}

// Layout assigns Base addresses to every array of k and returns the total
// data-segment size in bytes.
func Layout(k *Kernel, opt LayoutOptions) int {
	if opt.AlignBytes <= 0 {
		opt.AlignBytes = 64
	}
	if opt.SkewBytes <= 0 {
		opt.SkewBytes = 4
	}
	addr := 0
	for _, a := range k.Arrays {
		if opt.Align {
			addr = roundUp(addr, opt.AlignBytes)
		} else {
			// Pack with a skew so bases are word-aligned but usually not
			// line-aligned: vector accesses then straddle lines.
			addr = roundUp(addr, 4) + opt.SkewBytes
		}
		a.Base = uint32(addr)
		addr += a.Elems() * 4
	}
	return roundUp(addr, opt.AlignBytes)
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }

// InitData writes every array's initial contents into data (the start of
// the functional memory image), which must be at least Layout()'s size.
func InitData(k *Kernel, data []byte) error {
	for _, a := range k.Arrays {
		if int(a.Base)+a.Elems()*4 > len(data) {
			return fmt.Errorf("ir: array %s [base %d, %d elems] exceeds data segment %d", a.Name, a.Base, a.Elems(), len(data))
		}
		if a.Init == nil {
			continue
		}
		idx := make([]int, len(a.Dims))
		for e := 0; e < a.Elems(); e++ {
			linearToIdx(e, a.Dims, idx)
			putF32(data[a.Base+uint32(4*e):], a.Init(idx))
		}
	}
	return nil
}

// ReadArray extracts the named array's contents from a memory image.
func ReadArray(a *Array, data []byte) []float32 {
	out := make([]float32, a.Elems())
	for e := range out {
		out[e] = getF32(data[a.Base+uint32(4*e):])
	}
	return out
}

func linearToIdx(e int, dims, idx []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		idx[d] = e % dims[d]
		e /= dims[d]
	}
}
