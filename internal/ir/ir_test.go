package ir

import (
	"testing"
	"testing/quick"
)

func TestAffAlgebra(t *testing.T) {
	a := V("i").Plus(VC("j", 2, 3)) // i + 2j + 3
	if a.Const != 3 || a.CoefOf("i") != 1 || a.CoefOf("j") != 2 {
		t.Errorf("aff = %+v", a)
	}
	b := a.Plus(VC("i", -1, 0)) // 2j + 3: i cancels
	if b.UsesVar("i") {
		t.Errorf("i should cancel: %+v", b)
	}
	if b.CoefOf("j") != 2 || b.Const != 3 {
		t.Errorf("b = %+v", b)
	}
	c := C(5).AddConst(-2)
	if c.Const != 3 || len(c.Terms) != 0 {
		t.Errorf("c = %+v", c)
	}
}

func TestAffString(t *testing.T) {
	cases := []struct {
		a    Aff
		want string
	}{
		{C(0), "0"},
		{C(-4), "-4"},
		{V("i"), "i"},
		{VC("i", 2, 0), "2*i"},
		{VC("i", 1, 3), "i+3"},
		{V("i").Plus(V("j")).AddConst(-1), "i+j-1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestAffNormalizeProperty(t *testing.T) {
	f := func(c1, c2 int8, k int8) bool {
		a := VC("i", int(c1), 0).Plus(VC("i", int(c2), int(k)))
		return a.CoefOf("i") == int(c1)+int(c2) && a.Const == int(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundString(t *testing.T) {
	if BC(7).String() != "7" || BV("i", 0).String() != "i" || BV("i", 1).String() != "i+1" || BV("i", -1).String() != "i-1" {
		t.Error("bound strings wrong")
	}
}

func TestArrayGeometry(t *testing.T) {
	a := &Array{Name: "A", Dims: []int{3, 4, 5}}
	if a.Elems() != 60 {
		t.Errorf("elems = %d", a.Elems())
	}
	s := a.Strides()
	if s[0] != 20 || s[1] != 5 || s[2] != 1 {
		t.Errorf("strides = %v", s)
	}
}

func TestLayoutAlignment(t *testing.T) {
	mk := func() *Kernel {
		return &Kernel{Name: "t", Arrays: []*Array{
			{Name: "a", Dims: []int{3}},
			{Name: "b", Dims: []int{5}},
			{Name: "c", Dims: []int{100}},
		}}
	}
	aligned := mk()
	Layout(aligned, LayoutOptions{Align: true, AlignBytes: 64})
	for _, arr := range aligned.Arrays {
		if arr.Base%64 != 0 {
			t.Errorf("aligned array %s at %d", arr.Name, arr.Base)
		}
	}
	packed := mk()
	Layout(packed, DefaultLayoutOptions())
	misaligned := 0
	for _, arr := range packed.Arrays {
		if arr.Base%4 != 0 {
			t.Errorf("packed array %s not word-aligned: %d", arr.Name, arr.Base)
		}
		if arr.Base%64 != 0 {
			misaligned++
		}
	}
	if misaligned == 0 {
		t.Error("default layout should skew arrays off line boundaries")
	}
	// Arrays never overlap.
	for _, k := range []*Kernel{aligned, packed} {
		for i, a := range k.Arrays {
			for _, b := range k.Arrays[i+1:] {
				aEnd := a.Base + uint32(4*a.Elems())
				bEnd := b.Base + uint32(4*b.Elems())
				if a.Base < bEnd && b.Base < aEnd {
					t.Errorf("arrays %s and %s overlap", a.Name, b.Name)
				}
			}
		}
	}
}

func TestInitDataAndReadArray(t *testing.T) {
	a := &Array{Name: "a", Dims: []int{2, 3}, Init: func(idx []int) float32 {
		return float32(10*idx[0] + idx[1])
	}}
	k := &Kernel{Name: "t", Arrays: []*Array{a}}
	size := Layout(k, DefaultLayoutOptions())
	data := make([]byte, size)
	if err := InitData(k, data); err != nil {
		t.Fatal(err)
	}
	got := ReadArray(a, data)
	want := []float32{0, 1, 2, 10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("elem %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestInitDataTooSmall(t *testing.T) {
	a := &Array{Name: "a", Dims: []int{100}, Init: func([]int) float32 { return 1 }}
	k := &Kernel{Name: "t", Arrays: []*Array{a}}
	Layout(k, DefaultLayoutOptions())
	if err := InitData(k, make([]byte, 10)); err == nil {
		t.Error("undersized data segment must fail")
	}
}

// buildSums makes: for i in [0,n): out[i] = a[i] + b[i]*scale.
func buildSums(n int) *Kernel {
	a := &Array{Name: "a", Dims: []int{n}, Init: func(i []int) float32 { return float32(i[0]) }}
	b := &Array{Name: "b", Dims: []int{n}, Init: func(i []int) float32 { return 2 }}
	out := &Array{Name: "out", Dims: []int{n}, Out: true}
	return &Kernel{
		Name:   "sums",
		Arrays: []*Array{a, b, out},
		Params: []Param{{Name: "scale", Value: 3}},
		Body: []Stmt{
			Loop{Var: "i", Lo: BC(0), Hi: BC(n), Body: []Stmt{
				Assign{Arr: out, Idx: []Aff{V("i")}, RHS: Bin{Op: Add,
					L: Load{Arr: a, Idx: []Aff{V("i")}},
					R: Bin{Op: Mul, L: Load{Arr: b, Idx: []Aff{V("i")}}, R: ParamRef{Name: "scale"}}}},
			}},
		},
	}
}

func TestEvaluatorBasicKernel(t *testing.T) {
	data, k, err := Reference(buildSums(10), DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := ReadArray(k.Array("out"), data)
	for i := range out {
		if want := float32(i) + 6; out[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want)
		}
	}
}

func TestEvaluatorTriangularAndBounds(t *testing.T) {
	n := 6
	a := &Array{Name: "a", Dims: []int{n, n}}
	k := &Kernel{Name: "tri", Arrays: []*Array{a}, Body: []Stmt{
		Loop{Var: "i", Lo: BC(0), Hi: BC(n), Body: []Stmt{
			Loop{Var: "j", Lo: BC(0), Hi: BV("i", 1), Body: []Stmt{ // j <= i
				Assign{Arr: a, Idx: []Aff{V("i"), V("j")}, RHS: ConstF{V: 1}},
			}},
		}},
	}}
	data, k2, err := Reference(k, DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := ReadArray(k2.Array("a"), data)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := float32(0)
			if j <= i {
				want = 1
			}
			if got[i*n+j] != want {
				t.Errorf("a[%d][%d] = %g, want %g", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestEvaluatorIfAndTernary(t *testing.T) {
	n := 8
	a := &Array{Name: "a", Dims: []int{n}, Init: func(i []int) float32 { return float32(i[0]) - 4 }}
	viaIf := &Array{Name: "vi", Dims: []int{n}, Out: true}
	viaTern := &Array{Name: "vt", Dims: []int{n}, Out: true}
	k := &Kernel{Name: "relu", Arrays: []*Array{a, viaIf, viaTern}, Body: []Stmt{
		Loop{Var: "i", Lo: BC(0), Hi: BC(n), Body: []Stmt{
			If{
				Cond: Cond{Op: LT, L: Load{Arr: a, Idx: []Aff{V("i")}}, R: ConstF{V: 0}},
				Then: []Stmt{Assign{Arr: viaIf, Idx: []Aff{V("i")}, RHS: ConstF{V: 0}}},
				Else: []Stmt{Assign{Arr: viaIf, Idx: []Aff{V("i")}, RHS: Load{Arr: a, Idx: []Aff{V("i")}}}},
			},
			Assign{Arr: viaTern, Idx: []Aff{V("i")}, RHS: Ternary{
				Cond: Cond{Op: LT, L: Load{Arr: a, Idx: []Aff{V("i")}}, R: ConstF{V: 0}},
				Then: ConstF{V: 0},
				Else: Load{Arr: a, Idx: []Aff{V("i")}},
			}},
		}},
	}}
	data, k2, err := Reference(k, DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	gi := ReadArray(k2.Array("vi"), data)
	gt := ReadArray(k2.Array("vt"), data)
	for i := 0; i < n; i++ {
		want := float32(i) - 4
		if want < 0 {
			want = 0
		}
		if gi[i] != want || gt[i] != want {
			t.Errorf("relu[%d]: if=%g ternary=%g want %g", i, gi[i], gt[i], want)
		}
	}
}

func TestEvaluatorMinMaxDiv(t *testing.T) {
	out := &Array{Name: "o", Dims: []int{3}, Out: true}
	k := &Kernel{Name: "mm", Arrays: []*Array{out}, Body: []Stmt{
		Assign{Arr: out, Idx: []Aff{C(0)}, RHS: Bin{Op: Min, L: ConstF{V: 2}, R: ConstF{V: -3}}},
		Assign{Arr: out, Idx: []Aff{C(1)}, RHS: Bin{Op: Max, L: ConstF{V: 2}, R: ConstF{V: -3}}},
		Assign{Arr: out, Idx: []Aff{C(2)}, RHS: Bin{Op: Div, L: ConstF{V: 7}, R: ConstF{V: 2}}},
	}}
	data, k2, err := Reference(k, DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := ReadArray(k2.Array("o"), data)
	if got[0] != -3 || got[1] != 2 || got[2] != 3.5 {
		t.Errorf("got %v", got)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	n := 4
	a := &Array{Name: "a", Dims: []int{n}}
	oob := &Kernel{Name: "oob", Arrays: []*Array{a}, Body: []Stmt{
		Assign{Arr: a, Idx: []Aff{C(n)}, RHS: ConstF{V: 1}},
	}}
	if _, _, err := Reference(oob, DefaultLayoutOptions()); err == nil {
		t.Error("out-of-bounds subscript must fail")
	}
	unknownVar := &Kernel{Name: "uv", Arrays: []*Array{a}, Body: []Stmt{
		Assign{Arr: a, Idx: []Aff{V("q")}, RHS: ConstF{V: 1}},
	}}
	if _, _, err := Reference(unknownVar, DefaultLayoutOptions()); err == nil {
		t.Error("unknown loop var must fail")
	}
	unknownParam := &Kernel{Name: "up", Arrays: []*Array{a}, Body: []Stmt{
		Assign{Arr: a, Idx: []Aff{C(0)}, RHS: ParamRef{Name: "nope"}},
	}}
	if _, _, err := Reference(unknownParam, DefaultLayoutOptions()); err == nil {
		t.Error("unknown param must fail")
	}
	badDims := &Kernel{Name: "bd", Arrays: []*Array{a}, Body: []Stmt{
		Assign{Arr: a, Idx: []Aff{C(0), C(0)}, RHS: ConstF{V: 1}},
	}}
	if _, _, err := Reference(badDims, DefaultLayoutOptions()); err == nil {
		t.Error("wrong subscript count must fail")
	}
	badStep := &Kernel{Name: "bs", Arrays: []*Array{a}, Body: []Stmt{
		Loop{Var: "i", Lo: BC(0), Hi: BC(4), Step: -1, Body: []Stmt{
			Assign{Arr: a, Idx: []Aff{V("i")}, RHS: ConstF{V: 1}},
		}},
	}}
	if _, _, err := Reference(badStep, DefaultLayoutOptions()); err == nil {
		t.Error("non-positive step must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	k := buildSums(5)
	Layout(k, LayoutOptions{Align: true, AlignBytes: 64})
	basesBefore := map[string]uint32{}
	for _, a := range k.Arrays {
		basesBefore[a.Name] = a.Base
	}
	c := k.Clone()
	// Re-layout the clone with the skewed policy: the original must not move.
	Layout(c, DefaultLayoutOptions())
	for _, a := range k.Arrays {
		if a.Base != basesBefore[a.Name] {
			t.Errorf("original array %s moved after clone layout", a.Name)
		}
	}
	// The clone's loads point at the clone's arrays, not the original's.
	lp := c.Body[0].(Loop)
	as := lp.Body[0].(Assign)
	if as.Arr == k.Array("out") {
		t.Error("clone shares array pointers with the original")
	}
	if as.Arr != c.Array("out") {
		t.Error("clone's statements must reference the clone's arrays")
	}
	// Mutating the clone's tree must not affect the original.
	lp.Body[0] = Assign{Arr: c.Array("out"), Idx: []Aff{C(0)}, RHS: ConstF{V: 9}}
	orig := k.Body[0].(Loop).Body[0].(Assign)
	if _, isConst := orig.RHS.(ConstF); isConst {
		t.Error("mutating clone body leaked into the original")
	}
}

func TestKernelLookups(t *testing.T) {
	k := buildSums(3)
	if k.Array("b") == nil || k.Array("nope") != nil {
		t.Error("Array lookup wrong")
	}
	if v, ok := k.Param("scale"); !ok || v != 3 {
		t.Error("Param lookup wrong")
	}
	if _, ok := k.Param("nope"); ok {
		t.Error("missing param must report !ok")
	}
}

func TestLoopStepDefault(t *testing.T) {
	l := Loop{}
	if l.StepOf() != 1 {
		t.Error("zero step must default to 1")
	}
	l.Step = 4
	if l.StepOf() != 4 {
		t.Error("explicit step")
	}
}
