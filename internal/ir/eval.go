package ir

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Evaluator executes a kernel directly on a flat float32 memory image,
// with the exact statement order the IR specifies. It is the semantic
// oracle: compiled ARMlet code (at any optimization level) must produce
// the same array contents, up to floating-point reassociation introduced
// by vectorized reductions.
type Evaluator struct {
	k    *Kernel
	data []byte
	vars map[string]int
}

// NewEvaluator prepares an evaluator over a data image laid out by
// Layout and filled by InitData.
func NewEvaluator(k *Kernel, data []byte) *Evaluator {
	return &Evaluator{k: k, data: data, vars: make(map[string]int, 8)}
}

// Run executes the kernel body.
func (ev *Evaluator) Run() error { return ev.stmts(ev.k.Body) }

func (ev *Evaluator) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := ev.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ev *Evaluator) stmt(s Stmt) error {
	switch st := s.(type) {
	case Assign:
		v, err := ev.expr(st.RHS)
		if err != nil {
			return err
		}
		off, err := ev.elemOffset(st.Arr, st.Idx)
		if err != nil {
			return err
		}
		putF32(ev.data[off:], v)
		return nil
	case Loop:
		lo, err := ev.bound(st.Lo)
		if err != nil {
			return err
		}
		hi, err := ev.bound(st.Hi)
		if err != nil {
			return err
		}
		step := st.StepOf()
		if step <= 0 {
			return fmt.Errorf("ir: loop %s has non-positive step %d", st.Var, step)
		}
		saved, had := ev.vars[st.Var]
		for v := lo; v < hi; v += step {
			ev.vars[st.Var] = v
			if err := ev.stmts(st.Body); err != nil {
				return err
			}
		}
		if had {
			ev.vars[st.Var] = saved
		} else {
			delete(ev.vars, st.Var)
		}
		return nil
	case If:
		c, err := ev.cond(st.Cond)
		if err != nil {
			return err
		}
		if c {
			return ev.stmts(st.Then)
		}
		return ev.stmts(st.Else)
	case Prefetch:
		return nil // hints have no semantics
	default:
		return fmt.Errorf("ir: unknown statement %T", s)
	}
}

func (ev *Evaluator) expr(e Expr) (float32, error) {
	switch ex := e.(type) {
	case ConstF:
		return ex.V, nil
	case ParamRef:
		v, ok := ev.k.Param(ex.Name)
		if !ok {
			return 0, fmt.Errorf("ir: unknown parameter %q", ex.Name)
		}
		return v, nil
	case Load:
		off, err := ev.elemOffset(ex.Arr, ex.Idx)
		if err != nil {
			return 0, err
		}
		return getF32(ev.data[off:]), nil
	case Bin:
		l, err := ev.expr(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := ev.expr(ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case Add:
			return l + r, nil
		case Sub:
			return l - r, nil
		case Mul:
			return l * r, nil
		case Div:
			return l / r, nil
		case Min:
			if l < r {
				return l, nil
			}
			return r, nil
		case Max:
			if l > r {
				return l, nil
			}
			return r, nil
		}
		return 0, fmt.Errorf("ir: unknown binop %d", ex.Op)
	case Ternary:
		c, err := ev.cond(ex.Cond)
		if err != nil {
			return 0, err
		}
		// Predicated semantics: both arms evaluate (like the generated
		// select code), the condition picks the result.
		t, err := ev.expr(ex.Then)
		if err != nil {
			return 0, err
		}
		f, err := ev.expr(ex.Else)
		if err != nil {
			return 0, err
		}
		if c {
			return t, nil
		}
		return f, nil
	default:
		return 0, fmt.Errorf("ir: unknown expression %T", e)
	}
}

func (ev *Evaluator) cond(c Cond) (bool, error) {
	l, err := ev.expr(c.L)
	if err != nil {
		return false, err
	}
	r, err := ev.expr(c.R)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case LT:
		return l < r, nil
	case LE:
		return l <= r, nil
	case EQ:
		return l == r, nil
	}
	return false, fmt.Errorf("ir: unknown cmpop %d", c.Op)
}

func (ev *Evaluator) bound(b Bound) (int, error) {
	if b.Var == "" {
		return b.Const, nil
	}
	v, ok := ev.vars[b.Var]
	if !ok {
		return 0, fmt.Errorf("ir: bound references unknown loop var %q", b.Var)
	}
	return v + b.Const, nil
}

// AffValue evaluates an affine expression under the current loop vars.
func (ev *Evaluator) affValue(a Aff) (int, error) {
	v := a.Const
	for _, t := range a.Terms {
		val, ok := ev.vars[t.Var]
		if !ok {
			return 0, fmt.Errorf("ir: subscript references unknown loop var %q", t.Var)
		}
		v += t.Coef * val
	}
	return v, nil
}

func (ev *Evaluator) elemOffset(a *Array, idx []Aff) (uint32, error) {
	if len(idx) != len(a.Dims) {
		return 0, fmt.Errorf("ir: array %s indexed with %d subscripts, has %d dims", a.Name, len(idx), len(a.Dims))
	}
	strides := a.Strides()
	elem := 0
	for d, ix := range idx {
		v, err := ev.affValue(ix)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= a.Dims[d] {
			return 0, fmt.Errorf("ir: array %s dim %d index %d out of [0,%d)", a.Name, d, v, a.Dims[d])
		}
		elem += v * strides[d]
	}
	off := a.Base + uint32(4*elem)
	if int(off)+4 > len(ev.data) {
		return 0, fmt.Errorf("ir: array %s access at %d beyond data segment %d", a.Name, off, len(ev.data))
	}
	return off, nil
}

func putF32(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }
func getF32(b []byte) float32    { return math.Float32frombits(binary.LittleEndian.Uint32(b)) }

// Reference clones k, lays the clone out with the given options,
// initializes it, evaluates the kernel, and returns the data image
// together with the laid-out clone (whose array bases locate results in
// the image) — a one-call oracle for tests. The argument is never
// mutated.
func Reference(k *Kernel, opt LayoutOptions) ([]byte, *Kernel, error) {
	k = k.Clone()
	size := Layout(k, opt)
	data := make([]byte, size)
	if err := InitData(k, data); err != nil {
		return nil, nil, err
	}
	if err := NewEvaluator(k, data).Run(); err != nil {
		return nil, nil, err
	}
	return data, k, nil
}
