package ir

// Clone deep-copies the kernel: arrays (with fresh Base fields) and the
// statement tree, with every Load/Assign re-pointed at the cloned arrays.
// Compilation mutates both (layout assigns bases, passes rewrite the
// tree), so each compile works on its own clone and kernel definitions
// stay immutable.
func (k *Kernel) Clone() *Kernel {
	out := &Kernel{Name: k.Name}
	amap := make(map[*Array]*Array, len(k.Arrays))
	for _, a := range k.Arrays {
		na := &Array{Name: a.Name, Dims: append([]int(nil), a.Dims...), Init: a.Init, Out: a.Out}
		amap[a] = na
		out.Arrays = append(out.Arrays, na)
	}
	out.Params = append([]Param(nil), k.Params...)
	out.Body = cloneStmts(k.Body, amap)
	return out
}

func cloneStmts(ss []Stmt, amap map[*Array]*Array) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = cloneStmt(s, amap)
	}
	return out
}

func cloneStmt(s Stmt, amap map[*Array]*Array) Stmt {
	switch st := s.(type) {
	case Assign:
		return Assign{Arr: amap[st.Arr], Idx: cloneAffs(st.Idx), RHS: cloneExpr(st.RHS, amap)}
	case Loop:
		return Loop{
			Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step,
			Body:          cloneStmts(st.Body, amap),
			Vectorizable:  st.Vectorizable,
			IVDep:         st.IVDep,
			InterchangeOK: st.InterchangeOK,
		}
	case If:
		return If{
			Cond: cloneCond(st.Cond, amap),
			Then: cloneStmts(st.Then, amap),
			Else: cloneStmts(st.Else, amap),
		}
	case Prefetch:
		return Prefetch{Arr: amap[st.Arr], Idx: cloneAffs(st.Idx)}
	default:
		panic("ir: cloneStmt: unknown statement type")
	}
}

func cloneExpr(e Expr, amap map[*Array]*Array) Expr {
	switch ex := e.(type) {
	case ConstF, ParamRef:
		return ex
	case Load:
		return Load{Arr: amap[ex.Arr], Idx: cloneAffs(ex.Idx)}
	case Bin:
		return Bin{Op: ex.Op, L: cloneExpr(ex.L, amap), R: cloneExpr(ex.R, amap)}
	case Ternary:
		return Ternary{
			Cond: cloneCond(ex.Cond, amap),
			Then: cloneExpr(ex.Then, amap),
			Else: cloneExpr(ex.Else, amap),
		}
	default:
		panic("ir: cloneExpr: unknown expression type")
	}
}

func cloneCond(c Cond, amap map[*Array]*Array) Cond {
	return Cond{Op: c.Op, L: cloneExpr(c.L, amap), R: cloneExpr(c.R, amap)}
}

func cloneAffs(as []Aff) []Aff {
	out := make([]Aff, len(as))
	for i, a := range as {
		out[i] = Aff{Const: a.Const, Terms: append([]Term(nil), a.Terms...)}
	}
	return out
}
