// Metamorphic tests for the timing model, run under the internal/check
// oracle (external test package: experiments imports sim imports check).
// Rather than pinning cycle counts, they assert relations any credible
// timing model must satisfy: checking changes nothing, slower arrays are
// never faster, latency dilation dilates stalls, and parallel execution
// is invisible.
package check_test

import (
	"bytes"
	"reflect"
	"testing"

	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// smallBenches shrinks every problem size so a matrix simulates in
// seconds (same contract as the experiments package's determinism test).
func smallBenches(t *testing.T) []polybench.Bench {
	t.Helper()
	benches := polybench.All()
	for i := range benches {
		if benches[i].Default > 20 {
			benches[i].Default = 20
		}
	}
	return benches
}

func mustBench(t *testing.T, name string) polybench.Bench {
	t.Helper()
	b, ok := polybench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b
}

// TestFig3FullMatrixChecked runs the paper's central figure — every
// benchmark at full problem size on baseline / drop-in / VWB — with the
// oracle verifying every access of every run. This is the ISSUE's
// acceptance gate for the PR.
func TestFig3FullMatrixChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("full problem sizes; skipped in -short")
	}
	s := experiments.NewSuite(nil)
	s.SetCheck(true)
	if _, err := s.Fig3(); err != nil {
		t.Fatalf("checked Fig. 3 matrix: %v", err)
	}
}

// TestCheckedRunsMatchUnchecked: the oracle is pass-through — wrapping
// every port must not move a single cycle or stat.
func TestCheckedRunsMatchUnchecked(t *testing.T) {
	for _, cfgName := range []string{"baseline", "dropin", "vwb"} {
		var cfg sim.Config
		switch cfgName {
		case "baseline":
			cfg = sim.BaselineSRAM()
		case "dropin":
			cfg = sim.DropInSTT()
		case "vwb":
			cfg = sim.ProposalVWB()
		}
		for _, bn := range []string{"atax", "gemver"} {
			b := mustBench(t, bn)
			b.Default = 20

			plain, err := sim.Run(b.Kernel(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ccfg := cfg
			ccfg.Check = true
			checked, err := sim.Run(b.Kernel(), ccfg)
			if err != nil {
				t.Fatalf("%s on %s under -check: %v", bn, cfgName, err)
			}
			if plain.CPU.Cycles != checked.CPU.Cycles {
				t.Errorf("%s on %s: %d cycles unchecked, %d checked; oracle must be pass-through",
					bn, cfgName, plain.CPU.Cycles, checked.CPU.Cycles)
			}
			if !reflect.DeepEqual(plain.DL1Stats, checked.DL1Stats) {
				t.Errorf("%s on %s: DL1 stats differ under -check", bn, cfgName)
			}
		}
	}
}

// TestReadLatencyMonotone: raising the DL1 read latency, all else equal,
// can never make a program finish earlier. The drop-in (direct
// front-end) configuration has no latency-dependent policy decisions, so
// the relation must hold exactly.
func TestReadLatencyMonotone(t *testing.T) {
	b := mustBench(t, "atax")
	b.Default = 20
	prev := int64(-1)
	for _, rl := range []int64{2, 4, 6, 8} {
		cfg := sim.DropInSTT()
		cfg.DL1ReadLat = rl
		cfg.Check = true
		r, err := sim.Run(b.Kernel(), cfg)
		if err != nil {
			t.Fatalf("ReadLat=%d: %v", rl, err)
		}
		if r.CPU.Cycles < prev {
			t.Errorf("ReadLat=%d finished in %d cycles, faster than ReadLat-2's %d", rl, r.CPU.Cycles, prev)
		}
		prev = r.CPU.Cycles
	}
}

// TestLatencyDilation: scaling both DL1 latencies by k must scale the
// memory-side stall cycles by roughly k — well above 1 (the stalls
// really dilate) and no more than k plus slack (nothing super-linear).
// Bounds are loose because overlap with compute and fixed-latency levels
// (L2, DRAM) damp the scaling.
func TestLatencyDilation(t *testing.T) {
	stalls := func(k int64, b polybench.Bench) int64 {
		cfg := sim.DropInSTT()
		cfg.DL1ReadLat, cfg.DL1WriteLat = 4*k, 2*k
		cfg.Check = true
		r, err := sim.Run(b.Kernel(), cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		return r.CPU.ReadStallCycles + r.CPU.WriteStallCycles
	}
	for _, bn := range []string{"atax", "gemm", "trisolv", "gemver"} {
		b := mustBench(t, bn)
		b.Default = 20
		base := stalls(1, b)
		if base == 0 {
			t.Fatalf("%s: no memory stalls at k=1; kernel too small to measure dilation", bn)
		}
		for _, k := range []int64{2, 3} {
			ratio := float64(stalls(k, b)) / float64(base)
			lo := 1 + 0.45*float64(k-1)
			hi := 1.1 * float64(k)
			if ratio < lo || ratio > hi {
				t.Errorf("%s: stall dilation at k=%d is %.2f, want within [%.2f, %.2f]", bn, k, ratio, lo, hi)
			}
		}
	}
}

// TestFig3DeterministicUnderParallelismChecked: with the oracle on, the
// Fig. 3 matrix is still byte-identical between -j 1 and -j 8 — checking
// perturbs neither results nor scheduling.
func TestFig3DeterministicUnderParallelismChecked(t *testing.T) {
	benches := smallBenches(t)

	serial := experiments.NewSuiteJobs(benches, 1)
	serial.SetCheck(true)
	parallel := experiments.NewSuiteJobs(benches, 8)
	parallel.SetCheck(true)

	f1, err := serial.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	f8, err := parallel.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(f1.Render()), []byte(f8.Render())) {
		t.Errorf("checked Fig. 3 differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			f1.Render(), f8.Render())
	}
	if !reflect.DeepEqual(f1.Series, f8.Series) {
		t.Error("checked Fig. 3 series differ between -j 1 and -j 8")
	}
}
