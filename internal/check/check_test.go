package check

import (
	"math/rand"
	"strings"
	"testing"

	"sttdl1/internal/cache"
	"sttdl1/internal/mem"
)

// badPort returns completions before the request time.
type badPort struct{ skew int64 }

func (b *badPort) Access(now int64, req mem.Req) int64 { return now - b.skew }

// jitterClock is a clocked port whose busy clock moves backward every
// third access.
type jitterClock struct {
	n     int
	clock int64
}

func (j *jitterClock) Access(now int64, req mem.Req) int64 {
	j.n++
	if j.n%3 == 0 {
		j.clock -= 5
	} else {
		j.clock = now + 2
	}
	return now + 1
}

func (j *jitterClock) BusyClocks() []int64 { return []int64{j.clock} }

func TestWrapIsPassThrough(t *testing.T) {
	bare := &mem.FixedPort{Latency: 7}
	wrapped := Wrap("X", &mem.FixedPort{Latency: 7})
	for now := int64(0); now < 100; now += 3 {
		req := mem.Req{Addr: mem.Addr(now) * 8, Bytes: 4, Kind: mem.Read}
		if b, w := bare.Access(now, req), wrapped.Access(now, req); b != w {
			t.Fatalf("wrapped Access(%d) = %d, bare = %d; wrapper must not change timing", now, w, b)
		}
	}
	if err := wrapped.Err(); err != nil {
		t.Fatalf("clean port reported: %v", err)
	}
}

func TestCausalityViolation(t *testing.T) {
	p := Wrap("BAD", &badPort{skew: 3})
	p.Access(10, mem.Req{Addr: 0x40, Bytes: 4, Kind: mem.Read})
	if p.Total() != 1 {
		t.Fatalf("Total = %d, want 1", p.Total())
	}
	err := p.Err()
	if err == nil || !strings.Contains(err.Error(), "causality") {
		t.Fatalf("Err = %v, want a causality violation", err)
	}
}

func TestMonotonicityViolation(t *testing.T) {
	p := Wrap("JIT", &jitterClock{})
	for now := int64(0); now < 9; now++ {
		p.Access(now, mem.Req{Addr: 0, Bytes: 1, Kind: mem.Read})
	}
	// Accesses 3, 6, 9 move the clock backward.
	if p.Total() != 3 {
		t.Fatalf("Total = %d, want 3", p.Total())
	}
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "monotonicity") {
		t.Fatalf("Err = %v, want monotonicity violations", err)
	}
}

func TestViolationRetentionBound(t *testing.T) {
	p := Wrap("BAD", &badPort{skew: 1})
	const n = 100
	for now := int64(1); now <= n; now++ {
		p.Access(now, mem.Req{Addr: 0, Bytes: 1, Kind: mem.Read})
	}
	if p.Total() != n {
		t.Fatalf("Total = %d, want %d", p.Total(), n)
	}
	if got := len(p.Violations()); got != maxRecorded {
		t.Fatalf("retained %d violations, want %d", got, maxRecorded)
	}
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "and 84 more") {
		t.Fatalf("Err = %v, want overflow note", err)
	}
}

func smallCacheCfg() cache.Config {
	// 4 sets x 2 ways: conflicts, evictions and MSHR churn come fast.
	return cache.Config{
		Name: "small", Size: 512, Assoc: 2, LineSize: 64, Banks: 2,
		ReadLat: 4, WriteLat: 2, MSHRs: 2, WriteBufDepth: 2,
	}
}

// randomStream drives n accesses of every kind, including line
// straddlers, through p, advancing time like an in-order core would.
func randomStream(rng *rand.Rand, p mem.Port, n int) int64 {
	now := int64(0)
	kinds := []mem.Kind{mem.Read, mem.Read, mem.Write, mem.Write, mem.Prefetch, mem.WriteBack}
	for i := 0; i < n; i++ {
		req := mem.Req{
			// A few KB of footprint over 4 sets: heavy conflict traffic.
			Addr:  mem.Addr(rng.Intn(4096)),
			Bytes: 1 + rng.Intn(8), // straddles a line ~9% of the time
			Kind:  kinds[rng.Intn(len(kinds))],
		}
		done := p.Access(now, req)
		if rng.Intn(4) == 0 && done > now {
			now = done // sometimes block on the access like a load-use stall
		}
		now += int64(1 + rng.Intn(3))
	}
	return now
}

// TestShadowCleanOnRandomStream pushes a hostile random mix through a
// real cache and requires the shadow model to agree at every step and in
// the final audit. A divergence here means either the cache or the
// shadow state machine is wrong.
func TestShadowCleanOnRandomStream(t *testing.T) {
	c := cache.New(smallCacheCfg(), &mem.FixedPort{Latency: 30})
	p := Wrap("DL1", c)
	randomStream(rand.New(rand.NewSource(1)), p, 5000)
	p.Audit()
	if err := p.Err(); err != nil {
		t.Fatalf("shadow diverged on random stream:\n%v", err)
	}
}

// TestShadowAdoptsWarmCache wraps a cache that already has resident
// lines; the shadow must start from the observed contents, not empty.
func TestShadowAdoptsWarmCache(t *testing.T) {
	c := cache.New(smallCacheCfg(), &mem.FixedPort{Latency: 30})
	rng := rand.New(rand.NewSource(2))
	now := randomStream(rng, c, 500) // warm unwrapped
	c.ResetTiming()

	p := Wrap("DL1", c)
	kinds := []mem.Kind{mem.Read, mem.Write}
	for i := 0; i < 1000; i++ {
		p.Access(now, mem.Req{Addr: mem.Addr(rng.Intn(4096)), Bytes: 4, Kind: kinds[i%2]})
		now += 2
	}
	p.Audit()
	if err := p.Err(); err != nil {
		t.Fatalf("shadow of a warm cache diverged:\n%v", err)
	}
}

// TestResetTimingRebaselines mirrors the simulator's warm-up →
// ResetTiming → measured-run sequence: clocks jump backward and MSHRs
// vanish at the reset, which the checker must not flag.
func TestResetTimingRebaselines(t *testing.T) {
	c := cache.New(smallCacheCfg(), &mem.FixedPort{Latency: 30})
	p := Wrap("DL1", c)
	rng := rand.New(rand.NewSource(3))
	randomStream(rng, p, 1000)

	c.ResetTiming()
	p.ResetTiming()

	randomStream(rng, p, 1000)
	p.Audit()
	if err := p.Err(); err != nil {
		t.Fatalf("violations across ResetTiming:\n%v", err)
	}
}
