// Package check implements a differential timing oracle for the memory
// hierarchy: a transparent mem.Port wrapper that verifies, on every
// access, the timing contract the simulator's conclusions rest on
// (DESIGN.md §7.2). The paper's headline numbers are cycle-count ratios,
// and NVM-cache studies are notoriously sensitive to small timing-model
// errors, so the oracle enforces three invariant families mechanically:
//
//  1. Causality — an access completes no earlier than it was issued, and
//     no access that consumes a line's data completes before the fill
//     that supplies the line.
//  2. Monotonicity — a component's internal busy-until clocks (cache
//     banks, the DRAM channel, front-end ports) never move backward
//     between timing resets.
//  3. State agreement — for caches, a simple functional shadow model
//     (set/tag contents, dirtiness, LRU order, MSHR exactly-once
//     occupancy) matches the timing model after every access.
//
// Wrapping is pass-through: the wrapped hierarchy returns exactly the
// timings the bare one would, so a checked run is bit-identical to an
// unchecked one. Violations are collected, not panicked, so a full run
// can report every distinct failure; sim.System surfaces them as an
// error after the run when Config.Check is set.
package check

import (
	"fmt"
	"strings"

	"sttdl1/internal/cache"
	"sttdl1/internal/mem"
)

// Violation is one observed breach of the timing contract.
type Violation struct {
	Port string  // component name ("DL1", "DRAM", ...)
	Time int64   // request cycle
	Req  mem.Req // the access that exposed it
	Msg  string
}

func (v Violation) Error() string {
	return fmt.Sprintf("check: %s @%d %s %#x+%d: %s", v.Port, v.Time, v.Req.Kind, v.Req.Addr, v.Req.Bytes, v.Msg)
}

// maxRecorded bounds the retained violation list; everything past it is
// only counted, so a systematically broken model cannot eat memory.
const maxRecorded = 16

// clocked is implemented by components that expose internal busy-until
// clocks (cache banks, the DRAM channel, front-end ports).
type clocked interface {
	BusyClocks() []int64
}

// Port wraps an inner mem.Port with the invariant checks that apply to
// it: causality always, monotonicity when the component exposes
// BusyClocks, shadow-state agreement when it is a *cache.Cache.
type Port struct {
	name  string
	inner mem.Port

	clocks clocked
	prev   []int64

	shadow *shadowCache

	total int
	viol  []Violation
}

// Wrap builds a checking wrapper around inner. The checks applied are
// discovered from the component's type; any mem.Port at least gets the
// causality check.
func Wrap(name string, inner mem.Port) *Port {
	p := &Port{name: name, inner: inner}
	if c, ok := inner.(clocked); ok {
		p.clocks = c
		p.prev = c.BusyClocks()
	}
	if c, ok := inner.(*cache.Cache); ok {
		p.shadow = newShadow(c)
	}
	return p
}

// Name returns the component name given to Wrap.
func (p *Port) Name() string { return p.name }

// Access implements mem.Port: it forwards to the wrapped component and
// verifies the invariants on the observed outcome.
func (p *Port) Access(now int64, req mem.Req) int64 {
	if p.shadow != nil {
		// MSHR occupancy before the access decides whether it merges
		// into an in-flight fill or allocates.
		p.shadow.snapshotPre()
	}
	done := p.inner.Access(now, req)
	if done < now {
		p.record(now, req, fmt.Sprintf("causality: completes at %d, before the request", done))
	}
	if p.clocks != nil {
		cur := p.clocks.BusyClocks()
		for i := range cur {
			if i < len(p.prev) && cur[i] < p.prev[i] {
				p.record(now, req, fmt.Sprintf("monotonicity: busy clock %d moved backward %d -> %d", i, p.prev[i], cur[i]))
			}
		}
		p.prev = cur
	}
	if p.shadow != nil {
		p.shadow.step(p, now, req, done)
	}
	return done
}

func (p *Port) record(now int64, req mem.Req, msg string) {
	p.total++
	if len(p.viol) < maxRecorded {
		p.viol = append(p.viol, Violation{Port: p.name, Time: now, Req: req, Msg: msg})
	}
}

// Violations returns the retained violations (at most maxRecorded; see
// Total for the full count).
func (p *Port) Violations() []Violation { return p.viol }

// Total returns how many violations were observed, including ones past
// the retention bound.
func (p *Port) Total() int { return p.total }

// Err returns nil if the port observed no violations, else an error
// summarizing them.
func (p *Port) Err() error {
	if p.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d timing-contract violation(s) on %s:", p.total, p.name)
	for _, v := range p.viol {
		b.WriteString("\n  ")
		b.WriteString(v.Error())
	}
	if p.total > len(p.viol) {
		fmt.Fprintf(&b, "\n  ... and %d more", p.total-len(p.viol))
	}
	return fmt.Errorf("%s", b.String())
}

// ResetTiming re-baselines the checker after the wrapped component's
// clocks were reset (warm-up → measured-run methodology): busy clocks
// restart at their current values and in-flight fill bookkeeping is
// dropped, while shadow cache contents persist like the real contents.
func (p *Port) ResetTiming() {
	if p.clocks != nil {
		p.prev = p.clocks.BusyClocks()
	}
	if p.shadow != nil {
		p.shadow.resetTiming()
	}
}

// Audit runs the full shadow-state comparison (every set, not just the
// ones the last access touched). Call it at end of run; per-access
// checks only compare the sets an access can have modified.
func (p *Port) Audit() {
	if p.shadow != nil {
		p.shadow.audit(p)
	}
}

// Errs folds the Err of every port into one error (nil if all clean).
func Errs(ports []*Port) error {
	var msgs []string
	for _, p := range ports {
		if err := p.Err(); err != nil {
			msgs = append(msgs, err.Error())
		}
	}
	if msgs == nil {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}
