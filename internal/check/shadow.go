package check

import (
	"fmt"

	"sttdl1/internal/cache"
	"sttdl1/internal/mem"
)

// shadowLine is one way of the shadow cache: full-width line address in
// place of the timing model's set/tag split, so any truncation in the
// real tag path shows up as a state disagreement.
type shadowLine struct {
	addr    mem.Addr // line-aligned byte address
	valid   bool
	dirty   bool
	lastUse uint64
}

// shadowCache is a functional re-execution of the cache's state machine:
// lookup, LRU victim choice, install, dirtiness and MSHR occupancy —
// everything except timing. After every access the touched sets are
// compared way-by-way against the timing model; any divergence means one
// of the two models mishandled the access.
type shadowCache struct {
	c        *cache.Cache
	cfg      cache.Config
	sets     [][]shadowLine
	useClock uint64

	// Way-shutdown mirror (allocated only when ShutdownInterval > 0):
	// the shadow replays the interval-boundary policy from its own
	// activity/pressure bookkeeping, so a timing-model way that gates,
	// wakes, or retains a line the policy says it must not shows up as
	// a state disagreement.
	gated     []bool
	wayActive []uint64
	pressure  uint64
	hw        int64

	// dataReady maps an in-flight (or recently filled) line to the cycle
	// its fill delivers data, learned from the MSHR the timing model
	// allocates. No data-consuming access to the line may complete
	// earlier.
	dataReady map[mem.Addr]int64

	// pre holds the MSHR view captured immediately before the wrapped
	// access, for the exactly-once occupancy check.
	pre   []cache.MSHRView
	post  []cache.MSHRView
	view  []cache.LineView
	steps uint64
}

func newShadow(c *cache.Cache) *shadowCache {
	cfg := c.Config()
	s := &shadowCache{c: c, cfg: cfg, dataReady: make(map[mem.Addr]int64)}
	s.sets = make([][]shadowLine, cfg.Sets())
	backing := make([]shadowLine, cfg.Sets()*cfg.Assoc)
	for i := range s.sets {
		s.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	if cfg.ShutdownInterval > 0 {
		s.gated = make([]bool, cfg.Assoc)
		copy(s.gated, c.GatedWays())
		s.wayActive = make([]uint64, cfg.Assoc)
	}
	// Adopt whatever the cache already holds (a checker can be attached
	// to a warm cache), including its recency numbering.
	s.useClock = c.UseClock()
	for set := range s.sets {
		for w, ln := range c.SetView(set) {
			if ln.Valid {
				s.sets[set][w] = shadowLine{addr: ln.Addr, valid: true, dirty: ln.Dirty, lastUse: ln.LastUse}
			}
		}
	}
	return s
}

func (s *shadowCache) setOf(addr mem.Addr) int {
	return int((addr / mem.Addr(s.cfg.LineSize)) & mem.Addr(s.cfg.Sets()-1))
}

func (s *shadowCache) lineOf(addr mem.Addr) mem.Addr {
	return mem.LineAddr(addr, s.cfg.LineSize)
}

// snapshotPre captures MSHR occupancy before the wrapped access runs.
// Port.Access with a shadow must call it first.
func (s *shadowCache) snapshotPre() {
	s.pre = s.c.AppendMSHRs(s.pre[:0])
}

// step mirrors one Access (after the fact) and verifies the invariants.
// done is the completion cycle the timing model reported for the whole
// request.
func (s *shadowCache) step(p *Port, now int64, req mem.Req, done int64) {
	bytes := req.Bytes
	if bytes <= 0 {
		bytes = 1
	}
	if mem.CrossesLine(req.Addr, bytes, s.cfg.LineSize) {
		first := int(s.lineOf(req.Addr)) + s.cfg.LineSize - int(req.Addr)
		s.stepOne(p, now, mem.Req{Addr: req.Addr, Bytes: first, Kind: req.Kind}, done, false)
		s.stepOne(p, now+1, mem.Req{Addr: req.Addr + mem.Addr(first), Bytes: bytes - first, Kind: req.Kind}, done, true)
	} else {
		s.stepOne(p, now, mem.Req{Addr: req.Addr, Bytes: bytes, Kind: req.Kind}, done, false)
	}
	s.steps++
	if s.steps%4096 == 0 {
		for a, r := range s.dataReady {
			if r <= now {
				delete(s.dataReady, a)
			}
		}
	}
}

func (s *shadowCache) stepOne(p *Port, now int64, req mem.Req, done int64, secondHalf bool) {
	set := s.setOf(req.Addr)
	lineAddr := s.lineOf(req.Addr)
	isWrite := req.Kind == mem.Write || req.Kind == mem.WriteBack

	if s.gated != nil {
		s.advanceShutdown(now)
	}

	// The MSHR view observable here is the state after the WHOLE access,
	// including both halves of a split.
	s.post = s.c.AppendMSHRs(s.post[:0])

	// --- Mirror the state machine.
	s.useClock++
	ways := s.sets[set]
	way := -1
	for w := range ways {
		if ways[w].valid && ways[w].addr == lineAddr {
			way = w
			break
		}
	}
	// Did this half merge into an in-flight fill? For the leading half
	// the pre-access snapshot answers exactly. The trailing half of a
	// split runs against MSHR state the leading half may have changed,
	// which we cannot observe — but the halves are different lines, so
	// the leading half can only EXPIRE an entry for this line, never
	// create one, and a fresh re-allocation always carries a strictly
	// later ready. Hence: merged iff the same (line, ready) entry exists
	// both before the access and after it.
	merged := false
	for _, m := range s.pre {
		if m.Valid && m.LineAddr == lineAddr {
			if !secondHalf {
				merged = true
				break
			}
			for _, q := range s.post {
				if q.Valid && q.LineAddr == lineAddr && q.Ready == m.Ready {
					merged = true
					break
				}
			}
			break
		}
	}
	// --- Fill-supplies-data causality: nothing that consumes or merges
	// into a line may complete before the line's fill delivers it. A
	// fresh miss is exempt — if the line was evicted while its old fill
	// was in flight, a re-miss re-fetches and owes nothing to that fill.
	if req.Kind != mem.Prefetch && (way >= 0 || merged) {
		if r, ok := s.dataReady[lineAddr]; ok {
			if r > now && done < r {
				p.record(now, req, fmt.Sprintf("causality: completes at %d but the line's fill arrives at %d", done, r))
			}
			if r <= now {
				delete(s.dataReady, lineAddr)
			}
		}
	}

	allocated := false
	switch {
	case way >= 0: // hit: recency refresh, dirty on write
		ways[way].lastUse = s.useClock
		if isWrite {
			ways[way].dirty = true
		}
		if s.wayActive != nil {
			s.wayActive[way]++
		}
	case merged: // MSHR merge: the original miss owns the install
	case req.Kind == mem.Prefetch && s.prefetchDropped(now, lineAddr, secondHalf):
		// A software prefetch with no MSHR slot free at its own
		// timestamp is dropped: no install, no allocation.
	default: // miss: LRU victim (invalid ways first), install
		lo, hi := 0, len(ways)
		if k := s.cfg.SRAMWays; k > 0 && k < len(ways) {
			// Fill steering: read-class misses into the SRAM partition,
			// write-class into the NVM partition.
			if isWrite {
				lo = k
			} else {
				hi = k
			}
		}
		v := s.victimIn(ways, lo, hi)
		if v < 0 {
			v = s.victimIn(ways, 0, len(ways))
		}
		if ways[v].valid && s.gated != nil && v >= s.cfg.SRAMWays {
			s.pressure++
		}
		ways[v] = shadowLine{addr: lineAddr, valid: true, dirty: isWrite, lastUse: s.useClock}
		if s.wayActive != nil {
			s.wayActive[v]++
		}
		allocated = true
	}

	// --- MSHR exactly-once occupancy.
	live := -1
	for i, m := range s.post {
		if !m.Valid {
			continue
		}
		if m.LineAddr == lineAddr {
			if live >= 0 {
				p.record(now, req, fmt.Sprintf("MSHR: line %#x occupies two entries", lineAddr))
			}
			live = i
		}
	}
	if allocated {
		if live < 0 {
			p.record(now, req, "MSHR: demand miss did not allocate an entry")
		} else {
			r := s.post[live].Ready
			if r <= now {
				p.record(now, req, fmt.Sprintf("MSHR: fresh entry ready at %d, not after the miss at %d", r, now))
			}
			s.dataReady[lineAddr] = r
		}
	} else if live >= 0 && !merged {
		// The line was resident with no fill in flight; a new entry for
		// it means the miss path ran against a present line.
		p.record(now, req, fmt.Sprintf("MSHR: line %#x allocated while resident", lineAddr))
	}
	s.compareSet(p, now, req, set)
	if s.gated != nil {
		for w, g := range s.c.GatedWays() {
			if g != s.gated[w] {
				p.record(now, req, fmt.Sprintf("shutdown: way %d gated=%t, shadow says %t", w, g, s.gated[w]))
			}
		}
	}
}

// victimIn mirrors Cache.victimWayIn: first invalid un-gated way of
// [lo, hi), else the un-gated LRU, else -1.
func (s *shadowCache) victimIn(ways []shadowLine, lo, hi int) int {
	best := -1
	for w := lo; w < hi; w++ {
		if s.gated != nil && s.gated[w] {
			continue
		}
		if !ways[w].valid {
			return w
		}
		if best < 0 || ways[w].lastUse < ways[best].lastUse {
			best = w
		}
	}
	return best
}

// prefetchDropped decides whether a missing, un-merged prefetch was
// dropped for want of an MSHR. For the leading half the pre-access
// snapshot answers exactly (mirroring Cache.mshrFreeAt). The trailing
// half of a split runs against MSHR state the leading half may have
// changed, which we cannot observe — there the post state answers: an
// installed prefetch always leaves an MSHR entry for its line, a
// dropped one never does. (The core only issues word-sized prefetches,
// so the weaker trailing-half form is exercised only by synthetic
// streams.)
func (s *shadowCache) prefetchDropped(now int64, lineAddr mem.Addr, secondHalf bool) bool {
	if secondHalf {
		for _, q := range s.post {
			if q.Valid && q.LineAddr == lineAddr {
				return false
			}
		}
		return true
	}
	for _, m := range s.pre {
		if !m.Valid || m.Ready <= now {
			return false
		}
	}
	return true
}

// advanceShutdown mirrors Cache.advanceShutdown/intervalBoundary: on a
// fresh interval boundary at or before now, capacity pressure wakes
// every gated way, otherwise inactive gateable ways power-gate (their
// lines vanish — dirty ones drained to the next level), keeping at
// least one way awake.
func (s *shadowCache) advanceShutdown(now int64) {
	iv := s.cfg.ShutdownInterval
	b := now - now%iv
	if b <= s.hw {
		return
	}
	s.hw = b
	if s.pressure > 0 {
		for w := s.cfg.SRAMWays; w < s.cfg.Assoc; w++ {
			s.gated[w] = false
		}
	} else {
		awake := 0
		for w := 0; w < s.cfg.Assoc; w++ {
			if !s.gated[w] {
				awake++
			}
		}
		for w := s.cfg.SRAMWays; w < s.cfg.Assoc; w++ {
			if !s.gated[w] && s.wayActive[w] == 0 && awake > 1 {
				s.gated[w] = true
				awake--
				for set := range s.sets {
					s.sets[set][w] = shadowLine{}
				}
			}
		}
	}
	s.pressure = 0
	for i := range s.wayActive {
		s.wayActive[i] = 0
	}
}

// compareSet verifies the timing model's set contents against the shadow,
// way by way.
func (s *shadowCache) compareSet(p *Port, now int64, req mem.Req, set int) {
	s.view = s.c.AppendSetView(s.view[:0], set)
	for w, got := range s.view {
		want := s.sets[set][w]
		switch {
		case got.Valid != want.valid:
			p.record(now, req, fmt.Sprintf("state: set %d way %d valid=%t, shadow says %t", set, w, got.Valid, want.valid))
		case !got.Valid:
		case got.Addr != want.addr:
			p.record(now, req, fmt.Sprintf("state: set %d way %d holds %#x, shadow says %#x", set, w, got.Addr, want.addr))
		case got.Dirty != want.dirty:
			p.record(now, req, fmt.Sprintf("state: set %d way %d (%#x) dirty=%t, shadow says %t", set, w, got.Addr, got.Dirty, want.dirty))
		case got.LastUse != want.lastUse:
			p.record(now, req, fmt.Sprintf("state: set %d way %d (%#x) lastUse=%d, shadow says %d", set, w, got.Addr, got.LastUse, want.lastUse))
		}
	}
}

// audit compares every set (the per-access path only compares touched
// sets).
func (s *shadowCache) audit(p *Port) {
	for set := range s.sets {
		s.compareSet(p, 0, mem.Req{}, set)
	}
}

// resetTiming mirrors Cache.ResetTiming: clocks and MSHRs clear, cache
// contents (and the LRU use clock) persist. Gated ways stay gated, but
// interval bookkeeping restarts with the measured run's clock.
func (s *shadowCache) resetTiming() {
	s.dataReady = make(map[mem.Addr]int64)
	s.pre = s.pre[:0]
	if s.gated != nil {
		s.hw = 0
		s.pressure = 0
		for i := range s.wayActive {
			s.wayActive[i] = 0
		}
	}
}
