package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"sttdl1/internal/dse"
)

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shardSlot tracks one shard of a job through the lease lifecycle.
type shardSlot struct {
	state shardState
	// lease is the current lease's id while leased.
	lease string
	// retries counts explicit worker-reported failures (not expiries or
	// cancels); MaxShardRetries of them fail the job.
	retries int
}

// Job states. A job is terminal in done, failed or canceled.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateStitching = "stitching"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCanceled  = "canceled"
)

func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCanceled
}

// job is the server-side record of one sweep. All fields are guarded by
// the server's mutex except ctx/cancel (set once at creation) and the
// result fields (written by the stitch goroutine before the state flips
// to done under the mutex).
type job struct {
	id     string
	spec   jobSpec
	state  string
	shards []shardSlot
	// doneSims accumulates completed leases' counts; live leases add
	// their latest heartbeat on top (see Server.statusLocked).
	doneSims int
	requeues int
	errMsg   string

	events []Event
	// notify is closed and replaced on every event append — a broadcast
	// that wakes all streaming watchers.
	notify chan struct{}

	// ctx is canceled by DELETE /v1/jobs/{id} (and observed by the
	// stitch); cancel is idempotent.
	ctx    context.Context
	cancel context.CancelFunc

	// Exactly one of eval/search is set once the stitch succeeds.
	eval   *dse.Evaluation
	search *dse.SearchResult
}

func newJob(id string, spec jobSpec) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:     id,
		spec:   spec,
		state:  stateQueued,
		shards: make([]shardSlot, spec.Shards),
		notify: make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
}

// emit appends one event (caller holds the server mutex) and wakes the
// watchers. The job id is filled in here.
func (j *job) emit(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.id
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// counts summarizes the shard states.
func (j *job) counts() ShardCounts {
	c := ShardCounts{Total: len(j.shards)}
	for _, sh := range j.shards {
		switch sh.state {
		case shardPending:
			c.Pending++
		case shardLeased:
			c.Leased++
		case shardDone:
			c.Done++
		}
	}
	return c
}

// render produces the job's final result in the requested format,
// windowed to rows [offset, offset+limit) when either is positive
// (results can run to thousands of points on mega spaces; pagination
// keeps single pages cheap to ship). "csv" and "table" without a
// window are byte-identical to `sttexplore dse` stdout for the same
// space/search/seed/budget (-csv and the default table, respectively)
// — that is the service's core output contract. "json" is the
// structured form; its window slices the points array and reports the
// pre-window total.
func (j *job) render(format string, offset, limit int) ([]byte, string, error) {
	sp := j.spec.Space
	switch format {
	case "", "csv":
		if j.search != nil {
			return []byte(fmt.Sprintf("# dse-%s guided search: seed %d, budget %d\n%s\n",
				sp.Name, j.search.Seed, j.search.Budget, j.search.PointsTable().Window(offset, limit).CSV())), "text/csv; charset=utf-8", nil
		}
		return []byte(fmt.Sprintf("# dse-%s\n%s\n", sp.Name, j.eval.PointsTable().Window(offset, limit).CSV())), "text/csv; charset=utf-8", nil
	case "table":
		if j.search != nil {
			return []byte(j.search.FrontierTable(0).Window(offset, limit).Render() + "\n"), "text/plain; charset=utf-8", nil
		}
		return []byte(j.eval.FrontierTable(0).Window(offset, limit).Render() + "\n"), "text/plain; charset=utf-8", nil
	case "json":
		data, err := json.Marshal(j.resultJSON(offset, limit))
		if err != nil {
			return nil, "", err
		}
		return append(data, '\n'), "application/json", nil
	}
	return nil, "", fmt.Errorf("unknown format %q (want csv, table or json)", format)
}

// resultPoint is one evaluated design point in the JSON result.
type resultPoint struct {
	Label      string   `json:"label"`
	Axes       []string `json:"axes,omitempty"`
	PenaltyPct float64  `json:"penalty_pct"`
	EnergyUJ   float64  `json:"energy_uj"`
	AreaMM2    float64  `json:"area_mm2"`
	Rank       int      `json:"rank"`
	Proposal   bool     `json:"proposal,omitempty"`
	Reference  bool     `json:"reference,omitempty"`
}

type resultDoc struct {
	Space   string   `json:"space"`
	Benches []string `json:"benches"`
	Search  string   `json:"search"`
	Seed    int64    `json:"seed,omitempty"`
	Budget  int      `json:"budget,omitempty"`
	// Total is the point count before windowing; Offset is the window's
	// start. Both are omitted for an un-paginated result, keeping its
	// encoding unchanged.
	Total  int           `json:"total,omitempty"`
	Offset int           `json:"offset,omitempty"`
	Points []resultPoint `json:"points"`
}

// resultJSON builds the structured result, windowed to points
// [offset, offset+limit) when either is positive.
func (j *job) resultJSON(offset, limit int) resultDoc {
	ev := j.eval
	doc := resultDoc{Space: j.spec.Space.Name, Search: j.spec.Search}
	if j.search != nil {
		ev = &j.search.Evaluation
		doc.Seed, doc.Budget = j.search.Seed, j.search.Budget
	}
	doc.Benches = ev.Benches
	points := ev.Points
	if offset > 0 || limit > 0 {
		total := len(points)
		lo := min(max(offset, 0), total)
		hi := total
		if limit > 0 && lo+limit < total {
			hi = lo + limit
		}
		points = points[lo:hi]
		doc.Total, doc.Offset = total, lo
	}
	for _, p := range points {
		doc.Points = append(doc.Points, resultPoint{
			Label:      p.Point.Label,
			Axes:       p.Point.Labels,
			PenaltyPct: p.Obj.PenaltyPct,
			EnergyUJ:   p.Obj.EnergyUJ,
			AreaMM2:    p.Obj.AreaMM2,
			Rank:       p.Rank,
			Proposal:   p.Proposal,
			Reference:  p.Reference,
		})
	}
	return doc
}
