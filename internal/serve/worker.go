package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/stats"
	"sttdl1/internal/store"
)

// Worker pulls shard leases from a Server and executes them into the
// shared persistent store. It is the same component whether it runs as
// a goroutine inside the serve process (`sttexplore serve -workers N`)
// or as a separate `sttexplore worker` process on another machine —
// coordination is HTTP only, results flow through the store only.
type Worker struct {
	// URL is the server base ("http://host:port").
	URL string
	// Store is the shared evaluation store. Required.
	Store *store.Store
	// Name identifies the worker in leases and events.
	Name string
	// Jobs bounds simulation concurrency (0 = GOMAXPROCS).
	Jobs int
	// Poll is the idle re-poll interval (0 = 200ms).
	Poll time.Duration
	// Client is the HTTP client (nil = a 30s-timeout default).
	Client *http.Client
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)

	mu     sync.Mutex
	suites map[bool]*experiments.Suite
	// sims counts completed simulations across the worker's life; each
	// lease reports its own delta against a snapshot.
	sims atomic.Int64
}

// maxConnFailures ends the worker loop after this many consecutive
// lease-request failures — the server is gone, not busy.
const maxConnFailures = 5

// Run pulls and executes leases until ctx is canceled (a shard in
// flight is abandoned and reported canceled, so the server requeues it
// immediately instead of waiting out the heartbeat TTL) or the server
// starts draining (a clean exit).
func (w *Worker) Run(ctx context.Context) error {
	if w.Store == nil {
		return fmt.Errorf("serve: worker needs a store")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	failures := 0
	for ctx.Err() == nil {
		grant, status, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			failures++
			if failures >= maxConnFailures {
				return fmt.Errorf("serve: worker %s: server unreachable after %d attempts: %w", w.Name, failures, err)
			}
			sleepCtx(ctx, poll)
			continue
		}
		failures = 0
		switch status {
		case http.StatusOK:
			w.execute(ctx, grant, logf)
		case http.StatusNoContent:
			sleepCtx(ctx, poll)
		case http.StatusServiceUnavailable:
			logf("worker %s: server draining, exiting", w.Name)
			return nil
		default:
			failures++
			if failures >= maxConnFailures {
				return fmt.Errorf("serve: worker %s: lease request answered %d", w.Name, status)
			}
			sleepCtx(ctx, poll)
		}
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// suiteFor returns the worker's long-lived suite for the checking mode:
// shared across leases and jobs, so repeated shards of overlapping
// spaces are served from the in-memory memo before the store is even
// consulted.
func (w *Worker) suiteFor(check bool) *experiments.Suite {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.suites == nil {
		w.suites = make(map[bool]*experiments.Suite)
	}
	s := w.suites[check]
	if s == nil {
		s = experiments.NewSuiteJobs(nil, w.Jobs)
		s.SetCheck(check)
		s.SetStore(w.Store)
		s.SetProgress(func(stats.RunEvent) { w.sims.Add(1) })
		w.suites[check] = s
	}
	return s
}

// execute runs one granted shard: heartbeats on a TTL/3 cadence keep
// the lease alive (a 410 — lease expired or job canceled — cancels the
// evaluation mid-replay), then the outcome is reported as done or fail.
func (w *Worker) execute(ctx context.Context, g *LeaseGrant, logf func(string, ...any)) {
	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	start := w.sims.Load()
	delta := func() int { return int(w.sims.Load() - start) }

	interval := time.Duration(g.TTLMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				status, err := w.post(leaseCtx, "/v1/leases/"+g.Lease+"/heartbeat", HeartbeatBody{Sims: delta()}, nil)
				if err == nil && status == http.StatusGone {
					logf("worker %s: lease %s gone, abandoning shard", w.Name, g.Lease)
					cancelLease()
					return
				}
			}
		}
	}()

	err := w.runShard(leaseCtx, g)
	cancelLease()
	hb.Wait()

	// Reporting runs on the worker's own context: the lease context is
	// spent by design at this point.
	switch {
	case err == nil:
		logf("worker %s: shard %s of job %s done (%d sims)", w.Name, g.Shard, g.Job, delta())
		w.post(ctx, "/v1/leases/"+g.Lease+"/done", DoneBody{Sims: delta()}, nil)
	case ctx.Err() != nil:
		// Worker shutdown: hand the shard straight back.
		w.post(context.Background(), "/v1/leases/"+g.Lease+"/fail", FailBody{Canceled: true}, nil)
	case leaseCtx.Err() != nil:
		// Lease revoked under us; nothing to report, the server already
		// moved on.
	default:
		logf("worker %s: shard %s of job %s failed: %v", w.Name, g.Shard, g.Job, err)
		w.post(ctx, "/v1/leases/"+g.Lease+"/fail", FailBody{Error: err.Error()}, nil)
	}
}

// runShard resolves the grant against the local registries and performs
// the evaluation. Exhaustive shards prefetch their deterministic work
// list (dse.PlanShard) into the store; a guided job's single lease runs
// the seeded search, whose full evaluations land in the store for the
// server's identical stitch trajectory.
func (w *Worker) runShard(ctx context.Context, g *LeaseGrant) error {
	sp, ok := dse.ByName(g.Space)
	if !ok {
		return fmt.Errorf("unknown design space %q", g.Space)
	}
	sp, err := dse.Restrict(sp, g.Axes)
	if err != nil {
		return err
	}
	var benches []polybench.Bench
	for _, bn := range g.Benches {
		b, ok := polybench.ByName(bn)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", bn)
		}
		benches = append(benches, b)
	}
	eng := w.suiteFor(g.Check).WithContext(ctx)
	if g.Search == "guided" {
		_, err := dse.Search(eng, benches, sp, dse.SearchOptions{Budget: g.Budget, Seed: g.Seed})
		return err
	}
	sh, err := dse.ParseShard(g.Shard)
	if err != nil {
		return err
	}
	_, err = dse.EvaluateShard(eng, benches, sp, sh)
	return err
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// lease asks the server for a shard. The grant is nil unless the status
// is 200.
func (w *Worker) lease(ctx context.Context) (*LeaseGrant, int, error) {
	var g LeaseGrant
	status, err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.Name}, &g)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, status, nil
	}
	return &g, status, nil
}

// post sends a JSON body and decodes a JSON reply into out (when out is
// non-nil and the status is 200).
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
