package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/store"
)

// testEnv is one server under httptest with its own store directory.
type testEnv struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
	st  *store.Store
}

func newEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{t: t, srv: srv, ts: ts, st: st}
}

// do sends a JSON request and decodes the JSON reply into out (when
// non-nil), returning the status code.
func (e *testEnv) do(method, path string, body, out any) int {
	e.t.Helper()
	var rd *bytes.Reader
	if b, ok := body.([]byte); ok {
		rd = bytes.NewReader(b)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode < 300 {
			e.t.Fatalf("%s %s: decoding %d reply: %v", method, path, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func (e *testEnv) submit(req JobRequest) JobStatus {
	e.t.Helper()
	var js JobStatus
	if code := e.do("POST", "/v1/jobs", req, &js); code != http.StatusAccepted {
		e.t.Fatalf("submit: status %d", code)
	}
	return js
}

// waitState polls a job until it reaches want (failing fast on any
// unexpected terminal state).
func (e *testEnv) waitState(id, want string, timeout time.Duration) JobStatus {
	e.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var js JobStatus
		if code := e.do("GET", "/v1/jobs/"+id, nil, &js); code != http.StatusOK {
			e.t.Fatalf("status of %s: %d", id, code)
		}
		if js.State == want {
			return js
		}
		if terminal(js.State) {
			e.t.Fatalf("job %s reached %q (error %q), want %q", id, js.State, js.Error, want)
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("job %s stuck in %q waiting for %q", id, js.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (e *testEnv) result(id, format string) (string, int) {
	e.t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id + "/result?format=" + format)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String(), resp.StatusCode
}

// startWorker runs a Worker against the env until test cleanup.
func (e *testEnv) startWorker(name string) {
	e.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{URL: e.ts.URL, Store: e.st, Name: name, Poll: 10 * time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	e.t.Cleanup(func() {
		cancel()
		<-done
	})
}

// expectedCSV renders what `sttexplore dse -space <sp> -bench gemm -csv`
// prints for the benches subset, through the same library path.
func expectedCSV(t *testing.T, sp dse.Space, benches []polybench.Bench) string {
	t.Helper()
	suite := experiments.NewSuiteJobs(benches, 0)
	ev, err := dse.Evaluate(suite, benches, sp)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("# dse-%s\n%s\n", sp.Name, ev.PointsTable().CSV())
}

func gemm(t *testing.T) []polybench.Bench {
	t.Helper()
	b, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("no gemm benchmark")
	}
	return []polybench.Bench{b}
}

// TestServeJobMatchesDse is the service's core contract: a 2-shard job
// executed by 2 workers produces the byte-identical CSV a
// single-process `sttexplore dse` run prints.
func TestServeJobMatchesDse(t *testing.T) {
	e := newEnv(t, Options{})
	e.startWorker("w1")
	e.startWorker("w2")

	js := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}, Shards: 2})
	if js.Shards.Total != 2 {
		t.Fatalf("job has %d shard(s), want 2", js.Shards.Total)
	}
	done := e.waitState(js.ID, stateDone, 2*time.Minute)
	if done.Sims == 0 {
		t.Error("job done with zero reported sims")
	}

	sp, _ := dse.ByName("smoke")
	want := expectedCSV(t, sp, gemm(t))
	got, code := e.result(js.ID, "csv")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if got != want {
		t.Errorf("serve CSV diverges from single-process dse:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The table and JSON formats render from the same evaluation.
	table, code := e.result(js.ID, "table")
	if code != http.StatusOK || !strings.Contains(table, "Pareto frontier") {
		t.Errorf("table format: status %d, body %q", code, table)
	}
	var doc resultDoc
	raw, code := e.result(js.ID, "json")
	if code != http.StatusOK {
		t.Fatalf("json format: status %d", code)
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Space != "smoke" || len(doc.Points) == 0 {
		t.Errorf("json result: space %q, %d points", doc.Space, len(doc.Points))
	}
	if _, code := e.result(js.ID, "yaml"); code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", code)
	}
}

// TestGuidedJobMatchesDse runs the guided path end to end (the smoke
// space fits the budget, so the search degenerates to an exact
// evaluation — cheap, but it exercises the whole guided plumbing).
func TestGuidedJobMatchesDse(t *testing.T) {
	e := newEnv(t, Options{})
	e.startWorker("w1")
	js := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}, Search: "guided", Budget: 64, Seed: 7, Shards: 5})
	if js.Shards.Total != 1 {
		t.Fatalf("guided job has %d shard(s), want 1 (sequential by nature)", js.Shards.Total)
	}
	e.waitState(js.ID, stateDone, 2*time.Minute)

	sp, _ := dse.ByName("smoke")
	benches := gemm(t)
	suite := experiments.NewSuiteJobs(benches, 0)
	res, err := dse.Search(suite, benches, sp, dse.SearchOptions{Budget: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("# dse-%s guided search: seed %d, budget %d\n%s\n",
		sp.Name, res.Seed, res.Budget, res.PointsTable().CSV())
	got, _ := e.result(js.ID, "csv")
	if got != want {
		t.Errorf("guided serve CSV diverges from single-process dse:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLeaseExpiryRequeues pins the crash-tolerance path without a real
// worker: a lease goes silent, the heartbeat deadline passes, the shard
// requeues, and a successor lease finishes the job — byte-identical
// output, requeue accounted.
func TestLeaseExpiryRequeues(t *testing.T) {
	// The TTL must outlive race-detector scheduling hiccups between the
	// successor's heartbeats, but stay short enough to keep the test
	// quick.
	e := newEnv(t, Options{LeaseTTL: 250 * time.Millisecond})
	js := e.submit(JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}}, Benches: []string{"gemm"}})

	var g LeaseGrant
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "crasher"}, &g); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	// The crasher never heartbeats. After the TTL the shard is pending
	// again and its lease is dead.
	time.Sleep(300 * time.Millisecond)
	e.srv.Tick()
	var st JobStatus
	e.do("GET", "/v1/jobs/"+js.ID, nil, &st)
	if st.Requeues != 1 || st.Shards.Pending != 1 || st.Shards.Leased != 0 {
		t.Fatalf("after expiry: %+v, want 1 requeue and the shard pending", st)
	}
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/heartbeat", HeartbeatBody{}, nil); code != http.StatusGone {
		t.Errorf("heartbeat on expired lease: status %d, want 410", code)
	}

	// A healthy successor picks the same shard up and completes the job.
	e.startWorker("successor")
	e.waitState(js.ID, stateDone, 2*time.Minute)
	sp, _ := dse.ByName("smoke")
	sp, err := dse.Restrict(sp, map[string][]string{"front-end": {"vwb"}})
	if err != nil {
		t.Fatal(err)
	}
	want := expectedCSV(t, sp, gemm(t))
	if got, _ := e.result(js.ID, "csv"); got != want {
		t.Errorf("post-requeue CSV diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDuplicateDoneIdempotent pins that a late or repeated completion
// is absorbed: the first done wins, the second answers "stale", and the
// job completes exactly once.
func TestDuplicateDoneIdempotent(t *testing.T) {
	e := newEnv(t, Options{})
	js := e.submit(JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}, "rows": {"1Kbit"}}, Benches: []string{"gemm"}})

	var g LeaseGrant
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "w"}, &g); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	var reply map[string]string
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/done", DoneBody{Sims: 3}, &reply); code != http.StatusOK || reply["status"] != "ok" {
		t.Fatalf("first done: status %d, reply %v", code, reply)
	}
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/done", DoneBody{Sims: 3}, &reply); code != http.StatusOK || reply["status"] != "stale" {
		t.Fatalf("duplicate done: status %d, reply %v, want stale", code, reply)
	}
	st := e.waitState(js.ID, stateDone, 2*time.Minute)
	if st.Sims != 3 {
		t.Errorf("duplicate done double-counted sims: %d, want 3", st.Sims)
	}
}

// TestBadJobsNeverEnqueued pins the 4xx wall: malformed, unknown-field,
// unknown-name and oversized submissions are rejected before the queue.
func TestBadJobsNeverEnqueued(t *testing.T) {
	e := newEnv(t, Options{})
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"truncated JSON", []byte(`{"space": "smo`), http.StatusBadRequest},
		{"unknown field", []byte(`{"spacey": "smoke"}`), http.StatusBadRequest},
		{"trailing garbage", []byte(`{"space": "smoke"} {"space": "smoke"}`), http.StatusBadRequest},
		{"unknown space", []byte(`{"space": "no-such-space"}`), http.StatusBadRequest},
		{"unknown bench", []byte(`{"benches": ["no-such-bench"]}`), http.StatusBadRequest},
		{"unknown axis", []byte(`{"axes": {"no-such-axis": ["x"]}}`), http.StatusBadRequest},
		{"bad search", []byte(`{"search": "psychic"}`), http.StatusBadRequest},
		{"negative shards", []byte(`{"shards": -2}`), http.StatusBadRequest},
		{"oversized body", []byte(`{"space": "` + strings.Repeat("x", MaxJobBody+1) + `"}`), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		var ed errorDoc
		if code := e.do("POST", "/v1/jobs", tc.body, &ed); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		} else if ed.Error == "" {
			t.Errorf("%s: no error message in reply", tc.name)
		}
	}
	var jobs []JobStatus
	e.do("GET", "/v1/jobs", nil, &jobs)
	if len(jobs) != 0 {
		t.Errorf("%d job(s) enqueued by rejected submissions", len(jobs))
	}
}

// TestQueueBound pins the 429 on a full queue.
func TestQueueBound(t *testing.T) {
	e := newEnv(t, Options{Queue: 1})
	e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}})
	var ed errorDoc
	if code := e.do("POST", "/v1/jobs", JobRequest{Space: "smoke"}, &ed); code != http.StatusTooManyRequests {
		t.Fatalf("second submit on a 1-deep queue: status %d, want 429", code)
	}
}

// TestCancelRevokesLeases pins DELETE: the job goes canceled, its
// lease's next heartbeat answers 410 (the worker abandons mid-shard),
// and a late done is stale.
func TestCancelRevokesLeases(t *testing.T) {
	e := newEnv(t, Options{})
	js := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}})
	var g LeaseGrant
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "w"}, &g); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	var st JobStatus
	if code := e.do("DELETE", "/v1/jobs/"+js.ID, nil, &st); code != http.StatusOK || st.State != stateCanceled {
		t.Fatalf("cancel: status %d, state %q", code, st.State)
	}
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/heartbeat", HeartbeatBody{}, nil); code != http.StatusGone {
		t.Errorf("heartbeat after cancel: status %d, want 410", code)
	}
	var reply map[string]string
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/done", DoneBody{}, &reply); code != http.StatusOK || reply["status"] != "stale" {
		t.Errorf("done after cancel: status %d, reply %v, want stale", code, reply)
	}
	if _, code := e.result(js.ID, "csv"); code != http.StatusConflict {
		t.Errorf("result of canceled job: status %d, want 409", code)
	}
}

// TestEventsStream pins the NDJSON progress stream: dense sequence
// numbers from queued to done, and ?from resumes mid-stream.
func TestEventsStream(t *testing.T) {
	e := newEnv(t, Options{})
	e.startWorker("w1")
	js := e.submit(JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}}, Benches: []string{"gemm"}})
	e.waitState(js.ID, stateDone, 2*time.Minute)

	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + js.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("only %d event(s)", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d (stream must be dense)", i, ev.Seq)
		}
		if ev.Job != js.ID {
			t.Errorf("event %d names job %q", i, ev.Job)
		}
	}
	if events[0].Type != "queued" || events[len(events)-1].Type != "done" {
		t.Errorf("stream runs %q..%q, want queued..done", events[0].Type, events[len(events)-1].Type)
	}

	// Resume from the middle.
	resp2, err := http.Get(e.ts.URL + "/v1/jobs/" + js.ID + "/events?from=" + fmt.Sprint(len(events)-2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tail []Event
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev Event
		if err := json.Unmarshal(sc2.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, ev)
	}
	if len(tail) != 2 || tail[0].Seq != len(events)-2 {
		t.Errorf("resumed stream: %d event(s) from seq %d", len(tail), tail[0].Seq)
	}

	// SSE framing on request.
	req, _ := http.NewRequest("GET", e.ts.URL+"/v1/jobs/"+js.ID+"/events?from=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp3.Body)
	if !strings.HasPrefix(buf.String(), "data: ") {
		t.Errorf("SSE stream starts %q", buf.String()[:min(20, buf.Len())])
	}
}

// TestHealthz pins the health document, store line included.
func TestHealthz(t *testing.T) {
	e := newEnv(t, Options{})
	e.startWorker("w1")
	js := e.submit(JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}}, Benches: []string{"gemm"}})
	e.waitState(js.ID, stateDone, 2*time.Minute)

	var h Health
	if code := e.do("GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Store.Records == 0 || h.Store.Bytes == 0 {
		t.Errorf("store stats empty after a completed job: %+v", h.Store.DirStats)
	}
	if !strings.Contains(h.Store.Line, "record(s)") {
		t.Errorf("store line %q", h.Store.Line)
	}
	if h.Jobs.Terminal != 1 {
		t.Errorf("terminal jobs %d, want 1", h.Jobs.Terminal)
	}
}

// TestShutdownDrains pins the drain protocol: draining refuses new jobs
// and leases, lets an outstanding lease report done, then returns.
func TestShutdownDrains(t *testing.T) {
	e := newEnv(t, Options{})
	js := e.submit(JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}, "rows": {"1Kbit"}}, Benches: []string{"gemm"}})
	var g LeaseGrant
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "w"}, &g); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- e.srv.Shutdown(context.Background()) }()

	// Draining refuses new work on both submission paths.
	deadline := time.Now().Add(time.Second)
	for {
		if code := e.do("POST", "/v1/jobs", JobRequest{Space: "smoke"}, nil); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted while draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "w2"}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("lease while draining: status %d, want 503", code)
	}

	// The outstanding lease still completes; Shutdown then returns.
	if code := e.do("POST", "/v1/leases/"+g.Lease+"/done", DoneBody{Sims: 1}, nil); code != http.StatusOK {
		t.Errorf("done while draining: status %d", code)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Errorf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never returned after the last lease completed")
	}
	_ = js
}

// TestShutdownForceRequeues pins the deadline path: a lease that never
// completes is requeued when the drain context expires.
func TestShutdownForceRequeues(t *testing.T) {
	e := newEnv(t, Options{})
	js := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}})
	if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "w"}, &LeaseGrant{}); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err == nil {
		t.Fatal("deadline-bound shutdown with an abandoned lease returned nil")
	}
	var st JobStatus
	e.do("GET", "/v1/jobs/"+js.ID, nil, &st)
	if st.Shards.Pending != st.Shards.Total || st.Requeues == 0 {
		t.Errorf("after forced shutdown: %+v, want every shard pending and a requeue recorded", st)
	}
}

// TestFailedShardRetriesThenFails pins the retry budget: a shard whose
// workers keep reporting evaluation errors requeues MaxShardRetries-1
// times, then the job fails with the worker's message.
func TestFailedShardRetriesThenFails(t *testing.T) {
	e := newEnv(t, Options{})
	js := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}})
	for i := 0; i < MaxShardRetries; i++ {
		var g LeaseGrant
		if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "broken"}, &g); code != http.StatusOK {
			t.Fatalf("lease %d: status %d", i, code)
		}
		if code := e.do("POST", "/v1/leases/"+g.Lease+"/fail", FailBody{Error: "synthetic"}, nil); code != http.StatusOK {
			t.Fatalf("fail %d: status %d", i, code)
		}
	}
	var st JobStatus
	e.do("GET", "/v1/jobs/"+js.ID, nil, &st)
	if st.State != stateFailed || !strings.Contains(st.Error, "synthetic") {
		t.Errorf("after %d failures: state %q, error %q", MaxShardRetries, st.State, st.Error)
	}
	// A canceled-worker fail never consumes retries: fresh job, many
	// cancels, still leasable.
	js2 := e.submit(JobRequest{Space: "smoke", Benches: []string{"gemm"}})
	for i := 0; i < MaxShardRetries+2; i++ {
		var g LeaseGrant
		if code := e.do("POST", "/v1/lease", LeaseRequest{Worker: "restarting"}, &g); code != http.StatusOK {
			t.Fatalf("lease %d of job 2: status %d", i, code)
		}
		e.do("POST", "/v1/leases/"+g.Lease+"/fail", FailBody{Canceled: true}, nil)
	}
	e.do("GET", "/v1/jobs/"+js2.ID, nil, &st)
	if terminal(st.State) {
		t.Errorf("canceled-worker requeues failed the job: state %q", st.State)
	}
}

// TestWarmResubmission pins the latency story behind the shared stitch
// suites and the store: resubmitting an identical job completes without
// any new simulation work.
func TestWarmResubmission(t *testing.T) {
	e := newEnv(t, Options{})
	e.startWorker("w1")
	req := JobRequest{Space: "smoke", Axes: map[string][]string{"front-end": {"vwb"}}, Benches: []string{"gemm"}}
	first := e.submit(req)
	e.waitState(first.ID, stateDone, 2*time.Minute)

	second := e.submit(req)
	js := e.waitState(second.ID, stateDone, 2*time.Minute)
	a, _ := e.result(first.ID, "csv")
	b, _ := e.result(second.ID, "csv")
	if a != b {
		t.Error("warm resubmission changed the result bytes")
	}
	_ = js
}

// pagedEnv injects a synthetic done job with n evaluated points
// directly into the server (white-box), so the pagination contract can
// be pinned without running a sweep.
func pagedEnv(t *testing.T, n int) (*testEnv, string) {
	t.Helper()
	e := newEnv(t, Options{})
	sp, ok := dse.ByName("smoke")
	if !ok {
		t.Fatal("no smoke space")
	}
	ev := &dse.Evaluation{Space: sp, Benches: []string{"gemm"}}
	for i := 0; i < n; i++ {
		labels := make([]string, len(sp.Axes))
		for j := range labels {
			labels[j] = "v"
		}
		ev.Points = append(ev.Points, dse.PointResult{
			Point: dse.Point{Index: i, Label: fmt.Sprintf("pt-%02d", i), Labels: labels},
			Obj:   dse.Objectives{PenaltyPct: float64(i), EnergyUJ: 1, AreaMM2: 1},
		})
	}
	j := newJob("job-paged", jobSpec{Space: sp, Search: "exhaustive"})
	j.state = stateDone
	j.eval = ev
	e.srv.mu.Lock()
	e.srv.jobs[j.id] = j
	e.srv.mu.Unlock()
	return e, j.id
}

// TestResultPagination pins ?offset=/?limit= on the result endpoint:
// windows select the right rows, un-paginated output is unchanged, and
// a fetched page always says what it omitted.
func TestResultPagination(t *testing.T) {
	e, id := pagedEnv(t, 7)

	full, code := e.result(id, "csv")
	if code != http.StatusOK {
		t.Fatalf("full csv: status %d", code)
	}
	if got := strings.Count(full, "pt-"); got != 7 {
		t.Fatalf("full csv has %d point rows, want 7", got)
	}

	page, code := e.result(id, "csv&offset=2&limit=3")
	if code != http.StatusOK {
		t.Fatalf("paged csv: status %d", code)
	}
	for _, want := range []string{"pt-02", "pt-03", "pt-04"} {
		if !strings.Contains(page, want) {
			t.Errorf("page misses %s:\n%s", want, page)
		}
	}
	for _, not := range []string{"pt-01", "pt-05"} {
		if strings.Contains(page, not) {
			t.Errorf("page leaks %s outside [2,5):\n%s", not, page)
		}
	}

	// The table format carries the omission note.
	tbl, _ := e.result(id, "table&offset=0&limit=2")
	if !strings.Contains(tbl, "showing rows 1-2 of") {
		t.Errorf("paged table lacks the omission note:\n%s", tbl)
	}

	// Offset past the end: an empty page, not an error.
	empty, code := e.result(id, "csv&offset=100")
	if code != http.StatusOK || strings.Contains(empty, "pt-") {
		t.Errorf("past-the-end page: status %d, body %q", code, empty)
	}

	// JSON pages slice the points array and report the pre-window total.
	var doc resultDoc
	raw, code := e.result(id, "json&offset=5&limit=5")
	if code != http.StatusOK {
		t.Fatalf("paged json: status %d", code)
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 7 || doc.Offset != 5 || len(doc.Points) != 2 {
		t.Errorf("json page: total %d offset %d points %d, want 7/5/2", doc.Total, doc.Offset, len(doc.Points))
	}

	// Un-paginated JSON omits the pagination fields entirely.
	if raw, _ := e.result(id, "json"); strings.Contains(raw, `"total"`) || strings.Contains(raw, `"offset"`) {
		t.Errorf("un-paginated json grew pagination fields: %s", raw)
	}
}

// TestResultPaginationBounds pins the 400s: offset/limit must be
// non-negative integers.
func TestResultPaginationBounds(t *testing.T) {
	e, id := pagedEnv(t, 3)
	for _, q := range []string{"offset=-1", "limit=-3", "offset=abc", "limit=1.5", "offset=9999999999999999999999"} {
		if _, code := e.result(id, "csv&"+q); code != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, code)
		}
	}
	// Zero values are explicit no-ops, not errors.
	if _, code := e.result(id, "csv&offset=0&limit=0"); code != http.StatusOK {
		t.Errorf("?offset=0&limit=0: status %d, want 200", code)
	}
}
