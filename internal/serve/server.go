package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/store"
)

// MaxShardRetries bounds worker-reported evaluation failures per shard
// before the whole job fails (the simulator is deterministic, so a
// genuine evaluation error will not heal by retrying; the margin covers
// environmental flakes like a briefly full disk). Lease expiries and
// worker-side cancels do not consume retries — they are infrastructure
// churn, and the content-addressed store makes their requeues cheap.
const MaxShardRetries = 3

// Options configures a Server.
type Options struct {
	// Store is the shared persistent evaluation store — the only state
	// workers and the server coordinate results through. Required.
	Store *store.Store
	// Jobs bounds the stitch suites' simulation concurrency
	// (0 = GOMAXPROCS).
	Jobs int
	// Queue bounds the jobs in non-terminal states; submissions beyond
	// it are 429 (0 = 16).
	Queue int
	// LeaseTTL is the heartbeat deadline granted to each lease
	// (0 = 15s).
	LeaseTTL time.Duration
	// DefaultShards partitions exhaustive jobs that don't ask for a
	// shard count (0 = 1).
	DefaultShards int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the sweep-service coordinator. It owns the job queue and
// lease table, and runs the stitch — final-frontier assembly — itself;
// all simulation happens in workers (local goroutines or external
// processes) that coordinate with it over HTTP and share only the
// persistent store.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// Two long-lived stitch suites (plain and oracle-checked: the modes
	// memoize separately) shared across jobs — a resubmitted job's
	// stitch is served from the in-memory memo and the store without
	// simulating anything, which is where warm-job latency goes to
	// near zero.
	stitchPlain, stitchChecked *experiments.Suite

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order; lease dispatch is FIFO across it
	leases    map[string]*lease
	draining  bool
	nextJob   int
	nextLease int
}

// lease is one worker's claim on one shard.
type lease struct {
	id       string
	job      *job
	shardIdx int
	worker   string
	deadline time.Time
	// sims is the latest heartbeat's cumulative count for this lease.
	sims int
}

// New builds a Server.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("serve: a persistent store is required (workers coordinate through it)")
	}
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.DefaultShards <= 0 {
		opts.DefaultShards = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:   opts,
		jobs:   make(map[string]*job),
		leases: make(map[string]*lease),
	}
	s.stitchPlain = experiments.NewSuiteJobs(nil, opts.Jobs)
	s.stitchPlain.SetStore(opts.Store)
	s.stitchChecked = experiments.NewSuiteJobs(nil, opts.Jobs)
	s.stitchChecked.SetCheck(true)
	s.stitchChecked.SetStore(opts.Store)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/leases/{id}/done", s.handleDone)
	mux.HandleFunc("POST /v1/leases/{id}/fail", s.handleFail)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Tick runs the lease-expiry scan (it also runs lazily on every
// coordination request; Tick exists for tests and idle servers).
func (s *Server) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
}

// expireLocked requeues the shards of every lease past its heartbeat
// deadline. The replacement worker re-plans the identical shard and
// resumes from whatever the store already holds.
func (s *Server) expireLocked(now time.Time) {
	for id, l := range s.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(s.leases, id)
		s.requeueLocked(l, "lease expired: heartbeat deadline passed")
	}
}

// requeueLocked returns an ended lease's shard to the queue (unless the
// job is already terminal — a canceled job's shards stay put).
func (s *Server) requeueLocked(l *lease, why string) {
	j := l.job
	sh := &j.shards[l.shardIdx]
	if sh.state != shardLeased || sh.lease != l.id || terminal(j.state) {
		return
	}
	sh.state = shardPending
	sh.lease = ""
	j.requeues++
	j.emit(Event{Type: "requeue", Shard: s.shardName(j, l.shardIdx), Worker: l.worker, Lease: l.id, Msg: why})
	s.opts.Logf("job %s: shard %d requeued (%s)", j.id, l.shardIdx, why)
}

func (s *Server) shardName(j *job, idx int) string {
	return dse.Shard{Index: idx, Count: len(j.shards)}.String()
}

// activeLocked counts jobs in non-terminal states.
func (s *Server) activeLocked() int {
	n := 0
	for _, j := range s.jobs {
		if !terminal(j.state) {
			n++
		}
	}
	return n
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses a bounded, strict JSON request body. A payload the
// schema doesn't know is a client bug, never a job.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is malformed too.
	if dec.More() {
		return fmt.Errorf("request body holds more than one JSON value")
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(w, r, MaxJobBody, &req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "job body exceeds %d bytes", MaxJobBody)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed job: %v", err)
		return
	}
	spec, err := resolve(req, s.opts.DefaultShards)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.activeLocked() >= s.opts.Queue {
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d active)", s.opts.Queue)
		return
	}
	s.nextJob++
	j := newJob("j"+strconv.Itoa(s.nextJob), spec)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	j.emit(Event{Type: "queued", Msg: fmt.Sprintf("space %s, %s, %d shard(s)", spec.Space.Name, spec.Search, spec.Shards)})
	s.opts.Logf("job %s: queued (space %s, %s, %d shard(s))", j.id, spec.Space.Name, spec.Search, spec.Shards)
	writeJSON(w, http.StatusAccepted, s.statusLocked(j))
}

// statusLocked assembles a job's wire status.
func (s *Server) statusLocked(j *job) JobStatus {
	sims := j.doneSims
	for _, l := range s.leases {
		if l.job == j {
			sims += l.sims
		}
	}
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Space:    j.spec.Space.Name,
		Search:   j.spec.Search,
		Check:    j.spec.Check,
		Shards:   j.counts(),
		Sims:     sims,
		Requeues: j.requeues,
		Error:    j.errMsg,
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	j := s.jobs[r.PathValue("id")]
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.statusLocked(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if !terminal(j.state) {
		j.state = stateCanceled
		j.cancel() // aborts an in-flight stitch promptly
		// Invalidate this job's leases: the next heartbeat answers 410
		// and the worker abandons the shard mid-evaluation.
		for id, l := range s.leases {
			if l.job == j {
				delete(s.leases, id)
			}
		}
		j.emit(Event{Type: "canceled"})
		s.opts.Logf("job %s: canceled", j.id)
	}
	writeJSON(w, http.StatusOK, s.statusLocked(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobFor(w, r)
	if j == nil {
		s.mu.Unlock()
		return
	}
	state := j.state
	s.mu.Unlock()
	if state != stateDone {
		writeError(w, http.StatusConflict, "job %s is %s, not done", j.id, state)
		return
	}
	offset, err := queryInt(r, "offset")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := queryInt(r, "limit")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The result fields are immutable once the state is done.
	data, ctype, err := j.render(r.URL.Query().Get("format"), offset, limit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(data)
}

// queryInt parses an optional non-negative integer query parameter
// (absent or empty means 0).
func queryInt(r *http.Request, name string) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, q)
	}
	return n, nil
}

// handleEvents streams a job's progress: one JSON object per line by
// default, or SSE ("data: {...}\n\n") when the client asks for
// text/event-stream. The stream replays from ?from=N (default 0) and
// ends after the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobFor(w, r)
	s.mu.Unlock()
	if j == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative integer (got %q)", q)
			return
		}
		from = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		s.mu.Lock()
		evs := append([]Event(nil), j.events[min(from, len(j.events)):]...)
		done := terminal(j.state)
		notify := j.notify
		s.mu.Unlock()
		for _, ev := range evs {
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// Health is the body of GET /v1/healthz.
type Health struct {
	Status string `json:"status"` // ok|draining
	Jobs   struct {
		Active   int `json:"active"`
		Terminal int `json:"terminal"`
	} `json:"jobs"`
	Leases int `json:"leases"`
	Store  struct {
		store.DirStats
		Line string `json:"line"`
	} `json:"store"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// The store scan is filesystem-only; keep it outside the mutex.
	stats, err := s.opts.Store.Scan()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store scan: %v", err)
		return
	}
	var h Health
	h.Store.DirStats = stats
	h.Store.Line = stats.String()
	s.mu.Lock()
	s.expireLocked(time.Now())
	h.Status = "ok"
	if s.draining {
		h.Status = "draining"
	}
	h.Jobs.Active = s.activeLocked()
	h.Jobs.Terminal = len(s.jobs) - h.Jobs.Active
	h.Leases = len(s.leases)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(w, r, 4096, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed lease request: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// FIFO across jobs in submission order, shards in index order: the
	// dispatch schedule is deterministic given the lease-request order.
	for _, id := range s.order {
		j := s.jobs[id]
		if terminal(j.state) || j.state == stateStitching {
			continue
		}
		for i := range j.shards {
			if j.shards[i].state != shardPending {
				continue
			}
			s.nextLease++
			l := &lease{
				id:       "l" + strconv.Itoa(s.nextLease),
				job:      j,
				shardIdx: i,
				worker:   req.Worker,
				deadline: time.Now().Add(s.opts.LeaseTTL),
			}
			s.leases[l.id] = l
			j.shards[i].state = shardLeased
			j.shards[i].lease = l.id
			if j.state == stateQueued {
				j.state = stateRunning
			}
			j.emit(Event{Type: "lease", Shard: s.shardName(j, i), Worker: req.Worker, Lease: l.id})
			s.opts.Logf("job %s: shard %d leased to %s (%s)", j.id, i, req.Worker, l.id)
			writeJSON(w, http.StatusOK, LeaseGrant{
				Lease:   l.id,
				Job:     j.id,
				Space:   j.spec.Space.Name,
				Axes:    j.spec.Axes,
				Benches: j.spec.BenchNames,
				Search:  j.spec.Search,
				Budget:  j.spec.Budget,
				Seed:    j.spec.Seed,
				Check:   j.spec.Check,
				Shard:   s.shardName(j, i),
				TTLMS:   s.opts.LeaseTTL.Milliseconds(),
			})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// leaseFor resolves the {id} path value, answering 410 itself when the
// lease is unknown — expired, superseded or never granted. 410 (not
// 404) tells the worker its claim is gone for good.
func (s *Server) leaseFor(w http.ResponseWriter, r *http.Request) *lease {
	l := s.leases[r.PathValue("id")]
	if l == nil {
		writeError(w, http.StatusGone, "no lease %q (expired or completed)", r.PathValue("id"))
	}
	return l
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb HeartbeatBody
	if err := decodeBody(w, r, 4096, &hb); err != nil {
		writeError(w, http.StatusBadRequest, "malformed heartbeat: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deliberately no expiry scan here: a heartbeat (or completion)
	// arriving slightly past the deadline on a lease nobody has requeued
	// yet revives it — expiring a lease by its own keep-alive would
	// livelock a slow-but-alive worker. Shards are reclaimed only at
	// dispatch points (lease requests, status reads, Tick).
	l := s.leaseFor(w, r)
	if l == nil {
		return
	}
	if terminal(l.job.state) {
		// The job ended under the worker (failed on another shard's
		// retries, say); reclaim the lease so the worker abandons it.
		delete(s.leases, l.id)
		writeError(w, http.StatusGone, "job %s is %s", l.job.id, l.job.state)
		return
	}
	l.deadline = time.Now().Add(s.opts.LeaseTTL)
	l.sims = hb.Sims
	l.job.emit(Event{Type: "progress", Shard: s.shardName(l.job, l.shardIdx), Worker: l.worker, Lease: l.id, Sims: hb.Sims})
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	var body DoneBody
	if err := decodeBody(w, r, 4096, &body); err != nil {
		writeError(w, http.StatusBadRequest, "malformed completion: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// No expiry scan — see handleHeartbeat: a late completion on a
	// still-listed lease is a completion, not a crash.
	l := s.leases[r.PathValue("id")]
	if l == nil {
		// Duplicate or late completion: the worker's results are in the
		// store either way (byte-identical to any other worker's), so
		// this is success, not conflict — the idempotence that makes
		// crash-requeue safe.
		writeJSON(w, http.StatusOK, map[string]string{"status": "stale"})
		return
	}
	delete(s.leases, l.id)
	j := l.job
	sh := &j.shards[l.shardIdx]
	if sh.state == shardLeased && sh.lease == l.id && !terminal(j.state) {
		sh.state = shardDone
		sh.lease = ""
		j.doneSims += body.Sims
		j.emit(Event{Type: "shard-done", Shard: s.shardName(j, l.shardIdx), Worker: l.worker, Lease: l.id, Sims: body.Sims})
		s.opts.Logf("job %s: shard %d done (%d sims)", j.id, l.shardIdx, body.Sims)
		if j.counts().Done == len(j.shards) {
			j.state = stateStitching
			j.emit(Event{Type: "stitching"})
			go s.stitch(j)
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var body FailBody
	if err := decodeBody(w, r, 1<<16, &body); err != nil {
		writeError(w, http.StatusBadRequest, "malformed failure report: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.leases[r.PathValue("id")]
	if l == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "stale"})
		return
	}
	delete(s.leases, l.id)
	j := l.job
	if body.Canceled {
		s.requeueLocked(l, "worker shut down mid-shard")
	} else {
		sh := &j.shards[l.shardIdx]
		sh.retries++
		if sh.retries >= MaxShardRetries && !terminal(j.state) {
			j.state = stateFailed
			j.errMsg = fmt.Sprintf("shard %s failed %d time(s): %s", s.shardName(j, l.shardIdx), sh.retries, body.Error)
			j.cancel()
			j.emit(Event{Type: "failed", Shard: s.shardName(j, l.shardIdx), Msg: body.Error})
			s.opts.Logf("job %s: failed (%s)", j.id, j.errMsg)
		} else {
			s.requeueLocked(l, "worker reported: "+body.Error)
			j.emit(Event{Type: "shard-failed", Shard: s.shardName(j, l.shardIdx), Worker: l.worker, Lease: l.id, Msg: body.Error})
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// stitch assembles a job's final result. For exhaustive jobs this is
// the same dse.Evaluate a single-process sweep runs — every simulation
// the workers published is a warm store hit, so the stitch only scores
// and ranks; for guided jobs it re-runs the seeded search, whose full
// evaluations the worker's identical trajectory already stored. Either
// way the output is byte-identical to `sttexplore dse` by the
// determinism contract.
func (s *Server) stitch(j *job) {
	suite := s.stitchPlain
	if j.spec.Check {
		suite = s.stitchChecked
	}
	eng := suite.WithContext(j.ctx)
	var err error
	var ev *dse.Evaluation
	var res *dse.SearchResult
	if j.spec.Search == "guided" {
		res, err = dse.Search(eng, j.spec.Benches, j.spec.Space, dse.SearchOptions{Budget: j.spec.Budget, Seed: j.spec.Seed})
	} else {
		ev, err = dse.Evaluate(eng, j.spec.Benches, j.spec.Space)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if terminal(j.state) {
		return // canceled (or failed) while stitching
	}
	if err != nil {
		if j.ctx.Err() != nil {
			j.state = stateCanceled
			j.emit(Event{Type: "canceled"})
		} else {
			j.state = stateFailed
			j.errMsg = err.Error()
			j.emit(Event{Type: "failed", Msg: err.Error()})
			s.opts.Logf("job %s: stitch failed: %v", j.id, err)
		}
		return
	}
	j.eval, j.search = ev, res
	j.state = stateDone
	j.emit(Event{Type: "done"})
	s.opts.Logf("job %s: done", j.id)
}

// Shutdown drains the server: new jobs and new leases are refused
// (503 — local workers take that as "exit"), outstanding leases may
// complete until ctx expires, then whatever is still leased is
// force-requeued and Shutdown returns. Requeued state dies with the
// process, but the shards' published results live in the store, so a
// resubmitted job on a fresh server resumes warm.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		s.expireLocked(time.Now())
		n := len(s.leases)
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for id, l := range s.leases {
				delete(s.leases, id)
				s.requeueLocked(l, "server shutdown")
			}
			s.mu.Unlock()
			return ctx.Err()
		case <-tick.C:
		}
	}
}
