// Package serve is sweep-as-a-service (DESIGN.md §7.8): an HTTP server
// that accepts design-space sweep jobs, partitions exhaustive jobs into
// deterministic shards (dse.Shard — enumeration index mod N), leases
// shards to workers over HTTP, and stitches the final frontier from the
// shared persistent evaluation store, byte-identical to a
// single-process `sttexplore dse` run.
//
// Failure tolerance rests entirely on determinism and content
// addressing: a lease carries a heartbeat deadline, an expired lease
// requeues its shard, the replacement worker re-plans the identical
// work list (dse.PlanShard), and everything its predecessor already
// published is a warm store hit — requeued work resumes instead of
// restarting, and duplicate completions publish byte-identical records
// (last-writer-wins is a no-op).
package serve

import (
	"fmt"
	"strings"

	"sttdl1/internal/dse"
	"sttdl1/internal/polybench"
)

// MaxJobBody bounds a job submission's body; anything larger is a 413
// before JSON decoding starts.
const MaxJobBody = 1 << 20

// JobRequest is the body of POST /v1/jobs. Unknown fields are rejected
// (a typo must not silently sweep a different space).
type JobRequest struct {
	// Space names a built-in design space (default "smoke").
	Space string `json:"space,omitempty"`
	// Axes optionally restricts named axes to subsets of their value
	// labels (dse.Restrict) — inline deltas without registering a space.
	Axes map[string][]string `json:"axes,omitempty"`
	// Benches selects a benchmark subset by name (empty = all), in the
	// order given — the same contract as `sttexplore dse -bench`.
	Benches []string `json:"benches,omitempty"`
	// Search is "exhaustive" (default) or "guided".
	Search string `json:"search,omitempty"`
	// Budget and Seed parameterize a guided search (defaults 64 and 1,
	// matching the CLI).
	Budget int   `json:"budget,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// Shards partitions an exhaustive job into this many leases
	// (0 = server default). Guided search is sequential by nature and
	// always runs as a single lease.
	Shards int `json:"shards,omitempty"`
	// Check runs every simulation under the timing-contract oracle.
	Check bool `json:"check,omitempty"`
}

// jobSpec is a validated, resolved JobRequest.
type jobSpec struct {
	Space      dse.Space
	Axes       map[string][]string
	Benches    []polybench.Bench // nil = all
	BenchNames []string
	Search     string
	Budget     int
	Seed       int64
	Shards     int
	Check      bool
}

// resolve validates a request against the space/benchmark registries
// and fills defaults. Every error here is a 4xx — the job is never
// enqueued.
func resolve(req JobRequest, defaultShards int) (jobSpec, error) {
	spec := jobSpec{
		Axes:       req.Axes,
		BenchNames: req.Benches,
		Search:     req.Search,
		Budget:     req.Budget,
		Seed:       req.Seed,
		Shards:     req.Shards,
		Check:      req.Check,
	}
	name := req.Space
	if name == "" {
		name = "smoke"
	}
	sp, ok := dse.ByName(name)
	if !ok {
		return jobSpec{}, fmt.Errorf("unknown design space %q; known: %s", name, strings.Join(dse.Names(), ", "))
	}
	sp, err := dse.Restrict(sp, req.Axes)
	if err != nil {
		return jobSpec{}, err
	}
	spec.Space = sp
	for _, bn := range req.Benches {
		b, ok := polybench.ByName(bn)
		if !ok {
			return jobSpec{}, fmt.Errorf("unknown benchmark %q; known: %s", bn, strings.Join(polybench.Names(), ", "))
		}
		spec.Benches = append(spec.Benches, b)
	}
	switch spec.Search {
	case "":
		spec.Search = "exhaustive"
	case "exhaustive", "guided":
	default:
		return jobSpec{}, fmt.Errorf("search must be exhaustive or guided (got %q)", spec.Search)
	}
	if spec.Budget == 0 {
		spec.Budget = 64
	}
	if spec.Budget < 0 {
		return jobSpec{}, fmt.Errorf("budget must be positive (got %d)", spec.Budget)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Shards == 0 {
		spec.Shards = defaultShards
	}
	if spec.Shards < 1 {
		return jobSpec{}, fmt.Errorf("shards must be >= 1 (got %d)", spec.Shards)
	}
	if spec.Search == "guided" {
		// Sequential by nature; the single lease warms the store for the
		// stitch rather than partitioning anything.
		spec.Shards = 1
	}
	return spec, nil
}

// JobStatus is the wire form of one job (GET /v1/jobs, GET
// /v1/jobs/{id}).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued|running|stitching|done|failed|canceled
	Space string `json:"space"`
	// Search echoes the resolved strategy; Check the oracle flag.
	Search string `json:"search"`
	Check  bool   `json:"check,omitempty"`
	Shards ShardCounts `json:"shards"`
	// Sims is the simulations workers have reported so far (heartbeats
	// plus completed shards) — progress accounting, not a result.
	Sims int `json:"sims,omitempty"`
	// Requeues counts shards returned to the queue by lease expiry or
	// canceled workers.
	Requeues int    `json:"requeues,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ShardCounts breaks a job's shards down by state.
type ShardCounts struct {
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
}

// Event is one line of a job's progress stream (GET
// /v1/jobs/{id}/events). Seq is dense from 0, so a consumer can resume
// with ?from=N after a dropped connection.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued|lease|progress|requeue|shard-done|shard-failed|stitching|done|failed|canceled
	Job  string `json:"job"`
	Shard  string `json:"shard,omitempty"`
	Worker string `json:"worker,omitempty"`
	Lease  string `json:"lease,omitempty"`
	Sims   int    `json:"sims,omitempty"`
	Msg    string `json:"msg,omitempty"`
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	Worker string `json:"worker,omitempty"`
}

// LeaseGrant is everything a worker needs to execute one shard: the
// job's resolved parameters (the worker re-resolves space and benches
// against the same registries — both sides are one binary) plus the
// lease identity and its heartbeat TTL.
type LeaseGrant struct {
	Lease string `json:"lease"`
	Job   string `json:"job"`
	Space string `json:"space"`
	Axes  map[string][]string `json:"axes,omitempty"`
	Benches []string `json:"benches,omitempty"`
	Search  string   `json:"search"`
	Budget  int      `json:"budget,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
	Check   bool     `json:"check,omitempty"`
	// Shard is "i/n" (dse.ParseShard).
	Shard string `json:"shard"`
	// TTLMS is the heartbeat deadline: a worker that stays silent this
	// long loses the lease and the shard requeues.
	TTLMS int64 `json:"ttl_ms"`
}

// HeartbeatBody extends a lease (POST /v1/leases/{id}/heartbeat).
type HeartbeatBody struct {
	// Sims is the worker's cumulative simulation count for this lease.
	Sims int `json:"sims"`
}

// FailBody reports a shard failure (POST /v1/leases/{id}/fail).
type FailBody struct {
	Error string `json:"error,omitempty"`
	// Canceled marks a worker-side shutdown rather than an evaluation
	// error: the shard requeues without consuming a retry.
	Canceled bool `json:"canceled,omitempty"`
}

// DoneBody completes a lease (POST /v1/leases/{id}/done).
type DoneBody struct {
	Sims int `json:"sims,omitempty"`
}
