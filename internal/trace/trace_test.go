package trace

import (
	"strings"
	"testing"

	"sttdl1/internal/mem"
)

func TestRecorderCapturesAndForwards(t *testing.T) {
	inner := &mem.FixedPort{Latency: 5}
	r := NewRecorder(inner, 0)
	done := r.Access(10, mem.Req{Addr: 0x40, Bytes: 4, Kind: mem.Read})
	if done != 15 {
		t.Errorf("done = %d", done)
	}
	if len(r.Events) != 1 {
		t.Fatalf("events = %d", len(r.Events))
	}
	e := r.Events[0]
	if e.Now != 10 || e.Done != 15 || e.Addr != 0x40 || e.Kind != mem.Read {
		t.Errorf("event = %+v", e)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(&mem.FixedPort{Latency: 1}, 3)
	for i := 0; i < 10; i++ {
		r.Access(int64(i), mem.Req{Addr: mem.Addr(i), Bytes: 4, Kind: mem.Read})
	}
	if len(r.Events) != 3 {
		t.Errorf("stored %d events, want 3", len(r.Events))
	}
	if r.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", r.Dropped)
	}
}

func TestReplay(t *testing.T) {
	src := NewRecorder(&mem.FixedPort{Latency: 2}, 0)
	for i := 0; i < 5; i++ {
		src.Access(int64(10*i), mem.Req{Addr: mem.Addr(64 * i), Bytes: 4, Kind: mem.Read})
	}
	dst := &mem.FixedPort{Latency: 9}
	last := Replay(src.Events, dst)
	if dst.Count != 5 {
		t.Errorf("replayed %d", dst.Count)
	}
	if last != 49 { // last issued at 40, +9
		t.Errorf("last = %d", last)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Now: 0, Done: 5, Addr: 0, Bytes: 4, Kind: mem.Read},
		{Now: 1, Done: 2, Addr: 64, Bytes: 4, Kind: mem.Write},
		{Now: 2, Done: 9, Addr: 4, Bytes: 4, Kind: mem.Read}, // reuse line 0, dist 2
		{Now: 3, Done: 3, Addr: 128, Bytes: 16, Kind: mem.Prefetch},
	}
	s := Summarize(events, 64)
	if s.Events != 4 {
		t.Errorf("events = %d", s.Events)
	}
	if s.UniqueLines != 3 {
		t.Errorf("unique lines = %d", s.UniqueLines)
	}
	if s.ByKind[mem.Read] != 2 || s.ByKind[mem.Write] != 1 || s.ByKind[mem.Prefetch] != 1 {
		t.Errorf("by kind = %v", s.ByKind)
	}
	if s.AvgReadLatency != 6 { // (5 + 7) / 2
		t.Errorf("avg read latency = %v", s.AvgReadLatency)
	}
	if s.MedianReuse != 2 {
		t.Errorf("median reuse = %d", s.MedianReuse)
	}
	if s.Footprint != 144-0 {
		t.Errorf("footprint = %d", s.Footprint)
	}
	text := s.String()
	if !strings.Contains(text, "unique lines    3") {
		t.Errorf("summary text:\n%s", text)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 64)
	if s.Events != 0 || s.MedianReuse != -1 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestDump(t *testing.T) {
	events := []Event{
		{Now: 1, Done: 2, Addr: 0x40, Bytes: 4, Kind: mem.Read},
		{Now: 3, Done: 4, Addr: 0x80, Bytes: 4, Kind: mem.Write},
	}
	out := Dump(events, 1)
	if strings.Count(out, "\n") != 1 {
		t.Errorf("dump of 1 event:\n%s", out)
	}
	if !strings.Contains(out, "read") {
		t.Error("kind missing from dump")
	}
	if out = Dump(events, 0); strings.Count(out, "\n") != 2 {
		t.Error("n=0 must dump everything")
	}
}
