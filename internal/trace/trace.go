// Package trace captures, summarizes, and replays data-side memory
// access traces. A Recorder wraps any mem.Port (typically the DL1
// front-end) and logs every request with its issue and completion
// cycles; the trace can then be analyzed (stream detection, line reuse
// distances, per-kind mix) or replayed against a different hierarchy —
// the classic trace-driven-simulation workflow.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"sttdl1/internal/mem"
)

// Event is one recorded access.
type Event struct {
	Now   int64
	Done  int64
	Addr  mem.Addr
	Bytes int
	Kind  mem.Kind
}

// Recorder is a mem.Port that records everything passing through it.
type Recorder struct {
	Inner  mem.Port
	Events []Event
	// Limit bounds the number of recorded events (0 = unlimited); the
	// recorder keeps counting but stops storing beyond it.
	Limit   int
	Dropped uint64
}

// NewRecorder wraps inner.
func NewRecorder(inner mem.Port, limit int) *Recorder {
	return &Recorder{Inner: inner, Limit: limit}
}

// Access implements mem.Port.
func (r *Recorder) Access(now int64, req mem.Req) int64 {
	done := r.Inner.Access(now, req)
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return done
	}
	r.Events = append(r.Events, Event{Now: now, Done: done, Addr: req.Addr, Bytes: req.Bytes, Kind: req.Kind})
	return done
}

// Replay pushes the recorded requests into port at their original issue
// cycles and returns the completion cycle of the last one.
func Replay(events []Event, port mem.Port) int64 {
	var last int64
	for _, e := range events {
		done := port.Access(e.Now, mem.Req{Addr: e.Addr, Bytes: e.Bytes, Kind: e.Kind})
		if done > last {
			last = done
		}
	}
	return last
}

// Summary aggregates a trace.
type Summary struct {
	Events      int
	ByKind      map[mem.Kind]int
	UniqueLines int
	// AvgLatency is mean (Done-Now) over demand reads.
	AvgReadLatency float64
	// MedianReuse is the median line reuse distance (distinct lines
	// touched between consecutive accesses to the same line); -1 when no
	// line is ever reused.
	MedianReuse int
	// Footprint is the touched byte span (max - min address).
	Footprint int64
}

// Summarize computes trace statistics with lineSize-aligned reuse
// analysis.
func Summarize(events []Event, lineSize int) Summary {
	s := Summary{ByKind: map[mem.Kind]int{}, Events: len(events), MedianReuse: -1}
	if len(events) == 0 {
		return s
	}
	if lineSize <= 0 {
		lineSize = 64
	}
	lastSeen := map[mem.Addr]int{} // line -> index in line-access sequence
	var reuses []int
	seq := 0
	var readLat, reads int64
	minAddr, maxAddr := events[0].Addr, events[0].Addr

	for _, e := range events {
		s.ByKind[e.Kind]++
		if e.Addr < minAddr {
			minAddr = e.Addr
		}
		if a := e.Addr + mem.Addr(e.Bytes); a > maxAddr {
			maxAddr = a
		}
		if e.Kind == mem.Read {
			readLat += e.Done - e.Now
			reads++
		}
		line := mem.LineAddr(e.Addr, lineSize)
		if prev, ok := lastSeen[line]; ok {
			reuses = append(reuses, seq-prev)
		}
		lastSeen[line] = seq
		seq++
	}
	s.UniqueLines = len(lastSeen)
	s.Footprint = int64(maxAddr - minAddr)
	if reads > 0 {
		s.AvgReadLatency = float64(readLat) / float64(reads)
	}
	if len(reuses) > 0 {
		sort.Ints(reuses)
		s.MedianReuse = reuses[len(reuses)/2]
	}
	return s
}

// String renders the summary for the stttrace tool.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events          %d\n", s.Events)
	kinds := make([]mem.Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-13s %d\n", k.String(), s.ByKind[k])
	}
	fmt.Fprintf(&b, "unique lines    %d\n", s.UniqueLines)
	fmt.Fprintf(&b, "footprint       %d bytes\n", s.Footprint)
	fmt.Fprintf(&b, "avg read lat    %.2f cycles\n", s.AvgReadLatency)
	fmt.Fprintf(&b, "median reuse    %d accesses\n", s.MedianReuse)
	return b.String()
}

// Dump renders up to n events as text lines (for inspection).
func Dump(events []Event, n int) string {
	if n <= 0 || n > len(events) {
		n = len(events)
	}
	var b strings.Builder
	for _, e := range events[:n] {
		fmt.Fprintf(&b, "%10d %-9s %#010x +%-3d done=%d\n", e.Now, e.Kind, e.Addr, e.Bytes, e.Done)
	}
	return b.String()
}
