// Package core implements the paper's primary contribution: the Very Wide
// Buffer (VWB) data-cache front-end that hides the STT-MRAM read latency
// of the L1 data cache, together with the two comparison structures of
// the paper's Fig. 8 — a small L0 mini-cache and the Enhanced MSHR
// (EMSHR) of the authors' earlier DATE'14 I-cache work — and a plain
// pass-through front-end used for the SRAM baseline and the drop-in NVM
// configuration.
//
// All front-ends sit between the core's load/store unit and the DL1 and
// implement mem.Port.
package core

import (
	"fmt"

	"sttdl1/internal/mem"
)

// FrontEnd is a DL1 front-end: a mem.Port with introspection hooks used
// by the experiment harness and tests.
type FrontEnd interface {
	mem.Port
	// Stats returns the front-end's own hit/miss counters (not the DL1's).
	Stats() mem.Stats
	// Name identifies the structure in reports.
	Name() string
	// Reset clears all state and counters.
	Reset()
	// ResetTiming clears clocks and counters but keeps resident lines
	// (for warm-up-then-measure methodology).
	ResetTiming()
}

// Direct is the trivial front-end: every access goes straight to the DL1.
// It models both the SRAM baseline and the "drop-in" NVM replacement of
// the paper's §III motivation experiment.
type Direct struct {
	dl1   mem.Port
	stats mem.Stats
}

// NewDirect wraps dl1 without any buffering.
func NewDirect(dl1 mem.Port) *Direct { return &Direct{dl1: dl1} }

// Access implements mem.Port.
func (d *Direct) Access(now int64, req mem.Req) int64 {
	d.stats.Record(req.Kind, false)
	return d.dl1.Access(now, req)
}

// Stats implements FrontEnd.
func (d *Direct) Stats() mem.Stats { return d.stats }

// Port returns the wrapped DL1-side port. The replay kernel registry
// (cpu.ShapeOf) unwraps a bare Direct front-end through it to call the
// cache concretely.
func (d *Direct) Port() mem.Port { return d.dl1 }

// RecordBulk folds pre-counted demand accesses of each class into the
// stats in one call. The ShapeDirect replay kernel skips the per-access
// Record — the class tallies are configuration-invariant properties of
// the trace prefix that retired — and reconciles here at end of pass,
// which is exact because Direct records every access as a miss
// (hit-tracking lives in the DL1 behind it).
func (d *Direct) RecordBulk(reads, writes, prefetches uint64) {
	d.stats.Reads += reads
	d.stats.Writes += writes
	d.stats.Prefetches += prefetches
}

// Name implements FrontEnd.
func (d *Direct) Name() string { return "direct" }

// Reset implements FrontEnd.
func (d *Direct) Reset() { d.stats = mem.Stats{} }

// ResetTiming implements FrontEnd.
func (d *Direct) ResetTiming() { d.stats = mem.Stats{} }

// entry is one line-wide slot of a fully associative buffer structure.
type entry struct {
	lineAddr mem.Addr
	valid    bool
	dirty    bool
	// spec marks a speculatively (prefetch-) filled row that no demand
	// access has touched yet.
	spec bool
	// ready is the cycle the (promotion/refill) fill completes; a demand
	// access before that waits for it.
	ready   int64
	lastUse uint64
}

// EvictPolicy selects the replacement policy of a buffer structure.
type EvictPolicy int

// Replacement policies.
const (
	// EvictLRU replaces the least-recently-used row (the default).
	EvictLRU EvictPolicy = iota
	// EvictFIFO replaces rows in allocation order (ablation: cheaper
	// hardware, no recency update path).
	EvictFIFO
)

func (p EvictPolicy) String() string {
	if p == EvictFIFO {
		return "fifo"
	}
	return "lru"
}

// buffer is the shared fully-associative bookkeeping of VWB/L0/EMSHR.
type buffer struct {
	entries  []entry
	lineSize int
	useClock uint64
	policy   EvictPolicy
	fifoNext int

	// pfRecent is a small filter of recently prefetched line addresses:
	// a PLD whose target was prefetched within pfWindow cycles is
	// dropped instead of re-reading the NVM array every loop iteration.
	// An evicted line becomes prefetchable again once the window passes.
	pfRecent []pfEntry
	pfHead   int

	// lastHit is an MRU probe hint: access streams are line-local, so
	// find checks the previous hit's slot before scanning. Purely an
	// optimization — never consulted for replacement decisions.
	lastHit int

	// full latches once every entry is valid, letting victim skip its
	// invalid-slot scan; invalidate and reset clear it (the EMSHR kills
	// single retained lines on stores, so free slots can reappear).
	full bool
}

type pfEntry struct {
	lineAddr mem.Addr
	at       int64
	valid    bool
}

// pfWindow is the suppression window of the prefetch filter, sized to a
// little over one promotion's worth of cycles.
const pfWindow = 32

func newBuffer(sizeBits, lineSize int) buffer {
	n := sizeBits / (lineSize * 8)
	if n < 1 {
		n = 1
	}
	return buffer{
		entries:  make([]entry, n),
		lineSize: lineSize,
		// The filter holds twice the row count so a burst of prefetches
		// cannot flush the suppression history of the lines it evicts.
		pfRecent: make([]pfEntry, 2*n),
	}
}

// prefetchFiltered records (lineAddr, now) in the filter and reports
// whether the same line was prefetched within the last pfWindow cycles
// (i.e., the prefetch should be dropped).
func (b *buffer) prefetchFiltered(now int64, lineAddr mem.Addr) bool {
	for _, e := range b.pfRecent {
		if e.valid && e.lineAddr == lineAddr && now-e.at < pfWindow {
			return true
		}
	}
	b.pfRecent[b.pfHead] = pfEntry{lineAddr: lineAddr, at: now, valid: true}
	b.pfHead = (b.pfHead + 1) % len(b.pfRecent)
	return false
}

func (b *buffer) find(lineAddr mem.Addr) *entry {
	if e := &b.entries[b.lastHit]; e.valid && e.lineAddr == lineAddr {
		return e
	}
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].lineAddr == lineAddr {
			b.lastHit = i
			return &b.entries[i]
		}
	}
	return nil
}

// specProtect is how long (cycles) a prefetched, not-yet-demanded row is
// shielded from eviction. Without it, the untouched prefetched row is by
// construction the LRU entry at the very moment the next stream's miss
// allocates — evicting every prefetch right before its use.
const specProtect = 48

// victim returns the next entry to replace at time now (preferring
// invalid slots, then unprotected LRU).
func (b *buffer) victim(now int64) *entry {
	if !b.full {
		for i := range b.entries {
			if !b.entries[i].valid {
				return &b.entries[i]
			}
		}
		b.full = true
	}
	if b.policy == EvictFIFO {
		e := &b.entries[b.fifoNext]
		b.fifoNext = (b.fifoNext + 1) % len(b.entries)
		return e
	}
	var best *entry
	for i := range b.entries {
		e := &b.entries[i]
		if e.spec && now < e.ready+specProtect {
			continue // freshly prefetched: protected
		}
		if best == nil || e.lastUse < best.lastUse {
			best = e
		}
	}
	if best != nil {
		return best
	}
	// Everything is a protected prefetch (pathological): plain LRU.
	best = &b.entries[0]
	for i := range b.entries {
		if b.entries[i].lastUse < best.lastUse {
			best = &b.entries[i]
		}
	}
	return best
}

// invalidate kills one entry and re-arms victim's invalid-slot scan so
// the freed slot is reused before any valid line is evicted.
func (b *buffer) invalidate(e *entry) {
	e.valid = false
	b.full = false
}

func (b *buffer) touch(e *entry) {
	b.useClock++
	e.lastUse = b.useClock
}

// resetTiming zeroes per-entry clocks and the prefetch filter, keeping
// the resident lines.
func (b *buffer) resetTiming() {
	for i := range b.entries {
		b.entries[i].ready = 0
	}
	for i := range b.pfRecent {
		b.pfRecent[i] = pfEntry{}
	}
	b.pfHead = 0
}

func (b *buffer) reset() {
	for i := range b.entries {
		b.entries[i] = entry{}
	}
	for i := range b.pfRecent {
		b.pfRecent[i] = pfEntry{}
	}
	b.pfHead = 0
	b.useClock = 0
	b.fifoNext = 0
	b.lastHit = 0
	b.full = false
}

// lines returns the number of entries (for tests).
func (b *buffer) lines() int { return len(b.entries) }

// Contains reports whether the line holding addr is resident (tests only).
func (b *buffer) contains(addr mem.Addr) bool {
	return b.find(mem.LineAddr(addr, b.lineSize)) != nil
}

func checkSize(name string, sizeBits, lineSize int) {
	if sizeBits <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("core: %s: size and line must be positive", name))
	}
	if sizeBits%(lineSize*8) != 0 {
		panic(fmt.Sprintf("core: %s: size %d bits not a multiple of the %d-bit line", name, sizeBits, lineSize*8))
	}
}
