package core

import (
	"testing"

	"sttdl1/internal/mem"
)

func bypass16() (*Bypass, *nvmPort) {
	p := &nvmPort{}
	return NewBypass(DefaultBypassConfig(), p), p
}

// read issues a demand read of addr at now and returns its completion.
func bpRead(b *Bypass, now int64, addr mem.Addr) int64 {
	return b.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: mem.Read})
}

func TestBypassPredictsStride(t *testing.T) {
	b, p := bypass16()
	// Two unit strides raise confidence to 2: the third read triggers a
	// pre-read of the next line.
	bpRead(b, 0, 0x000)
	bpRead(b, 10, 0x040)
	if p.fills != 0 {
		t.Fatalf("pre-read before confidence: fills = %d", p.fills)
	}
	bpRead(b, 20, 0x080) // conf=2: pre-reads 0x0c0
	if p.fills != 1 || b.PredFills != 1 {
		t.Fatalf("fills = %d, PredFills = %d, want 1/1", p.fills, b.PredFills)
	}
	if !b.Contains(0x0c0) {
		t.Fatal("predicted line not resident")
	}
	// The predicted read bypasses the array: no new DL1 read, hit
	// latency only (the pre-read from t=20 finishes at 24+transfer=25).
	reads := p.reads
	done := bpRead(b, 40, 0x0c4)
	if p.reads != reads {
		t.Error("bypass hit touched the NVM array")
	}
	if b.BypassHits != 1 {
		t.Errorf("BypassHits = %d, want 1", b.BypassHits)
	}
	if done != 41 {
		t.Errorf("bypass hit done = %d, want 41", done)
	}
}

func TestBypassHitWaitsForInFlightPreRead(t *testing.T) {
	b, _ := bypass16()
	bpRead(b, 0, 0x000)
	bpRead(b, 1, 0x040)
	bpRead(b, 2, 0x080) // pre-read of 0x0c0 issued at t=2, ready 2+4+1=7
	done := bpRead(b, 3, 0x0c0)
	if done != 8 { // waits to 7, +1 hit
		t.Errorf("done = %d, want 8", done)
	}
	if b.PredWaitCycles == 0 {
		t.Error("in-flight wait not accounted")
	}
}

func TestBypassMissPaysFullArrayLatency(t *testing.T) {
	b, p := bypass16()
	done := bpRead(b, 0, 0x2000)
	if done != 4 || p.reads != 1 {
		t.Errorf("unpredicted read done=%d reads=%d, want 4/1", done, p.reads)
	}
	if b.stats.ReadHits != 0 || b.stats.Reads != 1 {
		t.Errorf("stats %d/%d", b.stats.ReadHits, b.stats.Reads)
	}
}

func TestBypassStoreInvalidatesResidentLine(t *testing.T) {
	b, p := bypass16()
	bpRead(b, 0, 0x000)
	bpRead(b, 1, 0x040)
	bpRead(b, 2, 0x080) // 0x0c0 now resident (speculative)
	writes := p.writes
	b.Access(10, mem.Req{Addr: 0x0c8, Bytes: 4, Kind: mem.Write})
	if p.writes != writes+1 {
		t.Error("store must go to the DL1")
	}
	if b.Contains(0x0c0) {
		t.Error("stored-to line still resident in the read-only buffer")
	}
	if b.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", b.Invalidations)
	}
	// Never demanded before the kill: counts as a mispredict.
	if b.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d, want 1", b.Mispredicts)
	}
}

func TestBypassPrefetchPassesThrough(t *testing.T) {
	b, p := bypass16()
	done := b.Access(5, mem.Req{Addr: 0x3000, Bytes: 4, Kind: mem.Prefetch})
	if done != 5+4 { // forwarded verbatim; nvmPort read path
		t.Errorf("done = %d, want 9", done)
	}
	if p.reads != 1 {
		t.Error("prefetch must forward to the DL1")
	}
	if b.Contains(0x3000) {
		t.Error("pass-through prefetch must not install into the side buffer")
	}
	if b.stats.Prefetches != 1 || b.stats.Reads != 0 {
		t.Errorf("prefetch recorded %d/%d reads, want exactly one prefetch", b.stats.Prefetches, b.stats.Reads)
	}
}

// TestBypassDisabledIsPassThrough pins the degenerate mode the
// metamorphic sim test relies on: with the predictor disabled
// (PredEntries < 0) every access forwards verbatim.
func TestBypassDisabledIsPassThrough(t *testing.T) {
	cfg := DefaultBypassConfig()
	cfg.PredEntries = -1
	p := &nvmPort{}
	b := NewBypass(cfg, p)
	for i := 0; i < 20; i++ {
		addr := mem.Addr(i * 64)
		done := bpRead(b, int64(i), addr)
		if done != int64(i)+4 {
			t.Fatalf("read %d: done = %d, want %d", i, done, int64(i)+4)
		}
	}
	if p.fills != 0 || b.PredFills != 0 || b.BypassHits != 0 {
		t.Error("disabled predictor still pre-read")
	}
}

func TestBypassLifecycle(t *testing.T) {
	b, _ := bypass16()
	bpRead(b, 0, 0x000)
	bpRead(b, 1, 0x040)
	bpRead(b, 2, 0x080)
	b.ResetTiming()
	if b.BypassHits != 0 || b.PredFills != 0 || b.readFree != 0 {
		t.Error("ResetTiming must zero counters and clocks")
	}
	if !b.Contains(0x0c0) {
		t.Error("ResetTiming must keep resident lines")
	}
	b.Reset()
	if b.Contains(0x0c0) {
		t.Error("Reset must clear the buffer")
	}
	for _, s := range b.pred {
		if s.valid {
			t.Fatal("Reset must clear predictor streams")
		}
	}
}

// Prefetch-kind regressions across the front-ends (the bugfix sweep):
// a software prefetch is a hint — it must never block the core, never
// charge core-visible stall counters, and never move a port's busy
// clock backward.

func TestL0PrefetchDoesNotChargePortStall(t *testing.T) {
	p := &nvmPort{}
	l := NewL0(DefaultL0Config(), p)
	// A refill leaves the narrow port busy until critical+beats.
	l.Access(0, mem.Req{Addr: 0x000, Bytes: 4, Kind: mem.Read})
	stalls := l.PortStallCycles
	done := l.Access(1, mem.Req{Addr: 0x1000, Bytes: 4, Kind: mem.Prefetch})
	if done != 1 {
		t.Fatalf("prefetch blocked the core: done = %d", done)
	}
	if l.PortStallCycles != stalls {
		t.Errorf("prefetch charged PortStallCycles (%d -> %d); only core-visible waits may",
			stalls, l.PortStallCycles)
	}
	// A demand read DOES charge the counter for the same wait.
	l.Access(2, mem.Req{Addr: 0x2000, Bytes: 4, Kind: mem.Read})
	if l.PortStallCycles == stalls {
		t.Error("demand read should have charged the port wait")
	}
}

func TestEMSHRPrefetchKeepsPortMonotone(t *testing.T) {
	p := &nvmPort{}
	m := NewEMSHR(DefaultEMSHRConfig(), p)
	// The read's refill holds the port to critical+beats = 4+2 = 6.
	m.Access(0, mem.Req{Addr: 0x000, Bytes: 4, Kind: mem.Read})
	before := m.portFree
	if before != 6 {
		t.Fatalf("portFree = %d, want 6", before)
	}
	done := m.Access(1, mem.Req{Addr: 0x1000, Bytes: 4, Kind: mem.Prefetch})
	if done != 1 {
		t.Fatalf("prefetch blocked the core: done = %d", done)
	}
	if m.portFree < before {
		t.Errorf("prefetch moved the busy clock backward: %d -> %d", before, m.portFree)
	}
}

func TestPrefetchRecordedOncePerFrontEnd(t *testing.T) {
	for _, tc := range []struct {
		name string
		fe   FrontEnd
	}{
		{"vwb", NewVWB(DefaultVWBConfig(), &nvmPort{})},
		{"l0", NewL0(DefaultL0Config(), &nvmPort{})},
		{"emshr", NewEMSHR(DefaultEMSHRConfig(), &nvmPort{})},
		{"bypass", NewBypass(DefaultBypassConfig(), &nvmPort{})},
	} {
		tc.fe.Access(0, mem.Req{Addr: 0x5000, Bytes: 4, Kind: mem.Prefetch})
		st := tc.fe.Stats()
		if st.Prefetches != 1 {
			t.Errorf("%s: Prefetches = %d, want 1", tc.name, st.Prefetches)
		}
		if st.Reads != 0 || st.Writes != 0 {
			t.Errorf("%s: prefetch double-counted as a demand access (%d reads, %d writes)",
				tc.name, st.Reads, st.Writes)
		}
	}
}
