package core

import "sttdl1/internal/mem"

// Bypass is a prediction-driven NVM read-bypass front-end in the spirit
// of Kokolis et al., "Hiding the Increased Non-Volatile Cache Read
// Latency" (PAPERS.md): a small stride predictor watches the demand
// read stream and pre-reads predicted-next lines out of the banked NVM
// array into a fast side buffer. A read the predictor anticipated is
// served from the buffer at SRAM-like latency, bypassing the long array
// sense entirely; a read it did not anticipate pays the full array
// latency — unlike the VWB there is no on-miss promotion, so the
// structure only ever wins when the predictor is right, and a wrong
// prediction costs a wasted wide array read on top of the baseline's
// own latency.
//
// Store policy: the side buffer is read-only. A store to a resident
// line invalidates the buffered copy and updates the DL1 directly, so
// a word always has a single source of truth (the oracle's shadow
// model relies on this). Buffer lines are therefore always clean and
// evictions are silent.
//
// Software prefetches pass straight through to the DL1: the side
// buffer is predictor-managed, and pass-through keeps the disabled
// structure cycle-identical to the Direct front-end.
type Bypass struct {
	buf      buffer
	dl1      mem.Port
	hitLat   int64
	transfer int64
	stats    mem.Stats

	// readFree is the single read port's busy-until clock; pre-reads
	// land through a separate fill port (like the VWB's two-row
	// organization), so only bypass hits serialize here.
	readFree int64

	pred      []stream
	predClock uint64

	// BypassHits counts reads served from the side buffer instead of
	// the NVM array (== the front-end's read hits; kept as an explicit
	// counter for reports).
	BypassHits uint64
	// PredFills counts predictor-triggered wide array pre-reads.
	PredFills uint64
	// Mispredicts counts pre-read rows evicted or invalidated before
	// any demand read touched them (each one a wasted array read).
	Mispredicts uint64
	// Invalidations counts store-induced kills of buffered lines.
	Invalidations uint64
	// PredWaitCycles accumulates cycles demand reads spent waiting for
	// an in-flight pre-read of their own line.
	PredWaitCycles int64
}

// stream is one entry of the stride predictor: a demand-read stream
// with its last line, detected stride and confidence.
type stream struct {
	lastLine int64
	stride   int64
	conf     int8
	valid    bool
	lastUse  uint64
}

// streamWindow is how far (in lines, either direction) a read may land
// from a stream's last line and still be considered its continuation.
const streamWindow = 8

// BypassConfig sizes the side buffer and the predictor.
type BypassConfig struct {
	// SizeBits is the side buffer's total capacity (line-wide rows,
	// fully associative, like the VWB's register-file organization).
	SizeBits int
	// LineSize is the DL1 line size in bytes (the pre-read width).
	LineSize int
	// HitLat is the buffer hit latency in cycles.
	HitLat int64
	// TransferCycles is the time to write a pre-read line into its row
	// after the array read delivers it.
	TransferCycles int64
	// PredEntries is the number of predictor streams (0 = default 16;
	// negative disables prediction — the front-end then degenerates to
	// an exact pass-through).
	PredEntries int
	// Policy selects the row replacement policy (default LRU).
	Policy EvictPolicy
}

// DefaultBypassConfig matches the VWB's footprint for fairness: 2 Kbit
// of rows over 512-bit lines, 1-cycle hits, plus a 16-stream predictor.
func DefaultBypassConfig() BypassConfig {
	return BypassConfig{SizeBits: 2048, LineSize: 64, HitLat: 1, TransferCycles: 1, PredEntries: 16}
}

// NewBypass builds the read-bypass structure in front of dl1.
func NewBypass(cfg BypassConfig, dl1 mem.Port) *Bypass {
	checkSize("Bypass", cfg.SizeBits, cfg.LineSize)
	if cfg.HitLat <= 0 {
		cfg.HitLat = 1
	}
	if cfg.TransferCycles < 0 {
		cfg.TransferCycles = 0
	}
	if cfg.PredEntries == 0 {
		cfg.PredEntries = 16
	}
	buf := newBuffer(cfg.SizeBits, cfg.LineSize)
	buf.policy = cfg.Policy
	b := &Bypass{
		buf:      buf,
		dl1:      dl1,
		hitLat:   cfg.HitLat,
		transfer: cfg.TransferCycles,
	}
	if cfg.PredEntries > 0 {
		b.pred = make([]stream, cfg.PredEntries)
	}
	return b
}

// Name implements FrontEnd.
func (b *Bypass) Name() string { return "bypass" }

// Stats implements FrontEnd.
func (b *Bypass) Stats() mem.Stats { return b.stats }

// Lines returns the side buffer's entry count (size/line).
func (b *Bypass) Lines() int { return b.buf.lines() }

// Contains reports residence of addr's line (tests only).
func (b *Bypass) Contains(addr mem.Addr) bool { return b.buf.contains(addr) }

// BusyClocks returns the read-port busy-until clock, for the invariant
// checker's monotonicity check.
func (b *Bypass) BusyClocks() []int64 { return []int64{b.readFree} }

// Access implements mem.Port.
func (b *Bypass) Access(now int64, req mem.Req) int64 {
	lineAddr := mem.LineAddr(req.Addr, b.buf.lineSize)
	e := b.buf.find(lineAddr)

	switch req.Kind {
	case mem.Read, mem.Fetch:
		if e != nil {
			// Bypass hit: the NVM array is never touched.
			e.spec = false
			b.buf.touch(e)
			b.stats.Record(mem.Read, true)
			b.BypassHits++
			start := now
			if b.readFree > start {
				start = b.readFree
			}
			if e.ready > start { // pre-read still in flight
				b.PredWaitCycles += e.ready - start
				start = e.ready
			}
			done := start + b.hitLat
			b.readFree = done
			b.train(now, lineAddr)
			return done
		}
		// Predictor miss: the demand read pays the full array latency.
		b.stats.Record(mem.Read, false)
		done := b.dl1.Access(now, req)
		b.train(now, lineAddr)
		return done

	case mem.Write:
		if e != nil {
			// Read-only buffer: the copy dies, the DL1 takes the store.
			e.valid = false
			if e.spec {
				b.Mispredicts++
			}
			b.Invalidations++
		}
		b.stats.Record(mem.Write, false)
		return b.dl1.Access(now, req)

	case mem.Prefetch:
		b.stats.Record(mem.Prefetch, false)
		return b.dl1.Access(now, req)

	default:
		return b.dl1.Access(now, req)
	}
}

// train advances the stride predictor with a demand read of lineAddr
// (issued at cycle now) and, once a stream is confident, pre-reads the
// predicted next line into the side buffer.
func (b *Bypass) train(now int64, lineAddr mem.Addr) {
	if len(b.pred) == 0 {
		return
	}
	lineN := int64(lineAddr / mem.Addr(b.buf.lineSize))
	b.predClock++

	// The read continues the first stream whose last line is within the
	// window (fixed scan order keeps this deterministic).
	var s *stream
	for i := range b.pred {
		p := &b.pred[i]
		if p.valid {
			if d := lineN - p.lastLine; d >= -streamWindow && d <= streamWindow {
				s = p
				break
			}
		}
	}
	if s == nil {
		// A fresh stream replaces the least-recently-matched one.
		s = &b.pred[0]
		for i := range b.pred {
			p := &b.pred[i]
			if !p.valid {
				s = p
				break
			}
			if p.lastUse < s.lastUse {
				s = p
			}
		}
		*s = stream{lastLine: lineN, valid: true, lastUse: b.predClock}
		return
	}
	s.lastUse = b.predClock
	d := lineN - s.lastLine
	if d == 0 {
		return // same line re-read: no stride information
	}
	if d == s.stride {
		if s.conf < 3 {
			s.conf++
		}
	} else {
		s.stride = d
		s.conf = 1
	}
	s.lastLine = lineN
	if s.conf >= 2 {
		if next := lineN + s.stride; next >= 0 {
			b.predFill(now, mem.Addr(next)*mem.Addr(b.buf.lineSize))
		}
	}
}

// predFill pre-reads lineAddr from the DL1 into the side buffer (one
// wide array read, then TransferCycles to write the row). Issued at the
// triggering access's own cycle, so port timestamps stay monotone; the
// pre-read contends for the banked array behind the demand access but
// never blocks the core.
func (b *Bypass) predFill(now int64, lineAddr mem.Addr) {
	if b.buf.find(lineAddr) != nil {
		return
	}
	fillDone := b.dl1.Access(now, mem.Req{Addr: lineAddr, Bytes: b.buf.lineSize, Kind: mem.Fill})
	b.PredFills++

	victim := b.buf.victim(now)
	if victim.valid && victim.spec {
		b.Mispredicts++
	}
	*victim = entry{lineAddr: lineAddr, valid: true, spec: true, ready: fillDone + b.transfer}
	b.buf.touch(victim)
}

// ResetTiming implements FrontEnd. Predictor streams persist like
// resident lines (they are contents, not clocks).
func (b *Bypass) ResetTiming() {
	b.buf.resetTiming()
	b.stats = mem.Stats{}
	b.readFree = 0
	b.BypassHits = 0
	b.PredFills = 0
	b.Mispredicts = 0
	b.Invalidations = 0
	b.PredWaitCycles = 0
}

// Reset implements FrontEnd.
func (b *Bypass) Reset() {
	b.buf.reset()
	b.stats = mem.Stats{}
	b.readFree = 0
	for i := range b.pred {
		b.pred[i] = stream{}
	}
	b.predClock = 0
	b.BypassHits = 0
	b.PredFills = 0
	b.Mispredicts = 0
	b.Invalidations = 0
	b.PredWaitCycles = 0
}
