package core

import "sttdl1/internal/mem"

// L0Cache is the paper's first Fig. 8 comparison point: "a variation of
// the commonly used L0 cache" (as in TI's TMS320C64x DSPs), made fully
// associative and sized like the VWB (2 Kbit) for fairness, but — unlike
// the VWB — with a narrow interface that "conforms to the interface of
// the regular size memory array".
//
// The narrow interface is the handicap: a refill moves the line in
// word-beats over the regular datapath, so after the critical word
// arrives the L0 port *and* the DL1 bank stay busy for the remaining
// beats, stalling back-to-back misses and hits alike.
type L0Cache struct {
	buf      buffer
	dl1      mem.Port
	hitLat   int64
	beats    int64 // refill beats after the critical word
	portFree int64
	stats    mem.Stats

	// Refills counts line fills into the L0.
	Refills uint64
	// PortStallCycles accumulates cycles accesses waited on the single
	// narrow port (mostly refill shadows).
	PortStallCycles int64
}

// L0Config sizes the mini cache.
type L0Config struct {
	SizeBits int
	LineSize int
	HitLat   int64
	// BeatBytes is the width of the narrow refill interface (8 bytes,
	// the scalar datapath width, unless overridden).
	BeatBytes int
}

// DefaultL0Config matches the Fig. 8 setup: 2 Kbit, DL1 line size,
// 1-cycle hits, refills in 256-bit beats (the "regular size memory
// array" interface width of Table I's SRAM column).
func DefaultL0Config() L0Config {
	return L0Config{SizeBits: 2048, LineSize: 64, HitLat: 1, BeatBytes: 32}
}

// NewL0 builds the L0 mini-cache in front of dl1.
func NewL0(cfg L0Config, dl1 mem.Port) *L0Cache {
	checkSize("L0", cfg.SizeBits, cfg.LineSize)
	if cfg.HitLat <= 0 {
		cfg.HitLat = 1
	}
	if cfg.BeatBytes <= 0 {
		cfg.BeatBytes = 32
	}
	return &L0Cache{
		buf:    newBuffer(cfg.SizeBits, cfg.LineSize),
		dl1:    dl1,
		hitLat: cfg.HitLat,
		beats:  int64(cfg.LineSize / cfg.BeatBytes),
	}
}

// Name implements FrontEnd.
func (l *L0Cache) Name() string { return "l0" }

// Stats implements FrontEnd.
func (l *L0Cache) Stats() mem.Stats { return l.stats }

// Contains reports residence of addr's line (tests only).
func (l *L0Cache) Contains(addr mem.Addr) bool { return l.buf.contains(addr) }

// BusyClocks returns the narrow-port busy-until clock, for the invariant
// checker's monotonicity check.
func (l *L0Cache) BusyClocks() []int64 { return []int64{l.portFree} }

// waitPort advances now past the narrow port's busy clock. Only
// core-visible waits charge PortStallCycles: a software prefetch is
// fire-and-forget, so its issue waits for the port (charge=false) but
// never stalls the core.
func (l *L0Cache) waitPort(now int64, charge bool) int64 {
	if l.portFree > now {
		if charge {
			l.PortStallCycles += l.portFree - now
		}
		now = l.portFree
	}
	return now
}

// Access implements mem.Port.
func (l *L0Cache) Access(now int64, req mem.Req) int64 {
	lineAddr := mem.LineAddr(req.Addr, l.buf.lineSize)
	e := l.buf.find(lineAddr)

	switch req.Kind {
	case mem.Read, mem.Fetch:
		start := l.waitPort(now, true)
		if e != nil {
			e.spec = false
			l.buf.touch(e)
			l.stats.Record(mem.Read, true)
			if e.ready > start {
				start = e.ready
			}
			done := start + l.hitLat
			l.portFree = done
			return done
		}
		l.stats.Record(mem.Read, false)
		return l.refill(start, lineAddr)

	case mem.Write:
		start := l.waitPort(now, true)
		if e != nil {
			l.buf.touch(e)
			e.dirty = true
			l.stats.Record(mem.Write, true)
			if e.ready > start {
				start = e.ready
			}
			done := start + l.hitLat
			l.portFree = done
			return done
		}
		l.stats.Record(mem.Write, false)
		return l.dl1.Access(start, req)

	case mem.Prefetch:
		// Non-blocking: resident or filtered hints cost nothing, a useful
		// one issues its refill once the port frees — the core never
		// waits either way.
		if e != nil || l.buf.prefetchFiltered(now, lineAddr) {
			l.stats.Record(mem.Prefetch, true)
			return now
		}
		l.stats.Record(mem.Prefetch, false)
		l.refill(l.waitPort(now, false), lineAddr)
		if sp := l.buf.find(lineAddr); sp != nil {
			sp.spec = true
		}
		return now

	default:
		return l.dl1.Access(l.waitPort(now, true), req)
	}
}

// refill fetches lineAddr through the narrow interface. The critical word
// reaches the core when the DL1 read completes; the remaining beats keep
// the port busy afterwards.
func (l *L0Cache) refill(start int64, lineAddr mem.Addr) int64 {
	critical := l.dl1.Access(start, mem.Req{Addr: lineAddr, Bytes: l.buf.lineSize, Kind: mem.Fill})
	l.Refills++

	victim := l.buf.victim(start)
	if victim.valid && victim.dirty {
		// Dirty castouts drain through the DL1's write path; issued at
		// the refill start so port timestamps stay monotone.
		l.dl1.Access(start, mem.Req{Addr: victim.lineAddr, Bytes: l.buf.lineSize, Kind: mem.WriteBack})
	}
	l.portFree = critical + l.beats
	*victim = entry{lineAddr: lineAddr, valid: true, ready: critical + l.beats}
	l.buf.touch(victim)
	return critical
}

// ResetTiming implements FrontEnd.
func (l *L0Cache) ResetTiming() {
	l.buf.resetTiming()
	l.portFree = 0
	l.stats = mem.Stats{}
	l.Refills = 0
	l.PortStallCycles = 0
}

// Reset implements FrontEnd.
func (l *L0Cache) Reset() {
	l.buf.reset()
	l.portFree = 0
	l.stats = mem.Stats{}
	l.Refills = 0
	l.PortStallCycles = 0
}
