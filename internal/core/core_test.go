package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sttdl1/internal/mem"
)

// nvmPort mimics a 4-cycle-read / 2-cycle-write NVM DL1 with counters.
type nvmPort struct {
	reads, writes, fills, writebacks int
	lastKind                         mem.Kind
}

func (p *nvmPort) Access(now int64, req mem.Req) int64 {
	p.lastKind = req.Kind
	switch req.Kind {
	case mem.Write, mem.WriteBack:
		p.writes++
		if req.Kind == mem.WriteBack {
			p.writebacks++
		}
		return now + 2
	case mem.Fill:
		p.fills++
		return now + 4
	default:
		p.reads++
		return now + 4
	}
}

func vwb4() (*VWB, *nvmPort) {
	p := &nvmPort{}
	return NewVWB(DefaultVWBConfig(), p), p
}

func TestVWBLines(t *testing.T) {
	v, _ := vwb4()
	if v.Lines() != 4 {
		t.Fatalf("2Kbit / 512bit = 4 rows, got %d", v.Lines())
	}
	v2 := NewVWB(VWBConfig{SizeBits: 1024, LineSize: 64, HitLat: 1}, &nvmPort{})
	if v2.Lines() != 2 {
		t.Fatalf("1Kbit = 2 rows, got %d", v2.Lines())
	}
}

func TestVWBLoadPolicy(t *testing.T) {
	v, p := vwb4()
	// Miss: the line is promoted from the DL1 (one wide Fill).
	done := v.Access(0, mem.Req{Addr: 0x100, Bytes: 4, Kind: mem.Read})
	if p.fills != 1 {
		t.Fatalf("fills = %d, want 1", p.fills)
	}
	if done != 0+4+1 { // fill (4) + MUX word (1)
		t.Errorf("miss done = %d, want 5", done)
	}
	if !v.Contains(0x100) {
		t.Error("promoted line must be resident")
	}
	// Hit: 1 cycle, no DL1 traffic.
	done = v.Access(100, mem.Req{Addr: 0x104, Bytes: 4, Kind: mem.Read})
	if done != 101 {
		t.Errorf("hit done = %d, want 101", done)
	}
	if p.fills != 1 || p.reads != 0 {
		t.Error("hit must not touch the DL1")
	}
	st := v.Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestVWBStorePolicy(t *testing.T) {
	v, p := vwb4()
	// Store miss: no-allocate in the VWB, straight to the DL1.
	done := v.Access(0, mem.Req{Addr: 0x200, Bytes: 4, Kind: mem.Write})
	if done != 2 {
		t.Errorf("store miss done = %d, want DL1 write at 2", done)
	}
	if v.Contains(0x200) {
		t.Error("store miss must not allocate")
	}
	if p.writes != 1 {
		t.Errorf("DL1 writes = %d", p.writes)
	}
	// Promote the line, then a store hits the buffer row.
	v.Access(10, mem.Req{Addr: 0x200, Bytes: 4, Kind: mem.Read})
	done = v.Access(100, mem.Req{Addr: 0x204, Bytes: 4, Kind: mem.Write})
	if done != 101 {
		t.Errorf("store hit done = %d, want 101", done)
	}
	if p.writes != 1 {
		t.Error("store hit must stay in the buffer")
	}
}

func TestVWBDirtyEvictionWritesBack(t *testing.T) {
	v, p := vwb4()
	v.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	v.Access(10, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Write}) // dirty row 0
	// Fill the remaining rows and one more to evict line 0.
	for i := 1; i <= 4; i++ {
		v.Access(int64(100*i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	if p.writebacks != 1 {
		t.Errorf("writebacks = %d, want 1 (dirty row 0)", p.writebacks)
	}
	if v.Contains(0) {
		t.Error("line 0 must be evicted")
	}
	if v.WriteBacks != 1 {
		t.Errorf("VWB writeback counter = %d", v.WriteBacks)
	}
}

func TestVWBCleanEvictionSilent(t *testing.T) {
	v, p := vwb4()
	for i := 0; i <= 4; i++ {
		v.Access(int64(100*i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	if p.writebacks != 0 {
		t.Errorf("clean evictions must be silent, got %d writebacks", p.writebacks)
	}
}

func TestVWBLRU(t *testing.T) {
	v, _ := vwb4()
	for i := 0; i < 4; i++ {
		v.Access(int64(10*i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	// Touch line 0 so line 1 (64) is LRU.
	v.Access(100, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	v.Access(200, mem.Req{Addr: 1024, Bytes: 4, Kind: mem.Read})
	if v.Contains(64) {
		t.Error("LRU line 64 should be evicted")
	}
	if !v.Contains(0) {
		t.Error("MRU line 0 should stay")
	}
}

func TestVWBFIFO(t *testing.T) {
	cfg := DefaultVWBConfig()
	cfg.Policy = EvictFIFO
	v := NewVWB(cfg, &nvmPort{})
	for i := 0; i < 4; i++ {
		v.Access(int64(10*i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	v.Access(100, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read}) // touch does not matter for FIFO
	v.Access(200, mem.Req{Addr: 1024, Bytes: 4, Kind: mem.Read})
	if v.Contains(0) {
		t.Error("FIFO must evict the oldest allocation (line 0) despite the touch")
	}
}

func TestVWBPrefetchNonBlockingAndFiltered(t *testing.T) {
	v, p := vwb4()
	done := v.Access(50, mem.Req{Addr: 0x400, Bytes: 4, Kind: mem.Prefetch})
	if done != 50 {
		t.Errorf("prefetch must not block, got %d", done)
	}
	if p.fills != 1 || !v.Contains(0x400) {
		t.Error("prefetch must promote the line")
	}
	// Evict 0x400 with four more prefetches (with every row speculative,
	// the victim policy falls back to plain LRU, so the oldest — 0x400 —
	// goes first).
	for i := 0; i < 4; i++ {
		v.Access(int64(52+i), mem.Req{Addr: mem.Addr(0x1000 + i*64), Bytes: 4, Kind: mem.Prefetch})
	}
	if v.Contains(0x400) {
		t.Fatal("0x400 should be evicted")
	}
	if v.PrefetchWasted == 0 {
		t.Error("evicting an untouched prefetch must count as wasted")
	}
	fills := p.fills
	v.Access(60, mem.Req{Addr: 0x400, Bytes: 4, Kind: mem.Prefetch}) // within 32-cycle window of t=50
	if p.fills != fills {
		t.Error("re-prefetch within the filter window must be dropped")
	}
	v.Access(150, mem.Req{Addr: 0x400, Bytes: 4, Kind: mem.Prefetch}) // window passed
	if p.fills != fills+1 {
		t.Error("prefetch after the window must promote again")
	}
}

func TestVWBPrefetchProtection(t *testing.T) {
	v, _ := vwb4()
	// Fill all four rows with demand lines.
	for i := 0; i < 4; i++ {
		v.Access(int64(i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	// Prefetch a new line (evicts the LRU demand line 0)...
	v.Access(20, mem.Req{Addr: 0x800, Bytes: 4, Kind: mem.Prefetch})
	if !v.Contains(0x800) {
		t.Fatal("prefetch must allocate")
	}
	// ...then a demand miss shortly after must NOT evict the protected
	// prefetched row.
	v.Access(25, mem.Req{Addr: 0x900, Bytes: 4, Kind: mem.Read})
	if !v.Contains(0x800) {
		t.Error("freshly prefetched row evicted despite protection")
	}
	if v.PrefetchWasted != 0 {
		t.Errorf("wasted = %d", v.PrefetchWasted)
	}
	// A demand hit consumes the prefetch.
	v.Access(40, mem.Req{Addr: 0x800, Bytes: 4, Kind: mem.Read})
	if v.PrefetchUseful != 1 {
		t.Errorf("useful = %d, want 1", v.PrefetchUseful)
	}
}

func TestVWBReadPortSerializes(t *testing.T) {
	v, _ := vwb4()
	v.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	d1 := v.Access(100, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	d2 := v.Access(100, mem.Req{Addr: 4, Bytes: 4, Kind: mem.Read})
	if d1 != 101 || d2 != 102 {
		t.Errorf("read port must serialize 1/cycle: %d, %d", d1, d2)
	}
	// Writes use the other port and proceed concurrently.
	v.Access(100, mem.Req{Addr: 8, Bytes: 4, Kind: mem.Write})
	d3 := v.Access(100, mem.Req{Addr: 12, Bytes: 4, Kind: mem.Write})
	if d3 != 102 {
		t.Errorf("write port independent of reads but serial with writes: %d", d3)
	}
}

func TestVWBResetAndResetTiming(t *testing.T) {
	v, _ := vwb4()
	v.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	v.ResetTiming()
	if !v.Contains(0) {
		t.Error("ResetTiming must keep rows")
	}
	if v.Stats().Reads != 0 || v.Promotions != 0 {
		t.Error("ResetTiming must clear counters")
	}
	v.Reset()
	if v.Contains(0) {
		t.Error("Reset must drop rows")
	}
}

func TestL0RefillBlocksPort(t *testing.T) {
	p := &nvmPort{}
	l := NewL0(DefaultL0Config(), p)
	// Miss: critical word at fill time, then the port streams beats.
	done := l.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	if done != 4 {
		t.Errorf("critical word at %d, want 4", done)
	}
	// A hit to another resident line right after the refill waits for
	// the beats (64B / 32B = 2 beats after critical).
	l.Access(100, mem.Req{Addr: 64, Bytes: 4, Kind: mem.Read}) // second line: miss at 100, crit 104, port to 106
	d := l.Access(105, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	if d <= 106 {
		t.Errorf("hit during refill beats must wait: done = %d", d)
	}
	if l.PortStallCycles == 0 {
		t.Error("port stalls not recorded")
	}
}

func TestL0StorePolicy(t *testing.T) {
	p := &nvmPort{}
	l := NewL0(DefaultL0Config(), p)
	l.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	// Store hit updates the L0 (write-back).
	l.Access(50, mem.Req{Addr: 4, Bytes: 4, Kind: mem.Write})
	if p.writes != 0 {
		t.Error("store hit must stay in L0")
	}
	// Store miss goes to the DL1.
	l.Access(60, mem.Req{Addr: 4096, Bytes: 4, Kind: mem.Write})
	if p.writes != 1 {
		t.Error("store miss must go to DL1")
	}
	// Evicting the dirty line writes it back.
	for i := 1; i <= 4; i++ {
		l.Access(int64(100*i), mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
	}
	if p.writebacks != 1 {
		t.Errorf("dirty castout writebacks = %d", p.writebacks)
	}
}

func TestEMSHRStoreInvalidates(t *testing.T) {
	p := &nvmPort{}
	m := NewEMSHR(DefaultEMSHRConfig(), p)
	m.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	if !m.Contains(0) {
		t.Fatal("line must be retained after the fill")
	}
	m.Access(50, mem.Req{Addr: 4, Bytes: 4, Kind: mem.Write})
	if m.Contains(0) {
		t.Error("a store must invalidate the retained line")
	}
	if m.Invalidations != 1 {
		t.Errorf("invalidations = %d", m.Invalidations)
	}
	if p.writes != 1 {
		t.Error("the store itself must reach the DL1")
	}
}

func TestEMSHRServesRetainedLines(t *testing.T) {
	p := &nvmPort{}
	m := NewEMSHR(DefaultEMSHRConfig(), p)
	m.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	fills := p.fills
	done := m.Access(100, mem.Req{Addr: 8, Bytes: 4, Kind: mem.Read})
	if p.fills != fills {
		t.Error("retained line must serve without re-fetch")
	}
	if done != 101 {
		t.Errorf("retained hit done = %d, want 101", done)
	}
}

func TestDirectPassThrough(t *testing.T) {
	p := &nvmPort{}
	d := NewDirect(p)
	if done := d.Access(7, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read}); done != 11 {
		t.Errorf("done = %d, want 11", done)
	}
	if d.Name() != "direct" {
		t.Error("name")
	}
	if d.Stats().Reads != 1 {
		t.Error("stats must count")
	}
	d.Reset()
	if d.Stats().Reads != 0 {
		t.Error("reset")
	}
}

func TestFrontEndNames(t *testing.T) {
	p := &nvmPort{}
	if NewVWB(DefaultVWBConfig(), p).Name() != "vwb" {
		t.Error("vwb name")
	}
	if NewL0(DefaultL0Config(), p).Name() != "l0" {
		t.Error("l0 name")
	}
	if NewEMSHR(DefaultEMSHRConfig(), p).Name() != "emshr" {
		t.Error("emshr name")
	}
}

func TestCheckSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-multiple size")
		}
	}()
	NewVWB(VWBConfig{SizeBits: 100, LineSize: 64}, &nvmPort{})
}

// Property: occupancy never exceeds rows; completion never precedes
// issue; every resident line is 64B-aligned.
func TestVWBRandomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, _ := vwb4()
		now := int64(0)
		for i := 0; i < 400; i++ {
			now += int64(r.Intn(4))
			kind := mem.Read
			switch r.Intn(4) {
			case 0:
				kind = mem.Write
			case 1:
				kind = mem.Prefetch
			}
			addr := mem.Addr(r.Intn(2048)) &^ 3
			done := v.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: kind})
			if done < now {
				return false
			}
			resident := 0
			for _, e := range v.buf.entries {
				if e.valid {
					resident++
					if e.lineAddr%64 != 0 {
						return false
					}
				}
			}
			if resident > v.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the three buffer structures are deterministic.
func TestFrontEndDeterminism(t *testing.T) {
	mkSeq := func(fe FrontEnd) []int64 {
		r := rand.New(rand.NewSource(3))
		var out []int64
		now := int64(0)
		for i := 0; i < 1000; i++ {
			now += int64(r.Intn(3))
			addr := mem.Addr(r.Intn(4096))
			kind := mem.Read
			if r.Intn(3) == 0 {
				kind = mem.Write
			}
			out = append(out, fe.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: kind}))
		}
		return out
	}
	builders := []func() FrontEnd{
		func() FrontEnd { return NewVWB(DefaultVWBConfig(), &nvmPort{}) },
		func() FrontEnd { return NewL0(DefaultL0Config(), &nvmPort{}) },
		func() FrontEnd { return NewEMSHR(DefaultEMSHRConfig(), &nvmPort{}) },
	}
	for _, mk := range builders {
		a, b := mkSeq(mk()), mkSeq(mk())
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: divergence at %d", mk().Name(), i)
			}
		}
	}
}

func TestEvictPolicyString(t *testing.T) {
	if EvictLRU.String() != "lru" || EvictFIFO.String() != "fifo" {
		t.Error("policy names")
	}
}

func TestL0AndEMSHRLifecycle(t *testing.T) {
	p := &nvmPort{}
	l := NewL0(DefaultL0Config(), p)
	l.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	if l.Stats().Reads != 1 {
		t.Error("l0 stats")
	}
	if !l.Contains(0) {
		t.Error("l0 contains")
	}
	l.ResetTiming()
	if !l.Contains(0) || l.Stats().Reads != 0 {
		t.Error("l0 ResetTiming must keep lines, clear counters")
	}
	l.Reset()
	if l.Contains(0) {
		t.Error("l0 Reset must drop lines")
	}

	m := NewEMSHR(DefaultEMSHRConfig(), p)
	m.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	if m.Stats().Reads != 1 {
		t.Error("emshr stats")
	}
	m.ResetTiming()
	if !m.Contains(0) || m.Stats().Reads != 0 {
		t.Error("emshr ResetTiming")
	}
	m.Reset()
	if m.Contains(0) {
		t.Error("emshr Reset")
	}

	d := NewDirect(p)
	d.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	d.ResetTiming()
	if d.Stats().Reads != 0 {
		t.Error("direct ResetTiming")
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	if c := DefaultVWBConfig(); c.SizeBits != 2048 || c.LineSize != 64 {
		t.Error("vwb defaults")
	}
	if c := DefaultL0Config(); c.BeatBytes != 32 {
		t.Error("l0 defaults")
	}
	if c := DefaultEMSHRConfig(); c.BeatBytes != 32 {
		t.Error("emshr defaults")
	}
	// Zero-valued optional fields get sane defaults.
	v := NewVWB(VWBConfig{SizeBits: 1024, LineSize: 64}, &nvmPort{})
	if v.hitLat != 1 {
		t.Error("hit latency default")
	}
	l := NewL0(L0Config{SizeBits: 1024, LineSize: 64}, &nvmPort{})
	if l.beats != 2 {
		t.Errorf("l0 default beats = %d", l.beats)
	}
	m := NewEMSHR(EMSHRConfig{SizeBits: 1024, LineSize: 64}, &nvmPort{})
	if m.beats != 2 {
		t.Errorf("emshr default beats = %d", m.beats)
	}
}

func TestEMSHRFetchBypassesPort(t *testing.T) {
	p := &nvmPort{}
	m := NewEMSHR(DefaultEMSHRConfig(), p)
	m.Access(0, mem.Req{Addr: 0, Bytes: 8, Kind: mem.Fetch}) // allocate
	// Two same-cycle fetch hits both complete next cycle: the row read
	// feeds the whole fetch group.
	d1 := m.Access(100, mem.Req{Addr: 0, Bytes: 8, Kind: mem.Fetch})
	d2 := m.Access(100, mem.Req{Addr: 8, Bytes: 8, Kind: mem.Fetch})
	if d1 != 101 || d2 != 101 {
		t.Errorf("fetch hits %d, %d; want 101, 101", d1, d2)
	}
	// Data reads do serialize.
	d3 := m.Access(200, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	d4 := m.Access(200, mem.Req{Addr: 4, Bytes: 4, Kind: mem.Read})
	if d3 != 201 || d4 != 202 {
		t.Errorf("data reads %d, %d; want 201, 202", d3, d4)
	}
}

func TestWriteBackKindPassesThrough(t *testing.T) {
	// Kinds the front-ends do not special-case flow to the DL1.
	p := &nvmPort{}
	for _, fe := range []FrontEnd{
		NewVWB(DefaultVWBConfig(), p),
		NewL0(DefaultL0Config(), p),
		NewEMSHR(DefaultEMSHRConfig(), p),
	} {
		before := p.writebacks
		fe.Access(0, mem.Req{Addr: 0, Bytes: 64, Kind: mem.WriteBack})
		if p.writebacks != before+1 {
			t.Errorf("%s: WriteBack must pass through", fe.Name())
		}
	}
}
