package core

import "sttdl1/internal/mem"

// EMSHR is the paper's second Fig. 8 comparison point: the Enhanced MSHR
// of Komalan et al., "Feasibility exploration of NVM based I-cache
// through MSHR enhancements" (DATE'14) — an MSHR file whose entries
// retain the fetched line after the fill so that subsequent accesses to
// a recently missed line are served from the MSHR at register speed.
//
// Ported from the I-cache to the D-cache and sized like the VWB (2 Kbit,
// fully associative) for the comparison, with the same narrow regular
// interface as the L0. Being an I-cache structure it has no store path:
// stores bypass it straight to the DL1, and a store to a line resident in
// the file must invalidate the retained copy to keep it coherent — the
// main reason it trails the VWB on data-side workloads.
type EMSHR struct {
	buf      buffer
	dl1      mem.Port
	hitLat   int64
	beats    int64
	portFree int64
	stats    mem.Stats

	// Invalidations counts store-induced kills of retained lines.
	Invalidations uint64
	// Allocations counts miss-triggered entry fills.
	Allocations uint64
}

// EMSHRConfig sizes the enhanced MSHR file.
type EMSHRConfig struct {
	SizeBits  int
	LineSize  int
	HitLat    int64
	BeatBytes int
}

// DefaultEMSHRConfig matches the Fig. 8 setup: 2 Kbit over DL1 lines,
// refilling through the regular 256-bit interface.
func DefaultEMSHRConfig() EMSHRConfig {
	return EMSHRConfig{SizeBits: 2048, LineSize: 64, HitLat: 1, BeatBytes: 32}
}

// NewEMSHR builds the enhanced MSHR file in front of dl1.
func NewEMSHR(cfg EMSHRConfig, dl1 mem.Port) *EMSHR {
	checkSize("EMSHR", cfg.SizeBits, cfg.LineSize)
	if cfg.HitLat <= 0 {
		cfg.HitLat = 1
	}
	if cfg.BeatBytes <= 0 {
		cfg.BeatBytes = 32
	}
	return &EMSHR{
		buf:    newBuffer(cfg.SizeBits, cfg.LineSize),
		dl1:    dl1,
		hitLat: cfg.HitLat,
		beats:  int64(cfg.LineSize / cfg.BeatBytes),
	}
}

// Name implements FrontEnd.
func (m *EMSHR) Name() string { return "emshr" }

// Stats implements FrontEnd.
func (m *EMSHR) Stats() mem.Stats { return m.stats }

// Contains reports residence of addr's line (tests only).
func (m *EMSHR) Contains(addr mem.Addr) bool { return m.buf.contains(addr) }

// BusyClocks returns the narrow-port busy-until clock, for the invariant
// checker's monotonicity check.
func (m *EMSHR) BusyClocks() []int64 { return []int64{m.portFree} }

// Access implements mem.Port.
func (m *EMSHR) Access(now int64, req mem.Req) int64 {
	lineAddr := mem.LineAddr(req.Addr, m.buf.lineSize)
	e := m.buf.find(lineAddr)

	switch req.Kind {
	case mem.Read, mem.Fetch:
		start := now
		// Instruction fetches read a whole row at once and feed the
		// fetch group in parallel; only data-side reads serialize on the
		// single narrow port.
		if req.Kind != mem.Fetch && m.portFree > start {
			start = m.portFree
		}
		if e != nil {
			e.spec = false
			m.buf.touch(e)
			m.stats.Record(mem.Read, true)
			if e.ready > start { // fill still streaming in
				start = e.ready
			}
			done := start + m.hitLat
			if req.Kind != mem.Fetch {
				m.portFree = done
			}
			return done
		}
		m.stats.Record(mem.Read, false)
		return m.allocate(start, lineAddr)

	case mem.Write:
		// No store path: the write goes to the DL1; a retained copy of
		// the line must die so the file never serves stale data.
		if e != nil {
			m.buf.invalidate(e)
			m.Invalidations++
		}
		m.stats.Record(mem.Write, false)
		return m.dl1.Access(now, req)

	case mem.Prefetch:
		if e != nil || m.buf.prefetchFiltered(now, lineAddr) {
			m.stats.Record(mem.Prefetch, true)
			return now
		}
		m.stats.Record(mem.Prefetch, false)
		// Issue once the port frees: allocate() pushes portFree to the
		// refill's end, so allocating at a bare `now` while an earlier
		// refill still streams would move the busy clock backward (a
		// monotonicity violation) and un-reserve the port it occupies.
		// The core itself never waits on a hint.
		start := now
		if m.portFree > start {
			start = m.portFree
		}
		m.allocate(start, lineAddr)
		if sp := m.buf.find(lineAddr); sp != nil {
			sp.spec = true
		}
		return now

	default:
		return m.dl1.Access(now, req)
	}
}

// allocate fills an entry with lineAddr; the critical word reaches the
// core at the DL1's read completion, the rest of the line streams in over
// the narrow interface afterwards. Retained lines are clean by
// construction (stores never enter), so eviction is silent.
func (m *EMSHR) allocate(now int64, lineAddr mem.Addr) int64 {
	critical := m.dl1.Access(now, mem.Req{Addr: lineAddr, Bytes: m.buf.lineSize, Kind: mem.Fill})
	m.Allocations++
	m.portFree = critical + m.beats
	victim := m.buf.victim(now)
	*victim = entry{lineAddr: lineAddr, valid: true, ready: critical + m.beats}
	m.buf.touch(victim)
	return critical
}

// ResetTiming implements FrontEnd.
func (m *EMSHR) ResetTiming() {
	m.buf.resetTiming()
	m.portFree = 0
	m.stats = mem.Stats{}
	m.Invalidations = 0
	m.Allocations = 0
}

// Reset implements FrontEnd.
func (m *EMSHR) Reset() {
	m.buf.reset()
	m.portFree = 0
	m.stats = mem.Stats{}
	m.Invalidations = 0
	m.Allocations = 0
}
