package core

import "sttdl1/internal/mem"

// VWB is the Very Wide Buffer (paper §IV): an asymmetric register-file
// organization between the datapath and the NVM DL1.
//
//   - Toward the memory the interface is wide: a whole DL1 line (512 bit)
//     moves in one promotion, which occupies the source bank of the banked
//     NVM array for the array's full read latency (~4 cycles) but happens
//     off the critical path of subsequent hits.
//   - Toward the datapath the interface is narrow: the core reads or
//     writes single words through the post-decode MUX in one cycle.
//
// It is modelled, like the paper says, as a small fully associative
// buffer of line-wide single-ported register rows with per-row tags; the
// two-row organization lets reads and writes proceed simultaneously, so
// the buffer itself never port-stalls.
//
// Load policy (paper §IV): the VWB is always checked first. On a VWB miss
// the NVM DL1 is checked; a DL1 hit reads the line and always writes it
// into the VWB, the VWB's evicted (dirty) line going back to the DL1. On
// a DL1 miss the next level serves the line to both the core and the VWB.
//
// Store policy: a data block is updated via the VWB only if already
// present there; otherwise it is updated directly in the DL1
// (write-allocate in the DL1, no-allocate in the VWB; write-back
// everywhere, no write-through).
type VWB struct {
	buf      buffer
	dl1      mem.Port
	hitLat   int64
	transfer int64
	stats    mem.Stats

	// The two-row single-ported organization sustains one read and one
	// write per cycle, concurrently ("data can be written into and read
	// from the VWB at the same time", §IV).
	readFree, writeFree int64

	// Promotions counts whole-line moves DL1 -> VWB.
	Promotions uint64
	// WriteBacks counts dirty VWB evictions pushed back into the DL1.
	WriteBacks uint64
	// PromoteWaitCycles accumulates cycles demand loads spent waiting for
	// an in-flight promotion of their own line (the paper's "processor
	// may try to fetch new data while the promotion ... is taking place").
	PromoteWaitCycles int64
	// PrefetchUseful counts prefetched rows later touched by demand;
	// PrefetchWasted counts prefetched rows evicted untouched.
	PrefetchUseful, PrefetchWasted uint64
}

// VWBConfig sizes the buffer.
type VWBConfig struct {
	// SizeBits is the total capacity; the paper explores 1/2/4 Kbit and
	// settles on 2 Kbit.
	SizeBits int
	// LineSize is the DL1 line size in bytes (the promotion width).
	LineSize int
	// HitLat is the buffer hit latency in cycles (1: it is "very close to
	// logic").
	HitLat int64
	// TransferCycles is the time to write a promoted line into the
	// single-ported VWB row after the NVM array read delivers it (the
	// paper's "promotion may take as long as 4 cache cycles"). A demand
	// miss reads its word through the MUX only once the row is written.
	TransferCycles int64
	// Policy selects the row replacement policy (default LRU).
	Policy EvictPolicy
}

// DefaultVWBConfig is the paper's chosen design point: 2 Kbit over
// 512-bit lines = 4 line entries, 1-cycle hits.
func DefaultVWBConfig() VWBConfig {
	return VWBConfig{SizeBits: 2048, LineSize: 64, HitLat: 1, TransferCycles: 1}
}

// NewVWB builds the buffer in front of dl1.
func NewVWB(cfg VWBConfig, dl1 mem.Port) *VWB {
	checkSize("VWB", cfg.SizeBits, cfg.LineSize)
	if cfg.HitLat <= 0 {
		cfg.HitLat = 1
	}
	if cfg.TransferCycles < 0 {
		cfg.TransferCycles = 0
	}
	buf := newBuffer(cfg.SizeBits, cfg.LineSize)
	buf.policy = cfg.Policy
	return &VWB{
		buf:      buf,
		dl1:      dl1,
		hitLat:   cfg.HitLat,
		transfer: cfg.TransferCycles,
	}
}

// Name implements FrontEnd.
func (v *VWB) Name() string { return "vwb" }

// Stats implements FrontEnd.
func (v *VWB) Stats() mem.Stats { return v.stats }

// Lines returns the entry count (size/line).
func (v *VWB) Lines() int { return v.buf.lines() }

// Contains reports residence of addr's line (tests only).
func (v *VWB) Contains(addr mem.Addr) bool { return v.buf.contains(addr) }

// BusyClocks returns the read- and write-port busy-until clocks, for the
// invariant checker's monotonicity check.
func (v *VWB) BusyClocks() []int64 { return []int64{v.readFree, v.writeFree} }

// Access implements mem.Port.
func (v *VWB) Access(now int64, req mem.Req) int64 {
	lineAddr := mem.LineAddr(req.Addr, v.buf.lineSize)
	e := v.buf.find(lineAddr)

	switch req.Kind {
	case mem.Read, mem.Fetch:
		if e != nil {
			if e.spec {
				e.spec = false
				v.PrefetchUseful++
			}
			v.buf.touch(e)
			v.stats.Record(mem.Read, true)
			start := now
			if v.readFree > start {
				start = v.readFree
			}
			if e.ready > start { // promotion still in flight
				v.PromoteWaitCycles += e.ready - start
				start = e.ready
			}
			done := start + v.hitLat
			v.readFree = done
			return done
		}
		v.stats.Record(mem.Read, false)
		// The demanded word is forwarded to the core as the wide array
		// read delivers the line (critical-word delivery through the
		// MUX); the row itself is busy for TransferCycles more, and the
		// promotion occupies the source NVM bank meanwhile — the §IV
		// stall scenario.
		fill, _ := v.promoteTimes(now, lineAddr)
		return fill + v.hitLat

	case mem.Write:
		if e != nil {
			// Update through the MUX; the row is single-ported but the
			// two-line organization absorbs the concurrent traffic.
			v.buf.touch(e)
			e.dirty = true
			v.stats.Record(mem.Write, true)
			start := now
			if v.writeFree > start {
				start = v.writeFree
			}
			if e.ready > start {
				v.PromoteWaitCycles += e.ready - start
				start = e.ready
			}
			done := start + v.hitLat
			v.writeFree = done
			return done
		}
		// Miss: no-allocate in the VWB, write-allocate in the DL1.
		v.stats.Record(mem.Write, false)
		return v.dl1.Access(now, req)

	case mem.Prefetch:
		if e != nil || v.buf.prefetchFiltered(now, lineAddr) {
			v.stats.Record(mem.Prefetch, true)
			return now
		}
		v.stats.Record(mem.Prefetch, false)
		v.promoteTimes(now, lineAddr)
		if sp := v.buf.find(lineAddr); sp != nil {
			sp.spec = true
		}
		return now // software prefetch never blocks

	default:
		return v.dl1.Access(now, req)
	}
}

// promoteTimes pulls lineAddr from the DL1 into the VWB (one wide array
// read, then TransferCycles to write the single-ported row) and returns
// both the cycle the array read delivers the line and the cycle the row
// becomes readable.
func (v *VWB) promoteTimes(now int64, lineAddr mem.Addr) (fill, ready int64) {
	fillDone := v.dl1.Access(now, mem.Req{Addr: lineAddr, Bytes: v.buf.lineSize, Kind: mem.Fill})
	v.Promotions++
	ready = fillDone + v.transfer

	victim := v.buf.victim(now)
	if victim.valid && victim.spec {
		v.PrefetchWasted++
	}
	if victim.valid && victim.dirty {
		// The evicted row drains back into the (banked) DL1; it contends
		// for the array but not for the core's critical path. It is
		// issued at the promotion start — the row's data is available the
		// moment it is reallocated — keeping port timestamps monotone.
		v.WriteBacks++
		v.dl1.Access(now, mem.Req{Addr: victim.lineAddr, Bytes: v.buf.lineSize, Kind: mem.WriteBack})
	}
	*victim = entry{lineAddr: lineAddr, valid: true, ready: ready}
	v.buf.touch(victim)
	return fillDone, ready
}

// ResetTiming implements FrontEnd.
func (v *VWB) ResetTiming() {
	v.buf.resetTiming()
	v.stats = mem.Stats{}
	v.readFree, v.writeFree = 0, 0
	v.Promotions = 0
	v.WriteBacks = 0
	v.PromoteWaitCycles = 0
	v.PrefetchUseful, v.PrefetchWasted = 0, 0
}

// Reset implements FrontEnd.
func (v *VWB) Reset() {
	v.buf.reset()
	v.stats = mem.Stats{}
	v.readFree, v.writeFree = 0, 0
	v.Promotions = 0
	v.WriteBacks = 0
	v.PromoteWaitCycles = 0
	v.PrefetchUseful, v.PrefetchWasted = 0, 0
}
