// Package energy is the DL1 energy and area model shared by the
// experiment runners (the `energy` table) and the design-space
// exploration engine (internal/dse). The paper's conclusion defers this
// story — "the use of NVMs also allows gains in area and even energy
// (power models have yet to be fully developed though)" — so the model
// here is developed from the internal/tech array model:
//
//	DL1 energy = leakage power x runtime
//	           + per-row-activation dynamic energy x access counts
//	           + front-end buffer energy (register rows close to logic)
//
// At 1 GHz the arithmetic is friendly: 1 mW x 1 cycle = 1 pJ.
package energy

import (
	"strconv"

	"sttdl1/internal/sim"
	"sttdl1/internal/tech"
)

// wayGateFrac is the fraction of a gated way's leakage share that power
// gating actually recovers: the way's local periphery slice (sense
// amplifiers, write drivers, local decode) switches off with it, the
// shared global decode/IO does not.
const wayGateFrac = 0.85

// DL1UJ computes the DL1 array energy (in µJ) of one run: leakage
// (power x runtime) and dynamic (per-row-activation energies from the
// technology model, accumulated over the simulated access streams).
//
// For a hybrid (SRAMWays > 0) configuration m is the blended model from
// ModelFor; operations the simulator served from the SRAM partition
// (r.DL1SRAMReads/Writes) are re-priced at the SRAM technology's
// per-access energies. With dynamic way shutdown, gated NVM way-cycles
// (r.DL1WayOffCycles) earn back wayGateFrac of their leakage share.
// Homogeneous, always-on configurations take the original path
// unchanged.
func DL1UJ(r *sim.RunResult, m tech.Model) (leakUJ, dynUJ float64) {
	cycles := float64(r.CPU.Cycles)
	leakPJ := m.LeakageMW * cycles // mW x ns = pJ

	// Every array access activates a row: reads, fills and the read half
	// of a miss pay ReadPJ; writes and received writebacks pay WritePJ.
	st := r.DL1Stats
	readOps := float64(st.Reads + st.Prefetches)
	writeOps := float64(st.Writes + st.WriteBacks)
	// Misses additionally write the incoming line into the array.
	writeOps += float64(st.Misses())

	cfg := r.Config
	var dynPJ float64
	if cfg.SRAMWays > 0 {
		sm := tech.MustCompute(tech.DefaultArray(tech.SRAM6T))
		// The simulator's partition counters approximate the op classes
		// here (installs land in Misses() or Fills depending on kind),
		// so clamp before splitting.
		sr, sw := float64(r.DL1SRAMReads), float64(r.DL1SRAMWrites)
		if sr > readOps {
			sr = readOps
		}
		if sw > writeOps {
			sw = writeOps
		}
		dynPJ = (readOps-sr)*m.ReadPJ + (writeOps-sw)*m.WritePJ + sr*sm.ReadPJ + sw*sm.WritePJ
	} else {
		dynPJ = readOps*m.ReadPJ + writeOps*m.WritePJ
	}

	if cfg.ShutdownInterval > 0 && r.DL1WayOffCycles > 0 {
		if perWay := perGateableWayLeakMW(cfg, m); perWay > 0 {
			leakPJ -= wayGateFrac * perWay * float64(r.DL1WayOffCycles)
			if leakPJ < 0 {
				leakPJ = 0
			}
		}
	}

	return leakPJ / 1e6, dynPJ / 1e6
}

// perGateableWayLeakMW is one NVM way's share of the blended model's
// leakage: the SRAM partition's blended-in share is peeled off first,
// the remainder belongs to the Assoc-SRAMWays NVM ways.
func perGateableWayLeakMW(cfg sim.Config, m tech.Model) float64 {
	nvmWays := sim.DL1Assoc - cfg.SRAMWays
	if nvmWays <= 0 {
		return 0
	}
	nvmLeak := m.LeakageMW
	if cfg.SRAMWays > 0 {
		sm := tech.MustCompute(tech.DefaultArray(tech.SRAM6T))
		nvmLeak -= sm.LeakageMW * float64(cfg.SRAMWays) / float64(sim.DL1Assoc)
	}
	if nvmLeak < 0 {
		return 0
	}
	return nvmLeak / float64(nvmWays)
}

// LeakFloorMW is the lowest average leakage power cfg can exhibit under
// its model: m.LeakageMW, minus the largest leakage credit dynamic way
// shutdown could possibly earn (every gateable way gated for the whole
// run). The guided search's energy lower bound must use this instead of
// m.LeakageMW for shutdown-enabled points, or a provably-better point
// could be aborted as dominated.
func LeakFloorMW(cfg sim.Config, m tech.Model) float64 {
	if cfg.ShutdownInterval <= 0 {
		return m.LeakageMW
	}
	gateable := sim.DL1Assoc - cfg.SRAMWays
	if cfg.SRAMWays == 0 {
		gateable = sim.DL1Assoc - 1 // one way always stays awake
	}
	floor := m.LeakageMW - wayGateFrac*perGateableWayLeakMW(cfg, m)*float64(gateable)
	if floor < 0 {
		floor = 0
	}
	return floor
}

// Per-access buffer energy: a register row read close to logic plus a
// fully-associative row match. The row term is fixed; the match term
// grows with the number of rows searched — the FA-search cost that made
// the paper stop at 2 Kbit. At the paper's 2 Kbit / 64 B rows (4 rows)
// the sum is the legacy 0.9 pJ the energy table was calibrated with.
const (
	bufRowReadPJ  = 0.45   // 512-bit register row + output MUX
	bufRowMatchPJ = 0.1125 // per-row FA tag compare
)

// BufferUJ approximates the front-end buffer's dynamic energy over one
// run for a buffer of the given size in bits (rows of 512 bits, the
// 64 B line). It applies to any of the retained-line front-ends (VWB,
// L0, EMSHR): all are small FA row files searched on every access.
func BufferUJ(r *sim.RunResult, sizeBits int) float64 {
	rows := float64(sizeBits) / 512
	if rows < 1 {
		rows = 1
	}
	perOpPJ := bufRowReadPJ + bufRowMatchPJ*rows
	ops := float64(r.FEStats.Accesses() + r.FEStats.Prefetches)
	return ops * perOpPJ / 1e6
}

// bufFlopF2 is the per-bit area of the buffer's register rows in F²: a
// latch plus its share of the write MUX and FA match logic, ~4x the 6T
// SRAM cell.
const bufFlopF2 = 4 * 146

// camRowAreaOvh is the per-bit area growth per row beyond the 4-row
// (2 Kbit) calibration point: every added row lengthens the FA match
// lines and widens the priority/select network that every bit's output
// drives, so CAM area per bit grows with associativity. This is the
// area face of the search cost that made the paper stop at 2 Kbit.
const camRowAreaOvh = 0.06

// BufferAreaMM2 approximates the front-end buffer's area at 32 nm.
func BufferAreaMM2(sizeBits int) float64 {
	const f2 = 32 * 32 * 1e-12 // mm² per F² at 32 nm
	const periphOvh = 0.35
	rows := float64(sizeBits) / 512
	camOvh := 0.0
	if rows > 4 {
		camOvh = camRowAreaOvh * (rows - 4)
	}
	return float64(sizeBits) * bufFlopF2 * f2 * (1 + periphOvh + camOvh)
}

// Bank periphery adjustment, relative to the default 4-bank DL1 the
// tech model is calibrated against (sim's withDefaults): each extra
// bank duplicates sense amplifiers, write drivers and a slice of the
// decoder, costing leakage and area; fewer banks give some of it back.
const (
	bankLeakMW  = 0.9  // periphery leakage per bank beyond the default 4
	bankAreaOvh = 0.02 // area fraction per bank beyond the default 4
)

// senseLeakMW is the static cost of overdriving the read path: sensing
// faster than the technology model's nominal latency takes a larger,
// permanently biased sense current, so array leakage grows with the
// speedup (5 mW per unit of rd/override - 1, ~18% of array leakage for
// a 2x overdrive). Slower-than-nominal reads get no credit — the sense
// network is sized for nominal and its bias does not shrink with a
// relaxed timing budget. Write drivers are gated, not statically
// biased, so write overrides stay a purely dynamic cost.
const senseLeakMW = 5.0

// ModelFor returns the DL1 technology model behind cfg with the
// configuration's exploration knobs folded into the energy/area side:
//
//   - A latency override buys its speed with current: per-access energy
//     scales inversely with the time the array is given (a faster
//     differential sense needs a larger read bias; a shorter write
//     pulse needs a larger switching current, E ≈ I²t with I ∝ 1/t).
//     Reads faster than nominal additionally pay senseLeakMW of static
//     power per unit of overdrive — without it a leakage-dominated
//     array would get faster AND cheaper, since the shorter runtime
//     saves more leakage energy than the larger bias spends. An
//     override equal to the model's own latency changes nothing.
//   - A bank count away from the default 4 adds (or removes) duplicated
//     periphery: leakage and area move by a per-bank increment.
//   - A hybrid partition (SRAMWays > 0) swaps that fraction of the ways
//     for SRAM: leakage and area become the way-weighted blend of the
//     NVM model (with the knobs above already applied) and the SRAM
//     technology's default array. The per-access energies stay the NVM
//     partition's — DL1UJ re-prices the SRAM-served operations itself.
//
// For the named paper configurations (no overrides, default banking)
// ModelFor is exactly tech.Compute of the default array, so the energy
// table's calibration is untouched.
func ModelFor(cfg sim.Config) (tech.Model, error) {
	m, err := tech.Compute(tech.DefaultArray(cfg.DL1Cell))
	if err != nil {
		return tech.Model{}, err
	}
	freq := cfg.FreqGHz
	if freq <= 0 {
		freq = 1.0
	}
	rd, wr := m.CyclesAt(freq)
	if cfg.DL1ReadLat > 0 && cfg.DL1ReadLat != rd {
		m.ReadPJ *= float64(rd) / float64(cfg.DL1ReadLat)
		if cfg.DL1ReadLat < rd {
			m.LeakageMW += senseLeakMW * (float64(rd)/float64(cfg.DL1ReadLat) - 1)
		}
	}
	if cfg.DL1WriteLat > 0 && cfg.DL1WriteLat != wr {
		m.WritePJ *= float64(wr) / float64(cfg.DL1WriteLat)
	}
	banks := cfg.DL1Banks
	if banks <= 0 {
		banks = 4
	}
	if banks != 4 {
		m.LeakageMW += bankLeakMW * float64(banks-4)
		scale := 1 + bankAreaOvh*float64(banks-4)
		if scale < 0.5 {
			scale = 0.5
		}
		m.AreaMM2 *= scale
	}
	if cfg.SRAMWays > 0 {
		sm := tech.MustCompute(tech.DefaultArray(tech.SRAM6T))
		fs := float64(cfg.SRAMWays) / float64(sim.DL1Assoc)
		m.LeakageMW = m.LeakageMW*(1-fs) + sm.LeakageMW*fs
		m.AreaMM2 = m.AreaMM2*(1-fs) + sm.AreaMM2*fs
	}
	return m, nil
}

// ModelKey renders every energy/area model parameter an evaluation of
// cfg depends on as one deterministic string: the configuration's
// resolved technology model (ModelFor — latency-override repricing,
// bank periphery, hybrid blending already folded in), the buffer
// energy/area constants, and the shutdown leakage credit. The
// persistent evaluation store (internal/store) folds it into each
// content address, so any recalibration of the model re-evaluates
// stored points instead of silently serving counters whose derived
// objectives moved.
func ModelKey(cfg sim.Config) (string, error) {
	m, err := ModelFor(cfg)
	if err != nil {
		return "", err
	}
	// Rendered with AppendFloat into one buffer: this runs once per
	// store-key derivation, and the fmt.Sprintf it replaces boxed every
	// operand on the warm sweep path.
	b := make([]byte, 0, 160)
	g := func(prefix string, v float64) {
		b = append(b, prefix...)
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	b = append(b, "emodel1"...)
	g("|rd=", m.ReadNs)
	g(",wr=", m.WriteNs)
	g("|leak=", m.LeakageMW)
	g("|area=", m.AreaMM2)
	g("|rpj=", m.ReadPJ)
	g(",wpj=", m.WritePJ)
	g("|buf=", bufRowReadPJ)
	g(",", bufRowMatchPJ)
	g(",", float64(bufFlopF2))
	g(",", camRowAreaOvh)
	g("|gate=", wayGateFrac)
	return string(b), nil
}

// Buffered reports whether cfg places a retained-line buffer (VWB, L0
// or EMSHR) between the core and the DL1, i.e. whether the buffer
// energy/area terms apply.
func Buffered(cfg sim.Config) bool { return cfg.FrontEnd != sim.FEDirect }

// TotalUJ is the full DL1-subsystem energy of one run under cfg:
// array leakage + array dynamic + buffer dynamic (when cfg has a
// front-end buffer).
func TotalUJ(r *sim.RunResult, cfg sim.Config, m tech.Model) float64 {
	leak, dyn := DL1UJ(r, m)
	total := leak + dyn
	if Buffered(cfg) {
		bits := cfg.BufferBits
		if bits <= 0 {
			bits = 2048
		}
		total += BufferUJ(r, bits)
	}
	return total
}
