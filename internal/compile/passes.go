package compile

import (
	"fmt"
	"sort"

	"sttdl1/internal/ir"
)

// Branch removal (paper §V: "we also attempt to transform conditional
// jumps in the innermost loops to branch-less equivalents"): an If whose
// arms are single assignments to the same element becomes one predicated
// assignment lowered to compare + select, eliminating the data-dependent
// branch and its mispredictions.
//
// An If with no else arm keeps the old value via a reload of the target
// element, matching the predicated-execution semantics of the evaluator's
// Ternary.

func branchlessStmts(ss []ir.Stmt) ([]ir.Stmt, int) {
	n := 0
	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		switch st := s.(type) {
		case ir.Loop:
			body, m := branchlessStmts(st.Body)
			st.Body = body
			n += m
			out = append(out, st)
		case ir.If:
			if as, ok := predicate(st); ok {
				n++
				out = append(out, as)
				continue
			}
			thenS, mt := branchlessStmts(st.Then)
			elseS, me := branchlessStmts(st.Else)
			st.Then, st.Else = thenS, elseS
			n += mt + me
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out, n
}

// predicate matches the convertible If shapes.
func predicate(st ir.If) (ir.Assign, bool) {
	if len(st.Then) != 1 {
		return ir.Assign{}, false
	}
	thenAs, ok := st.Then[0].(ir.Assign)
	if !ok {
		return ir.Assign{}, false
	}
	var elseRHS ir.Expr
	switch len(st.Else) {
	case 0:
		// if (c) X = e  =>  X = c ? e : X
		elseRHS = ir.Load{Arr: thenAs.Arr, Idx: thenAs.Idx}
	case 1:
		elseAs, ok := st.Else[0].(ir.Assign)
		if !ok || elseAs.Arr != thenAs.Arr || !sameIdx(thenAs.Idx, elseAs.Idx) {
			return ir.Assign{}, false
		}
		elseRHS = elseAs.RHS
	default:
		return ir.Assign{}, false
	}
	return ir.Assign{
		Arr: thenAs.Arr,
		Idx: thenAs.Idx,
		RHS: ir.Ternary{Cond: st.Cond, Then: thenAs.RHS, Else: elseRHS},
	}, true
}

func sameIdx(a, b []ir.Aff) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !affEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Software prefetch insertion (paper §V: "we can pre-fetch critical data
// and loop arrays to the VWB manually and hence reduce time taken to read
// it from the NVM"): in every innermost loop, each distinct stride-1
// stream gets a PLD one cache line (distElems elements) ahead, placed at
// the top of the body. On the VWB organization the PLD promotes the next
// line into the buffer; on a plain cache it pulls the line into the DL1.

func prefetchStmts(ss []ir.Stmt, distElems, maxStreams int) ([]ir.Stmt, int) {
	n := 0
	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		switch st := s.(type) {
		case ir.Loop:
			if innermost(st) {
				pf := streamPrefetches(st, distElems, maxStreams)
				n += len(pf)
				st.Body = append(pf, st.Body...)
			} else {
				body, m := prefetchStmts(st.Body, distElems, maxStreams)
				st.Body = body
				n += m
			}
			out = append(out, st)
		case ir.If:
			thenS, mt := prefetchStmts(st.Then, distElems, maxStreams)
			elseS, me := prefetchStmts(st.Else, distElems, maxStreams)
			st.Then, st.Else = thenS, elseS
			n += mt + me
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out, n
}

func innermost(lp ir.Loop) bool {
	for _, s := range lp.Body {
		if containsLoop(s) {
			return false
		}
	}
	return true
}

func containsLoop(s ir.Stmt) bool {
	switch st := s.(type) {
	case ir.Loop:
		return true
	case ir.If:
		for _, t := range st.Then {
			if containsLoop(t) {
				return true
			}
		}
		for _, t := range st.Else {
			if containsLoop(t) {
				return true
			}
		}
	}
	return false
}

// streamPrefetches finds the distinct stride-1 load streams of lp, ranks
// them by criticality (the paper's manually identified "critical data":
// big arrays first, because those are the ones that miss; then touch
// count), and prefetches the top few, distElems elements ahead.
//
// The budget adapts to the loop's line footprint the way the paper's
// manual tuning would: with bufferLines rows in the VWB and S live lines
// (load streams plus loop-invariant hot lines), prefetching more than
// bufferLines-S streams evicts demand-hot rows, so the budget is
// clamp(bufferLines-S, 1, maxStreams). Store-only streams neither count
// against the footprint (stores do not allocate in the VWB) nor get
// prefetched (useless).
func streamPrefetches(lp ir.Loop, distElems, maxStreams int) []ir.Stmt {
	type stream struct {
		pf    ir.Prefetch
		arr   *ir.Array
		count int
		loads int
		order int
	}
	seen := map[string]*stream{}
	var streams []*stream
	invariant := map[string]bool{} // distinct loop-invariant load lines
	current := &struct{ isLoad bool }{}
	columnWalk := false
	add := func(arr *ir.Array, idx []ir.Aff) {
		ba := byteAff(arr, idx)
		coef := ba.CoefOf(lp.Var)
		if coef == 0 && current.isLoad {
			invariant[fmt.Sprintf("%s|%s", arr.Name, ba.String())] = true
		}
		if coef != 0 && coef != 4 && current.isLoad {
			// A column walk: every iteration touches a new line. Its
			// misses churn the buffer no matter what, so prefetching
			// this loop is wasted work.
			columnWalk = true
		}
		if coef != 4 {
			return // not a stride-1 stream of this loop
		}
		// Key by the stream shape with the constant offset quantized to
		// cache lines: A[i][j-1..j+1] collapse into one prefetch, while
		// the row-apart stencil streams A[i-1][j] and A[i+1][j] stay
		// distinct.
		lineBytes := 4 * distElems
		q := (ba.Const + lineBytes/2) / lineBytes
		if ba.Const < -lineBytes/2 {
			q = (ba.Const - lineBytes/2) / lineBytes
		}
		key := fmt.Sprintf("%s|%s|%d", arr.Name, ir.Aff{Terms: ba.Terms}.String(), q)
		if st, dup := seen[key]; dup {
			st.count++
			if current.isLoad {
				st.loads++
			}
			return
		}
		ahead := cloneIdx(idx)
		ahead[len(ahead)-1] = ahead[len(ahead)-1].AddConst(distElems)
		st := &stream{pf: ir.Prefetch{Arr: arr, Idx: ahead}, arr: arr, count: 1, order: len(streams)}
		if current.isLoad {
			st.loads++
		}
		seen[key] = st
		streams = append(streams, st)
	}
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		current.isLoad = true
		walkLoads(e, func(ld ir.Load) { add(ld.Arr, ld.Idx) })
	}
	var visitStmt func(s ir.Stmt)
	visitStmt = func(s ir.Stmt) {
		switch st := s.(type) {
		case ir.Assign:
			current.isLoad = false
			add(st.Arr, st.Idx)
			visitExpr(st.RHS)
		case ir.If:
			visitExpr(st.Cond.L)
			visitExpr(st.Cond.R)
			for _, t := range st.Then {
				visitStmt(t)
			}
			for _, t := range st.Else {
				visitStmt(t)
			}
		}
	}
	for _, s := range lp.Body {
		visitStmt(s)
	}

	// Only load streams matter: store-only streams do not allocate.
	cands := streams[:0]
	for _, st := range streams {
		if st.loads > 0 {
			cands = append(cands, st)
		}
	}
	footprint := len(cands) + len(invariant)
	budget := vwbBufferLines - footprint
	if columnWalk || budget < 0 {
		budget = 0
	}
	if budget > maxStreams {
		budget = maxStreams
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.arr.Elems() != b.arr.Elems() {
			return a.arr.Elems() > b.arr.Elems()
		}
		if a.count != b.count {
			return a.count > b.count
		}
		return a.order < b.order
	})
	if len(cands) > budget {
		cands = cands[:budget]
	}
	out := make([]ir.Stmt, len(cands))
	for i, st := range cands {
		out[i] = st.pf
	}
	return out
}

// vwbBufferLines is the 2 Kbit VWB's row count (the capacity the adaptive
// prefetch budget protects).
const vwbBufferLines = 4

func cloneIdx(idx []ir.Aff) []ir.Aff {
	out := make([]ir.Aff, len(idx))
	for i, a := range idx {
		out[i] = ir.Aff{Const: a.Const, Terms: append([]ir.Term(nil), a.Terms...)}
	}
	return out
}
