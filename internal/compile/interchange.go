package compile

import "sttdl1/internal/ir"

// Loop interchange — the extension pass behind the paper's closing
// remark that "a systematic approach is being looked into to facilitate
// and best exploit the above mentioned code transformations". PolyBench's
// column-walk nests (mvt's transposed product, trmm, covariance, gemver's
// x phase) touch a new cache line on every innermost iteration, which no
// small buffer can capture; interchanging the two inner loops turns them
// into stride-1 row walks the vectorizer and the VWB both love.
//
// The pass fires on loops the author marks InterchangeOK (manual
// steering, like the paper's other pragmas) and handles the common
// imperfect shape by distributing the loop first:
//
//	for a { pre…; for b { body }; post… }
//
// becomes
//
//	for a { pre… }
//	for b { for a { body } }
//	for a { post… }
//
// Structural requirements checked here: exactly one nested loop, unit
// steps, and the inner loop's bounds independent of the outer variable
// (the nest is rectangular in the swapped pair). The *semantic* legality
// of the distribution and the swap — no dependence between pre/post and
// other iterations' bodies, and commutable iterations — is the author's
// assertion, exactly like IVDep.
func interchangeStmts(ss []ir.Stmt) ([]ir.Stmt, int) {
	n := 0
	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		switch st := s.(type) {
		case ir.Loop:
			if st.InterchangeOK {
				if repl, ok := interchangeOne(st); ok {
					n++
					// The produced loops may themselves contain marked
					// nests (not in our kernels, but stay recursive).
					repl, m := interchangeStmts(repl)
					out = append(out, repl...)
					n += m
					continue
				}
			}
			body, m := interchangeStmts(st.Body)
			st.Body = body
			n += m
			out = append(out, st)
		case ir.If:
			thenS, mt := interchangeStmts(st.Then)
			elseS, me := interchangeStmts(st.Else)
			st.Then, st.Else = thenS, elseS
			n += mt + me
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out, n
}

// interchangeOne rewrites one marked loop; ok is false when the
// structural conditions fail (the loop is then compiled unchanged).
func interchangeOne(outer ir.Loop) ([]ir.Stmt, bool) {
	if outer.StepOf() != 1 {
		return nil, false
	}
	var pre, post []ir.Stmt
	var inner *ir.Loop
	for _, s := range outer.Body {
		if lp, isLoop := s.(ir.Loop); isLoop {
			if inner != nil {
				return nil, false // more than one nested loop
			}
			lp := lp
			inner = &lp
			continue
		}
		if containsLoop(s) {
			return nil, false // a loop hiding under an If
		}
		if inner == nil {
			pre = append(pre, s)
		} else {
			post = append(post, s)
		}
	}
	if inner == nil || inner.StepOf() != 1 {
		return nil, false
	}
	// Rectangular pair: the inner bounds must not move with the outer var.
	if inner.Lo.Var == outer.Var || inner.Hi.Var == outer.Var {
		return nil, false
	}

	var out []ir.Stmt
	if len(pre) > 0 {
		out = append(out, ir.Loop{
			Var: outer.Var, Lo: outer.Lo, Hi: outer.Hi,
			Body: pre, Vectorizable: outer.Vectorizable, IVDep: outer.IVDep,
		})
	}
	// The swapped nest: the old inner loop's pragmas travel with the
	// body to the new innermost position (the author wrote them for the
	// post-interchange stride situation).
	newInner := ir.Loop{
		Var: outer.Var, Lo: outer.Lo, Hi: outer.Hi,
		Body:         inner.Body,
		Vectorizable: inner.Vectorizable,
		IVDep:        inner.IVDep,
	}
	out = append(out, ir.Loop{
		Var: inner.Var, Lo: inner.Lo, Hi: inner.Hi,
		Body: []ir.Stmt{newInner},
	})
	if len(post) > 0 {
		out = append(out, ir.Loop{
			Var: outer.Var, Lo: outer.Lo, Hi: outer.Hi,
			Body: post, Vectorizable: outer.Vectorizable, IVDep: outer.IVDep,
		})
	}
	return out, true
}
