package compile

import (
	"fmt"

	"sttdl1/internal/ir"
	"sttdl1/internal/isa"
)

// Vectorization (paper §V): marked innermost loops are converted "from a
// scalar implementation, which processes a single pair of operands at a
// time, to a vector implementation" with 4-lane SIMD, a scalar tail loop
// handling the remainder. The kernel author marks candidate loops
// (Loop.Vectorizable — the paper steers transformations manually); the
// planner still proves the loop fits one of the supported shapes:
//
//   - map statements: the stored element moves stride-1 with the loop
//     variable, every load moves stride-0 (invariant, splat) or stride-1;
//   - reduction statements: the stored element is loop-invariant and the
//     statement has the shape X = X + f(...) — compiled to a vector
//     accumulator with a horizontal sum in the epilogue.
//
// Loop-invariant loads, parameters, and constants are hoisted and
// splatted once before the vector loop.

type vstmtKind uint8

const (
	vsMap vstmtKind = iota
	vsRed
	vsPrefetch
)

type vstmt struct {
	kind vstmtKind
	as   ir.Assign   // for vsMap/vsRed
	rest ir.Expr     // reduction: RHS minus the accumulator load
	neg  bool        // reduction is X = X - rest
	pf   ir.Prefetch // for vsPrefetch
}

// planVectorLoop verifies legality and classifies each body statement.
func planVectorLoop(lp ir.Loop) ([]vstmt, bool) {
	var plan []vstmt
	mapWrites := map[*ir.Array][]ir.Aff{} // array -> byte affs written by maps
	redTargets := map[*ir.Array]bool{}

	for _, s := range lp.Body {
		switch st := s.(type) {
		case ir.Prefetch:
			plan = append(plan, vstmt{kind: vsPrefetch, pf: st})
		case ir.Assign:
			lhs := byteAff(st.Arr, st.Idx)
			switch lhs.CoefOf(lp.Var) {
			case 4:
				if !exprVectorizable(st.RHS, lp.Var) {
					return nil, false
				}
				plan = append(plan, vstmt{kind: vsMap, as: st})
				mapWrites[st.Arr] = append(mapWrites[st.Arr], lhs)
			case 0:
				rest, neg, ok := reductionRest(st)
				if !ok || !exprVectorizable(rest, lp.Var) {
					return nil, false
				}
				plan = append(plan, vstmt{kind: vsRed, as: st, rest: rest, neg: neg})
				redTargets[st.Arr] = true
			default:
				return nil, false
			}
		default:
			return nil, false // nested loops / Ifs stay scalar
		}
	}
	if len(plan) == 0 {
		return nil, false
	}

	// Cross-statement alias discipline: a load from an array some map
	// statement writes must address exactly the written element (the
	// read-modify-write idiom); anything else risks reading a lane the
	// vector iteration has not produced yet. Reduction targets must not
	// be touched by any other statement. The author's IVDep pragma
	// waives these checks (manual steering, paper §V).
	if lp.IVDep {
		return plan, true
	}
	ok := true
	for _, s := range plan {
		if s.kind == vsPrefetch {
			continue
		}
		e := s.as.RHS
		if s.kind == vsRed {
			e = s.rest
		}
		walkLoads(e, func(ld ir.Load) {
			if affs, written := mapWrites[ld.Arr]; written {
				la := byteAff(ld.Arr, ld.Idx)
				for _, w := range affs {
					if !affEqual(la, w) {
						ok = false
					}
				}
			}
			if redTargets[ld.Arr] {
				ok = false
			}
		})
		if s.kind == vsMap && redTargets[s.as.Arr] {
			ok = false
		}
	}
	if !ok {
		return nil, false
	}
	return plan, true
}

// reductionRest matches X = X + rest (either operand order) or
// X = X - rest, returning rest and whether it accumulates negatively.
func reductionRest(st ir.Assign) (rest ir.Expr, neg, ok bool) {
	b, isBin := st.RHS.(ir.Bin)
	if !isBin || (b.Op != ir.Add && b.Op != ir.Sub) {
		return nil, false, false
	}
	lhs := byteAff(st.Arr, st.Idx)
	isAcc := func(e ir.Expr) bool {
		ld, isLd := e.(ir.Load)
		return isLd && ld.Arr == st.Arr && affEqual(byteAff(ld.Arr, ld.Idx), lhs)
	}
	if isAcc(b.L) {
		return b.R, b.Op == ir.Sub, true
	}
	if b.Op == ir.Add && isAcc(b.R) {
		return b.L, false, true
	}
	return nil, false, false
}

// exprVectorizable checks every load moves stride-0 or stride-1 with v.
func exprVectorizable(e ir.Expr, v string) bool {
	ok := true
	walkLoads(e, func(ld ir.Load) {
		if c := byteAff(ld.Arr, ld.Idx).CoefOf(v); c != 0 && c != 4 {
			ok = false
		}
	})
	return ok
}

func walkLoads(e ir.Expr, f func(ir.Load)) {
	switch ex := e.(type) {
	case ir.Load:
		f(ex)
	case ir.Bin:
		walkLoads(ex.L, f)
		walkLoads(ex.R, f)
	case ir.Ternary:
		walkLoads(ex.Cond.L, f)
		walkLoads(ex.Cond.R, f)
		walkLoads(ex.Then, f)
		walkLoads(ex.Else, f)
	}
}

func affEqual(a, b ir.Aff) bool {
	d := a.Plus(scaleAff(b, -1))
	return d.Const == 0 && len(d.Terms) == 0
}

// vcache caches hoisted loop-invariant vector values during one vector
// loop's emission.
type vcache struct {
	regs map[string]isa.Reg
}

// emitVectorBody emits one vector step of every planned statement at the
// current unrollShift. Prefetches are emitted only when withPrefetch is
// set (the first unroll position of the main loop).
func (c *compiler) emitVectorBody(lp ir.Loop, plan []vstmt, cache *vcache, redAcc []isa.Reg, withPrefetch bool) {
	for i, s := range plan {
		switch s.kind {
		case vsPrefetch:
			if withPrefetch { // one PLD per stream per line
				c.emitMem(isa.OpPLD, isa.OpInvalid, 0, c.memRef(s.pf.Arr, s.pf.Idx))
			}
		case vsMap:
			v, owned := c.vexpr(s.as.RHS, lp.Var, cache)
			c.emitMem(isa.OpVSTR, isa.OpVSTRX, v, c.memRef(s.as.Arr, s.as.Idx))
			if owned {
				c.vecs.free(v)
			}
		case vsRed:
			// X += a*b becomes a fused multiply-accumulate.
			if b, ok := s.rest.(ir.Bin); ok && b.Op == ir.Mul {
				va, ao := c.vexpr(b.L, lp.Var, cache)
				vb, bo := c.vexpr(b.R, lp.Var, cache)
				c.emit(isa.Inst{Op: isa.OpVFMA, Rd: redAcc[i], Ra: va, Rb: vb})
				if ao {
					c.vecs.free(va)
				}
				if bo {
					c.vecs.free(vb)
				}
			} else {
				vr, ro := c.vexpr(s.rest, lp.Var, cache)
				c.emit(isa.Inst{Op: isa.OpVADD, Rd: redAcc[i], Ra: redAcc[i], Rb: vr})
				if ro {
					c.vecs.free(vr)
				}
			}
		}
	}
}

// vectorLoop emits the SIMD main loop plus scalar tail for a planned
// loop. rv/rh hold the induction variable and the exclusive bound.
//
// The main loop is unrolled to cover one full cache line per iteration
// (LineSize/4 elements = 4 vector operations), so loop overhead and —
// crucially — the software-prefetch PLDs are paid once per line instead
// of once per vector step (the hand-tuned shape the paper's manual
// intrinsics would produce).
func (c *compiler) vectorLoop(lp ir.Loop, plan []vstmt, rv, rh isa.Reg) {
	lVTop, lTail, lTTop, lEnd := c.newLabel(), c.newLabel(), c.newLabel(), c.newLabel()

	unroll := c.opt.LineSize / 4 / isa.VecLanes
	if unroll < 1 {
		unroll = 1
	}
	span := int32(unroll * isa.VecLanes)

	rlimit := c.ints.alloc()
	c.emit(isa.Inst{Op: isa.OpSUBI, Rd: rlimit, Ra: rh, Imm: span - 1})
	c.br(isa.OpBGE, rv, rlimit, lTail)

	// ---- Hoist region: invariant splats and reduction accumulators.
	cache := &vcache{regs: make(map[string]isa.Reg)}
	written := map[*ir.Array]bool{}
	for _, s := range plan {
		if s.kind != vsPrefetch {
			written[s.as.Arr] = true
		}
	}
	for _, s := range plan {
		switch s.kind {
		case vsMap:
			c.hoistInvariants(s.as.RHS, lp.Var, written, cache)
		case vsRed:
			c.hoistInvariants(s.rest, lp.Var, written, cache)
		}
	}
	redAcc := make([]isa.Reg, len(plan))
	for i, s := range plan {
		if s.kind != vsRed {
			continue
		}
		acc := c.vecs.alloc()
		fz := c.fps.alloc()
		c.emit(isa.Inst{Op: isa.OpFMOVI, Rd: fz, Imm: isa.BitsFromF32(0)})
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: acc, Ra: fz})
		c.fps.free(fz)
		redAcc[i] = acc
	}

	// ---- Vector main loop (unrolled over one cache line). Each unroll
	// position uses a shadow induction register (rv + u*lanes) so every
	// access keeps its single-instruction indexed form.
	c.bind(lVTop)
	for u := 0; u < unroll; u++ {
		if u == 0 {
			c.emitVectorBody(lp, plan, cache, redAcc, true)
			continue
		}
		rvu := c.ints.alloc()
		c.emit(isa.Inst{Op: isa.OpADDI, Rd: rvu, Ra: rv, Imm: int32(u * isa.VecLanes)})
		saved := c.loopVar[lp.Var]
		c.loopVar[lp.Var] = rvu
		c.emitVectorBody(lp, plan, cache, redAcc, false)
		c.loopVar[lp.Var] = saved
		c.ints.free(rvu)
	}
	c.emit(isa.Inst{Op: isa.OpADDI, Rd: rv, Ra: rv, Imm: span})
	c.br(isa.OpBLT, rv, rlimit, lVTop)

	// ---- Vector tail: single vector steps for the remaining full
	// groups of four (no prefetching — the stream is about to end).
	if unroll > 1 {
		lVT, lVTTop := c.newLabel(), c.newLabel()
		rlimit2 := c.ints.alloc()
		c.emit(isa.Inst{Op: isa.OpSUBI, Rd: rlimit2, Ra: rh, Imm: isa.VecLanes - 1})
		c.br(isa.OpBGE, rv, rlimit2, lVT)
		c.bind(lVTTop)
		c.emitVectorBody(lp, plan, cache, redAcc, false)
		c.emit(isa.Inst{Op: isa.OpADDI, Rd: rv, Ra: rv, Imm: isa.VecLanes})
		c.br(isa.OpBLT, rv, rlimit2, lVTTop)
		c.bind(lVT)
		c.ints.free(rlimit2)
	}

	// ---- Reduction epilogue: fold accumulators into memory.
	for i, s := range plan {
		if s.kind != vsRed {
			continue
		}
		fs := c.fps.alloc()
		c.emit(isa.Inst{Op: isa.OpVSUM, Rd: fs, Ra: redAcc[i]})
		ft := c.fps.alloc()
		// The accumulator cell is read-modified-written once, so keep a
		// materialized address across the load/store pair.
		ref := c.memRef(s.as.Arr, s.as.Idx)
		ownedBase := ref.ownedBase
		ref.ownedBase = false
		c.emitMem(isa.OpFLDR, isa.OpFLDRX, ft, ref)
		foldOp := isa.OpFADD
		if s.neg {
			foldOp = isa.OpFSUB
		}
		c.emit(isa.Inst{Op: foldOp, Rd: ft, Ra: ft, Rb: fs})
		c.emitMem(isa.OpFSTR, isa.OpFSTRX, ft, ref)
		if ownedBase {
			c.ints.free(ref.base)
		}
		c.fps.free(ft)
		c.fps.free(fs)
		c.vecs.free(redAcc[i])
	}
	for _, r := range cache.regs {
		c.vecs.free(r)
	}

	// ---- Scalar tail.
	c.bind(lTail)
	c.br(isa.OpBGE, rv, rh, lEnd)
	c.bind(lTTop)
	c.stmts(lp.Body)
	c.emit(isa.Inst{Op: isa.OpADDI, Rd: rv, Ra: rv, Imm: 1})
	c.br(isa.OpBLT, rv, rh, lTTop)
	c.bind(lEnd)

	c.ints.free(rlimit)
}

// hoistInvariants emits splats for constants, parameters, and
// loop-invariant loads of arrays the loop does not write, caching the
// resulting vector registers.
func (c *compiler) hoistInvariants(e ir.Expr, v string, written map[*ir.Array]bool, cache *vcache) {
	switch ex := e.(type) {
	case ir.ConstF:
		key := fmt.Sprintf("const:%08x", uint32(isa.BitsFromF32(ex.V)))
		if _, ok := cache.regs[key]; ok {
			return
		}
		f := c.fps.alloc()
		c.emit(isa.Inst{Op: isa.OpFMOVI, Rd: f, Imm: isa.BitsFromF32(ex.V)})
		vd := c.vecs.alloc()
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: f})
		c.fps.free(f)
		cache.regs[key] = vd
	case ir.ParamRef:
		key := "param:" + ex.Name
		if _, ok := cache.regs[key]; ok {
			return
		}
		pr, ok := c.paramReg[ex.Name]
		if !ok {
			panic(fmt.Sprintf("unknown parameter %q", ex.Name))
		}
		vd := c.vecs.alloc()
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: pr})
		cache.regs[key] = vd
	case ir.Load:
		if byteAff(ex.Arr, ex.Idx).CoefOf(v) != 0 || written[ex.Arr] {
			return
		}
		key := loadKey(ex)
		if _, ok := cache.regs[key]; ok {
			return
		}
		f := c.fps.alloc()
		c.emitMem(isa.OpFLDR, isa.OpFLDRX, f, c.memRef(ex.Arr, ex.Idx))
		vd := c.vecs.alloc()
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: f})
		c.fps.free(f)
		cache.regs[key] = vd
	case ir.Bin:
		c.hoistInvariants(ex.L, v, written, cache)
		c.hoistInvariants(ex.R, v, written, cache)
	case ir.Ternary:
		c.hoistInvariants(ex.Cond.L, v, written, cache)
		c.hoistInvariants(ex.Cond.R, v, written, cache)
		c.hoistInvariants(ex.Then, v, written, cache)
		c.hoistInvariants(ex.Else, v, written, cache)
	}
}

func loadKey(ld ir.Load) string {
	key := "load:" + ld.Arr.Name
	for _, ix := range ld.Idx {
		key += ":" + ix.String()
	}
	return key
}

// vexpr evaluates e as a 4-lane vector at the current lane-0 induction
// value; owned tells the caller whether to free the register.
func (c *compiler) vexpr(e ir.Expr, v string, cache *vcache) (isa.Reg, bool) {
	switch ex := e.(type) {
	case ir.ConstF:
		key := fmt.Sprintf("const:%08x", uint32(isa.BitsFromF32(ex.V)))
		if r, ok := cache.regs[key]; ok {
			return r, false
		}
		f := c.fps.alloc()
		c.emit(isa.Inst{Op: isa.OpFMOVI, Rd: f, Imm: isa.BitsFromF32(ex.V)})
		vd := c.vecs.alloc()
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: f})
		c.fps.free(f)
		return vd, true
	case ir.ParamRef:
		if r, ok := cache.regs["param:"+ex.Name]; ok {
			return r, false
		}
		pr, ok := c.paramReg[ex.Name]
		if !ok {
			panic(fmt.Sprintf("unknown parameter %q", ex.Name))
		}
		vd := c.vecs.alloc()
		c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: pr})
		return vd, true
	case ir.Load:
		if byteAff(ex.Arr, ex.Idx).CoefOf(v) == 0 {
			if r, ok := cache.regs[loadKey(ex)]; ok {
				return r, false
			}
			// Invariant load of an array the loop writes: reload and
			// splat every iteration to stay faithful.
			f := c.fps.alloc()
			c.emitMem(isa.OpFLDR, isa.OpFLDRX, f, c.memRef(ex.Arr, ex.Idx))
			vd := c.vecs.alloc()
			c.emit(isa.Inst{Op: isa.OpVSPLAT, Rd: vd, Ra: f})
			c.fps.free(f)
			return vd, true
		}
		vd := c.vecs.alloc()
		c.emitMem(isa.OpVLDR, isa.OpVLDRX, vd, c.memRef(ex.Arr, ex.Idx))
		return vd, true
	case ir.Bin:
		l, lo := c.vexpr(ex.L, v, cache)
		r, ro := c.vexpr(ex.R, v, cache)
		var d isa.Reg
		switch {
		case lo:
			d = l
		case ro:
			d = r
		default:
			d = c.vecs.alloc()
		}
		c.emit(isa.Inst{Op: vectorBinOp(ex.Op), Rd: d, Ra: l, Rb: r})
		if lo && d != l {
			c.vecs.free(l)
		}
		if ro && d != r {
			c.vecs.free(r)
		}
		return d, true
	case ir.Ternary:
		mask := c.vcond(ex.Cond, v, cache)
		t, to := c.vexpr(ex.Then, v, cache)
		res, eo := c.vexpr(ex.Else, v, cache)
		if !eo { // VSELM clobbers its destination
			cp := c.vecs.alloc()
			c.emit(isa.Inst{Op: isa.OpVMOV, Rd: cp, Ra: res})
			res = cp
		}
		c.emit(isa.Inst{Op: isa.OpVSELM, Rd: res, Ra: mask, Rb: t})
		c.vecs.free(mask)
		if to {
			c.vecs.free(t)
		}
		return res, true
	default:
		panic(fmt.Sprintf("unknown vector expression %T", e))
	}
}

func (c *compiler) vcond(cd ir.Cond, v string, cache *vcache) isa.Reg {
	l, lo := c.vexpr(cd.L, v, cache)
	r, ro := c.vexpr(cd.R, v, cache)
	d := c.vecs.alloc()
	var op isa.Opcode
	switch cd.Op {
	case ir.LT:
		op = isa.OpVCLT
	case ir.LE:
		op = isa.OpVCLE
	case ir.EQ:
		op = isa.OpVCEQ
	default:
		panic(fmt.Sprintf("unknown comparison %d", cd.Op))
	}
	c.emit(isa.Inst{Op: op, Rd: d, Ra: l, Rb: r})
	if lo {
		c.vecs.free(l)
	}
	if ro {
		c.vecs.free(r)
	}
	return d
}

func vectorBinOp(op ir.BinOp) isa.Opcode {
	switch op {
	case ir.Add:
		return isa.OpVADD
	case ir.Sub:
		return isa.OpVSUB
	case ir.Mul:
		return isa.OpVMUL
	case ir.Div:
		return isa.OpVDIV
	case ir.Min:
		return isa.OpVMIN
	case ir.Max:
		return isa.OpVMAX
	}
	panic(fmt.Sprintf("unknown binop %d", op))
}
