package compile

import (
	"fmt"

	"sttdl1/internal/isa"
)

// label is a forward-patchable branch target.
type label int

// emitter accumulates instructions and resolves labels at the end.
type emitter struct {
	insts  []isa.Inst
	bound  map[label]int // label -> instruction index
	fixups []fixup
	nlab   label
}

type fixup struct {
	at int // index of the branch instruction
	l  label
}

func newEmitter() *emitter {
	return &emitter{bound: make(map[label]int)}
}

func (e *emitter) emit(in isa.Inst) { e.insts = append(e.insts, in) }

func (e *emitter) newLabel() label {
	e.nlab++
	return e.nlab
}

// bind places l at the next emitted instruction.
func (e *emitter) bind(l label) {
	if _, dup := e.bound[l]; dup {
		panic(fmt.Sprintf("compile: label %d bound twice", l))
	}
	e.bound[l] = len(e.insts)
}

// br emits a PC-relative branch to l, patched at finish.
func (e *emitter) br(op isa.Opcode, ra, rb isa.Reg, l label) {
	e.fixups = append(e.fixups, fixup{at: len(e.insts), l: l})
	e.emit(isa.Inst{Op: op, Ra: ra, Rb: rb})
}

// finish patches branch offsets and returns the instruction stream.
func (e *emitter) finish() ([]isa.Inst, error) {
	for _, f := range e.fixups {
		target, ok := e.bound[f.l]
		if !ok {
			return nil, fmt.Errorf("compile: unbound label %d", f.l)
		}
		e.insts[f.at].Imm = int32(target - (f.at + 1))
	}
	return e.insts, nil
}

// regPool hands out registers of one class with explicit free; it panics
// on exhaustion or double-free (both are compiler bugs).
type regPool struct {
	name  string
	avail []isa.Reg
	inUse map[isa.Reg]bool
	peak  int
}

func newRegPool(name string, regs []isa.Reg) *regPool {
	return &regPool{name: name, avail: regs, inUse: make(map[isa.Reg]bool)}
}

func (p *regPool) alloc() isa.Reg {
	for _, r := range p.avail {
		if !p.inUse[r] {
			p.inUse[r] = true
			if n := len(p.inUse); n > p.peak {
				p.peak = n
			}
			return r
		}
	}
	panic(fmt.Sprintf("compile: %s register pool exhausted (%d regs)", p.name, len(p.avail)))
}

func (p *regPool) free(r isa.Reg) {
	if !p.inUse[r] {
		panic(fmt.Sprintf("compile: %s pool: double free of r%d", p.name, r))
	}
	delete(p.inUse, r)
}

func intRange(lo, hi isa.Reg) []isa.Reg {
	out := make([]isa.Reg, 0, hi-lo+1)
	for r := lo; r <= hi; r++ {
		out = append(out, r)
	}
	return out
}
