// Package compile lowers the loop-nest IR to ARMlet machine code and
// implements the paper's code transformations (§V): loop vectorization,
// software prefetch insertion, branch removal in innermost loops, and
// data alignment. Each transformation is independently switchable, which
// is what the Fig. 5/6/9 experiments sweep.
package compile

import (
	"fmt"

	"sttdl1/internal/ir"
	"sttdl1/internal/isa"
)

// Options selects the code transformations — the simulator-side
// equivalent of the paper's per-kernel intrinsic compile flags.
type Options struct {
	// Vectorize turns marked, legal innermost loops into 4-lane SIMD
	// loops with scalar tails.
	Vectorize bool
	// Prefetch inserts PLD hints one cache line ahead of every
	// stride-1 stream in innermost loops.
	Prefetch bool
	// Branchless rewrites eligible innermost-loop Ifs into predicated
	// selects.
	Branchless bool
	// PrefetchStreams caps prefetched streams per loop; the pass further
	// adapts the budget to each loop's line footprint (the paper's
	// manually chosen "critical data"). Default 2.
	PrefetchStreams int
	// Align places array bases on cache-line boundaries.
	Align bool
	// Interchange enables the loop-interchange extension pass (not part
	// of the paper's transformation set; see interchange.go).
	Interchange bool
	// LineSize is the DL1 line in bytes (prefetch distance and
	// alignment granule). Default 64.
	LineSize int
}

// AllOptimizations enables every transformation of the paper's "With
// Optimization" configuration.
func AllOptimizations() Options {
	return Options{Vectorize: true, Prefetch: true, Branchless: true, Align: true}
}

// ExtendedOptimizations adds the loop-interchange extension on top of
// the paper's set — the "systematic approach" its §V leaves as future
// work.
func ExtendedOptimizations() Options {
	o := AllOptimizations()
	o.Interchange = true
	return o
}

// Compiled is the result of compiling one kernel.
type Compiled struct {
	Prog *isa.Program
	// Kernel is the transformed clone with layout applied; use it to
	// initialize and read back the data segment.
	Kernel *ir.Kernel
	Opts   Options
	// VectorizedLoops counts loops emitted in SIMD form.
	VectorizedLoops int
	// PrefetchSites counts inserted PLD sites.
	PrefetchSites int
	// BranchlessRewrites counts If statements turned into selects.
	BranchlessRewrites int
	// InterchangedLoops counts nests rewritten by the interchange pass.
	InterchangedLoops int
}

type compiler struct {
	*emitter
	k   *ir.Kernel
	opt Options

	ints *regPool
	fps  *regPool
	vecs *regPool

	arrayBase map[*ir.Array]isa.Reg
	paramReg  map[string]isa.Reg
	loopVar   map[string]isa.Reg

	// Innermost-loop address strength reduction: hoists holds registers
	// with arrayBase + (subscript terms not involving hoistVar), keyed by
	// hoistKey, so body accesses become one indexed instruction — what
	// -O2 induction-variable elimination does to PolyBench loops.
	hoists   map[string]isa.Reg
	hoistVar string

	vectorized int
}

// memref is the best addressing form for one array access.
type memref struct {
	base      isa.Reg
	index     isa.Reg // valid when hasIndex
	shift     int32
	off       int32
	hasIndex  bool
	ownedBase bool
}

// Compile lowers kernel k under the given options.
func Compile(k *ir.Kernel, opt Options) (*Compiled, error) {
	if opt.LineSize <= 0 {
		opt.LineSize = 64
	}
	k = k.Clone()

	nInterchange := 0
	if opt.Interchange {
		k.Body, nInterchange = interchangeStmts(k.Body)
	}
	nBranchless := 0
	if opt.Branchless {
		k.Body, nBranchless = branchlessStmts(k.Body)
	}
	nPrefetch := 0
	if opt.Prefetch {
		if opt.PrefetchStreams == 0 {
			opt.PrefetchStreams = 2
		}
		k.Body, nPrefetch = prefetchStmts(k.Body, opt.LineSize/4, opt.PrefetchStreams)
	}

	lo := ir.DefaultLayoutOptions()
	lo.Align = opt.Align
	lo.AlignBytes = opt.LineSize
	size := ir.Layout(k, lo)

	c := &compiler{
		emitter:   newEmitter(),
		k:         k,
		opt:       opt,
		ints:      newRegPool("int", intRange(0, 28)),
		fps:       newRegPool("fp", intRange(0, isa.NumFPRegs-1)),
		vecs:      newRegPool("vec", intRange(0, isa.NumVecRegs-1)),
		arrayBase: make(map[*ir.Array]isa.Reg),
		paramReg:  make(map[string]isa.Reg),
		loopVar:   make(map[string]isa.Reg),
		hoists:    map[string]isa.Reg{},
	}

	// Preamble: materialize array bases and scalar parameters.
	for _, a := range k.Arrays {
		r := c.ints.alloc()
		c.arrayBase[a] = r
		c.emit(isa.Inst{Op: isa.OpMOVI, Rd: r, Imm: int32(a.Base)})
	}
	for _, p := range k.Params {
		r := c.fps.alloc()
		c.paramReg[p.Name] = r
		c.emit(isa.Inst{Op: isa.OpFMOVI, Rd: r, Imm: isa.BitsFromF32(p.Value)})
	}

	var cerr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				cerr = fmt.Errorf("compile: %s: %v", k.Name, r)
			}
		}()
		c.stmts(k.Body)
	}()
	if cerr != nil {
		return nil, cerr
	}
	c.emit(isa.Inst{Op: isa.OpHALT})

	insts, err := c.finish()
	if err != nil {
		return nil, err
	}
	prog := &isa.Program{Insts: insts, Name: k.Name, DataSize: size}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compile: %s: generated invalid code: %w", k.Name, err)
	}
	return &Compiled{
		Prog:               prog,
		Kernel:             k,
		Opts:               opt,
		VectorizedLoops:    c.vectorized,
		PrefetchSites:      nPrefetch,
		BranchlessRewrites: nBranchless,
		InterchangedLoops:  nInterchange,
	}, nil
}

// MustCompile is Compile for known-good kernels.
func MustCompile(k *ir.Kernel, opt Options) *Compiled {
	ck, err := Compile(k, opt)
	if err != nil {
		panic(err)
	}
	return ck
}

func (c *compiler) stmts(ss []ir.Stmt) {
	for _, s := range ss {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ir.Stmt) {
	switch st := s.(type) {
	case ir.Assign:
		v, owned := c.expr(st.RHS)
		c.emitMem(isa.OpFSTR, isa.OpFSTRX, v, c.memRef(st.Arr, st.Idx))
		if owned {
			c.fps.free(v)
		}
	case ir.Loop:
		c.loop(st)
	case ir.If:
		c.ifStmt(st)
	case ir.Prefetch:
		c.emitMem(isa.OpPLD, isa.OpInvalid, 0, c.memRef(st.Arr, st.Idx))
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

// bound materializes a loop bound into a fresh int register.
func (c *compiler) boundReg(b ir.Bound) isa.Reg {
	r := c.ints.alloc()
	if b.Var == "" {
		c.emit(isa.Inst{Op: isa.OpMOVI, Rd: r, Imm: int32(b.Const)})
		return r
	}
	src, ok := c.loopVar[b.Var]
	if !ok {
		panic(fmt.Sprintf("bound references unknown loop var %q", b.Var))
	}
	c.emit(isa.Inst{Op: isa.OpADDI, Rd: r, Ra: src, Imm: int32(b.Const)})
	return r
}

func (c *compiler) loop(st ir.Loop) {
	if _, dup := c.loopVar[st.Var]; dup {
		panic(fmt.Sprintf("loop var %q shadows an enclosing loop", st.Var))
	}
	rv := c.boundReg(st.Lo)
	c.loopVar[st.Var] = rv
	rh := c.boundReg(st.Hi)

	// Innermost loops get their invariant address parts hoisted into
	// registers so body accesses collapse to indexed loads/stores.
	savedHoists, savedVar := c.hoists, c.hoistVar
	var hoistRegs []isa.Reg
	if innermost(st) {
		type entry struct {
			arr *ir.Array
			inv []ir.Term
		}
		seen := map[string]entry{}
		var order []string
		accessRefs(st.Body, func(arr *ir.Array, idx []ir.Aff) {
			inv, _ := termsWithout(byteAff(arr, idx), st.Var)
			if len(inv) == 0 {
				return
			}
			key := hoistKey(arr, inv)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = entry{arr: arr, inv: inv}
			order = append(order, key)
		})
		c.hoists = make(map[string]isa.Reg, len(order))
		c.hoistVar = st.Var
		for _, key := range order {
			e := seen[key]
			r := c.sumTerms(c.arrayBase[e.arr], e.inv)
			c.hoists[key] = r
			hoistRegs = append(hoistRegs, r)
		}
	}
	restoreHoists := func() {
		for _, r := range hoistRegs {
			c.ints.free(r)
		}
		c.hoists, c.hoistVar = savedHoists, savedVar
	}

	if c.opt.Vectorize && st.Vectorizable && st.StepOf() == 1 {
		if plan, ok := planVectorLoop(st); ok {
			c.vectorLoop(st, plan, rv, rh)
			restoreHoists()
			c.ints.free(rh)
			c.ints.free(rv)
			delete(c.loopVar, st.Var)
			c.vectorized++
			return
		}
	}

	// Scalar reduction promotion (-O2 style): accumulators whose element
	// is loop-invariant live in a register across the loop instead of a
	// load/store pair per iteration.
	promos := planPromotions(st)
	for i := range promos {
		p := &promos[i]
		p.reg = c.fps.alloc()
		p.ref = c.memRef(p.as.Arr, p.as.Idx)
		ownedBase := p.ref.ownedBase
		p.ref.ownedBase = false // keep the base register across the loop
		p.freeBase = ownedBase
		c.emitMem(isa.OpFLDR, isa.OpFLDRX, p.reg, p.ref)
	}

	lTop, lEnd := c.newLabel(), c.newLabel()
	c.br(isa.OpBGE, rv, rh, lEnd)
	c.bind(lTop)
	for i, s := range st.Body {
		if p := promoFor(promos, i); p != nil {
			v, owned := c.expr(p.rest)
			op := isa.OpFADD
			if p.neg {
				op = isa.OpFSUB
			}
			c.emit(isa.Inst{Op: op, Rd: p.reg, Ra: p.reg, Rb: v})
			if owned {
				c.fps.free(v)
			}
			continue
		}
		c.stmt(s)
	}
	c.emit(isa.Inst{Op: isa.OpADDI, Rd: rv, Ra: rv, Imm: int32(st.StepOf())})
	c.br(isa.OpBLT, rv, rh, lTop)
	c.bind(lEnd)

	for i := range promos {
		p := &promos[i]
		c.emitMem(isa.OpFSTR, isa.OpFSTRX, p.reg, p.ref)
		if p.freeBase {
			c.ints.free(p.ref.base)
		}
		c.fps.free(p.reg)
	}

	restoreHoists()
	c.ints.free(rh)
	c.ints.free(rv)
	delete(c.loopVar, st.Var)
}

// promotion describes one register-promoted reduction statement.
type promotion struct {
	bodyIdx  int
	as       ir.Assign
	rest     ir.Expr
	neg      bool
	reg      isa.Reg
	ref      memref
	freeBase bool
}

func promoFor(ps []promotion, bodyIdx int) *promotion {
	for i := range ps {
		if ps[i].bodyIdx == bodyIdx {
			return &ps[i]
		}
	}
	return nil
}

// planPromotions finds direct-body reduction assigns of lp whose target
// element is loop-invariant and whose memory cell no other statement can
// observe during the loop. IVDep waives the may-alias rejection of loads
// from the accumulator's own array (triangular solves, trmm).
func planPromotions(lp ir.Loop) []promotion {
	var out []promotion
	for i, s := range lp.Body {
		as, ok := s.(ir.Assign)
		if !ok {
			continue
		}
		if byteAff(as.Arr, as.Idx).CoefOf(lp.Var) != 0 {
			continue
		}
		rest, neg, ok := reductionRest(as)
		if !ok {
			continue
		}
		if !promotionSafe(lp, i, as) {
			continue
		}
		out = append(out, promotion{bodyIdx: i, as: as, rest: rest, neg: neg})
	}
	return out
}

// promotionSafe checks no other statement in the loop body touches the
// accumulator's array (loads in the accumulator's own rest are allowed
// under IVDep; its own LHS/accumulator-load are excluded by construction).
func promotionSafe(lp ir.Loop, bodyIdx int, as ir.Assign) bool {
	lhs := byteAff(as.Arr, as.Idx)
	safe := true
	check := func(arr *ir.Array, aff ir.Aff, isOwnAcc bool) {
		if arr != as.Arr {
			return
		}
		if isOwnAcc && affEqual(aff, lhs) {
			return
		}
		if !lp.IVDep {
			safe = false
		}
	}
	for j, s := range lp.Body {
		own := j == bodyIdx
		switch st := s.(type) {
		case ir.Assign:
			if !own {
				check(st.Arr, byteAff(st.Arr, st.Idx), false)
			}
			walkLoads(st.RHS, func(ld ir.Load) {
				check(ld.Arr, byteAff(ld.Arr, ld.Idx), own)
			})
		case ir.Prefetch:
			// Hints never observe data.
		case ir.If:
			// Conservative: conditionals may guard accumulation order.
			walkLoads(ir.Ternary{Cond: st.Cond, Then: ir.ConstF{}, Else: ir.ConstF{}}, func(ld ir.Load) {
				check(ld.Arr, byteAff(ld.Arr, ld.Idx), false)
			})
			if containsArray(st.Then, as.Arr) || containsArray(st.Else, as.Arr) {
				safe = false
			}
		case ir.Loop:
			if containsArray(st.Body, as.Arr) {
				safe = false
			}
		}
	}
	return safe
}

func containsArray(ss []ir.Stmt, arr *ir.Array) bool {
	found := false
	accessRefs(ss, func(a *ir.Array, _ []ir.Aff) {
		if a == arr {
			found = true
		}
	})
	return found
}

func (c *compiler) ifStmt(st ir.If) {
	cnd := c.cond(st.Cond)
	lElse, lEnd := c.newLabel(), c.newLabel()
	c.br(isa.OpBEQ, cnd, isa.ZR, lElse)
	c.ints.free(cnd)
	c.stmts(st.Then)
	c.br(isa.OpB, 0, 0, lEnd)
	c.bind(lElse)
	c.stmts(st.Else)
	c.bind(lEnd)
}

// cond evaluates a comparison into a fresh 0/1 int register.
func (c *compiler) cond(cd ir.Cond) isa.Reg {
	l, lo := c.expr(cd.L)
	r, ro := c.expr(cd.R)
	d := c.ints.alloc()
	var op isa.Opcode
	switch cd.Op {
	case ir.LT:
		op = isa.OpFSLT
	case ir.LE:
		op = isa.OpFSLE
	case ir.EQ:
		op = isa.OpFSEQ
	default:
		panic(fmt.Sprintf("unknown comparison %d", cd.Op))
	}
	c.emit(isa.Inst{Op: op, Rd: d, Ra: l, Rb: r})
	if lo {
		c.fps.free(l)
	}
	if ro {
		c.fps.free(r)
	}
	return d
}

// expr evaluates a scalar expression; owned tells the caller whether to
// free the returned register.
func (c *compiler) expr(e ir.Expr) (reg isa.Reg, owned bool) {
	switch ex := e.(type) {
	case ir.ConstF:
		r := c.fps.alloc()
		c.emit(isa.Inst{Op: isa.OpFMOVI, Rd: r, Imm: isa.BitsFromF32(ex.V)})
		return r, true
	case ir.ParamRef:
		r, ok := c.paramReg[ex.Name]
		if !ok {
			panic(fmt.Sprintf("unknown parameter %q", ex.Name))
		}
		return r, false
	case ir.Load:
		r := c.fps.alloc()
		c.emitMem(isa.OpFLDR, isa.OpFLDRX, r, c.memRef(ex.Arr, ex.Idx))
		return r, true
	case ir.Bin:
		l, lo := c.expr(ex.L)
		r, ro := c.expr(ex.R)
		// Reuse an owned operand as the destination when possible.
		var d isa.Reg
		switch {
		case lo:
			d = l
		case ro:
			d = r
		default:
			d = c.fps.alloc()
		}
		c.emit(isa.Inst{Op: scalarBinOp(ex.Op), Rd: d, Ra: l, Rb: r})
		if lo && d != l {
			c.fps.free(l)
		}
		if ro && d != r {
			c.fps.free(r)
		}
		return d, true
	case ir.Ternary:
		cnd := c.cond(ex.Cond)
		t, to := c.expr(ex.Then)
		res, eo := c.expr(ex.Else)
		if !eo { // FSEL overwrites its destination; it must be ours
			cp := c.fps.alloc()
			c.emit(isa.Inst{Op: isa.OpFMOV, Rd: cp, Ra: res})
			res = cp
		}
		c.emit(isa.Inst{Op: isa.OpFSEL, Rd: res, Ra: cnd, Rb: t})
		c.ints.free(cnd)
		if to {
			c.fps.free(t)
		}
		return res, true
	default:
		panic(fmt.Sprintf("unknown expression %T", e))
	}
}

func scalarBinOp(op ir.BinOp) isa.Opcode {
	switch op {
	case ir.Add:
		return isa.OpFADD
	case ir.Sub:
		return isa.OpFSUB
	case ir.Mul:
		return isa.OpFMUL
	case ir.Div:
		return isa.OpFDIV
	case ir.Min:
		return isa.OpFMIN
	case ir.Max:
		return isa.OpFMAX
	}
	panic(fmt.Sprintf("unknown binop %d", op))
}

// byteAff folds a multi-dimensional subscript into one affine byte offset
// from the array base.
func byteAff(arr *ir.Array, idx []ir.Aff) ir.Aff {
	if len(idx) != len(arr.Dims) {
		panic(fmt.Sprintf("array %s indexed with %d subscripts, has %d dims", arr.Name, len(idx), len(arr.Dims)))
	}
	strides := arr.Strides()
	total := ir.Aff{}
	for d, ix := range idx {
		total = total.Plus(scaleAff(ix, strides[d]*4))
	}
	return total
}

func scaleAff(a ir.Aff, k int) ir.Aff {
	out := ir.Aff{Const: a.Const * k}
	for _, t := range a.Terms {
		out.Terms = append(out.Terms, ir.Term{Var: t.Var, Coef: t.Coef * k})
	}
	return out
}

// hoistKey identifies a hoistable invariant address part.
func hoistKey(arr *ir.Array, invTerms []ir.Term) string {
	k := arr.Name
	for _, t := range invTerms {
		k += fmt.Sprintf("|%s*%d", t.Var, t.Coef)
	}
	return k
}

// termsWithout splits aff.Terms into (terms not using v, coefficient of v).
func termsWithout(aff ir.Aff, v string) ([]ir.Term, int) {
	var inv []ir.Term
	coef := 0
	for _, t := range aff.Terms {
		if t.Var == v {
			coef += t.Coef
		} else {
			inv = append(inv, t)
		}
	}
	return inv, coef
}

// sumTerms emits base + sum(terms) into a fresh register.
func (c *compiler) sumTerms(base isa.Reg, terms []ir.Term) isa.Reg {
	tmp := c.ints.alloc()
	first := true
	for _, t := range terms {
		vr, ok := c.loopVar[t.Var]
		if !ok {
			panic(fmt.Sprintf("subscript references unknown loop var %q", t.Var))
		}
		var term isa.Reg
		scratch := isa.Reg(0)
		usedScratch := false
		if t.Coef == 1 {
			term = vr
		} else {
			if first {
				scratch = tmp
			} else {
				scratch = c.ints.alloc()
				usedScratch = true
			}
			if k, pow2 := log2of(t.Coef); pow2 {
				c.emit(isa.Inst{Op: isa.OpLSLI, Rd: scratch, Ra: vr, Imm: int32(k)})
			} else {
				c.emit(isa.Inst{Op: isa.OpMULI, Rd: scratch, Ra: vr, Imm: int32(t.Coef)})
			}
			term = scratch
		}
		if first {
			c.emit(isa.Inst{Op: isa.OpADD, Rd: tmp, Ra: base, Rb: term})
			first = false
		} else {
			c.emit(isa.Inst{Op: isa.OpADD, Rd: tmp, Ra: tmp, Rb: term})
		}
		if usedScratch {
			c.ints.free(scratch)
		}
	}
	if first { // no terms at all
		c.emit(isa.Inst{Op: isa.OpADDI, Rd: tmp, Ra: base, Imm: 0})
	}
	return tmp
}

// memRef lowers an array subscript to its cheapest addressing form,
// preferring a hoisted invariant base plus an indexed register.
func (c *compiler) memRef(arr *ir.Array, idx []ir.Aff) memref {
	aff := byteAff(arr, idx)
	ab, ok := c.arrayBase[arr]
	if !ok {
		panic(fmt.Sprintf("array %s not in this kernel", arr.Name))
	}

	base := ab
	terms := aff.Terms
	if c.hoistVar != "" {
		if inv, coef := termsWithout(aff, c.hoistVar); len(inv) > 0 {
			if hr, ok := c.hoists[hoistKey(arr, inv)]; ok {
				base = hr
				terms = nil
				if coef != 0 {
					terms = []ir.Term{{Var: c.hoistVar, Coef: coef}}
				}
			}
		}
	}

	if len(terms) == 0 {
		return memref{base: base, off: int32(aff.Const)}
	}
	if len(terms) == 1 && aff.Const == 0 {
		if k, pow2 := log2of(terms[0].Coef); pow2 {
			vr, ok := c.loopVar[terms[0].Var]
			if !ok {
				panic(fmt.Sprintf("subscript references unknown loop var %q", terms[0].Var))
			}
			return memref{base: base, index: vr, shift: int32(k), hasIndex: true}
		}
	}
	tmp := c.sumTerms(base, terms)
	return memref{base: tmp, off: int32(aff.Const), ownedBase: true}
}

// emitMem emits the memory instruction for ref, choosing the indexed
// form when available. op is the base+offset opcode; xop its indexed
// twin (OpInvalid if none, e.g. PLD).
func (c *compiler) emitMem(op, xop isa.Opcode, reg isa.Reg, ref memref) {
	if ref.hasIndex {
		if xop != isa.OpInvalid {
			c.emit(isa.Inst{Op: xop, Rd: reg, Ra: ref.base, Rb: ref.index, Imm: ref.shift})
			return
		}
		tmp := c.ints.alloc()
		c.emit(isa.Inst{Op: isa.OpLSLI, Rd: tmp, Ra: ref.index, Imm: ref.shift})
		c.emit(isa.Inst{Op: isa.OpADD, Rd: tmp, Ra: tmp, Rb: ref.base})
		c.emit(isa.Inst{Op: op, Rd: reg, Ra: tmp, Imm: 0})
		c.ints.free(tmp)
		return
	}
	c.emit(isa.Inst{Op: op, Rd: reg, Ra: ref.base, Imm: ref.off})
	if ref.ownedBase {
		c.ints.free(ref.base)
	}
}

// accessRefs lists every (array, subscript) a statement subtree touches;
// used to plan innermost-loop address hoisting.
func accessRefs(ss []ir.Stmt, visit func(arr *ir.Array, idx []ir.Aff)) {
	var onExpr func(e ir.Expr)
	onExpr = func(e ir.Expr) {
		walkLoads(e, func(ld ir.Load) { visit(ld.Arr, ld.Idx) })
	}
	var onStmt func(s ir.Stmt)
	onStmt = func(s ir.Stmt) {
		switch st := s.(type) {
		case ir.Assign:
			visit(st.Arr, st.Idx)
			onExpr(st.RHS)
		case ir.Prefetch:
			visit(st.Arr, st.Idx)
		case ir.If:
			onExpr(st.Cond.L)
			onExpr(st.Cond.R)
			for _, t := range st.Then {
				onStmt(t)
			}
			for _, t := range st.Else {
				onStmt(t)
			}
		case ir.Loop:
			for _, t := range st.Body {
				onStmt(t)
			}
		}
	}
	for _, s := range ss {
		onStmt(s)
	}
}

func log2of(n int) (int, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k, true
}
