package compile

import (
	"fmt"
	"math"
	"testing"

	"sttdl1/internal/cpu"
	"sttdl1/internal/ir"
	"sttdl1/internal/isa"
	"sttdl1/internal/polybench"
)

// allOptionCombos enumerates the 32 on/off combinations of the four
// paper transformations plus the interchange extension.
func allOptionCombos() []Options {
	var out []Options
	for m := 0; m < 32; m++ {
		out = append(out, Options{
			Vectorize:   m&1 != 0,
			Prefetch:    m&2 != 0,
			Branchless:  m&4 != 0,
			Align:       m&8 != 0,
			Interchange: m&16 != 0,
		})
	}
	return out
}

// runCompiled interprets a compiled kernel functionally and returns the
// final memory image.
func runCompiled(t *testing.T, ck *Compiled) []byte {
	t.Helper()
	st := cpu.NewState(ck.Prog)
	if err := ir.InitData(ck.Kernel, st.Mem); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.InterpretState(ck.Prog, st, 500_000_000); err != nil {
		t.Fatalf("%s: %v", ck.Prog.Name, err)
	}
	return st.Mem
}

// checkAgainstEvaluator compares every Out array of a compiled+executed
// kernel against the IR evaluator run on the same (transformed,
// laid-out) kernel. Vectorized reductions reassociate float adds, so the
// comparison uses a relative tolerance.
func checkAgainstEvaluator(t *testing.T, ck *Compiled, mem []byte) {
	t.Helper()
	size := 0
	for _, a := range ck.Kernel.Arrays {
		if end := int(a.Base) + 4*a.Elems(); end > size {
			size = end
		}
	}
	ref := make([]byte, size)
	if err := ir.InitData(ck.Kernel, ref); err != nil {
		t.Fatal(err)
	}
	if err := ir.NewEvaluator(ck.Kernel, ref).Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range ck.Kernel.Arrays {
		if !a.Out {
			continue
		}
		got := ir.ReadArray(a, mem)
		want := ir.ReadArray(a, ref)
		for i := range want {
			g, w := float64(got[i]), float64(want[i])
			if math.IsNaN(g) != math.IsNaN(w) {
				t.Fatalf("%s[%d]: got %g want %g", a.Name, i, g, w)
			}
			if diff := math.Abs(g - w); diff > 1e-3*math.Max(1, math.Abs(w)) {
				t.Fatalf("%s %s[%d]: got %g want %g (opts %+v)",
					ck.Prog.Name, a.Name, i, g, w, ck.Opts)
			}
		}
	}
}

// TestSemanticPreservationAllKernelsAllOptions is the compiler's core
// correctness test: every PolyBench kernel, compiled under all 16
// transformation combinations, must produce the evaluator's results.
func TestSemanticPreservationAllKernelsAllOptions(t *testing.T) {
	sizes := map[string]int{
		"2mm": 9, "3mm": 9, "gemm": 11, "syrk": 10, "trmm": 10,
		"atax": 21, "bicg": 21, "mvt": 21, "gesummv": 18, "trisolv": 22,
		"jacobi2d": 13, "floyd": 9, "gemver": 19, "doitgen": 7,
		"seidel2d": 12, "covariance": 9,
	}
	for _, b := range polybench.All() {
		n, ok := sizes[b.Name]
		if !ok {
			n = 10
		}
		kernel := b.Build(n)
		for _, opts := range allOptionCombos() {
			opts := opts
			t.Run(fmt.Sprintf("%s/v%t_p%t_b%t_a%t_i%t", b.Name, opts.Vectorize, opts.Prefetch, opts.Branchless, opts.Align, opts.Interchange), func(t *testing.T) {
				ck, err := Compile(kernel, opts)
				if err != nil {
					t.Fatal(err)
				}
				mem := runCompiled(t, ck)
				checkAgainstEvaluator(t, ck, mem)
			})
		}
	}
}

// TestScalarCompilationIsExact verifies that without vectorization the
// compiled code is bit-exact against the evaluator (no reassociation).
func TestScalarCompilationIsExact(t *testing.T) {
	for _, b := range polybench.All() {
		kernel := b.Build(9)
		for _, opts := range []Options{{}, {Prefetch: true, Branchless: true, Align: true}} {
			ck, err := Compile(kernel, opts)
			if err != nil {
				t.Fatal(err)
			}
			mem := runCompiled(t, ck)
			size := 0
			for _, a := range ck.Kernel.Arrays {
				if end := int(a.Base) + 4*a.Elems(); end > size {
					size = end
				}
			}
			ref := make([]byte, size)
			if err := ir.InitData(ck.Kernel, ref); err != nil {
				t.Fatal(err)
			}
			if err := ir.NewEvaluator(ck.Kernel, ref).Run(); err != nil {
				t.Fatal(err)
			}
			for _, a := range ck.Kernel.Arrays {
				if !a.Out {
					continue
				}
				got := ir.ReadArray(a, mem)
				want := ir.ReadArray(a, ref)
				for i := range want {
					gb := math.Float32bits(got[i])
					wb := math.Float32bits(want[i])
					if gb != wb {
						t.Fatalf("%s/%s %s[%d]: %g != %g (bit-exact required for scalar code)",
							b.Name, optKeyStr(opts), a.Name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func optKeyStr(o Options) string {
	return fmt.Sprintf("v%tp%tb%ta%t", o.Vectorize, o.Prefetch, o.Branchless, o.Align)
}

func TestVectorizationActuallyHappens(t *testing.T) {
	b, _ := polybench.ByName("gemm")
	ck := MustCompile(b.Build(20), Options{Vectorize: true})
	if ck.VectorizedLoops == 0 {
		t.Fatal("gemm must vectorize")
	}
	hasVec := false
	for _, in := range ck.Prog.Insts {
		if in.Op.IsVector() {
			hasVec = true
			break
		}
	}
	if !hasVec {
		t.Error("no vector instructions emitted")
	}
	scalar := MustCompile(b.Build(20), Options{})
	if scalar.VectorizedLoops != 0 {
		t.Error("scalar build reports vectorized loops")
	}
}

func TestVectorizationReducesInstructions(t *testing.T) {
	b, _ := polybench.ByName("gemm")
	k := b.Build(32)
	count := func(opts Options) uint64 {
		ck := MustCompile(k, opts)
		st := cpu.NewState(ck.Prog)
		if err := ir.InitData(ck.Kernel, st.Mem); err != nil {
			t.Fatal(err)
		}
		n := uint64(0)
		for !st.Halted {
			if _, err := st.Step(ck.Prog); err != nil {
				t.Fatal(err)
			}
			n++
		}
		return n
	}
	s, v := count(Options{}), count(Options{Vectorize: true})
	if v >= s {
		t.Errorf("vectorized %d insts, scalar %d: expected a reduction", v, s)
	}
	if float64(v) > 0.6*float64(s) {
		t.Errorf("vectorization only reduced %d -> %d; expected >40%%", s, v)
	}
}

func TestPrefetchInsertsPLD(t *testing.T) {
	b, _ := polybench.ByName("gemm")
	ck := MustCompile(b.Build(20), Options{Prefetch: true})
	if ck.PrefetchSites == 0 {
		t.Fatal("no prefetch sites inserted")
	}
	plds := 0
	for _, in := range ck.Prog.Insts {
		if in.Op == isa.OpPLD {
			plds++
		}
	}
	if plds == 0 {
		t.Error("no PLD instructions emitted")
	}
	noPf := MustCompile(b.Build(20), Options{})
	for _, in := range noPf.Prog.Insts {
		if in.Op == isa.OpPLD {
			t.Fatal("PLD emitted without the prefetch pass")
		}
	}
}

func TestBranchlessRemovesBranches(t *testing.T) {
	b, _ := polybench.ByName("floyd")
	branchy := MustCompile(b.Build(10), Options{})
	branchless := MustCompile(b.Build(10), Options{Branchless: true})
	if branchless.BranchlessRewrites == 0 {
		t.Fatal("floyd's If must be rewritten")
	}
	countCond := func(p *isa.Program) int {
		n := 0
		for _, in := range p.Insts {
			if in.Op.IsCondBranch() {
				n++
			}
		}
		return n
	}
	if countCond(branchless.Prog) >= countCond(branchy.Prog) {
		t.Errorf("branchless build has %d conditional branches, branchy %d",
			countCond(branchless.Prog), countCond(branchy.Prog))
	}
	hasSel := false
	for _, in := range branchless.Prog.Insts {
		if in.Op == isa.OpFSEL || in.Op == isa.OpVSELM {
			hasSel = true
		}
	}
	if !hasSel {
		t.Error("branchless floyd must use selects")
	}
}

func TestBranchlessEnablesFloydVectorization(t *testing.T) {
	b, _ := polybench.ByName("floyd")
	plain := MustCompile(b.Build(10), Options{Vectorize: true})
	if plain.VectorizedLoops != 0 {
		t.Error("floyd must not vectorize while the If remains")
	}
	both := MustCompile(b.Build(10), Options{Vectorize: true, Branchless: true})
	if both.VectorizedLoops == 0 {
		t.Error("branchless + vectorize must vectorize floyd")
	}
}

func TestColumnWalkLoopsStayScalar(t *testing.T) {
	b, _ := polybench.ByName("trmm")
	ck := MustCompile(b.Kernel(), Options{Vectorize: true})
	if ck.VectorizedLoops != 0 {
		t.Error("trmm's stride-N loop must reject vectorization")
	}
}

func TestInterchangeEnablesColumnWalkVectorization(t *testing.T) {
	for _, name := range []string{"trmm", "mvt", "covariance", "gemver"} {
		b, _ := polybench.ByName(name)
		k := b.Build(12)
		plain := MustCompile(k, Options{Vectorize: true})
		swapped := MustCompile(k, Options{Vectorize: true, Interchange: true})
		if swapped.InterchangedLoops == 0 {
			t.Errorf("%s: no nests interchanged", name)
		}
		if swapped.VectorizedLoops <= plain.VectorizedLoops {
			t.Errorf("%s: interchange must unlock vectorization (%d -> %d loops)",
				name, plain.VectorizedLoops, swapped.VectorizedLoops)
		}
	}
	// Kernels without the pragma are untouched.
	b, _ := polybench.ByName("gemm")
	if ck := MustCompile(b.Build(12), Options{Interchange: true}); ck.InterchangedLoops != 0 {
		t.Error("gemm has no InterchangeOK nests")
	}
}

func TestInterchangeIsExactForScalarCode(t *testing.T) {
	// Interchange preserves each accumulator's summation order, so even
	// the swapped scalar code must be bit-exact against the evaluator
	// run on the transformed kernel.
	for _, name := range []string{"trmm", "mvt", "covariance", "gemver"} {
		b, _ := polybench.ByName(name)
		ck := MustCompile(b.Build(11), Options{Interchange: true})
		mem := runCompiled(t, ck)
		checkAgainstEvaluator(t, ck, mem)
	}
}

func TestAlignChangesLayout(t *testing.T) {
	b, _ := polybench.ByName("gemm")
	aligned := MustCompile(b.Build(10), Options{Align: true})
	for _, a := range aligned.Kernel.Arrays {
		if a.Base%64 != 0 {
			t.Errorf("aligned base %s = %d", a.Name, a.Base)
		}
	}
	packed := MustCompile(b.Build(10), Options{})
	mis := 0
	for _, a := range packed.Kernel.Arrays {
		if a.Base%64 != 0 {
			mis++
		}
	}
	if mis == 0 {
		t.Error("unaligned layout should skew bases")
	}
}

func TestCompileRejectsBadKernels(t *testing.T) {
	a := &ir.Array{Name: "a", Dims: []int{4}}
	unknownVar := &ir.Kernel{Name: "bad", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
		ir.Assign{Arr: a, Idx: []ir.Aff{ir.V("nope")}, RHS: ir.ConstF{V: 1}},
	}}
	if _, err := Compile(unknownVar, Options{}); err == nil {
		t.Error("unknown loop var must fail compilation")
	}
	foreign := &ir.Array{Name: "foreign", Dims: []int{4}}
	otherArr := &ir.Kernel{Name: "bad2", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
		ir.Assign{Arr: foreign, Idx: []ir.Aff{ir.C(0)}, RHS: ir.ConstF{V: 1}},
	}}
	if _, err := Compile(otherArr, Options{}); err == nil {
		t.Error("foreign array must fail compilation")
	}
	dupVar := &ir.Kernel{Name: "bad3", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
		ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(2), Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(2), Body: []ir.Stmt{
				ir.Assign{Arr: a, Idx: []ir.Aff{ir.C(0)}, RHS: ir.ConstF{V: 1}},
			}},
		}},
	}}
	if _, err := Compile(dupVar, Options{}); err == nil {
		t.Error("shadowed loop var must fail compilation")
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	b, _ := polybench.ByName("gemm")
	k := b.Build(8)
	before := len(k.Body)
	if _, err := Compile(k, AllOptimizations()); err != nil {
		t.Fatal(err)
	}
	if len(k.Body) != before {
		t.Error("Compile mutated the input kernel body")
	}
	for _, a := range k.Arrays {
		if a.Base != 0 {
			t.Error("Compile assigned bases on the input kernel")
		}
	}
}

func TestZeroTripLoops(t *testing.T) {
	a := &ir.Array{Name: "a", Dims: []int{4}, Init: func([]int) float32 { return 7 }, Out: true}
	k := &ir.Kernel{Name: "empty", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
		ir.Loop{Var: "i", Lo: ir.BC(2), Hi: ir.BC(2), Vectorizable: true, Body: []ir.Stmt{
			ir.Assign{Arr: a, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 0}},
		}},
		ir.Loop{Var: "j", Lo: ir.BC(3), Hi: ir.BC(1), Body: []ir.Stmt{
			ir.Assign{Arr: a, Idx: []ir.Aff{ir.V("j")}, RHS: ir.ConstF{V: 0}},
		}},
	}}
	for _, opts := range allOptionCombos() {
		ck := MustCompile(k, opts)
		mem := runCompiled(t, ck)
		got := ir.ReadArray(ck.Kernel.Array("a"), mem)
		for i, v := range got {
			if v != 7 {
				t.Fatalf("opts %+v: a[%d] = %g, zero-trip loops must not execute", opts, i, v)
			}
		}
	}
}

func TestTinyTripVectorLoops(t *testing.T) {
	// Trip counts 1..19 exercise every main/vector-tail/scalar-tail split.
	for n := 1; n < 20; n++ {
		a := &ir.Array{Name: "a", Dims: []int{32}, Out: true}
		k := &ir.Kernel{Name: "tiny", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: a, Idx: []ir.Aff{ir.V("i")}, RHS: ir.ConstF{V: 1}},
			}},
		}}
		ck := MustCompile(k, Options{Vectorize: true})
		mem := runCompiled(t, ck)
		got := ir.ReadArray(ck.Kernel.Array("a"), mem)
		for i := 0; i < 32; i++ {
			want := float32(0)
			if i < n {
				want = 1
			}
			if got[i] != want {
				t.Fatalf("n=%d: a[%d] = %g, want %g", n, i, got[i], want)
			}
		}
	}
}

func TestEmitterLabelErrors(t *testing.T) {
	e := newEmitter()
	l := e.newLabel()
	e.br(isa.OpB, 0, 0, l)
	if _, err := e.finish(); err == nil {
		t.Error("unbound label must fail")
	}
}

func TestRegPoolDiscipline(t *testing.T) {
	p := newRegPool("test", intRange(0, 2))
	a, b, c := p.alloc(), p.alloc(), p.alloc()
	_ = b
	func() {
		defer func() {
			if recover() == nil {
				t.Error("exhausted pool must panic")
			}
		}()
		p.alloc()
	}()
	p.free(a)
	if got := p.alloc(); got != a {
		t.Errorf("freed register not reused: %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double free must panic")
			}
		}()
		p.free(c)
		p.free(c)
	}()
}
