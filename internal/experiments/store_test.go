package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"sttdl1/internal/energy"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/store"
)

func storeBench(t *testing.T) polybench.Bench {
	t.Helper()
	b, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("benchmark atax not registered")
	}
	b.Default = 24 // keep the simulations cheap
	return b
}

// TestSuiteStoreWarmHit drives the full second-tier path: a cold suite
// populates the store, a fresh suite (fresh in-memory memo) over the
// same directory serves the identical result from disk — counters,
// config, derived energy — with the timing model never running, and the
// progress stream marks the run as cached.
func TestSuiteStoreWarmHit(t *testing.T) {
	dir := t.TempDir()
	b := storeBench(t)
	cfgs := []sim.Config{sim.BaselineSRAM(), sim.ProposalVWB()}

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s1.SetStore(cold)
	fresh := make([]*sim.RunResult, len(cfgs))
	for i, cfg := range cfgs {
		if fresh[i], err = s1.Run(b, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if st := cold.Stats(); st.Hits != 0 || st.Writes != int64(len(cfgs)) {
		t.Fatalf("cold run stats = %+v, want 0 hits / %d writes", st, len(cfgs))
	}

	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s2.SetStore(warm)
	var counters stats.Counters
	s2.SetProgress(counters.Observe)
	for i, cfg := range cfgs {
		r, err := s2.Run(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := fresh[i]
		want := *f.CPU
		want.State = nil
		if *r.CPU != want {
			t.Errorf("%s: warm CPU counters differ from fresh run", cfg.Name)
		}
		if r.Config != f.Config {
			t.Errorf("%s: warm result config = %+v, want %+v", cfg.Name, r.Config, f.Config)
		}
		if r.DL1Stats != f.DL1Stats || r.FEStats != f.FEStats || r.L2Stats != f.L2Stats {
			t.Errorf("%s: warm cache stats differ from fresh run", cfg.Name)
		}
		m, err := energy.ModelFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, wantUJ := energy.TotalUJ(r, cfg, m), energy.TotalUJ(f, cfg, m); got != wantUJ {
			t.Errorf("%s: warm TotalUJ = %v, fresh %v", cfg.Name, got, wantUJ)
		}
	}
	if st := warm.Stats(); st.Hits != int64(len(cfgs)) || st.Misses != 0 || st.Writes != 0 {
		t.Fatalf("warm run stats = %+v, want %d hits / 0 misses / 0 writes", st, len(cfgs))
	}
	if got := counters.Cached(); got != len(cfgs) {
		t.Errorf("progress saw %d cached events, want %d", got, len(cfgs))
	}
	if got := s2.StoreStats().Hits; got != int64(len(cfgs)) {
		t.Errorf("StoreStats().Hits = %d, want %d", got, len(cfgs))
	}
}

// TestSuiteStoreHealsCorruption corrupts every stored entry on disk and
// re-runs through a fresh suite: the suite must detect, delete,
// re-evaluate and re-publish — and still produce the identical result.
func TestSuiteStoreHealsCorruption(t *testing.T) {
	dir := t.TempDir()
	b := storeBench(t)
	cfg := sim.ProposalVWB()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s1.SetStore(st1)
	fresh, err := s1.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every entry mid-record — the on-disk shape a kill -9
	// between write and rename could leave behind a crash-inconsistent
	// filesystem with.
	n := 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".rec" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n++
		return os.WriteFile(path, data[:len(data)/3], 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("cold run stored no entries")
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s2.SetStore(st2)
	if s2.Stored(b, cfg) {
		t.Error("Stored() validated a truncated entry")
	}
	r, err := s2.Run(b, cfg)
	if err != nil {
		t.Fatalf("run over a corrupt store must re-evaluate, got: %v", err)
	}
	if r.CPU.Cycles != fresh.CPU.Cycles || r.CPU.Insts != fresh.CPU.Insts {
		t.Error("re-evaluated result differs from the original")
	}
	stats2 := st2.Stats()
	if stats2.Hits != 0 || stats2.Corrupt == 0 || stats2.Writes == 0 {
		t.Errorf("healing stats = %+v, want 0 hits, >0 corrupt, >0 writes", stats2)
	}
	// Third pass: the repaired entry serves warm.
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s3.SetStore(st3)
	if !s3.Stored(b, cfg) {
		t.Error("repaired entry not visible to Stored()")
	}
	if _, err := s3.Run(b, cfg); err != nil {
		t.Fatal(err)
	}
	if got := st3.Stats().Hits; got != 1 {
		t.Errorf("post-repair hits = %d, want 1", got)
	}
}

// TestSuiteStoreKeysCheckApart pins the Check-flag addressing: a
// checked run must never be served from an unchecked run's stored
// entry (the whole point of -check is that the oracle actually runs).
func TestSuiteStoreKeysCheckApart(t *testing.T) {
	dir := t.TempDir()
	b := storeBench(t)
	cfg := sim.ProposalVWB()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s1.SetStore(st1)
	if _, err := s1.Run(b, cfg); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuiteJobs([]polybench.Bench{b}, 1)
	s2.SetStore(st2)
	s2.SetCheck(true)
	if s2.Stored(b, cfg) {
		t.Fatal("checked lookup matched an unchecked entry")
	}
	if _, err := s2.Run(b, cfg); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Hits; got != 0 {
		t.Errorf("checked run hit an unchecked entry (%d hits)", got)
	}
}
