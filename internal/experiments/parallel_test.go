package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

// smallBenches returns the full benchmark set with problem sizes shrunk
// so the whole Fig. 3 matrix simulates in seconds. Every benchmark stays
// in the matrix — the determinism contract has to hold for all of them,
// not a friendly subset.
func smallBenches(t *testing.T) []polybench.Bench {
	t.Helper()
	benches := polybench.All()
	for i := range benches {
		if benches[i].Default > 20 {
			benches[i].Default = 20
		}
	}
	return benches
}

// TestFig3DeterministicUnderParallelism is the ISSUE's headline
// determinism test: the full Fig. 3 matrix (every benchmark × baseline /
// drop-in / VWB) run at -j 1 and at -j 8 must produce byte-identical
// rendered output and identical raw series (DESIGN.md §7's contract,
// regardless of worker count or completion order).
func TestFig3DeterministicUnderParallelism(t *testing.T) {
	benches := smallBenches(t)

	serial := NewSuiteJobs(benches, 1)
	parallel := NewSuiteJobs(benches, 8)
	if serial.Jobs() != 1 || parallel.Jobs() != 8 {
		t.Fatalf("jobs = %d / %d, want 1 / 8", serial.Jobs(), parallel.Jobs())
	}

	f1, err := serial.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	f8, err := parallel.Fig3()
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal([]byte(f1.Render()), []byte(f8.Render())) {
		t.Errorf("rendered Fig. 3 differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			f1.Render(), f8.Render())
	}
	if f1.CSV() != f8.CSV() {
		t.Error("CSV output differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(f1.Series, f8.Series) {
		t.Errorf("raw series differ:\nj1: %+v\nj8: %+v", f1.Series, f8.Series)
	}
	if !reflect.DeepEqual(f1.Benches, f8.Benches) {
		t.Errorf("bench columns differ: %v vs %v", f1.Benches, f8.Benches)
	}
}

// TestPrefetchPopulatesFigures checks the fan-out/consume split: after a
// Prefetch of the Fig. 1 matrix the figure itself must not execute any
// new simulation.
func TestPrefetchPopulatesFigures(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default, atax.Default = 16, 40
	s := NewSuiteJobs([]polybench.Bench{gemm, atax}, 4)

	if err := s.Prefetch(s.Benches, sim.BaselineSRAM(), sim.DropInSTT()); err != nil {
		t.Fatal(err)
	}
	runsAfterPrefetch := s.SimsRun()
	if runsAfterPrefetch != 4 {
		t.Fatalf("prefetch executed %d sims, want 4", runsAfterPrefetch)
	}
	if _, err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	if s.SimsRun() != runsAfterPrefetch {
		t.Errorf("Fig1 executed %d extra sims after prefetch", s.SimsRun()-runsAfterPrefetch)
	}
}

// TestPrefetchSharedAcrossConcurrentFigures drives the dedup path the
// way RunAll does: two figures that share configurations running
// concurrently must not duplicate the shared simulations.
func TestPrefetchSharedAcrossConcurrentFigures(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default, atax.Default = 16, 40
	s := NewSuiteJobs([]polybench.Bench{gemm, atax}, 8)

	errc := make(chan error, 2)
	go func() { _, err := s.Fig1(); errc <- err }()
	go func() { _, err := s.Fig3(); errc <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// Fig1 needs {sram, dropin}, Fig3 needs {sram, dropin, vwb}: the
	// union is 3 configs × 2 benches even though 5 config-series were
	// requested in total.
	if got := s.SimsRun(); got != 6 {
		t.Errorf("concurrent figures executed %d sims, want 6 (dedup broken)", got)
	}
}

// TestRunAllParallelMatchesSerial runs a slice of the registry through
// the concurrent RunRunners engine at two worker counts and requires
// byte-identical rendered output.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default, atax.Default = 16, 40
	benches := []polybench.Bench{gemm, atax}

	runners := make([]Runner, 0, 4)
	for _, id := range []string{"fig1", "fig3", "fig4", "fig9"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing runner %q", id)
		}
		runners = append(runners, r)
	}

	render := func(jobs int) string {
		var buf bytes.Buffer
		s := NewSuiteJobs(benches, jobs)
		if err := RunRunners(context.Background(), s, runners, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if j1, j8 := render(1), render(8); j1 != j8 {
		t.Errorf("RunRunners output differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
}

// TestSuiteContextCancellation: a canceled context must stop a batch
// with context.Canceled instead of running it to completion.
func TestSuiteContextCancellation(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	gemm.Default = 16
	s := NewSuiteJobs([]polybench.Bench{gemm}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.WithContext(ctx).Run(gemm, sim.BaselineSRAM())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.SimsRun() != 0 {
		t.Errorf("%d sims ran under a canceled context", s.SimsRun())
	}
}

// TestProgressCountersUnderParallelism: the progress stream must account
// for exactly the executed simulations and respect the worker bound.
func TestProgressCountersUnderParallelism(t *testing.T) {
	benches := smallBenches(t)[:6]
	s := NewSuiteJobs(benches, 3)
	var c stats.Counters
	s.SetProgress(c.Observe)
	if err := s.Prefetch(benches, sim.BaselineSRAM(), sim.DropInSTT()); err != nil {
		t.Fatal(err)
	}
	if c.Runs() != 12 {
		t.Errorf("counters saw %d runs, want 12", c.Runs())
	}
	if c.MaxInFlight() > 3 {
		t.Errorf("peak in-flight %d exceeds -j 3", c.MaxInFlight())
	}
	if c.BusyTime() <= 0 {
		t.Error("busy time not accumulated")
	}
}
