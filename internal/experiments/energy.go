package experiments

import (
	"fmt"

	"sttdl1/internal/energy"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/tech"
)

// The paper's conclusion defers the energy story: "the use of NVMs also
// allows gains in area and even energy (power models have yet to be
// fully developed though)". The model that develops it — DL1 energy =
// leakage power x runtime + per-access dynamic energy from the
// technology model, accumulated over the simulated access streams —
// lives in internal/energy, shared with the design-space exploration
// engine (internal/dse).

// EnergyTable compares DL1 energy across the three headline
// configurations, averaged over the suite — the analysis the paper
// leaves as future work. The expected shape: SRAM leakage dominates its
// total; the STT-MRAM array's near-zero cell leakage more than pays for
// its costlier writes; the VWB's filtering removes most array reads.
func (s *Suite) EnergyTable() (stats.Table, error) {
	type row struct {
		cfg   sim.Config
		model tech.Model
		isVWB bool
	}
	rows := []row{
		{cfg: sim.BaselineSRAM()},
		{cfg: sim.DropInSTT()},
		{cfg: sim.ProposalVWB(), isVWB: true},
	}
	for i := range rows {
		m, err := energy.ModelFor(rows[i].cfg)
		if err != nil {
			return stats.Table{}, err
		}
		rows[i].model = m
	}
	if err := s.Prefetch(s.Benches, sim.BaselineSRAM(), sim.DropInSTT(), sim.ProposalVWB()); err != nil {
		return stats.Table{}, err
	}

	t := stats.Table{
		ID:      "energy",
		Title:   "DL1 energy per benchmark run, averaged over the suite (model developed per the paper's future work)",
		Columns: []string{"Configuration", "Leakage (uJ)", "Dynamic (uJ)", "Buffer (uJ)", "Total (uJ)", "vs SRAM"},
	}
	var sramTotal float64
	for _, rw := range rows {
		var leak, dyn, buf float64
		for _, b := range s.Benches {
			res, err := s.Run(b, rw.cfg)
			if err != nil {
				return stats.Table{}, err
			}
			l, d := energy.DL1UJ(res, rw.model)
			leak += l
			dyn += d
			if rw.isVWB {
				buf += energy.BufferUJ(res, rw.cfg.BufferBits)
			}
		}
		n := float64(len(s.Benches))
		leak, dyn, buf = leak/n, dyn/n, buf/n
		total := leak + dyn + buf
		if rw.cfg.Name == "sram-baseline" {
			sramTotal = total
		}
		rel := "1.00x"
		if sramTotal > 0 && rw.cfg.Name != "sram-baseline" {
			rel = fmt.Sprintf("%.2fx", total/sramTotal)
		}
		t.Rows = append(t.Rows, []string{
			rw.cfg.Name,
			fmt.Sprintf("%.2f", leak),
			fmt.Sprintf("%.2f", dyn),
			fmt.Sprintf("%.2f", buf),
			fmt.Sprintf("%.2f", total),
			rel,
		})
	}
	t.Notes = append(t.Notes,
		"leakage = array leakage power x runtime; dynamic = per-row-activation energies from the tech model",
		"the SRAM column is leakage-dominated; the NVM's near-zero cell leakage is the paper's energy claim")
	return t, nil
}

// LifetimeTable estimates the STT-MRAM DL1's wear-out horizon from the
// simulated write traffic — quantifying the paper's §I claim that
// STT-MRAM "suffers minimal degradation over time".
func (s *Suite) LifetimeTable() (stats.Table, error) {
	cell := tech.Cells[tech.STT2T2MTJ]
	linesInDL1 := float64(sim.DL1Size / 64)

	t := stats.Table{
		ID:      "lifetime",
		Title:   "STT-MRAM DL1 endurance horizon under the proposal's write traffic",
		Columns: []string{"Benchmark", "Array writes/run", "Writes/line/s", "Lifetime (yrs, even wear)", "Lifetime (yrs, 100x hotspot)"},
	}
	cfg := sim.ProposalVWB()
	if err := s.Prefetch(s.Benches, cfg); err != nil {
		return stats.Table{}, err
	}
	for _, b := range s.Benches {
		res, err := s.Run(b, cfg)
		if err != nil {
			return stats.Table{}, err
		}
		st := res.DL1Stats
		writes := float64(st.Writes+st.WriteBacks) + float64(st.Misses())
		seconds := float64(res.CPU.Cycles) / 1e9
		perLinePerSec := writes / linesInDL1 / seconds
		endurance := pow10(cell.EnduranceLog10)
		even := endurance / perLinePerSec / (3600 * 24 * 365)
		hot := even / 100
		t.Rows = append(t.Rows, []string{
			b.Name,
			fmt.Sprintf("%.0f", writes),
			fmt.Sprintf("%.0f", perLinePerSec),
			fmt.Sprintf("%.2g", even),
			fmt.Sprintf("%.2g", hot),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cell endurance 1e%.0f writes; horizons in the thousands of years confirm endurance is a non-issue at L1", cell.EnduranceLog10))
	return t, nil
}

func pow10(e float64) float64 {
	out := 1.0
	for i := 0; i < int(e); i++ {
		out *= 10
	}
	return out
}

// AblationICache reproduces the spirit of the authors' DATE'14 study on
// this platform: an STT-MRAM instruction cache, drop-in and behind an
// EMSHR, with the DL1 kept SRAM so the instruction side is isolated.
func (s *Suite) AblationICache() (stats.Figure, error) {
	base := sim.BaselineSRAM()

	dropI := sim.BaselineSRAM()
	dropI.Name = "stt-il1-dropin"
	dropI.IL1Cell = tech.STT2T2MTJ
	dp, err := s.penaltySeries(base, dropI)
	if err != nil {
		return stats.Figure{}, err
	}

	emshrI := dropI
	emshrI.Name = "stt-il1-emshr"
	emshrI.IL1FrontEnd = sim.FEEMSHR
	ep, err := s.penaltySeries(base, emshrI)
	if err != nil {
		return stats.Figure{}, err
	}

	return stats.Figure{
		ID:      "ablation-icache",
		Title:   "STT-MRAM instruction cache: drop-in vs EMSHR front-end (DATE'14 companion study)",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "STT-MRAM IL1 drop-in", Values: dp},
			{Label: "STT-MRAM IL1 + EMSHR", Values: ep},
		},
		Notes: []string{
			"loop-resident kernels fetch from a handful of lines, so the EMSHR recovers most of the penalty",
			"— the DATE'14 result that motivated reusing small buffers on the data side",
		},
	}.WithAverage(), nil
}
