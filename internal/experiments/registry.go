package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"sttdl1/internal/stats"
)

// Result is one rendered experiment artifact, printable as an aligned
// text table or as CSV.
type Result interface {
	String() string
	CSV() string
}

// Runner produces one renderable experiment artifact.
type Runner struct {
	ID    string
	Desc  string
	Run   func(s *Suite) (Result, error)
	Paper bool // true for the paper's own tables/figures, false for extensions
}

type figResult struct{ stats.Figure }
type tabResult struct{ stats.Table }

func (f figResult) String() string { return f.Render() }
func (t tabResult) String() string { return t.Render() }

func fig(run func(s *Suite) (stats.Figure, error)) func(*Suite) (Result, error) {
	return func(s *Suite) (Result, error) {
		f, err := run(s)
		if err != nil {
			return nil, err
		}
		return figResult{f}, nil
	}
}

// Registry lists every reproducible artifact, paper figures first.
func Registry() []Runner {
	return []Runner{
		{ID: "table1", Desc: "Table I: 64KB SRAM vs STT-MRAM DL1 parameters", Paper: true,
			Run: func(s *Suite) (Result, error) { t, err := TableI(); return tabResult{t}, err }},
		{ID: "fig1", Desc: "Fig.1: drop-in STT-MRAM DL1 penalty", Paper: true, Run: fig((*Suite).Fig1)},
		{ID: "fig3", Desc: "Fig.3: drop-in vs VWB penalty", Paper: true, Run: fig((*Suite).Fig3)},
		{ID: "fig4", Desc: "Fig.4: read vs write penalty contribution", Paper: true, Run: fig((*Suite).Fig4)},
		{ID: "fig5", Desc: "Fig.5: VWB with/without code transformations", Paper: true, Run: fig((*Suite).Fig5)},
		{ID: "fig6", Desc: "Fig.6: per-transformation contribution", Paper: true, Run: fig((*Suite).Fig6)},
		{ID: "fig7", Desc: "Fig.7: VWB size sweep 1/2/4 Kbit", Paper: true, Run: fig((*Suite).Fig7)},
		{ID: "fig8", Desc: "Fig.8: proposal vs EMSHR vs L0", Paper: true, Run: fig((*Suite).Fig8)},
		{ID: "fig9", Desc: "Fig.9: optimization gain, baseline vs proposal", Paper: true, Run: fig((*Suite).Fig9)},
		{ID: "cells", Desc: "Extension: full cell-library survey",
			Run: func(s *Suite) (Result, error) { t, err := CellLibrary(); return tabResult{t}, err }},
		{ID: "ablation-banks", Desc: "Extension: NVM bank-count sweep", Run: fig((*Suite).AblationBanks)},
		{ID: "ablation-readlat", Desc: "Extension: STT read-latency sweep", Run: fig((*Suite).AblationReadLat)},
		{ID: "ablation-storebuf", Desc: "Extension: store-buffer depth sweep", Run: fig((*Suite).AblationStoreBuf)},
		{ID: "ablation-policy", Desc: "Extension: VWB LRU vs FIFO", Run: fig((*Suite).AblationVWBPolicy)},
		{ID: "ablation-writeasym", Desc: "Extension: write-latency sweep", Run: fig((*Suite).AblationWriteAsym)},
		{ID: "ablation-icache", Desc: "Extension: STT-MRAM instruction cache (DATE'14 companion)", Run: fig((*Suite).AblationICache)},
		{ID: "ablation-interchange", Desc: "Extension: loop interchange rescues the column-walk kernels", Run: fig((*Suite).AblationInterchange)},
		{ID: "energy", Desc: "Extension: DL1 energy model (paper's future work)",
			Run: func(s *Suite) (Result, error) { t, err := s.EnergyTable(); return tabResult{t}, err }},
		{ID: "lifetime", Desc: "Extension: STT-MRAM endurance horizon",
			Run: func(s *Suite) (Result, error) { t, err := s.LifetimeTable(); return tabResult{t}, err }},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists registered ids, paper artifacts first then extensions,
// each group alphabetical.
func IDs() []string {
	rs := Registry()
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Paper != rs[j].Paper {
			return rs[i].Paper
		}
		return rs[i].ID < rs[j].ID
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// RunAll executes every registered experiment on the suite, writing each
// rendered artifact to w in registry order.
func RunAll(s *Suite, w io.Writer) error {
	return RunRunners(context.Background(), s, Registry(), w)
}

// RunRunners executes the given runners concurrently on the suite and
// writes the rendered artifacts to w in runner order.
func RunRunners(ctx context.Context, s *Suite, runners []Runner, w io.Writer) error {
	results, err := Results(ctx, s, runners)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Fprintln(w, res.String())
	}
	return nil
}

// Results executes the given runners concurrently on the suite — the
// memoizing pool deduplicates the simulations they share — and returns
// their artifacts in runner order, never completion order, so rendered
// output is deterministic at any worker count. The first error (scanning
// in runner order) cancels the queued work of the remaining runners and
// is returned.
func Results(ctx context.Context, s *Suite, runners []Runner) ([]Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sc := s.WithContext(ctx)

	results := make([]Result, len(runners))
	errs := make([]error, len(runners))
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r Runner) {
			defer wg.Done()
			results[i], errs[i] = r.Run(sc)
			if errs[i] != nil {
				cancel()
			}
		}(i, r)
	}
	wg.Wait()

	// Report the first real failure in runner order; cancellations of
	// sibling runners are collateral of that failure.
	var firstCancel error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if firstCancel == nil {
				firstCancel = fmt.Errorf("%s: %w", runners[i].ID, err)
			}
			continue
		}
		return nil, fmt.Errorf("%s: %w", runners[i].ID, err)
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	return results, nil
}
