package experiments

import (
	"fmt"
	"io"
	"sort"

	"sttdl1/internal/stats"
)

// Result is one rendered experiment artifact, printable as an aligned
// text table or as CSV.
type Result interface {
	String() string
	CSV() string
}

// Runner produces one renderable experiment artifact.
type Runner struct {
	ID    string
	Desc  string
	Run   func(s *Suite) (Result, error)
	Paper bool // true for the paper's own tables/figures, false for extensions
}

type figResult struct{ stats.Figure }
type tabResult struct{ stats.Table }

func (f figResult) String() string { return f.Render() }
func (t tabResult) String() string { return t.Render() }

func fig(run func(s *Suite) (stats.Figure, error)) func(*Suite) (Result, error) {
	return func(s *Suite) (Result, error) {
		f, err := run(s)
		if err != nil {
			return nil, err
		}
		return figResult{f}, nil
	}
}

// Registry lists every reproducible artifact, paper figures first.
func Registry() []Runner {
	return []Runner{
		{ID: "table1", Desc: "Table I: 64KB SRAM vs STT-MRAM DL1 parameters", Paper: true,
			Run: func(s *Suite) (Result, error) { t, err := TableI(); return tabResult{t}, err }},
		{ID: "fig1", Desc: "Fig.1: drop-in STT-MRAM DL1 penalty", Paper: true, Run: fig((*Suite).Fig1)},
		{ID: "fig3", Desc: "Fig.3: drop-in vs VWB penalty", Paper: true, Run: fig((*Suite).Fig3)},
		{ID: "fig4", Desc: "Fig.4: read vs write penalty contribution", Paper: true, Run: fig((*Suite).Fig4)},
		{ID: "fig5", Desc: "Fig.5: VWB with/without code transformations", Paper: true, Run: fig((*Suite).Fig5)},
		{ID: "fig6", Desc: "Fig.6: per-transformation contribution", Paper: true, Run: fig((*Suite).Fig6)},
		{ID: "fig7", Desc: "Fig.7: VWB size sweep 1/2/4 Kbit", Paper: true, Run: fig((*Suite).Fig7)},
		{ID: "fig8", Desc: "Fig.8: proposal vs EMSHR vs L0", Paper: true, Run: fig((*Suite).Fig8)},
		{ID: "fig9", Desc: "Fig.9: optimization gain, baseline vs proposal", Paper: true, Run: fig((*Suite).Fig9)},
		{ID: "cells", Desc: "Extension: full cell-library survey",
			Run: func(s *Suite) (Result, error) { t, err := CellLibrary(); return tabResult{t}, err }},
		{ID: "ablation-banks", Desc: "Extension: NVM bank-count sweep", Run: fig((*Suite).AblationBanks)},
		{ID: "ablation-readlat", Desc: "Extension: STT read-latency sweep", Run: fig((*Suite).AblationReadLat)},
		{ID: "ablation-storebuf", Desc: "Extension: store-buffer depth sweep", Run: fig((*Suite).AblationStoreBuf)},
		{ID: "ablation-policy", Desc: "Extension: VWB LRU vs FIFO", Run: fig((*Suite).AblationVWBPolicy)},
		{ID: "ablation-writeasym", Desc: "Extension: write-latency sweep", Run: fig((*Suite).AblationWriteAsym)},
		{ID: "ablation-icache", Desc: "Extension: STT-MRAM instruction cache (DATE'14 companion)", Run: fig((*Suite).AblationICache)},
		{ID: "ablation-interchange", Desc: "Extension: loop interchange rescues the column-walk kernels", Run: fig((*Suite).AblationInterchange)},
		{ID: "energy", Desc: "Extension: DL1 energy model (paper's future work)",
			Run: func(s *Suite) (Result, error) { t, err := s.EnergyTable(); return tabResult{t}, err }},
		{ID: "lifetime", Desc: "Extension: STT-MRAM endurance horizon",
			Run: func(s *Suite) (Result, error) { t, err := s.LifetimeTable(); return tabResult{t}, err }},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists registered ids, paper artifacts first then extensions,
// each group alphabetical.
func IDs() []string {
	rs := Registry()
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Paper != rs[j].Paper {
			return rs[i].Paper
		}
		return rs[i].ID < rs[j].ID
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// RunAll executes every registered experiment on the suite, writing each
// rendered artifact to w.
func RunAll(s *Suite, w io.Writer) error {
	for _, r := range Registry() {
		res, err := r.Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprintln(w, res.String())
	}
	return nil
}
