package experiments

import (
	"sttdl1/internal/compile"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

// Fig1 is the §III motivation experiment: the performance penalty of a
// drop-in STT-MRAM DL1 relative to the SRAM baseline, per benchmark.
// Paper: penalties of tens of percent, "up to 55%" in the worst case.
func (s *Suite) Fig1() (stats.Figure, error) {
	pen, err := s.penaltySeries(sim.BaselineSRAM(), sim.DropInSTT())
	if err != nil {
		return stats.Figure{}, err
	}
	return stats.Figure{
		ID:      "fig1",
		Title:   "Performance penalty for the drop-in NVM D-cache (SRAM baseline = 100%)",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series:  []stats.Series{{Label: "Drop-in STT-MRAM D-cache", Values: pen}},
	}.WithAverage(), nil
}

// Fig3 shows the effect of the micro-architectural modification alone:
// drop-in vs the VWB organization, no code transformations.
func (s *Suite) Fig3() (stats.Figure, error) {
	base := sim.BaselineSRAM()
	drop, err := s.penaltySeries(base, sim.DropInSTT())
	if err != nil {
		return stats.Figure{}, err
	}
	vwb, err := s.penaltySeries(base, sim.ProposalVWB())
	if err != nil {
		return stats.Figure{}, err
	}
	return stats.Figure{
		ID:      "fig3",
		Title:   "Drop-in NVM vs NVM with VWB (no code transformations)",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Drop-in NVM D-cache", Values: drop},
			{Label: "NVM D-cache with VWB", Values: vwb},
		},
	}.WithAverage(), nil
}

// Fig4 splits the VWB proposal's penalty into read-latency and
// write-latency contributions via latency decomposition: the proposal is
// re-simulated with only the read latency elevated (write clamped to the
// SRAM cycle) and with only the write latency elevated; each delta over
// the elevated-both run attributes penalty to the other latency. Paper:
// "the read contribution far exceeds that of its write counterpart",
// with the write share growing slightly on the more complex kernels.
func (s *Suite) Fig4() (stats.Figure, error) {
	readOnly := sim.ProposalVWB() // NVM read, SRAM-speed write
	readOnly.DL1WriteLat = 1
	writeOnly := sim.ProposalVWB() // SRAM-speed read, NVM write
	writeOnly.DL1ReadLat = 1
	if err := s.Prefetch(s.Benches, sim.ProposalVWB(), readOnly, writeOnly); err != nil {
		return stats.Figure{}, err
	}
	reads := make([]float64, len(s.Benches))
	writes := make([]float64, len(s.Benches))
	for i, b := range s.Benches {
		full, err := s.Cycles(b, sim.ProposalVWB())
		if err != nil {
			return stats.Figure{}, err
		}
		ro, err := s.Cycles(b, readOnly)
		if err != nil {
			return stats.Figure{}, err
		}
		wo, err := s.Cycles(b, writeOnly)
		if err != nil {
			return stats.Figure{}, err
		}
		// full - wo: time attributable to the slow read;
		// full - ro: time attributable to the slow write.
		sh := stats.Shares([]float64{float64(full - wo), float64(full - ro)})
		reads[i], writes[i] = sh[0], sh[1]
	}
	return stats.Figure{
		ID:      "fig4",
		Title:   "Read vs write access latency contribution to the NVM+VWB penalty",
		Metric:  "Relative Penalty Contribution (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Read penalty contribution", Values: reads},
			{Label: "Write penalty contribution", Values: writes},
		},
	}.WithAverage(), nil
}

// Fig5 shows the modified organization with and without the §V code
// transformations. Each variant is compared against the SRAM baseline
// compiled the same way, so the "with optimization" bars isolate the
// NVM-vs-SRAM gap at equal code quality (consistent with Fig. 9's
// baseline-gain comparison).
func (s *Suite) Fig5() (stats.Figure, error) {
	noopt, err := s.penaltySeries(sim.BaselineSRAM(), sim.DropInSTT())
	if err != nil {
		return stats.Figure{}, err
	}
	vwbNoOpt, err := s.penaltySeries(sim.BaselineSRAM(), sim.ProposalVWB())
	if err != nil {
		return stats.Figure{}, err
	}
	vwbOpt, err := s.penaltySeries(
		withOpts(sim.BaselineSRAM(), allOpts()),
		withOpts(sim.ProposalVWB(), allOpts()))
	if err != nil {
		return stats.Figure{}, err
	}
	return stats.Figure{
		ID:      "fig5",
		Title:   "VWB organization with and without code transformations",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Drop-in NVM", Values: noopt},
			{Label: "No Optimization", Values: vwbNoOpt},
			{Label: "With Optimization", Values: vwbOpt},
		},
		Notes: []string{
			"our IR kernels give the unoptimized VWB much better locality than the paper's compiled binaries,",
			"so 'No Optimization' already sits near the paper's optimized endpoint; see EXPERIMENTS.md",
		},
	}.WithAverage(), nil
}

// Fig6 decomposes the transformations' contribution to cycle reduction
// on the proposal configuration (leave-one-out: how much slower the
// optimized proposal gets when one transformation is removed),
// normalized to shares. Paper: "pre-fetching and vectorization have the
// largest positive impacts".
func (s *Suite) Fig6() (stats.Figure, error) {
	prop := sim.ProposalVWB()
	full := allOpts()
	variants := []struct {
		label string
		opts  compile.Options
	}{
		{"Vectorization", compile.Options{Vectorize: false, Prefetch: true, Branchless: true, Align: true}},
		{"Pre-fetching", compile.Options{Vectorize: true, Prefetch: false, Branchless: true, Align: true}},
		{"Others", compile.Options{Vectorize: true, Prefetch: true, Branchless: false, Align: false}},
	}
	leaveOneOut := make([]sim.Config, 0, len(variants)+1)
	leaveOneOut = append(leaveOneOut, withOpts(prop, full))
	for _, v := range variants {
		leaveOneOut = append(leaveOneOut, withOpts(prop, v.opts))
	}
	if err := s.Prefetch(s.Benches, leaveOneOut...); err != nil {
		return stats.Figure{}, err
	}
	series := make([]stats.Series, len(variants))
	for vi := range variants {
		series[vi] = stats.Series{Label: variants[vi].label, Values: make([]float64, len(s.Benches))}
	}
	for bi, b := range s.Benches {
		fullCycles, err := s.Cycles(b, withOpts(prop, full))
		if err != nil {
			return stats.Figure{}, err
		}
		deltas := make([]float64, len(variants))
		total := 0.0
		for vi, v := range variants {
			c, err := s.Cycles(b, withOpts(prop, v.opts))
			if err != nil {
				return stats.Figure{}, err
			}
			deltas[vi] = float64(c - fullCycles) // cycles this pass saves
			if deltas[vi] > 0 {
				total += deltas[vi]
			}
		}
		// Kernels on which the transformations change nothing (e.g. a
		// pure column walk) report zero contributions rather than
		// normalized rounding noise.
		if total < 0.005*float64(fullCycles) {
			continue
		}
		sh := stats.Shares(deltas)
		for vi := range variants {
			series[vi].Values[bi] = sh[vi]
		}
	}
	return stats.Figure{
		ID:      "fig6",
		Title:   "Per-transformation contribution to the proposal's cycle reduction (leave-one-out shares)",
		Metric:  "Penalty reduction contribution (%)",
		Benches: s.benchNames(),
		Series:  series,
		Notes: []string{
			"'Others' = branch removal + alignment, per the paper's grouping",
		},
	}.WithAverage(), nil
}

// Fig7 sweeps the VWB size: 1, 2 and 4 Kbit (2, 4 and 8 line rows) on
// the optimized proposal. Paper: "larger size VWBs help in reducing the
// penalty more"; 2 Kbit is the chosen design point.
func (s *Suite) Fig7() (stats.Figure, error) {
	base := withOpts(sim.BaselineSRAM(), allOpts())
	sizes := []int{1024, 2048, 4096}
	labels := []string{"VWB = 1KBit", "VWB = 2KBit", "VWB = 4KBit"}
	series := make([]stats.Series, len(sizes))
	for i, bits := range sizes {
		cfg := withOpts(sim.ProposalVWB(), allOpts())
		cfg.BufferBits = bits
		pen, err := s.penaltySeries(base, cfg)
		if err != nil {
			return stats.Figure{}, err
		}
		series[i] = stats.Series{Label: labels[i], Values: pen}
	}
	return stats.Figure{
		ID:      "fig7",
		Title:   "Penalty of the optimized proposal for different VWB sizes",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series:  series,
	}.WithAverage(), nil
}

// Fig8 compares the proposal against the two prior write-mitigation
// structures repurposed for read-latency reduction: a fully associative
// L0 mini-cache and the Enhanced MSHR (both 2 Kbit like the VWB, but
// with the regular narrow interface). Paper: "our proposal offers almost
// twice the penalty reduction".
func (s *Suite) Fig8() (stats.Figure, error) {
	base := withOpts(sim.BaselineSRAM(), allOpts())
	mk := func(fe sim.FrontEndKind, name string) sim.Config {
		cfg := withOpts(sim.ProposalVWB(), allOpts())
		cfg.FrontEnd = fe
		cfg.Name = name
		return cfg
	}
	vwb, err := s.penaltySeries(base, mk(sim.FEVWB, "stt-vwb"))
	if err != nil {
		return stats.Figure{}, err
	}
	emshr, err := s.penaltySeries(base, mk(sim.FEEMSHR, "stt-emshr"))
	if err != nil {
		return stats.Figure{}, err
	}
	l0, err := s.penaltySeries(base, mk(sim.FEL0, "stt-l0"))
	if err != nil {
		return stats.Figure{}, err
	}
	return stats.Figure{
		ID:      "fig8",
		Title:   "Proposal vs EMSHR vs L0 cache (all 2 Kbit, optimized code)",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Our Proposal", Values: vwb},
			{Label: "EMSHR", Values: emshr},
			{Label: "L0-Cache", Values: l0},
		},
	}.WithAverage(), nil
}

// Fig9 measures the effect of the code transformations on each system in
// absolute terms: the performance gain of the optimized binary over the
// unoptimized one, for the SRAM baseline and for the NVM proposal.
// Paper: both gain; the optimized baseline ends up ~8% ahead of the
// optimized proposal.
func (s *Suite) Fig9() (stats.Figure, error) {
	if err := s.Prefetch(s.Benches,
		sim.BaselineSRAM(), withOpts(sim.BaselineSRAM(), allOpts()),
		sim.ProposalVWB(), withOpts(sim.ProposalVWB(), allOpts())); err != nil {
		return stats.Figure{}, err
	}
	baseGain := make([]float64, len(s.Benches))
	propGain := make([]float64, len(s.Benches))
	for i, b := range s.Benches {
		bn, err := s.Cycles(b, sim.BaselineSRAM())
		if err != nil {
			return stats.Figure{}, err
		}
		bo, err := s.Cycles(b, withOpts(sim.BaselineSRAM(), allOpts()))
		if err != nil {
			return stats.Figure{}, err
		}
		pn, err := s.Cycles(b, sim.ProposalVWB())
		if err != nil {
			return stats.Figure{}, err
		}
		po, err := s.Cycles(b, withOpts(sim.ProposalVWB(), allOpts()))
		if err != nil {
			return stats.Figure{}, err
		}
		baseGain[i] = stats.Gain(bn, bo)
		propGain[i] = stats.Gain(pn, po)
	}
	return stats.Figure{
		ID:      "fig9",
		Title:   "Performance gain from code transformations: SRAM baseline vs NVM proposal",
		Metric:  "Performance Gain (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Baseline performance gain", Values: baseGain},
			{Label: "NVM proposal performance gain", Values: propGain},
		},
	}.WithAverage(), nil
}
