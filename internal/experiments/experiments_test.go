package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sttdl1/internal/polybench"
	"sttdl1/internal/stats"
)

// fastSuite runs two small kernels so every figure exercises cheaply.
func fastSuite(t *testing.T) *Suite {
	t.Helper()
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default = 16
	atax.Default = 40
	return NewSuite([]polybench.Bench{gemm, atax})
}

func TestTableIMatchesPaper(t *testing.T) {
	tb, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"0.787ns", "3.37ns", "1.86ns", "28.35mW", "146F2", "42F2", "2way"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestCellLibraryTable(t *testing.T) {
	tb, err := CellLibrary()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"SRAM-6T", "STT-2T2MTJ", "PRAM", "ReRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("cell library missing %q", want)
		}
	}
}

func seriesByLabel(t *testing.T, f stats.Figure, label string) []float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s.Values
		}
	}
	t.Fatalf("series %q not found in %s", label, f.ID)
	return nil
}

func TestFig1DropInPenaltyPositive(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	vals := f.Series[0].Values
	if len(vals) != 3 { // 2 benches + AVERAGE
		t.Fatalf("values = %v", vals)
	}
	for i, v := range vals {
		if v < 5 {
			t.Errorf("drop-in penalty[%d] = %.1f%%, expected substantial", i, v)
		}
	}
}

func TestFig3VWBBeatsDropIn(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	drop := seriesByLabel(t, f, "Drop-in NVM D-cache")
	vwb := seriesByLabel(t, f, "NVM D-cache with VWB")
	for i := range drop {
		if vwb[i] >= drop[i] {
			t.Errorf("bench %s: VWB %.1f >= drop-in %.1f", f.Benches[i], vwb[i], drop[i])
		}
	}
}

func TestFig4ReadDominates(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	reads := seriesByLabel(t, f, "Read penalty contribution")
	writes := seriesByLabel(t, f, "Write penalty contribution")
	for i := range reads {
		if reads[i] < writes[i] {
			t.Errorf("bench %s: read %.1f < write %.1f — the paper's central claim fails",
				f.Benches[i], reads[i], writes[i])
		}
	}
}

func TestFig7MonotoneAverage(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	avgIdx := len(f.Benches) - 1
	k1 := seriesByLabel(t, f, "VWB = 1KBit")[avgIdx]
	k2 := seriesByLabel(t, f, "VWB = 2KBit")[avgIdx]
	k4 := seriesByLabel(t, f, "VWB = 4KBit")[avgIdx]
	if !(k1 > k2 && k2 >= k4-0.5) {
		t.Errorf("VWB size sweep not monotone: %.1f / %.1f / %.1f", k1, k2, k4)
	}
}

func TestFig8ProposalWins(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	avgIdx := len(f.Benches) - 1
	ours := seriesByLabel(t, f, "Our Proposal")[avgIdx]
	emshr := seriesByLabel(t, f, "EMSHR")[avgIdx]
	l0 := seriesByLabel(t, f, "L0-Cache")[avgIdx]
	if ours >= emshr || ours >= l0 {
		t.Errorf("proposal (%.1f) must beat EMSHR (%.1f) and L0 (%.1f) on average", ours, emshr, l0)
	}
}

func TestFig9BothGain(t *testing.T) {
	s := fastSuite(t)
	f, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	base := seriesByLabel(t, f, "Baseline performance gain")
	prop := seriesByLabel(t, f, "NVM proposal performance gain")
	for i := range base {
		if base[i] <= 0 || prop[i] <= 0 {
			t.Errorf("bench %s: gains %.1f / %.1f must both be positive", f.Benches[i], base[i], prop[i])
		}
	}
}

func TestFig5And6Run(t *testing.T) {
	s := fastSuite(t)
	if _, err := s.Fig5(); err != nil {
		t.Fatal(err)
	}
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Shares stay within [0, 100].
	for _, ser := range f6.Series {
		for i, v := range ser.Values {
			if v < 0 || v > 100.0001 {
				t.Errorf("%s share[%d] = %v out of range", ser.Label, i, v)
			}
		}
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := fastSuite(t)
	var c stats.Counters
	s.SetProgress(c.Observe)
	if _, err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	afterFig1 := c.Runs()
	if afterFig1 != s.SimsRun() {
		t.Errorf("progress saw %d runs, pool reports %d", afterFig1, s.SimsRun())
	}
	// Fig3 reuses both Fig1 configurations and adds only the VWB runs.
	if _, err := s.Fig3(); err != nil {
		t.Fatal(err)
	}
	if c.Runs()-afterFig1 != len(s.Benches) {
		t.Errorf("fig3 ran %d new sims, want %d (memoization broken)", c.Runs()-afterFig1, len(s.Benches))
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	ids := IDs()
	if len(ids) < 14 {
		t.Fatalf("registry too small: %v", ids)
	}
	for _, id := range []string{"table1", "fig1", "fig9", "ablation-banks"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing runner %q", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id must not resolve")
	}
	// Paper artifacts come first in IDs().
	if ids[0] != "fig1" && ids[0] != "table1" {
		t.Errorf("ids[0] = %q", ids[0])
	}

	// Run the two table runners through the registry plumbing.
	s := fastSuite(t)
	for _, id := range []string{"table1", "cells"} {
		r, _ := ByID(id)
		res, err := r.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.String() == "" {
			t.Errorf("%s rendered empty", id)
		}
	}
	_ = bytes.Buffer{}
}

func TestAblationsRun(t *testing.T) {
	s := fastSuite(t)
	for _, run := range []func() (stats.Figure, error){
		s.AblationVWBPolicy,
		s.AblationWriteAsym,
	} {
		f, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Series) == 0 {
			t.Error("ablation produced no series")
		}
	}
}

func TestAblationReadLatMonotone(t *testing.T) {
	s := fastSuite(t)
	f, err := s.AblationReadLat()
	if err != nil {
		t.Fatal(err)
	}
	// Drop-in penalty grows with the read latency.
	avgIdx := len(f.Benches) - 1
	prev := -1.0
	for _, ser := range f.Series {
		if !strings.HasPrefix(ser.Label, "drop-in") {
			continue
		}
		v := ser.Values[avgIdx]
		if v < prev {
			t.Errorf("drop-in penalty not monotone in read latency: %v then %v", prev, v)
		}
		prev = v
	}
}

func TestEnergyTableShape(t *testing.T) {
	s := fastSuite(t)
	tb, err := s.EnergyTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The paper's energy claim: both NVM configurations beat SRAM, whose
	// column is leakage-dominated.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	sramTotal := parse(tb.Rows[0][4])
	dropTotal := parse(tb.Rows[1][4])
	vwbTotal := parse(tb.Rows[2][4])
	if dropTotal >= sramTotal || vwbTotal >= sramTotal {
		t.Errorf("NVM energy (%.2f, %.2f) must beat SRAM (%.2f)", dropTotal, vwbTotal, sramTotal)
	}
	sramLeak := parse(tb.Rows[0][1])
	sramDyn := parse(tb.Rows[0][2])
	if sramLeak < sramDyn {
		t.Error("the SRAM column must be leakage-dominated")
	}
}

func TestLifetimeTableRuns(t *testing.T) {
	s := fastSuite(t)
	tb, err := s.LifetimeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(s.Benches) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationICacheShape(t *testing.T) {
	s := fastSuite(t)
	f, err := s.AblationICache()
	if err != nil {
		t.Fatal(err)
	}
	avgIdx := len(f.Benches) - 1
	drop := seriesByLabel(t, f, "STT-MRAM IL1 drop-in")[avgIdx]
	emshr := seriesByLabel(t, f, "STT-MRAM IL1 + EMSHR")[avgIdx]
	if drop < 20 {
		t.Errorf("NVM IL1 drop-in average %.1f%%: instruction fetch must be crippled", drop)
	}
	if emshr > drop/4 {
		t.Errorf("EMSHR recovers too little: %.1f%% vs drop-in %.1f%%", emshr, drop)
	}
}

// fmtSscan avoids importing fmt twice under its own name in tests.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestRunAllEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	s := fastSuite(t)
	var buf bytes.Buffer
	if err := RunAll(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, r := range Registry() {
		if !strings.Contains(out, strings.ToUpper(r.ID)) {
			t.Errorf("RunAll output missing %s", r.ID)
		}
	}
	// Everything is renderable as CSV too.
	for _, r := range Registry() {
		res, err := r.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.CSV() == "" {
			t.Errorf("%s: empty CSV", r.ID)
		}
	}
}

func TestAblationInterchangeImproves(t *testing.T) {
	mvt, _ := polybench.ByName("mvt")
	mvt.Default = 48
	s := NewSuite([]polybench.Bench{mvt})
	f, err := s.AblationInterchange()
	if err != nil {
		t.Fatal(err)
	}
	paper := seriesByLabel(t, f, "Paper transformations")[0]
	ext := seriesByLabel(t, f, "+ loop interchange")[0]
	if ext >= paper {
		t.Errorf("interchange must reduce mvt's penalty: %.1f -> %.1f", paper, ext)
	}
}
