// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the extension ablations listed in DESIGN.md §6. Each
// runner returns structured data (stats.Figure / stats.Table) that the
// sttexplore CLI and the benchmark harness render.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sttdl1/internal/compile"
	"sttdl1/internal/energy"
	"sttdl1/internal/polybench"
	"sttdl1/internal/replay"
	"sttdl1/internal/runner"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/store"
)

// Suite runs kernels on configurations through a shared parallel run
// engine (internal/runner): several figures need the same underlying
// simulations (e.g. the unoptimized SRAM baseline appears in Figs. 1, 3,
// 5 and 9), so results are memoized by (bench, config) key and
// concurrent requests for one key share a single execution. All
// suite methods are safe for concurrent use; figure output is
// deterministic at any worker count because results are consumed by key
// in figure order, never in completion order.
type Suite struct {
	Benches []polybench.Bench
	pool    *runner.Pool[string, *sim.RunResult]
	// ctx is the base context runs derive from (Background by default;
	// see WithContext).
	ctx context.Context
	// check runs every simulation under the internal/check timing
	// oracle (sim.Config.Check); a contract violation fails the run.
	check bool
	// replay executes simulations by trace replay (capture the
	// functional stream once per kernel variant, re-run only the timing
	// model per design point; DESIGN.md §7.4), falling back to live
	// execution if the replay path fails. On by default; results are
	// byte-identical either way, so the memo key does not include it.
	replay bool
	// traces is the shared compile+capture cache behind replay mode.
	traces *replay.Cache
	// store is the optional persistent evaluation cache (DESIGN.md
	// §7.7): a second memo tier behind the in-memory pool, addressed by
	// the content of the evaluation (trace bytes + canonical config +
	// model params + schema version). A warm hit skips the entire
	// timing model; results are byte-identical either way, so the memo
	// key does not include it.
	store *store.Store
	// gang is the gang-replay width for batch prefetches (DESIGN.md
	// §7.9): 0 picks a width per benchmark, 1 disables ganging, larger
	// values apply as given. Gang replay is cycle-identical to serial
	// replay, so the memo key does not include it.
	gang int
}

// NewSuite builds a suite over the given benchmarks (nil = all) with the
// default worker count (GOMAXPROCS).
func NewSuite(benches []polybench.Bench) *Suite { return NewSuiteJobs(benches, 0) }

// NewSuiteJobs builds a suite running at most jobs simulations
// concurrently; jobs <= 0 means GOMAXPROCS. jobs == 1 degrades to the
// fully serial engine and, by the determinism contract (DESIGN.md §7),
// produces bit-identical figures to any other worker count.
func NewSuiteJobs(benches []polybench.Bench, jobs int) *Suite {
	if benches == nil {
		benches = polybench.All()
	}
	return &Suite{
		Benches: benches,
		pool:    runner.New[string, *sim.RunResult](jobs),
		ctx:     context.Background(),
		replay:  true,
		traces:  replay.NewCache(),
	}
}

// Jobs returns the suite's concurrency bound.
func (s *Suite) Jobs() int { return s.pool.Workers() }

// SetProgress installs a per-completed-simulation observer (see
// stats.RunEvent). Install it before running experiments.
func (s *Suite) SetProgress(fn stats.ProgressFunc) { s.pool.SetProgress(fn) }

// SetCheck turns the timing oracle on or off for every simulation the
// suite runs from now on (the sttexplore -check flag). Checked and
// unchecked runs are memoized separately; install it before running
// experiments.
func (s *Suite) SetCheck(on bool) { s.check = on }

// SetReplay turns trace replay on or off (the sttexplore -replay flag;
// on by default). Replay and live execution produce byte-identical
// results — replay is purely a performance mode — so flipping it never
// changes figures, and memoized results are shared across modes. Install
// it before running experiments.
func (s *Suite) SetReplay(on bool) { s.replay = on }

// SetGang sets the gang-replay width — how many configurations one
// trace walk carries in batch prefetches (the sttexplore -gang flag).
// 0 (the default) picks a width per benchmark, 1 disables ganging, and
// widths above 1 apply as given. Ganging requires replay mode; it is
// purely a performance mode (every gang member's result is
// cycle-identical to its own serial replay), so flipping it never
// changes figures and memoized results are shared across modes.
func (s *Suite) SetGang(n int) { s.gang = n }

// gangWidthFor resolves the effective gang width for one benchmark.
func (s *Suite) gangWidthFor(b polybench.Bench) int {
	if s.gang > 1 {
		return s.gang
	}
	// Auto width: wide batches amortize the trace walk, but every member
	// carries a private DL1+L2 model whose hot lines compete in the host
	// cache, so large problem sizes (bigger live sets per member) gang
	// narrower.
	if b.Default > 48 {
		return 4
	}
	return 8
}

// SetStore installs a persistent evaluation store as a second memo tier
// behind the in-memory pool (the sttexplore -store flag; off by
// default). Results are byte-identical with or without it — a stored
// record holds the exact counter set a fresh simulation produces — so
// figures never change; only wall-clock does. Install it before running
// experiments.
func (s *Suite) SetStore(st *store.Store) { s.store = st }

// StoreStats returns the persistent store's counters (zero Stats when
// no store is installed).
func (s *Suite) StoreStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// storeKey derives the content address of (b, cfg) under the persistent
// store: the kernel variant's trace digest (memoized compile + capture,
// shared with replay), the canonical configuration key, and the energy
// model parameters. ok is false when the store is off or the
// configuration has no valid model/trace — those runs simply skip the
// store tier.
func (s *Suite) storeKey(ctx context.Context, b polybench.Bench, cfg sim.Config) (store.Key, bool) {
	if s.store == nil {
		return store.Key{}, false
	}
	modelKey, err := energy.ModelKey(cfg)
	if err != nil {
		return store.Key{}, false
	}
	digest, err := s.traces.Digest(ctx, b, sim.CompileOptions(cfg))
	if err != nil {
		return store.Key{}, false
	}
	benchKey := b.Name + "@" + strconv.Itoa(b.Default)
	return store.KeyFor(benchKey, digest, sim.CanonicalKey(cfg), modelKey), true
}

// Stored reports whether a valid persistent-store entry exists for
// (b, cfg) — without simulating, though it may trigger the variant's
// (memoized) capture to derive the key. The guided search uses it to
// warm-start: an already-stored point routes through the memoized
// store-hitting path instead of abortable replay.
func (s *Suite) Stored(b polybench.Bench, cfg sim.Config) bool {
	cfg = s.applyCheck(cfg)
	key, ok := s.storeKey(s.ctx, b, cfg)
	return ok && s.store.Contains(key)
}

// execute performs one simulation: the persistent store tier first
// (when installed), then trace replay when enabled, with live execution
// as the fallback on any replay-path error that is not the caller's own
// cancellation (a functional fault reproduces identically either way,
// so the fallback's error message is the canonical one). The returned
// bool reports a store hit — the timing model never ran.
func (s *Suite) execute(ctx context.Context, b polybench.Bench, cfg sim.Config) (*sim.RunResult, bool, error) {
	key, useStore := s.storeKey(ctx, b, cfg)
	if useStore {
		if rec, ok := s.store.Get(key); ok {
			// A fresh run reports the defaults-resolved requested config
			// (sim.New applies them); mirror that so a hit is
			// indistinguishable downstream. The record is freshly decoded,
			// never shared, so the rewrite is safe.
			rec.Result.Config = sim.ApplyDefaults(cfg)
			return rec.Result, true, nil
		}
	}
	r, err := s.executeSim(ctx, b, cfg)
	if err == nil && useStore {
		// Best-effort publish: a failed write (full disk, permissions)
		// costs future warmth, never correctness — and failures are never
		// stored at all.
		_ = s.store.Put(key, store.NewRecord(b.Name, b.Default, r))
	}
	return r, false, err
}

// executeSim is the simulation behind the store tier: replay-first with
// live fallback.
func (s *Suite) executeSim(ctx context.Context, b polybench.Bench, cfg sim.Config) (*sim.RunResult, error) {
	if s.replay {
		r, err := replay.Run(ctx, s.traces, b, cfg)
		if err == nil || ctx.Err() != nil {
			return r, err
		}
	}
	return sim.Run(b.Kernel(), cfg)
}

// applyCheck folds the suite's checking mode into a run configuration.
func (s *Suite) applyCheck(cfg sim.Config) sim.Config {
	if s.check {
		cfg.Check = true
	}
	return cfg
}

// SimsRun returns how many simulations have actually executed (memoized
// and deduplicated requests not counted).
func (s *Suite) SimsRun() int { return s.pool.Done() }

// WithContext returns a shallow copy of the suite whose runs derive from
// ctx — the pool, memo cache and benchmark set stay shared. Cancel ctx
// to abandon queued work submitted through the copy.
func (s *Suite) WithContext(ctx context.Context) *Suite {
	c := *s
	c.ctx = ctx
	return &c
}

// optKey folds compile options into a cache key. Keys are built with
// strconv appends rather than fmt — runKey sits on every memoized run
// lookup, and Sprintf's interface boxing dominated the engine's
// allocation count.
func optKey(o compile.Options) string {
	var b strings.Builder
	b.Grow(32)
	appendOptKey(&b, o)
	return b.String()
}

func appendOptKey(b *strings.Builder, o compile.Options) {
	b.WriteByte('v')
	b.WriteString(strconv.FormatBool(o.Vectorize))
	b.WriteString("_p")
	b.WriteString(strconv.FormatBool(o.Prefetch))
	b.WriteString("_b")
	b.WriteString(strconv.FormatBool(o.Branchless))
	b.WriteString("_a")
	b.WriteString(strconv.FormatBool(o.Align))
	b.WriteString("_i")
	b.WriteString(strconv.FormatBool(o.Interchange))
	b.WriteString("_s")
	b.WriteString(strconv.Itoa(o.PrefetchStreams))
}

func appendCfgKey(b *strings.Builder, c sim.Config) {
	b.WriteString(c.DL1Cell.String())
	b.WriteByte('_')
	b.WriteString(c.FrontEnd.String())
	b.WriteString("_buf")
	b.WriteString(strconv.Itoa(c.BufferBits))
	b.WriteString("_bank")
	b.WriteString(strconv.Itoa(c.DL1Banks))
	b.WriteString("_rl")
	b.WriteString(strconv.FormatInt(c.DL1ReadLat, 10))
	b.WriteString("_wl")
	b.WriteString(strconv.FormatInt(c.DL1WriteLat, 10))
	b.WriteString("_pol")
	b.WriteString(c.VWBPolicy.String())
	b.WriteString("_tc")
	b.WriteString(strconv.FormatInt(c.VWBTransfer, 10))
	b.WriteString("_bp")
	b.WriteString(strconv.Itoa(c.BypassPredEntries))
	b.WriteString("_sw")
	b.WriteString(strconv.Itoa(c.SRAMWays))
	b.WriteString("_sd")
	b.WriteString(strconv.FormatInt(c.ShutdownInterval, 10))
	b.WriteString("_il1")
	b.WriteString(c.IL1Cell.String())
	b.WriteByte('_')
	b.WriteString(c.IL1FrontEnd.String())
	b.WriteString("_cold")
	b.WriteString(strconv.FormatBool(c.ColdStart))
	b.WriteString("_sb")
	b.WriteString(strconv.Itoa(c.CPU.StoreBufDepth))
	b.WriteString("_chk")
	b.WriteString(strconv.FormatBool(c.Check))
	b.WriteByte('_')
	appendOptKey(b, c.Compile)
}

func cfgKey(c sim.Config) string {
	var b strings.Builder
	// Sized above the longest key the axes render (~170 bytes with real
	// cell names): an undersized hint costs a second allocation per key,
	// and the memo hit path rebuilds this key on every lookup.
	b.Grow(224)
	appendCfgKey(&b, c)
	return b.String()
}

func runKey(b polybench.Bench, cfg sim.Config) string {
	var sb strings.Builder
	sb.Grow(224 + len(b.Name))
	sb.WriteString(b.Name)
	// The problem size must be part of the key: tests rebind
	// Bench.Default, and a suite mixing sizes of one bench would
	// otherwise serve the wrong memoized result.
	sb.WriteByte('@')
	sb.WriteString(strconv.Itoa(b.Default))
	sb.WriteByte('|')
	appendCfgKey(&sb, cfg)
	return sb.String()
}

func runLabel(b polybench.Bench, cfg sim.Config) string {
	return fmt.Sprintf("%s on %s/%s", b.Name, cfg.Name, optKey(cfg.Compile))
}

// Run executes bench b under cfg (memoized, deduplicated).
func (s *Suite) Run(b polybench.Bench, cfg sim.Config) (*sim.RunResult, error) {
	return s.RunContext(s.ctx, b, cfg)
}

// RunContext is Run under an explicit context: cancellation abandons the
// request (and the execution, if this caller is its leader and it has
// not started yet).
func (s *Suite) RunContext(ctx context.Context, b polybench.Bench, cfg sim.Config) (*sim.RunResult, error) {
	cfg = s.applyCheck(cfg)
	key := runKey(b, cfg)
	r, err := s.pool.DoLabeled(ctx, key, runLabel(b, cfg),
		func(ctx context.Context) (*sim.RunResult, error) {
			r, cached, err := s.execute(ctx, b, cfg)
			if cached {
				s.pool.NoteCached(key)
			}
			return r, err
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, cfg.Name, err)
	}
	return r, nil
}

// ReplayCtl executes bench b under cfg by partial timing replay
// (truncation and/or early abort; DESIGN.md §7.5). Partial results
// describe a prefix of the run, so they bypass the suite's memo entirely
// — only the underlying compile+capture is shared through the trace
// cache. The returned bool reports whether the measured pass aborted.
func (s *Suite) ReplayCtl(b polybench.Bench, cfg sim.Config, ctl *sim.ReplayCtl) (*sim.RunResult, bool, error) {
	cfg = s.applyCheck(cfg)
	r, aborted, err := replay.RunCtl(s.ctx, s.traces, b, cfg, ctl)
	if err != nil {
		return nil, false, fmt.Errorf("experiments: %s on %s: %w", b.Name, cfg.Name, err)
	}
	return r, aborted, nil
}

// Cycles is Run reduced to the cycle count.
func (s *Suite) Cycles(b polybench.Bench, cfg sim.Config) (int64, error) {
	r, err := s.Run(b, cfg)
	if err != nil {
		return 0, err
	}
	return r.CPU.Cycles, nil
}

// Spec names one (benchmark, configuration) simulation of a batch.
type Spec struct {
	Bench  polybench.Bench
	Config sim.Config
}

// Prefetch fans the benches × cfgs cross product out over the worker
// pool and blocks until every simulation is memoized (or the first error
// cancels the remaining queued work). Figures call it before consuming
// results serially, which is where the parallel speedup comes from.
func (s *Suite) Prefetch(benches []polybench.Bench, cfgs ...sim.Config) error {
	specs := make([]Spec, 0, len(benches)*len(cfgs))
	for _, cfg := range cfgs {
		for _, b := range benches {
			specs = append(specs, Spec{Bench: b, Config: cfg})
		}
	}
	return s.PrefetchSpecs(specs)
}

// PrefetchSpecs fans an explicit batch out over the worker pool. The
// batch is submitted in sorted key order so the engine's schedule — and
// therefore its progress stream — is reproducible run to run. In replay
// mode with ganging enabled, specs sharing one trace (same benchmark,
// problem size and compile options) are batched into gang replays
// (DESIGN.md §7.9): each batch occupies a single worker slot and walks
// the trace once for all of its configurations, with members beyond the
// batch leader published straight into the memo.
func (s *Suite) PrefetchSpecs(specs []Spec) error {
	if s.replay && s.gang != 1 {
		return s.prefetchGanged(specs)
	}
	tasks := make([]runner.Task[string, *sim.RunResult], len(specs))
	for i, sp := range specs {
		sp := sp
		sp.Config = s.applyCheck(sp.Config)
		key := runKey(sp.Bench, sp.Config)
		tasks[i] = runner.Task[string, *sim.RunResult]{
			Key:   key,
			Label: runLabel(sp.Bench, sp.Config),
			Run: func(ctx context.Context) (*sim.RunResult, error) {
				r, cached, err := s.execute(ctx, sp.Bench, sp.Config)
				if cached {
					s.pool.NoteCached(key)
				}
				return r, err
			},
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Key < tasks[j].Key })
	if _, err := s.pool.Run(s.ctx, tasks); err != nil {
		return fmt.Errorf("experiments: prefetch: %w", err)
	}
	return nil
}

// gangMember is one configuration of a gang batch with its memo
// identity.
type gangMember struct {
	key, label string
	cfg        sim.Config
}

// prefetchGanged is the gang-replay batch scheduler behind
// PrefetchSpecs. Specs are deduplicated by run key, already-memoized
// (or in-flight) keys are dropped, the rest are grouped by the trace
// they replay and chunked into batches of the benchmark's gang width.
// Each batch runs as one pool task keyed by its first member; the other
// members' results are published into the memo as the batch completes,
// so the engine's accounting still sees exactly one completion per
// unique simulation. Singleton batches take the ordinary serial path.
func (s *Suite) prefetchGanged(specs []Spec) error {
	seen := make(map[string]bool, len(specs))
	type group struct {
		bench   polybench.Bench
		members []gangMember
	}
	groups := make(map[string]*group)
	var order []string
	for _, sp := range specs {
		cfg := s.applyCheck(sp.Config)
		key := runKey(sp.Bench, cfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, done, inflight := s.pool.Peek(key); done || inflight {
			continue
		}
		gk := sp.Bench.Name + "@" + strconv.Itoa(sp.Bench.Default) + "|" + optKey(sim.CompileOptions(cfg))
		g := groups[gk]
		if g == nil {
			g = &group{bench: sp.Bench}
			groups[gk] = g
			order = append(order, gk)
		}
		g.members = append(g.members, gangMember{key: key, label: runLabel(sp.Bench, cfg), cfg: cfg})
	}
	sort.Strings(order)

	var tasks []runner.Task[string, *sim.RunResult]
	for _, gk := range order {
		g := groups[gk]
		// Members in sorted key order: batch composition is then a pure
		// function of the spec set, never of map iteration or submission
		// order.
		sort.Slice(g.members, func(i, j int) bool { return g.members[i].key < g.members[j].key })
		width := s.gangWidthFor(g.bench)
		for lo := 0; lo < len(g.members); lo += width {
			hi := lo + width
			if hi > len(g.members) {
				hi = len(g.members)
			}
			batch := g.members[lo:hi]
			bench := g.bench
			leader := batch[0]
			if len(batch) == 1 {
				tasks = append(tasks, runner.Task[string, *sim.RunResult]{
					Key:   leader.key,
					Label: leader.label,
					Run: func(ctx context.Context) (*sim.RunResult, error) {
						r, cached, err := s.execute(ctx, bench, leader.cfg)
						if cached {
							s.pool.NoteCached(leader.key)
						}
						return r, err
					},
				})
				continue
			}
			tasks = append(tasks, runner.Task[string, *sim.RunResult]{
				Key:   leader.key,
				Label: leader.label,
				Run: func(ctx context.Context) (*sim.RunResult, error) {
					return s.executeGang(ctx, bench, batch)
				},
			})
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Key < tasks[j].Key })
	if _, err := s.pool.Run(s.ctx, tasks); err != nil {
		return fmt.Errorf("experiments: prefetch: %w", err)
	}
	return nil
}

// executeGang runs one gang batch under the leader's worker slot: the
// persistent store tier first per member, one gang replay for the
// misses, then a serial per-member fallback if the gang path fails
// (mirroring executeSim's replay-then-live fallback). Members beyond
// the leader are published into the memo; the leader's result is
// returned as the task's value.
func (s *Suite) executeGang(ctx context.Context, b polybench.Bench, members []gangMember) (*sim.RunResult, error) {
	results := make([]*sim.RunResult, len(members))
	cached := make([]bool, len(members))
	var miss []int
	for i, m := range members {
		if key, ok := s.storeKey(ctx, b, m.cfg); ok {
			if rec, hit := s.store.Get(key); hit {
				rec.Result.Config = sim.ApplyDefaults(m.cfg)
				results[i] = rec.Result
				cached[i] = true
				continue
			}
		}
		miss = append(miss, i)
	}
	if len(miss) > 0 {
		cfgs := make([]sim.Config, len(miss))
		for j, i := range miss {
			cfgs[j] = members[i].cfg
		}
		rs, err := replay.RunGang(ctx, s.traces, b, cfgs)
		switch {
		case err == nil:
			for j, i := range miss {
				results[i] = rs[j]
			}
			if s.store != nil {
				for _, i := range miss {
					if key, ok := s.storeKey(ctx, b, members[i].cfg); ok {
						_ = s.store.Put(key, store.NewRecord(b.Name, b.Default, results[i]))
					}
				}
			}
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			// Gang path failed (e.g. a functional fault, an instruction
			// budget overrun, an assembly error): fall back to the serial
			// per-member path, which reproduces the canonical error for the
			// failing member while the healthy members still complete.
			for _, i := range miss {
				r, c, err := s.execute(ctx, b, members[i].cfg)
				if err != nil {
					s.publishGang(members, results, cached, i)
					return nil, err
				}
				results[i], cached[i] = r, c
			}
		}
	}
	s.publishGang(members, results, cached, -1)
	if cached[0] {
		s.pool.NoteCached(members[0].key)
	}
	return results[0], nil
}

// publishGang pushes every non-leader member with a result into the
// memo (skip < 0 publishes all; otherwise member skip and later ones
// without results are omitted — the fallback stopped there).
func (s *Suite) publishGang(members []gangMember, results []*sim.RunResult, cached []bool, skip int) {
	for i := 1; i < len(members); i++ {
		if i == skip || results[i] == nil {
			continue
		}
		s.pool.Publish(members[i].key, members[i].label, results[i], cached[i])
	}
}

// penaltySeries computes per-bench penalties of cfg against base. The
// full matrix is prefetched in parallel first; the serial consumption
// loop below then reads memoized results in bench order.
func (s *Suite) penaltySeries(base, cfg sim.Config) ([]float64, error) {
	if err := s.Prefetch(s.Benches, base, cfg); err != nil {
		return nil, err
	}
	out := make([]float64, len(s.Benches))
	for i, b := range s.Benches {
		bc, err := s.Cycles(b, base)
		if err != nil {
			return nil, err
		}
		vc, err := s.Cycles(b, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = stats.Penalty(bc, vc)
	}
	return out, nil
}

func (s *Suite) benchNames() []string {
	out := make([]string, len(s.Benches))
	for i, b := range s.Benches {
		out[i] = b.Name
	}
	return out
}

// withOpts returns cfg with the given compile options and an adjusted
// name.
func withOpts(cfg sim.Config, opts compile.Options) sim.Config {
	cfg.Compile = opts
	return cfg
}

// allOpts is the paper's full transformation set.
func allOpts() compile.Options { return compile.AllOptimizations() }
