// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the extension ablations listed in DESIGN.md §6. Each
// runner returns structured data (stats.Figure / stats.Table) that the
// sttexplore CLI and the benchmark harness render.
package experiments

import (
	"fmt"

	"sttdl1/internal/compile"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

// Suite runs kernels on configurations with memoization, since several
// figures share the same underlying simulations (e.g. the unoptimized
// SRAM baseline appears in Figs. 1, 3, 5 and 9).
type Suite struct {
	Benches []polybench.Bench
	cache   map[string]*sim.RunResult
	kernels map[string]*compilePair
	// Verbose, when set, prints one line per completed simulation.
	Verbose func(format string, args ...any)
}

type compilePair struct{ bench polybench.Bench }

// NewSuite builds a suite over the given benchmarks (nil = all).
func NewSuite(benches []polybench.Bench) *Suite {
	if benches == nil {
		benches = polybench.All()
	}
	return &Suite{
		Benches: benches,
		cache:   make(map[string]*sim.RunResult),
		kernels: make(map[string]*compilePair),
	}
}

// optKey folds compile options into a cache key.
func optKey(o compile.Options) string {
	return fmt.Sprintf("v%t_p%t_b%t_a%t_i%t_s%d", o.Vectorize, o.Prefetch, o.Branchless, o.Align, o.Interchange, o.PrefetchStreams)
}

func cfgKey(c sim.Config) string {
	return fmt.Sprintf("%v_%v_buf%d_bank%d_rl%d_wl%d_pol%v_tc%d_il1%v_%v_cold%t_sb%d_%s",
		c.DL1Cell, c.FrontEnd, c.BufferBits, c.DL1Banks, c.DL1ReadLat, c.DL1WriteLat,
		c.VWBPolicy, c.VWBTransfer, c.IL1Cell, c.IL1FrontEnd, c.ColdStart,
		c.CPU.StoreBufDepth, optKey(c.Compile))
}

// Run executes bench b under cfg (memoized).
func (s *Suite) Run(b polybench.Bench, cfg sim.Config) (*sim.RunResult, error) {
	key := b.Name + "|" + cfgKey(cfg)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	r, err := sim.Run(b.Kernel(), cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, cfg.Name, err)
	}
	if s.Verbose != nil {
		s.Verbose("  ran %-10s on %-24s %12d cycles", b.Name, cfg.Name+"/"+optKey(cfg.Compile), r.CPU.Cycles)
	}
	s.cache[key] = r
	return r, nil
}

// Cycles is Run reduced to the cycle count.
func (s *Suite) Cycles(b polybench.Bench, cfg sim.Config) (int64, error) {
	r, err := s.Run(b, cfg)
	if err != nil {
		return 0, err
	}
	return r.CPU.Cycles, nil
}

// penaltySeries computes per-bench penalties of cfg against base.
func (s *Suite) penaltySeries(base, cfg sim.Config) ([]float64, error) {
	out := make([]float64, len(s.Benches))
	for i, b := range s.Benches {
		bc, err := s.Cycles(b, base)
		if err != nil {
			return nil, err
		}
		vc, err := s.Cycles(b, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = stats.Penalty(bc, vc)
	}
	return out, nil
}

func (s *Suite) benchNames() []string {
	out := make([]string, len(s.Benches))
	for i, b := range s.Benches {
		out[i] = b.Name
	}
	return out
}

// withOpts returns cfg with the given compile options and an adjusted
// name.
func withOpts(cfg sim.Config, opts compile.Options) sim.Config {
	cfg.Compile = opts
	return cfg
}

// allOpts is the paper's full transformation set.
func allOpts() compile.Options { return compile.AllOptimizations() }
