package experiments

import (
	"fmt"

	"sttdl1/internal/stats"
	"sttdl1/internal/tech"
)

// TableI regenerates the paper's Table I — the 64 KB, 2-way, 32 nm HP
// SRAM vs STT-MRAM DL1 comparison — from the analytical technology
// model, extended with the model's derived figures (area in mm², access
// energy, endurance horizon).
func TableI() (stats.Table, error) {
	sram, err := tech.Compute(tech.DefaultArray(tech.SRAM6T))
	if err != nil {
		return stats.Table{}, err
	}
	stt, err := tech.Compute(tech.DefaultArray(tech.STT2T2MTJ))
	if err != nil {
		return stats.Table{}, err
	}

	f := func(format string, v any) string { return fmt.Sprintf(format, v) }
	t := stats.Table{
		ID:      "table1",
		Title:   "64KB SRAM L1 D-cache vs 64KB STT-MRAM L1 D-cache (32nm HP)",
		Columns: []string{"Parameters", "SRAM", "STT-MRAM"},
		Rows: [][]string{
			{"Read Latency", f("%.3fns", sram.ReadNs), f("%.2fns", stt.ReadNs)},
			{"Write Latency", f("%.3fns", sram.WriteNs), f("%.2fns", stt.WriteNs)},
			{"Leakage", f("%.2fmW", sram.LeakageMW), f("%.2fmW", stt.LeakageMW)},
			{"Area (cell)", f("%.0fF2", sram.CellAreaF2), f("%.0fF2", stt.CellAreaF2)},
			{"Associativity", "2way", "2way"},
			{"Cache Line size", fmt.Sprintf("%d Bits", sram.Config.LineBits), fmt.Sprintf("%d Bits", stt.Config.LineBits)},
			{"Area (macro, model)", f("%.4fmm2", sram.AreaMM2), f("%.4fmm2", stt.AreaMM2)},
			{"Read energy / line", f("%.1fpJ", sram.ReadPJ), f("%.1fpJ", stt.ReadPJ)},
			{"Write energy / line", f("%.1fpJ", sram.WritePJ), f("%.1fpJ", stt.WritePJ)},
			{"Non-volatile", fmt.Sprintf("%t", sram.RetentionNonVol), fmt.Sprintf("%t", stt.RetentionNonVol)},
		},
		Notes: []string{
			"paper Table I values: SRAM 0.787/0.773ns 146F2; STT-MRAM 3.37/1.86ns 28.35mW 42F2",
			"the paper's SRAM leakage cell is unreadable in the source text; the model's " +
				fmt.Sprintf("%.1fmW is a CACTI-like calibration", sram.LeakageMW),
			fmt.Sprintf("at 1GHz these quantize to SRAM %d/%d and STT-MRAM %d/%d cycles (the paper's 4x read / 2x write)",
				cyc(sram, 1.0), cycW(sram, 1.0), cyc(stt, 1.0), cycW(stt, 1.0)),
		},
	}
	return t, nil
}

func cyc(m tech.Model, f float64) int64  { r, _ := m.CyclesAt(f); return r }
func cycW(m tech.Model, f float64) int64 { _, w := m.CyclesAt(f); return w }

// CellLibrary is an extension table: every cell in the library at the
// default 64 KB macro, supporting the paper's §I/§II technology survey
// (why STT-MRAM and not PRAM/ReRAM at L1).
func CellLibrary() (stats.Table, error) {
	t := stats.Table{
		ID:      "cells",
		Title:   "Cell library at 64KB / 32nm (paper §I technology survey)",
		Columns: []string{"Cell", "Read", "Write", "Leakage", "Cell area", "Endurance", "Non-volatile"},
	}
	for _, kind := range []tech.CellKind{tech.SRAM6T, tech.STT2T2MTJ, tech.STT1T1MTJ, tech.ReRAM, tech.PRAM} {
		m, err := tech.Compute(tech.DefaultArray(kind))
		if err != nil {
			return stats.Table{}, err
		}
		cell := tech.Cells[kind]
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fmt.Sprintf("%.2fns", m.ReadNs),
			fmt.Sprintf("%.2fns", m.WriteNs),
			fmt.Sprintf("%.1fmW", m.LeakageMW),
			fmt.Sprintf("%.0fF2", m.CellAreaF2),
			fmt.Sprintf("1e%.0f", cell.EnduranceLog10),
			fmt.Sprintf("%t", m.RetentionNonVol),
		})
	}
	t.Notes = append(t.Notes,
		"PRAM's write pulse and ReRAM/PRAM endurance are what rule them out at L1 (paper §I)")
	return t, nil
}
