package experiments

import (
	"sttdl1/internal/compile"
	"sttdl1/internal/core"
	"sttdl1/internal/dse"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

// The ablations below extend the paper's exploration (DESIGN.md §6):
// sensitivity of the proposal to the NVM array's bank count, to the
// STT-MRAM read-latency assumption, to the core's store-buffer depth,
// and to the VWB replacement policy and write asymmetry.
//
// The 1-D sweeps are defined once, as internal/dse spaces — the same
// definitions `sttexplore dse` explores with objectives and a Pareto
// frontier — and rendered here as the classic penalty figures: one
// series per enumerated design point, measured against the point's own
// baseline (same compile options, same core).

// spaceFigure renders a dse space as a penalty figure: one series per
// enumerated point, in enumeration order, labeled with the point label.
func (s *Suite) spaceFigure(sp dse.Space, id, title string, notes ...string) (stats.Figure, error) {
	pts := sp.Enumerate()
	series := make([]stats.Series, len(pts))
	for i, pt := range pts {
		pen, err := s.penaltySeries(sp.BaselineFor(pt.Config), pt.Config)
		if err != nil {
			return stats.Figure{}, err
		}
		series[i] = stats.Series{Label: pt.Label, Values: pen}
	}
	return stats.Figure{
		ID:      id,
		Title:   title,
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series:  series,
		Notes:   notes,
	}.WithAverage(), nil
}

// AblationBanks sweeps the banked NVM array: 1..8 banks. With one bank
// every promotion conflicts with every concurrent access (paper §IV's
// stall scenario); more banks decouple them.
func (s *Suite) AblationBanks() (stats.Figure, error) {
	return s.spaceFigure(dse.AblationBanks(),
		"ablation-banks",
		"Proposal penalty vs NVM array bank count (promotion-conflict sensitivity)")
}

// AblationReadLat sweeps the STT-MRAM read latency from 2x to 6x the
// SRAM cycle: where does the VWB stop rescuing the drop-in penalty?
func (s *Suite) AblationReadLat() (stats.Figure, error) {
	return s.spaceFigure(dse.AblationReadLat(),
		"ablation-readlat",
		"Penalty vs STT-MRAM read latency (2x..6x SRAM), drop-in and VWB")
}

// AblationStoreBuf sweeps the core's store-buffer depth under the NVM
// DL1's 2-cycle writes — the paper's §III claim that write latency "can
// still be managed" by buffering.
func (s *Suite) AblationStoreBuf() (stats.Figure, error) {
	return s.spaceFigure(dse.AblationStoreBuf(),
		"ablation-storebuf",
		"Drop-in penalty vs core store-buffer depth (write-latency mitigation)")
}

// AblationVWBPolicy compares LRU against FIFO row replacement.
func (s *Suite) AblationVWBPolicy() (stats.Figure, error) {
	base := withOpts(sim.BaselineSRAM(), allOpts())
	var series []stats.Series
	for _, pol := range []core.EvictPolicy{core.EvictLRU, core.EvictFIFO} {
		cfg := withOpts(sim.ProposalVWB(), allOpts())
		cfg.VWBPolicy = pol
		pen, err := s.penaltySeries(base, cfg)
		if err != nil {
			return stats.Figure{}, err
		}
		series = append(series, stats.Series{Label: "policy " + pol.String(), Values: pen})
	}
	return stats.Figure{
		ID:      "ablation-policy",
		Title:   "Proposal penalty: LRU vs FIFO VWB replacement",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series:  series,
	}.WithAverage(), nil
}

// AblationWriteAsym models AWARE-style write asymmetry (the paper's
// related work [1]): the 0->1 transition is slower than 1->0, so the
// effective write latency depends on how conservatively the controller
// times writes. We sweep the DL1 write latency 1..4 cycles on the
// drop-in configuration.
func (s *Suite) AblationWriteAsym() (stats.Figure, error) {
	return s.spaceFigure(dse.AblationWriteAsym(),
		"ablation-writeasym",
		"Drop-in penalty vs DL1 write latency (AWARE-style asymmetric-write sweep)",
		"read latency dominates at every point — the paper's §III conclusion")
}

// AblationInterchange evaluates the loop-interchange extension — the
// "systematic approach" the paper's §V leaves as future work. It
// compares the optimized proposal with the paper's transformation set
// against the extended set (each against an equally compiled SRAM
// baseline). The column-walk kernels (mvt, trmm, covariance, gemver)
// are the ones it rescues.
func (s *Suite) AblationInterchange() (stats.Figure, error) {
	paperOpts := allOpts()
	extOpts := compile.ExtendedOptimizations()

	paper, err := s.penaltySeries(
		withOpts(sim.BaselineSRAM(), paperOpts),
		withOpts(sim.ProposalVWB(), paperOpts))
	if err != nil {
		return stats.Figure{}, err
	}
	ext, err := s.penaltySeries(
		withOpts(sim.BaselineSRAM(), extOpts),
		withOpts(sim.ProposalVWB(), extOpts))
	if err != nil {
		return stats.Figure{}, err
	}
	return stats.Figure{
		ID:      "ablation-interchange",
		Title:   "Optimized proposal penalty: paper's transformations vs + loop interchange",
		Metric:  "Performance Penalty (%)",
		Benches: s.benchNames(),
		Series: []stats.Series{
			{Label: "Paper transformations", Values: paper},
			{Label: "+ loop interchange", Values: ext},
		},
		Notes: []string{
			"interchange turns the transposed walks of mvt/trmm/covariance/gemver into stride-1 row walks",
		},
	}.WithAverage(), nil
}
