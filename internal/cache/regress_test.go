package cache

import (
	"testing"

	"sttdl1/internal/mem"
)

// Regression tests for the three timing bugs the internal/check oracle
// flagged (ISSUE 2). Each test fails on the pre-fix code.

// recPort is a FixedPort that also keeps every request it saw.
type recPort struct {
	mem.FixedPort
	reqs []mem.Req
}

func (r *recPort) Access(now int64, req mem.Req) int64 {
	r.reqs = append(r.reqs, req)
	return r.FixedPort.Access(now, req)
}

// TestHitCappedAtInFlightFill: accessOne installs the victim line at
// miss time while the fill completes at the MSHR's ready, so a second
// access to the same line used to take the full-speed hit path and
// complete before its data existed. A hit under an in-flight fill must
// not complete before the fill.
func TestHitCappedAtInFlightFill(t *testing.T) {
	next := &mem.FixedPort{Latency: 100}
	c := New(cfg64k(), next)

	// Miss at t=0: lookup (4) + fill (100) + 1 => data exists at 105.
	d1 := c.Access(0, mem.Req{Addr: 0x1000, Bytes: 4, Kind: mem.Read})
	if d1 != 105 {
		t.Fatalf("miss done = %d, want 105", d1)
	}
	ms := c.MSHRs()
	if !ms[0].Valid || ms[0].Ready != 105 {
		t.Fatalf("MSHR after miss = %+v, want line in flight until 105", ms[0])
	}

	// Same line again at t=1, long before the fill arrives. Pre-fix this
	// returned 1+ReadLat = 5 — a load completing 100 cycles before the
	// line exists.
	d2 := c.Access(1, mem.Req{Addr: 0x1008, Bytes: 4, Kind: mem.Read})
	if d2 < 105 {
		t.Errorf("hit under in-flight fill done = %d, want >= fill ready 105", d2)
	}
	if c.HitUnderFillCycles == 0 {
		t.Error("HitUnderFillCycles not accounted")
	}

	// A write to the in-flight line retires into the filled line: ready
	// plus the array write.
	d3 := c.Access(2, mem.Req{Addr: 0x1010, Bytes: 4, Kind: mem.Write})
	if want := int64(105 + 2); d3 < want {
		t.Errorf("write under in-flight fill done = %d, want >= %d", d3, want)
	}

	// Once the fill has landed, hits run at full speed again.
	d4 := c.Access(200, mem.Req{Addr: 0x1000, Bytes: 4, Kind: mem.Read})
	if d4 != 204 {
		t.Errorf("post-fill hit done = %d, want 204", d4)
	}
}

// TestSplitStoreReturnsSlowerHalf: a line-straddling write used to
// report only the second half's completion, under-stating the store's
// drain time whenever the first half stalled on a busy bank longer than
// the second.
func TestSplitStoreReturnsSlowerHalf(t *testing.T) {
	cfg := cfg64k()
	cfg.Banks = 2
	// Non-pipelined banks: an access parks its bank for the full latency.
	cfg.ReadLat, cfg.ReadInterval = 40, 40
	cfg.WriteLat, cfg.WriteInterval = 2, 2
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg, next)

	// Warm both lines of the split so the store hits.
	c.Access(0, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read})
	c.Access(200, mem.Req{Addr: 0x40, Bytes: 4, Kind: mem.Read})

	// Park bank 0 (even lines) behind a long read finishing at 1040.
	c.Access(1000, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read})

	// Split store at 1001: first half (line 0x0, bank 0) stalls until
	// 1040 and retires at 1042; second half (line 0x40, bank 1) retires
	// at 1004. Pre-fix Access returned 1004.
	done := c.Access(1001, mem.Req{Addr: 0x3c, Bytes: 8, Kind: mem.Write})
	if done != 1042 {
		t.Errorf("split store done = %d, want 1042 (the stalled first half)", done)
	}
}

// TestNoAliasingAcross32BitLines: indexOf/reconstructAddr used to
// truncate line numbers to uint32, so two addresses 2^32 lines apart
// aliased silently — the second access hit the first's line, and a dirty
// eviction of either wrote back to the wrong address.
func TestNoAliasingAcross32BitLines(t *testing.T) {
	next := &recPort{FixedPort: mem.FixedPort{Latency: 10}}
	c := New(cfg64k(), next)

	lo := mem.Addr(0x1000)
	hi := lo + (mem.Addr(1)<<32)*64 // same line number mod 2^32

	c.Access(0, mem.Req{Addr: lo, Bytes: 4, Kind: mem.Write})
	if got := c.Stats().Writes - c.Stats().WriteHits; got != 1 {
		t.Fatalf("first access: %d write misses, want 1", got)
	}

	// The high address is a different line; with truncated tags it
	// falsely hit the low line.
	c.Access(100, mem.Req{Addr: hi, Bytes: 4, Kind: mem.Write})
	if c.Stats().WriteHits != 0 {
		t.Errorf("access 2^32 lines apart hit (tag truncation aliasing); want miss")
	}
	if !c.Contains(lo) || !c.Contains(hi) {
		t.Errorf("Contains(lo)=%t Contains(hi)=%t, want both resident", c.Contains(lo), c.Contains(hi))
	}

	// Evict both dirty lines (2-way set, two more conflicting lines; LRU
	// takes lo first, then hi) and check each writeback reconstructs the
	// original address, not a truncated one. Pre-widening, hi's writeback
	// went to lo's address.
	cc := c.Config()
	setStride := mem.Addr(cc.Sets() * cc.LineSize)
	c.Access(200, mem.Req{Addr: lo + setStride, Bytes: 4, Kind: mem.Read})
	c.Access(300, mem.Req{Addr: lo + 2*setStride, Bytes: 4, Kind: mem.Read})
	var wbs []mem.Addr
	for _, req := range next.reqs {
		if req.Kind == mem.WriteBack {
			wbs = append(wbs, req.Addr)
		}
	}
	if len(wbs) != 2 {
		t.Fatalf("got %d writebacks, want 2 (both dirty lines evicted)", len(wbs))
	}
	if wbs[0] != mem.LineAddr(lo, 64) || wbs[1] != mem.LineAddr(hi, 64) {
		t.Errorf("writebacks to %#x, %#x; want %#x, %#x", wbs[0], wbs[1], mem.LineAddr(lo, 64), mem.LineAddr(hi, 64))
	}
}
