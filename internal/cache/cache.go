// Package cache implements the set-associative, banked, write-back caches
// used for the IL1, the (SRAM or STT-MRAM) DL1, and the unified L2 of the
// simulated platform.
//
// The model is timing-only (tags, recency, dirtiness, busy-until state; no
// data). Its distinguishing features, required by the paper:
//
//   - separate read and write latencies, so an STT-MRAM array can be
//     modelled as read 4 / write 2 cycles against SRAM's 1 / 1;
//   - a banked data array: one line promotion into the Very Wide Buffer
//     occupies the source bank for the full read latency, and a
//     concurrent access to the same bank stalls (paper §IV);
//   - MSHRs, so software prefetches overlap with execution and demand
//     accesses merge into in-flight misses;
//   - a small eviction write buffer, "present to hold the evicted data
//     temporarily while being transferred to the L2" (paper §IV).
package cache

import (
	"fmt"

	"sttdl1/internal/mem"
)

// Config describes one cache.
type Config struct {
	Name     string
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes
	Banks    int // data-array banks (power of two)

	ReadLat  int64 // array read latency, cycles
	WriteLat int64 // array write latency, cycles

	// ReadInterval/WriteInterval are the per-bank initiation intervals:
	// how long a bank stays busy per access. 0 means non-pipelined
	// (= the access latency), which is how the long STT-MRAM sense
	// behaves; SRAM arrays at core clock are pipelined (interval 1).
	ReadInterval  int64
	WriteInterval int64

	MSHRs         int // outstanding-miss registers
	WriteBufDepth int // eviction write-buffer entries

	// SRAMWays makes the array a hybrid: ways [0, SRAMWays) are built
	// from fast (SRAM) cells with their own pipelined bank clocks and
	// latencies, the remaining ways from the configured (NVM)
	// technology (Khoshavi-style way partitioning). 0 means a
	// homogeneous array — the model is then bit-identical to the
	// pre-hybrid cache. Fill steering: read-class misses install into
	// the SRAM partition, write-class misses into the NVM partition
	// (falling back to the whole set when the preferred partition has
	// no usable way), so read-hot lines migrate to the fast ways.
	SRAMWays int
	// SRAMReadLat/SRAMWriteLat are the SRAM partition's latencies in
	// cycles (0 = 1 cycle; the partition is always pipelined with a
	// 1-cycle initiation interval).
	SRAMReadLat, SRAMWriteLat int64

	// ShutdownInterval, when positive, power-gates cold non-SRAM ways
	// (Mittal-style dynamic way shutdown): every interval boundary a
	// gateable way with no hits or installs over the whole interval is
	// flushed (dirty lines written back), invalidated and gated; a
	// boundary that observed capacity pressure (a valid line evicted
	// from the gateable partition) wakes every gated way instead. At
	// least one way of the whole set always stays awake. Gated cycles
	// are scored as leakage savings by internal/energy.
	ShutdownInterval int64
}

// Validate checks structural parameters.
func (c *Config) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %s: size/assoc/line must be positive", c.Name)
	case c.Size%(c.LineSize*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line %d", c.Name, c.Size, c.LineSize*c.Assoc)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.Banks <= 0 || c.Banks&(c.Banks-1) != 0:
		return fmt.Errorf("cache %s: banks %d not a positive power of two", c.Name, c.Banks)
	case c.ReadLat <= 0 || c.WriteLat <= 0:
		return fmt.Errorf("cache %s: latencies must be positive", c.Name)
	case c.MSHRs <= 0:
		return fmt.Errorf("cache %s: need at least one MSHR", c.Name)
	case c.SRAMWays < 0 || c.SRAMWays > c.Assoc:
		return fmt.Errorf("cache %s: SRAM ways %d outside [0, %d]", c.Name, c.SRAMWays, c.Assoc)
	case c.ShutdownInterval < 0:
		return fmt.Errorf("cache %s: shutdown interval must be non-negative", c.Name)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c *Config) Sets() int { return c.Size / (c.LineSize * c.Assoc) }

type line struct {
	// tag is the full line number above the index bits. It is kept at
	// mem.Addr width: truncating it (an earlier revision stored uint32)
	// makes addresses 2^32 lines apart alias silently, and dirty
	// evictions write back to the wrong reconstructed address.
	tag     mem.Addr
	valid   bool
	dirty   bool
	lastUse uint64
	// ready is the cycle the line's fill delivered (or will deliver) its
	// data. The victim slot is installed at miss time while the fill is
	// still in flight, so a later hit must not complete before ready.
	// Kept on the line rather than read from the MSHR: a full MSHR file
	// can reclaim the entry of a still-in-flight fill, but the line's
	// data still only exists once the fill lands.
	ready int64
}

type mshr struct {
	lineAddr mem.Addr
	valid    bool
	// ready is the cycle the fill completes; the entry frees then.
	ready int64
}

type wbEntry struct {
	// retire is the cycle at which the buffered eviction has drained to
	// the next level and the slot frees.
	retire int64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg  Config
	next mem.Port

	// Precomputed address-decomposition geometry (the hot path runs once
	// per simulated access; deriving these from cfg every time showed up
	// as ~13% of total simulation time in profiles).
	lineShift uint
	lineMask  mem.Addr
	setMask   mem.Addr
	setShift  uint
	bankMask  int

	sets [][]line
	// mru is a per-set probe hint: the way of the set's last hit.
	// Access streams are line-local, so lookup checks it before the way
	// scan. Purely an optimization — the returned way is identical with
	// or without it, and it is never consulted for replacement.
	mru      []int32
	bankFree []int64
	// sramFree is the SRAM partition's private per-bank busy-until
	// clocks (nil unless SRAMWays > 0): the fast ways sit in their own
	// small array, so an SRAM hit never waits behind a long NVM sense
	// occupying the main array's bank.
	sramFree []int64
	mshrs    []mshr
	wbuf     []wbEntry

	// Way-shutdown state (allocated only when ShutdownInterval > 0).
	gated     []bool   // way w is power-gated (holds no lines)
	gateStart []int64  // cycle way w was gated (meaningful while gated)
	wayActive []uint64 // hits+installs per way this interval
	// gatePressure counts valid-line evictions from the gateable
	// partition this interval — the wake signal.
	gatePressure uint64
	// gateHW is the high-water mark of processed interval boundaries.
	// Request timestamps are not globally monotone across kinds (the
	// store drain path runs ahead of loads), so boundary processing
	// only ever moves this mark forward.
	gateHW int64

	useClock uint64
	stats    mem.Stats

	// Extra visibility counters.
	BankConflictCycles int64
	// ConflictByKind splits BankConflictCycles by request kind.
	ConflictByKind  [6]int64
	MSHRStallCycles int64
	WBStallCycles   int64
	// HitUnderFillCycles accumulates cycles hits spent waiting for the
	// in-flight fill of their own line (the causality cap in accessOne).
	HitUnderFillCycles int64
	Evictions          uint64
	DirtyEvictions     uint64
	// SRAMReads/SRAMWrites count array operations served by the SRAM
	// partition of a hybrid cache (hits in SRAM ways, installs into
	// them, and miss probes when the array is all-SRAM); internal/energy
	// prices them at SRAM instead of NVM per-access energies.
	SRAMReads, SRAMWrites uint64
	// PrefetchDrops counts software prefetches dropped because the MSHR
	// file was full: a hint must never stall the port or evict a demand
	// miss's entry.
	PrefetchDrops uint64
	// Way-shutdown visibility counters.
	WayShutdowns, WayWakeups, WayFlushWBs uint64
	// wayOffCycles accumulates gated way-cycles of completed gating
	// episodes; OffCyclesAt adds the still-open ones.
	wayOffCycles int64
}

// New builds a cache in front of next. It panics on an invalid Config:
// configs are produced by our own code and a bad one means a programming
// error, not a runtime condition.
func New(cfg Config, next mem.Port) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic(fmt.Sprintf("cache %s: nil next level", cfg.Name))
	}
	if cfg.WriteBufDepth <= 0 {
		cfg.WriteBufDepth = 4
	}
	if cfg.ReadInterval <= 0 {
		cfg.ReadInterval = cfg.ReadLat
	}
	if cfg.WriteInterval <= 0 {
		cfg.WriteInterval = cfg.WriteLat
	}
	if cfg.SRAMWays > 0 {
		if cfg.SRAMReadLat <= 0 {
			cfg.SRAMReadLat = 1
		}
		if cfg.SRAMWriteLat <= 0 {
			cfg.SRAMWriteLat = 1
		}
	}
	c := &Cache{
		cfg: cfg, next: next,
		lineShift: uint(log2(cfg.LineSize)),
		lineMask:  mem.Addr(cfg.LineSize - 1),
		setMask:   mem.Addr(cfg.Sets() - 1),
		setShift:  uint(log2(cfg.Sets())),
		bankMask:  cfg.Banks - 1,
	}
	c.sets = make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	c.mru = make([]int32, cfg.Sets())
	c.bankFree = make([]int64, cfg.Banks)
	if cfg.SRAMWays > 0 {
		c.sramFree = make([]int64, cfg.Banks)
	}
	if cfg.ShutdownInterval > 0 {
		c.gated = make([]bool, cfg.Assoc)
		c.gateStart = make([]int64, cfg.Assoc)
		c.wayActive = make([]uint64, cfg.Assoc)
	}
	c.mshrs = make([]mshr, cfg.MSHRs)
	c.wbuf = make([]wbEntry, cfg.WriteBufDepth)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineShift returns log2(line size); addr >> LineShift() is the line
// number, which fetch-run callers use to detect leaving the line.
func (c *Cache) LineShift() uint { return c.lineShift }

// Stats returns a copy of the demand/prefetch counters.
func (c *Cache) Stats() mem.Stats { return c.stats }

func (c *Cache) indexOf(addr mem.Addr) (set int, tag mem.Addr) {
	l := addr >> c.lineShift
	return int(l & c.setMask), l >> c.setShift
}

func (c *Cache) bankOf(addr mem.Addr) int {
	return int(addr>>c.lineShift) & c.bankMask
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// lookup returns the way holding addr's line, or -1. Indexing instead of
// ranging matters: a range copies each 40-byte line per probed way, and
// this runs once per simulated access.
func (c *Cache) lookup(set int, tag mem.Addr) int {
	ways := c.sets[set]
	if m := c.mru[set]; int(m) < len(ways) {
		if ln := &ways[m]; ln.valid && ln.tag == tag {
			return int(m)
		}
	}
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			c.mru[set] = int32(w)
			return w
		}
	}
	return -1
}

// victimWay picks the LRU way of the set (preferring invalid ways).
func (c *Cache) victimWay(set int) int { return c.victimWayIn(set, 0, c.cfg.Assoc) }

// victimWayIn picks the victim within ways [lo, hi): the first invalid
// un-gated way, else the un-gated LRU; -1 when every way of the range
// is gated. With no gating and the full range it reduces exactly to
// the classic invalid-first LRU choice.
func (c *Cache) victimWayIn(set, lo, hi int) int {
	ways := c.sets[set]
	best := -1
	for w := lo; w < hi; w++ {
		if c.gated != nil && c.gated[w] {
			continue
		}
		if !ways[w].valid {
			return w
		}
		if best < 0 || ways[w].lastUse < ways[best].lastUse {
			best = w
		}
	}
	return best
}

// fillPartition returns the way range a miss of the given class steers
// its fill into: read-class lines go to the fast SRAM ways, write-class
// lines to the NVM ways. A homogeneous (or all-SRAM) array steers
// nowhere — the whole set is one partition.
func (c *Cache) fillPartition(isWrite bool) (lo, hi int) {
	lo, hi = 0, c.cfg.Assoc
	if k := c.cfg.SRAMWays; k > 0 && k < c.cfg.Assoc {
		if isWrite {
			lo = k
		} else {
			hi = k
		}
	}
	return lo, hi
}

// waitBank advances start past the bank's busy-until clock,
// accumulating the conflict counters.
func (c *Cache) waitBank(clocks []int64, bank int, now int64, kind mem.Kind) int64 {
	start := now
	if bf := clocks[bank]; bf > start {
		c.BankConflictCycles += bf - start
		if int(kind) < len(c.ConflictByKind) {
			c.ConflictByKind[kind] += bf - start
		}
		start = bf
	}
	return start
}

// missClocks returns the bank-clock array and the latency/initiation
// interval of the array partition a miss's tag/array probe occupies:
// the main (NVM) partition, unless the array is all-SRAM.
func (c *Cache) missClocks() (clocks []int64, lat, ival int64) {
	if c.cfg.SRAMWays == c.cfg.Assoc && c.sramFree != nil {
		return c.sramFree, c.cfg.SRAMReadLat, 1
	}
	return c.bankFree, c.cfg.ReadLat, c.cfg.ReadInterval
}

// mshrFreeAt reports whether an MSHR entry is (or will be) free at
// cycle at, without mutating the file.
func (c *Cache) mshrFreeAt(at int64) bool {
	for i := range c.mshrs {
		if !c.mshrs[i].valid || c.mshrs[i].ready <= at {
			return true
		}
	}
	return false
}

// Access implements mem.Port.
//
// Requests that straddle a line boundary are split and serialized, which
// is exactly the penalty the alignment transformation removes.
func (c *Cache) Access(now int64, req mem.Req) int64 {
	if req.Bytes <= 0 {
		req.Bytes = 1
	}
	if req.Addr>>c.lineShift != (req.Addr+mem.Addr(req.Bytes)-1)>>c.lineShift {
		first := int(mem.LineAddr(req.Addr, c.cfg.LineSize)) + c.cfg.LineSize - int(req.Addr)
		d1 := c.accessOne(now, mem.Req{Addr: req.Addr, Bytes: first, Kind: req.Kind})
		rest := mem.Req{Addr: req.Addr + mem.Addr(first), Bytes: req.Bytes - first, Kind: req.Kind}
		// The two halves issue back to back, but the access as a whole
		// completes only when the later half does: a split load needs
		// both words, and a split store retires only once both halves
		// have drained — if the first half stalls on a busy bank longer
		// than the second, its completion dominates.
		d2 := c.accessOne(now+1, rest)
		if d1 > d2 {
			return d1
		}
		return d2
	}
	return c.accessOne(now, req)
}

func (c *Cache) accessOne(now int64, req mem.Req) int64 {
	l := req.Addr >> c.lineShift
	set, tag := int(l&c.setMask), l>>c.setShift
	bank := int(l) & c.bankMask
	lineAddr := req.Addr &^ c.lineMask

	if c.gated != nil {
		c.advanceShutdown(now)
	}

	c.useClock++
	way := c.lookup(set, tag)
	isWrite := req.Kind == mem.Write || req.Kind == mem.WriteBack
	c.stats.Record(req.Kind, way >= 0)

	if way >= 0 { // hit
		sram := way < c.cfg.SRAMWays
		clocks, lat, ival := c.bankFree, c.cfg.ReadLat, c.cfg.ReadInterval
		if sram {
			clocks, lat, ival = c.sramFree, c.cfg.SRAMReadLat, 1
			if isWrite {
				lat = c.cfg.SRAMWriteLat
			}
		} else if isWrite {
			lat, ival = c.cfg.WriteLat, c.cfg.WriteInterval
		}
		start := c.waitBank(clocks, bank, now, req.Kind)
		ln := &c.sets[set][way]
		ln.lastUse = c.useClock
		if isWrite {
			ln.dirty = true
		}
		if c.wayActive != nil {
			c.wayActive[way]++
		}
		if sram {
			if isWrite {
				c.SRAMWrites++
			} else {
				c.SRAMReads++
			}
		}
		done := start + lat
		clocks[bank] = start + ival
		c.stats.BusyCycles += ival
		if req.Kind == mem.Prefetch {
			return start // nothing to do, core does not wait
		}
		// Causality: the victim slot is installed at miss time while the
		// fill is still in flight, so a lookup can hit a line whose data
		// does not exist yet. Such a hit cannot complete before the fill
		// delivers the line — cap it at the line's ready time, matching
		// the merge path's timing. A write retires into the freshly
		// filled line (lat is the partition's write latency here).
		avail := ln.ready
		if isWrite {
			avail = ln.ready + lat
		}
		if done < avail {
			c.HitUnderFillCycles += avail - done
			done = avail
		}
		return done
	}

	// Miss: the tag/array probe occupies the main (NVM) partition,
	// unless the array is all-SRAM.
	clocks, mlat, mival := c.missClocks()
	wlat := c.cfg.WriteLat
	sramProbe := c.cfg.SRAMWays == c.cfg.Assoc && c.sramFree != nil
	if sramProbe {
		wlat = c.cfg.SRAMWriteLat
	}
	start := c.waitBank(clocks, bank, now, req.Kind)
	if sramProbe {
		c.SRAMReads++
	}

	// First check for an in-flight fill of the same line.
	if m := c.findMSHR(lineAddr); m != nil {
		done := m.ready
		if done < start {
			done = start
		}
		if isWrite {
			// The write retires into the freshly filled line.
			done += wlat
			c.touchFilledLine(set, tag, true)
		} else {
			c.touchFilledLine(set, tag, false)
		}
		if req.Kind == mem.Prefetch {
			return start
		}
		return done
	}

	// A software prefetch is a hint: rather than stall on a full MSHR
	// file — or reclaim a demand miss's entry — drop it. The decision
	// uses the request's own timestamp, so it is a pure function of the
	// pre-access MSHR view. The tag probe still occupied the array.
	if req.Kind == mem.Prefetch && !c.mshrFreeAt(now) {
		c.PrefetchDrops++
		clocks[bank] = start + mival
		c.stats.BusyCycles += mival
		return start
	}

	// Allocate an MSHR, stalling if the file is full.
	start = c.allocMSHRTime(start)

	// The miss is detected after the tag/array lookup.
	missAt := start + mlat
	fillDone := c.next.Access(missAt, mem.Req{Addr: lineAddr, Bytes: c.cfg.LineSize, Kind: mem.Fill})
	c.stats.Fills++

	// Choose and evict the victim, steering the fill into the request
	// class's partition; when the preferred partition has no usable way
	// (all gated), fall back to the whole set.
	lo, hi := c.fillPartition(isWrite)
	vw := c.victimWayIn(set, lo, hi)
	if vw < 0 {
		vw = c.victimWayIn(set, 0, c.cfg.Assoc)
	}
	victim := &c.sets[set][vw]
	if victim.valid {
		c.Evictions++
		if c.gated != nil && vw >= c.cfg.SRAMWays {
			// Capacity pressure on the gateable partition: wake signal
			// for the next interval boundary.
			c.gatePressure++
		}
		if victim.dirty {
			c.DirtyEvictions++
			fillDone = c.pushWriteback(fillDone, c.reconstructAddr(set, victim.tag))
		}
	}
	*victim = line{tag: tag, valid: true, dirty: isWrite, lastUse: c.useClock, ready: fillDone + 1}
	if c.wayActive != nil {
		c.wayActive[vw]++
	}
	if vw < c.cfg.SRAMWays {
		// The install is an SRAM-partition array write.
		c.SRAMWrites++
	}

	// The bank is busy only for the lookup; the line is fetched through
	// an MSHR while the array keeps serving other requests (the brief
	// install write at fillDone is not modelled as occupancy, like
	// gem5's classic caches). The requested word bypasses to the
	// requester critical-word-first.
	clocks[bank] = start + mival
	c.stats.BusyCycles += mival
	c.setMSHR(lineAddr, fillDone+1)

	switch req.Kind {
	case mem.Prefetch:
		return start
	case mem.Write, mem.WriteBack:
		if vw < c.cfg.SRAMWays {
			return fillDone + c.cfg.SRAMWriteLat
		}
		return fillDone + c.cfg.WriteLat
	default:
		return fillDone + 1
	}
}

// advanceShutdown processes the most recent shutdown-interval boundary
// at or before now, if it has not been processed yet. Request
// timestamps are not globally monotone (the store drain runs ahead of
// loads), so the high-water mark only ever moves forward; a span with
// no accesses is treated as one long interval.
func (c *Cache) advanceShutdown(now int64) {
	iv := c.cfg.ShutdownInterval
	b := now - now%iv
	if b <= c.gateHW {
		return
	}
	c.gateHW = b
	c.intervalBoundary(b)
}

// intervalBoundary applies the Mittal-style way-shutdown policy at
// boundary cycle b: under capacity pressure every gated way wakes;
// otherwise every gateable way with no activity over the interval is
// gated, as long as at least one way of the set stays awake. Activity
// and pressure counters restart for the next interval.
func (c *Cache) intervalBoundary(b int64) {
	if c.gatePressure > 0 {
		for w := c.cfg.SRAMWays; w < c.cfg.Assoc; w++ {
			if c.gated[w] {
				c.wakeWay(w, b)
			}
		}
	} else {
		awake := 0
		for w := 0; w < c.cfg.Assoc; w++ {
			if !c.gated[w] {
				awake++
			}
		}
		for w := c.cfg.SRAMWays; w < c.cfg.Assoc; w++ {
			if !c.gated[w] && c.wayActive[w] == 0 && awake > 1 {
				c.gateWay(w, b)
				awake--
			}
		}
	}
	c.gatePressure = 0
	for i := range c.wayActive {
		c.wayActive[i] = 0
	}
}

// gateWay power-gates way w at boundary cycle b: dirty lines drain
// straight to the next level (a dedicated flush path, not the eviction
// write buffer), every resident line is invalidated — a gated way holds
// no lines, so no later read can observe stale contents — and the way
// stops leaking.
func (c *Cache) gateWay(w int, b int64) {
	for set := range c.sets {
		ln := &c.sets[set][w]
		if ln.valid {
			if ln.dirty {
				c.next.Access(b, mem.Req{Addr: c.reconstructAddr(set, ln.tag), Bytes: c.cfg.LineSize, Kind: mem.WriteBack})
				c.WayFlushWBs++
			}
			*ln = line{}
		}
	}
	c.gated[w] = true
	c.gateStart[w] = b
	c.WayShutdowns++
}

// wakeWay re-powers way w at boundary cycle b, banking its completed
// off-time.
func (c *Cache) wakeWay(w int, b int64) {
	c.gated[w] = false
	if d := b - c.gateStart[w]; d > 0 {
		c.wayOffCycles += d
	}
	c.WayWakeups++
}

// OffCyclesAt returns the total gated way-cycles as of cycle end:
// completed gating episodes plus the still-open ones. internal/energy
// converts this into a leakage credit.
func (c *Cache) OffCyclesAt(end int64) int64 {
	off := c.wayOffCycles
	for w := range c.gated {
		if c.gated[w] {
			if d := end - c.gateStart[w]; d > 0 {
				off += d
			}
		}
	}
	return off
}

// GatedWays returns a copy of the per-way power-gating flags (nil when
// shutdown is disabled), for the invariant checker and tests.
func (c *Cache) GatedWays() []bool {
	if c.gated == nil {
		return nil
	}
	out := make([]bool, len(c.gated))
	copy(out, c.gated)
	return out
}

// FetchStream is an open accounting window over the instruction-fetch
// stream of one timing replay (cpu.ReplayTrace). The replay loop fetches
// sequentially, so fetches overwhelmingly hit a small working set of
// resident lines — a tight loop body straddles a handful of lines and
// revisits them every iteration. The stream keeps up to eight such lines
// "open" at once, together with private copies of every bank's busy-until
// clock, so the per-fetch read-hit arithmetic of accessOne (bank busy
// chain, conflict accumulation, the hit-under-fill cap) runs inline in
// the replay loop on the exported fields, and the batched side effects
// (bank clocks, LRU clock, hit statistics, conflict/busy counters) flush
// exactly once in Close.
//
// Exactness: while the stream is open, no open line can move (hits never
// evict, and the fetch stream is this cache's only client — the caller
// only uses a stream on a bare IL1, never through a front-end or oracle
// wrapper); every generic access — a miss — closes the stream first, so
// no other code observes the deferred state. Per-line LRU stamps are
// reconstructed exactly: the stream numbers every fetch it serves, so a
// line's flushed lastUse equals the useClock value the per-access path
// would have written at its final access.
type FetchStream struct {
	c    *Cache
	open bool
	// seq0 is c.useClock at open; fetch k of the stream (1-based) would
	// have observed useClock seq0+k on the per-access path.
	seq0     uint64
	bankFree []int64 // private copies of c.bankFree while open
	// slots is a small direct-mapped file of open lines (indexed by
	// line & 7, so a contiguous loop body maps without collisions).
	slots   [8]fetchSlot
	curSlot int

	// Exported hot state, read and advanced inline by the replay loop.

	// Lat/Ival are the hit latency and per-bank initiation interval.
	Lat, Ival int64
	// CurLine is the line number of the current slot, NoFetchLine when
	// the stream is closed; the replay loop compares it per fetch and
	// calls Switch on mismatch.
	CurLine mem.Addr
	// CurReady is the current line's fill-ready cap (hit-under-fill).
	CurReady int64
	// CurBankFree points at the current line's private bank clock.
	CurBankFree *int64
	// Seq counts fetches served since open; Conflicts/HUF accumulate
	// bank-conflict and hit-under-fill cycles for Close to flush.
	Seq, Conflicts, HUF int64
}

// fetchSlot is one open line of a FetchStream.
type fetchSlot struct {
	ln      *line
	lineN   mem.Addr
	bank    int
	valid   bool
	ready   int64
	lastIdx int64 // Seq at this slot's most recent access (saved on switch-away)
}

// NoFetchLine is FetchStream.CurLine's closed-stream sentinel; it can
// never be a real line number (addresses are far below 2^64 lines).
const NoFetchLine = ^mem.Addr(0)

// Init binds the stream to a cache. The stream starts closed; it opens
// lazily on the first Switch and must be Closed before any generic
// Access to the cache and before the replay returns.
func (s *FetchStream) Init(c *Cache) {
	if c.cfg.SRAMWays > 0 || c.cfg.ShutdownInterval > 0 {
		// The stream inlines the homogeneous read-hit arithmetic; hybrid
		// partitioning and way shutdown are DL1-only mechanisms, never
		// configured on the bare IL1 the stream serves.
		panic(fmt.Sprintf("cache %s: FetchStream requires a homogeneous, always-on array", c.cfg.Name))
	}
	s.c = c
	s.Lat, s.Ival = c.cfg.ReadLat, c.cfg.ReadInterval
	if s.bankFree == nil || len(s.bankFree) != len(c.bankFree) {
		s.bankFree = make([]int64, len(c.bankFree))
	}
	s.open = false
	s.CurLine = NoFetchLine
	s.CurBankFree = nil
	for i := range s.slots {
		s.slots[i].valid = false
	}
	s.Seq, s.Conflicts, s.HUF = 0, 0, 0
}

// Switch makes lineN the stream's current line, opening the stream if
// necessary. It reports false on a cache miss, in which case the stream
// has been Closed (all deferred state flushed) and the caller must serve
// this fetch — which installs the line — through the generic Access
// path; the next fetch of the line reopens a stream over it.
func (s *FetchStream) Switch(lineN mem.Addr) bool {
	c := s.c
	if !s.open {
		s.open = true
		s.seq0 = c.useClock
		copy(s.bankFree, c.bankFree)
	} else if s.CurLine != NoFetchLine {
		s.slots[s.curSlot].lastIdx = s.Seq
	}
	idx := int(lineN) & (len(s.slots) - 1)
	if sl := &s.slots[idx]; sl.valid && sl.lineN == lineN {
		s.setCur(idx)
		return true
	}
	set, tag := int(lineN&c.setMask), lineN>>c.setShift
	w := c.lookup(set, tag)
	if w < 0 {
		s.Close()
		return false
	}
	// Direct-mapped collision: retire the resident line. Its flushed
	// lastUse is exact, so evicting a slot at any time is sound.
	if s.slots[idx].valid {
		s.flushSlot(idx)
	}
	ln := &c.sets[set][w]
	s.slots[idx] = fetchSlot{ln: ln, lineN: lineN, bank: int(lineN) & c.bankMask, valid: true, ready: ln.ready, lastIdx: s.Seq}
	s.setCur(idx)
	return true
}

func (s *FetchStream) setCur(i int) {
	sl := &s.slots[i]
	s.curSlot = i
	s.CurLine = sl.lineN
	s.CurReady = sl.ready
	s.CurBankFree = &s.bankFree[sl.bank]
}

// flushSlot writes the slot's exact final LRU stamp: its last access was
// fetch lastIdx of the stream, which the per-access path would have
// stamped with useClock seq0+lastIdx.
func (s *FetchStream) flushSlot(i int) {
	sl := &s.slots[i]
	sl.ln.lastUse = s.seq0 + uint64(sl.lastIdx)
}

// Close flushes the stream's batched state updates into the cache:
// per-line LRU stamps, bank clocks, hit statistics, and the conflict,
// busy and hit-under-fill counters. Closing a closed stream is a no-op,
// so callers may close unconditionally at boundaries.
func (s *FetchStream) Close() {
	if !s.open {
		return
	}
	s.open = false
	if s.CurLine != NoFetchLine {
		s.slots[s.curSlot].lastIdx = s.Seq
	}
	c := s.c
	for i := range s.slots {
		if s.slots[i].valid {
			s.flushSlot(i)
			s.slots[i].valid = false
		}
	}
	copy(c.bankFree, s.bankFree)
	c.useClock += uint64(s.Seq)
	c.stats.Reads += uint64(s.Seq)
	c.stats.ReadHits += uint64(s.Seq)
	c.stats.BusyCycles += s.Ival * s.Seq
	c.BankConflictCycles += s.Conflicts
	c.ConflictByKind[mem.Fetch] += s.Conflicts
	c.HitUnderFillCycles += s.HUF
	s.CurLine = NoFetchLine
	s.CurBankFree = nil
	s.Seq, s.Conflicts, s.HUF = 0, 0, 0
}

// touchFilledLine refreshes LRU/dirty state for a line that an MSHR merge
// hit; the line may already be installed by the original miss.
func (c *Cache) touchFilledLine(set int, tag mem.Addr, dirty bool) {
	if w := c.lookup(set, tag); w >= 0 {
		ln := &c.sets[set][w]
		ln.lastUse = c.useClock
		if dirty {
			ln.dirty = true
		}
	}
}

func (c *Cache) reconstructAddr(set int, tag mem.Addr) mem.Addr {
	l := mem.Addr(set) | tag<<c.setShift
	return l << c.lineShift
}

func (c *Cache) findMSHR(lineAddr mem.Addr) *mshr {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].lineAddr == lineAddr {
			return &c.mshrs[i]
		}
	}
	return nil
}

// allocMSHRTime returns the cycle at which an MSHR slot is available at or
// after start, expiring completed entries along the way.
func (c *Cache) allocMSHRTime(start int64) int64 {
	earliest := int64(-1)
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid || m.ready <= start {
			m.valid = false
			return start
		}
		if earliest < 0 || m.ready < earliest {
			earliest = m.ready
		}
	}
	c.MSHRStallCycles += earliest - start
	// One entry frees at `earliest`.
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].ready == earliest {
			c.mshrs[i].valid = false
			break
		}
	}
	return earliest
}

func (c *Cache) setMSHR(lineAddr mem.Addr, ready int64) {
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			c.mshrs[i] = mshr{lineAddr: lineAddr, valid: true, ready: ready}
			return
		}
	}
	// allocMSHRTime guaranteed a free slot; reaching here is a bug.
	panic("cache: no free MSHR after allocation")
}

// pushWriteback places a dirty eviction into the write buffer. The fill
// normally proceeds unhindered; only a full buffer back-pressures it.
func (c *Cache) pushWriteback(now int64, victimAddr mem.Addr) int64 {
	slot := -1
	var soonest int64 = -1
	for i := range c.wbuf {
		if c.wbuf[i].retire <= now {
			slot = i
			break
		}
		if soonest < 0 || c.wbuf[i].retire < soonest {
			soonest = c.wbuf[i].retire
			slot = i
		}
	}
	start := now
	if c.wbuf[slot].retire > now {
		c.WBStallCycles += soonest - now
		start = soonest
	}
	retire := c.next.Access(start, mem.Req{Addr: victimAddr, Bytes: c.cfg.LineSize, Kind: mem.WriteBack})
	c.wbuf[slot].retire = retire
	return start
}

// UseClock returns the LRU use counter (one tick per accessOne), so an
// invariant checker attached to a warm cache can continue the recency
// numbering exactly.
func (c *Cache) UseClock() uint64 { return c.useClock }

// Contains reports whether the line holding addr is present (for tests
// and invariant checks; no timing side effects).
func (c *Cache) Contains(addr mem.Addr) bool {
	set, tag := c.indexOf(addr)
	return c.lookup(set, tag) >= 0
}

// Dirty reports whether the line holding addr is present and dirty.
func (c *Cache) Dirty(addr mem.Addr) bool {
	set, tag := c.indexOf(addr)
	w := c.lookup(set, tag)
	return w >= 0 && c.sets[set][w].dirty
}

// LineView is a read-only view of one way of a set, exported for the
// internal/check timing oracle's shadow-state comparison. Addr is the
// reconstructed line-aligned byte address (meaningful only when Valid).
type LineView struct {
	Addr    mem.Addr
	Valid   bool
	Dirty   bool
	LastUse uint64
}

// SetView returns the current contents of one set, way by way (no timing
// side effects).
func (c *Cache) SetView(set int) []LineView { return c.AppendSetView(nil, set) }

// AppendSetView appends the contents of one set to dst and returns the
// extended slice (the allocation-free form of SetView, for the per-access
// checker).
func (c *Cache) AppendSetView(dst []LineView, set int) []LineView {
	for _, ln := range c.sets[set] {
		v := LineView{Valid: ln.valid, Dirty: ln.dirty, LastUse: ln.lastUse}
		if ln.valid {
			v.Addr = c.reconstructAddr(set, ln.tag)
		}
		dst = append(dst, v)
	}
	return dst
}

// MSHRView is a read-only view of one miss-status register, exported for
// the invariant checker's exactly-once occupancy check.
type MSHRView struct {
	LineAddr mem.Addr
	Ready    int64
	Valid    bool
}

// MSHRs returns the current MSHR file contents (no timing side effects).
// Entries whose Ready has passed may linger as Valid: the file expires
// them lazily on the next allocation.
func (c *Cache) MSHRs() []MSHRView { return c.AppendMSHRs(nil) }

// AppendMSHRs appends the MSHR file contents to dst and returns the
// extended slice (the allocation-free form of MSHRs).
func (c *Cache) AppendMSHRs(dst []MSHRView) []MSHRView {
	for _, m := range c.mshrs {
		dst = append(dst, MSHRView{LineAddr: m.lineAddr, Ready: m.ready, Valid: m.valid})
	}
	return dst
}

// BusyClocks returns a copy of the per-bank busy-until clocks (the
// SRAM partition's private clocks appended after the main array's, when
// the cache is hybrid). The invariant checker requires each to be
// monotonically non-decreasing across accesses (between timing resets).
func (c *Cache) BusyClocks() []int64 {
	out := make([]int64, 0, len(c.bankFree)+len(c.sramFree))
	out = append(out, c.bankFree...)
	out = append(out, c.sramFree...)
	return out
}

// ResidentLines returns the number of valid lines (for occupancy checks).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.valid {
				n++
			}
		}
	}
	return n
}

// ResetTiming clears timing state (bank clocks, MSHRs, write buffer) and
// all counters while keeping cache contents — used between a warm-up run
// and the measured run.
func (c *Cache) ResetTiming() {
	for i := range c.bankFree {
		c.bankFree[i] = 0
	}
	// Contents persist across a timing reset but in-flight fill times do
	// not: the measured run's clock restarts at 0.
	for _, set := range c.sets {
		for w := range set {
			set[w].ready = 0
		}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	for i := range c.wbuf {
		c.wbuf[i] = wbEntry{}
	}
	for i := range c.sramFree {
		c.sramFree[i] = 0
	}
	// Gated ways stay gated across a timing reset (they hold no lines,
	// matching the persisting contents), but their episodes restart at
	// cycle 0 with the measured run's clock.
	if c.gated != nil {
		for i := range c.gateStart {
			c.gateStart[i] = 0
		}
		for i := range c.wayActive {
			c.wayActive[i] = 0
		}
		c.gatePressure = 0
		c.gateHW = 0
	}
	c.stats = mem.Stats{}
	c.BankConflictCycles = 0
	c.ConflictByKind = [6]int64{}
	c.MSHRStallCycles = 0
	c.WBStallCycles = 0
	c.HitUnderFillCycles = 0
	c.Evictions = 0
	c.DirtyEvictions = 0
	c.SRAMReads, c.SRAMWrites = 0, 0
	c.PrefetchDrops = 0
	c.WayShutdowns, c.WayWakeups, c.WayFlushWBs = 0, 0, 0
	c.wayOffCycles = 0
}

// Reset clears all state and counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for w := range set {
			set[w] = line{}
		}
	}
	for i := range c.bankFree {
		c.bankFree[i] = 0
	}
	for i := range c.sramFree {
		c.sramFree[i] = 0
	}
	if c.gated != nil {
		for i := range c.gated {
			c.gated[i] = false
			c.gateStart[i] = 0
			c.wayActive[i] = 0
		}
		c.gatePressure = 0
		c.gateHW = 0
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	for i := range c.wbuf {
		c.wbuf[i] = wbEntry{}
	}
	c.useClock = 0
	c.stats = mem.Stats{}
	c.BankConflictCycles = 0
	c.ConflictByKind = [6]int64{}
	c.MSHRStallCycles = 0
	c.WBStallCycles = 0
	c.HitUnderFillCycles = 0
	c.Evictions = 0
	c.DirtyEvictions = 0
	c.SRAMReads, c.SRAMWrites = 0, 0
	c.PrefetchDrops = 0
	c.WayShutdowns, c.WayWakeups, c.WayFlushWBs = 0, 0, 0
	c.wayOffCycles = 0
}
