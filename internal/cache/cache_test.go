package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sttdl1/internal/mem"
)

func cfg64k() Config {
	return Config{
		Name: "t", Size: 64 << 10, Assoc: 2, LineSize: 64, Banks: 4,
		ReadLat: 4, WriteLat: 2, MSHRs: 4, WriteBufDepth: 4,
	}
}

func smallCfg() Config {
	// 4 sets x 2 ways x 64B = 512B: easy to force evictions.
	return Config{
		Name: "small", Size: 512, Assoc: 2, LineSize: 64, Banks: 1,
		ReadLat: 4, WriteLat: 2, MSHRs: 2, WriteBufDepth: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg64k()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Size = 0 },
		func(c *Config) { c.LineSize = 48 }, // not a power of two
		func(c *Config) { c.Banks = 3 },     // not a power of two
		func(c *Config) { c.ReadLat = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.Size = 65 << 10 }, // sets not power of two
		func(c *Config) { c.Assoc = 7 },       // size not divisible
	}
	for i, mutate := range bad {
		c := cfg64k()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestSets(t *testing.T) {
	c := cfg64k()
	if got := c.Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512", got)
	}
}

func TestMissThenHitLatency(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg64k(), next)

	// Cold miss: lookup (4) + next level (10) + critical word (1).
	done := c.Access(0, mem.Req{Addr: 0x100, Bytes: 4, Kind: mem.Read})
	if done != 15 {
		t.Errorf("miss done = %d, want 15", done)
	}
	// Hit on the same line: read latency only.
	done = c.Access(100, mem.Req{Addr: 0x104, Bytes: 4, Kind: mem.Read})
	if done != 104 {
		t.Errorf("hit done = %d, want 104", done)
	}
	// Write hit: write latency.
	done = c.Access(200, mem.Req{Addr: 0x108, Bytes: 4, Kind: mem.Write})
	if done != 202 {
		t.Errorf("write hit done = %d, want 202", done)
	}
	st := c.Stats()
	if st.Reads != 2 || st.ReadHits != 1 || st.Writes != 1 || st.WriteHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestBankOccupancyNonPipelined(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg64k(), next)                                  // ReadInterval defaults to ReadLat = 4
	c.Access(0, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read}) // warm line 0

	// Two back-to-back hits to the same bank serialize at the interval.
	d1 := c.Access(100, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read})
	d2 := c.Access(100, mem.Req{Addr: 0x4, Bytes: 4, Kind: mem.Read})
	if d1 != 104 {
		t.Errorf("first hit done = %d, want 104", d1)
	}
	if d2 != 108 {
		t.Errorf("same-bank hit must wait the 4-cycle interval: done = %d, want 108", d2)
	}
	if c.BankConflictCycles == 0 {
		t.Error("conflict cycles not recorded")
	}
	if c.ConflictByKind[mem.Read] == 0 {
		t.Error("per-kind conflict not recorded")
	}
}

func TestBankOccupancyPipelined(t *testing.T) {
	cfg := cfg64k()
	cfg.ReadLat, cfg.WriteLat = 1, 1
	cfg.ReadInterval, cfg.WriteInterval = 1, 1
	c := New(cfg, &mem.FixedPort{Latency: 10})
	c.Access(0, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read})

	d1 := c.Access(100, mem.Req{Addr: 0x0, Bytes: 4, Kind: mem.Read})
	d2 := c.Access(100, mem.Req{Addr: 0x4, Bytes: 4, Kind: mem.Read})
	if d1 != 101 || d2 != 102 {
		t.Errorf("pipelined bank: %d, %d; want 101, 102", d1, d2)
	}
}

func TestDifferentBanksNoConflict(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg64k(), next)
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})  // bank 0
	c.Access(0, mem.Req{Addr: 64, Bytes: 4, Kind: mem.Read}) // bank 1
	conf := c.BankConflictCycles
	d1 := c.Access(100, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	d2 := c.Access(100, mem.Req{Addr: 64, Bytes: 4, Kind: mem.Read})
	if d1 != 104 || d2 != 104 {
		t.Errorf("different banks must proceed in parallel: %d, %d", d1, d2)
	}
	if c.BankConflictCycles != conf {
		t.Error("no new conflicts expected")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(smallCfg(), &mem.FixedPort{Latency: 10})
	// Set 0 holds lines with addr%256 == 0 (4 sets of 64B): lines 0, 256, 512.
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	c.Access(100, mem.Req{Addr: 256, Bytes: 4, Kind: mem.Read})
	// Touch line 0 so 256 becomes LRU.
	c.Access(200, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	// Fill line 512: must evict 256.
	c.Access(300, mem.Req{Addr: 512, Bytes: 4, Kind: mem.Read})
	if !c.Contains(0) {
		t.Error("MRU line 0 evicted")
	}
	if c.Contains(256) {
		t.Error("LRU line 256 not evicted")
	}
	if !c.Contains(512) {
		t.Error("new line 512 not installed")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(smallCfg(), next)
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Write}) // allocate + dirty
	if !c.Dirty(0) {
		t.Fatal("line 0 must be dirty")
	}
	c.Access(100, mem.Req{Addr: 256, Bytes: 4, Kind: mem.Read})
	before := next.Count
	c.Access(200, mem.Req{Addr: 512, Bytes: 4, Kind: mem.Read}) // evicts dirty 0... LRU is 0? touched at t=0
	// line 0 was LRU (oldest use), so it is the victim and must write back.
	if c.DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.DirtyEvictions)
	}
	if next.Count != before+2 { // fill + writeback
		t.Errorf("next-level accesses = %d, want fill+writeback", next.Count-before)
	}
	if next.Last.Kind != mem.WriteBack && next.Last.Kind != mem.Fill {
		t.Errorf("unexpected last request kind %v", next.Last.Kind)
	}
}

func TestMSHRMerge(t *testing.T) {
	next := &mem.FixedPort{Latency: 50}
	c := New(cfg64k(), next)
	d1 := c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	// Demand to the same line while the fill is outstanding merges into
	// the MSHR instead of re-fetching.
	before := next.Count
	d2 := c.Access(10, mem.Req{Addr: 4, Bytes: 4, Kind: mem.Read})
	if next.Count != before {
		t.Error("merged access must not re-fetch from next level")
	}
	if d2 > d1+1 {
		t.Errorf("merged access done = %d, first = %d", d2, d1)
	}
}

func TestMSHRExhaustionStalls(t *testing.T) {
	cfg := cfg64k()
	cfg.MSHRs = 1
	next := &mem.FixedPort{Latency: 50}
	c := New(cfg, next)
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	// A miss to a different line with the single MSHR busy must wait.
	c.Access(1, mem.Req{Addr: 4096, Bytes: 4, Kind: mem.Read})
	if c.MSHRStallCycles == 0 {
		t.Error("MSHR stall not recorded")
	}
}

func TestPrefetchNonBlocking(t *testing.T) {
	next := &mem.FixedPort{Latency: 50}
	c := New(cfg64k(), next)
	done := c.Access(10, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Prefetch})
	if done != 10 {
		t.Errorf("prefetch must return immediately, got %d", done)
	}
	if !c.Contains(0) {
		t.Error("prefetch must install the line")
	}
	// A prefetch hit is also free.
	done = c.Access(200, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Prefetch})
	if done != 200 {
		t.Errorf("prefetch hit must return immediately, got %d", done)
	}
	st := c.Stats()
	if st.Prefetches != 2 || st.PrefetchHits != 1 {
		t.Errorf("prefetch stats %+v", st)
	}
}

func TestSplitAccessAcrossLines(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg64k(), next)
	// Warm both lines.
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	c.Access(0, mem.Req{Addr: 64, Bytes: 4, Kind: mem.Read})
	st0 := c.Stats()
	// A 16-byte access at offset 56 spans lines 0 and 64.
	c.Access(100, mem.Req{Addr: 56, Bytes: 16, Kind: mem.Read})
	st1 := c.Stats()
	if st1.Reads-st0.Reads != 2 {
		t.Errorf("split access must count two reads, got %d", st1.Reads-st0.Reads)
	}
	// An aligned 16-byte access counts once.
	c.Access(200, mem.Req{Addr: 0, Bytes: 16, Kind: mem.Read})
	st2 := c.Stats()
	if st2.Reads-st1.Reads != 1 {
		t.Errorf("aligned access must count one read, got %d", st2.Reads-st1.Reads)
	}
}

func TestWriteMissAllocates(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(cfg64k(), next)
	done := c.Access(0, mem.Req{Addr: 128, Bytes: 4, Kind: mem.Write})
	// lookup(4 read) + fill(10) + write install (2).
	if done != 16 {
		t.Errorf("write-allocate miss done = %d, want 16", done)
	}
	if !c.Contains(128) || !c.Dirty(128) {
		t.Error("write miss must allocate a dirty line")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(smallCfg(), &mem.FixedPort{Latency: 10})
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Write})
	c.Reset()
	if c.ResidentLines() != 0 || c.Stats().Accesses() != 0 || c.BankConflictCycles != 0 {
		t.Error("reset incomplete")
	}
}

func TestResetTimingKeepsContents(t *testing.T) {
	c := New(smallCfg(), &mem.FixedPort{Latency: 10})
	c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	c.ResetTiming()
	if !c.Contains(0) {
		t.Error("ResetTiming must keep resident lines")
	}
	if c.Stats().Accesses() != 0 {
		t.Error("ResetTiming must clear stats")
	}
	// The bank clock is back at zero: an access at t=0 is unobstructed.
	if done := c.Access(0, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read}); done != 4 {
		t.Errorf("post-reset hit done = %d, want 4", done)
	}
}

// Property: occupancy never exceeds capacity, and completion times are
// never before the request time, under random access streams.
func TestRandomStreamInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(smallCfg(), &mem.FixedPort{Latency: 10})
		capacity := smallCfg().Size / smallCfg().LineSize
		now := int64(0)
		for i := 0; i < 500; i++ {
			now += int64(r.Intn(5))
			kind := mem.Read
			if r.Intn(3) == 0 {
				kind = mem.Write
			}
			addr := mem.Addr(r.Intn(4096)) &^ 3
			done := c.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: kind})
			if done < now {
				t.Logf("done %d before now %d", done, now)
				return false
			}
			if c.ResidentLines() > capacity {
				t.Logf("occupancy %d > capacity %d", c.ResidentLines(), capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the cache is deterministic — identical streams produce
// identical timing.
func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		r := rand.New(rand.NewSource(7))
		c := New(cfg64k(), &mem.FixedPort{Latency: 12})
		var out []int64
		now := int64(0)
		for i := 0; i < 2000; i++ {
			now += int64(r.Intn(3))
			addr := mem.Addr(r.Intn(1 << 18))
			out = append(out, c.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: mem.Read}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at access %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Name: "bad"}, &mem.FixedPort{})
}

func TestNewPanicsOnNilNext(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg64k(), nil)
}
