package cache

import (
	"math/rand"
	"testing"

	"sttdl1/internal/mem"
)

// hybridCfg is smallCfg with one SRAM way in front of one STT way.
func hybridCfg() Config {
	c := smallCfg()
	c.SRAMWays = 1
	return c
}

func TestHybridValidate(t *testing.T) {
	good := hybridCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hybrid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SRAMWays = -1 },
		func(c *Config) { c.SRAMWays = c.Assoc + 1 },
		func(c *Config) { c.ShutdownInterval = -4 },
	}
	for i, mutate := range bad {
		c := hybridCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestSRAMWayHitIsFast(t *testing.T) {
	next := &mem.FixedPort{Latency: 10}
	c := New(hybridCfg(), next)
	// A read miss steers its fill into the SRAM partition (way 0).
	done := c.Access(0, mem.Req{Addr: 0x000, Bytes: 4, Kind: mem.Read})
	// Hit in the SRAM way once the fill lands: 1-cycle latency, not the
	// STT partition's 4 cycles.
	hit := c.Access(done+10, mem.Req{Addr: 0x004, Bytes: 4, Kind: mem.Read})
	if got := hit - (done + 10); got != 1 {
		t.Errorf("SRAM-way hit latency %d, want 1", got)
	}
	if c.SRAMReads == 0 {
		t.Error("SRAM partition hit not counted")
	}
	// A write miss steers into the STT partition: its hit pays WriteLat.
	wd := c.Access(1000, mem.Req{Addr: 0x4000, Bytes: 4, Kind: mem.Write})
	whit := c.Access(wd+10, mem.Req{Addr: 0x4004, Bytes: 4, Kind: mem.Write})
	if got := whit - (wd + 10); got != 2 {
		t.Errorf("STT-way write-hit latency %d, want 2", got)
	}
}

// TestSRAMWayMonotonicity: growing the SRAM partition from 1 way to all
// ways can only help a read-only stream — LRU's stack property keeps
// every 1-way read hit a 2-way read hit (same sets, more ways), and
// every SRAM latency is <= its STT counterpart.
func TestSRAMWayMonotonicity(t *testing.T) {
	run := func(sramWays int) int64 {
		cfg := smallCfg()
		cfg.SRAMWays = sramWays
		c := New(cfg, &mem.FixedPort{Latency: 10})
		now := int64(0)
		// A looping strided read stream with reuse, wider than one way's
		// capacity of a set.
		for i := 0; i < 400; i++ {
			addr := mem.Addr((i * 3 % 24) * 64)
			now = c.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: mem.Read})
		}
		return now
	}
	one, all := run(1), run(2)
	if all > one {
		t.Errorf("all-SRAM run slower than 1-way hybrid: %d > %d cycles", all, one)
	}
}

// TestShutdownDisabledByHugeInterval: an interval longer than the run
// never reaches a boundary, so the timing is cycle-identical to the
// mechanism being off.
func TestShutdownDisabledByHugeInterval(t *testing.T) {
	stream := func(c *Cache) []int64 {
		var dones []int64
		now := int64(0)
		for i := 0; i < 300; i++ {
			kind := mem.Read
			if i%5 == 0 {
				kind = mem.Write
			}
			addr := mem.Addr((i * 7 % 32) * 64)
			done := c.Access(now, mem.Req{Addr: addr, Bytes: 4, Kind: kind})
			dones = append(dones, done)
			now = done
		}
		return dones
	}
	base := New(smallCfg(), &mem.FixedPort{Latency: 10})
	cfg := smallCfg()
	cfg.ShutdownInterval = 1 << 40
	huge := New(cfg, &mem.FixedPort{Latency: 10})
	a, b := stream(base), stream(huge)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: baseline done %d, huge-interval done %d", i, a[i], b[i])
		}
	}
	if huge.WayShutdowns != 0 || huge.OffCyclesAt(1<<30) != 0 {
		t.Error("huge interval must never gate")
	}
}

func TestShutdownGatesColdWay(t *testing.T) {
	cfg := smallCfg()
	cfg.ShutdownInterval = 256
	c := New(cfg, &mem.FixedPort{Latency: 10})
	// Touch exactly one line per set: way 1 never sees a hit or fill, so
	// the first boundary with way-1 activity at zero gates it.
	now := int64(0)
	for round := 0; round < 40; round++ {
		for set := 0; set < 4; set++ {
			now = c.Access(now, mem.Req{Addr: mem.Addr(set * 64), Bytes: 4, Kind: mem.Read})
		}
	}
	if c.WayShutdowns == 0 {
		t.Fatal("cold way never gated")
	}
	gated := c.GatedWays()
	if gated == nil || gated[0] || !gated[1] {
		t.Fatalf("gated = %v, want only way 1 gated", gated)
	}
	if c.OffCyclesAt(now) <= 0 {
		t.Error("no off-cycles accumulated for the gated way")
	}
	// The gated way must be invisible to replacement: a conflicting line
	// still lands in way 0 and the old line misses afterwards (no stale
	// reads after shutdown).
	st := c.Stats()
	now = c.Access(now, mem.Req{Addr: mem.Addr(8 * 64), Bytes: 4, Kind: mem.Read}) // same set 0, new tag
	if c.Stats().ReadHits != st.ReadHits {
		t.Error("conflicting read must miss")
	}
	now = c.Access(now, mem.Req{Addr: 0, Bytes: 4, Kind: mem.Read})
	_ = now
}

func TestShutdownPressureWakesWays(t *testing.T) {
	cfg := smallCfg()
	cfg.ShutdownInterval = 256
	c := New(cfg, &mem.FixedPort{Latency: 10})
	now := int64(0)
	// Phase 1: one-line-per-set stream gates way 1.
	for round := 0; round < 40; round++ {
		for set := 0; set < 4; set++ {
			now = c.Access(now, mem.Req{Addr: mem.Addr(set * 64), Bytes: 4, Kind: mem.Read})
		}
	}
	if c.WayShutdowns == 0 {
		t.Fatal("setup: way never gated")
	}
	// Phase 2: a working set larger than the surviving capacity evicts
	// valid lines from the gateable partition; the next boundary wakes
	// the gated way back up.
	for round := 0; round < 40; round++ {
		for i := 0; i < 12; i++ {
			now = c.Access(now, mem.Req{Addr: mem.Addr(i * 64), Bytes: 4, Kind: mem.Read})
		}
	}
	if c.WayWakeups == 0 {
		t.Error("capacity pressure never woke the gated way")
	}
}

func TestShutdownFlushesDirtyLines(t *testing.T) {
	cfg := smallCfg()
	cfg.ShutdownInterval = 256
	next := &countPort{}
	c := New(cfg, next)
	now := int64(0)
	// Two writes per set dirty a line in each way.
	for set := 0; set < 4; set++ {
		now = c.Access(now, mem.Req{Addr: mem.Addr(set * 64), Bytes: 4, Kind: mem.Write})
		now = c.Access(now, mem.Req{Addr: mem.Addr((set + 4) * 64), Bytes: 4, Kind: mem.Write})
	}
	// Now both ways hold dirty lines. Touch only way-0 residents until a
	// boundary gates way 1; its dirty lines must write back on the gate.
	wbBefore := next.writebacks
	for round := 0; round < 80; round++ {
		for set := 0; set < 4; set++ {
			now = c.Access(now, mem.Req{Addr: mem.Addr(set * 64), Bytes: 4, Kind: mem.Read})
		}
	}
	if c.WayShutdowns == 0 {
		t.Skip("way never gated under this stream (LRU kept it warm)")
	}
	if c.WayFlushWBs == 0 || next.writebacks == wbBefore {
		t.Error("gating a way holding dirty lines must write them back")
	}
}

// countPort counts accesses by kind behind the cache under test.
type countPort struct {
	reads, writes, writebacks, fills int
}

func (p *countPort) Access(now int64, req mem.Req) int64 {
	switch req.Kind {
	case mem.WriteBack:
		p.writebacks++
		return now + 2
	case mem.Write:
		p.writes++
		return now + 2
	case mem.Fill:
		p.fills++
		return now + 10
	default:
		p.reads++
		return now + 10
	}
}

func TestPrefetchDroppedWhenMSHRsFull(t *testing.T) {
	cfg := smallCfg() // 2 MSHRs
	c := New(cfg, &mem.FixedPort{Latency: 50})
	// Two outstanding demand misses occupy both MSHRs.
	c.Access(0, mem.Req{Addr: 0x000, Bytes: 4, Kind: mem.Read})
	c.Access(1, mem.Req{Addr: 0x040, Bytes: 4, Kind: mem.Read})
	drops := c.PrefetchDrops
	done := c.Access(2, mem.Req{Addr: 0x080, Bytes: 4, Kind: mem.Prefetch})
	if c.PrefetchDrops != drops+1 {
		t.Fatalf("PrefetchDrops = %d, want %d", c.PrefetchDrops, drops+1)
	}
	// Dropped: nothing installed, the line still misses later.
	hits := c.Stats().ReadHits
	c.Access(500, mem.Req{Addr: 0x080, Bytes: 4, Kind: mem.Read})
	if c.Stats().ReadHits != hits {
		t.Error("dropped prefetch still installed its line")
	}
	// Non-blocking either way: the hint returns at its own issue time
	// (after the probe's bank wait), never the fill completion.
	if done >= 50 {
		t.Errorf("dropped prefetch blocked until the fill: done = %d", done)
	}
}

func TestHybridRandomInvariants(t *testing.T) {
	// The shadow-oracle equivalent lives in internal/check; here, pin
	// basic sanity of the hybrid/shutdown cache under a random stream:
	// timestamps never run backward per bank, and the partition counters
	// stay consistent with the recorded stats.
	cfg := hybridCfg()
	cfg.ShutdownInterval = 512
	c := New(cfg, &mem.FixedPort{Latency: 10})
	now := int64(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		kinds := []mem.Kind{mem.Read, mem.Write, mem.Prefetch}
		req := mem.Req{
			Addr:  mem.Addr(rng.Intn(64) * 64),
			Bytes: 4,
			Kind:  kinds[rng.Intn(len(kinds))],
		}
		done := c.Access(now, req)
		if req.Kind != mem.Prefetch && done < now {
			t.Fatalf("access %d: done %d < now %d", i, done, now)
		}
		if req.Kind != mem.Prefetch {
			now = done
		}
	}
	if c.SRAMReads == 0 && c.SRAMWrites == 0 {
		t.Error("hybrid run never touched the SRAM partition")
	}
}
