package stats

import (
	"fmt"
	"sync"
	"time"
)

// RunEvent describes one completed task inside a (possibly parallel)
// experiment batch. The run engine emits exactly one event per task
// actually executed — memoized cache hits and deduplicated duplicate
// requests do not produce events. The JSON form is the wire format the
// sweep service's event stream carries (internal/serve); Wall marshals
// as integer nanoseconds.
type RunEvent struct {
	// Key is the engine's deduplication key for the run.
	Key string `json:"key"`
	// Label is a human-readable description ("gemm on stt-vwb").
	Label string `json:"label"`
	// Wall is the wall-clock time the task itself took to execute.
	Wall time.Duration `json:"wall_ns"`
	// Cached reports that the task was served from the persistent
	// evaluation store (internal/store) rather than simulated — the
	// timing model never ran.
	Cached bool `json:"cached,omitempty"`

	// Counter snapshot at the moment the event is emitted.
	Done     int `json:"done"`      // tasks completed so far, this one included
	InFlight int `json:"in_flight"` // tasks currently executing on a worker
	Queued   int `json:"queued"`    // tasks waiting for a free worker slot
}

// ProgressFunc observes RunEvents. The run engine delivers events one at
// a time (it holds its own lock while calling), so implementations need
// no synchronization of their own against other events — only against
// readers on other goroutines.
type ProgressFunc func(RunEvent)

// SearchEvent describes one completed generation of a guided
// design-space search (internal/dse.Search). The search engine emits
// exactly one event per generation, serially, after the generation's
// full-suite evaluations have landed.
type SearchEvent struct {
	// Generation is the 0-based generation number.
	Generation int `json:"generation"`
	// Candidates counts the new genomes proposed this generation.
	Candidates int `json:"candidates"`
	// Promoted counts the rung survivors promoted to the full suite.
	Promoted int `json:"promoted"`
	// Aborted counts this generation's full evaluations stopped early
	// because their partial objective vector was provably dominated.
	Aborted int `json:"aborted"`
	// FullEvals is the cumulative full-suite evaluation count — the
	// budget consumed so far, aborted evaluations included.
	FullEvals int `json:"full_evals"`
	// Budget is the search's full-suite evaluation budget.
	Budget int `json:"budget"`
	// Archive counts the completed evaluations retained so far.
	Archive int `json:"archive"`
	// Frontier counts the archive's current non-dominated points.
	Frontier int `json:"frontier"`
}

// SearchProgressFunc observes SearchEvents. Events arrive serially from
// the search loop, so implementations need no synchronization against
// other events.
type SearchProgressFunc func(SearchEvent)

// Counters aggregates RunEvents into the queue-depth and timing
// telemetry the CLI's summary line prints. Safe for concurrent use.
type Counters struct {
	mu          sync.Mutex
	runs        int
	cached      int
	wall        time.Duration
	maxInFlight int
	maxQueued   int
}

// Observe folds one event into the counters; pass it (or a wrapper) as a
// ProgressFunc.
func (c *Counters) Observe(ev RunEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if ev.Cached {
		c.cached++
	}
	c.wall += ev.Wall
	if ev.InFlight > c.maxInFlight {
		c.maxInFlight = ev.InFlight
	}
	if ev.Queued > c.maxQueued {
		c.maxQueued = ev.Queued
	}
}

// Runs returns the number of tasks observed.
func (c *Counters) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// BusyTime returns the summed wall time of all observed tasks — the
// serial-equivalent cost of the batch.
func (c *Counters) BusyTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wall
}

// MaxInFlight returns the peak number of concurrently executing tasks.
func (c *Counters) MaxInFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxInFlight
}

// MaxQueued returns the peak number of tasks waiting for a worker.
func (c *Counters) MaxQueued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxQueued
}

// Cached returns the number of observed tasks served from the
// persistent evaluation store.
func (c *Counters) Cached() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cached
}

// Snapshot is a point-in-time, wire-serializable aggregate of a
// Counters — the progress payload sweep-service workers put in their
// lease heartbeats and the server folds into a job's event stream
// (internal/serve).
type Snapshot struct {
	// Runs counts the tasks observed so far.
	Runs int `json:"runs"`
	// Cached counts the observed tasks served from the persistent store.
	Cached int `json:"cached,omitempty"`
	// BusyNS is the summed wall time of the observed tasks, in
	// nanoseconds — the serial-equivalent cost so far.
	BusyNS int64 `json:"busy_ns"`
	// MaxInFlight and MaxQueued are the peak engine queue depths.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueued   int `json:"max_queued"`
}

// Snapshot captures the counters' current values.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Runs:        c.runs,
		Cached:      c.cached,
		BusyNS:      int64(c.wall),
		MaxInFlight: c.maxInFlight,
		MaxQueued:   c.maxQueued,
	}
}

// Summary renders the counters as one line, e.g.
// "96 sims, 12.1s simulated work (peak 8 running / 41 queued)"; when
// any task was served from the persistent store the cached share is
// named: "96 sims (90 from store), ...". A store-less run renders
// exactly as before.
func (c *Counters) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	sims := fmt.Sprintf("%d sims", c.runs)
	if c.cached > 0 {
		sims = fmt.Sprintf("%d sims (%d from store)", c.runs, c.cached)
	}
	return fmt.Sprintf("%s, %s simulated work (peak %d running / %d queued)",
		sims, c.wall.Round(time.Millisecond), c.maxInFlight, c.maxQueued)
}
