// Package stats holds the small numeric and formatting helpers shared by
// the experiment runners: penalty arithmetic, aggregation, and
// paper-style text tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Penalty returns the percentage slowdown of v relative to base, the
// paper's primary metric ("SRAM D-cache baseline = 100%").
func Penalty(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(v-base) / float64(base)
}

// Gain returns the percentage speedup of opt relative to base (Fig. 9's
// "performance gain" metric).
func Gain(base, opt int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-opt) / float64(base)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMeanRatio returns the geometric mean of (100+x)/100 slowdown
// factors, expressed back as a percentage penalty. More robust than the
// arithmetic mean when penalties vary widely.
func GeoMeanRatio(penalties []float64) float64 {
	if len(penalties) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range penalties {
		s += math.Log(1 + p/100)
	}
	return 100 * (math.Exp(s/float64(len(penalties))) - 1)
}

// Shares normalizes xs to percentages of their positive sum; negative
// entries contribute zero (used for contribution breakdowns).
func Shares(xs []float64) []float64 {
	total := 0.0
	clamped := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			clamped[i] = x
			total += x
		}
	}
	out := make([]float64, len(xs))
	if total == 0 {
		return out
	}
	for i, x := range clamped {
		out[i] = 100 * x / total
	}
	return out
}

// Series is one named sequence of per-benchmark values (a bar group of a
// paper figure).
type Series struct {
	Label  string
	Values []float64
}

// Figure is the data behind one paper figure: per-benchmark groups of
// series values plus an AVERAGE column.
type Figure struct {
	ID      string // "fig1", ...
	Title   string
	Metric  string // y-axis label, e.g. "Performance Penalty (%)"
	Benches []string
	Series  []Series
	// Notes carries reproduction commentary shown under the figure.
	Notes []string
}

// WithAverage returns a copy of f with an AVERAGE column appended to
// every series.
func (f Figure) WithAverage() Figure {
	out := f
	out.Benches = append(append([]string{}, f.Benches...), "AVERAGE")
	out.Series = make([]Series, len(f.Series))
	for i, s := range f.Series {
		vs := append([]float64{}, s.Values...)
		vs = append(vs, Mean(s.Values))
		out.Series[i] = Series{Label: s.Label, Values: vs}
	}
	return out
}

// Render draws the figure as a fixed-width text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "metric: %s\n", f.Metric)

	w := 10
	for _, bn := range f.Benches {
		if len(bn)+2 > w {
			w = len(bn) + 2
		}
	}
	lw := 28
	for _, s := range f.Series {
		if len(s.Label)+2 > lw {
			lw = len(s.Label) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", lw, "")
	for _, bn := range f.Benches {
		fmt.Fprintf(&b, "%*s", w, bn)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s", lw, s.Label)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%*.1f", w, v)
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Table is a generic text table (Table I and ablation summaries).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Head returns a copy of t keeping only the first n rows (columns and
// notes intact); n <= 0 or n >= len(rows) returns t unchanged. A note
// records how many rows were dropped, so truncated tables are never
// mistaken for complete ones.
func (t Table) Head(n int) Table {
	if n <= 0 || n >= len(t.Rows) {
		return t
	}
	out := t
	out.Rows = t.Rows[:n]
	out.Notes = append(append([]string{}, t.Notes...),
		fmt.Sprintf("showing %d of %d rows", n, len(t.Rows)))
	return out
}

// Window returns a copy of t keeping rows [offset, offset+limit)
// (columns and notes intact). offset <= 0 starts at the first row;
// limit <= 0 keeps everything from offset on; an offset past the end
// yields an empty row set. Like Head, a window that actually drops
// rows records a note, so a page is never mistaken for the whole
// table — and a no-op window returns t unchanged, preserving the
// byte-identity contract of un-paginated output.
func (t Table) Window(offset, limit int) Table {
	total := len(t.Rows)
	lo := offset
	if lo < 0 {
		lo = 0
	}
	if lo > total {
		lo = total
	}
	hi := total
	if limit > 0 && lo+limit < total {
		hi = lo + limit
	}
	if lo == 0 && hi == total {
		return t
	}
	out := t
	out.Rows = t.Rows[lo:hi]
	note := fmt.Sprintf("showing rows %d-%d of %d", lo+1, hi, total)
	if lo >= hi {
		note = fmt.Sprintf("showing 0 of %d rows", total)
	}
	out.Notes = append(append([]string{}, t.Notes...), note)
	return out
}

// Render draws the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values (series per row),
// for plotting outside the CLI.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series")
	for _, bn := range f.Benches {
		b.WriteByte(',')
		b.WriteString(bn)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		b.WriteString(csvEscape(s.Label))
		for _, v := range s.Values {
			fmt.Fprintf(&b, ",%.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
