package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPenaltyAndGain(t *testing.T) {
	if got := Penalty(100, 154); got != 54 {
		t.Errorf("Penalty = %v", got)
	}
	if got := Penalty(100, 92); got != -8 {
		t.Errorf("negative penalty = %v", got)
	}
	if Penalty(0, 5) != 0 {
		t.Error("zero base must not divide")
	}
	if got := Gain(200, 100); got != 50 {
		t.Errorf("Gain = %v", got)
	}
	if Gain(0, 5) != 0 {
		t.Error("zero base gain")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMeanRatio(t *testing.T) {
	if GeoMeanRatio(nil) != 0 {
		t.Error("empty geomean")
	}
	// Uniform penalties pass through unchanged.
	if got := GeoMeanRatio([]float64{25, 25}); math.Abs(got-25) > 1e-9 {
		t.Errorf("uniform geomean = %v", got)
	}
	// Geomean of x% and 0% is below the arithmetic mean.
	am := Mean([]float64{50, 0})
	gm := GeoMeanRatio([]float64{50, 0})
	if gm >= am {
		t.Errorf("geomean %v must be < arithmetic mean %v", gm, am)
	}
}

func TestShares(t *testing.T) {
	got := Shares([]float64{30, 10, -5})
	if got[0] != 75 || got[1] != 25 || got[2] != 0 {
		t.Errorf("shares = %v", got)
	}
	if got := Shares([]float64{-1, -2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("all-negative shares = %v", got)
	}
}

func TestSharesSumProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a), float64(b), float64(c)}
		sh := Shares(xs)
		sum := sh[0] + sh[1] + sh[2]
		if a == 0 && b == 0 && c == 0 {
			return sum == 0
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigureWithAverage(t *testing.T) {
	f := Figure{
		ID:      "figx",
		Benches: []string{"a", "b"},
		Series:  []Series{{Label: "s", Values: []float64{10, 30}}},
	}
	g := f.WithAverage()
	if len(g.Benches) != 3 || g.Benches[2] != "AVERAGE" {
		t.Errorf("benches = %v", g.Benches)
	}
	if got := g.Series[0].Values[2]; got != 20 {
		t.Errorf("average = %v", got)
	}
	// The original must be untouched.
	if len(f.Benches) != 2 || len(f.Series[0].Values) != 2 {
		t.Error("WithAverage mutated the receiver")
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID:      "fig1",
		Title:   "Test figure",
		Metric:  "Penalty (%)",
		Benches: []string{"gemm", "atax"},
		Series:  []Series{{Label: "Drop-in", Values: []float64{42.123, 7}}},
		Notes:   []string{"a note"},
	}
	out := f.Render()
	for _, want := range []string{"FIG1", "Test figure", "gemm", "atax", "Drop-in", "42.1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:      "table1",
		Title:   "Params",
		Columns: []string{"Parameter", "SRAM", "STT"},
		Rows: [][]string{
			{"Read Latency", "0.787ns", "3.37ns"},
			{"Area", "146F2", "42F2"},
		},
		Notes: []string{"calibrated"},
	}
	out := tb.Render()
	for _, want := range []string{"TABLE1", "Read Latency", "3.37ns", "146F2", "note: calibrated", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns must align: every row line has the same prefix width up to
	// the second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("short render:\n%s", out)
	}
}

func TestTableHead(t *testing.T) {
	tb := Table{
		Columns: []string{"p", "v"},
		Rows:    [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}},
		Notes:   []string{"orig"},
	}
	h := tb.Head(2)
	if len(h.Rows) != 2 || h.Rows[1][0] != "b" {
		t.Errorf("Head(2) rows = %v", h.Rows)
	}
	if len(h.Notes) != 2 || h.Notes[1] != "showing 2 of 3 rows" {
		t.Errorf("Head(2) notes = %v", h.Notes)
	}
	if len(tb.Notes) != 1 || len(tb.Rows) != 3 {
		t.Error("Head mutated the original table")
	}
	for _, n := range []int{0, -1, 3, 10} {
		h := tb.Head(n)
		if len(h.Rows) != 3 || len(h.Notes) != 1 {
			t.Errorf("Head(%d) should be a no-op, got %d rows %d notes", n, len(h.Rows), len(h.Notes))
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		Benches: []string{"a", "b"},
		Series:  []Series{{Label: "x,y", Values: []float64{1, 2.5}}},
	}
	out := f.CSV()
	want := "series,a,b\n\"x,y\",1.000,2.500\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Columns: []string{"p", "v"},
		Rows:    [][]string{{"read", "3.37ns"}},
	}
	if out := tb.CSV(); out != "p,v\nread,3.37ns\n" {
		t.Errorf("CSV = %q", out)
	}
}
