// Package sim assembles the paper's evaluation platform: a 1 GHz
// Cortex-A9-like core (internal/cpu) with a 32 KB 2-way SRAM IL1, a
// 64 KB 2-way DL1 whose technology (SRAM or STT-MRAM) and front-end
// (direct / VWB / L0 / EMSHR) are the experimental variables, a 2 MB
// 16-way unified SRAM L2, and DRAM — gem5's SE-mode setup from §VI.
package sim

import (
	"fmt"

	"sttdl1/internal/cache"
	"sttdl1/internal/check"
	"sttdl1/internal/compile"
	"sttdl1/internal/core"
	"sttdl1/internal/cpu"
	"sttdl1/internal/ir"
	"sttdl1/internal/mem"
	"sttdl1/internal/tech"
)

// FrontEndKind selects the structure between the core and the DL1.
type FrontEndKind int

// Front-end choices.
const (
	FEDirect FrontEndKind = iota // no buffer: SRAM baseline / drop-in NVM
	FEVWB                        // the paper's Very Wide Buffer
	FEL0                         // Fig. 8 comparison: small L0 cache
	FEEMSHR                      // Fig. 8 comparison: enhanced MSHR
	FEBypass                     // prediction-driven NVM read-bypass (Kokolis-style)
)

var feNames = [...]string{"direct", "vwb", "l0", "emshr", "bypass"}

func (k FrontEndKind) String() string {
	if int(k) < len(feNames) {
		return feNames[k]
	}
	return fmt.Sprintf("fe(%d)", int(k))
}

// Config is one platform configuration.
type Config struct {
	Name string

	// DL1Cell is the DL1 bit-cell technology (tech.SRAM6T or
	// tech.STT2T2MTJ for the paper's two columns of Table I).
	DL1Cell tech.CellKind
	// DL1Banks is the banked-array split of the DL1 (paper §IV: "we have
	// simulated a banked NVM array").
	DL1Banks int

	// FrontEnd picks the DL1 front-end structure.
	FrontEnd FrontEndKind
	// BufferBits sizes the VWB/L0/EMSHR (2048 = the paper's 2 Kbit).
	BufferBits int

	// Compile selects the code transformations.
	Compile compile.Options

	// CPU overrides the core model; zero value means cpu.DefaultConfig.
	CPU cpu.Config

	// FreqGHz is the core clock (1 GHz in the paper).
	FreqGHz float64

	// DL1ReadLat/DL1WriteLat override the technology model's DL1
	// latencies in cycles (0 = use the model). Used by the read-latency
	// sensitivity ablation.
	DL1ReadLat, DL1WriteLat int64

	// VWBPolicy selects the buffer eviction policy (ablation).
	VWBPolicy core.EvictPolicy

	// VWBTransfer overrides the VWB row-transfer delay in cycles
	// (0 = default 1; words stream into the row in access order).
	VWBTransfer int64

	// BypassPredEntries sizes the FEBypass stride predictor's stream
	// table (0 = default 16; negative disables prediction, making the
	// front-end an exact pass-through — the metamorphic baseline).
	BypassPredEntries int

	// SRAMWays makes the NVM DL1 a Khoshavi-style hybrid: the first
	// SRAMWays ways of each set are built from SRAM cells (fast, own
	// pipelined bank clocks) with read-class fill steering into them;
	// the rest keep the configured NVM technology. Requires an NVM
	// DL1Cell; 0 (the default) is the homogeneous array.
	SRAMWays int

	// ShutdownInterval, when positive, enables Mittal-style dynamic way
	// shutdown of the DL1's cold NVM ways: every interval (in cycles) a
	// way with no activity is flushed and power-gated, and capacity
	// pressure wakes the gated ways. Gated way-cycles are credited
	// against the DL1's leakage by internal/energy. Requires an NVM
	// DL1Cell; 0 disables.
	ShutdownInterval int64

	// ColdStart skips the warm-up pass: by default a run executes the
	// kernel once to warm the hierarchy, resets all clocks and counters
	// (keeping cache contents), and measures a second execution —
	// standard steady-state simulation methodology.
	ColdStart bool

	// IL1Cell optionally replaces the instruction cache's technology
	// (default SRAM). Setting it to tech.STT2T2MTJ reproduces the
	// authors' earlier I-cache study (Komalan et al., DATE'14).
	IL1Cell tech.CellKind
	// IL1FrontEnd optionally puts a buffer structure in front of the
	// IL1 (FEEMSHR is the DATE'14 proposal; FEDirect means none).
	IL1FrontEnd FrontEndKind

	// Check wraps every hierarchy port (front-end, IL1, DL1, L2, DRAM)
	// in the internal/check timing oracle: causality, busy-clock
	// monotonicity and shadow-state agreement are verified on every
	// access, and a run that violates the timing contract fails with
	// the violation list (DESIGN.md §7.2). The wrapper is pass-through,
	// so checked runs report identical cycle counts.
	Check bool
}

// Platform cache geometry (paper §VI).
const (
	IL1Size  = 32 << 10
	IL1Assoc = 2
	DL1Size  = 64 << 10
	DL1Assoc = 2
	L2Size   = 2 << 20
	L2Assoc  = 16
	L2Line   = 64
	// L2 latency in core cycles (array + interconnect, gem5-like).
	L2Lat = 10
)

// BaselineSRAM is the paper's reference configuration.
func BaselineSRAM() Config {
	return Config{Name: "sram-baseline", DL1Cell: tech.SRAM6T, FrontEnd: FEDirect}
}

// DropInSTT is §III's motivation experiment: STT-MRAM DL1, no other help.
func DropInSTT() Config {
	return Config{Name: "stt-dropin", DL1Cell: tech.STT2T2MTJ, FrontEnd: FEDirect}
}

// ProposalVWB is the paper's proposal: STT-MRAM DL1 behind a 2 Kbit VWB.
func ProposalVWB() Config {
	return Config{Name: "stt-vwb", DL1Cell: tech.STT2T2MTJ, FrontEnd: FEVWB, BufferBits: 2048}
}

func (c Config) withDefaults() Config {
	if c.DL1Banks <= 0 {
		c.DL1Banks = 4
	}
	if c.BufferBits <= 0 {
		c.BufferBits = 2048
	}
	if c.FreqGHz <= 0 {
		c.FreqGHz = 1.0
	}
	if c.CPU.IssueWidth == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	return c
}

// DL1Line returns the DL1 line size used in the simulator: 64 B for every
// technology. Table I reports a narrower (256-bit) natural line for the
// SRAM array, but the paper's gem5 experiments replace the SRAM D-cache
// "by a NVM counterpart with similar characteristics (size,
// associativity...)" — keeping the line size equal isolates the latency
// effect, so we do the same and treat the line-width row of Table I as a
// technology observation.
func DL1Line(cell tech.CellKind) int { return 64 }

// System is one assembled platform.
type System struct {
	Cfg  Config
	CPU  *cpu.CPU
	IL1  *cache.Cache
	DL1  *cache.Cache
	L2   *cache.Cache
	DRAM *mem.DRAM
	FE   core.FrontEnd
	// DL1Model is the technology model behind the DL1 latencies.
	DL1Model tech.Model

	// checks holds the timing-oracle wrappers when Cfg.Check is set
	// (empty otherwise); runOnce turns their violations into an error.
	checks []*check.Port
}

// New assembles a platform.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()

	line := DL1Line(cfg.DL1Cell)
	arr := tech.DefaultArray(cfg.DL1Cell)
	model, err := tech.Compute(arr)
	if err != nil {
		return nil, fmt.Errorf("sim: DL1 tech model: %w", err)
	}
	rd, wr := model.CyclesAt(cfg.FreqGHz)
	if cfg.DL1ReadLat > 0 {
		rd = cfg.DL1ReadLat
	}
	if cfg.DL1WriteLat > 0 {
		wr = cfg.DL1WriteLat
	}

	// wrap interposes the timing oracle when the configuration asks for
	// checking; otherwise ports connect directly.
	var checks []*check.Port
	wrap := func(name string, p mem.Port) mem.Port {
		if !cfg.Check {
			return p
		}
		cp := check.Wrap(name, p)
		checks = append(checks, cp)
		return cp
	}

	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	l2 := cache.New(cache.Config{
		Name: "L2", Size: L2Size, Assoc: L2Assoc, LineSize: L2Line, Banks: 8,
		ReadLat: L2Lat, WriteLat: L2Lat, ReadInterval: 2, WriteInterval: 2,
		MSHRs: 16, WriteBufDepth: 8,
	}, wrap("DRAM", dram))
	l2Port := wrap("L2", l2)
	il1Cfg := cache.Config{
		Name: "IL1", Size: IL1Size, Assoc: IL1Assoc, LineSize: 64, Banks: 2,
		ReadLat: 1, WriteLat: 1, ReadInterval: 1, WriteInterval: 1,
		MSHRs: 2, WriteBufDepth: 2,
	}
	if cfg.IL1Cell != tech.SRAM6T {
		im := tech.MustCompute(tech.DefaultArray(cfg.IL1Cell))
		ir_, iw := im.CyclesAt(cfg.FreqGHz)
		// The NVM instruction array is non-pipelined like the DL1.
		il1Cfg.ReadLat, il1Cfg.WriteLat = ir_, iw
		il1Cfg.ReadInterval, il1Cfg.WriteInterval = 0, 0
	}
	il1 := cache.New(il1Cfg, l2Port)
	imem := wrap("IL1", il1)
	switch cfg.IL1FrontEnd {
	case FEDirect:
		// fetch straight from the IL1
	case FEEMSHR:
		imem = wrap("IL1-emshr", core.NewEMSHR(core.EMSHRConfig{SizeBits: cfg.BufferBits, LineSize: 64, HitLat: 1, BeatBytes: 32}, imem))
	default:
		return nil, fmt.Errorf("sim: unsupported IL1 front-end %v", cfg.IL1FrontEnd)
	}
	// SRAM arrays at core clock are pipelined (initiation interval 1);
	// the STT-MRAM array's long differential sense is not — an access
	// occupies its bank for the full latency, which is exactly the
	// promotion-conflict effect §IV describes for the banked NVM array.
	dl1Cfg := cache.Config{
		Name: "DL1", Size: DL1Size, Assoc: DL1Assoc, LineSize: line, Banks: cfg.DL1Banks,
		ReadLat: rd, WriteLat: wr, MSHRs: 4, WriteBufDepth: 4,
	}
	if cfg.DL1Cell == tech.SRAM6T {
		dl1Cfg.ReadInterval, dl1Cfg.WriteInterval = 1, 1
	}
	if cfg.SRAMWays != 0 || cfg.ShutdownInterval != 0 {
		// Hybrid partitioning and way shutdown are defined against an
		// NVM array (the SRAM partition's latencies come from the SRAM
		// technology model; shutdown's leakage credit prices NVM ways).
		if cfg.DL1Cell == tech.SRAM6T {
			return nil, fmt.Errorf("sim: SRAMWays/ShutdownInterval require an NVM DL1 cell")
		}
		if cfg.SRAMWays < 0 || cfg.SRAMWays > DL1Assoc {
			return nil, fmt.Errorf("sim: SRAMWays %d outside [0, %d]", cfg.SRAMWays, DL1Assoc)
		}
		if cfg.ShutdownInterval < 0 {
			return nil, fmt.Errorf("sim: ShutdownInterval must be non-negative")
		}
		dl1Cfg.SRAMWays = cfg.SRAMWays
		dl1Cfg.ShutdownInterval = cfg.ShutdownInterval
		if cfg.SRAMWays > 0 {
			sm := tech.MustCompute(tech.DefaultArray(tech.SRAM6T))
			dl1Cfg.SRAMReadLat, dl1Cfg.SRAMWriteLat = sm.CyclesAt(cfg.FreqGHz)
		}
	}
	dl1 := cache.New(dl1Cfg, l2Port)
	dl1Port := wrap("DL1", dl1)

	var fe core.FrontEnd
	switch cfg.FrontEnd {
	case FEDirect:
		fe = core.NewDirect(dl1Port)
	case FEVWB:
		tc := cfg.VWBTransfer
		if tc == 0 {
			tc = 1
		}
		fe = core.NewVWB(core.VWBConfig{
			SizeBits: cfg.BufferBits, LineSize: line, HitLat: 1,
			TransferCycles: tc, Policy: cfg.VWBPolicy,
		}, dl1Port)
	case FEL0:
		fe = core.NewL0(core.L0Config{SizeBits: cfg.BufferBits, LineSize: line, HitLat: 1, BeatBytes: 32}, dl1Port)
	case FEEMSHR:
		fe = core.NewEMSHR(core.EMSHRConfig{SizeBits: cfg.BufferBits, LineSize: line, HitLat: 1, BeatBytes: 32}, dl1Port)
	case FEBypass:
		fe = core.NewBypass(core.BypassConfig{
			SizeBits: cfg.BufferBits, LineSize: line, HitLat: 1,
			TransferCycles: 1, PredEntries: cfg.BypassPredEntries,
			Policy: cfg.VWBPolicy,
		}, dl1Port)
	default:
		return nil, fmt.Errorf("sim: unknown front-end %v", cfg.FrontEnd)
	}

	c := &cpu.CPU{Cfg: cfg.CPU, IMem: imem, DMem: wrap("FE-"+fe.Name(), fe)}
	return &System{Cfg: cfg, CPU: c, IL1: il1, DL1: dl1, L2: l2, DRAM: dram, FE: fe, DL1Model: model, checks: checks}, nil
}

// RunResult is the outcome of one kernel on one configuration.
type RunResult struct {
	Config Config
	Bench  string
	CPU    *cpu.Result

	FEStats, DL1Stats, L2Stats, IL1Stats mem.Stats
	DL1BankConflictCycles                int64

	// Hybrid/shutdown accounting for internal/energy: array operations
	// served by the DL1's SRAM partition, and gated way-cycles as of
	// the end of the measured pass.
	DL1SRAMReads, DL1SRAMWrites uint64
	DL1WayOffCycles             int64
}

// ResetTiming clears every component's clocks and counters while keeping
// cache and buffer contents.
func (s *System) ResetTiming() {
	s.IL1.ResetTiming()
	s.DL1.ResetTiming()
	s.L2.ResetTiming()
	s.DRAM.Reset()
	s.FE.ResetTiming()
	// Re-baseline the oracle after the component clocks went back to 0.
	for _, cp := range s.checks {
		cp.ResetTiming()
	}
}

// CheckErr audits the timing oracle (full shadow-state comparison) and
// returns the accumulated violations; nil when checking is off or the
// run was clean.
func (s *System) CheckErr() error {
	for _, cp := range s.checks {
		cp.Audit()
	}
	return check.Errs(s.checks)
}

// RunCompiled executes a compiled kernel on the system: a warm-up pass
// (unless the configuration says ColdStart), a timing reset, and the
// measured pass. The data segment is re-initialized for each pass.
func (s *System) RunCompiled(ck *compile.Compiled) (*RunResult, error) {
	if !s.Cfg.ColdStart {
		if _, err := s.runOnce(ck); err != nil {
			return nil, err
		}
		s.ResetTiming()
	}
	return s.runOnce(ck)
}

// runOnce executes one pass over the kernel.
func (s *System) runOnce(ck *compile.Compiled) (*RunResult, error) {
	st := cpu.NewState(ck.Prog)
	if err := ir.InitData(ck.Kernel, st.Mem); err != nil {
		return nil, err
	}
	res, err := s.CPU.RunState(ck.Prog, st)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
	}
	if err := s.CheckErr(); err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
	}
	return s.assemble(ck.Prog.Name, res), nil
}

// assemble snapshots the system's hierarchy counters into a RunResult
// around a finished measured pass.
func (s *System) assemble(bench string, res *cpu.Result) *RunResult {
	return &RunResult{
		Config:                s.Cfg,
		Bench:                 bench,
		CPU:                   res,
		FEStats:               s.FE.Stats(),
		DL1Stats:              s.DL1.Stats(),
		L2Stats:               s.L2.Stats(),
		IL1Stats:              s.IL1.Stats(),
		DL1BankConflictCycles: s.DL1.BankConflictCycles,
		DL1SRAMReads:          s.DL1.SRAMReads,
		DL1SRAMWrites:         s.DL1.SRAMWrites,
		DL1WayOffCycles:       s.DL1.OffCyclesAt(res.Cycles),
	}
}

// CaptureTrace functionally executes a compiled kernel once (no timing)
// and records its retired-instruction stream. Because the core is
// in-order and every pass starts from an identically initialized data
// segment, the same trace replays both the warm-up and the measured
// pass of any configuration (DESIGN.md §7.4).
func CaptureTrace(ck *compile.Compiled) (*cpu.Trace, error) {
	st := cpu.NewState(ck.Prog)
	if err := ir.InitData(ck.Kernel, st.Mem); err != nil {
		return nil, err
	}
	tr, err := cpu.Capture(ck.Prog, st, 0)
	if err != nil {
		return nil, fmt.Errorf("sim: capture %s: %w", ck.Prog.Name, err)
	}
	return tr, nil
}

// ReplayCompiled is RunCompiled with the functional interpreter replaced
// by a captured trace: warm-up replay (unless ColdStart), timing reset,
// measured replay. The result is byte-identical to RunCompiled for the
// same kernel and configuration.
func (s *System) ReplayCompiled(ck *compile.Compiled, tr *cpu.Trace) (*RunResult, error) {
	if !s.Cfg.ColdStart {
		if _, err := s.replayOnce(ck, tr); err != nil {
			return nil, err
		}
		s.ResetTiming()
	}
	return s.replayOnce(ck, tr)
}

// replayOnce replays one timing pass over the trace.
func (s *System) replayOnce(ck *compile.Compiled, tr *cpu.Trace) (*RunResult, error) {
	res, _, err := s.replayOnceCtl(ck, tr, nil)
	return res, err
}

// ReplayCtl controls a partial timing replay; see cpu.ReplayCtl.
type ReplayCtl = cpu.ReplayCtl

// ReplayCompiledCtl is ReplayCompiled with partial-replay control: the
// warm-up pass honors only MaxRecords and Interrupt (its cycle counts
// are discarded, so Abort-ing it would save nothing and desynchronize
// cache contents between abort-on and abort-off runs — but a
// cancellation Interrupt must still reach it, or half of every replay
// would be uncancellable), while the measured pass gets the full
// control block. The returned bool reports whether the measured pass
// was aborted by ctl.Abort. With a nil ctl this is exactly
// ReplayCompiled.
func (s *System) ReplayCompiledCtl(ck *compile.Compiled, tr *cpu.Trace, ctl *ReplayCtl) (*RunResult, bool, error) {
	if !s.Cfg.ColdStart {
		warmCtl := ctl
		if ctl != nil && ctl.Abort != nil {
			wc := *ctl
			wc.Abort, wc.CheckEvery = nil, 0
			warmCtl = &wc
		}
		if _, _, err := s.replayOnceCtl(ck, tr, warmCtl); err != nil {
			return nil, false, err
		}
		s.ResetTiming()
	}
	return s.replayOnceCtl(ck, tr, ctl)
}

// replayOnceCtl replays one (possibly partial) timing pass.
func (s *System) replayOnceCtl(ck *compile.Compiled, tr *cpu.Trace, ctl *ReplayCtl) (*RunResult, bool, error) {
	res, aborted, err := s.CPU.ReplayTraceCtl(ck.Prog, tr, ctl)
	if err != nil {
		return nil, false, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
	}
	if err := s.CheckErr(); err != nil {
		return nil, false, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
	}
	return s.assemble(ck.Prog.Name, res), aborted, nil
}

// ReplayGang is ReplayCompiled for a batch of systems in one trace walk
// (cpu.ReplayTraceGang): the warm-up pass runs ganged over the members
// that warm up (ColdStart members skip it, exactly as in their serial
// replay), timing is reset, and the measured pass runs ganged over the
// whole batch. Every member's RunResult is byte-identical to its own
// ReplayCompiled of the same ck/tr — all systems must therefore have
// been assembled for configurations sharing CompileOptions, so ck and
// tr are valid for each. interrupt/intrEvery are ReplayCtl.Interrupt
// semantics applied to the shared walk; there is no per-member
// truncation or abort (callers needing those replay serially).
func ReplayGang(systems []*System, ck *compile.Compiled, tr *cpu.Trace, interrupt func() error, intrEvery int) ([]*RunResult, error) {
	if len(systems) == 0 {
		return nil, nil
	}
	var warm []*System
	var warmCPUs []*cpu.CPU
	for _, s := range systems {
		if !s.Cfg.ColdStart {
			warm = append(warm, s)
			warmCPUs = append(warmCPUs, s.CPU)
		}
	}
	if len(warm) > 0 {
		if _, err := cpu.ReplayTraceGang(ck.Prog, tr, warmCPUs, interrupt, intrEvery); err != nil {
			return nil, fmt.Errorf("sim: gang warm-up of %s: %w", ck.Prog.Name, err)
		}
		for _, s := range warm {
			if err := s.CheckErr(); err != nil {
				return nil, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
			}
			s.ResetTiming()
		}
	}
	cpus := make([]*cpu.CPU, len(systems))
	for i, s := range systems {
		cpus[i] = s.CPU
	}
	rs, err := cpu.ReplayTraceGang(ck.Prog, tr, cpus, interrupt, intrEvery)
	if err != nil {
		return nil, fmt.Errorf("sim: gang replay of %s: %w", ck.Prog.Name, err)
	}
	out := make([]*RunResult, len(systems))
	for i, s := range systems {
		if err := s.CheckErr(); err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", ck.Prog.Name, s.Cfg.Name, err)
		}
		out[i] = s.assemble(ck.Prog.Name, rs[i])
	}
	return out, nil
}

// CompileOptions is the configuration's compile options with the
// simulator's defaulting applied (line size forced to the prefetch /
// alignment granule). Anything compiling kernels on a configuration's
// behalf — Run here, the replay trace cache — must use this so the
// compiled program is identical either way.
func CompileOptions(cfg Config) compile.Options {
	opts := cfg.Compile
	if opts.LineSize == 0 {
		opts.LineSize = 64 // prefetch/alignment granule: the larger line
	}
	return opts
}

// Run compiles k with the configuration's options (line size forced to
// the DL1 line) and executes it on a freshly assembled system.
func Run(k *ir.Kernel, cfg Config) (*RunResult, error) {
	cfg = cfg.withDefaults()
	ck, err := compile.Compile(k, CompileOptions(cfg))
	if err != nil {
		return nil, err
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.RunCompiled(ck)
}

// MustRun is Run for known-good configurations.
func MustRun(k *ir.Kernel, cfg Config) *RunResult {
	r, err := Run(k, cfg)
	if err != nil {
		panic(err)
	}
	return r
}
