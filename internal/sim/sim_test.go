package sim

import (
	"testing"

	"sttdl1/internal/compile"
	"sttdl1/internal/core"
	"sttdl1/internal/ir"
	"sttdl1/internal/polybench"
	"sttdl1/internal/tech"
)

func smallKernel() *ir.Kernel {
	b, _ := polybench.ByName("gemm")
	return b.Build(12)
}

func TestPresetConfigs(t *testing.T) {
	if c := BaselineSRAM(); c.DL1Cell != tech.SRAM6T || c.FrontEnd != FEDirect {
		t.Error("baseline preset wrong")
	}
	if c := DropInSTT(); c.DL1Cell != tech.STT2T2MTJ || c.FrontEnd != FEDirect {
		t.Error("drop-in preset wrong")
	}
	if c := ProposalVWB(); c.FrontEnd != FEVWB || c.BufferBits != 2048 {
		t.Error("proposal preset wrong")
	}
}

func TestFrontEndKindString(t *testing.T) {
	if FEDirect.String() != "direct" || FEVWB.String() != "vwb" ||
		FEL0.String() != "l0" || FEEMSHR.String() != "emshr" {
		t.Error("front-end names")
	}
	if FrontEndKind(9).String() == "" {
		t.Error("unknown front end must stringify")
	}
}

func TestSystemWiring(t *testing.T) {
	sys, err := New(ProposalVWB())
	if err != nil {
		t.Fatal(err)
	}
	// DL1 latencies come from the technology model (4/2 at 1 GHz).
	cfg := sys.DL1.Config()
	if cfg.ReadLat != 4 || cfg.WriteLat != 2 {
		t.Errorf("STT DL1 latencies %d/%d, want 4/2", cfg.ReadLat, cfg.WriteLat)
	}
	if cfg.Size != DL1Size || cfg.Assoc != DL1Assoc {
		t.Error("DL1 geometry")
	}
	if _, ok := sys.FE.(*core.VWB); !ok {
		t.Errorf("front end is %T, want *core.VWB", sys.FE)
	}

	sram, err := New(BaselineSRAM())
	if err != nil {
		t.Fatal(err)
	}
	c := sram.DL1.Config()
	if c.ReadLat != 1 || c.WriteLat != 1 || c.ReadInterval != 1 {
		t.Errorf("SRAM DL1 %d/%d interval %d", c.ReadLat, c.WriteLat, c.ReadInterval)
	}
}

func TestLatencyOverrides(t *testing.T) {
	cfg := DropInSTT()
	cfg.DL1ReadLat, cfg.DL1WriteLat = 6, 3
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := sys.DL1.Config(); c.ReadLat != 6 || c.WriteLat != 3 {
		t.Errorf("override latencies %d/%d", c.ReadLat, c.WriteLat)
	}
}

func TestFrontEndSelection(t *testing.T) {
	for _, fe := range []FrontEndKind{FEDirect, FEVWB, FEL0, FEEMSHR} {
		cfg := ProposalVWB()
		cfg.FrontEnd = fe
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sys.FE.Name() == "" {
			t.Errorf("front end %v has no name", fe)
		}
	}
	cfg := ProposalVWB()
	cfg.FrontEnd = FrontEndKind(99)
	if _, err := New(cfg); err == nil {
		t.Error("unknown front end must fail")
	}
}

func TestRunProducesFunctionalResults(t *testing.T) {
	k := smallKernel()
	res, err := Run(k, BaselineSRAM())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Cycles <= 0 || res.CPU.Insts == 0 {
		t.Fatal("no execution recorded")
	}
	// The simulated result must match the evaluator (the measured pass
	// re-initializes data, so outputs are from a single clean pass).
	ck, err := compile.Compile(k, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refData, refKernel, err := ir.Reference(k, ir.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = ck
	got := ir.ReadArray(refKernel.Array("C"), refData)
	if len(got) == 0 {
		t.Fatal("empty output")
	}
}

func TestDropInSlowerThanBaseline(t *testing.T) {
	k := smallKernel()
	base, err := Run(k, BaselineSRAM())
	if err != nil {
		t.Fatal(err)
	}
	drop, err := Run(k, DropInSTT())
	if err != nil {
		t.Fatal(err)
	}
	if drop.CPU.Cycles <= base.CPU.Cycles {
		t.Errorf("drop-in (%d) must be slower than SRAM (%d)", drop.CPU.Cycles, base.CPU.Cycles)
	}
	// The paper's core premise: the drop-in penalty is substantial.
	pen := float64(drop.CPU.Cycles-base.CPU.Cycles) / float64(base.CPU.Cycles)
	if pen < 0.10 {
		t.Errorf("drop-in penalty %.1f%% suspiciously small", 100*pen)
	}
}

func TestVWBRecoversMostOfThePenalty(t *testing.T) {
	k := smallKernel()
	base, _ := Run(k, BaselineSRAM())
	drop, _ := Run(k, DropInSTT())
	vwb, err := Run(k, ProposalVWB())
	if err != nil {
		t.Fatal(err)
	}
	if vwb.CPU.Cycles >= drop.CPU.Cycles {
		t.Errorf("VWB (%d) must beat drop-in (%d)", vwb.CPU.Cycles, drop.CPU.Cycles)
	}
	dropPen := float64(drop.CPU.Cycles - base.CPU.Cycles)
	vwbPen := float64(vwb.CPU.Cycles - base.CPU.Cycles)
	if vwbPen > 0.5*dropPen {
		t.Errorf("VWB recovers only %.0f%% of the drop-in penalty", 100*(1-vwbPen/dropPen))
	}
}

func TestWarmupDeterminism(t *testing.T) {
	k := smallKernel()
	a, err := Run(k, ProposalVWB())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(k, ProposalVWB())
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles {
		t.Errorf("nondeterministic: %d vs %d", a.CPU.Cycles, b.CPU.Cycles)
	}
}

func TestColdStartSlower(t *testing.T) {
	k := smallKernel()
	warm, _ := Run(k, BaselineSRAM())
	cold := BaselineSRAM()
	cold.ColdStart = true
	coldRes, err := Run(k, cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.CPU.Cycles <= warm.CPU.Cycles {
		t.Errorf("cold start (%d) must be slower than warm (%d)", coldRes.CPU.Cycles, warm.CPU.Cycles)
	}
}

func TestVWBSizeMonotone(t *testing.T) {
	k := smallKernel()
	var prev int64
	for i, bits := range []int{1024, 2048, 8192} {
		cfg := ProposalVWB()
		cfg.BufferBits = bits
		res, err := Run(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.CPU.Cycles > prev+prev/50 { // 2% slack
			t.Errorf("VWB %d bits slower (%d) than smaller size (%d)", bits, res.CPU.Cycles, prev)
		}
		prev = res.CPU.Cycles
	}
}

func TestRunStatsPlumbed(t *testing.T) {
	res, err := Run(smallKernel(), ProposalVWB())
	if err != nil {
		t.Fatal(err)
	}
	if res.FEStats.Reads == 0 {
		t.Error("front-end stats empty")
	}
	if res.DL1Stats.Accesses()+res.DL1Stats.Fills == 0 {
		t.Error("DL1 stats empty")
	}
	if res.IL1Stats.Reads == 0 {
		t.Error("IL1 must see instruction fetches")
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	a := &ir.Array{Name: "a", Dims: []int{4}}
	bad := &ir.Kernel{Name: "bad", Arrays: []*ir.Array{a}, Body: []ir.Stmt{
		ir.Assign{Arr: a, Idx: []ir.Aff{ir.V("missing")}, RHS: ir.ConstF{V: 1}},
	}}
	if _, err := Run(bad, BaselineSRAM()); err == nil {
		t.Error("compile error must propagate")
	}
}

// TestFullSystemFunctionalCorrectness is the end-to-end integration
// test: every benchmark, compiled with the full transformation set and
// executed on the timed proposal platform (warm-up pass included), must
// leave the evaluator's results in memory.
func TestFullSystemFunctionalCorrectness(t *testing.T) {
	for _, b := range polybench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			k := b.Build(10)
			cfg := ProposalVWB()
			cfg.Compile = compile.ExtendedOptimizations()
			opts := cfg.Compile
			opts.LineSize = 64
			ck, err := compile.Compile(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunCompiled(ck)
			if err != nil {
				t.Fatal(err)
			}

			// Reference on the same transformed, laid-out kernel.
			size := 0
			for _, a := range ck.Kernel.Arrays {
				if end := int(a.Base) + 4*a.Elems(); end > size {
					size = end
				}
			}
			ref := make([]byte, size)
			if err := ir.InitData(ck.Kernel, ref); err != nil {
				t.Fatal(err)
			}
			if err := ir.NewEvaluator(ck.Kernel, ref).Run(); err != nil {
				t.Fatal(err)
			}
			for _, a := range ck.Kernel.Arrays {
				if !a.Out {
					continue
				}
				got := ir.ReadArray(a, res.CPU.State.Mem)
				want := ir.ReadArray(a, ref)
				for i := range want {
					d := float64(got[i]) - float64(want[i])
					if d < 0 {
						d = -d
					}
					lim := 1e-3
					if w := float64(want[i]); w > 1 || w < -1 {
						lim = 1e-3 * w
						if lim < 0 {
							lim = -lim
						}
					}
					if d > lim {
						t.Fatalf("%s[%d] = %g, want %g", a.Name, i, got[i], want[i])
					}
				}
			}
		})
	}
}
