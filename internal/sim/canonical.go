package sim

// Config canonicalization: one resolved form and one deterministic
// string key per *effective design*, shared by the design-space engine's
// proposal detection (internal/dse) and the persistent evaluation
// store's content addressing (internal/store, DESIGN.md §7.7). Two
// configurations key the same simulation exactly when their canonical
// forms are equal, and the canonical key enumerates every field the
// timing model reads, so it is injective on distinct canonical configs
// by construction.

import (
	"strconv"
	"strings"

	"sttdl1/internal/compile"
	"sttdl1/internal/cpu"
	"sttdl1/internal/tech"
)

// ApplyDefaults resolves the knobs a run resolves before simulating
// (bank count, buffer size, clock, core config) — exactly the defaulting
// New and Run apply, so RunResult.Config of a fresh run equals
// ApplyDefaults of the requested configuration.
func ApplyDefaults(cfg Config) Config { return cfg.withDefaults() }

// Canonical resolves every defaulted knob of cfg to its effective value
// and strips the fields that don't change the simulated design (Name,
// Check), so two configs compare equal exactly when they describe the
// same design point:
//
//   - ApplyDefaults' resolutions (banks, buffer bits, clock, core);
//   - latency overrides resolved against the technology model, so an
//     explicit override equal to the model latency is the same design
//     as no override;
//   - the VWB transfer default;
//   - the bypass predictor size, which only exists behind the bypass
//     front-end and must not split equality classes elsewhere.
func Canonical(cfg Config) Config {
	cfg.Name = ""
	cfg.Check = false
	cfg = cfg.withDefaults()
	if m, err := tech.Compute(tech.DefaultArray(cfg.DL1Cell)); err == nil {
		rd, wr := m.CyclesAt(cfg.FreqGHz)
		if cfg.DL1ReadLat <= 0 {
			cfg.DL1ReadLat = rd
		}
		if cfg.DL1WriteLat <= 0 {
			cfg.DL1WriteLat = wr
		}
	}
	if cfg.VWBTransfer <= 0 {
		cfg.VWBTransfer = 1
	}
	// CompileOptions forces the line-size default before compiling, so a
	// zero here is the same kernel variant as an explicit 64.
	cfg.Compile = CompileOptions(cfg)
	// The predictor size only exists behind the bypass front-end; on any
	// other design it is dead state and must not split equality classes.
	if cfg.FrontEnd != FEBypass {
		cfg.BypassPredEntries = 0
	} else if cfg.BypassPredEntries == 0 {
		cfg.BypassPredEntries = 16
	}
	// SRAMWays and ShutdownInterval default to 0 (= homogeneous,
	// always-on), which is already their zero value — nothing to resolve.
	return cfg
}

// CanonicalKey renders Canonical(cfg) as one deterministic string
// covering every design field the simulator reads, with the Check flag
// appended separately (checked runs produce identical counters but the
// persistent store keeps them addressable apart, mirroring the
// in-memory memo). Distinct canonical configs always produce distinct
// keys: every field lands in its own labeled, delimited slot.
func CanonicalKey(cfg Config) string {
	check := cfg.Check
	c := Canonical(cfg)
	var b strings.Builder
	// Sized above the longest key the current axes can render (a
	// defaults-resolved key is ~200 bytes): one undersized Grow here
	// costs a second allocation per key on the store/memo hot paths.
	b.Grow(288)
	b.WriteString(c.DL1Cell.String())
	b.WriteString("|fe=")
	b.WriteString(c.FrontEnd.String())
	b.WriteString("|buf=")
	b.WriteString(strconv.Itoa(c.BufferBits))
	b.WriteString("|bank=")
	b.WriteString(strconv.Itoa(c.DL1Banks))
	b.WriteString("|ghz=")
	b.WriteString(strconv.FormatFloat(c.FreqGHz, 'g', -1, 64))
	b.WriteString("|rl=")
	b.WriteString(strconv.FormatInt(c.DL1ReadLat, 10))
	b.WriteString("|wl=")
	b.WriteString(strconv.FormatInt(c.DL1WriteLat, 10))
	b.WriteString("|pol=")
	b.WriteString(c.VWBPolicy.String())
	b.WriteString("|tc=")
	b.WriteString(strconv.FormatInt(c.VWBTransfer, 10))
	b.WriteString("|bp=")
	b.WriteString(strconv.Itoa(c.BypassPredEntries))
	b.WriteString("|sw=")
	b.WriteString(strconv.Itoa(c.SRAMWays))
	b.WriteString("|sd=")
	b.WriteString(strconv.FormatInt(c.ShutdownInterval, 10))
	b.WriteString("|cold=")
	b.WriteString(strconv.FormatBool(c.ColdStart))
	b.WriteString("|il1=")
	b.WriteString(c.IL1Cell.String())
	b.WriteString("/")
	b.WriteString(c.IL1FrontEnd.String())
	b.WriteString("|cpu=")
	appendCPUKey(&b, c.CPU)
	b.WriteString("|opt=")
	appendCompileKey(&b, c.Compile)
	b.WriteString("|chk=")
	b.WriteString(strconv.FormatBool(check))
	return b.String()
}

func appendCPUKey(b *strings.Builder, c cpu.Config) {
	b.WriteString(strconv.Itoa(c.IssueWidth))
	b.WriteByte(',')
	b.WriteString(strconv.FormatInt(c.MispredictPenalty, 10))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(c.StoreBufDepth))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(c.LoadQueueDepth))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(c.BpredEntries))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(c.MaxInsts, 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(uint64(c.CodeBase), 10))
}

func appendCompileKey(b *strings.Builder, o compile.Options) {
	b.WriteString(strconv.FormatBool(o.Vectorize))
	b.WriteByte(',')
	b.WriteString(strconv.FormatBool(o.Prefetch))
	b.WriteByte(',')
	b.WriteString(strconv.FormatBool(o.Branchless))
	b.WriteByte(',')
	b.WriteString(strconv.FormatBool(o.Align))
	b.WriteByte(',')
	b.WriteString(strconv.FormatBool(o.Interchange))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(o.PrefetchStreams))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(o.LineSize))
}
