package sim

import (
	"testing"

	"sttdl1/internal/core"
	"sttdl1/internal/tech"
)

// TestBypassDisabledMatchesDirect pins the bypass front-end's
// degenerate mode: with the predictor disabled it is an exact
// pass-through, cycle-for-cycle identical to the drop-in (direct)
// configuration.
func TestBypassDisabledMatchesDirect(t *testing.T) {
	k := smallKernel()
	direct, err := Run(k, DropInSTT())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DropInSTT()
	cfg.FrontEnd = FEBypass
	cfg.BufferBits = 2048
	cfg.BypassPredEntries = -1
	off, err := Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.CPU.Cycles != off.CPU.Cycles {
		t.Errorf("disabled bypass %d cycles, direct %d — must be identical",
			off.CPU.Cycles, direct.CPU.Cycles)
	}
	if direct.DL1Stats != off.DL1Stats {
		t.Errorf("DL1 stats diverged: %+v vs %+v", off.DL1Stats, direct.DL1Stats)
	}
}

// TestShutdownNeverFiringMatchesBaseline: an interval longer than the
// run never reaches a decision boundary, so the full-system timing is
// identical to the mechanism being off.
func TestShutdownNeverFiringMatchesBaseline(t *testing.T) {
	k := smallKernel()
	base, err := Run(k, DropInSTT())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DropInSTT()
	cfg.ShutdownInterval = 1 << 40
	huge, err := Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.CPU.Cycles != huge.CPU.Cycles {
		t.Errorf("never-firing shutdown %d cycles, baseline %d — must be identical",
			huge.CPU.Cycles, base.CPU.Cycles)
	}
	if huge.DL1WayOffCycles != 0 {
		t.Errorf("no way ever gated, yet DL1WayOffCycles = %d", huge.DL1WayOffCycles)
	}
}

// TestLatencyHidingMechanismsCheckedClean runs each latency-hiding
// mechanism — and all three stacked — under the timing-contract oracle;
// any causality, monotonicity or shadow-state violation fails the run.
func TestLatencyHidingMechanismsCheckedClean(t *testing.T) {
	k := smallKernel()
	mk := func(mut func(*Config)) Config {
		cfg := DropInSTT()
		cfg.Check = true
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bypass", mk(func(c *Config) { c.FrontEnd = FEBypass; c.BufferBits = 2048 })},
		{"sram-way", mk(func(c *Config) { c.SRAMWays = 1 })},
		{"shutdown", mk(func(c *Config) { c.ShutdownInterval = 4096 })},
		{"all-three", mk(func(c *Config) {
			c.FrontEnd = FEBypass
			c.BufferBits = 2048
			c.SRAMWays = 1
			c.ShutdownInterval = 4096
		})},
	}
	for _, tc := range cases {
		if _, err := Run(k, tc.cfg); err != nil {
			t.Errorf("%s: checked run failed: %v", tc.name, err)
		}
	}
}

func TestHybridCountersPlumbed(t *testing.T) {
	k := smallKernel()
	cfg := DropInSTT()
	cfg.SRAMWays = 1
	res, err := Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DL1SRAMReads == 0 && res.DL1SRAMWrites == 0 {
		t.Error("hybrid run recorded no SRAM-partition operations")
	}
}

func TestHybridConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DL1Cell = tech.SRAM6T; c.SRAMWays = 1 }, // hybrid needs an NVM array
		func(c *Config) { c.SRAMWays = DL1Assoc + 1 },
		func(c *Config) { c.SRAMWays = -1 },
		func(c *Config) { c.ShutdownInterval = -8 },
	}
	for i, mutate := range bad {
		cfg := DropInSTT()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBypassFrontEndSelected(t *testing.T) {
	cfg := DropInSTT()
	cfg.FrontEnd = FEBypass
	cfg.BufferBits = 2048
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.FE.(*core.Bypass); !ok {
		t.Errorf("front end is %T, want *core.Bypass", sys.FE)
	}
	if FEBypass.String() != "bypass" {
		t.Errorf("FEBypass.String() = %q", FEBypass.String())
	}
}
