// Guided-search verification harness (the ISSUE's search-vs-exhaustive
// contract): property tests against exhaustive evaluation on small
// spaces, determinism across worker counts, metamorphic checks on the
// early-abort replay and the halving rung, and the degenerate-input
// regressions. External package for the same reason as dse_test.go.
package dse_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// twoBenches is the fast two-kernel suite the search tests run on
// (same shrink idiom as TestSmokeEvaluationSanity).
func twoBenches(t *testing.T) []polybench.Bench {
	t.Helper()
	gemm, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("unknown benchmark gemm")
	}
	atax, ok := polybench.ByName("atax")
	if !ok {
		t.Fatal("unknown benchmark atax")
	}
	gemm.Default, atax.Default = 16, 40
	return []polybench.Bench{gemm, atax}
}

// randomSpace builds a small (<= 64 point) unconstrained space around
// the VWB proposal from a seeded RNG, so the search-vs-exhaustive
// properties run over spaces nobody hand-tuned the search for.
func randomSpace(r *rand.Rand, i int) dse.Space {
	pick := func(pool []int, n int) []int {
		p := append([]int{}, pool...)
		r.Shuffle(len(p), func(a, b int) { p[a], p[b] = p[b], p[a] })
		p = p[:n]
		sort.Ints(p)
		return p
	}
	var rows, banks, lats []dse.Value
	for _, b := range pick([]int{1024, 2048, 4096, 8192}, 2+r.Intn(2)) {
		b := b
		rows = append(rows, dse.Value{
			Label: fmt.Sprintf("%dKbit", b/1024),
			Apply: func(c *sim.Config) { c.BufferBits = b },
		})
	}
	for _, nb := range pick([]int{1, 2, 4, 8}, 2+r.Intn(2)) {
		nb := nb
		banks = append(banks, dse.Value{
			Label: fmt.Sprintf("%dbank", nb),
			Apply: func(c *sim.Config) { c.DL1Banks = nb },
		})
	}
	for _, rl := range pick([]int{2, 3, 4, 5, 6}, 2+r.Intn(2)) {
		rl := int64(rl)
		lats = append(lats, dse.Value{
			Label: fmt.Sprintf("read=%dcy", rl),
			Apply: func(c *sim.Config) { c.DL1ReadLat = rl },
		})
	}
	return dse.Space{
		Name: fmt.Sprintf("rand%d", i),
		Desc: "randomized search-vs-exhaustive property space",
		Base: sim.ProposalVWB,
		Axes: []dse.Axis{
			{Name: "rows", Values: rows},
			{Name: "banks", Values: banks},
			{Name: "read-latency", Values: lats},
		},
	}
}

// TestSearchFullBudgetIsExhaustive: a budget covering the whole space
// must recover exactly the exhaustive evaluation — same points, same
// objectives, same ranks — on the smoke space and on randomized spaces.
// The degenerate-to-Evaluate rule makes this structural; the test pins
// the rule (and the CountUpTo sizing behind it) from the outside.
func TestSearchFullBudgetIsExhaustive(t *testing.T) {
	benches := twoBenches(t)
	r := rand.New(rand.NewSource(2))
	spaces := []dse.Space{dse.Smoke(), randomSpace(r, 0), randomSpace(r, 1)}
	for _, sp := range spaces {
		s := experiments.NewSuiteJobs(benches, 4)
		ev, err := dse.Evaluate(s, benches, sp)
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", sp.Name, err)
		}
		res, err := dse.Search(s, benches, sp, dse.SearchOptions{Budget: len(ev.Points) + 10, Seed: 7})
		if err != nil {
			t.Fatalf("%s: search: %v", sp.Name, err)
		}
		if !res.Exhaustive {
			t.Errorf("%s: full-budget search did not degenerate to exhaustive", sp.Name)
		}
		if !reflect.DeepEqual(res.Points, ev.Points) {
			t.Errorf("%s: full-budget search points differ from exhaustive evaluation", sp.Name)
		}
	}
}

// TestSearchPartialBudgetArchiveSound: with a budget of two thirds of
// the space, every frontier member the search reports must be genuinely
// non-dominated in the full exhaustive evaluation, and every archived
// objective vector must equal the exhaustive vector for the same label
// bit for bit (completed abortable replays are byte-identical to live
// runs, DESIGN.md §7.4).
func TestSearchPartialBudgetArchiveSound(t *testing.T) {
	benches := twoBenches(t)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2; i++ {
		sp := randomSpace(r, 10+i)
		s := experiments.NewSuiteJobs(benches, 4)
		ev, err := dse.Evaluate(s, benches, sp)
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", sp.Name, err)
		}
		budget := len(ev.Points) * 2 / 3
		res, err := dse.Search(s, benches, sp, dse.SearchOptions{Budget: budget, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("%s: search: %v", sp.Name, err)
		}
		if res.Exhaustive {
			t.Fatalf("%s: half budget %d unexpectedly covered the space", sp.Name, budget)
		}
		if res.FullEvals > budget {
			t.Errorf("%s: %d full evals exceed budget %d", sp.Name, res.FullEvals, budget)
		}

		exact := make(map[string]dse.Objectives, len(ev.Points))
		var vecs [][]float64
		for _, p := range ev.Points {
			exact[p.Point.Label] = p.Obj
			vecs = append(vecs, p.Obj.Vector())
		}
		for _, p := range res.Points {
			want, ok := exact[p.Point.Label]
			if !ok {
				t.Errorf("%s: archived point %q not in the exhaustive evaluation", sp.Name, p.Point.Label)
				continue
			}
			if p.Obj != want {
				t.Errorf("%s: point %q: search objectives %+v != exhaustive %+v",
					sp.Name, p.Point.Label, p.Obj, want)
			}
			if p.Rank != 0 {
				continue
			}
			for j, v := range vecs {
				if dse.Dominates(v, p.Obj.Vector()) {
					t.Errorf("%s: reported frontier member %q is dominated by exhaustive point %q",
						sp.Name, p.Point.Label, ev.Points[j].Point.Label)
				}
			}
		}
	}
}

// TestSearchDeterministicUnderParallelism: a fixed seed must be
// byte-identical at -j 1 and -j 8 — rendered frontier, CSV dump, raw
// points and the search accounting (the same contract the exhaustive
// engine pins in TestSmokeDeterministicUnderParallelism).
func TestSearchDeterministicUnderParallelism(t *testing.T) {
	benches := smallBenches(t)
	run := func(jobs int) *dse.SearchResult {
		s := experiments.NewSuiteJobs(benches, jobs)
		res, err := dse.Search(s, benches, dse.Smoke(), dse.SearchOptions{Budget: 6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r8 := run(1), run(8)

	if !bytes.Equal([]byte(r1.FrontierTable(0).Render()), []byte(r8.FrontierTable(0).Render())) {
		t.Errorf("frontier table differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			r1.FrontierTable(0).Render(), r8.FrontierTable(0).Render())
	}
	if r1.PointsTable().CSV() != r8.PointsTable().CSV() {
		t.Error("points CSV differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(r1.Points, r8.Points) {
		t.Error("raw archives differ between -j 1 and -j 8")
	}
	if r1.FullEvals != r8.FullEvals || r1.Aborted != r8.Aborted ||
		r1.RungEvals != r8.RungEvals || r1.Generations != r8.Generations {
		t.Errorf("search accounting differs: j1 %d/%d/%d/%d, j8 %d/%d/%d/%d",
			r1.FullEvals, r1.Aborted, r1.RungEvals, r1.Generations,
			r8.FullEvals, r8.Aborted, r8.RungEvals, r8.Generations)
	}
	if !strings.Contains(r1.FrontierTable(0).Title, "seed 1") {
		t.Errorf("frontier title does not name the effective seed: %q", r1.FrontierTable(0).Title)
	}
}

// TestSearchRefindsProposal: guided search over the 240-point proposal
// space on a fraction of the budget must re-find the paper's 2Kbit /
// 4-bank VWB design point on the archive frontier — the headline "does
// guidance actually guide" check.
func TestSearchRefindsProposal(t *testing.T) {
	benches := twoBenches(t)
	s := experiments.NewSuiteJobs(benches, 4)
	res, err := dse.Search(s, benches, dse.Proposal(), dse.SearchOptions{Budget: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("budget 60 unexpectedly covered the 240-point space")
	}
	found := false
	for _, p := range res.Points {
		if !p.Proposal {
			continue
		}
		found = true
		if p.Rank != 0 {
			t.Errorf("re-found proposal has rank %d, want 0 (frontier)", p.Rank)
		}
	}
	if !found {
		t.Errorf("search (seed 1, budget 60) did not re-find the paper proposal; frontier:\n%s",
			res.FrontierTable(0).Render())
	}
}

// TestSearchAbortInvariance is the early-abort metamorphic check: the
// abort is a pure shortcut — the frontier, the accounting and every
// surviving point must be identical with it on or off; only dominated
// archive entries may disappear. Full-size kernels so the traces are
// long enough for abort probes to actually fire.
func TestSearchAbortInvariance(t *testing.T) {
	atax, _ := polybench.ByName("atax")
	gemver, _ := polybench.ByName("gemver")
	benches := []polybench.Bench{atax, gemver}

	run := func(disable bool) *dse.SearchResult {
		s := experiments.NewSuiteJobs(benches, 4)
		res, err := dse.Search(s, benches, dse.Smoke(),
			dse.SearchOptions{Budget: 6, Seed: 1, DisableAbort: disable})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on, off := run(false), run(true)

	if off.Aborted != 0 {
		t.Errorf("abort-disabled run reports %d aborts", off.Aborted)
	}
	if on.Aborted == 0 {
		t.Error("abort-enabled run aborted nothing: the metamorphic check exercised no abort")
	}
	if on.FullEvals != off.FullEvals || on.RungEvals != off.RungEvals || on.Generations != off.Generations {
		t.Errorf("abort changed the search trajectory: on %d/%d/%d, off %d/%d/%d",
			on.FullEvals, on.RungEvals, on.Generations, off.FullEvals, off.RungEvals, off.Generations)
	}
	frontierRows := func(r *dse.SearchResult) [][]string { return r.FrontierTable(0).Rows }
	if !reflect.DeepEqual(frontierRows(on), frontierRows(off)) {
		t.Errorf("abort changed the frontier:\n--- on ---\n%s\n--- off ---\n%s",
			on.FrontierTable(0).Render(), off.FrontierTable(0).Render())
	}
	// Every point that survived with abort on must exist, with identical
	// objectives, in the abort-off archive (the converse need not hold).
	offObjs := make(map[string]dse.Objectives, len(off.Points))
	for _, p := range off.Points {
		offObjs[p.Point.Label] = p.Obj
	}
	for _, p := range on.Points {
		want, ok := offObjs[p.Point.Label]
		if !ok {
			t.Errorf("abort-on archive holds %q, absent from the abort-off archive", p.Point.Label)
			continue
		}
		if p.Obj != want {
			t.Errorf("point %q: abort-on objectives %+v != abort-off %+v", p.Point.Label, p.Obj, want)
		}
	}
}

// TestRungScoreMonotoneUnderLatencyDilation: dilating the DL1 read
// latency can only slow the measured kernel, so the rung's truncated
// penalty must be non-decreasing in the latency — if truncation broke
// this ordering the halving ladder would promote the wrong survivors.
func TestRungScoreMonotoneUnderLatencyDilation(t *testing.T) {
	benches := twoBenches(t)
	s := experiments.NewSuiteJobs(benches, 2)
	rung := dse.RungSpec{Benches: 1, MaxRecords: 2000}
	sp := dse.AblationReadLat()
	prev := -1.0
	for _, lat := range []int64{2, 4, 6, 8} {
		cfg := sim.DropInSTT()
		cfg.DL1ReadLat = lat
		obj, err := rung.Score(s, benches, sp, cfg)
		if err != nil {
			t.Fatalf("read=%dcy: %v", lat, err)
		}
		if obj.PenaltyPct < prev {
			t.Errorf("rung penalty not monotone: read=%dcy scored %.3f%% < previous %.3f%%",
				lat, obj.PenaltyPct, prev)
		}
		prev = obj.PenaltyPct
	}
}

// TestSearchDegenerateInputs: the regressions the ISSUE calls out —
// empty and one-point spaces, a non-positive budget, and -top larger
// than the row count must all degrade cleanly.
func TestSearchDegenerateInputs(t *testing.T) {
	benches := twoBenches(t)
	s := experiments.NewSuiteJobs(benches, 2)

	if _, err := dse.Search(s, benches, dse.Smoke(), dse.SearchOptions{Budget: 0, Seed: 1}); err == nil {
		t.Error("budget 0 accepted")
	}

	empty := dse.Space{
		Name: "empty",
		Base: sim.DropInSTT,
		Axes: []dse.Axis{{Name: "x", Values: []dse.Value{{Label: "a"}}}},
		Constraints: []dse.Constraint{{
			Desc: "prune everything",
			Keep: func(sim.Config) bool { return false },
		}},
	}
	if _, err := dse.Search(s, benches, empty, dse.SearchOptions{Budget: 4, Seed: 1}); err == nil {
		t.Error("search over an all-pruned space returned no error")
	}
	if _, err := dse.Evaluate(s, benches, empty); err == nil {
		t.Error("evaluation of an all-pruned space returned no error")
	}

	one := dse.Space{
		Name: "one",
		Base: sim.ProposalVWB,
		Axes: []dse.Axis{{Name: "only", Values: []dse.Value{{Label: "proposal"}}}},
	}
	res, err := dse.Search(s, benches, one, dse.SearchOptions{Budget: 4, Seed: 1})
	if err != nil {
		t.Fatalf("one-point space: %v", err)
	}
	if !res.Exhaustive {
		t.Error("one-point space did not evaluate exhaustively")
	}
	if len(res.Points) != 2 { // the point and the SRAM reference
		t.Errorf("one-point space archived %d points, want 2", len(res.Points))
	}
	over := res.FrontierTable(99)
	if len(over.Rows) == 0 {
		t.Error("-top beyond the row count dropped every row")
	}
	if strings.Contains(over.Render(), "showing") {
		t.Error("-top beyond the row count claims truncation")
	}
}

// TestSpaceAtMatchesEnumerate: property check (testing/quick) that the
// genome accessor At agrees with Enumerate on the proposal space —
// every accepted genome assembles a config the enumeration also built
// under the same label, and malformed genomes are rejected.
func TestSpaceAtMatchesEnumerate(t *testing.T) {
	sp := dse.Proposal()
	byLabel := make(map[string]sim.Config)
	for _, p := range sp.Enumerate() {
		byLabel[p.Label] = p.Config
	}
	prop := func(raw []uint16) bool {
		genome := make([]int, len(sp.Axes))
		for i := range genome {
			var v uint16
			if i < len(raw) {
				v = raw[i]
			}
			genome[i] = int(v) % len(sp.Axes[i].Values)
		}
		pt, ok := sp.At(genome)
		if !ok {
			return true // constraint-pruned: not a point, nothing to match
		}
		want, inEnum := byLabel[pt.Label]
		return inEnum && want == pt.Config
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}

	if _, ok := sp.At([]int{0}); ok {
		t.Error("short genome accepted")
	}
	if _, ok := sp.At(make([]int, len(sp.Axes)+1)); ok {
		t.Error("long genome accepted")
	}
	bad := make([]int, len(sp.Axes))
	bad[0] = -1
	if _, ok := sp.At(bad); ok {
		t.Error("negative gene accepted")
	}
	bad[0] = len(sp.Axes[0].Values)
	if _, ok := sp.At(bad); ok {
		t.Error("out-of-range gene accepted")
	}
}

// TestSpaceCountUpTo: the lazy counter must agree with Enumerate and
// honor its early-stop limit.
func TestSpaceCountUpTo(t *testing.T) {
	sp := dse.Proposal()
	want := len(sp.Enumerate())
	if got := sp.CountUpTo(0); got != want {
		t.Errorf("CountUpTo(0) = %d, want %d", got, want)
	}
	if got := sp.CountUpTo(5); got != 5 {
		t.Errorf("CountUpTo(5) = %d, want 5", got)
	}
	if got := sp.CountUpTo(want + 100); got != want {
		t.Errorf("CountUpTo(beyond) = %d, want %d", got, want)
	}
}

// TestSearchMegaWithinBudget pins the acceptance criterion: the mega
// space holds >= 10^5 points, and a guided run finds a frontier with
// at least 10x fewer full evaluations than exhaustive enumeration
// would need, reporting the effective seed in every table header.
func TestSearchMegaWithinBudget(t *testing.T) {
	benches := twoBenches(t)
	s := experiments.NewSuiteJobs(benches, 8)
	res, err := dse.Search(s, benches, dse.Mega(), dse.SearchOptions{Budget: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("mega space evaluated exhaustively")
	}
	if res.SpacePoints < 100000 {
		t.Errorf("mega space has %d points, want >= 100000", res.SpacePoints)
	}
	if res.FullEvals > 12 {
		t.Errorf("search ran %d full evals, budget 12", res.FullEvals)
	}
	if 10*res.FullEvals > res.SpacePoints {
		t.Errorf("search used %d full evals over a %d-point space: not a 10x saving",
			res.FullEvals, res.SpacePoints)
	}
	frontier := 0
	for _, p := range res.Points {
		if p.Rank == 0 {
			frontier++
		}
	}
	if frontier == 0 {
		t.Error("empty frontier")
	}
	for _, tab := range []string{res.FrontierTable(0).Title, res.PointsTable().Title} {
		if !strings.Contains(tab, "seed 1") {
			t.Errorf("table header does not name the effective seed: %q", tab)
		}
	}
}
