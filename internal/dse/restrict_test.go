package dse

import (
	"strings"
	"testing"
)

// TestRestrictSubsequence pins the core soundness property: a
// restricted space's pruned enumeration is exactly the subsequence of
// the full space's enumeration whose points use only the selected
// labels — same labels, same configs, re-indexed densely.
func TestRestrictSubsequence(t *testing.T) {
	sp := Smoke()
	sel := map[string][]string{
		"front-end": {"vwb", "direct"},
		"banks":     {"4bank"},
	}
	rsp, err := Restrict(sp, sel)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Name != sp.Name {
		t.Errorf("restricted space renamed: %q", rsp.Name)
	}

	keep := func(p Point) bool {
		fe := p.AxisLabel(sp, "front-end")
		return (fe == "vwb" || fe == "direct") && p.AxisLabel(sp, "banks") == "4bank"
	}
	var want []Point
	for _, p := range sp.Enumerate() {
		if keep(p) {
			want = append(want, p)
		}
	}
	got := rsp.Enumerate()
	if len(got) != len(want) {
		t.Fatalf("restricted enumeration has %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Label != want[i].Label {
			t.Errorf("point %d: label %q, want %q", i, got[i].Label, want[i].Label)
		}
		if got[i].Index != i {
			t.Errorf("point %d: index %d, want dense re-index", i, got[i].Index)
		}
		if got[i].Config != want[i].Config {
			t.Errorf("point %d (%s): config diverged from full-space assembly", i, got[i].Label)
		}
	}
	if len(got) == 0 {
		t.Fatal("restriction selected nothing — test space drifted")
	}
}

// TestRestrictSelectionOrderIrrelevant pins that the selection's own
// label order does not leak into enumeration order.
func TestRestrictSelectionOrderIrrelevant(t *testing.T) {
	sp := Smoke()
	a, err := Restrict(sp, map[string][]string{"front-end": {"vwb", "direct"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restrict(sp, map[string][]string{"front-end": {"direct", "vwb"}})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Enumerate(), b.Enumerate()
	if len(pa) != len(pb) {
		t.Fatalf("selection order changed point count: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Label != pb[i].Label {
			t.Errorf("point %d: %q vs %q", i, pa[i].Label, pb[i].Label)
		}
	}
}

// TestRestrictErrors pins that unknown axes and labels are loud errors
// (a job must not silently sweep a different space), and that the empty
// selection is the identity.
func TestRestrictErrors(t *testing.T) {
	sp := Smoke()
	if _, err := Restrict(sp, map[string][]string{"no-such-axis": {"x"}}); err == nil ||
		!strings.Contains(err.Error(), "no axis") {
		t.Errorf("unknown axis: got %v", err)
	}
	if _, err := Restrict(sp, map[string][]string{"front-end": {"no-such-value"}}); err == nil ||
		!strings.Contains(err.Error(), "no value") {
		t.Errorf("unknown label: got %v", err)
	}
	if _, err := Restrict(sp, map[string][]string{"front-end": {}}); err == nil {
		t.Error("empty axis selection: want error")
	}
	same, err := Restrict(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Enumerate()) != len(sp.Enumerate()) {
		t.Error("nil selection changed the space")
	}
}

// TestPlanShardMatchesEvaluateShard pins the plan as the single source
// of a shard's work list: its point accounting matches EvaluateShard's
// (which now runs over the same plan), the union of all shards' points
// covers the space exactly once, and only shard 0 carries the shared
// reference extra.
func TestPlanShardMatchesEvaluateShard(t *testing.T) {
	sp := Smoke()
	all := sp.Enumerate()
	const n = 3
	covered := 0
	for i := 0; i < n; i++ {
		plan, err := PlanShard(sp, Shard{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		if plan.SpacePoints != len(all) {
			t.Errorf("shard %d: SpacePoints %d, want %d", i, plan.SpacePoints, len(all))
		}
		covered += plan.Points
		want := 2 * plan.Points
		if i == 0 {
			want++ // the shared SRAM reference rides on shard 0
		}
		if len(plan.Configs) != want {
			t.Errorf("shard %d: %d configs, want %d", i, len(plan.Configs), want)
		}
		if got := plan.Sims(2); got != want*2 {
			t.Errorf("shard %d: Sims(2) = %d, want %d", i, got, want*2)
		}
	}
	if covered != len(all) {
		t.Errorf("shards cover %d points, want %d", covered, len(all))
	}
	if _, err := PlanShard(sp, Shard{}); err == nil {
		t.Error("disabled shard: want error")
	}
}
