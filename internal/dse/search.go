package dse

// Frontier-guided metaheuristic search over design spaces too large to
// enumerate (DESIGN.md §7.5). The search keeps a Pareto archive of
// fully evaluated points, proposes new candidates by mutating and
// crossing the archive's current frontier (plus annealed random
// exploration), and pushes them through a successive-halving ladder:
// a cheap rung — a benchmark-prefix subset replayed for a truncated
// record count — scores every candidate, only the rung's non-dominated
// survivors are promoted to the full suite, and each promoted full
// evaluation may abort early as soon as its partial objective vector is
// provably dominated by the archive frontier.
//
// Determinism contract: the seeded RNG is consumed only in the serial
// proposal step, never during evaluation; parallel rung and full
// evaluations write results by candidate index; and abort decisions
// compare against a frontier snapshot fixed before the generation's
// evaluations start. The search is therefore bit-identical at any
// worker count, and bit-identical with early abort on or off (an
// aborted candidate is provably dominated, so it could never have
// joined the frontier that seeds the next generation — see
// search_test.go's metamorphic checks).

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"sttdl1/internal/cpu"
	"sttdl1/internal/energy"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/tech"
)

// CtlEngine is the engine slice the guided search needs: the memoized
// full-suite evaluation of Engine, plus non-memoized partial timing
// replay (truncation and early abort) and the worker bound for the
// search's own deterministic fan-out. *experiments.Suite satisfies it.
type CtlEngine interface {
	Engine
	Jobs() int
	ReplayCtl(b polybench.Bench, cfg sim.Config, ctl *sim.ReplayCtl) (*sim.RunResult, bool, error)
}

// storedChecker is the optional engine capability the search's warm
// start probes: whether a (benchmark, configuration) full-suite result
// is already present in the engine's persistent evaluation store
// (internal/store). *experiments.Suite implements it when a store is
// attached.
type storedChecker interface {
	Stored(b polybench.Bench, cfg sim.Config) bool
}

// RungSpec configures the halving ladder's cheap rung: score each
// candidate on a prefix of the benchmark suite, with every measured
// replay truncated to a fixed record count. Rung scores are heuristic —
// they order candidates, they are not the real objectives — so they are
// computed outside the engine's memo and never mixed with full results.
type RungSpec struct {
	// Benches is the suite prefix scored on the rung (0 = min(2, all)).
	Benches int
	// MaxRecords truncates each measured replay (0 = 50000 records).
	MaxRecords int
}

func (r RungSpec) withDefaults(totalBenches int) RungSpec {
	if r.Benches <= 0 {
		r.Benches = 2
	}
	if r.Benches > totalBenches {
		r.Benches = totalBenches
	}
	if r.MaxRecords <= 0 {
		r.MaxRecords = 50000
	}
	return r
}

// Score computes cfg's rung objectives within sp: the penalty of the
// truncated replay against the equally truncated baseline replay on the
// rung's benchmark prefix, the truncated run's energy, and the exact
// area. Exported so the metamorphic tests can pin rung-score behavior
// (e.g. monotonicity under latency dilation) directly.
func (r RungSpec) Score(eng CtlEngine, benches []polybench.Bench, sp Space, cfg sim.Config) (Objectives, error) {
	if benches == nil {
		benches = polybench.All()
	}
	r = r.withDefaults(len(benches))
	base := sp.BaselineFor(cfg)
	model, err := energy.ModelFor(cfg)
	if err != nil {
		return Objectives{}, err
	}
	ctl := &sim.ReplayCtl{MaxRecords: r.MaxRecords}
	rb := benches[:r.Benches]
	pens := make([]float64, len(rb))
	var totalUJ float64
	for i, b := range rb {
		br, _, err := eng.ReplayCtl(b, base, ctl)
		if err != nil {
			return Objectives{}, err
		}
		pr, _, err := eng.ReplayCtl(b, cfg, ctl)
		if err != nil {
			return Objectives{}, err
		}
		pens[i] = stats.Penalty(br.CPU.Cycles, pr.CPU.Cycles)
		totalUJ += energy.TotalUJ(pr, cfg, model)
	}
	return Objectives{
		PenaltyPct: stats.Mean(pens),
		EnergyUJ:   totalUJ / float64(len(rb)),
		AreaMM2:    areaOf(cfg, model),
	}, nil
}

// areaOf is the exact area objective: the DL1 array plus the front-end
// buffer when the configuration has one. Both score (evaluate.go) and
// the rung use it, and the early-abort lower bound relies on it being
// exact before any simulation runs.
func areaOf(cfg sim.Config, model tech.Model) float64 {
	area := model.AreaMM2
	if energy.Buffered(cfg) {
		bits := cfg.BufferBits
		if bits <= 0 {
			bits = 2048
		}
		area += energy.BufferAreaMM2(bits)
	}
	return area
}

// SearchOptions configures a guided search.
type SearchOptions struct {
	// Budget bounds the full-suite evaluations (aborted ones included:
	// an abort is a shortcut through a budgeted evaluation, not a free
	// extra probe — that keeps the search trajectory identical with
	// abort on or off).
	Budget int
	// Seed seeds the proposal RNG. Equal seeds give bit-identical
	// results at any worker count.
	Seed int64
	// Rung configures the cheap rung (zero value = defaults).
	Rung RungSpec
	// DisableAbort turns the early-abort replay off: every promoted
	// candidate runs the full suite through the memoized engine. The
	// frontier is identical either way; only wall-clock and the set of
	// dominated points that reach the archive change.
	DisableAbort bool
	// Progress observes one event per completed generation.
	Progress stats.SearchProgressFunc
}

// SearchResult is a guided search's outcome: an Evaluation over the
// archive (so all the report/CSV machinery applies) plus the search's
// own accounting.
type SearchResult struct {
	Evaluation
	Seed   int64
	Budget int
	// FullEvals is the budget actually consumed (Aborted included).
	FullEvals int
	// Aborted counts full evaluations stopped early by the archive.
	Aborted int
	// RungEvals counts cheap-rung scorings.
	RungEvals int
	// Generations counts proposal generations run.
	Generations int
	// Exhaustive reports that the space fit inside the budget, so the
	// search degenerated to an exact exhaustive Evaluate.
	Exhaustive bool
	// SpacePoints is the space's kept-point count.
	SpacePoints int
}

// Search tuning knobs. Fixed rather than exported: the determinism
// tests pin outputs for given (space, seed, budget), and every knob
// here is covered by that pin.
const (
	searchBatch    = 16   // candidate proposals per generation
	exploreStart   = 0.9  // generation-0 random-exploration probability
	exploreDecay   = 0.7  // per-generation exploration decay
	exploreMin     = 0.15 // annealing floor
	crossMutate    = 0.3  // post-crossover mutation probability
	abortCheckEach = 8192 // records between early-abort probes
)

// Search runs the frontier-guided metaheuristic over sp. When the
// space's kept-point count fits within the budget the search
// short-circuits to the exact exhaustive Evaluate — which makes "a full
// budget recovers exactly the exhaustive frontier" structural rather
// than probabilistic. Results are bit-identical for equal
// (space, benches, seed, budget) at any engine worker count.
func Search(eng CtlEngine, benches []polybench.Bench, sp Space, opts SearchOptions) (*SearchResult, error) {
	if benches == nil {
		benches = polybench.All()
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("dse: search budget must be positive (got %d)", opts.Budget)
	}
	if len(sp.Axes) == 0 || sp.CountUpTo(1) == 0 {
		return nil, fmt.Errorf("dse: space %q enumerates no points", sp.Name)
	}
	if n := sp.CountUpTo(opts.Budget + 1); n <= opts.Budget {
		ev, err := Evaluate(eng, benches, sp)
		if err != nil {
			return nil, err
		}
		return &SearchResult{
			Evaluation: *ev, Seed: opts.Seed, Budget: opts.Budget,
			FullEvals: len(ev.Points), Exhaustive: true, SpacePoints: n,
		}, nil
	}

	g := &guided{
		eng: eng, benches: benches, sp: sp, opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		rung: opts.Rung.withDefaults(len(benches)),
		seen: make(map[string]bool),
	}
	if err := g.run(); err != nil {
		return nil, fmt.Errorf("dse: search %s: %w", sp.Name, err)
	}
	return g.result()
}

// evaluated is one archive entry: a completed full-suite evaluation.
type evaluated struct {
	genome []int
	pt     Point
	obj    Objectives
}

// candidate is one proposed, not yet evaluated genome.
type candidate struct {
	genome []int
	pt     Point
}

type guided struct {
	eng     CtlEngine
	benches []polybench.Bench
	sp      Space
	opts    SearchOptions
	rng     *rand.Rand
	rung    RungSpec
	seen    map[string]bool

	archive  []evaluated
	frontier []int // archive indices of the current non-dominated set

	full, aborted, rungEvals, generations int
}

func (g *guided) run() error {
	for g.full < g.opts.Budget {
		cands := g.propose(g.generations, min(searchBatch, g.opts.Budget-g.full))
		if len(cands) == 0 {
			break // no unseen valid genome found: the space is mined out
		}

		// Cheap rung, in parallel, results by candidate index.
		rungObjs := make([]Objectives, len(cands))
		err := forEachIndexed(len(cands), g.eng.Jobs(), func(i int) error {
			o, err := g.rung.Score(g.eng, g.benches, g.sp, cands[i].pt.Config)
			rungObjs[i] = o
			return err
		})
		if err != nil {
			return err
		}
		g.rungEvals += len(cands)

		// Promote the rung's non-dominated survivors (candidate order),
		// capped by the remaining budget.
		vecs := make([][]float64, len(cands))
		for i, o := range rungObjs {
			vecs[i] = o.Vector()
		}
		prom := Frontier(vecs)
		if rem := g.opts.Budget - g.full; len(prom) > rem {
			prom = prom[:rem]
		}

		// Full-suite evaluations against a frontier snapshot fixed for
		// the whole generation (candidates must not see each other —
		// that is what makes parallel evaluation deterministic).
		snapshot := g.frontierVectors()
		if err := g.prefetch(cands, prom); err != nil {
			return err
		}
		type outcome struct {
			obj     Objectives
			aborted bool
		}
		outs := make([]outcome, len(prom))
		err = forEachIndexed(len(prom), g.eng.Jobs(), func(i int) error {
			obj, ab, err := g.fullEval(cands[prom[i]].pt, snapshot)
			outs[i] = outcome{obj, ab}
			return err
		})
		if err != nil {
			return err
		}

		genAborted := 0
		for i, pi := range prom {
			g.full++
			if outs[i].aborted {
				g.aborted++
				genAborted++
				continue
			}
			c := cands[pi]
			c.pt.Index = len(g.archive)
			g.archive = append(g.archive, evaluated{genome: c.genome, pt: c.pt, obj: outs[i].obj})
		}
		g.refront()
		g.generations++
		if g.opts.Progress != nil {
			g.opts.Progress(stats.SearchEvent{
				Generation: g.generations - 1,
				Candidates: len(cands),
				Promoted:   len(prom),
				Aborted:    genAborted,
				FullEvals:  g.full,
				Budget:     g.opts.Budget,
				Archive:    len(g.archive),
				Frontier:   len(g.frontier),
			})
		}
	}
	if len(g.archive) == 0 {
		return fmt.Errorf("no candidate survived to a completed full evaluation")
	}
	return nil
}

// propose draws up to want new genomes: annealed random exploration,
// else mutation or uniform crossover of current frontier members. All
// RNG consumption happens here, serially. Pruned and duplicate genomes
// are skipped (and remembered, so they are never drawn again).
func (g *guided) propose(gen, want int) []candidate {
	explore := exploreMin + (exploreStart-exploreMin)*math.Pow(exploreDecay, float64(gen))
	var out []candidate
	for tries := 0; len(out) < want && tries < 400*want; tries++ {
		var genome []int
		switch {
		case len(g.frontier) == 0 || g.rng.Float64() < explore:
			genome = g.randomGenome()
		case g.rng.Float64() < 0.5:
			genome = g.mutate(g.archive[g.frontier[g.rng.Intn(len(g.frontier))]].genome)
		default:
			a := g.archive[g.frontier[g.rng.Intn(len(g.frontier))]].genome
			b := g.archive[g.frontier[g.rng.Intn(len(g.frontier))]].genome
			genome = g.crossover(a, b)
		}
		key := genomeKey(genome)
		if g.seen[key] {
			continue
		}
		g.seen[key] = true
		pt, ok := g.sp.At(genome)
		if !ok {
			continue
		}
		out = append(out, candidate{genome: genome, pt: pt})
	}
	return out
}

func (g *guided) randomGenome() []int {
	genome := make([]int, len(g.sp.Axes))
	for ai, a := range g.sp.Axes {
		genome[ai] = g.rng.Intn(len(a.Values))
	}
	return genome
}

// mutate flips each gene with probability 1/len, re-rolling one random
// gene if nothing changed.
func (g *guided) mutate(parent []int) []int {
	genome := append([]int{}, parent...)
	changed := false
	for ai, a := range g.sp.Axes {
		if g.rng.Float64() < 1/float64(len(genome)) {
			genome[ai] = g.rng.Intn(len(a.Values))
			changed = changed || genome[ai] != parent[ai]
		}
	}
	if !changed {
		ai := g.rng.Intn(len(genome))
		genome[ai] = g.rng.Intn(len(g.sp.Axes[ai].Values))
	}
	return genome
}

// crossover mixes two parents gene-wise, with a chance of one follow-up
// mutation so identical parents still move.
func (g *guided) crossover(a, b []int) []int {
	genome := make([]int, len(a))
	for i := range genome {
		if g.rng.Float64() < 0.5 {
			genome[i] = a[i]
		} else {
			genome[i] = b[i]
		}
	}
	if g.rng.Float64() < crossMutate {
		ai := g.rng.Intn(len(genome))
		genome[ai] = g.rng.Intn(len(g.sp.Axes[ai].Values))
	}
	return genome
}

func genomeKey(genome []int) string {
	var b strings.Builder
	for i, v := range genome {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// refront recomputes the archive's non-dominated set.
func (g *guided) refront() {
	objs := make([][]float64, len(g.archive))
	for i, e := range g.archive {
		objs[i] = e.obj.Vector()
	}
	g.frontier = Frontier(objs)
}

func (g *guided) frontierVectors() [][]float64 {
	out := make([][]float64, len(g.frontier))
	for i, ai := range g.frontier {
		out[i] = g.archive[ai].obj.Vector()
	}
	return out
}

// prefetch warms the memo with everything the generation's full
// evaluations consume through the memoized path: every promoted
// candidate's baseline always, and the candidate configurations
// themselves when they will take the memoized score path — early abort
// off, or the candidate fully present in the persistent store (with
// abort on, the remaining candidate runs go through the non-memoized
// abortable replay instead).
func (g *guided) prefetch(cands []candidate, prom []int) error {
	var cfgs []sim.Config
	for _, pi := range prom {
		cfg := cands[pi].pt.Config
		cfgs = append(cfgs, g.sp.BaselineFor(cfg))
		if g.opts.DisableAbort || g.stored(cfg) {
			cfgs = append(cfgs, cfg)
		}
	}
	if len(cfgs) == 0 {
		return nil
	}
	return g.eng.Prefetch(g.benches, cfgs...)
}

// stored reports whether every benchmark's full-suite result for cfg is
// already in the engine's persistent evaluation store, so the memoized
// path will serve the whole evaluation from disk.
func (g *guided) stored(cfg sim.Config) bool {
	sc, ok := g.eng.(storedChecker)
	if !ok {
		return false
	}
	for _, b := range g.benches {
		if !sc.Stored(b, cfg) {
			return false
		}
	}
	return true
}

// fullEval scores one promoted candidate over the full suite. With
// abort enabled, each bench's measured replay probes the candidate's
// partial objective lower bound against the generation's frontier
// snapshot and stops the evaluation as soon as it is provably
// dominated; see lowerBound for the soundness argument. A completed
// evaluation produces exactly the objectives score() would (replay and
// live execution are byte-identical, DESIGN.md §7.4).
func (g *guided) fullEval(pt Point, snapshot [][]float64) (Objectives, bool, error) {
	cfg := pt.Config
	base := g.sp.BaselineFor(cfg)
	model, err := energy.ModelFor(cfg)
	if err != nil {
		return Objectives{}, false, err
	}
	// Warm start: when every benchmark's full result for this candidate
	// is already in the persistent store, the memoized score path serves
	// the evaluation without ever running the timing model — strictly
	// cheaper than abortable replay. Per candidate this is the same
	// switch as DisableAbort: the frontier is identical either way (an
	// aborted candidate is provably dominated and could never have
	// joined it), only the set of dominated points reaching the archive
	// can grow.
	if g.opts.DisableAbort || len(snapshot) == 0 || g.stored(cfg) {
		obj, err := score(g.eng, g.benches, cfg, base)
		return obj, false, err
	}

	area := areaOf(cfg, model)
	// With dynamic way shutdown the run's effective leakage power can be
	// lower than the model's nominal figure; the abort bound must use the
	// provable floor or it could kill a candidate whose shutdown credit
	// would have carried it onto the frontier.
	leakFloorMW := energy.LeakFloorMW(cfg, model)
	width := cfg.CPU.IssueWidth
	if width <= 0 {
		width = cpu.DefaultConfig().IssueWidth
	}
	n := len(g.benches)
	baseCycles := make([]int64, n)
	// floor[j] is a sound lower bound on any configuration's measured
	// cycles for bench j: the retired record count is a property of the
	// trace (identical for the candidate and its baseline — same kernel,
	// same compile options), and a width-issue in-order core cannot
	// retire more than width records per cycle.
	floor := make([]float64, n)
	for j, b := range g.benches {
		br, err := g.eng.Run(b, base)
		if err != nil {
			return Objectives{}, false, err
		}
		baseCycles[j] = br.CPU.Cycles
		floor[j] = float64(br.CPU.Insts) / float64(width)
	}

	pens := make([]float64, n)
	var doneUJ float64
	for j, b := range g.benches {
		j := j
		ctl := &sim.ReplayCtl{
			CheckEvery: abortCheckEach,
			Abort: func(cyclesSoFar int64) bool {
				lb := g.lowerBound(j, cyclesSoFar, pens, doneUJ, baseCycles, floor, leakFloorMW, area)
				return dominatedBy(snapshot, lb)
			},
		}
		r, aborted, err := g.eng.ReplayCtl(b, cfg, ctl)
		if err != nil {
			return Objectives{}, false, err
		}
		if aborted {
			return Objectives{}, true, nil
		}
		pens[j] = stats.Penalty(baseCycles[j], r.CPU.Cycles)
		doneUJ += energy.TotalUJ(r, cfg, model)
	}
	return Objectives{
		PenaltyPct: stats.Mean(pens),
		EnergyUJ:   doneUJ / float64(n),
		AreaMM2:    area,
	}, false, nil
}

// lowerBound builds a pointwise lower bound of the candidate's final
// objective vector, mid-way through bench j at cyclesSoFar:
//
//   - completed benches contribute their exact penalty and energy;
//   - the in-flight bench's cycles are at least max(cyclesSoFar,
//     floor[j]) — replay cycle counts only grow — so its penalty is
//     bounded below by the penalty of that cycle count, and its energy
//     by leakage alone over it (dynamic and buffer energy are >= 0);
//   - unstarted benches are bounded the same way at floor[k];
//   - area is exact.
//
// Every final objective is therefore >= its bound, so a frontier member
// dominating the bound also dominates the final vector (dominance is
// transitive through the pointwise order) and the abort never kills a
// candidate that full evaluation would have kept.
func (g *guided) lowerBound(j int, cyclesSoFar int64, pens []float64, doneUJ float64,
	baseCycles []int64, floor []float64, leakMW, area float64) []float64 {
	penSum := 0.0
	leakUJ := 0.0
	for k := range g.benches {
		switch {
		case k < j:
			penSum += pens[k]
		default:
			cyc := floor[k]
			if k == j && float64(cyclesSoFar) > cyc {
				cyc = float64(cyclesSoFar)
			}
			if baseCycles[k] > 0 {
				penSum += 100 * (cyc - float64(baseCycles[k])) / float64(baseCycles[k])
			}
			leakUJ += leakMW * cyc / 1e6
		}
	}
	n := float64(len(g.benches))
	return []float64{penSum / n, (doneUJ + leakUJ) / n, area}
}

// dominatedBy reports whether any frontier vector dominates v.
func dominatedBy(frontier [][]float64, v []float64) bool {
	for _, f := range frontier {
		if Dominates(f, v) {
			return true
		}
	}
	return false
}

// result assembles the archive into an Evaluation (reference point and
// dominance ranks exactly as Evaluate builds them) plus the search
// accounting.
func (g *guided) result() (*SearchResult, error) {
	ev := Evaluation{Space: g.sp, Benches: benchNames(g.benches)}
	sharedBaseline := true
	base0 := g.sp.BaselineFor(g.archive[0].pt.Config)
	for _, e := range g.archive {
		if g.sp.BaselineFor(e.pt.Config) != base0 {
			sharedBaseline = false
		}
		ev.Points = append(ev.Points, PointResult{
			Point:    e.pt,
			Obj:      e.obj,
			Proposal: IsProposal(e.pt.Config),
		})
	}
	if sharedBaseline {
		obj, err := score(g.eng, g.benches, base0, base0)
		if err != nil {
			return nil, fmt.Errorf("dse: search %s: baseline: %w", g.sp.Name, err)
		}
		ref := base0
		ev.Points = append(ev.Points, PointResult{
			Point:     Point{Index: len(g.archive), Label: ref.Name, Config: ref},
			Obj:       obj,
			Reference: true,
		})
	}
	objs := make([][]float64, len(ev.Points))
	for i, p := range ev.Points {
		objs[i] = p.Obj.Vector()
	}
	for i, r := range Ranks(objs) {
		ev.Points[i].Rank = r
	}
	return &SearchResult{
		Evaluation:  ev,
		Seed:        g.opts.Seed,
		Budget:      g.opts.Budget,
		FullEvals:   g.full,
		Aborted:     g.aborted,
		RungEvals:   g.rungEvals,
		Generations: g.generations,
		SpacePoints: g.sp.CountUpTo(0),
	}, nil
}

// forEachIndexed runs f(0..n-1) over at most workers goroutines,
// collecting each call's error by index; the first error in index order
// is returned. Results land in caller-owned slices by index, so the
// outcome is independent of scheduling.
func forEachIndexed(n, workers int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = f(i)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = f(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
