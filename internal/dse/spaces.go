package dse

import (
	"fmt"

	"sttdl1/internal/compile"
	"sttdl1/internal/cpu"
	"sttdl1/internal/sim"
)

// The built-in spaces. Two drive the `sttexplore dse` subcommand's
// headline runs — the full proposal space and a fast smoke space — and
// four single-axis spaces re-express the 1-D ablation figures, so the
// repo has exactly one sweep mechanism (the ablation runners in
// internal/experiments enumerate these spaces point by point and render
// the same figures, byte for byte, they always have).

// Spaces lists every built-in design space, headline spaces first.
func Spaces() []Space {
	return []Space{
		Proposal(),
		Mega(),
		Hybrid(),
		Smoke(),
		AblationBanks(),
		AblationReadLat(),
		AblationStoreBuf(),
		AblationWriteAsym(),
	}
}

// ByName looks a built-in space up.
func ByName(name string) (Space, bool) {
	for _, s := range Spaces() {
		if s.Name == name {
			return s, true
		}
	}
	return Space{}, false
}

// Names lists the built-in space names in registry order.
func Names() []string {
	ss := Spaces()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// sttBase is the neutral STT-MRAM starting point every proposal-space
// configuration mutates: drop-in NVM DL1, knobs at the platform
// defaults the axes then override.
func sttBase() sim.Config {
	cfg := sim.DropInSTT()
	cfg.DL1Banks = 4
	return cfg
}

// Axis builders shared by the spaces.

func frontEndAxis() Axis {
	set := func(k sim.FrontEndKind) func(*sim.Config) {
		return func(c *sim.Config) {
			c.FrontEnd = k
			if k != sim.FEDirect && c.BufferBits == 0 {
				c.BufferBits = 2048
			}
		}
	}
	return Axis{Name: "front-end", Values: []Value{
		{Label: "direct", Apply: set(sim.FEDirect)},
		{Label: "vwb", Apply: set(sim.FEVWB)},
		{Label: "l0", Apply: set(sim.FEL0)},
		{Label: "emshr", Apply: set(sim.FEEMSHR)},
	}}
}

func rowsAxis(bits ...int) Axis {
	a := Axis{Name: "rows"}
	for _, b := range bits {
		b := b
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf("%dKbit", b/1024),
			Apply: func(c *sim.Config) { c.BufferBits = b },
		})
	}
	return a
}

func banksAxis(label string, banks ...int) Axis {
	a := Axis{Name: "banks"}
	for _, nb := range banks {
		nb := nb
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf(label, nb),
			Apply: func(c *sim.Config) { c.DL1Banks = nb },
		})
	}
	return a
}

func readLatAxis(label string, lats ...int64) Axis {
	a := Axis{Name: "read-latency"}
	for _, rl := range lats {
		rl := rl
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf(label, rl),
			Apply: func(c *sim.Config) { c.DL1ReadLat = rl },
		})
	}
	return a
}

func writeLatAxis(label string, lats ...int64) Axis {
	a := Axis{Name: "write-latency"}
	for _, wl := range lats {
		wl := wl
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf(label, wl),
			Apply: func(c *sim.Config) { c.DL1WriteLat = wl },
		})
	}
	return a
}

func storeBufAxis(label string, depths ...int) Axis {
	a := Axis{Name: "store-buffer"}
	for _, d := range depths {
		d := d
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf(label, d),
			Apply: func(c *sim.Config) {
				cc := cpu.DefaultConfig()
				cc.StoreBufDepth = d
				c.CPU = cc
			},
		})
	}
	return a
}

// Proposal is the full design space around the paper's proposal: every
// front-end alternative (drop-in direct, VWB, L0, EMSHR) crossed with
// buffer size, NVM bank count, and the STT-MRAM read/write latency
// assumptions — 240 points after pruning. The paper's own proposal
// (vwb, 2 Kbit, 4 banks, read=4cy, write=2cy) is one of them; the
// exploration's job is to show where it sits on the penalty/energy/area
// frontier.
func Proposal() Space {
	return Space{
		Name: "proposal",
		Desc: "front-end × buffer rows × NVM banks × read/write latency around the paper's proposal",
		Base: sttBase,
		Axes: []Axis{
			frontEndAxis(),
			rowsAxis(1024, 2048, 4096),
			banksAxis("%dbank", 1, 2, 4, 8),
			readLatAxis("read=%dcy", 2, 4, 6),
			writeLatAxis("write=%dcy", 1, 2),
		},
		Constraints: []Constraint{{
			Desc: "a direct front-end has no buffer: keep only the 2Kbit placeholder",
			Keep: func(c sim.Config) bool {
				return c.FrontEnd != sim.FEDirect || c.BufferBits == 2048
			},
		}},
	}
}

// transferAxis sweeps the VWB row-transfer delay (cycles per word
// streamed into the buffer row).
func transferAxis(cycles ...int64) Axis {
	a := Axis{Name: "transfer"}
	for _, tc := range cycles {
		tc := tc
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf("xfer=%dcy", tc),
			Apply: func(c *sim.Config) { c.VWBTransfer = tc },
		})
	}
	return a
}

// prefetchAxis sweeps the compiler's prefetch depth: off, or 1/2/4
// hardware-assisted streams. The penalty baseline shares the point's
// compile options (Space.BaselineFor), so the axis isolates how
// prefetching interacts with the NVM latency rather than rewarding
// better software across the board.
func prefetchAxis(streams ...int) Axis {
	a := Axis{Name: "prefetch"}
	a.Values = append(a.Values, Value{Label: "pf=off"})
	for _, n := range streams {
		n := n
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf("pf=%dstream", n),
			Apply: func(c *sim.Config) {
				c.Compile.Prefetch = true
				c.Compile.PrefetchStreams = n
			},
		})
	}
	return a
}

// Mega is the guided search's target: every proposal-space axis widened
// to its plausible range and crossed with the VWB transfer delay, the
// core's store-buffer depth and the compiler's prefetch streams —
// 144,480 points after pruning, far past exhaustive evaluation but
// trivially within `sttexplore dse -search guided -budget N` reach.
func Mega() Space {
	return Space{
		Name: "mega",
		Desc: "guided-search mega-space: front-end × rows × banks × latency × transfer × store-buffer × prefetch",
		Base: sttBase,
		Axes: []Axis{
			frontEndAxis(),
			rowsAxis(1024, 2048, 4096, 8192, 16384, 32768, 65536),
			banksAxis("%dbank", 1, 2, 4, 8, 16, 32),
			readLatAxis("read=%dcy", 2, 3, 4, 5, 6, 7, 8),
			writeLatAxis("write=%dcy", 1, 2, 3, 4),
			transferAxis(1, 2, 3, 4),
			storeBufAxis("sb=%d", 1, 2, 4, 8, 16),
			prefetchAxis(1, 2, 4),
		},
		Constraints: []Constraint{
			{
				Desc: "a direct front-end has no buffer: keep only the 2Kbit placeholder",
				Keep: func(c sim.Config) bool {
					return c.FrontEnd != sim.FEDirect || c.BufferBits == 2048
				},
			},
			{
				Desc: "only the VWB streams rows: keep the 1-cycle transfer elsewhere",
				Keep: func(c sim.Config) bool {
					return c.FrontEnd == sim.FEVWB || c.VWBTransfer == 1
				},
			},
		},
	}
}

// predAxis sweeps the bypass front-end's stride-predictor size. Other
// front-ends have no predictor, so (like the mega space's transfer
// axis) a companion constraint keeps only the default-sized placeholder
// there.
func predAxis(entries ...int) Axis {
	a := Axis{Name: "predictor"}
	for _, n := range entries {
		n := n
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf("pred=%d", n),
			Apply: func(c *sim.Config) { c.BypassPredEntries = n },
		})
	}
	return a
}

// sramWaysAxis sweeps the hybrid partition: how many of the DL1's ways
// are built in SRAM instead of STT-MRAM.
func sramWaysAxis(ways ...int) Axis {
	a := Axis{Name: "sram-ways"}
	for _, w := range ways {
		w := w
		a.Values = append(a.Values, Value{
			Label: fmt.Sprintf("sram=%dway", w),
			Apply: func(c *sim.Config) { c.SRAMWays = w },
		})
	}
	return a
}

// shutdownAxis sweeps the dynamic way-shutdown decision interval
// (0 = the mechanism off).
func shutdownAxis(intervals ...int64) Axis {
	a := Axis{Name: "shutdown"}
	for _, iv := range intervals {
		iv := iv
		label := "sd=off"
		if iv > 0 {
			label = fmt.Sprintf("sd=%dcy", iv)
		}
		a.Values = append(a.Values, Value{
			Label: label,
			Apply: func(c *sim.Config) { c.ShutdownInterval = iv },
		})
	}
	return a
}

// Hybrid is the latency-hiding space beyond the VWB (DESIGN.md §7.6):
// the paper's VWB against the prediction-driven read bypass, crossed
// with the hybrid SRAM/STT way partition and the dynamic way-shutdown
// interval — 21 points after pruning, exhaustively evaluable, with the
// paper's proposal (vwb, all-STT, always-on) as one corner.
func Hybrid() Space {
	return Space{
		Name: "hybrid",
		Desc: "latency hiding: vwb/bypass front-end × predictor size × SRAM ways × shutdown interval",
		Base: sttBase,
		Axes: []Axis{
			{Name: "front-end", Values: []Value{
				{Label: "vwb", Apply: func(c *sim.Config) { c.FrontEnd = sim.FEVWB; c.BufferBits = 2048 }},
				{Label: "bypass", Apply: func(c *sim.Config) { c.FrontEnd = sim.FEBypass; c.BufferBits = 2048 }},
			}},
			predAxis(4, 16),
			sramWaysAxis(0, 1, 2),
			shutdownAxis(0, 4096, 16384),
		},
		Constraints: []Constraint{
			{
				Desc: "only the bypass front-end has a predictor: keep the pred=16 placeholder elsewhere",
				Keep: func(c sim.Config) bool {
					return c.FrontEnd == sim.FEBypass || c.BypassPredEntries == 16
				},
			},
			{
				Desc: "an all-SRAM DL1 has no gateable NVM ways: shutdown stays off",
				Keep: func(c sim.Config) bool {
					return c.SRAMWays < sim.DL1Assoc || c.ShutdownInterval == 0
				},
			},
		},
	}
}

// Smoke is the fast space for CI and the determinism tests: front-end ×
// buffer rows × banks, model latencies only — 10 points, seconds to
// evaluate, with a non-trivial frontier (direct, VWB and EMSHR all
// appear, at two buffer sizes and two bankings).
func Smoke() Space {
	return Space{
		Name: "smoke",
		Desc: "fast CI space: front-end × rows × banks at model latencies",
		Base: sttBase,
		Axes: []Axis{
			{Name: "front-end", Values: []Value{
				{Label: "direct", Apply: func(c *sim.Config) { c.FrontEnd = sim.FEDirect; c.BufferBits = 2048 }},
				{Label: "vwb", Apply: func(c *sim.Config) { c.FrontEnd = sim.FEVWB }},
				{Label: "emshr", Apply: func(c *sim.Config) { c.FrontEnd = sim.FEEMSHR }},
			}},
			rowsAxis(1024, 2048),
			banksAxis("%dbank", 1, 4),
		},
		Constraints: []Constraint{{
			Desc: "a direct front-end has no buffer: keep only the 2Kbit placeholder",
			Keep: func(c sim.Config) bool {
				return c.FrontEnd != sim.FEDirect || c.BufferBits == 2048
			},
		}},
	}
}

// The four 1-D ablation spaces (DESIGN.md §6). Axis value labels are
// the exact series labels of the rendered ablation figures — the
// figure runners consume the enumeration directly.

// AblationBanks sweeps the banked NVM array under the optimized
// proposal: 1..8 banks (paper §IV's promotion-conflict stall scenario).
func AblationBanks() Space {
	return Space{
		Name: "ablation-banks",
		Desc: "optimized proposal vs NVM array bank count",
		Base: func() sim.Config {
			cfg := sim.ProposalVWB()
			cfg.Compile = compile.AllOptimizations()
			return cfg
		},
		Axes: []Axis{banksAxis("%d bank(s)", 1, 2, 4, 8)},
	}
}

// AblationReadLat crosses the STT-MRAM read-latency assumption
// (2x..6x the SRAM cycle) with the drop-in and VWB front-ends: where
// does the VWB stop rescuing the drop-in penalty?
func AblationReadLat() Space {
	return Space{
		Name: "ablation-readlat",
		Desc: "drop-in and VWB vs STT-MRAM read latency 2..6 cycles",
		Base: sim.DropInSTT,
		Axes: []Axis{
			readLatAxis("read=%dcy", 2, 3, 4, 5, 6),
			{Name: "front-end", Values: []Value{
				{Label: "drop-in"},
				{Label: "VWB", Apply: func(c *sim.Config) {
					c.FrontEnd = sim.FEVWB
					c.BufferBits = 2048
				}},
			}},
		},
		// The figures label each series "drop-in, read=2cy" — front-end
		// first, latency second — while the enumeration order needs the
		// latency outermost.
		PointLabel: func(labels []string) string { return labels[1] + ", " + labels[0] },
	}
}

// AblationStoreBuf sweeps the core's store-buffer depth under the
// drop-in NVM DL1's 2-cycle writes (§III: write latency "can still be
// managed" by buffering). The penalty baseline shares each point's
// core, so the sweep isolates the NVM write effect.
func AblationStoreBuf() Space {
	return Space{
		Name: "ablation-storebuf",
		Desc: "drop-in penalty vs core store-buffer depth",
		Base: sim.DropInSTT,
		Axes: []Axis{storeBufAxis("store buffer depth %d", 1, 2, 4, 8)},
	}
}

// AblationWriteAsym sweeps the DL1 write latency 1..4 cycles on the
// drop-in configuration — the AWARE-style asymmetric-write question.
func AblationWriteAsym() Space {
	return Space{
		Name: "ablation-writeasym",
		Desc: "drop-in penalty vs DL1 write latency 1..4 cycles",
		Base: sim.DropInSTT,
		Axes: []Axis{writeLatAxis("write=%dcy", 1, 2, 3, 4)},
	}
}
