package dse

import (
	"fmt"
	"sort"

	"sttdl1/internal/stats"
)

// note returns the annotation column for a point.
func note(p PointResult) string {
	switch {
	case p.Proposal:
		return "paper proposal"
	case p.Reference:
		return "sram reference"
	}
	return ""
}

func objCells(o Objectives) []string {
	return []string{
		fmt.Sprintf("%.1f", o.PenaltyPct),
		fmt.Sprintf("%.2f", o.EnergyUJ),
		fmt.Sprintf("%.4f", o.AreaMM2),
	}
}

var objColumns = []string{"Penalty (%)", "Energy (uJ)", "Area (mm2)"}

// summaryNote is the engine's one-line account of the evaluation.
func (e *Evaluation) summaryNote() string {
	frontier := 0
	for _, p := range e.Points {
		if p.Rank == 0 {
			frontier++
		}
	}
	return fmt.Sprintf("space %s: %d design point(s) (pruned from %d), %d reference(s); frontier %d of %d; %d benchmark(s)",
		e.Space.Name, e.designPoints(), e.Space.Size(),
		len(e.Points)-e.designPoints(), frontier, len(e.Points), len(e.Benches))
}

// designPoints counts the evaluated points excluding the reference.
func (e *Evaluation) designPoints() int {
	n := 0
	for _, p := range e.Points {
		if !p.Reference {
			n++
		}
	}
	return n
}

// FrontierTable renders the Pareto frontier (dominance rank 0, the
// SRAM reference included when it is non-dominated) sorted by ascending
// penalty, ties by label. top > 0 keeps only the first top rows.
func (e *Evaluation) FrontierTable(top int) stats.Table {
	var rows []PointResult
	for _, p := range e.Points {
		if p.Rank == 0 {
			rows = append(rows, p)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Obj.PenaltyPct != rows[j].Obj.PenaltyPct {
			return rows[i].Obj.PenaltyPct < rows[j].Obj.PenaltyPct
		}
		return rows[i].Point.Label < rows[j].Point.Label
	})

	t := stats.Table{
		ID:      "dse-" + e.Space.Name,
		Title:   fmt.Sprintf("Pareto frontier of design space %q (minimize penalty, energy, area)", e.Space.Name),
		Columns: append([]string{"Design point"}, append(append([]string{}, objColumns...), "Note")...),
	}
	for _, p := range rows {
		t.Rows = append(t.Rows, append(append([]string{p.Point.Label}, objCells(p.Obj)...), note(p)))
	}
	t.Notes = append(t.Notes, e.summaryNote())
	if prop := e.proposalRank(); prop >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("paper proposal dominance rank: %d (0 = on the frontier)", prop))
	}
	return t.Head(top)
}

// proposalRank returns the dominance rank of the paper's proposal point
// (-1 when the space doesn't contain it).
func (e *Evaluation) proposalRank() int {
	for _, p := range e.Points {
		if p.Proposal {
			return p.Rank
		}
	}
	return -1
}

// searchNote is the guided search's one-line account, shown under both
// search tables.
func (r *SearchResult) searchNote() string {
	if r.Exhaustive {
		return fmt.Sprintf("guided search: seed %d, budget %d: space fits the budget (%d point(s)), evaluated exhaustively",
			r.Seed, r.Budget, r.SpacePoints)
	}
	return fmt.Sprintf("guided search: seed %d, budget %d: %d full evaluation(s) (%d aborted early), %d rung eval(s), %d generation(s) over a %d-point space",
		r.Seed, r.Budget, r.FullEvals, r.Aborted, r.RungEvals, r.Generations, r.SpacePoints)
}

// FrontierTable renders the archive's Pareto frontier with the search
// parameters — the effective seed above all — in the table header, so
// any printed report names the inputs that reproduce it.
func (r *SearchResult) FrontierTable(top int) stats.Table {
	t := r.Evaluation.FrontierTable(top)
	t.Title = fmt.Sprintf("Pareto frontier of design space %q — guided search, seed %d, budget %d (minimize penalty, energy, area)",
		r.Space.Name, r.Seed, r.Budget)
	t.Notes = append(t.Notes, r.searchNote())
	return t
}

// PointsTable renders every archived point with the search parameters
// in the header.
func (r *SearchResult) PointsTable() stats.Table {
	t := r.Evaluation.PointsTable()
	t.Title = fmt.Sprintf("All archived points of design space %q — guided search, seed %d, budget %d",
		r.Space.Name, r.Seed, r.Budget)
	t.Notes = append(t.Notes, r.searchNote())
	return t
}

// PointsTable renders every evaluated point in enumeration order with
// its per-axis settings, objectives and dominance rank — the full dump
// behind the frontier, CSV-friendly via stats.Table.CSV.
func (e *Evaluation) PointsTable() stats.Table {
	t := stats.Table{
		ID:    "dse-" + e.Space.Name + "-points",
		Title: fmt.Sprintf("All evaluated points of design space %q", e.Space.Name),
	}
	t.Columns = []string{"Design point"}
	for _, a := range e.Space.Axes {
		t.Columns = append(t.Columns, a.Name)
	}
	t.Columns = append(t.Columns, objColumns...)
	t.Columns = append(t.Columns, "Rank", "Frontier", "Note")

	for _, p := range e.Points {
		row := []string{p.Point.Label}
		for i := range e.Space.Axes {
			if i < len(p.Point.Labels) {
				row = append(row, p.Point.Labels[i])
			} else {
				row = append(row, "") // the reference point spans no axes
			}
		}
		row = append(row, objCells(p.Obj)...)
		frontier := "no"
		if p.Rank == 0 {
			frontier = "yes"
		}
		row = append(row, fmt.Sprintf("%d", p.Rank), frontier, note(p))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, e.summaryNote())
	return t
}
