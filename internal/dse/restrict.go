package dse

// Inline axis deltas (DESIGN.md §7.8): a sweep-service job names a
// registered space and may restrict any of its axes to a subset of
// value labels — "the smoke space, but only the vwb front-end" —
// without registering a new space. The restricted space keeps the
// original's base, constraints and enumeration discipline, so its
// pruned enumeration order is a subsequence of the full space's and
// every downstream determinism argument carries over unchanged.

import (
	"fmt"
	"strings"
)

// Restrict returns a copy of sp keeping, on each axis named in sel,
// only the values whose labels are listed; axes absent from sel keep
// every value. Axis order and within-axis value order always follow sp
// — the selection's own order is ignored — so equal selections produce
// identical enumerations. Unknown axis names or value labels are
// errors, not silent no-ops: a job must never sweep a different space
// than it asked for. An empty/nil sel returns sp unchanged.
func Restrict(sp Space, sel map[string][]string) (Space, error) {
	if len(sel) == 0 {
		return sp, nil
	}
	used := make(map[string]bool, len(sel))
	axes := make([]Axis, len(sp.Axes))
	for i, a := range sp.Axes {
		want, ok := sel[a.Name]
		if !ok {
			axes[i] = a
			continue
		}
		used[a.Name] = true
		if len(want) == 0 {
			return Space{}, fmt.Errorf("dse: restriction of axis %q selects no values", a.Name)
		}
		keep := make(map[string]bool, len(want))
		for _, label := range want {
			keep[label] = true
		}
		var vals []Value
		for _, v := range a.Values {
			if keep[v.Label] {
				vals = append(vals, v)
				delete(keep, v.Label)
			}
		}
		if len(keep) > 0 {
			var missing []string
			for label := range keep {
				missing = append(missing, label)
			}
			return Space{}, fmt.Errorf("dse: axis %q of space %q has no value(s) %s; known: %s",
				a.Name, sp.Name, strings.Join(sortedLabels(missing), ", "), strings.Join(axisLabels(a), ", "))
		}
		axes[i] = Axis{Name: a.Name, Values: vals}
	}
	for name := range sel {
		if !used[name] {
			return Space{}, fmt.Errorf("dse: space %q has no axis %q; known: %s",
				sp.Name, name, strings.Join(axisNames(sp), ", "))
		}
	}
	out := sp
	out.Axes = axes
	return out, nil
}

func axisNames(sp Space) []string {
	out := make([]string, len(sp.Axes))
	for i, a := range sp.Axes {
		out[i] = a.Name
	}
	return out
}

func axisLabels(a Axis) []string {
	out := make([]string, len(a.Values))
	for i, v := range a.Values {
		out[i] = v.Label
	}
	return out
}

// sortedLabels orders the missing-label list so the error message is
// deterministic (map iteration is not).
func sortedLabels(labels []string) []string {
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j] < labels[j-1]; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	return labels
}
