package dse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sttdl1/internal/sim"
)

// TestCanonicalKeyInjectiveWithinSpaces walks every enumerable built-in
// space and checks the persistent store's addressing invariant point by
// point: two design points share a canonical key exactly when their
// canonical configurations are equal. A collision between distinct
// designs would silently serve one point's stored counters as the
// other's; a split between equal designs would merely lose warmth, but
// both directions are pinned because dse's proposal detection relies on
// the same equivalence.
func TestCanonicalKeyInjectiveWithinSpaces(t *testing.T) {
	const enumCap = 4096 // the mega space is quick-sampled below instead
	for _, sp := range Spaces() {
		if sp.CountUpTo(enumCap+1) > enumCap {
			continue
		}
		seen := make(map[string]sim.Config)
		for _, pt := range sp.Enumerate() {
			key := sim.CanonicalKey(pt.Config)
			if prev, dup := seen[key]; dup {
				if sim.Canonical(prev) != sim.Canonical(pt.Config) {
					t.Errorf("space %s: distinct designs collide on key %q:\n  %+v\n  %+v",
						sp.Name, key, prev, pt.Config)
				}
				continue
			}
			seen[key] = pt.Config
		}
		if t.Failed() {
			return
		}
	}
}

// megaGenome derives a deterministic random genome of the mega space
// from a seed; ok is false when the constraints prune it.
func megaGenome(t *testing.T, sp Space, seed uint64) (genome []int, cfg sim.Config, ok bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	genome = make([]int, len(sp.Axes))
	for i, a := range sp.Axes {
		genome[i] = rng.Intn(len(a.Values))
	}
	pt, ok := sp.At(genome)
	return genome, pt.Config, ok
}

// TestCanonicalKeyQuickPairs is the testing/quick form of the
// injectivity property over the ~144k-point mega space (too large to
// enumerate): for random point pairs, key equality must coincide with
// canonical-config equality in both directions.
func TestCanonicalKeyQuickPairs(t *testing.T) {
	sp, ok := ByName("mega")
	if !ok {
		t.Fatal("mega space not registered")
	}
	prop := func(s1, s2 uint64) bool {
		_, c1, ok1 := megaGenome(t, sp, s1)
		_, c2, ok2 := megaGenome(t, sp, s2)
		if !ok1 || !ok2 {
			return true // pruned genome: nothing to compare
		}
		return (sim.CanonicalKey(c1) == sim.CanonicalKey(c2)) ==
			(sim.Canonical(c1) == sim.Canonical(c2))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCanonicalKeyQuickNeighbors stresses the collision-prone
// neighborhoods random pairs never reach: a point and a one-axis
// mutation of it. If the mutated design is canonically distinct its key
// must differ; if the mutation lands on a canonically identical design
// (e.g. a buffer-size change behind a bufferless front-end that the
// constraints didn't prune) the keys must agree.
func TestCanonicalKeyQuickNeighbors(t *testing.T) {
	sp, ok := ByName("mega")
	if !ok {
		t.Fatal("mega space not registered")
	}
	prop := func(seed uint64, axis, delta uint8) bool {
		genome, c1, ok := megaGenome(t, sp, seed)
		if !ok {
			return true
		}
		ai := int(axis) % len(sp.Axes)
		vals := len(sp.Axes[ai].Values)
		if vals < 2 {
			return true
		}
		g2 := append([]int{}, genome...)
		g2[ai] = (genome[ai] + 1 + int(delta)%(vals-1)) % vals
		pt2, ok := sp.At(g2)
		if !ok {
			return true
		}
		c2 := pt2.Config
		return (sim.CanonicalKey(c1) == sim.CanonicalKey(c2)) ==
			(sim.Canonical(c1) == sim.Canonical(c2))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCanonicalKeySeparatesCheck pins the -check addressing rule: the
// canonical key keeps checked and unchecked runs apart (a checked cold
// run must really run the oracle), while Canonical strips the flag
// (checking never changes the simulated design).
func TestCanonicalKeySeparatesCheck(t *testing.T) {
	cfg := sim.ProposalVWB()
	checked := cfg
	checked.Check = true
	if sim.CanonicalKey(cfg) == sim.CanonicalKey(checked) {
		t.Error("canonical key ignores Check; a checked run could be served unchecked counters")
	}
	if sim.Canonical(cfg) != sim.Canonical(checked) {
		t.Error("Canonical keeps Check; checking must not split design equality")
	}
}
