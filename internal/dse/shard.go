package dse

// Multi-process sharded sweeps (DESIGN.md §7.7): a shard is a
// deterministic 1-in-N slice of a space's pruned enumeration order, so
// N concurrent processes — coordinating through nothing but the shared
// persistent evaluation store — together simulate the whole space, and
// a subsequent stitch run (the same sweep without -shard) assembles the
// full frontier from cached records, byte-identical to a single-process
// sweep.

import (
	"fmt"
	"strconv"
	"strings"

	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// Shard selects the points whose enumeration index ≡ Index (mod Count).
// The zero value (Count 0) means "no sharding: every point".
type Shard struct {
	Index, Count int
}

// Enabled reports whether the shard actually partitions.
func (sh Shard) Enabled() bool { return sh.Count > 0 }

// String renders the shard the way ParseShard reads it.
func (sh Shard) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// ParseShard parses "i/n" (0 <= i < n). The empty string is the
// disabled shard.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("dse: shard %q is not of the form i/n", s)
	}
	idx, err := strconv.Atoi(i)
	if err != nil {
		return Shard{}, fmt.Errorf("dse: shard index %q: %w", i, err)
	}
	cnt, err := strconv.Atoi(n)
	if err != nil {
		return Shard{}, fmt.Errorf("dse: shard count %q: %w", n, err)
	}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return Shard{}, fmt.Errorf("dse: shard %d/%d out of range (need 0 <= i < n)", idx, cnt)
	}
	return Shard{Index: idx, Count: cnt}, nil
}

// Points returns the slice of pts the shard owns: enumeration index
// modulo Count. Enumeration order is a pure function of the space
// definition, so every process partitions identically.
func (sh Shard) Points(pts []Point) []Point {
	if !sh.Enabled() {
		return pts
	}
	var out []Point
	for _, p := range pts {
		if p.Index%sh.Count == sh.Index {
			out = append(out, p)
		}
	}
	return out
}

// ShardResult is the accounting of one shard pass.
type ShardResult struct {
	Space string
	Shard Shard
	// Points is the number of design points this shard simulated;
	// SpacePoints the space's full pruned count.
	Points, SpacePoints int
	Benches             int
}

// ShardPlan is one shard's work list: every configuration the shard
// must simulate (its owned design points, their penalty baselines, and
// — on shard 0 of a shared-baseline space — the SRAM reference). The
// sweep service leases shards as these resumable units: a re-leased
// shard re-plans identically, and whatever a crashed worker already
// published to the persistent store is a warm hit for its successor, so
// requeued work resumes instead of restarting (DESIGN.md §7.8).
type ShardPlan struct {
	Space string
	Shard Shard
	// Points is the number of design points the shard owns; SpacePoints
	// the space's full pruned count.
	Points, SpacePoints int
	// Configs is the concrete simulation work list, in enumeration
	// order. It may repeat a configuration (per-point baselines of a
	// non-shared-baseline space); the engine's memo deduplicates.
	Configs []sim.Config
}

// Sims returns the plan's simulation count over n benchmarks — the
// progress denominator a worker reports shard completion against (an
// upper bound: the engine's memo may collapse duplicates).
func (p *ShardPlan) Sims(n int) int { return len(p.Configs) * n }

// PlanShard computes the deterministic work list of one shard of the
// space. Enumeration order is a pure function of the space definition,
// so every process — and every re-lease of a crashed worker's shard —
// partitions identically.
func PlanShard(sp Space, sh Shard) (*ShardPlan, error) {
	if !sh.Enabled() {
		return nil, fmt.Errorf("dse: PlanShard needs an enabled shard")
	}
	all := sp.Enumerate()
	if len(all) == 0 {
		return nil, fmt.Errorf("dse: space %q enumerates no points", sp.Name)
	}
	pts := sh.Points(all)
	cfgs := make([]sim.Config, 0, 2*len(pts))
	for _, pt := range pts {
		cfgs = append(cfgs, pt.Config, sp.BaselineFor(pt.Config))
	}
	// The shared SRAM reference is part of the stitch run's evaluation;
	// shard 0 owns it so the stitch misses nothing.
	if sh.Index == 0 {
		base0 := sp.BaselineFor(all[0].Config)
		shared := true
		for _, pt := range all {
			if sp.BaselineFor(pt.Config) != base0 {
				shared = false
				break
			}
		}
		if shared {
			cfgs = append(cfgs, base0)
		}
	}
	return &ShardPlan{
		Space: sp.Name, Shard: sh,
		Points: len(pts), SpacePoints: len(all),
		Configs: cfgs,
	}, nil
}

// EvaluateShard simulates this shard's slice of the space — each owned
// point's configuration and its penalty baseline, over every benchmark
// — through the engine, without scoring or ranking: its entire purpose
// is populating the engine's cache tiers (above all the persistent
// store) so a stitch run assembles the full evaluation from warm
// entries. Shards overlap only on shared baselines, which every process
// stores byte-identically (determinism makes last-writer-wins a no-op).
func EvaluateShard(eng Engine, benches []polybench.Bench, sp Space, sh Shard) (*ShardResult, error) {
	if benches == nil {
		benches = polybench.All()
	}
	plan, err := PlanShard(sp, sh)
	if err != nil {
		return nil, err
	}
	if len(plan.Configs) > 0 {
		if err := eng.Prefetch(benches, plan.Configs...); err != nil {
			return nil, fmt.Errorf("dse: %s shard %s: %w", sp.Name, sh, err)
		}
	}
	return &ShardResult{
		Space: sp.Name, Shard: sh,
		Points: plan.Points, SpacePoints: plan.SpacePoints,
		Benches: len(benches),
	}, nil
}

// String renders the shard pass summary line the CLI prints.
func (r *ShardResult) String() string {
	return fmt.Sprintf("dse-%s shard %s: simulated %d of %d design point(s) over %d benchmark(s)",
		r.Space, r.Shard, r.Points, r.SpacePoints, r.Benches)
}
