// Warm-start contract of the guided search over the persistent store
// (DESIGN.md §7.7): re-running a search against a store populated by a
// previous identical run serves the archive's completed evaluations
// from disk and reproduces the identical Pareto frontier. External
// package for the same reason as dse_test.go.
package dse_test

import (
	"fmt"
	"sort"
	"testing"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/store"
)

// frontierSet renders a search result's rank-0 points as a sorted,
// comparable list of label+objective strings (archive membership of
// dominated points may legitimately differ between cold and warm runs;
// the frontier may not).
func frontierSet(res *dse.SearchResult) []string {
	var out []string
	for _, p := range res.Points {
		if p.Rank == 0 {
			out = append(out, fmt.Sprintf("%s|%.9g|%.9g|%.9g",
				p.Point.Label, p.Obj.PenaltyPct, p.Obj.EnergyUJ, p.Obj.AreaMM2))
		}
	}
	sort.Strings(out)
	return out
}

func TestGuidedSearchWarmStartsFromStore(t *testing.T) {
	dir := t.TempDir()
	benches := twoBenches(t)
	sp, ok := dse.ByName("mega")
	if !ok {
		t.Fatal("mega space not registered")
	}
	opts := dse.SearchOptions{Budget: 12, Seed: 7}

	run := func() (*dse.SearchResult, store.Stats) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		suite := experiments.NewSuiteJobs(benches, 2)
		suite.SetStore(st)
		res, err := dse.Search(suite, benches, sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, st.Stats()
	}

	cold, coldStats := run()
	if coldStats.Writes == 0 {
		t.Fatal("cold search stored nothing")
	}
	warm, warmStats := run()
	if warmStats.Hits == 0 {
		t.Error("warm search hit the store zero times")
	}
	if got, want := frontierSet(warm), frontierSet(cold); !equalStrings(got, want) {
		t.Errorf("warm-start frontier differs from cold:\n  cold %v\n  warm %v", want, got)
	}
	if warm.FullEvals != cold.FullEvals || warm.Generations != cold.Generations {
		t.Errorf("warm search trajectory diverged: %d/%d full evals, %d/%d generations",
			warm.FullEvals, cold.FullEvals, warm.Generations, cold.Generations)
	}
	// A warm-started candidate takes the memoized path instead of
	// abortable replay, so aborts can only go down.
	if warm.Aborted > cold.Aborted {
		t.Errorf("warm search aborted more (%d) than cold (%d)", warm.Aborted, cold.Aborted)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
