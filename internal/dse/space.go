// Package dse is the design-space exploration engine: declarative
// sweeps over the simulator's configuration knobs, memoized evaluation
// of every design point over the benchmark suite, multi-objective
// scoring (performance penalty, DL1 energy, area) and an exact Pareto
// frontier with dominance ranking — the "system level exploration" the
// paper's title promises, generalized beyond its hand-picked points.
//
// A Space names axes (front-end kind, buffer rows, NVM banks, read and
// write latency, store-buffer depth, ...) whose cross product is
// enumerated into concrete sim.Configs, pruned by declarative
// constraints. Evaluation runs through the experiment suite's memoizing
// parallel engine (internal/runner), so the shared SRAM baseline
// simulates once no matter how many points reference it, and output is
// bit-identical at any worker count (DESIGN.md §7.3).
package dse

import (
	"fmt"
	"strings"

	"sttdl1/internal/sim"
)

// Value is one setting of an axis: a human-readable label and the
// mutation it applies to the design point's configuration.
type Value struct {
	Label string
	Apply func(*sim.Config)
}

// Axis is one named dimension of a design space.
type Axis struct {
	Name   string
	Values []Value
}

// Constraint prunes assembled configurations from a space's cross
// product — e.g. a direct (bufferless) front-end makes the buffer-size
// axis meaningless, so all but one of its settings are redundant.
type Constraint struct {
	Desc string
	// Keep reports whether the assembled configuration is a real,
	// distinct design point.
	Keep func(cfg sim.Config) bool
}

// Space is a declarative design space: a base configuration, the axes
// swept over it, and the constraints pruning the cross product.
type Space struct {
	Name string
	Desc string

	// Base returns the starting configuration every point mutates.
	Base func() sim.Config

	// Baseline derives the penalty reference for a point. nil means the
	// SRAM baseline compiled with the point's own options and running on
	// the point's own core (penalty against an equal-software,
	// equal-core SRAM machine — the paper's methodology).
	Baseline func(pt sim.Config) sim.Config

	Axes        []Axis
	Constraints []Constraint

	// PointLabel formats a point's label from its per-axis value labels
	// (parallel to Axes). nil means strings.Join(labels, ", ").
	PointLabel func(labels []string) string
}

// Point is one enumerated design point.
type Point struct {
	// Index is the point's position in the pruned enumeration order.
	Index int
	// Label is the point's display name (PointLabel of the axis labels).
	Label string
	// Labels holds the chosen value label per axis, parallel to Axes.
	Labels []string
	// Config is the assembled simulator configuration.
	Config sim.Config
}

// Size returns the unpruned cross-product size of the space.
func (s Space) Size() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// BaselineFor returns the penalty reference configuration for a design
// point's configuration (see Space.Baseline).
func (s Space) BaselineFor(pt sim.Config) sim.Config {
	if s.Baseline != nil {
		return s.Baseline(pt)
	}
	base := sim.BaselineSRAM()
	base.Compile = pt.Compile
	base.CPU = pt.CPU
	return base
}

// At assembles the single design point at the given per-axis value
// indices (a "genome" in the guided search's terms). It returns false
// when an index is out of range or a constraint prunes the assembled
// configuration. The returned point's Index is -1: computing its
// position in the pruned enumeration order would cost a full
// enumeration, which is exactly what large-space callers are avoiding.
func (s Space) At(idx []int) (Point, bool) {
	if len(idx) != len(s.Axes) || len(s.Axes) == 0 {
		return Point{}, false
	}
	for ai, a := range s.Axes {
		if idx[ai] < 0 || idx[ai] >= len(a.Values) {
			return Point{}, false
		}
	}
	cfg := s.Base()
	labels := make([]string, len(s.Axes))
	for ai, a := range s.Axes {
		v := a.Values[idx[ai]]
		labels[ai] = v.Label
		if v.Apply != nil {
			v.Apply(&cfg)
		}
	}
	if !s.keep(cfg) {
		return Point{}, false
	}
	label := s.label(labels)
	cfg.Name = s.Name + "/" + label
	return Point{Index: -1, Label: label, Labels: labels, Config: cfg}, true
}

// odometer walks the cross product in enumeration order (first axis
// outermost), calling visit for each index vector; visit returns false
// to stop the walk early.
func (s Space) odometer(visit func(idx []int) bool) {
	if len(s.Axes) == 0 {
		return
	}
	idx := make([]int, len(s.Axes))
	for {
		if !visit(idx) {
			return
		}
		ai := len(idx) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(s.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return
		}
	}
}

// Enumerate expands the space's cross product in odometer order (the
// first axis is the outermost digit), applies every axis value to a
// fresh Base configuration, drops configurations any constraint
// rejects, and returns the surviving points. The order is a pure
// function of the space definition, so everything downstream —
// evaluation batches, tables, CSV — is deterministic.
func (s Space) Enumerate() []Point {
	var out []Point
	s.odometer(func(idx []int) bool {
		if p, ok := s.At(idx); ok {
			p.Index = len(out)
			out = append(out, p)
		}
		return true
	})
	return out
}

// CountUpTo counts the space's kept points without materializing them,
// stopping early once limit is reached (limit <= 0 counts everything).
// This is how callers size a mega-space — or prove it small enough to
// enumerate — without building 10^5 Point structs.
func (s Space) CountUpTo(limit int) int {
	n := 0
	s.odometer(func(idx []int) bool {
		if _, ok := s.At(idx); ok {
			n++
			if limit > 0 && n >= limit {
				return false
			}
		}
		return true
	})
	return n
}

func (s Space) keep(cfg sim.Config) bool {
	for _, c := range s.Constraints {
		if !c.Keep(cfg) {
			return false
		}
	}
	return true
}

func (s Space) label(labels []string) string {
	if s.PointLabel != nil {
		return s.PointLabel(labels)
	}
	return strings.Join(labels, ", ")
}

// AxisLabel returns the point's value label on the named axis of sp
// ("" if sp has no such axis).
func (p Point) AxisLabel(sp Space, axis string) string {
	for i, a := range sp.Axes {
		if a.Name == axis && i < len(p.Labels) {
			return p.Labels[i]
		}
	}
	return ""
}

// String implements fmt.Stringer for diagnostics.
func (p Point) String() string { return fmt.Sprintf("#%d %s", p.Index, p.Label) }
