// The evaluation tests live in an external test package so they can
// drive dse through the real experiment suite: internal/experiments
// imports dse (the ablation figures are space definitions), so the
// dependency must point one way only.
package dse_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// smallBenches shrinks every benchmark so a whole space evaluates in
// seconds (same trick as the experiments package's determinism tests).
func smallBenches(t *testing.T) []polybench.Bench {
	t.Helper()
	benches := polybench.All()
	for i := range benches {
		if benches[i].Default > 20 {
			benches[i].Default = 20
		}
	}
	return benches
}

// TestSmokeDeterministicUnderParallelism is the ISSUE's dse determinism
// requirement: evaluating the smoke space at -j 1 and at -j 8 must
// produce byte-identical rendered output — frontier table, full dump
// and CSV — the same contract as internal/experiments/parallel_test.go.
func TestSmokeDeterministicUnderParallelism(t *testing.T) {
	benches := smallBenches(t)

	eval := func(jobs int) *dse.Evaluation {
		s := experiments.NewSuiteJobs(benches, jobs)
		ev, err := dse.Evaluate(s, benches, dse.Smoke())
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	e1, e8 := eval(1), eval(8)

	if !bytes.Equal([]byte(e1.FrontierTable(0).Render()), []byte(e8.FrontierTable(0).Render())) {
		t.Errorf("frontier table differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			e1.FrontierTable(0).Render(), e8.FrontierTable(0).Render())
	}
	if e1.PointsTable().CSV() != e8.PointsTable().CSV() {
		t.Error("points CSV differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(e1.Points, e8.Points) {
		t.Errorf("raw evaluations differ:\nj1: %+v\nj8: %+v", e1.Points, e8.Points)
	}
}

// TestEvaluateMemoizesBaseline: the shared SRAM baseline must simulate
// once per benchmark, not once per design point — total executions are
// (#points + 1 baseline) × #benches.
func TestEvaluateMemoizesBaseline(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default, atax.Default = 16, 40
	benches := []polybench.Bench{gemm, atax}

	s := experiments.NewSuiteJobs(benches, 4)
	ev, err := dse.Evaluate(s, benches, dse.Smoke())
	if err != nil {
		t.Fatal(err)
	}
	points := len(ev.Points) - 1 // minus the SRAM reference
	want := (points + 1) * len(benches)
	if got := s.SimsRun(); got != want {
		t.Errorf("evaluation executed %d sims, want %d (%d points + shared baseline over %d benches)",
			got, want, points, len(benches))
	}
}

// TestProposalSpaceShape pins the structural acceptance criteria: the
// full space enumerates well over 100 points, prunes the redundant
// direct×rows combinations, and contains the paper's proposal
// configuration exactly once.
func TestProposalSpaceShape(t *testing.T) {
	sp := dse.Proposal()
	pts := sp.Enumerate()
	if len(pts) < 100 {
		t.Fatalf("proposal space has %d points, want >= 100", len(pts))
	}
	if len(pts) >= sp.Size() {
		t.Errorf("constraints pruned nothing: %d of %d", len(pts), sp.Size())
	}
	proposals := 0
	for _, pt := range pts {
		if dse.IsProposal(pt.Config) {
			proposals++
		}
		if pt.Config.FrontEnd == sim.FEDirect && pt.Config.BufferBits != 2048 {
			t.Errorf("unpruned direct-front-end point %q with %d buffer bits", pt.Label, pt.Config.BufferBits)
		}
	}
	if proposals != 1 {
		t.Errorf("space contains the paper proposal %d times, want exactly once", proposals)
	}
}

// TestIsProposalNormalizes: the named configuration (implicit defaults)
// and a sweep's explicit spelling of the same design must both match;
// near misses must not.
func TestIsProposalNormalizes(t *testing.T) {
	if !dse.IsProposal(sim.ProposalVWB()) {
		t.Error("named proposal config not recognized")
	}
	explicit := sim.ProposalVWB()
	explicit.DL1Banks = 4
	explicit.DL1ReadLat = 4 // the model's own latency, spelled out
	explicit.DL1WriteLat = 2
	explicit.Name = "proposal/spelled-out"
	if !dse.IsProposal(explicit) {
		t.Error("explicitly spelled proposal config not recognized")
	}
	for _, mutate := range []func(*sim.Config){
		func(c *sim.Config) { c.DL1Banks = 8 },
		func(c *sim.Config) { c.BufferBits = 4096 },
		func(c *sim.Config) { c.DL1ReadLat = 2 },
		func(c *sim.Config) { c.FrontEnd = sim.FEL0 },
	} {
		c := sim.ProposalVWB()
		mutate(&c)
		if dse.IsProposal(c) {
			t.Errorf("mutated config %+v recognized as the proposal", c)
		}
	}
}

// TestAblationSpacesMatchFigureSeries pins the single-sweep-mechanism
// contract: the ablation spaces enumerate exactly the series labels the
// rendered figures always carried, in order.
func TestAblationSpacesMatchFigureSeries(t *testing.T) {
	cases := []struct {
		space dse.Space
		want  []string
	}{
		{dse.AblationBanks(), []string{"1 bank(s)", "2 bank(s)", "4 bank(s)", "8 bank(s)"}},
		{dse.AblationReadLat(), []string{
			"drop-in, read=2cy", "VWB, read=2cy",
			"drop-in, read=3cy", "VWB, read=3cy",
			"drop-in, read=4cy", "VWB, read=4cy",
			"drop-in, read=5cy", "VWB, read=5cy",
			"drop-in, read=6cy", "VWB, read=6cy",
		}},
		{dse.AblationStoreBuf(), []string{
			"store buffer depth 1", "store buffer depth 2", "store buffer depth 4", "store buffer depth 8",
		}},
		{dse.AblationWriteAsym(), []string{"write=1cy", "write=2cy", "write=3cy", "write=4cy"}},
	}
	for _, c := range cases {
		pts := c.space.Enumerate()
		got := make([]string, len(pts))
		for i, pt := range pts {
			got[i] = pt.Label
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s labels = %q, want %q", c.space.Name, got, c.want)
		}
	}
}

// TestStoreBufBaselineFollowsPoint: the store-buffer sweep's penalty
// reference must run on the point's own core, not the default one.
func TestStoreBufBaselineFollowsPoint(t *testing.T) {
	sp := dse.AblationStoreBuf()
	for _, pt := range sp.Enumerate() {
		base := sp.BaselineFor(pt.Config)
		if base.CPU.StoreBufDepth != pt.Config.CPU.StoreBufDepth {
			t.Errorf("point %q: baseline store buffer %d, want %d",
				pt.Label, base.CPU.StoreBufDepth, pt.Config.CPU.StoreBufDepth)
		}
		if base.DL1Cell != sim.BaselineSRAM().DL1Cell {
			t.Errorf("point %q: baseline cell %v, want SRAM", pt.Label, base.DL1Cell)
		}
	}
}

// TestSmokeEvaluationSanity runs the smoke space on two kernels and
// checks the physics the frontier rests on: the SRAM reference has
// penalty 0 and the highest energy (leakage-dominated), every NVM point
// has positive penalty, all objectives are positive and finite, and the
// frontier is non-empty with the reference and the best design points
// on it.
func TestSmokeEvaluationSanity(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	atax, _ := polybench.ByName("atax")
	gemm.Default, atax.Default = 16, 40
	benches := []polybench.Bench{gemm, atax}

	s := experiments.NewSuiteJobs(benches, 4)
	ev, err := dse.Evaluate(s, benches, dse.Smoke())
	if err != nil {
		t.Fatal(err)
	}

	var ref *dse.PointResult
	frontier := 0
	for i := range ev.Points {
		p := &ev.Points[i]
		if p.Obj.EnergyUJ <= 0 || p.Obj.AreaMM2 <= 0 {
			t.Errorf("point %q: non-positive objectives %+v", p.Point.Label, p.Obj)
		}
		if p.Rank == 0 {
			frontier++
		}
		if p.Reference {
			ref = p
			continue
		}
		if p.Obj.PenaltyPct <= 0 {
			t.Errorf("NVM point %q has penalty %.2f, want > 0", p.Point.Label, p.Obj.PenaltyPct)
		}
	}
	if ref == nil {
		t.Fatal("no SRAM reference point in a shared-baseline space")
	}
	if ref.Obj.PenaltyPct != 0 {
		t.Errorf("reference penalty = %.3f, want 0", ref.Obj.PenaltyPct)
	}
	if ref.Rank != 0 {
		t.Errorf("the SRAM reference (penalty 0) must be on the frontier, got rank %d", ref.Rank)
	}
	for _, p := range ev.Points {
		if !p.Reference && p.Obj.EnergyUJ >= ref.Obj.EnergyUJ {
			t.Errorf("NVM point %q energy %.2f >= SRAM %.2f — the paper's energy claim inverted",
				p.Point.Label, p.Obj.EnergyUJ, ref.Obj.EnergyUJ)
		}
	}
	if frontier == 0 {
		t.Error("empty frontier")
	}
	if !strings.Contains(ev.FrontierTable(0).Render(), "paper proposal") {
		t.Error("frontier table does not flag the paper proposal")
	}
}

// TestFrontierTableTop: -top must truncate deterministically and say so.
func TestFrontierTableTop(t *testing.T) {
	gemm, _ := polybench.ByName("gemm")
	gemm.Default = 16
	benches := []polybench.Bench{gemm}
	s := experiments.NewSuiteJobs(benches, 2)
	ev, err := dse.Evaluate(s, benches, dse.Smoke())
	if err != nil {
		t.Fatal(err)
	}
	full := ev.FrontierTable(0)
	if len(full.Rows) < 2 {
		t.Skipf("frontier too small (%d rows) to exercise truncation", len(full.Rows))
	}
	top := ev.FrontierTable(1)
	if len(top.Rows) != 1 {
		t.Fatalf("top-1 table has %d rows", len(top.Rows))
	}
	if !strings.Contains(top.Render(), "showing 1 of") {
		t.Error("truncated table does not note the dropped rows")
	}
}
