package dse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// bruteFrontier is an independently written O(n²) dominance filter the
// property test pins Frontier against: a vector is on the frontier iff
// no other vector is ≤ in every coordinate and < in one. It is written
// as differently as a correct filter reasonably can be (counting
// strictly-better coordinates instead of short-circuiting).
func bruteFrontier(objs [][]float64) []int {
	var out []int
	for i := range objs {
		dominated := false
		for j := range objs {
			if j == i {
				continue
			}
			leq, less := 0, 0
			for d := range objs[j] {
				if objs[j][d] <= objs[i][d] {
					leq++
				}
				if objs[j][d] < objs[i][d] {
					less++
				}
			}
			if leq == len(objs[j]) && less > 0 {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// objSet is a quick.Generator producing random objective matrices:
// up to 60 vectors sharing one dimensionality of 1..4, with values
// drawn from a small grid so duplicates and per-coordinate ties are
// common (the interesting dominance cases).
type objSet [][]float64

func (objSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(60) + 1
	dims := r.Intn(4) + 1
	objs := make([][]float64, n)
	for i := range objs {
		v := make([]float64, dims)
		for d := range v {
			v[d] = float64(r.Intn(8)) // coarse grid forces ties
		}
		objs[i] = v
	}
	return reflect.ValueOf(objSet(objs))
}

// TestFrontierEqualsBruteForce is the ISSUE's property test: the Pareto
// set equals brute-force dominance filtering on random objective
// vectors.
func TestFrontierEqualsBruteForce(t *testing.T) {
	prop := func(objs objSet) bool {
		return reflect.DeepEqual(Frontier(objs), bruteFrontier(objs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRanksProperties checks the non-dominated-sorting invariants on
// random inputs: rank 0 is exactly the frontier; every vector of rank
// r > 0 is dominated by some vector of rank r-1 and by none of rank
// >= r; ranks are dense from 0.
func TestRanksProperties(t *testing.T) {
	prop := func(objs objSet) bool {
		ranks := Ranks(objs)
		if len(ranks) != len(objs) {
			return false
		}
		var rank0 []int
		maxRank := 0
		for i, r := range ranks {
			if r < 0 {
				return false
			}
			if r == 0 {
				rank0 = append(rank0, i)
			}
			if r > maxRank {
				maxRank = r
			}
		}
		if !reflect.DeepEqual(rank0, Frontier(objs)) {
			return false
		}
		seen := make([]bool, maxRank+1)
		for _, r := range ranks {
			seen[r] = true
		}
		for _, s := range seen {
			if !s {
				return false // ranks must be dense
			}
		}
		for i, r := range ranks {
			if r == 0 {
				continue
			}
			foundParent := false
			for j := range objs {
				if !Dominates(objs[j], objs[i]) {
					continue
				}
				if ranks[j] >= r {
					return false // dominated by an equal-or-worse rank
				}
				if ranks[j] == r-1 {
					foundParent = true
				}
			}
			if !foundParent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict coordinate
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{1}, []float64{1, 2}, false}, // length mismatch
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestFrontierKnown pins a hand-checked 2-D example, duplicates
// included: both copies of a non-dominated vector stay on the frontier.
func TestFrontierKnown(t *testing.T) {
	objs := [][]float64{
		{3, 1}, // frontier
		{1, 3}, // frontier
		{2, 2}, // frontier
		{3, 3}, // dominated by {2,2}
		{2, 2}, // duplicate of an optimum: also frontier
		{4, 1}, // dominated by {3,1}
	}
	want := []int{0, 1, 2, 4}
	if got := Frontier(objs); !reflect.DeepEqual(got, want) {
		t.Errorf("Frontier = %v, want %v", got, want)
	}
	ranks := Ranks(objs)
	wantRanks := []int{0, 0, 0, 1, 0, 1}
	if !reflect.DeepEqual(ranks, wantRanks) {
		t.Errorf("Ranks = %v, want %v", ranks, wantRanks)
	}
}

// TestFrontierOrderStable: frontier indices come back in input order
// whatever the value pattern (sortedness is what downstream tables rely
// on for determinism).
func TestFrontierOrderStable(t *testing.T) {
	prop := func(objs objSet) bool {
		f := Frontier(objs)
		return sort.IntsAreSorted(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
