package dse_test

import (
	"reflect"
	"testing"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

// hybridBenches is the small two-kernel slice the hybrid-space
// determinism tests run on (the same slice scripts/check.sh smokes).
func hybridBenches(t *testing.T) []polybench.Bench {
	t.Helper()
	var out []polybench.Bench
	for _, name := range []string{"atax", "gemver"} {
		b, ok := polybench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		if b.Default > 24 {
			b.Default = 24
		}
		out = append(out, b)
	}
	return out
}

// TestHybridSpaceShape pins the latency-hiding space's structure: both
// constraints prune, the paper's proposal appears exactly once, and
// every point is a valid simulator configuration.
func TestHybridSpaceShape(t *testing.T) {
	sp, ok := dse.ByName("hybrid")
	if !ok {
		t.Fatal("hybrid space not registered")
	}
	pts := sp.Enumerate()
	// 2 front-ends × 2 predictor sizes × 3 partitions × 3 intervals = 36,
	// minus 9 vwb×pred=4 duplicates, minus 6 all-SRAM×shutdown points.
	if len(pts) != 21 {
		t.Errorf("hybrid space has %d points, want 21", len(pts))
	}
	if len(pts) >= sp.Size() {
		t.Errorf("constraints pruned nothing: %d of %d", len(pts), sp.Size())
	}
	proposals := 0
	for _, pt := range pts {
		c := pt.Config
		if dse.IsProposal(c) {
			proposals++
		}
		if c.FrontEnd != sim.FEBypass && c.BypassPredEntries != 16 {
			t.Errorf("unpruned predictor point %q (pred=%d on %s)", pt.Label, c.BypassPredEntries, c.FrontEnd)
		}
		if c.SRAMWays == sim.DL1Assoc && c.ShutdownInterval != 0 {
			t.Errorf("unpruned all-SRAM shutdown point %q", pt.Label)
		}
		if _, err := sim.New(c); err != nil {
			t.Errorf("point %q does not build: %v", pt.Label, err)
		}
	}
	if proposals != 1 {
		t.Errorf("space contains the paper proposal %d times, want exactly once", proposals)
	}
}

// hybridEval evaluates the full hybrid space on the small bench slice
// with the given execution mode and worker count.
func hybridEval(t *testing.T, replayMode bool, jobs int) *dse.Evaluation {
	t.Helper()
	sp, _ := dse.ByName("hybrid")
	benches := hybridBenches(t)
	s := experiments.NewSuiteJobs(benches, jobs)
	s.SetReplay(replayMode)
	ev, err := dse.Evaluate(s, benches, sp)
	if err != nil {
		t.Fatalf("evaluate hybrid (replay=%t, jobs=%d): %v", replayMode, jobs, err)
	}
	return ev
}

// TestHybridSpaceLiveVsReplayAndWorkers is the ISSUE's hybrid
// determinism requirement: the evaluation must be identical between
// live execution and trace replay, and between -j 1 and -j 8.
func TestHybridSpaceLiveVsReplayAndWorkers(t *testing.T) {
	live1 := hybridEval(t, false, 1)
	rep1 := hybridEval(t, true, 1)
	rep8 := hybridEval(t, true, 8)
	if !reflect.DeepEqual(live1.Benches, rep1.Benches) || !reflect.DeepEqual(live1.Points, rep1.Points) {
		t.Errorf("hybrid evaluation diverged between live and replay:\nlive   %+v\nreplay %+v",
			live1.Points, rep1.Points)
	}
	if !reflect.DeepEqual(rep1.Benches, rep8.Benches) || !reflect.DeepEqual(rep1.Points, rep8.Points) {
		t.Errorf("hybrid evaluation differs between -j 1 and -j 8:\nj1 %+v\nj8 %+v",
			rep1.Points, rep8.Points)
	}
	if live1.PointsTable().CSV() != rep8.PointsTable().CSV() {
		t.Error("hybrid points CSV not byte-identical across modes")
	}
}

// TestHybridGuidedSearchDeterministic forces the guided path (budget
// below the 21-point space) and demands byte-identical output at any
// worker count — the search determinism contract over the new axes.
func TestHybridGuidedSearchDeterministic(t *testing.T) {
	sp, _ := dse.ByName("hybrid")
	search := func(jobs int) *dse.SearchResult {
		benches := hybridBenches(t)
		s := experiments.NewSuiteJobs(benches, jobs)
		res, err := dse.Search(s, benches, sp, dse.SearchOptions{Budget: 8, Seed: 1})
		if err != nil {
			t.Fatalf("guided hybrid search (jobs=%d): %v", jobs, err)
		}
		return res
	}
	r1, r8 := search(1), search(8)
	if r1.Exhaustive || r8.Exhaustive {
		t.Fatal("budget 8 must force the guided path over 21 points")
	}
	if !reflect.DeepEqual(r1.Points, r8.Points) {
		t.Errorf("guided hybrid search differs between -j 1 and -j 8:\nj1 %+v\nj8 %+v", r1.Points, r8.Points)
	}
	if r1.FrontierTable(0).Render() != r8.FrontierTable(0).Render() {
		t.Error("guided hybrid frontier table not byte-identical across worker counts")
	}
}
