package dse

import (
	"fmt"

	"sttdl1/internal/energy"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

// Engine is the slice of the experiment suite the exploration engine
// needs: memoized, deduplicated simulation with parallel fan-out.
// *experiments.Suite satisfies it; dse stays importable from
// experiments (the ablation figures are defined as spaces) because the
// dependency points this way only.
type Engine interface {
	Run(b polybench.Bench, cfg sim.Config) (*sim.RunResult, error)
	Prefetch(benches []polybench.Bench, cfgs ...sim.Config) error
}

// Objectives is one design point's score vector. All three are
// minimized.
type Objectives struct {
	// PenaltyPct is the suite-average performance penalty (%) against
	// the point's SRAM baseline — the paper's primary metric.
	PenaltyPct float64
	// EnergyUJ is the suite-average DL1-subsystem energy per run (µJ):
	// array leakage + array dynamic + front-end buffer.
	EnergyUJ float64
	// AreaMM2 is the DL1 array area plus the front-end buffer's.
	AreaMM2 float64
}

// Vector returns the objectives as a minimization vector for the
// dominance computation, in (penalty, energy, area) order.
func (o Objectives) Vector() []float64 {
	return []float64{o.PenaltyPct, o.EnergyUJ, o.AreaMM2}
}

// PointResult is one evaluated design point.
type PointResult struct {
	Point Point
	Obj   Objectives
	// Rank is the dominance rank: 0 = on the exact Pareto frontier,
	// rank r is the frontier after ranks < r are removed.
	Rank int
	// Proposal marks the point whose configuration is the paper's VWB
	// proposal (STT-MRAM DL1 behind a 2 Kbit VWB, default banking and
	// model latencies).
	Proposal bool
	// Reference marks the shared SRAM baseline, included as a real
	// design alternative (penalty 0 by construction).
	Reference bool
}

// Evaluation is the outcome of exploring one space over one benchmark
// suite.
type Evaluation struct {
	Space   Space
	Benches []string
	// Points holds every evaluated point in enumeration order, the SRAM
	// reference (when the space has a single shared baseline) last.
	Points []PointResult
}

// Evaluate enumerates the space, fans every (benchmark × configuration)
// simulation — design points and their SRAM baselines — out over the
// engine's worker pool in one batch, then scores each point and
// computes dominance ranks. Results are consumed from the memo in
// enumeration order, so the evaluation is bit-identical at any worker
// count; a second Evaluate over an overlapping space on the same engine
// re-simulates nothing.
func Evaluate(eng Engine, benches []polybench.Bench, sp Space) (*Evaluation, error) {
	if benches == nil {
		benches = polybench.All()
	}
	pts := sp.Enumerate()
	if len(pts) == 0 {
		return nil, fmt.Errorf("dse: space %q enumerates no points", sp.Name)
	}

	// One fan-out over everything the scoring loop will consume. The
	// sim.Config structs are plain values, so the shared-baseline check
	// is plain equality.
	cfgs := make([]sim.Config, 0, 2*len(pts))
	sharedBaseline := true
	base0 := sp.BaselineFor(pts[0].Config)
	for _, pt := range pts {
		b := sp.BaselineFor(pt.Config)
		if b != base0 {
			sharedBaseline = false
		}
		cfgs = append(cfgs, pt.Config, b)
	}
	if err := eng.Prefetch(benches, cfgs...); err != nil {
		return nil, fmt.Errorf("dse: %s: %w", sp.Name, err)
	}

	ev := &Evaluation{Space: sp, Benches: benchNames(benches)}
	for _, pt := range pts {
		obj, err := score(eng, benches, pt.Config, sp.BaselineFor(pt.Config))
		if err != nil {
			return nil, fmt.Errorf("dse: %s: point %s: %w", sp.Name, pt.Label, err)
		}
		ev.Points = append(ev.Points, PointResult{
			Point:    pt,
			Obj:      obj,
			Proposal: IsProposal(pt.Config),
		})
	}
	// The shared SRAM baseline is itself a design alternative: penalty 0
	// at SRAM leakage and area. Include it in the dominance computation
	// when the whole space measures against one baseline.
	if sharedBaseline {
		obj, err := score(eng, benches, base0, base0)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: baseline: %w", sp.Name, err)
		}
		ref := base0
		ev.Points = append(ev.Points, PointResult{
			Point: Point{
				Index:  len(pts),
				Label:  ref.Name,
				Config: ref,
			},
			Obj:       obj,
			Reference: true,
		})
	}

	objs := make([][]float64, len(ev.Points))
	for i, p := range ev.Points {
		objs[i] = p.Obj.Vector()
	}
	for i, r := range Ranks(objs) {
		ev.Points[i].Rank = r
	}
	return ev, nil
}

// score computes one configuration's objectives against its baseline.
// Every simulation it consumes is already memoized by the batch
// fan-out.
func score(eng Engine, benches []polybench.Bench, cfg, base sim.Config) (Objectives, error) {
	model, err := energy.ModelFor(cfg)
	if err != nil {
		return Objectives{}, err
	}
	pens := make([]float64, len(benches))
	var totalUJ float64
	for i, b := range benches {
		br, err := eng.Run(b, base)
		if err != nil {
			return Objectives{}, err
		}
		pr, err := eng.Run(b, cfg)
		if err != nil {
			return Objectives{}, err
		}
		pens[i] = stats.Penalty(br.CPU.Cycles, pr.CPU.Cycles)
		totalUJ += energy.TotalUJ(pr, cfg, model)
	}
	return Objectives{
		PenaltyPct: stats.Mean(pens),
		EnergyUJ:   totalUJ / float64(len(benches)),
		AreaMM2:    areaOf(cfg, model),
	}, nil
}

// IsProposal reports whether cfg is the paper's VWB proposal design
// point, normalizing the knobs a sweep sets explicitly against the
// defaults the named sim.ProposalVWB configuration leaves implicit
// (bank count, buffer size, core config, model latencies).
func IsProposal(cfg sim.Config) bool {
	want := sim.ProposalVWB()
	if cfg.DL1Cell != want.DL1Cell || cfg.FrontEnd != want.FrontEnd {
		return false
	}
	return normalize(cfg) == normalize(want)
}

// normalize resolves a configuration's defaulted knobs to their
// effective values and strips fields that don't change the simulated
// design (Name, Check), so two configs compare equal exactly when they
// key the same simulation. The resolution lives in sim.Canonical — one
// canonical form shared with the persistent store's content addressing.
func normalize(cfg sim.Config) sim.Config { return sim.Canonical(cfg) }

func benchNames(benches []polybench.Bench) []string {
	out := make([]string, len(benches))
	for i, b := range benches {
		out[i] = b.Name
	}
	return out
}
