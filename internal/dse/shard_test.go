package dse

import (
	"testing"
	"testing/quick"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"0/1": {Index: 0, Count: 1},
		"0/2": {Index: 0, Count: 2},
		"1/2": {Index: 1, Count: 2},
		"7/8": {Index: 7, Count: 8},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"2/2", "-1/2", "1/0", "1/-3", "a/b", "1", "1/2/3", "/2", "1/"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted invalid input", in)
		}
	}
	if (Shard{}).Enabled() {
		t.Error("zero shard reports enabled")
	}
	if got := (Shard{Index: 1, Count: 4}).String(); got != "1/4" {
		t.Errorf("String() = %q", got)
	}
}

// TestShardsPartitionExactly pins the coordination-free contract: for
// any shard count, the shards of a space's enumeration are disjoint and
// their union is exactly the full enumeration, independent of which
// process computes them (pure function of the space definition).
func TestShardsPartitionExactly(t *testing.T) {
	sp, ok := ByName("smoke")
	if !ok {
		t.Fatal("smoke space not registered")
	}
	pts := sp.Enumerate()
	prop := func(n uint8) bool {
		count := 1 + int(n)%8
		seen := make(map[int]int) // point index -> owning shard
		total := 0
		for i := 0; i < count; i++ {
			for _, p := range (Shard{Index: i, Count: count}).Points(pts) {
				if _, dup := seen[p.Index]; dup {
					return false // two shards own one point
				}
				seen[p.Index] = i
				total++
			}
		}
		if total != len(pts) {
			return false // union misses points
		}
		for _, p := range pts {
			if seen[p.Index] != p.Index%count {
				return false // ownership is not the documented function
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
