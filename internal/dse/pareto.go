package dse

// Multi-objective dominance over minimization objectives. The sweep
// sizes here (a few hundred points, 2-3 objectives) make the exact
// O(n²·d) formulation the right tool: no approximation, no tie-break
// subtleties, and the property test (pareto_test.go) can pin it against
// an independently written filter.

// Dominates reports whether objective vector a dominates b under
// minimization: a is no worse than b in every objective and strictly
// better in at least one. Vectors of unequal length never dominate.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Frontier returns the indices (in input order) of the non-dominated
// vectors — the exact Pareto frontier. Duplicate vectors do not
// dominate each other, so equal-valued points appear together.
func Frontier(objs [][]float64) []int {
	var out []int
	for i, a := range objs {
		dominated := false
		for j, b := range objs {
			if i != j && Dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// Ranks computes the dominance rank of every vector by iterative
// non-dominated sorting: rank 0 is the Pareto frontier, rank 1 the
// frontier of what remains after removing rank 0, and so on. Every
// vector of rank r > 0 is dominated by at least one vector of rank
// r - 1.
func Ranks(objs [][]float64) []int {
	ranks := make([]int, len(objs))
	for i := range ranks {
		ranks[i] = -1
	}
	remaining := len(objs)
	for rank := 0; remaining > 0; rank++ {
		// One peeling pass: a vector joins this rank if nothing still
		// unranked dominates it.
		var layer []int
		for i, a := range objs {
			if ranks[i] >= 0 {
				continue
			}
			dominated := false
			for j, b := range objs {
				if ranks[j] < 0 && i != j && Dominates(b, a) {
					dominated = true
					break
				}
			}
			if !dominated {
				layer = append(layer, i)
			}
		}
		for _, i := range layer {
			ranks[i] = rank
		}
		remaining -= len(layer)
	}
	return ranks
}
