// Package sttdl1 is a from-scratch Go reproduction of "System level
// exploration of a STT-MRAM based Level 1 Data-Cache" (Komalan et al.,
// DATE 2015): a cycle-approximate ARM-like platform simulator with an
// SRAM/STT-MRAM technology model, the paper's Very Wide Buffer DL1
// front-end, a small vectorizing kernel compiler implementing the
// paper's code transformations, and a PolyBench-subset workload suite.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The root package holds only documentation
// and the benchmark harness (bench_test.go) that regenerates every table
// and figure of the paper.
package sttdl1
