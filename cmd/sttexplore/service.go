package main

// The sweep-service subcommands (DESIGN.md §7.8): serve runs the
// coordinator (plus optional local workers), worker joins a running
// server from another process or machine, submit is the job client, and
// store maintains a persistent evaluation store directory. All four
// resolve spaces and benchmarks against the same registries as dse, and
// a served job's result is byte-identical to the corresponding
// single-process `sttexplore dse` run.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sttdl1/internal/serve"
	"sttdl1/internal/store"
)

type serveFlagVals struct {
	addr     *string
	storeDir *string
	workers  *int
	jobs     *int
	queue    *int
	shards   *int
	leaseTTL *time.Duration
	drain    *time.Duration
	addrFile *string
	verbose  *bool
}

func newServeFlagSet() (*flag.FlagSet, *serveFlagVals) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	v := &serveFlagVals{
		addr:     fs.String("addr", ":8080", "listen address"),
		storeDir: fs.String("store", "", "persistent evaluation store directory (required; workers coordinate through it)"),
		workers:  fs.Int("workers", 1, "local worker goroutines (0 = coordinator only, external workers connect with 'sttexplore worker')"),
		jobs:     fs.Int("j", 0, "parallel simulations per worker and for the stitch (0 = GOMAXPROCS)"),
		queue:    fs.Int("queue", 0, "max jobs queued or running; submissions beyond answer 429 (0 = 16)"),
		shards:   fs.Int("shards", 0, "default shard count for jobs that don't choose one (0 = 1)"),
		leaseTTL: fs.Duration("lease-ttl", 0, "heartbeat deadline per shard lease; an expired lease requeues its shard (0 = 15s)"),
		drain:    fs.Duration("drain", 30*time.Second, "on SIGINT/SIGTERM, wait this long for leased shards to finish before requeuing them"),
		addrFile: fs.String("addr-file", "", "write the resolved listen address (host:port) to this file once serving"),
		verbose:  fs.Bool("v", false, "log jobs, leases and requeues"),
	}
	return fs, v
}

type workerFlagVals struct {
	connect  *string
	storeDir *string
	name     *string
	jobs     *int
	poll     *time.Duration
	verbose  *bool
}

func newWorkerFlagSet() (*flag.FlagSet, *workerFlagVals) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	v := &workerFlagVals{
		connect:  fs.String("connect", "", "server base URL or host:port (required)"),
		storeDir: fs.String("store", "", "persistent evaluation store directory shared with the server (required)"),
		name:     fs.String("name", "", "worker name in leases and events (default worker-<pid>)"),
		jobs:     fs.Int("j", 0, "parallel simulations (0 = GOMAXPROCS)"),
		poll:     fs.Duration("poll", 0, "idle re-poll interval (0 = 200ms)"),
		verbose:  fs.Bool("v", false, "log leases and shard outcomes"),
	}
	return fs, v
}

type storeFlagVals struct {
	dir      *string
	maxBytes *int64
}

func newStoreFlagSet() (*flag.FlagSet, *storeFlagVals) {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	v := &storeFlagVals{
		dir:      fs.String("dir", "", "store directory (required)"),
		maxBytes: fs.Int64("max-bytes", -1, "gc: evict oldest records until the store is at or under this many bytes (required for gc; 0 empties the store)"),
	}
	return fs, v
}

type submitFlagVals struct {
	connect   *string
	space     *string
	axes      *string
	benchList *string
	search    *string
	budget    *int
	seed      *int64
	shards    *int
	check     *bool
	format    *string
	top       *int
	wait      *bool
	verbose   *bool
}

func newSubmitFlagSet() (*flag.FlagSet, *submitFlagVals) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	v := &submitFlagVals{
		connect:   fs.String("connect", "", "server base URL or host:port (required)"),
		space:     fs.String("space", "", "built-in design space (server default: smoke)"),
		axes:      fs.String("axes", "", `restrict axes to value-label subsets, as JSON: '{"front-end":["vwb","direct"]}'`),
		benchList: fs.String("bench", "", "comma-separated benchmark subset (default: all)"),
		search:    fs.String("search", "", "exhaustive or guided (server default: exhaustive)"),
		budget:    fs.Int("budget", 0, "guided: full-suite evaluation budget (server default: 64)"),
		seed:      fs.Int64("seed", 0, "guided: proposal RNG seed (server default: 1)"),
		shards:    fs.Int("shards", 0, "partition the exhaustive sweep into this many worker leases (0 = server default)"),
		check:     fs.Bool("check", false, "run every simulation under the timing-contract oracle"),
		format:    fs.String("format", "csv", "result format: csv, table or json"),
		top:       fs.Int("top", 0, "fetch only the first N result rows (server-side ?limit= paging; 0 = all)"),
		wait:      fs.Bool("wait", true, "follow the job and print its result (false: print the job id and exit)"),
		verbose:   fs.Bool("v", false, "stream job events to stderr while waiting"),
	}
	return fs, v
}

// serviceURL normalizes a -connect value to a base URL.
func serviceURL(connect string) string {
	if strings.Contains(connect, "://") {
		return strings.TrimSuffix(connect, "/")
	}
	return "http://" + connect
}

// clientAddr rewrites a wildcard listen address to a dialable loopback
// one (":8080" listens on every interface; a client needs a host).
func clientAddr(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func serveLogf(verbose bool) func(string, ...any) {
	if !verbose {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
	}
}

func cmdServe(args []string) error {
	fs, v := newServeFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if *v.storeDir == "" {
		return fmt.Errorf("serve: -store is required (workers and the stitch coordinate through it)")
	}
	st, err := store.Open(*v.storeDir)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		Store:         st,
		Jobs:          *v.jobs,
		Queue:         *v.queue,
		LeaseTTL:      *v.leaseTTL,
		DefaultShards: *v.shards,
		Logf:          serveLogf(*v.verbose),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *v.addr)
	if err != nil {
		return err
	}
	addr := clientAddr(ln.Addr())
	if *v.addrFile != "" {
		if err := os.WriteFile(*v.addrFile, []byte(addr+"\n"), 0o666); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sttexplore serve: listening on %s (store %s, %d local worker(s))\n",
		addr, *v.storeDir, *v.workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < *v.workers; i++ {
		w := &serve.Worker{
			URL:   "http://" + addr,
			Store: st,
			Name:  fmt.Sprintf("local-%d", i),
			Jobs:  *v.jobs,
			Logf:  serveLogf(*v.verbose),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if werr := w.Run(ctx); werr != nil {
				fmt.Fprintln(os.Stderr, "sttexplore:", werr)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		stop()
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, give leased shards -drain to
	// finish (requeued leftovers die with the process — their published
	// results survive in the store, so a resubmission resumes warm).
	fmt.Fprintln(os.Stderr, "sttexplore serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *v.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sttexplore serve: drain deadline passed, leased shards requeued\n")
	}
	wg.Wait()
	closeCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	hs.Shutdown(closeCtx)
	return nil
}

func cmdWorker(args []string) error {
	fs, v := newWorkerFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("worker: unexpected argument %q", fs.Arg(0))
	}
	if *v.connect == "" {
		return fmt.Errorf("worker: -connect is required")
	}
	if *v.storeDir == "" {
		return fmt.Errorf("worker: -store is required (results flow through the shared store)")
	}
	st, err := store.Open(*v.storeDir)
	if err != nil {
		return err
	}
	name := *v.name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &serve.Worker{
		URL:   serviceURL(*v.connect),
		Store: st,
		Name:  name,
		Jobs:  *v.jobs,
		Poll:  *v.poll,
		Logf:  serveLogf(*v.verbose),
	}
	fmt.Fprintf(os.Stderr, "sttexplore worker: %s pulling from %s\n", name, serviceURL(*v.connect))
	return w.Run(ctx)
}

// cmdStore maintains a store directory: `store -dir DIR stats` deep-
// scans (healing corrupt entries), `store -dir DIR gc -max-bytes B`
// evicts oldest-first down to the byte budget. Flags may precede or
// follow the verb.
func cmdStore(args []string) error {
	fs, v := newStoreFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("store: need a verb: stats or gc")
	}
	verb := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("store: unexpected argument %q", fs.Arg(0))
	}
	if *v.dir == "" {
		return fmt.Errorf("store: -dir is required")
	}
	st, err := store.Open(*v.dir)
	if err != nil {
		return err
	}
	switch verb {
	case "stats":
		d, err := st.Verify()
		if err != nil {
			return err
		}
		fmt.Printf("store %s: %s\n", *v.dir, d)
	case "gc":
		if *v.maxBytes < 0 {
			return fmt.Errorf("store gc: -max-bytes is required (0 empties the store)")
		}
		res, err := st.GC(*v.maxBytes)
		if err != nil {
			return err
		}
		fmt.Printf("store %s: %s\n", *v.dir, res)
	default:
		return fmt.Errorf("store: unknown verb %q (want stats or gc)", verb)
	}
	return nil
}

func cmdSubmit(args []string) error {
	fs, v := newSubmitFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("submit: unexpected argument %q", fs.Arg(0))
	}
	if *v.connect == "" {
		return fmt.Errorf("submit: -connect is required")
	}
	base := serviceURL(*v.connect)

	req := serve.JobRequest{
		Space:  *v.space,
		Search: *v.search,
		Budget: *v.budget,
		Seed:   *v.seed,
		Shards: *v.shards,
		Check:  *v.check,
	}
	if *v.axes != "" {
		if err := json.Unmarshal([]byte(*v.axes), &req.Axes); err != nil {
			return fmt.Errorf("submit: -axes: %w", err)
		}
	}
	if *v.benchList != "" {
		for _, name := range strings.Split(*v.benchList, ",") {
			req.Benches = append(req.Benches, strings.TrimSpace(name))
		}
	}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	js, err := decodeJob(resp, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s: space %s, %s, %d shard(s)\n",
		js.ID, js.Space, js.Search, js.Shards.Total)
	if !*v.wait {
		fmt.Println(js.ID)
		return nil
	}

	// The event stream is the wait: the server closes it after the
	// terminal event.
	if err := followEvents(base, js.ID, *v.verbose); err != nil {
		return err
	}
	for {
		resp, err := http.Get(base + "/v1/jobs/" + js.ID)
		if err != nil {
			return err
		}
		st, err := decodeJob(resp, http.StatusOK)
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return printResult(base, js.ID, *v.format, *v.top)
		case "failed":
			return fmt.Errorf("job %s failed: %s", js.ID, st.Error)
		case "canceled":
			return fmt.Errorf("job %s was canceled", js.ID)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func decodeJob(resp *http.Response, want int) (serve.JobStatus, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobStatus{}, err
	}
	if resp.StatusCode != want {
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return serve.JobStatus{}, fmt.Errorf("server: %s (status %d)", ed.Error, resp.StatusCode)
		}
		return serve.JobStatus{}, fmt.Errorf("server answered %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var js serve.JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		return serve.JobStatus{}, err
	}
	return js, nil
}

func followEvents(base, id string, verbose bool) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if !verbose {
			continue
		}
		var ev serve.Event
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		line := fmt.Sprintf("  %s %s", ev.Type, ev.Shard)
		if ev.Worker != "" {
			line += " @" + ev.Worker
		}
		if ev.Sims > 0 {
			line += fmt.Sprintf(" (%d sims)", ev.Sims)
		}
		if ev.Msg != "" {
			line += ": " + ev.Msg
		}
		fmt.Fprintln(os.Stderr, line)
	}
	return sc.Err()
}

// printResult fetches the job result and copies it to stdout. top > 0
// asks the server for the first top rows only (?limit= paging), so a
// mega-space result never ships in full just to show its head.
func printResult(base, id, format string, top int) error {
	url := base + "/v1/jobs/" + id + "/result?format=" + format
	if top > 0 {
		url += fmt.Sprintf("&limit=%d", top)
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("result: server answered %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
