package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// buildCLI compiles the sttexplore binary into a test temp dir; the
// sharded-sweep test needs real separate processes (the whole point is
// cross-process coordination through the store directory).
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sttexplore")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runCLI runs the binary and returns stdout; stderr rides along only in
// the failure message (progress and store stats go there by design).
func runCLI(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", bin, args, err, stderr.String())
	}
	return stdout.Bytes()
}

// TestShardedSweepStitchesByteIdentical is the multi-process
// acceptance test: two concurrent OS processes each simulate one shard
// of a sweep into a shared store directory, coordinating through
// nothing else; a third (stitch) process then assembles the full
// evaluation from the warm store. Its CSV must be byte-identical to a
// plain single-process parallel sweep that never saw a store.
func TestShardedSweepStitchesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI four times")
	}
	bin := buildCLI(t)
	storeDir := t.TempDir()
	sweep := []string{"dse", "-space", "smoke", "-bench", "atax,gesummv"}

	ref := runCLI(t, bin, append(append([]string{}, sweep...), "-j", "8", "-csv")...)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	outs := make([][]byte, 2)
	for i, shard := range []string{"0/2", "1/2"} {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			var stdout, stderr bytes.Buffer
			cmd := exec.Command(bin, append(append([]string{}, sweep...),
				"-j", "4", "-store", storeDir, "-shard", shard)...)
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Errorf("shard %s: %v\nstderr:\n%s", shard, err, stderr.String())
				errs[i] = err
			}
			outs[i] = stdout.Bytes()
		}(i, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.FailNow()
		}
	}
	for i, out := range outs {
		if !bytes.Contains(out, []byte("shard")) {
			t.Errorf("shard process %d printed no summary: %q", i, out)
		}
	}

	stitch := runCLI(t, bin, append(append([]string{}, sweep...),
		"-j", "8", "-csv", "-store", storeDir)...)
	if !bytes.Equal(stitch, ref) {
		t.Errorf("stitched sweep differs from single-process sweep:\n--- single\n%s\n--- stitched\n%s", ref, stitch)
	}

	// And the stitch run left a fully-warm store behind: a repeat run
	// must also be byte-identical (and is the ≥10x warm path check.sh
	// and bench.sh time).
	warm := runCLI(t, bin, append(append([]string{}, sweep...),
		"-j", "8", "-csv", "-store", storeDir)...)
	if !bytes.Equal(warm, ref) {
		t.Error("warm repeat sweep differs from single-process sweep")
	}
}

// TestShardFlagValidation pins the CLI-level guard rails: sharding
// requires the store (processes coordinate through nothing else) and
// the exhaustive strategy.
func TestShardFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI")
	}
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"dse", "-space", "smoke", "-shard", "0/2"},
		{"dse", "-space", "smoke", "-shard", "0/2", "-store", t.TempDir(), "-search", "guided"},
		{"dse", "-space", "smoke", "-shard", "2/2", "-store", t.TempDir()},
	} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("%v: expected a usage error, command succeeded", args)
		}
	}
}
