// Command sttexplore runs the paper-reproduction experiments: every
// table and figure of "System level exploration of a STT-MRAM based
// Level 1 Data-Cache" (DATE 2015), plus the extension ablations.
//
// Usage:
//
//	sttexplore list
//	sttexplore run [-bench name,name] [-j N] [-v] [-csv] [-check] [-replay on|off] [-store DIR] <id>|all|paper
//	sttexplore dse [-space name] [-search exhaustive|guided] [-budget N] [-seed S] [-bench name,name] [-j N] [-gang N] [-v] [-csv] [-top N] [-check] [-replay on|off] [-store DIR] [-shard i/n]
//	sttexplore bench [-cfg sram|dropin|vwb|l0|emshr|bypass|hybrid] [-opt] [-n size] [-v] [-check] [-replay on|off] [-store DIR] <kernel>
//	sttexplore serve [-addr :8080] -store DIR [-workers N]
//	sttexplore worker -connect URL -store DIR
//	sttexplore submit -connect URL [-space name] [-shards N] [-format csv] [-top N]
//	sttexplore store -dir DIR stats|gc [-max-bytes B]
//
// run, dse and bench take -cpuprofile/-memprofile to write pprof
// profiles (see EXPERIMENTS.md "Profiling").
//
// serve/worker/submit are the sweep service (DESIGN.md §7.8): a
// coordinator that partitions exhaustive sweeps into shard leases,
// dispatches them to workers (local goroutines or external processes
// sharing only the persistent store), survives worker failure by
// heartbeat-deadline requeue, and serves final frontiers byte-identical
// to a single-process dse run.
//
// Examples:
//
//	sttexplore run fig1          # the drop-in motivation experiment
//	sttexplore run paper         # Table I + Figs. 1,3-9
//	sttexplore run -j 8 all      # paper artifacts + ablations, 8 workers
//	sttexplore dse -space smoke  # fast design-space sweep + Pareto frontier
//	sttexplore dse -space proposal -csv   # full ~240-point space, CSV dump
//	sttexplore dse -space hybrid # latency-hiding space: bypass/partition/shutdown
//	sttexplore dse -space mega -search guided -budget 64 -seed 1
//	                             # metaheuristic search over ~144k points
//	sttexplore bench -cfg vwb -opt gemm
//
// Simulations fan out over -j workers (default GOMAXPROCS); figures and
// design-space evaluations are bit-identical at any -j by the
// determinism contract (DESIGN.md §7).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sttdl1/internal/compile"
	"sttdl1/internal/dse"
	"sttdl1/internal/energy"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "dse":
		err = cmdDse(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sttexplore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttexplore:", err)
		os.Exit(1)
	}
}

func usage() { fmt.Fprintln(os.Stderr, usageText()) }

// usageText builds the help text from the same registries the commands
// resolve against — the bench configuration table and the built-in
// design spaces — so new entries appear here without a second edit. The
// drift test (main_test.go) additionally checks every registered
// command flag against this text.
func usageText() string {
	return fmt.Sprintf(`usage:
  sttexplore list
  sttexplore run [-bench a,b,...] [-j N] [-v] [-csv] [-check] [-replay on|off] [-store DIR] <id>|all|paper
  sttexplore dse [-space name] [-search exhaustive|guided] [-budget N] [-seed S] [-bench a,b,...] [-j N] [-gang N] [-v] [-csv] [-top N] [-check] [-replay on|off] [-store DIR] [-shard i/n]
  sttexplore bench [-cfg %s] [-opt] [-n size] [-v] [-check] [-replay on|off] [-store DIR] <kernel>
  sttexplore serve [-addr :8080] -store DIR [-workers N] [-j N] [-queue N] [-shards N] [-lease-ttl D] [-drain D] [-addr-file FILE] [-v]
  sttexplore worker -connect URL -store DIR [-name s] [-j N] [-poll D] [-v]
  sttexplore submit -connect URL [-space name] [-axes JSON] [-bench a,b,...] [-search mode] [-budget N] [-seed S] [-shards N] [-check] [-format csv|table|json] [-top N] [-wait=false] [-v]
  sttexplore store -dir DIR stats|gc [-max-bytes B]

run flags:
  -j N    run up to N simulations in parallel (0 = GOMAXPROCS);
          output is bit-identical at any -j
  -v      log each completed simulation + a final engine summary
  -csv    emit CSV instead of aligned tables
  -check  verify the timing contract (causality, clock monotonicity,
          shadow-state agreement) on every access; results unchanged,
          any violation fails the run
  -replay on|off
          trace replay (default on): functionally execute each kernel
          once, re-run only the timing model per configuration; results
          are byte-identical to live execution
  -store DIR
          persistent evaluation store (all commands; default off): every
          finished simulation's counters are cached on disk, addressed
          by the content of the evaluation (trace bytes + canonical
          configuration + energy-model parameters + schema version); a
          warm hit skips the timing model entirely. Results are
          byte-identical with or without it. Safe to share between
          concurrent processes.
  -cpuprofile/-memprofile FILE
          write pprof profiles (all commands)

dse flags:
  -space  built-in design space to explore (default smoke):
          %s
  -search exhaustive (default) evaluates every point; guided runs the
          frontier-guided metaheuristic (mutation/crossover of the
          Pareto archive + annealed random exploration, a truncated-
          replay cheap rung, early-abort full evaluations) — the only
          way through the ~144k-point mega space
  -budget guided: full-suite evaluation budget (default 64)
  -seed   guided: proposal RNG seed (default 1); equal seeds give
          bit-identical output at any -j
  -top N  keep only the N lowest-penalty rows of the frontier table
  -gang N gang replay width: walk each captured trace once for N
          configurations at a time instead of once per configuration
          (replay mode only; 0 = auto width per benchmark, 1 = off).
          Results are cycle-identical at any width
  -csv    dump every evaluated point (objectives, dominance rank) as CSV
  -shard i/n
          simulate only the points whose enumeration index ≡ i (mod n)
          into the store (exhaustive + -store only; prints a summary, no
          frontier). n processes with shards 0/n..n-1/n cover the space;
          a follow-up run without -shard stitches the full evaluation
          from the warm store, byte-identical to a single-process sweep
  -j/-v/-bench/-check/-store as for run

bench flags:
  -cfg    named configuration: %s
  -opt    apply all code transformations
  -n      problem size override (0 = benchmark default)
  -v      also print the configuration's technology model

serve flags (sweep-as-a-service; results byte-identical to dse):
  -addr   listen address (default :8080)
  -store  shared persistent store directory (required) — workers and the
          final stitch coordinate through it, nothing else
  -workers
          local worker goroutines (default 1; 0 = coordinator only,
          external 'sttexplore worker' processes pull shards instead)
  -queue  max queued+running jobs; beyond it submissions answer 429
  -shards default shard count for jobs that don't choose one
  -lease-ttl
          heartbeat deadline per shard lease; a silent worker's shard
          requeues and its successor resumes from the warm store
  -drain  SIGINT/SIGTERM grace for leased shards before requeuing
  -addr-file
          write the resolved host:port to FILE once serving (scripts)

worker flags:
  -connect  server base URL or host:port (required)
  -name     worker name in leases and events (default worker-<pid>)
  -poll     idle re-poll interval
  -store/-j as for serve

submit flags (job client):
  -connect  server base URL or host:port (required)
  -axes     restrict axes to value subsets, as JSON:
            '{"front-end":["vwb","direct"]}'
  -format   result format: csv (dse -csv bytes), table, json
  -top N    fetch only the first N result rows (the server pages with
            ?offset=/?limit=; a fetched page says what it omitted)
  -wait     follow the job and print its result (default true;
            -wait=false prints the job id and exits)
  -space/-bench/-search/-budget/-seed/-shards/-check as for dse

store verbs (maintenance of a -store directory):
  stats   deep-scan: record count, bytes, corrupt entries healed
  gc      evict oldest records until at or under -max-bytes
  -dir    store directory (required)
  -max-bytes
          gc byte budget (required for gc; 0 empties the store)`,
		strings.Join(benchConfigNames(), "|"),
		strings.Join(dse.Names(), ", "),
		strings.Join(benchConfigNames(), ", "))
}

// benchConfigs is the `sttexplore bench -cfg` registry, in the order
// usage lists it. bypass is the prediction-driven NVM read bypass and
// hybrid stacks all three latency-hiding mechanisms (bypass front-end,
// 1 SRAM way, dynamic way shutdown) on the STT-MRAM DL1.
var benchConfigs = []struct {
	name string
	make func() sim.Config
}{
	{"sram", sim.BaselineSRAM},
	{"dropin", sim.DropInSTT},
	{"vwb", sim.ProposalVWB},
	{"l0", func() sim.Config {
		cfg := sim.ProposalVWB()
		cfg.FrontEnd = sim.FEL0
		cfg.Name = "stt-l0"
		return cfg
	}},
	{"emshr", func() sim.Config {
		cfg := sim.ProposalVWB()
		cfg.FrontEnd = sim.FEEMSHR
		cfg.Name = "stt-emshr"
		return cfg
	}},
	{"bypass", func() sim.Config {
		cfg := sim.ProposalVWB()
		cfg.FrontEnd = sim.FEBypass
		cfg.Name = "stt-bypass"
		return cfg
	}},
	{"hybrid", func() sim.Config {
		cfg := sim.ProposalVWB()
		cfg.FrontEnd = sim.FEBypass
		cfg.SRAMWays = 1
		cfg.ShutdownInterval = 4096
		cfg.Name = "stt-hybrid"
		return cfg
	}},
}

func benchConfigNames() []string {
	out := make([]string, len(benchConfigs))
	for i, c := range benchConfigs {
		out[i] = c.name
	}
	return out
}

// profileFlags registers the shared pprof flags (-cpuprofile,
// -memprofile) on a command's flag set and returns a start function
// whose stop must run before the process exits (see EXPERIMENTS.md
// "Profiling").
func profileFlags(fs *flag.FlagSet) func() (stop func() error, err error) {
	cpuOut := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memOut := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpuOut != "" {
			f, err := os.Create(*cpuOut)
			if err != nil {
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			cpuFile = f
		}
		return func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return err
				}
			}
			if *memOut != "" {
				f, err := os.Create(*memOut)
				if err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
				defer f.Close()
				runtime.GC() // up-to-date allocation stats
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
			}
			return nil
		}, nil
	}
}

// replayFlag registers -replay on a command's flag set and returns a
// parser for its on/off value.
func replayFlag(fs *flag.FlagSet) func() (bool, error) {
	mode := fs.String("replay", "on", "trace replay: capture each kernel's instruction stream once, re-run only the timing model per design point (on/off; results are byte-identical either way)")
	return func() (bool, error) {
		switch *mode {
		case "on":
			return true, nil
		case "off":
			return false, nil
		}
		return false, fmt.Errorf("-replay must be on or off (got %q)", *mode)
	}
}

// storeFlag registers -store on a command's flag set and returns an
// opener for the persistent evaluation store (nil store when the flag
// is unset).
func storeFlag(fs *flag.FlagSet) func() (*store.Store, error) {
	dir := fs.String("store", "", "persistent evaluation store directory (default off); warm hits skip the timing model, results are byte-identical either way")
	return func() (*store.Store, error) {
		if *dir == "" {
			return nil, nil
		}
		return store.Open(*dir)
	}
}

// reportStore prints the store's counter summary to stderr after a run
// with an attached store.
func reportStore(suite *experiments.Suite, st *store.Store) {
	if st != nil {
		fmt.Fprintf(os.Stderr, "store: %s\n", suite.StoreStats())
	}
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, r := range experiments.Registry() {
		tag := "ext  "
		if r.Paper {
			tag = "paper"
		}
		fmt.Printf("  %-20s [%s] %s\n", r.ID, tag, r.Desc)
	}
	fmt.Println("\ndesign spaces (sttexplore dse -space <name>):")
	for _, sp := range dse.Spaces() {
		// CountUpTo sizes the space without materializing it, and the cap
		// keeps the listing cheap: CountUpTo(0) would walk every point of
		// the >10^5-point mega space just to print its size.
		const listCountCap = 100000
		n := sp.CountUpTo(listCountCap)
		count := fmt.Sprintf("%d", n)
		// Spaces small enough to enumerate partition into dse -shard /
		// serve worker leases; anything at the cap is guided-search only.
		mode := "shardable"
		if n >= listCountCap {
			count = fmt.Sprintf("≥%d", listCountCap)
			mode = "guided-only"
		}
		fmt.Printf("  %-20s %7s point(s)  %-11s %s\n", sp.Name, count, mode, sp.Desc)
	}
	fmt.Println("\nbenchmarks:")
	for _, b := range polybench.All() {
		fmt.Printf("  %-10s n=%-4d %s\n", b.Name, b.Default, b.Desc)
	}
	return nil
}

// Flag-set constructors. Each command builds its set through one of
// these, and the usage drift test enumerates them (commandFlagSets) to
// check the help text — registering a flag without mentioning it in
// usageText fails the test.

type runFlagVals struct {
	benchList  *string
	verbose    *bool
	csv        *bool
	jobs       *int
	checked    *bool
	replayMode func() (bool, error)
	storeOpen  func() (*store.Store, error)
	profile    func() (func() error, error)
}

func newRunFlagSet() (*flag.FlagSet, *runFlagVals) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	v := &runFlagVals{
		benchList: fs.String("bench", "", "comma-separated benchmark subset (default: all)"),
		verbose:   fs.Bool("v", false, "log each simulation"),
		csv:       fs.Bool("csv", false, "emit CSV instead of aligned tables"),
		jobs:      fs.Int("j", 0, "parallel simulations (0 = GOMAXPROCS); output is identical at any -j"),
		checked:   fs.Bool("check", false, "run every simulation under the timing-contract oracle"),
	}
	v.replayMode = replayFlag(fs)
	v.storeOpen = storeFlag(fs)
	v.profile = profileFlags(fs)
	return fs, v
}

type dseFlagVals struct {
	runFlagVals
	spaceName  *string
	top        *int
	searchMode *string
	budget     *int
	seed       *int64
	shard      *string
	gang       *int
}

func newDseFlagSet() (*flag.FlagSet, *dseFlagVals) {
	fs := flag.NewFlagSet("dse", flag.ExitOnError)
	v := &dseFlagVals{
		spaceName:  fs.String("space", "smoke", "built-in design space (see 'sttexplore list')"),
		top:        fs.Int("top", 0, "keep only the N lowest-penalty frontier rows (0 = all)"),
		searchMode: fs.String("search", "exhaustive", "exploration strategy: exhaustive, or guided (frontier-guided metaheuristic with a full-evaluation budget)"),
		budget:     fs.Int("budget", 64, "guided search: full-suite evaluation budget"),
		seed:       fs.Int64("seed", 1, "guided search: proposal RNG seed (printed in the report header)"),
		shard:      fs.String("shard", "", "simulate only shard i/n of the space into the store (exhaustive + -store only)"),
		gang:       fs.Int("gang", 0, "gang replay width: configurations per trace walk (0 = auto per benchmark, 1 = off); results are cycle-identical at any width"),
	}
	v.benchList = fs.String("bench", "", "comma-separated benchmark subset (default: all)")
	v.verbose = fs.Bool("v", false, "log each simulation")
	v.csv = fs.Bool("csv", false, "dump every evaluated point as CSV instead of the frontier table")
	v.jobs = fs.Int("j", 0, "parallel simulations (0 = GOMAXPROCS); output is identical at any -j")
	v.checked = fs.Bool("check", false, "run every simulation under the timing-contract oracle")
	v.replayMode = replayFlag(fs)
	v.storeOpen = storeFlag(fs)
	v.profile = profileFlags(fs)
	return fs, v
}

type benchFlagVals struct {
	cfgName    *string
	opt        *bool
	size       *int
	verbose    *bool
	checked    *bool
	replayMode func() (bool, error)
	storeOpen  func() (*store.Store, error)
	profile    func() (func() error, error)
}

func newBenchFlagSet() (*flag.FlagSet, *benchFlagVals) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	v := &benchFlagVals{
		cfgName: fs.String("cfg", "vwb", "named configuration (see usage for the list)"),
		opt:     fs.Bool("opt", false, "apply all code transformations"),
		size:    fs.Int("n", 0, "problem size override (0 = benchmark default)"),
		verbose: fs.Bool("v", false, "also print the configuration's technology model"),
		checked: fs.Bool("check", false, "run under the timing-contract oracle"),
	}
	v.replayMode = replayFlag(fs)
	v.storeOpen = storeFlag(fs)
	v.profile = profileFlags(fs)
	return fs, v
}

// commandFlagSets enumerates every subcommand's flag set for the usage
// drift test.
func commandFlagSets() map[string]*flag.FlagSet {
	rfs, _ := newRunFlagSet()
	dfs, _ := newDseFlagSet()
	bfs, _ := newBenchFlagSet()
	svfs, _ := newServeFlagSet()
	wfs, _ := newWorkerFlagSet()
	sbfs, _ := newSubmitFlagSet()
	stfs, _ := newStoreFlagSet()
	return map[string]*flag.FlagSet{
		"run": rfs, "dse": dfs, "bench": bfs,
		"serve": svfs, "worker": wfs, "submit": sbfs, "store": stfs,
	}
}

func cmdRun(args []string) error {
	fs, v := newRunFlagSet()
	benchList, verbose, csv := v.benchList, v.verbose, v.csv
	jobs, checked := v.jobs, v.checked
	replayMode, profile := v.replayMode, v.profile
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one experiment id (or 'all'/'paper'); see 'sttexplore list'")
	}
	useReplay, err := replayMode()
	if err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil {
			fmt.Fprintln(os.Stderr, "sttexplore:", perr)
		}
	}()

	benches, err := selectBenches(*benchList)
	if err != nil {
		return err
	}
	st, err := v.storeOpen()
	if err != nil {
		return err
	}
	suite := experiments.NewSuiteJobs(benches, *jobs)
	suite.SetCheck(*checked)
	suite.SetReplay(useReplay)
	suite.SetStore(st)
	var counters stats.Counters
	progress := newProgressLine(os.Stderr, *verbose)
	suite.SetProgress(func(ev stats.RunEvent) {
		counters.Observe(ev)
		progress.observe(ev)
	})

	id := fs.Arg(0)
	var runners []experiments.Runner
	switch id {
	case "all":
		runners = experiments.Registry()
	case "paper":
		for _, r := range experiments.Registry() {
			if r.Paper {
				runners = append(runners, r)
			}
		}
	default:
		r, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(experiments.IDs(), ", "))
		}
		runners = []experiments.Runner{r}
	}

	start := time.Now()
	results, err := experiments.Results(context.Background(), suite, runners)
	progress.clear()
	if err != nil {
		return err
	}
	for i, r := range runners {
		if *csv {
			fmt.Printf("# %s\n%s\n", r.ID, results[i].CSV())
		} else {
			fmt.Println(results[i].String())
		}
	}
	reportStore(suite, st)
	if *verbose {
		fmt.Fprintf(os.Stderr, "engine: %s over %d worker(s), wall %s\n",
			counters.Summary(), suite.Jobs(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// cmdDse explores a built-in design space: enumerate, evaluate every
// point over the suite through the memoized parallel engine, and print
// the Pareto frontier (or, with -csv, the full point dump). Output is
// bit-identical at any -j.
func cmdDse(args []string) error {
	fs, v := newDseFlagSet()
	spaceName, benchList, verbose, csv := v.spaceName, v.benchList, v.verbose, v.csv
	top, jobs, searchMode := v.top, v.jobs, v.searchMode
	budget, seed, checked := v.budget, v.seed, v.checked
	replayMode, profile := v.replayMode, v.profile
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("dse: unexpected argument %q (the space is selected with -space)", fs.Arg(0))
	}
	useReplay, err := replayMode()
	if err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil {
			fmt.Fprintln(os.Stderr, "sttexplore:", perr)
		}
	}()
	sp, ok := dse.ByName(*spaceName)
	if !ok {
		return fmt.Errorf("unknown design space %q; known: %s", *spaceName, strings.Join(dse.Names(), ", "))
	}
	benches, err := selectBenches(*benchList)
	if err != nil {
		return err
	}
	sh, err := dse.ParseShard(*v.shard)
	if err != nil {
		return err
	}
	st, err := v.storeOpen()
	if err != nil {
		return err
	}
	if sh.Enabled() {
		if *searchMode != "exhaustive" {
			return fmt.Errorf("-shard needs -search exhaustive (got %q): guided search is sequential by nature", *searchMode)
		}
		if st == nil {
			return fmt.Errorf("-shard needs -store: shards coordinate only through the persistent store")
		}
	}

	suite := experiments.NewSuiteJobs(benches, *jobs)
	suite.SetCheck(*checked)
	suite.SetReplay(useReplay)
	suite.SetStore(st)
	suite.SetGang(*v.gang)
	var counters stats.Counters
	progress := newProgressLine(os.Stderr, *verbose)
	suite.SetProgress(func(ev stats.RunEvent) {
		counters.Observe(ev)
		progress.observe(ev)
	})

	start := time.Now()
	switch *searchMode {
	case "exhaustive":
		if sh.Enabled() {
			res, err := dse.EvaluateShard(suite, benches, sp, sh)
			progress.clear()
			if err != nil {
				return err
			}
			fmt.Println(res)
			break
		}
		ev, err := dse.Evaluate(suite, benches, sp)
		progress.clear()
		if err != nil {
			return err
		}
		if *csv {
			fmt.Printf("# dse-%s\n%s\n", sp.Name, ev.PointsTable().CSV())
		} else {
			fmt.Println(ev.FrontierTable(*top).Render())
		}
	case "guided":
		opts := dse.SearchOptions{Budget: *budget, Seed: *seed}
		if *verbose {
			opts.Progress = func(ev stats.SearchEvent) {
				fmt.Fprintf(os.Stderr, "  gen %-3d %2d candidate(s), %2d promoted, %2d aborted  [%d/%d full evals, archive %d, frontier %d]\n",
					ev.Generation, ev.Candidates, ev.Promoted, ev.Aborted,
					ev.FullEvals, ev.Budget, ev.Archive, ev.Frontier)
			}
		}
		res, err := dse.Search(suite, benches, sp, opts)
		progress.clear()
		if err != nil {
			return err
		}
		if *csv {
			// The CSV body carries no table header, so name the inputs —
			// the effective seed above all — in the comment line.
			fmt.Printf("# dse-%s guided search: seed %d, budget %d\n%s\n",
				sp.Name, res.Seed, res.Budget, res.PointsTable().CSV())
		} else {
			fmt.Println(res.FrontierTable(*top).Render())
		}
	default:
		return fmt.Errorf("-search must be exhaustive or guided (got %q)", *searchMode)
	}
	reportStore(suite, st)
	if *verbose {
		fmt.Fprintf(os.Stderr, "engine: %s over %d worker(s), wall %s\n",
			counters.Summary(), suite.Jobs(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// progressLine renders engine progress on stderr: one log line per
// completed simulation in verbose mode, otherwise a single in-place
// live line (only when stderr is a terminal).
type progressLine struct {
	w       *os.File
	verbose bool
	live    bool
	width   int
}

func newProgressLine(w *os.File, verbose bool) *progressLine {
	live := false
	if st, err := w.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
		live = !verbose
	}
	return &progressLine{w: w, verbose: verbose, live: live}
}

// observe is called serially by the run engine (stats.ProgressFunc).
func (p *progressLine) observe(ev stats.RunEvent) {
	if p.verbose {
		fmt.Fprintf(p.w, "  ran %-44s %8s  [%d done, %d running, %d queued]\n",
			ev.Label, ev.Wall.Round(time.Millisecond), ev.Done, ev.InFlight, ev.Queued)
		return
	}
	if !p.live {
		return
	}
	line := fmt.Sprintf("  %d sims done, %d running, %d queued — last %s (%s)",
		ev.Done, ev.InFlight, ev.Queued, ev.Label, ev.Wall.Round(time.Millisecond))
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
	p.width = len(line)
}

// clear erases the live line before the results are printed.
func (p *progressLine) clear() {
	if p.live && p.width > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.width))
		p.width = 0
	}
}

func cmdBench(args []string) error {
	fs, v := newBenchFlagSet()
	cfgName, opt, size := v.cfgName, v.opt, v.size
	verbose, checked := v.verbose, v.checked
	replayMode, profile := v.replayMode, v.profile
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bench: need exactly one kernel name; see 'sttexplore list'")
	}
	useReplay, err := replayMode()
	if err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil {
			fmt.Fprintln(os.Stderr, "sttexplore:", perr)
		}
	}()
	b, ok := polybench.ByName(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown benchmark %q; known: %s", fs.Arg(0), strings.Join(polybench.Names(), ", "))
	}

	var cfg sim.Config
	found := false
	for _, c := range benchConfigs {
		if c.name == *cfgName {
			cfg = c.make()
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown configuration %q; known: %s", *cfgName, strings.Join(benchConfigNames(), ", "))
	}
	if *opt {
		cfg.Compile = compile.AllOptimizations()
	}
	cfg.Check = *checked

	n := b.Default
	if *size > 0 {
		n = *size
	}
	b.Default = n // Kernel() and every cache key follow the size
	st, err := v.storeOpen()
	if err != nil {
		return err
	}
	// One-simulation suite: the engine plumbing exists purely so the
	// persistent store tier (and its replay/live selection) behaves
	// exactly as in run/dse.
	suite := experiments.NewSuiteJobs([]polybench.Bench{b}, 1)
	suite.SetReplay(useReplay)
	suite.SetStore(st)
	res, err := suite.Run(b, cfg)
	if err != nil {
		return err
	}
	reportStore(suite, st)
	c := res.CPU
	fmt.Printf("%s (n=%d) on %s\n", b.Name, n, cfg.Name)
	if *verbose {
		m, merr := energy.ModelFor(cfg)
		if merr != nil {
			return merr
		}
		freq := cfg.FreqGHz
		if freq <= 0 {
			freq = 1.0
		}
		rd, wr := m.CyclesAt(freq)
		fmt.Printf("  DL1 array:   %s  read %.3fns/%dcy  write %.3fns/%dcy  leak %.2fmW  area %.4fmm2\n",
			cfg.DL1Cell, m.ReadNs, rd, m.WriteNs, wr, m.LeakageMW, m.AreaMM2)
	}
	fmt.Printf("  cycles       %12d   instructions %12d   IPC %.3f\n", c.Cycles, c.Insts, c.IPC())
	fmt.Printf("  loads        %12d   stores       %12d   prefetches %d\n", c.Loads, c.Stores, c.Prefetches)
	fmt.Printf("  branches     %12d   mispredicts  %12d\n", c.Branches, c.Mispredicts)
	fmt.Printf("  stalls: read %d  write %d  branch %d  fetch %d\n",
		c.ReadStallCycles, c.WriteStallCycles, c.BranchStallCycles, c.FetchStallCycles)
	fmt.Printf("  front-end:   reads %d/%d hits, writes %d/%d hits\n",
		res.FEStats.ReadHits, res.FEStats.Reads, res.FEStats.WriteHits, res.FEStats.Writes)
	fmt.Printf("  DL1:         %d accesses, %.1f%% hits, bank-conflict cycles %d\n",
		res.DL1Stats.Accesses(), 100*res.DL1Stats.HitRate(), res.DL1BankConflictCycles)
	fmt.Printf("  L2:          %d accesses, %.1f%% hits\n", res.L2Stats.Accesses(), 100*res.L2Stats.HitRate())
	return nil
}

func selectBenches(list string) ([]polybench.Bench, error) {
	if list == "" {
		return nil, nil
	}
	var out []polybench.Bench
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		b, ok := polybench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q; known: %s", name, strings.Join(polybench.Names(), ", "))
		}
		out = append(out, b)
	}
	return out, nil
}
