package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sttdl1/internal/serve"
)

// startServe launches `sttexplore serve` as a real process and waits
// for its -addr-file, returning the base URL and a stopper.
func startServe(t *testing.T, bin, storeDir string, extra ...string) (string, func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-store", storeDir, "-addr-file", addrFile}, extra...)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(data)) > 0 {
			return "http://" + string(bytes.TrimSpace(data)), stop
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("serve never wrote %s\nstderr:\n%s", addrFile, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func jobStatus(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

// TestServeSweepSurvivesWorkerKill is the service acceptance test
// (DESIGN.md §7.8): a coordinator-only server, one external worker
// process killed mid-job, a replacement worker finishing it — and the
// served CSV byte-identical to a plain single-process `dse -csv`.
func TestServeSweepSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI as several processes")
	}
	bin := buildCLI(t)
	storeDir := t.TempDir()
	ref := runCLI(t, bin, "dse", "-space", "smoke", "-bench", "atax,gesummv", "-j", "8", "-csv")

	// Coordinator only, short lease TTL so the kill is detected fast.
	base, stopServe := startServe(t, bin, storeDir, "-workers", "0", "-lease-ttl", "2s", "-shards", "2")
	defer stopServe()

	// Submit without waiting; the job sits queued until a worker pulls.
	out := runCLI(t, bin, "submit", "-connect", base, "-space", "smoke",
		"-bench", "atax,gesummv", "-shards", "2", "-wait=false")
	id := strings.TrimSpace(string(out))
	if id == "" {
		t.Fatal("submit printed no job id")
	}

	// Worker 1: killed as soon as it holds a lease.
	w1 := exec.Command(bin, "worker", "-connect", base, "-store", storeDir, "-name", "victim", "-poll", "50ms")
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for jobStatus(t, base, id).Shards.Leased == 0 {
		if time.Now().After(deadline) {
			w1.Process.Kill()
			t.Fatal("victim worker never leased a shard")
		}
		time.Sleep(20 * time.Millisecond)
	}
	w1.Process.Kill() // SIGKILL: no goodbye, the lease just goes silent
	w1.Wait()

	// Worker 2 finishes the whole job (including the victim's requeued
	// shard, warm from whatever the victim already stored).
	w2 := exec.Command(bin, "worker", "-connect", base, "-store", storeDir, "-name", "successor", "-poll", "50ms")
	var w2err bytes.Buffer
	w2.Stderr = &w2err
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		w2.Process.Signal(syscall.SIGTERM)
		w2.Wait()
	}()

	deadline = time.Now().Add(3 * time.Minute)
	var st serve.JobStatus
	for {
		st = jobStatus(t, base, id)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job reached %q: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (shards %+v)\nworker stderr:\n%s", st.State, st.Shards, w2err.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.Requeues == 0 {
		t.Error("killed worker's shard was never requeued (did the kill land after the shard finished?)")
	}

	// The served result must be byte-identical to single-process dse.
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	if !bytes.Equal(got.Bytes(), ref) {
		t.Errorf("served CSV differs from single-process dse:\n--- dse\n%s\n--- served\n%s", ref, got.Bytes())
	}

	// And `submit -wait` of the identical job is the warm path: served
	// from the stitch suite's memo and the store, same bytes.
	warm := runCLI(t, bin, "submit", "-connect", base, "-space", "smoke",
		"-bench", "atax,gesummv", "-shards", "2", "-format", "csv")
	if !bytes.Equal(warm, ref) {
		t.Error("warm resubmission through submit -wait differs from single-process dse")
	}
}

// TestStoreCLIMaintenance pins the store subcommand round trip: a sweep
// populates a store, stats reports it, gc to zero empties it.
func TestStoreCLIMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	bin := buildCLI(t)
	storeDir := t.TempDir()
	runCLI(t, bin, "dse", "-space", "smoke", "-bench", "atax", "-csv", "-store", storeDir)

	out := string(runCLI(t, bin, "store", "-dir", storeDir, "stats"))
	if !strings.Contains(out, "record(s)") || strings.Contains(out, " 0 record(s)") {
		t.Fatalf("stats after a sweep: %q", out)
	}
	out = string(runCLI(t, bin, "store", "-dir", storeDir, "gc", "-max-bytes", "0"))
	if !strings.Contains(out, "evicted") {
		t.Fatalf("gc output: %q", out)
	}
	out = string(runCLI(t, bin, "store", "-dir", storeDir, "stats"))
	if !strings.Contains(out, "0 record(s), 0 bytes") {
		t.Fatalf("stats after gc 0: %q", out)
	}
	// gc without a byte budget must refuse rather than empty the store.
	if err := exec.Command(bin, "store", "-dir", storeDir, "gc").Run(); err == nil {
		t.Error("store gc without -max-bytes succeeded; want a usage error")
	}
}

// TestSubmitValidationErrors pins the client-visible 4xx wall end to
// end: a bad job is refused by the server and submit exits nonzero.
func TestSubmitValidationErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	bin := buildCLI(t)
	base, stopServe := startServe(t, bin, t.TempDir(), "-workers", "0")
	defer stopServe()
	for _, args := range [][]string{
		{"submit", "-connect", base, "-space", "no-such-space"},
		{"submit", "-connect", base, "-bench", "no-such-bench"},
		{"submit", "-connect", base, "-axes", `{"no-such-axis":["x"]}`},
		{"submit", "-connect", base, "-axes", `not json`},
		{"submit", "-connect", base, "-search", "psychic"},
	} {
		var stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stderr = &stderr
		if err := cmd.Run(); err == nil {
			t.Errorf("%v: expected an error exit", args)
		} else if stderr.Len() == 0 {
			t.Errorf("%v: error exit with silent stderr", args)
		}
	}
	// Nothing was enqueued.
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("%d job(s) enqueued by rejected submissions", len(jobs))
	}
}
