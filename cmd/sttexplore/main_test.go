package main

import (
	"flag"
	"strings"
	"testing"

	"sttdl1/internal/dse"
)

// TestUsageMentionsEverySpace pins the help text to the design-space
// registry: a space registered in dse.Spaces() that usage does not name
// is a drift bug (usageText builds the list from dse.Names(), so this
// can only fail if that wiring is broken).
func TestUsageMentionsEverySpace(t *testing.T) {
	text := usageText()
	for _, name := range dse.Names() {
		if !strings.Contains(text, name) {
			t.Errorf("usage text does not mention design space %q", name)
		}
	}
}

// TestUsageMentionsEveryBenchConfig does the same for the bench -cfg
// registry.
func TestUsageMentionsEveryBenchConfig(t *testing.T) {
	text := usageText()
	for _, name := range benchConfigNames() {
		if !strings.Contains(text, name) {
			t.Errorf("usage text does not mention bench configuration %q", name)
		}
	}
}

// TestUsageMentionsEveryFlag walks every subcommand's registered flags:
// each must appear in the help text as "-name". Registering a new flag
// without documenting it fails here.
func TestUsageMentionsEveryFlag(t *testing.T) {
	text := usageText()
	for cmd, fs := range commandFlagSets() {
		fs.VisitAll(func(f *flag.Flag) {
			if !strings.Contains(text, "-"+f.Name) {
				t.Errorf("usage text does not mention %s flag -%s", cmd, f.Name)
			}
		})
	}
}

// TestBenchConfigsBuild exercises every bench -cfg constructor: each
// must produce a distinct, named configuration (catching a registry
// entry whose closure forgot Name, which would garble bench output and
// memo labels).
func TestBenchConfigsBuild(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range benchConfigs {
		cfg := c.make()
		if cfg.Name == "" {
			t.Errorf("bench config %q builds an unnamed sim.Config", c.name)
		}
		if seen[cfg.Name] {
			t.Errorf("bench config %q reuses sim.Config name %q", c.name, cfg.Name)
		}
		seen[cfg.Name] = true
	}
}
