// Command stttrace runs a PolyBench kernel with a trace recorder wired
// between the core and the DL1 front-end, then prints a trace summary
// (and optionally the first events) — useful for understanding the
// access streams each kernel presents to the VWB.
//
// Usage:
//
//	stttrace [-cfg sram|dropin|vwb] [-opt] [-n size] [-dump N] <kernel>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sttdl1/internal/compile"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("stttrace", flag.ExitOnError)
	cfgName := fs.String("cfg", "vwb", "configuration: sram, dropin, vwb")
	opt := fs.Bool("opt", false, "apply all code transformations")
	size := fs.Int("n", 0, "problem size override")
	dump := fs.Int("dump", 0, "print the first N trace events")
	limit := fs.Int("limit", 2_000_000, "max recorded events")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stttrace [-cfg ...] [-opt] [-n N] [-dump N] <kernel>")
		os.Exit(2)
	}
	if err := run(fs.Arg(0), *cfgName, *opt, *size, *dump, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "stttrace:", err)
		os.Exit(1)
	}
}

func run(bench, cfgName string, opt bool, size, dump, limit int) error {
	b, ok := polybench.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q; known: %s", bench, strings.Join(polybench.Names(), ", "))
	}
	var cfg sim.Config
	switch cfgName {
	case "sram":
		cfg = sim.BaselineSRAM()
	case "dropin":
		cfg = sim.DropInSTT()
	case "vwb":
		cfg = sim.ProposalVWB()
	default:
		return fmt.Errorf("unknown configuration %q", cfgName)
	}
	if opt {
		cfg.Compile = compile.AllOptimizations()
	}
	cfg.ColdStart = true // tracing wants the raw single pass

	n := b.Default
	if size > 0 {
		n = size
	}
	opts := cfg.Compile
	opts.LineSize = 64
	ck, err := compile.Compile(b.Build(n), opts)
	if err != nil {
		return err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(sys.FE, limit)
	sys.CPU.DMem = rec

	res, err := sys.RunCompiled(ck)
	if err != nil {
		return err
	}
	fmt.Printf("%s (n=%d) on %s: %d cycles, %d instructions\n\n", b.Name, n, cfg.Name, res.CPU.Cycles, res.CPU.Insts)
	fmt.Print(trace.Summarize(rec.Events, 64).String())
	if rec.Dropped > 0 {
		fmt.Printf("(dropped %d events beyond -limit)\n", rec.Dropped)
	}
	if dump > 0 {
		fmt.Println("\nfirst events:")
		fmt.Print(trace.Dump(rec.Events, dump))
	}
	return nil
}
