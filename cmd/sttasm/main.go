// Command sttasm assembles, disassembles, and runs ARMlet programs.
//
// Usage:
//
//	sttasm build  <prog.sasm> [-o prog.bin]   assemble to binary image
//	sttasm dis    <prog.bin>                  disassemble a binary image
//	sttasm run    <prog.sasm|prog.bin> [-r N] run (functional), print regs r0..rN
//	sttasm check  <prog.sasm>                 parse + validate only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sttdl1/internal/asm"
	"sttdl1/internal/cpu"
	"sttdl1/internal/isa"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttasm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sttasm build <prog.sasm> [-o out.bin]
  sttasm dis   <prog.bin>
  sttasm run   <prog.sasm|prog.bin> [-r N]
  sttasm check <prog.sasm>`)
}

func load(path string) (*isa.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".bin") {
		return isa.DecodeProgram(src)
	}
	return asm.Assemble(path, string(src))
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output file (default: input with .bin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("build: need one source file")
	}
	prog, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	img, err := isa.EncodeProgram(prog)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(fs.Arg(0), ".sasm") + ".bin"
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d bytes\n", path, len(prog.Insts), len(img))
	return nil
}

func cmdDis(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dis: need one binary file")
	}
	prog, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Print(prog.Disassemble())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	nregs := fs.Int("r", 8, "print integer registers r0..r<N-1>")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need one program file")
	}
	prog, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := cpu.Interpret(prog, 100_000_000)
	if err != nil {
		return err
	}
	for r := 0; r < *nregs && r < isa.NumIntRegs; r++ {
		fmt.Printf("r%-2d = %-12d", r, st.R[r])
		if (r+1)%4 == 0 {
			fmt.Println()
		}
	}
	if *nregs%4 != 0 {
		fmt.Println()
	}
	return nil
}

func cmdCheck(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("check: need one source file")
	}
	prog, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s: OK (%d instructions, data %d bytes)\n", args[0], len(prog.Insts), prog.DataSize)
	return nil
}
