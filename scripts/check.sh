#!/bin/sh
# Tier-1 verify flow: build, vet, test, then the full suite again under
# the race detector (the experiment engine is concurrent; see
# DESIGN.md §7.1), and finally checked end-to-end runs with the
# timing-contract oracle (DESIGN.md §7.2) verifying every memory
# access: a small slice of the Fig. 3 matrix, the smoke design space
# through the exploration engine (DESIGN.md §7.3), and a guided-search
# determinism diff (DESIGN.md §7.5). Run from the repository root.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go run ./cmd/sttexplore run -check -bench atax,gemver fig3 >/dev/null

# Replay equivalence (DESIGN.md §7.4): the checked smoke space must
# render byte-identically whether simulations execute live or replay a
# captured trace.
tmp_on=$(mktemp)
tmp_off=$(mktemp)
trap 'rm -f "$tmp_on" "$tmp_off"' EXIT
go run ./cmd/sttexplore dse -check -space smoke -bench atax,gemver -replay on >"$tmp_on"
go run ./cmd/sttexplore dse -check -space smoke -bench atax,gemver -replay off >"$tmp_off"
cmp "$tmp_on" "$tmp_off"

# Guided-search determinism (DESIGN.md §7.5): a fixed seed must render
# byte-identically at any worker count.
go run ./cmd/sttexplore dse -space smoke -search guided -budget 6 -seed 1 -bench atax,gemver -j 1 >"$tmp_on"
go run ./cmd/sttexplore dse -space smoke -search guided -budget 6 -seed 1 -bench atax,gemver -j 8 >"$tmp_off"
cmp "$tmp_on" "$tmp_off"

# Latency-hiding mechanisms (DESIGN.md §7.6): the hybrid space — bypass
# front end × SRAM way partitioning × way shutdown — under the oracle,
# and replay equivalence for a bypass-enabled configuration.
go run ./cmd/sttexplore dse -check -space hybrid -bench atax,gemver >/dev/null
go run ./cmd/sttexplore bench -cfg bypass -check -replay on atax >"$tmp_on"
go run ./cmd/sttexplore bench -cfg bypass -check -replay off atax >"$tmp_off"
cmp "$tmp_on" "$tmp_off"

# Persistent-store equivalence (DESIGN.md §7.7): the same sweep must
# render byte-identically with no store, with a cold store, and served
# entirely from the warm store the cold pass just wrote.
store_dir=$(mktemp -d)
trap 'rm -f "$tmp_on" "$tmp_off"; rm -rf "$store_dir"' EXIT
go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv >"$tmp_on"
go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv -store "$store_dir" >"$tmp_off"
cmp "$tmp_on" "$tmp_off"
go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv -store "$store_dir" >"$tmp_off"
cmp "$tmp_on" "$tmp_off"

# Specialized replay kernels and gang replay (DESIGN.md §7.9): the
# same sweep must render byte-identically with the specialized kernel
# registry (the default), with every replay pinned to the generic
# reference kernel, and with gang replay off — and the specialized/
# generic diff must also hold under the race detector (gang replay
# shares one trace walk across configurations; the detector proves the
# members' states stay disjoint while cmp proves the cycles do).
go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv >"$tmp_on"
STTDL1_REPLAY_KERNEL=generic go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv >"$tmp_off"
cmp "$tmp_on" "$tmp_off"
go run ./cmd/sttexplore dse -space smoke -bench atax,gemver -gang 1 -csv >"$tmp_off"
cmp "$tmp_on" "$tmp_off"
go run -race ./cmd/sttexplore dse -space smoke -bench atax,gemver -csv >"$tmp_off"
cmp "$tmp_on" "$tmp_off"
STTDL1_REPLAY_KERNEL=generic go run -race ./cmd/sttexplore dse -space smoke -bench atax,gemver -gang 1 -csv >"$tmp_off"
cmp "$tmp_on" "$tmp_off"

# Sweep service equivalence (DESIGN.md §7.8): the same smoke sweep
# submitted to a two-worker `serve` instance on an ephemeral port must
# come back byte-identical to the single-process dse run above, and the
# server must drain cleanly on SIGTERM.
bin_dir=$(mktemp -d)
serve_store=$(mktemp -d)
trap 'rm -f "$tmp_on" "$tmp_off"; rm -rf "$store_dir" "$bin_dir" "$serve_store"' EXIT
go build -o "$bin_dir/sttexplore" ./cmd/sttexplore
"$bin_dir/sttexplore" serve -addr 127.0.0.1:0 -addr-file "$bin_dir/addr" \
	-store "$serve_store" -workers 2 &
serve_pid=$!
for _ in $(seq 1 100); do
	[ -s "$bin_dir/addr" ] && break
	sleep 0.1
done
addr=$(cat "$bin_dir/addr")
"$bin_dir/sttexplore" submit -connect "$addr" -space smoke \
	-bench atax,gemver -shards 2 -format csv >"$tmp_off"
cmp "$tmp_on" "$tmp_off"
"$bin_dir/sttexplore" store -dir "$serve_store" stats
kill -TERM "$serve_pid"
wait "$serve_pid"
