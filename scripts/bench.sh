#!/bin/sh
# Sweep-store benchmark (DESIGN.md §7.7): time the same design-space
# sweep through the real CLI against a cold and then a warm persistent
# store, run the in-process BenchmarkStoreSweep pair for allocation
# counts, and emit everything as BENCH_sweep.json. Run from the
# repository root.
#
#   ./scripts/bench.sh                 # smoke space (seconds)
#   SPACE=proposal ./scripts/bench.sh  # paper-scale sweep (minutes cold)
set -eu

space=${SPACE:-smoke}
out=${OUT:-BENCH_sweep.json}
benchtime=${BENCHTIME:-2x}

bin_dir=$(mktemp -d)
store_dir=$(mktemp -d)
trap 'rm -rf "$bin_dir" "$store_dir"' EXIT

go build -o "$bin_dir/sttexplore" ./cmd/sttexplore

now_ms() { date +%s%3N; }

t0=$(now_ms)
"$bin_dir/sttexplore" dse -space "$space" -j 8 -csv -store "$store_dir" >"$bin_dir/cold.csv"
t1=$(now_ms)
"$bin_dir/sttexplore" dse -space "$space" -j 8 -csv -store "$store_dir" >"$bin_dir/warm.csv"
t2=$(now_ms)
cmp "$bin_dir/cold.csv" "$bin_dir/warm.csv" # warm must be byte-identical
cold_ms=$((t1 - t0))
warm_ms=$((t2 - t1))

# Sweep service (DESIGN.md §7.8): cold vs warm job latency through a
# two-worker `serve` instance, then sustained warm jobs per second.
# The warm job is answered from the server's stitch-suite memo, so the
# acceptance bar is a >=10x speedup over the cold job.
serve_store=$(mktemp -d)
trap 'rm -rf "$bin_dir" "$store_dir" "$serve_store"' EXIT
"$bin_dir/sttexplore" serve -addr 127.0.0.1:0 -addr-file "$bin_dir/addr" \
	-store "$serve_store" -workers 2 &
serve_pid=$!
while [ ! -s "$bin_dir/addr" ]; do sleep 0.1; done
addr=$(cat "$bin_dir/addr")

t0=$(now_ms)
"$bin_dir/sttexplore" submit -connect "$addr" -space "$space" -shards 2 \
	-format csv >"$bin_dir/serve_cold.csv"
t1=$(now_ms)
"$bin_dir/sttexplore" submit -connect "$addr" -space "$space" -shards 2 \
	-format csv >"$bin_dir/serve_warm.csv"
t2=$(now_ms)
cmp "$bin_dir/serve_cold.csv" "$bin_dir/serve_warm.csv"
cmp "$bin_dir/cold.csv" "$bin_dir/serve_cold.csv" # service == single-process dse
serve_cold_ms=$((t1 - t0))
serve_warm_ms=$((t2 - t1))

warm_jobs=${WARM_JOBS:-20}
t0=$(now_ms)
i=0
while [ "$i" -lt "$warm_jobs" ]; do
	"$bin_dir/sttexplore" submit -connect "$addr" -space "$space" -shards 2 \
		-format csv >/dev/null
	i=$((i + 1))
done
t1=$(now_ms)
warm_total_ms=$((t1 - t0))

kill -TERM "$serve_pid"
wait "$serve_pid"

gobench=$(go test -run '^$' -bench '^BenchmarkStoreSweep$' -benchtime "$benchtime" -benchmem .)
printf '%s\n' "$gobench"

# Replay engine (DESIGN.md §7.9): the cold smoke sweep with gang replay
# on (auto width) vs off (serial). Both arms are byte-identical
# evaluations; the serial/gang ns/op ratio is the gang speedup.
replaybench=$(go test -run '^$' -bench '^BenchmarkReplaySweep$' -benchtime "$benchtime" -benchmem .)
printf '%s\n' "$replaybench"

# Benchmark lines: name N ns/op "ns/op" B/op "B/op" allocs/op "allocs/op".
field() { printf '%s\n' "$gobench" | awk -v pat="$1" -v f="$2" '$0 ~ pat { print $f; exit }'; }
cold_ns=$(field 'BenchmarkStoreSweep/cold' 3)
cold_bytes=$(field 'BenchmarkStoreSweep/cold' 5)
cold_allocs=$(field 'BenchmarkStoreSweep/cold' 7)
warm_ns=$(field 'BenchmarkStoreSweep/warm' 3)
warm_bytes=$(field 'BenchmarkStoreSweep/warm' 5)
warm_allocs=$(field 'BenchmarkStoreSweep/warm' 7)

rfield() { printf '%s\n' "$replaybench" | awk -v pat="$1" -v f="$2" '$0 ~ pat { print $f; exit }'; }
gang_ns=$(rfield 'BenchmarkReplaySweep/gang' 3)
gang_bytes=$(rfield 'BenchmarkReplaySweep/gang' 5)
gang_allocs=$(rfield 'BenchmarkReplaySweep/gang' 7)
serial_ns=$(rfield 'BenchmarkReplaySweep/serial' 3)
serial_bytes=$(rfield 'BenchmarkReplaySweep/serial' 5)
serial_allocs=$(rfield 'BenchmarkReplaySweep/serial' 7)

awk -v space="$space" \
	-v cold_ms="$cold_ms" -v warm_ms="$warm_ms" \
	-v scold_ms="$serve_cold_ms" -v swarm_ms="$serve_warm_ms" \
	-v wjobs="$warm_jobs" -v wtotal_ms="$warm_total_ms" \
	-v cns="$cold_ns" -v cb="$cold_bytes" -v ca="$cold_allocs" \
	-v wns="$warm_ns" -v wb="$warm_bytes" -v wa="$warm_allocs" \
	-v gns="$gang_ns" -v gb="$gang_bytes" -v ga="$gang_allocs" \
	-v sns="$serial_ns" -v sb="$serial_bytes" -v sa="$serial_allocs" \
	'BEGIN {
		printf "{\n"
		printf "  \"space\": \"%s\",\n", space
		printf "  \"cli\": {\n"
		printf "    \"cold_s\": %.3f,\n", cold_ms / 1000
		printf "    \"warm_s\": %.3f,\n", warm_ms / 1000
		printf "    \"speedup\": %.1f\n", cold_ms / (warm_ms > 0 ? warm_ms : 1)
		printf "  },\n"
		printf "  \"serve\": {\n"
		printf "    \"workers\": 2,\n"
		printf "    \"cold_job_s\": %.3f,\n", scold_ms / 1000
		printf "    \"warm_job_s\": %.3f,\n", swarm_ms / 1000
		printf "    \"speedup\": %.1f,\n", scold_ms / (swarm_ms > 0 ? swarm_ms : 1)
		printf "    \"warm_jobs_per_s\": %.1f\n", wjobs * 1000 / (wtotal_ms > 0 ? wtotal_ms : 1)
		printf "  },\n"
		printf "  \"gobench\": {\n"
		printf "    \"cold\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d },\n", cns, cb, ca
		printf "    \"warm\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d }\n", wns, wb, wa
		printf "  },\n"
		printf "  \"replay\": {\n"
		printf "    \"gang\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d },\n", gns, gb, ga
		printf "    \"serial\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d },\n", sns, sb, sa
		printf "    \"gang_speedup\": %.2f\n", sns / (gns > 0 ? gns : 1)
		printf "  }\n"
		printf "}\n"
	}' >"$out"
cat "$out"
