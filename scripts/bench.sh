#!/bin/sh
# Sweep-store benchmark (DESIGN.md §7.7): time the same design-space
# sweep through the real CLI against a cold and then a warm persistent
# store, run the in-process BenchmarkStoreSweep pair for allocation
# counts, and emit everything as BENCH_sweep.json. Run from the
# repository root.
#
#   ./scripts/bench.sh                 # smoke space (seconds)
#   SPACE=proposal ./scripts/bench.sh  # paper-scale sweep (minutes cold)
set -eu

space=${SPACE:-smoke}
out=${OUT:-BENCH_sweep.json}
benchtime=${BENCHTIME:-2x}

bin_dir=$(mktemp -d)
store_dir=$(mktemp -d)
trap 'rm -rf "$bin_dir" "$store_dir"' EXIT

go build -o "$bin_dir/sttexplore" ./cmd/sttexplore

now_ms() { date +%s%3N; }

t0=$(now_ms)
"$bin_dir/sttexplore" dse -space "$space" -j 8 -csv -store "$store_dir" >"$bin_dir/cold.csv"
t1=$(now_ms)
"$bin_dir/sttexplore" dse -space "$space" -j 8 -csv -store "$store_dir" >"$bin_dir/warm.csv"
t2=$(now_ms)
cmp "$bin_dir/cold.csv" "$bin_dir/warm.csv" # warm must be byte-identical
cold_ms=$((t1 - t0))
warm_ms=$((t2 - t1))

gobench=$(go test -run '^$' -bench '^BenchmarkStoreSweep$' -benchtime "$benchtime" -benchmem .)
printf '%s\n' "$gobench"

# Benchmark lines: name N ns/op "ns/op" B/op "B/op" allocs/op "allocs/op".
field() { printf '%s\n' "$gobench" | awk -v pat="$1" -v f="$2" '$0 ~ pat { print $f; exit }'; }
cold_ns=$(field 'BenchmarkStoreSweep/cold' 3)
cold_bytes=$(field 'BenchmarkStoreSweep/cold' 5)
cold_allocs=$(field 'BenchmarkStoreSweep/cold' 7)
warm_ns=$(field 'BenchmarkStoreSweep/warm' 3)
warm_bytes=$(field 'BenchmarkStoreSweep/warm' 5)
warm_allocs=$(field 'BenchmarkStoreSweep/warm' 7)

awk -v space="$space" \
	-v cold_ms="$cold_ms" -v warm_ms="$warm_ms" \
	-v cns="$cold_ns" -v cb="$cold_bytes" -v ca="$cold_allocs" \
	-v wns="$warm_ns" -v wb="$warm_bytes" -v wa="$warm_allocs" \
	'BEGIN {
		printf "{\n"
		printf "  \"space\": \"%s\",\n", space
		printf "  \"cli\": {\n"
		printf "    \"cold_s\": %.3f,\n", cold_ms / 1000
		printf "    \"warm_s\": %.3f,\n", warm_ms / 1000
		printf "    \"speedup\": %.1f\n", cold_ms / (warm_ms > 0 ? warm_ms : 1)
		printf "  },\n"
		printf "  \"gobench\": {\n"
		printf "    \"cold\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d },\n", cns, cb, ca
		printf "    \"warm\": { \"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d }\n", wns, wb, wa
		printf "  }\n"
		printf "}\n"
	}' >"$out"
cat "$out"
