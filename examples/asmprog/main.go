// Asmprog: a hand-written ARMlet assembly program through the assembler,
// disassembler, functional interpreter, and the timing simulator — the
// low-level path below the kernel compiler.
//
// The program sums an array of 256 words that it first fills with
// 0,1,2,... and leaves the total in r0.
package main

import (
	"fmt"
	"log"

	"sttdl1/internal/asm"
	"sttdl1/internal/cpu"
	"sttdl1/internal/sim"
)

const source = `
; sum[0..255] -> r0
.data 1024

        movi r1, #0        ; i
        movi r2, #256      ; n
fill:   bge  r1, r2, sum_setup
        lsli r3, r1, #2    ; &a[i]
        str  r1, [r3, #0]
        addi r1, r1, #1
        b    fill

sum_setup:
        movi r0, #0        ; acc
        movi r1, #0        ; i
loop:   bge  r1, r2, done
        ldrx r4, [zr, r1, lsl #2]
        add  r0, r0, r4
        addi r1, r1, #1
        b    loop
done:   halt
`

func main() {
	prog, err := asm.Assemble("sumarray", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions\n\n", len(prog.Insts))
	fmt.Println(prog.Disassemble())

	// Functional run.
	st, err := cpu.Interpret(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	want := int32(255 * 256 / 2)
	fmt.Printf("functional: r0 = %d (want %d)\n", st.R[0], want)
	if st.R[0] != want {
		log.Fatal("wrong sum")
	}

	// Timing run on the SRAM baseline and the STT-MRAM+VWB platform.
	for _, cfg := range []sim.Config{sim.BaselineSRAM(), sim.ProposalVWB()} {
		sys, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.CPU.Run(prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timing on %-14s %6d cycles, IPC %.2f\n", cfg.Name+":", res.Cycles, res.IPC())
	}
}
