// Custom kernel: author a new benchmark in the loop-nest IR and push it
// through the whole pipeline — reference evaluation, compilation at two
// optimization levels, correctness check against the evaluator, and
// simulation on the three headline platform configurations.
//
// The kernel is a dot-product-scaled vector update ("waxpby" from
// iterative solvers): w = alpha*x + beta*y, then s = sum(w*x).
package main

import (
	"fmt"
	"log"
	"math"

	"sttdl1/internal/compile"
	"sttdl1/internal/cpu"
	"sttdl1/internal/ir"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

const n = 2000

func buildKernel() *ir.Kernel {
	x := &ir.Array{Name: "x", Dims: []int{n}, Init: func(i []int) float32 { return float32(i[0]%13) * 0.25 }}
	y := &ir.Array{Name: "y", Dims: []int{n}, Init: func(i []int) float32 { return float32(i[0]%7) * 0.5 }}
	w := &ir.Array{Name: "w", Dims: []int{n}, Out: true}
	s := &ir.Array{Name: "s", Dims: []int{1}, Out: true}
	return &ir.Kernel{
		Name:   "waxpby",
		Arrays: []*ir.Array{x, y, w, s},
		Params: []ir.Param{{Name: "alpha", Value: 0.75}, {Name: "beta", Value: -0.25}},
		Body: []ir.Stmt{
			// w[i] = alpha*x[i] + beta*y[i] — a vectorizable map.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: w, Idx: []ir.Aff{ir.V("i")}, RHS: ir.Bin{Op: ir.Add,
					L: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "alpha"}, R: ir.Load{Arr: x, Idx: []ir.Aff{ir.V("i")}}},
					R: ir.Bin{Op: ir.Mul, L: ir.ParamRef{Name: "beta"}, R: ir.Load{Arr: y, Idx: []ir.Aff{ir.V("i")}}}}},
			}},
			ir.Assign{Arr: s, Idx: []ir.Aff{ir.C(0)}, RHS: ir.ConstF{V: 0}},
			// s += w[i]*x[i] — a vectorizable reduction.
			ir.Loop{Var: "i", Lo: ir.BC(0), Hi: ir.BC(n), Vectorizable: true, Body: []ir.Stmt{
				ir.Assign{Arr: s, Idx: []ir.Aff{ir.C(0)}, RHS: ir.Bin{Op: ir.Add,
					L: ir.Load{Arr: s, Idx: []ir.Aff{ir.C(0)}},
					R: ir.Bin{Op: ir.Mul, L: ir.Load{Arr: w, Idx: []ir.Aff{ir.V("i")}}, R: ir.Load{Arr: x, Idx: []ir.Aff{ir.V("i")}}}}},
			}},
		},
	}
}

func main() {
	kernel := buildKernel()

	// 1. Reference semantics straight from the IR evaluator.
	refData, refKernel, err := ir.Reference(kernel, ir.DefaultLayoutOptions())
	if err != nil {
		log.Fatal(err)
	}
	refS := ir.ReadArray(refKernel.Array("s"), refData)[0]
	fmt.Printf("IR evaluator reference: s = %.4f\n", refS)

	// 2. Compile at both optimization levels and check each against the
	// evaluator (vectorized reductions reassociate, so compare with a
	// relative tolerance).
	for _, opts := range []compile.Options{{}, compile.AllOptimizations()} {
		ck, err := compile.Compile(kernel, opts)
		if err != nil {
			log.Fatal(err)
		}
		st := cpu.NewState(ck.Prog)
		if err := ir.InitData(ck.Kernel, st.Mem); err != nil {
			log.Fatal(err)
		}
		if _, err := cpu.InterpretState(ck.Prog, st, 50_000_000); err != nil {
			log.Fatal(err)
		}
		got := ir.ReadArray(ck.Kernel.Array("s"), st.Mem)[0]
		want := dotRef()
		if rel := math.Abs(float64(got-want)) / math.Max(1, math.Abs(float64(want))); rel > 1e-3 {
			log.Fatalf("optimization level %+v: s=%g, want %g", opts, got, want)
		}
		fmt.Printf("compiled (vectorize=%v): %4d instructions, s = %.4f  OK\n",
			opts.Vectorize, len(ck.Prog.Insts), got)
	}

	// 3. Simulate on the three headline configurations.
	fmt.Println()
	var baseCycles int64
	for _, cfg := range []sim.Config{sim.BaselineSRAM(), sim.DropInSTT(), sim.ProposalVWB()} {
		cfg.Compile = compile.AllOptimizations()
		res, err := sim.Run(kernel, cfg)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-14s %9d cycles  IPC %.2f", cfg.Name, res.CPU.Cycles, res.CPU.IPC())
		if baseCycles == 0 {
			baseCycles = res.CPU.Cycles
		} else {
			line += fmt.Sprintf("  penalty %+.1f%%", stats.Penalty(baseCycles, res.CPU.Cycles))
		}
		fmt.Println(line)
	}
}

// dotRef computes the expected s in float32, mirroring the kernel.
func dotRef() float32 {
	var s float32
	for i := 0; i < n; i++ {
		x := float32(i%13) * 0.25
		y := float32(i%7) * 0.5
		w := 0.75*x + -0.25*y
		s += w * x
	}
	return s
}
