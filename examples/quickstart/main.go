// Quickstart: run one PolyBench kernel on the paper's three headline
// configurations — SRAM baseline, drop-in STT-MRAM, and STT-MRAM with
// the Very Wide Buffer — and print the performance penalty each NVM
// configuration pays relative to the SRAM baseline, with and without the
// paper's code transformations.
package main

import (
	"fmt"
	"log"
	"os"

	"sttdl1/internal/compile"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
)

func main() {
	benchName := "gemm"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, ok := polybench.ByName(benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q; have %v", benchName, polybench.Names())
	}
	kernel := b.Kernel()

	configs := []sim.Config{
		sim.BaselineSRAM(),
		sim.DropInSTT(),
		sim.ProposalVWB(),
	}

	fmt.Printf("kernel %s (%s)\n", b.Name, b.Desc)
	for _, optimized := range []bool{false, true} {
		var baseCycles int64
		label := "no code transformations"
		if optimized {
			label = "vectorize+prefetch+branchless+align"
		}
		fmt.Printf("\n-- %s --\n", label)
		for _, cfg := range configs {
			if optimized {
				cfg.Compile = compile.AllOptimizations()
			}
			res, err := sim.Run(kernel, cfg)
			if err != nil {
				log.Fatal(err)
			}
			line := fmt.Sprintf("%-14s %12d cycles  IPC %.2f  DL1 hit %.1f%%",
				cfg.Name, res.CPU.Cycles, res.CPU.IPC(), 100*res.DL1Stats.HitRate())
			if cfg.FrontEnd == sim.FEDirect && cfg.DL1Cell == sim.BaselineSRAM().DL1Cell {
				baseCycles = res.CPU.Cycles
			} else if baseCycles > 0 {
				pen := 100 * float64(res.CPU.Cycles-baseCycles) / float64(baseCycles)
				line += fmt.Sprintf("  penalty %+.1f%%", pen)
			}
			fmt.Println(line)
		}
	}
}
