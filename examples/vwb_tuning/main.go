// VWB tuning: the paper's Fig. 7 exploration on a single kernel — sweep
// the Very Wide Buffer capacity (and, beyond the paper, its replacement
// policy and the NVM bank count) and print the penalty surface, showing
// how the 2 Kbit design point is chosen.
package main

import (
	"fmt"
	"log"
	"os"

	"sttdl1/internal/compile"
	"sttdl1/internal/core"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
)

func main() {
	benchName := "gemm"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, ok := polybench.ByName(benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q; have %v", benchName, polybench.Names())
	}
	kernel := b.Kernel()

	base := sim.BaselineSRAM()
	base.Compile = compile.AllOptimizations()
	baseRes, err := sim.Run(kernel, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s, optimized SRAM baseline: %d cycles\n\n", b.Name, baseRes.CPU.Cycles)

	fmt.Println("VWB size sweep (LRU, 4 banks):")
	for _, bits := range []int{512, 1024, 2048, 4096, 8192} {
		cfg := sim.ProposalVWB()
		cfg.Compile = compile.AllOptimizations()
		cfg.BufferBits = bits
		res, err := sim.Run(kernel, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d bits (%d rows): penalty %+6.1f%%\n",
			bits, bits/512, stats.Penalty(baseRes.CPU.Cycles, res.CPU.Cycles))
	}

	fmt.Println("\nreplacement policy at 2 Kbit:")
	for _, pol := range []core.EvictPolicy{core.EvictLRU, core.EvictFIFO} {
		cfg := sim.ProposalVWB()
		cfg.Compile = compile.AllOptimizations()
		cfg.VWBPolicy = pol
		res, err := sim.Run(kernel, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s: penalty %+6.1f%%\n", pol, stats.Penalty(baseRes.CPU.Cycles, res.CPU.Cycles))
	}

	fmt.Println("\nNVM bank count at 2 Kbit:")
	for _, banks := range []int{1, 2, 4, 8} {
		cfg := sim.ProposalVWB()
		cfg.Compile = compile.AllOptimizations()
		cfg.DL1Banks = banks
		res, err := sim.Run(kernel, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d bank(s): penalty %+6.1f%%\n", banks, stats.Penalty(baseRes.CPU.Cycles, res.CPU.Cycles))
	}
}
