module sttdl1

go 1.22
