// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (plus the extension ablations). Each benchmark runs
// the corresponding experiment end to end — workload generation,
// compilation, warm-up, measured simulation — and reports the figure's
// headline number as a custom metric so `go test -bench=. -benchmem`
// regenerates the whole evaluation:
//
//	BenchmarkFig1DropIn        ... avg_penalty_pct
//	BenchmarkFig3VWB           ... avg_penalty_pct (VWB series)
//	...
//
// Absolute cycle counts are simulator-specific; the metrics to compare
// against the paper are the penalty percentages (see EXPERIMENTS.md).
package sttdl1_test

import (
	"runtime"
	"testing"

	"sttdl1/internal/dse"
	"sttdl1/internal/experiments"
	"sttdl1/internal/polybench"
	"sttdl1/internal/sim"
	"sttdl1/internal/stats"
	"sttdl1/internal/store"
	"sttdl1/internal/tech"
)

// benchSuite builds a fresh memoizing suite over the full benchmark set.
func benchSuite() *experiments.Suite { return experiments.NewSuite(polybench.All()) }

// lastAvg returns the AVERAGE column of the named series.
func lastAvg(f stats.Figure, label string) float64 {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Values[len(s.Values)-1]
		}
	}
	return -1
}

// BenchmarkTableI regenerates Table I from the technology model.
func BenchmarkTableI(b *testing.B) {
	var readNs float64
	for i := 0; i < b.N; i++ {
		m, err := tech.Compute(tech.DefaultArray(tech.STT2T2MTJ))
		if err != nil {
			b.Fatal(err)
		}
		readNs = m.ReadNs
	}
	b.ReportMetric(readNs, "stt_read_ns")
	b.ReportMetric(tech.MustCompute(tech.DefaultArray(tech.SRAM6T)).ReadNs, "sram_read_ns")
}

// BenchmarkFig1DropIn reproduces Fig. 1: the drop-in STT-MRAM penalty.
func BenchmarkFig1DropIn(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig1()
		if err != nil {
			b.Fatal(err)
		}
		avg = lastAvg(f, "Drop-in STT-MRAM D-cache")
	}
	b.ReportMetric(avg, "avg_penalty_pct")
}

// BenchmarkFig3VWB reproduces Fig. 3: drop-in vs VWB.
func BenchmarkFig3VWB(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig3()
		if err != nil {
			b.Fatal(err)
		}
		avg = lastAvg(f, "NVM D-cache with VWB")
	}
	b.ReportMetric(avg, "vwb_avg_penalty_pct")
}

// BenchmarkFig4Breakdown reproduces Fig. 4: read vs write contribution.
func BenchmarkFig4Breakdown(b *testing.B) {
	var read float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		read = lastAvg(f, "Read penalty contribution")
	}
	b.ReportMetric(read, "read_share_pct")
}

// BenchmarkFig5Transforms reproduces Fig. 5: VWB with/without the code
// transformations.
func BenchmarkFig5Transforms(b *testing.B) {
	var opt float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig5()
		if err != nil {
			b.Fatal(err)
		}
		opt = lastAvg(f, "With Optimization")
	}
	b.ReportMetric(opt, "optimized_avg_penalty_pct")
}

// BenchmarkFig6Ablation reproduces Fig. 6: per-transformation shares.
func BenchmarkFig6Ablation(b *testing.B) {
	var vec float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		vec = lastAvg(f, "Vectorization")
	}
	b.ReportMetric(vec, "vectorization_share_pct")
}

// BenchmarkFig7VWBSize reproduces Fig. 7: the VWB size sweep.
func BenchmarkFig7VWBSize(b *testing.B) {
	var k1, k4 float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		k1 = lastAvg(f, "VWB = 1KBit")
		k4 = lastAvg(f, "VWB = 4KBit")
	}
	b.ReportMetric(k1, "vwb1k_avg_penalty_pct")
	b.ReportMetric(k4, "vwb4k_avg_penalty_pct")
}

// BenchmarkFig8Compare reproduces Fig. 8: proposal vs EMSHR vs L0.
func BenchmarkFig8Compare(b *testing.B) {
	var ours, emshr float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		ours = lastAvg(f, "Our Proposal")
		emshr = lastAvg(f, "EMSHR")
	}
	b.ReportMetric(ours, "proposal_avg_penalty_pct")
	b.ReportMetric(emshr, "emshr_avg_penalty_pct")
}

// BenchmarkFig9BaselineOpt reproduces Fig. 9: optimization gains on both
// systems.
func BenchmarkFig9BaselineOpt(b *testing.B) {
	var base, prop float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		base = lastAvg(f, "Baseline performance gain")
		prop = lastAvg(f, "NVM proposal performance gain")
	}
	b.ReportMetric(base, "baseline_gain_pct")
	b.ReportMetric(prop, "proposal_gain_pct")
}

// BenchmarkAblationBanks sweeps the NVM bank count (extension).
func BenchmarkAblationBanks(b *testing.B) {
	var oneBank float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().AblationBanks()
		if err != nil {
			b.Fatal(err)
		}
		oneBank = lastAvg(f, "1 bank(s)")
	}
	b.ReportMetric(oneBank, "one_bank_avg_penalty_pct")
}

// BenchmarkAblationReadLat sweeps the STT read latency (extension).
func BenchmarkAblationReadLat(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		f, err := benchSuite().AblationReadLat()
		if err != nil {
			b.Fatal(err)
		}
		worst = lastAvg(f, "drop-in, read=6cy")
	}
	b.ReportMetric(worst, "dropin_6cy_avg_penalty_pct")
}

// suiteMatrixBenches is the workload for the serial-vs-parallel engine
// benchmarks: eight kernels at moderate sizes, enough work per config to
// make the fan-out visible but small enough for -bench iterations.
func suiteMatrixBenches() []polybench.Bench {
	names := []string{"gemm", "atax", "bicg", "mvt", "syrk", "trisolv", "2mm", "gesummv"}
	out := make([]polybench.Bench, 0, len(names))
	for _, n := range names {
		b, ok := polybench.ByName(n)
		if !ok {
			panic("unknown benchmark " + n)
		}
		if b.Default > 32 {
			b.Default = 32
		}
		out = append(out, b)
	}
	return out
}

// runSuiteMatrix executes the Fig. 3 matrix (3 configurations × 8
// kernels) on a fresh suite with the given worker count.
func runSuiteMatrix(b *testing.B, jobs int) {
	benches := suiteMatrixBenches()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuiteJobs(benches, jobs)
		if err := s.Prefetch(benches, sim.BaselineSRAM(), sim.DropInSTT(), sim.ProposalVWB()); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(jobs), "workers")
}

// BenchmarkSuiteSerial is the -j 1 reference point for the parallel run
// engine: the whole matrix through one worker.
func BenchmarkSuiteSerial(b *testing.B) { runSuiteMatrix(b, 1) }

// BenchmarkSuiteParallel fans the same matrix out over at least four
// workers (more when GOMAXPROCS allows); the ns/op ratio against
// BenchmarkSuiteSerial is the engine's speedup (the output itself is
// bit-identical, see TestFig3DeterministicUnderParallelism). On a
// single-core host the two converge — the interesting delta then is the
// engine's overhead, which should stay within noise.
func BenchmarkSuiteParallel(b *testing.B) {
	jobs := runtime.GOMAXPROCS(0)
	if jobs < 4 {
		jobs = 4
	}
	runSuiteMatrix(b, jobs)
}

// benchLiveVsReplay runs the Fig. 3 matrix (3 configurations × 8
// kernels) on a fresh suite per iteration with the given execution mode.
// Replay captures each kernel's functional stream once and re-runs only
// the timing model per configuration (DESIGN.md §7.4); the results are
// byte-identical either way, so the ns/op ratio of the two sub-benchmarks
// is the replay engine's speedup on this matrix.
func benchLiveVsReplay(b *testing.B, replay bool) {
	benches := suiteMatrixBenches()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuiteJobs(benches, 8)
		s.SetReplay(replay)
		if err := s.Prefetch(benches, sim.BaselineSRAM(), sim.DropInSTT(), sim.ProposalVWB()); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveVsReplay regenerates the replay engine's speedup:
//
//	go test -bench LiveVsReplay -benchtime 3x
//
// and compare the live and replay ns/op.
func BenchmarkLiveVsReplay(b *testing.B) {
	b.Run("live", func(b *testing.B) { benchLiveVsReplay(b, false) })
	b.Run("replay", func(b *testing.B) { benchLiveVsReplay(b, true) })
}

// BenchmarkDSEProposalSweep is the ISSUE's headline workload — the full
// 240-point proposal design space over the whole PolyBench suite,
// equivalent to `sttexplore dse -space proposal -j 8` — in both
// execution modes. One iteration runs the entire sweep (minutes); use
// -benchtime 1x. The evaluation itself is identical in both modes (the
// Pareto frontier is compared against the dse package's own tests), so
// the two ns/op values measure exactly the live/replay wall-clock ratio
// the tentpole targets.
func BenchmarkDSEProposalSweep(b *testing.B) {
	sp, ok := dse.ByName("proposal")
	if !ok {
		b.Fatal("proposal space not registered")
	}
	run := func(b *testing.B, replay bool) {
		for i := 0; i < b.N; i++ {
			s := experiments.NewSuiteJobs(polybench.All(), 8)
			s.SetReplay(replay)
			ev, err := dse.Evaluate(s, polybench.All(), sp)
			if err != nil {
				b.Fatal(err)
			}
			if len(ev.Points) == 0 {
				b.Fatal("empty evaluation")
			}
		}
	}
	b.Run("live", func(b *testing.B) { run(b, false) })
	b.Run("replay", func(b *testing.B) { run(b, true) })
}

// BenchmarkReplaySweep measures the replay engine itself on the smoke
// sweep, cold (no store — every point runs its timing pass) with gang
// replay on (auto width) and off (one serial replay per
// configuration). The serial/gang ns/op ratio is the gang engine's
// speedup; both arms produce byte-identical evaluations (pinned by
// TestGangWidthsEvaluationIdentity), so only the -benchmem numbers
// differ. scripts/bench.sh records both arms in BENCH_sweep.json's
// "replay" section.
func BenchmarkReplaySweep(b *testing.B) {
	sp, ok := dse.ByName("smoke")
	if !ok {
		b.Fatal("smoke space not registered")
	}
	benches := suiteMatrixBenches()
	run := func(b *testing.B, gang int) {
		for i := 0; i < b.N; i++ {
			s := experiments.NewSuiteJobs(benches, 8)
			s.SetGang(gang)
			ev, err := dse.Evaluate(s, benches, sp)
			if err != nil {
				b.Fatal(err)
			}
			if len(ev.Points) == 0 {
				b.Fatal("empty evaluation")
			}
		}
	}
	b.Run("gang", func(b *testing.B) { run(b, 0) })
	b.Run("serial", func(b *testing.B) { run(b, 1) })
}

// BenchmarkStoreSweep measures the persistent evaluation store's two
// temperatures on the smoke sweep (DESIGN.md §7.7): "cold" simulates
// every point into a fresh store directory; "warm" serves the identical
// evaluation entirely from the store the cold pass populated, never
// running the timing model. The cold/warm ns/op ratio is the store's
// speedup, and the -benchmem numbers are what scripts/bench.sh records
// in BENCH_sweep.json.
func BenchmarkStoreSweep(b *testing.B) {
	sp, ok := dse.ByName("smoke")
	if !ok {
		b.Fatal("smoke space not registered")
	}
	benches := suiteMatrixBenches()
	sweep := func(b *testing.B, dir string) {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.NewSuiteJobs(benches, 8)
		s.SetStore(st)
		ev, err := dse.Evaluate(s, benches, sp)
		if err != nil {
			b.Fatal(err)
		}
		if len(ev.Points) == 0 {
			b.Fatal("empty evaluation")
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, b.TempDir())
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		sweep(b, dir) // populate once; every timed pass hits
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, dir)
		}
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// instructions per second on the proposal configuration running gemm.
func BenchmarkSimulatorThroughput(b *testing.B) {
	gemm, _ := polybench.ByName("gemm")
	s := experiments.NewSuite([]polybench.Bench{gemm})
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		// A fresh suite each iteration defeats memoization on purpose.
		s = experiments.NewSuite([]polybench.Bench{gemm})
		f, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		_ = f
		insts += 2 * 900_000 // two configs, roughly
	}
	_ = insts
}
